// Command epoc compiles an OpenQASM 2.0 program into a pulse schedule
// with a selectable strategy and prints latency, fidelity and stage
// statistics.
//
// Usage:
//
//	epoc -in circuit.qasm [-strategy epoc] [-mode full] [-schedule]
//	epoc -bench ghz [-strategy gate-based]
//	epoc -bench qaoa -stats             # per-stage time/count breakdown
//	epoc -bench qaoa -stats -json -     # breakdown + schedule as JSON
//	epoc -bench qaoa -cpuprofile cpu.pb # runtime/pprof CPU profile
//	epoc -bench qaoa -timeout 30s -stage-budget synth=2s,qoc=5s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/debugsrv"
	"epoc/internal/hardware"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/qasm"
	"epoc/internal/report"
	"epoc/internal/trace"
)

func main() {
	var (
		in         = flag.String("in", "", "input OpenQASM 2.0 file ('-' for stdin)")
		bench      = flag.String("bench", "", "use a built-in benchmark circuit instead of -in")
		strategy   = flag.String("strategy", "epoc", "gate-based | accqoc | paqoc | epoc-nogroup | epoc")
		mode       = flag.String("mode", "full", "full (GRAPE) | estimate (calibrated model)")
		schedule   = flag.Bool("schedule", false, "print the pulse timeline")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		jsonOut    = flag.String("json", "", "write the pulse schedule as JSON to this file ('-' for stdout); with -stats the JSON also carries the obs snapshot")
		stats      = flag.Bool("stats", false, "record and print the per-stage observability breakdown")
		grape      = flag.Int("grape-iters", 200, "GRAPE iteration budget")
		workers    = flag.Int("workers", 1, "parallel workers for block synthesis and QOC (output is identical at any setting)")
		timeout    = flag.Duration("timeout", 0, "abort the compile after this long (0 = no timeout)")
		budgets    = flag.String("stage-budget", "", "degrade instead of overrunning: total=30s,synth=2s,qoc=5s,synth-nodes=500,qoc-iters=50")
		cpuprofile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON span trace to this file (load in Perfetto or chrome://tracing)")
		reportOut  = flag.String("report", "", "write a machine-readable run manifest (metrics, obs snapshot, trace summary, config fingerprint) to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof and expvar obs counters on this address while compiling (e.g. localhost:6060)")
		storePath  = flag.String("store", "", "persistent pulse/synth store root: reuse pulses from earlier runs, warm-start GRAPE from near matches, flush new entries on exit")
	)
	flag.Parse()

	stopProf, err := startCPUProfile(*cpuprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	c, err := loadCircuit(*in, *bench)
	if err != nil {
		fatal(err)
	}
	b, err := core.ParseBudgets(*budgets)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Strategy:   core.Strategy(*strategy),
		Device:     hardware.LinearChain(c.NumQubits),
		GRAPEIters: *grape,
		Workers:    *workers,
		Budgets:    b,
		StorePath:  *storePath,
	}
	var rec *obs.Recorder
	if *stats || *reportOut != "" {
		rec = obs.New()
		opts.Obs = rec
	}
	var tracer *trace.Tracer
	if *traceOut != "" || *reportOut != "" {
		tracer = trace.New(nil)
		opts.Trace = tracer
	}
	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr, rec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "epoc: debug server on http://%s/debug/pprof\n", addr)
	}
	switch *mode {
	case "full":
		opts.Mode = core.QOCFull
	case "estimate":
		opts.Mode = core.QOCEstimate
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancelCompile context.CancelFunc
		ctx, cancelCompile = context.WithTimeout(ctx, *timeout)
		defer cancelCompile()
	}
	res, err := core.CompileContext(ctx, c, opts)
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("strategy:      %s\n", res.Strategy)
	fmt.Printf("qubits:        %d\n", c.NumQubits)
	fmt.Printf("gates:         %d (depth %d)\n", st.GatesBefore, st.DepthBefore)
	if st.DepthAfterZX != 0 {
		fmt.Printf("after ZX:      %d gates (depth %d)\n", st.GatesAfterZX, st.DepthAfterZX)
	}
	if st.Blocks != 0 {
		fmt.Printf("blocks:        %d (synth fallbacks %d)\n", st.Blocks, st.SynthFallback)
	}
	if st.VUGs != 0 || st.CNOTsAfter != 0 {
		fmt.Printf("synthesized:   %d VUGs + %d CNOTs\n", st.VUGs, st.CNOTsAfter)
	}
	fmt.Printf("pulses:        %d (QOC runs %d, library %d hits / %d misses)\n",
		st.PulseCount, st.QOCRuns, st.LibraryHits, st.LibraryMisses)
	fmt.Printf("latency:       %.1f ns\n", res.Latency)
	fmt.Printf("fidelity:      %.5f\n", res.Fidelity)
	fmt.Printf("compile time:  %s\n", res.CompileTime)
	if res.Degraded {
		fmt.Printf("degraded:      yes (%s)\n", strings.Join(res.DegradeReasons, ", "))
	}
	var snap *obs.Snapshot
	if rec != nil {
		snap = rec.Snapshot()
	}
	if *stats && snap != nil {
		if total := st.LibraryHits + st.LibraryMisses; total > 0 {
			fmt.Printf("library:       %.1f%% hit rate (%d lookups)\n",
				100*float64(st.LibraryHits)/float64(total), total)
		}
		fmt.Println()
		fmt.Print(report.RenderSnapshot(snap))
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, tracer.ChromeTrace(), 0o644); err != nil {
			fatal(err)
		}
	}
	if *reportOut != "" {
		m := buildManifest(circuitName(*in, *bench), res, snap, tracer, *mode, *workers, *grape, *budgets)
		data, err := report.EncodeManifest(m)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if *schedule {
		fmt.Print(res.Schedule.String())
	}
	if *gantt {
		fmt.Print(res.Schedule.Gantt(100))
	}
	if *jsonOut != "" {
		var payload interface{} = res.Schedule
		if snap != nil {
			payload = struct {
				Schedule *pulse.Schedule `json:"schedule"`
				Obs      *obs.Snapshot   `json:"obs"`
			}{res.Schedule, snap}
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if err := writeHeapProfile(*memprofile); err != nil {
		fatal(err)
	}
}

// startCPUProfile begins a runtime/pprof CPU profile when path is
// non-empty; the returned func stops it and closes the file.
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile dumps a heap profile when path is non-empty.
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	return pprof.WriteHeapProfile(f)
}

// circuitName labels the run in the manifest: the benchmark name when
// -bench was used, otherwise the input path.
func circuitName(in, bench string) string {
	if bench != "" {
		return bench
	}
	return in
}

// buildManifest bundles one compile into the machine-readable run
// manifest behind -report: result metrics, the obs snapshot, the trace
// summary, and a fingerprint of every knob that affects the output.
func buildManifest(name string, res *core.Result, snap *obs.Snapshot, tr *trace.Tracer, mode string, workers, grapeIters int, budgets string) *report.Manifest {
	m := &report.Manifest{
		Version:  report.ManifestVersion,
		Circuit:  name,
		Strategy: string(res.Strategy),
		Config: map[string]string{
			"mode":         mode,
			"workers":      strconv.Itoa(workers),
			"grape_iters":  strconv.Itoa(grapeIters),
			"stage_budget": budgets,
		},
		Metrics:        res.MetricMap(),
		Degraded:       res.Degraded,
		DegradeReasons: res.DegradeReasons,
		Obs:            snap,
		Trace:          tr.Summary(),
	}
	m.Fingerprint()
	return m
}

func loadCircuit(in, bench string) (*circuit.Circuit, error) {
	switch {
	case bench != "":
		return benchcirc.Get(bench)
	case in == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	}
	return nil, fmt.Errorf("one of -in or -bench is required (benchmarks: %v)", benchcirc.Names())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epoc:", err)
	os.Exit(1)
}
