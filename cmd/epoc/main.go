// Command epoc compiles an OpenQASM 2.0 program into a pulse schedule
// with a selectable strategy and prints latency, fidelity and stage
// statistics.
//
// Usage:
//
//	epoc -in circuit.qasm [-strategy epoc] [-mode full] [-schedule]
//	epoc -bench ghz [-strategy gate-based]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/hardware"
	"epoc/internal/qasm"
)

func main() {
	var (
		in       = flag.String("in", "", "input OpenQASM 2.0 file ('-' for stdin)")
		bench    = flag.String("bench", "", "use a built-in benchmark circuit instead of -in")
		strategy = flag.String("strategy", "epoc", "gate-based | accqoc | paqoc | epoc-nogroup | epoc")
		mode     = flag.String("mode", "full", "full (GRAPE) | estimate (calibrated model)")
		schedule = flag.Bool("schedule", false, "print the pulse timeline")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
		jsonOut  = flag.String("json", "", "write the pulse schedule as JSON to this file ('-' for stdout)")
		grape    = flag.Int("grape-iters", 200, "GRAPE iteration budget")
		workers  = flag.Int("workers", 1, "parallel QOC workers")
	)
	flag.Parse()

	c, err := loadCircuit(*in, *bench)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Strategy:   core.Strategy(*strategy),
		Device:     hardware.LinearChain(c.NumQubits),
		GRAPEIters: *grape,
		Workers:    *workers,
	}
	switch *mode {
	case "full":
		opts.Mode = core.QOCFull
	case "estimate":
		opts.Mode = core.QOCEstimate
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	res, err := core.Compile(c, opts)
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Printf("strategy:      %s\n", res.Strategy)
	fmt.Printf("qubits:        %d\n", c.NumQubits)
	fmt.Printf("gates:         %d (depth %d)\n", st.GatesBefore, st.DepthBefore)
	if st.DepthAfterZX != 0 {
		fmt.Printf("after ZX:      %d gates (depth %d)\n", st.GatesAfterZX, st.DepthAfterZX)
	}
	if st.Blocks != 0 {
		fmt.Printf("blocks:        %d (synth fallbacks %d)\n", st.Blocks, st.SynthFallback)
	}
	if st.VUGs != 0 || st.CNOTsAfter != 0 {
		fmt.Printf("synthesized:   %d VUGs + %d CNOTs\n", st.VUGs, st.CNOTsAfter)
	}
	fmt.Printf("pulses:        %d (QOC runs %d, library %d hits / %d misses)\n",
		st.PulseCount, st.QOCRuns, st.LibraryHits, st.LibraryMisses)
	fmt.Printf("latency:       %.1f ns\n", res.Latency)
	fmt.Printf("fidelity:      %.5f\n", res.Fidelity)
	fmt.Printf("compile time:  %s\n", res.CompileTime)
	if *schedule {
		fmt.Print(res.Schedule.String())
	}
	if *gantt {
		fmt.Print(res.Schedule.Gantt(100))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res.Schedule, "", "  ")
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}
}

func loadCircuit(in, bench string) (*circuit.Circuit, error) {
	switch {
	case bench != "":
		return benchcirc.Get(bench)
	case in == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	}
	return nil, fmt.Errorf("one of -in or -bench is required (benchmarks: %v)", benchcirc.Names())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epoc:", err)
	os.Exit(1)
}
