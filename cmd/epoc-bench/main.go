// Command epoc-bench regenerates every table and figure of the EPOC
// paper's evaluation section on the simulated device:
//
//	-fig5    ZX depth optimization over 34 random circuits (+ VQE)
//	-figs    Figures 8, 9, 10: latency / compile time / fidelity with
//	         vs without the regrouping step, on 17 benchmarks
//	-table1  Gate-based vs PAQOC-style vs EPOC on the 7 Table-1 circuits
//	-scale   160-qubit feasibility run (§4)
//	-ablate  design-choice ablations (partition size, library, ZX, dt)
//	-all     everything above
//	-stats   per-experiment observability breakdown (stage timers,
//	         optimizer convergence, library behaviour)
//	-cpuprofile/-memprofile
//	         runtime/pprof profiles of the whole run
//	-timeout 10m
//	         cancel the run (context) after the given wall-clock time
//	-stage-budget total=30s,synth=2s,qoc=5s,synth-nodes=500,qoc-iters=50
//	         per-compile budgets; a compile that overruns degrades to
//	         its best-so-far result instead of running long
//
// Absolute nanoseconds differ from the paper's IBM-calibrated numbers
// (this is a simulated device; see DESIGN.md); the comparisons and the
// printed percentage reductions are the reproduction targets.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"epoc/internal/core"
	"epoc/internal/debugsrv"
	"epoc/internal/obs"
)

func main() {
	var (
		fig5       = flag.Bool("fig5", false, "run the Figure 5 ZX study")
		figs       = flag.Bool("figs", false, "run Figures 8-10 (grouping study)")
		table1     = flag.Bool("table1", false, "run Table 1 (strategy comparison)")
		scale      = flag.Bool("scale", false, "run the 160-qubit feasibility test")
		hitrate    = flag.Bool("hitrate", false, "run the pulse-library hit-rate study")
		ablate     = flag.Bool("ablate", false, "run design-choice ablations")
		all        = flag.Bool("all", false, "run everything")
		mode       = flag.String("mode", "full", "full (GRAPE) | estimate — QOC mode for figs/table1")
		stats      = flag.Bool("stats", false, "print a per-experiment observability breakdown")
		workers    = flag.Int("workers", 1, "parallel workers for block synthesis and QOC in every experiment")
		timeout    = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no timeout)")
		budgets    = flag.String("stage-budget", "", "per-compile budgets, degrade instead of overrunning: total=30s,synth=2s,qoc=5s,synth-nodes=500,qoc-iters=50")
		cpuprofile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
		suite      = flag.String("suite", "", "run a fixed benchmark suite (small | all) for -json/-baseline")
		jsonDir    = flag.String("json", "", "with -suite: write the BENCH_<suite>.json artifact into this directory")
		baseline   = flag.String("baseline", "", "with -suite: compare against this artifact and exit non-zero on regression")
		storeFlag  = flag.String("store", "", "with -suite: run full GRAPE backed by a persistent pulse/synth store at this root (artifact becomes BENCH_<suite>_warm.json)")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof and expvar obs counters on this address while the run is live")
	)
	flag.Parse()
	statsMode = *stats
	workerCount = *workers
	b, err := core.ParseBudgets(*budgets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epoc-bench:", err)
		os.Exit(1)
	}
	benchBudgets = b
	budgetSpec = *budgets
	storeRoot = *storeFlag
	if *debugAddr != "" {
		benchObs = obs.New()
		addr, err := debugsrv.Serve(*debugAddr, benchObs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epoc-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "epoc-bench: debug server on http://%s/debug/pprof\n", addr)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		benchCtx = ctx
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epoc-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "epoc-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	full := *mode == "full"
	if *mode != "full" && *mode != "estimate" {
		fmt.Fprintf(os.Stderr, "epoc-bench: unknown -mode %q\n", *mode)
		os.Exit(1)
	}
	any := false
	if *fig5 || *all {
		runFig5()
		any = true
	}
	if *figs || *all {
		runGroupingStudy(full)
		any = true
	}
	if *table1 || *all {
		runTable1(full)
		any = true
	}
	if *scale || *all {
		runScale()
		any = true
	}
	if *hitrate || *all {
		runHitRate()
		any = true
	}
	if *ablate || *all {
		runAblations(full)
		any = true
	}
	if *suite != "" {
		runSuiteMode(*suite, *jsonDir, *baseline)
		any = true
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epoc-bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "epoc-bench:", err)
		}
		f.Close()
	}
}
