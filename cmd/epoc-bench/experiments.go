package main

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/qoc"
	"epoc/internal/report"
)

// statsMode (set by the -stats flag) attaches a Recorder to every
// compile of an experiment and prints an aggregated stage breakdown
// after it.
var statsMode bool

// workerCount (set by the -workers flag) sizes the synthesis and QOC
// worker pools in every experiment compile. Results are identical at
// any setting; only wall-clock time changes.
var workerCount int

// benchCtx (set by the -timeout flag) bounds the whole run: when it
// expires every in-flight compile aborts with the context error.
var benchCtx = context.Background()

// benchBudgets (set by the -stage-budget flag) applies per-compile
// degradation budgets to every experiment compile.
var benchBudgets core.Budgets

// benchObs (set when -debug-addr is live) is the recorder the debug
// server publishes over expvar; compiles that don't carry their own
// recorder report into it so the endpoint shows live counters.
var benchObs *obs.Recorder

// compile routes every experiment compile through the run-wide
// context and budgets, and surfaces degradation inline so a budgeted
// run's tables are honest about which rows are best-so-far numbers.
func compile(c *circuit.Circuit, opts core.Options) (*core.Result, error) {
	opts.Budgets = benchBudgets
	if opts.Obs == nil && benchObs != nil {
		opts.Obs = benchObs
	}
	res, err := core.CompileContext(benchCtx, c, opts)
	if err == nil && res.Degraded {
		fmt.Printf("  [degraded: %s]\n", strings.Join(res.DegradeReasons, ", "))
	}
	return res, err
}

// newRecorder returns a fresh Recorder in stats mode, nil otherwise —
// the nil recorder keeps the unobserved runs on the zero-cost path.
func newRecorder() *obs.Recorder {
	if !statsMode {
		return nil
	}
	return obs.New()
}

// printBreakdown renders an experiment's aggregated observability
// snapshot (no-op with a nil recorder).
func printBreakdown(title string, r *obs.Recorder) {
	if r == nil {
		return
	}
	fmt.Printf("-- observability: %s --\n", title)
	fmt.Print(report.RenderSnapshot(r.Snapshot()))
	fmt.Println()
}

// paperTable1 holds the published Table 1 values for side-by-side
// comparison: latency in ns and fidelity ('-' entries are NaN-free 0).
var paperTable1 = map[string]struct {
	gate, paqocLat, epocLat float64
	paqocFid, epocFid       float64
}{
	"simon":   {469, 141.23, 92, 0, 0.984},
	"bb84":    {56.5, 13, 10, 0.981, 0.988},
	"bv":      {901, 321, 268.5, 0.971, 0.968},
	"qaoa":    {1324.5, 393, 111.5, 0.952, 0.984},
	"decod24": {1315.5, 315, 144, 0.982, 0.989},
	"dnn":     {3174.5, 385, 453.5, 0, 0.965},
	"ham7":    {5238.5, 1186.5, 675.5, 0, 0.938},
}

// runFig5 reproduces Figure 5: ZX depth reduction on 34 random
// circuits plus the paper's VQE extreme case.
func runFig5() {
	tb := report.NewTable("Figure 5: ZX-calculus depth optimization (34 random circuits)",
		"circuit", "qubits", "depth before", "depth after", "reduction")
	var ratios []float64
	for seed := int64(1); seed <= 34; seed++ {
		n := 4 + int(seed)%6
		depth := 20 + int(seed*7)%50
		c := benchcirc.RandomCircuit(n, depth, seed)
		opt := core.DepthOptimize(c)
		ratio := float64(c.Depth()) / float64(maxInt(1, opt.Depth()))
		ratios = append(ratios, ratio)
		tb.AddRow(fmt.Sprintf("rand-%02d", seed), n, c.Depth(), opt.Depth(), fmt.Sprintf("%.2fx", ratio))
	}
	fmt.Print(tb.String())
	fmt.Printf("average depth reduction: %.2fx (paper: 1.48x)\n", report.Mean(ratios))

	vqe, _ := benchcirc.Get("vqe")
	opt := core.DepthOptimize(vqe)
	fmt.Printf("VQE extreme case: depth %d -> %d (%.2fx; paper reports 7656 -> 1110 on a much deeper ansatz)\n\n",
		vqe.Depth(), opt.Depth(), float64(vqe.Depth())/float64(maxInt(1, opt.Depth())))
}

// runGroupingStudy reproduces Figures 8 (latency), 9 (compile time)
// and 10 (fidelity): EPOC with vs without the regrouping step on all
// 17 benchmarks.
func runGroupingStudy(full bool) {
	mode := core.QOCEstimate
	label := "estimate"
	if full {
		mode = core.QOCFull
		label = "GRAPE"
	}
	tb := report.NewTable(
		fmt.Sprintf("Figures 8-10: regrouping study, 17 benchmarks (QOC mode: %s)", label),
		"benchmark", "lat no-group (ns)", "lat group (ns)", "lat ↓%",
		"time no-group", "time group", "fid no-group", "fid group")

	// Cold libraries per benchmark and setting: compile times then
	// reflect each setting's true QOC cost rather than cross-benchmark
	// cache luck.
	rec := newRecorder()
	var latRed, fidGains, timeOverheads []float64
	for _, name := range benchcirc.Names() {
		c, _ := benchcirc.Get(name)
		dev := hardware.LinearChain(c.NumQubits)
		resNo, err := compile(c, core.Options{Strategy: core.EPOCNoGroup, Device: dev, Mode: mode, Library: pulse.NewLibrary(true), Obs: rec, Workers: workerCount})
		if err != nil {
			fmt.Printf("%s (no-group): %v\n", name, err)
			continue
		}
		resYes, err := compile(c, core.Options{Strategy: core.EPOC, Device: dev, Mode: mode, Library: pulse.NewLibrary(true), Obs: rec, Workers: workerCount})
		if err != nil {
			fmt.Printf("%s (group): %v\n", name, err)
			continue
		}
		red := report.PercentChange(resNo.Latency, resYes.Latency)
		latRed = append(latRed, red)
		fidGains = append(fidGains, 100*(resYes.Fidelity-resNo.Fidelity)/maxF(resNo.Fidelity, 1e-9))
		timeOverheads = append(timeOverheads,
			100*(resYes.CompileTime.Seconds()-resNo.CompileTime.Seconds())/maxF(resNo.CompileTime.Seconds(), 1e-9))
		tb.AddRow(name,
			fmt.Sprintf("%.1f", resNo.Latency), fmt.Sprintf("%.1f", resYes.Latency),
			fmt.Sprintf("%.1f", red),
			resNo.CompileTime.Round(time.Millisecond).String(),
			resYes.CompileTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", resNo.Fidelity), fmt.Sprintf("%.4f", resYes.Fidelity))
	}
	fmt.Print(tb.String())
	fmt.Printf("average latency reduction from grouping:  %.2f%% (paper: 51.11%%)\n", report.Mean(latRed))
	fmt.Printf("average fidelity change from grouping:    +%.2f%% (paper: +33.77%%)\n", report.Mean(fidGains))
	fmt.Printf("average compile-time change from grouping: %+.2f%% (paper: +7.11%%)\n\n", report.Mean(timeOverheads))
	printBreakdown("grouping study (all 34 compiles)", rec)
}

// runTable1 reproduces Table 1: gate-based vs PAQOC-style vs EPOC on
// the seven named circuits, with the paper's numbers alongside.
func runTable1(full bool) {
	mode := core.QOCEstimate
	label := "estimate"
	if full {
		mode = core.QOCFull
		label = "GRAPE"
	}
	tb := report.NewTable(
		fmt.Sprintf("Table 1: latency (ns) and fidelity per strategy (QOC mode: %s)", label),
		"circuit", "gate-based", "paqoc", "epoc", "epoc fid",
		"paper gate", "paper paqoc", "paper epoc", "paper epoc fid")

	libPAQOC := pulse.NewLibrary(false)
	libEPOC := pulse.NewLibrary(true)
	rec := newRecorder()
	var vsGate, vsPAQOC []float64
	for _, name := range benchcirc.Table1Names() {
		c, _ := benchcirc.Get(name)
		dev := hardware.LinearChain(c.NumQubits)
		gb, err := compile(c, core.Options{Strategy: core.GateBased, Device: dev, Obs: rec})
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			continue
		}
		pq, err := compile(c, core.Options{Strategy: core.PAQOC, Device: dev, Mode: mode, Library: libPAQOC, Obs: rec, Workers: workerCount})
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			continue
		}
		ep, err := compile(c, core.Options{Strategy: core.EPOC, Device: dev, Mode: mode, Library: libEPOC, Obs: rec, Workers: workerCount})
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			continue
		}
		ref := paperTable1[name]
		vsGate = append(vsGate, report.PercentChange(gb.Latency, ep.Latency))
		vsPAQOC = append(vsPAQOC, report.PercentChange(pq.Latency, ep.Latency))
		tb.AddRow(name,
			fmt.Sprintf("%.1f", gb.Latency),
			fmt.Sprintf("%.1f", pq.Latency),
			fmt.Sprintf("%.1f", ep.Latency),
			fmt.Sprintf("%.3f", ep.Fidelity),
			fmt.Sprintf("%.1f", ref.gate),
			fmt.Sprintf("%.1f", ref.paqocLat),
			fmt.Sprintf("%.1f", ref.epocLat),
			fmt.Sprintf("%.3f", ref.epocFid))
	}
	fmt.Print(tb.String())
	fmt.Printf("average EPOC latency reduction vs gate-based: %.2f%% (paper: 76.80%%)\n", report.Mean(vsGate))
	fmt.Printf("average EPOC latency reduction vs PAQOC:      %.2f%% (paper: 31.74%%)\n\n", report.Mean(vsPAQOC))
	printBreakdown("Table 1 (all 21 compiles)", rec)
}

// runHitRate measures the pulse-library hit rate across the full
// 25-circuit corpus (paper set + extended set) with and without
// EPOC's global-phase matching — the paper's "higher cache hit rate"
// claim, §3.4.
func runHitRate() {
	tb := report.NewTable("Pulse-library hit rate across 25 programs (estimate mode)",
		"matching", "lookups", "hits", "hit rate", "entries")
	rec := newRecorder()
	for _, phase := range []bool{false, true} {
		lib := pulse.NewLibrary(phase)
		for _, name := range benchcirc.AllNames() {
			c, err := benchcirc.Get(name)
			if err != nil {
				continue
			}
			dev := hardware.LinearChain(c.NumQubits)
			if _, err := compile(c, core.Options{
				Strategy: core.EPOC, Device: dev, Mode: core.QOCEstimate, Library: lib, Obs: rec, Workers: workerCount,
			}); err != nil {
				fmt.Printf("%s: %v\n", name, err)
			}
		}
		label := "exact-match"
		if phase {
			label = "global-phase"
		}
		tb.AddRow(label, lib.Hits+lib.Misses, lib.Hits,
			fmt.Sprintf("%.1f%%", 100*lib.HitRate()), lib.Len())
	}
	fmt.Print(tb.String())
	fmt.Println()
	printBreakdown("hit-rate study (both key modes)", rec)
}

// runScale reproduces the §4 scalability claim: a large, deep
// 160-qubit program compiles end to end (QOC in calibrated-estimate
// mode; see DESIGN.md).
func runScale() {
	fmt.Println("== Scale test: 160-qubit deep program (§4) ==")
	c := benchcirc.RandomLayered(160, 8, 1)
	dev := hardware.LinearChain(160)
	rec := newRecorder()
	start := time.Now()
	res, err := compile(c, core.Options{Strategy: core.EPOC, Device: dev, Mode: core.QOCEstimate, Obs: rec, Workers: workerCount})
	if err != nil {
		fmt.Println("scale test failed:", err)
		return
	}
	fmt.Printf("gates: %d  depth: %d  blocks: %d  pulses: %d\n",
		res.Stats.GatesBefore, res.Stats.DepthBefore, res.Stats.Blocks, res.Stats.PulseCount)
	fmt.Printf("latency: %.1f ns  fidelity: %.4f  compile time: %s\n\n",
		res.Latency, res.Fidelity, time.Since(start).Round(time.Millisecond))
	printBreakdown("scale test", rec)
}

// runAblations exercises the design choices DESIGN.md calls out.
func runAblations(full bool) {
	fmt.Println("== Ablations ==")
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)

	// Partition/regroup size limit.
	tb := report.NewTable("partition & regroup qubit limit (qaoa, estimate mode)",
		"limit", "latency (ns)", "pulses", "blocks")
	for _, lim := range []int{2, 3} {
		res, err := compile(c, core.Options{
			Strategy: core.EPOC, Device: dev, Mode: core.QOCEstimate,
			PartitionMaxQubits: lim, RegroupMaxQubits: lim,
		})
		if err != nil {
			fmt.Println("ablation error:", err)
			continue
		}
		tb.AddRow(lim, res.Latency, res.Stats.PulseCount, res.Stats.Blocks)
	}
	fmt.Print(tb.String())

	// ZX stage on/off.
	tb = report.NewTable("ZX stage (vqe, estimate mode)", "zx", "depth after stage", "latency (ns)")
	for _, useZX := range []bool{false, true} {
		z := useZX
		res, err := compile(mustBench("vqe"), core.Options{
			Strategy: core.EPOC, Device: hardware.LinearChain(6), Mode: core.QOCEstimate, UseZX: &z,
		})
		if err != nil {
			fmt.Println("ablation error:", err)
			continue
		}
		tb.AddRow(fmt.Sprintf("%v", useZX), res.Stats.DepthAfterZX, res.Latency)
	}
	fmt.Print(tb.String())

	// Pulse library & global-phase matching (full QOC so reuse matters):
	// two spellings of the same program — s vs rz(π/2), equal up to a
	// global phase — under the PAQOC flow, whose block unitaries reach
	// the library unnormalized.
	if full {
		tb = report.NewTable("pulse library: global-phase matching (s vs rz(π/2) spellings, GRAPE mode)",
			"library", "QOC runs (2nd program)", "hits", "compile time (2nd)")
		for _, phase := range []bool{false, true} {
			lib := pulse.NewLibrary(phase)
			first := phaseSpellingProgram(true)
			if _, err := compile(first, core.Options{
				Strategy: core.PAQOC, Device: hardware.LinearChain(first.NumQubits), Library: lib,
			}); err != nil {
				fmt.Println("ablation error:", err)
				continue
			}
			second := phaseSpellingProgram(false)
			res, err := compile(second, core.Options{
				Strategy: core.PAQOC, Device: hardware.LinearChain(second.NumQubits), Library: lib,
			})
			if err != nil {
				fmt.Println("ablation error:", err)
				continue
			}
			name := "exact-match"
			if phase {
				name = "global-phase"
			}
			tb.AddRow(name, res.Stats.QOCRuns, lib.Hits, res.CompileTime.Round(time.Millisecond).String())
		}
		fmt.Print(tb.String())

		// GRAPE slot width.
		tb = report.NewTable("GRAPE time-slot width dt (X gate pulse)", "dt (ns)", "duration (ns)", "fidelity")
		for _, dt := range []float64{1, 2, 4} {
			m := qoc.StandardModel(1, qoc.ModelOptions{Dt: dt})
			r := qoc.DurationSearch(m, gate.New(gate.X).Matrix(), 2, int(80/dt), 2, qoc.GRAPEConfig{MaxIter: 300})
			tb.AddRow(fmt.Sprintf("%.0f", dt), r.Duration, fmt.Sprintf("%.5f", r.Fidelity))
		}
		fmt.Print(tb.String())
	}
	fmt.Println()
}

func mustBench(name string) *circuit.Circuit {
	c, err := benchcirc.Get(name)
	if err != nil {
		panic(err)
	}
	return c
}

// phaseSpellingProgram builds the same entangling program with its
// phase gates spelled as "s" or as "rz(π/2)" (equal up to e^{iπ/4}).
func phaseSpellingProgram(useS bool) *circuit.Circuit {
	c := circuit.New(4)
	phaseGate := gate.New(gate.S)
	if !useS {
		phaseGate = gate.New(gate.RZ, math.Pi/2)
	}
	for q := 0; q < 4; q++ {
		c.Append(gate.New(gate.H), q)
		c.Append(phaseGate, q)
	}
	for q := 0; q < 3; q++ {
		c.Append(gate.New(gate.CX), q, q+1)
		c.Append(phaseGate, q+1)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
