// Benchmark suites as machine-readable artifacts: -suite runs a fixed
// circuit set under a pinned config, -json writes the per-circuit
// metrics as BENCH_<suite>.json, and -baseline gates the run against a
// previously committed artifact — the CI perf gate.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"epoc/internal/benchcirc"
	"epoc/internal/core"
	"epoc/internal/hardware"
	"epoc/internal/pulse"
	"epoc/internal/report"
	"epoc/internal/store"
)

// budgetSpec holds the raw -stage-budget string for the artifact's
// config fingerprint: budgets change the deterministic metrics, so two
// artifacts are only comparable under the same spec.
var budgetSpec string

// storeRoot (set by the -store flag) switches the suite from estimate
// to full-GRAPE mode backed by a persistent pulse/synth store: run 1
// pays for GRAPE and populates the store, run 2 serves every pulse
// from disk. The artifact is then named BENCH_<suite>_warm.json and
// carries a store marker in its config so warm artifacts never
// compare against estimate baselines.
var storeRoot string

// suiteCircuits maps a suite name to its circuit list. Suites run the
// EPOC strategy in estimate mode: every gated metric is then a pure
// function of the circuit set and config, so the regression gate can
// compare at tight tolerances across machines.
func suiteCircuits(suite string) ([]string, error) {
	switch suite {
	case "small":
		return benchcirc.Table1Names(), nil
	case "all":
		return benchcirc.AllNames(), nil
	}
	return nil, fmt.Errorf("unknown -suite %q (suites: small, all)", suite)
}

// runSuite compiles every circuit in the suite and collects the flat
// metric map of each into a sorted BenchArtifact.
func runSuite(suite string) (*report.BenchArtifact, error) {
	names, err := suiteCircuits(suite)
	if err != nil {
		return nil, err
	}
	art := &report.BenchArtifact{
		Version:  report.ManifestVersion,
		Suite:    suite,
		Strategy: string(core.EPOC),
		Config: map[string]string{
			"mode":         "estimate",
			"stage_budget": budgetSpec,
		},
	}
	var shared *store.Store
	if storeRoot != "" {
		art.Config["mode"] = "full"
		art.Config["store"] = "on"
		// One store shared by every circuit in the suite: the namespace
		// ignores qubit count, so a single open covers the whole set and
		// per-compile harvest makes each circuit's pulses available to
		// the next (and, after the final flush, to the next run).
		st, err := core.OpenStore(storeRoot, core.Options{
			Strategy: core.EPOC,
			Device:   hardware.LinearChain(2),
			Mode:     core.QOCFull,
		})
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", suite, err)
		}
		shared = st
		defer func() {
			if cerr := shared.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "epoc-bench: store close:", cerr)
			}
		}()
	}
	// The fingerprint hashes strategy + config exactly like a run
	// manifest's, so the two artifact kinds agree on comparability.
	art.ConfigFingerprint = (&report.Manifest{
		Strategy: art.Strategy,
		Config:   art.Config,
	}).Fingerprint()

	for _, name := range names {
		c, err := benchcirc.Get(name)
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", suite, err)
		}
		opts := core.Options{
			Strategy: core.EPOC,
			Device:   hardware.LinearChain(c.NumQubits),
			Mode:     core.QOCEstimate,
			Library:  pulse.NewLibrary(true),
			Workers:  workerCount,
		}
		if shared != nil {
			opts.Mode = core.QOCFull
			opts.Store = shared
		}
		res, err := compile(c, opts)
		if err != nil {
			return nil, fmt.Errorf("suite %s, circuit %s: %w", suite, name, err)
		}
		art.Circuits = append(art.Circuits, report.CircuitResult{
			Name:    name,
			Metrics: res.MetricMap(),
		})
		fmt.Printf("  %-12s latency %8.1f ns  fidelity %.5f  pulses %3.0f\n",
			name, res.Latency, res.Fidelity, res.MetricMap()["pulses"])
	}
	art.Sort()
	return art, nil
}

// runSuiteMode drives the -suite/-json/-baseline flags: run the suite,
// optionally persist the artifact, optionally gate against a baseline.
// It exits the process non-zero when the gate finds regressions.
func runSuiteMode(suite, jsonDir, baselinePath string) {
	if storeRoot != "" {
		fmt.Printf("== Suite %s (EPOC, full mode, store %s) ==\n", suite, storeRoot)
	} else {
		fmt.Printf("== Suite %s (EPOC, estimate mode) ==\n", suite)
	}
	art, err := runSuite(suite)
	if err != nil {
		fatalErr(err)
	}
	if jsonDir != "" {
		data, err := report.EncodeArtifact(art)
		if err != nil {
			fatalErr(err)
		}
		if err := os.MkdirAll(jsonDir, 0o755); err != nil {
			fatalErr(err)
		}
		name := "BENCH_" + suite
		if storeRoot != "" {
			name += "_warm"
		}
		path := filepath.Join(jsonDir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatalErr(err)
		}
		fmt.Println("wrote", path)
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			fatalErr(err)
		}
		base, err := report.DecodeArtifact(raw)
		if err != nil {
			fatalErr(fmt.Errorf("baseline %s: %w", baselinePath, err))
		}
		regs, err := report.CompareBaseline(base, art, nil)
		if err != nil {
			fatalErr(fmt.Errorf("baseline %s: %w", baselinePath, err))
		}
		if len(regs) > 0 {
			var b strings.Builder
			for _, r := range regs {
				fmt.Fprintf(&b, "  %s\n", r.String())
			}
			fmt.Fprintf(os.Stderr, "epoc-bench: %d regression(s) vs %s:\n%s", len(regs), baselinePath, b.String())
			os.Exit(1)
		}
		fmt.Printf("baseline check passed: %d circuits, no regressions vs %s\n",
			len(art.Circuits), baselinePath)
	}
}

func fatalErr(err error) {
	fmt.Fprintln(os.Stderr, "epoc-bench:", err)
	os.Exit(1)
}
