// Command zxopt runs only the graph-based (ZX-calculus) depth
// optimization stage on an OpenQASM 2.0 program and reports the depth
// change, optionally writing the optimized circuit back as QASM.
//
// Usage:
//
//	zxopt -in circuit.qasm [-out optimized.qasm]
//	zxopt -bench vqe
//	zxopt -bench vqe -cpuprofile cpu.pb   # profile the rewrite engine
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/debugsrv"
	"epoc/internal/qasm"
	"epoc/internal/zx"
)

func main() {
	var (
		in         = flag.String("in", "", "input OpenQASM 2.0 file ('-' for stdin)")
		bench      = flag.String("bench", "", "use a built-in benchmark circuit instead of -in")
		out        = flag.String("out", "", "write the optimized circuit as QASM to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof on this address while optimizing (e.g. localhost:6060)")
	)
	flag.Parse()

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "zxopt: debug server on http://%s/debug/pprof\n", addr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	c, err := loadCircuit(*in, *bench)
	if err != nil {
		fatal(err)
	}
	opt := core.DepthOptimize(c)
	before := zx.FromCircuit(c)
	after := zx.FromCircuit(c)
	after.FullSimplify()
	fmt.Printf("qubits:       %d\n", c.NumQubits)
	fmt.Printf("depth:        %d -> %d (%.2fx)\n", c.Depth(), opt.Depth(),
		float64(c.Depth())/float64(max(1, opt.Depth())))
	fmt.Printf("gate count:   %d -> %d\n", c.Len(), opt.Len())
	fmt.Printf("2q gates:     %d -> %d\n", c.TwoQubitCount(), opt.TwoQubitCount())
	fmt.Printf("spiders:      %d -> %d (full_reduce)\n", before.NumSpiders(), after.NumSpiders())
	fmt.Printf("T-count:      %d -> %d\n", before.TCount(), after.TCount())
	if *out != "" {
		src, err := qasm.Write(opt)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote:        %s\n", *out)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func loadCircuit(in, bench string) (*circuit.Circuit, error) {
	switch {
	case bench != "":
		return benchcirc.Get(bench)
	case in == "-":
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src))
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	}
	return nil, fmt.Errorf("one of -in or -bench is required")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zxopt:", err)
	os.Exit(1)
}
