package main

// Exit-code contract for the run-diff gate and the promcheck mode —
// including the acceptance scenario from ISSUE 10: diffing a doctored
// bench JSON against its baseline exits non-zero under -fail-on.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"epoc/internal/report"
)

func writeArtifact(t *testing.T, dir, name string, latency float64) string {
	t.Helper()
	a := &report.BenchArtifact{
		Version: report.ManifestVersion, Suite: "small", Strategy: "epoc",
		ConfigFingerprint: "fp0",
		Circuits: []report.CircuitResult{
			{Name: "ghz", Metrics: map[string]float64{"latency_ns": latency, "fidelity": 0.99}},
		},
	}
	b, err := report.EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffGateExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeArtifact(t, dir, "base.json", 100)
	doctored := writeArtifact(t, dir, "doctored.json", 150) // +50% latency

	var out, errb bytes.Buffer
	// No gate: render the table, exit 0.
	if code := run([]string{base, doctored}, &out, &errb); code != 0 {
		t.Fatalf("plain diff exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "latency_ns") || !strings.Contains(out.String(), "+50.00%") {
		t.Fatalf("diff table:\n%s", out.String())
	}

	// Gate on the regression: exit 1 with the violation on stderr.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-fail-on", "latency_ns=2%", base, doctored}, &out, &errb); code != 1 {
		t.Fatalf("gated diff exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "latency_ns worsened") {
		t.Fatalf("violation message: %s", errb.String())
	}

	// Same gate, movement within slack: exit 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-fail-on", "latency_ns=60%", base, doctored}, &out, &errb); code != 0 {
		t.Fatalf("slack diff exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fail-on: ok") {
		t.Fatalf("ok line missing:\n%s", out.String())
	}
}

func TestUsageAndLoadErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"one.json"}, &out, &errb); code != 2 {
		t.Fatalf("one-arg exit %d, want 2", code)
	}
	if code := run([]string{"-fail-on", "latency_ns=???", "a", "b"}, &out, &errb); code != 2 {
		t.Fatalf("bad fail-on exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit %d, want 2", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"foo": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeArtifact(t, dir, "good.json", 100)
	if code := run([]string{good, bad}, &out, &errb); code != 2 {
		t.Fatalf("unrecognized artifact exit %d, want 2", code)
	}
}

const validScrape = `# HELP epoc_serve_requests_total Total compile requests.
# TYPE epoc_serve_requests_total counter
epoc_serve_requests_total 3
# HELP epoc_stage_seconds Stage wall time in seconds.
# TYPE epoc_stage_seconds histogram
epoc_stage_seconds_bucket{stage="qoc",le="1e-06"} 0
epoc_stage_seconds_bucket{stage="qoc",le="+Inf"} 2
epoc_stage_seconds_sum{stage="qoc"} 0.5
epoc_stage_seconds_count{stage="qoc"} 2
`

func TestPromcheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(good, []byte(validScrape), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-promcheck", good}, &out, &errb); code != 0 {
		t.Fatalf("promcheck exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "promcheck: ok") {
		t.Fatalf("promcheck output: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-promcheck", "-require", "epoc_stage_seconds,epoc_serve_queue_depth", good}, &out, &errb); code != 1 {
		t.Fatalf("missing-family exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "epoc_serve_queue_depth") {
		t.Fatalf("missing-family message: %s", errb.String())
	}

	// Malformed exposition (counter without _total suffix) must fail.
	badScrape := strings.ReplaceAll(validScrape, "epoc_serve_requests_total", "epoc_serve_requests")
	badPath := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(badPath, []byte(badScrape), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-promcheck", badPath}, &out, &errb); code != 1 {
		t.Fatalf("malformed scrape exit %d, want 1", code)
	}

	if code := run([]string{"-promcheck"}, &out, &errb); code != 2 {
		t.Fatalf("promcheck no-arg exit %d, want 2", code)
	}
	if code := run([]string{"-require", "x", "a.json", "b.json"}, &out, &errb); code != 2 {
		t.Fatalf("stray -require exit %d, want 2", code)
	}
}
