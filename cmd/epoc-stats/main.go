// Command epoc-stats diffs two observability artifacts and optionally
// gates on the result — the operator's lens over what a run, a bench
// sweep, or a live server actually did (DESIGN.md §15).
//
//	epoc-stats baseline.json current.json
//	epoc-stats -fail-on latency_ns=2%,fidelity=0 base.json cur.json
//	epoc-stats -promcheck -require epoc_stage_seconds metrics.prom
//
// Each positional file may be any of the three artifact shapes the
// repo produces — they are sniffed, not flagged:
//
//   - a run manifest (`epoc -report out.json`),
//   - a bench artifact (`epoc-bench -suite small -json dir`),
//   - a /v1/stats snapshot from a live epoc-serve.
//
// The diff table lists every metric either side carries with delta
// and percent change; -fail-on turns selected deltas into a gate
// (exit 1) so the same binary renders CI bench diffs and enforces
// them. -promcheck instead validates a Prometheus text-format scrape
// (a file, or - for stdin) with the strict parser the exposition
// tests use, for the metrics-smoke CI job.
//
// Exit codes: 0 clean, 1 gate/validation failure, 2 usage or load
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"epoc/internal/metrics"
	"epoc/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epoc-stats", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		failOn    = fs.String("fail-on", "", "gate the diff: metric=limit[,metric=limit...]; limit is an absolute delta or a percentage (latency_ns=2%); =0 fails on any worsening")
		promcheck = fs.Bool("promcheck", false, "validate a Prometheus text-format scrape instead of diffing (one file argument, - for stdin)")
		require   = fs.String("require", "", "with -promcheck: comma-separated metric families that must be present")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: epoc-stats [-fail-on spec] baseline.json current.json\n")
		fmt.Fprintf(stderr, "       epoc-stats -promcheck [-require fam,...] scrape.prom\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *promcheck {
		return runPromcheck(fs.Args(), *require, stdout, stderr)
	}
	if *require != "" {
		fmt.Fprintln(stderr, "epoc-stats: -require only applies with -promcheck")
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	var rules []report.FailRule
	if *failOn != "" {
		var err error
		if rules, err = report.ParseFailOn(*failOn); err != nil {
			fmt.Fprintln(stderr, "epoc-stats:", err)
			return 2
		}
	}

	sides := make([]*report.RunStats, 2)
	for i, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "epoc-stats:", err)
			return 2
		}
		rs, err := report.LoadRunStats(path, data)
		if err != nil {
			fmt.Fprintln(stderr, "epoc-stats:", err)
			return 2
		}
		sides[i] = rs
	}

	d := report.DiffRunStats(sides[0], sides[1])
	fmt.Fprint(stdout, report.FormatDiff(d))

	if len(rules) == 0 {
		return 0
	}
	violations := report.GateDiff(d, rules)
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "fail-on: ok (%s)\n", *failOn)
		return 0
	}
	for _, v := range violations {
		fmt.Fprintln(stderr, "epoc-stats: fail-on:", v)
	}
	return 1
}

// runPromcheck strict-parses a scrape and checks required families.
func runPromcheck(args []string, require string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "epoc-stats: -promcheck wants exactly one file argument (- for stdin)")
		return 2
	}
	var (
		data []byte
		err  error
	)
	if args[0] == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(args[0])
	}
	if err != nil {
		fmt.Fprintln(stderr, "epoc-stats:", err)
		return 2
	}
	fams, err := metrics.Parse(string(data))
	if err != nil {
		fmt.Fprintln(stderr, "epoc-stats: promcheck:", err)
		return 1
	}
	present := map[string]bool{}
	names := make([]string, 0, len(fams))
	samples := 0
	for _, f := range fams {
		present[f.Name] = true
		names = append(names, f.Name)
		samples += len(f.Samples)
	}
	sort.Strings(names)
	var missing []string
	if require != "" {
		for _, want := range strings.Split(require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !present[want] {
				missing = append(missing, want)
			}
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(stderr, "epoc-stats: promcheck: required families missing: %s (scrape has: %s)\n",
			strings.Join(missing, ", "), strings.Join(names, ", "))
		return 1
	}
	fmt.Fprintf(stdout, "promcheck: ok — %d families, %d samples\n", len(fams), samples)
	return 0
}
