package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the -mod argument for one of internal/lint's
// testdata trees.
func fixture(t *testing.T, name string) string {
	t.Helper()
	p := filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return p
}

// TestExitCodeContract pins the documented contract: 0 clean, 1 when
// unsuppressed findings exist, 2 on load or usage errors.
func TestExitCodeContract(t *testing.T) {
	t.Run("clean is 0", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run([]string{"-mod", fixture(t, "clean")}, &out, &errb); code != 0 {
			t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errb.String())
		}
		if out.Len() != 0 {
			t.Errorf("clean run produced output:\n%s", out.String())
		}
	})

	t.Run("findings are 1", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run([]string{"-mod", fixture(t, "floatcmp")}, &out, &errb); code != 1 {
			t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
		}
		if out.Len() == 0 {
			t.Error("findings run printed nothing to stdout")
		}
		if !strings.Contains(errb.String(), "finding(s)") {
			t.Errorf("stderr missing summary line:\n%s", errb.String())
		}
	})

	t.Run("load error is 2", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package broken\nfunc oops() { undefined(\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		if code := run([]string{"-mod", dir}, &out, &errb); code != 2 {
			t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errb.String())
		}
	})

	t.Run("bad format is 2", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run([]string{"-format", "bogus"}, &out, &errb); code != 2 {
			t.Fatalf("exit = %d, want 2", code)
		}
	})

	t.Run("unknown analyzer is 2", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run([]string{"-run", "nosuch"}, &out, &errb); code != 2 {
			t.Fatalf("exit = %d, want 2", code)
		}
	})
}

// TestJSONFormat checks the machine-readable output shape.
func TestJSONFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-mod", fixture(t, "floatcmp"), "-format", "json"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	var report struct {
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
		Failed     int `json:"failed"`
		Suppressed int `json:"suppressed"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if report.Failed == 0 || len(report.Findings) == 0 {
		t.Fatalf("report = %+v, want findings", report)
	}
	for _, f := range report.Findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestGithubFormat checks the workflow-command encoding.
func TestGithubFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-mod", fixture(t, "floatcmp"), "-format", "github"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("github format printed nothing")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("line is not a workflow command: %q", line)
		}
		if !strings.Contains(line, ",title=epoc-lint/") {
			t.Errorf("line missing analyzer title: %q", line)
		}
	}
}

func TestGithubEscape(t *testing.T) {
	got := githubEscape("50% of\nlines\r")
	want := "50%25 of%0Alines%0D"
	if got != want {
		t.Fatalf("githubEscape = %q, want %q", got, want)
	}
}
