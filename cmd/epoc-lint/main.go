// Command epoc-lint runs the project's static-analysis suite
// (internal/lint) over the module — the numerical, concurrency and
// hot-path invariants EPOC's correctness claims depend on but the
// compiler cannot check: floatcmp, globalrand, layering, errcheck,
// copylockplus, ctxflow, spanend, and the dataflow analyzers
// maporder, lockguard, goleak and allochot. See DESIGN.md §8 for the
// analyzer catalog and the //epoc:lint-ignore suppression syntax,
// and §13 for the CFG/call-graph layer.
//
// Usage:
//
//	epoc-lint [flags] [./...|./internal/synth|...]
//
// The -format flag selects the output encoding:
//
//	text    one finding per line, file:line:col: analyzer: message (default)
//	json    a single JSON object with findings and counts, for tooling
//	github  GitHub Actions workflow commands (::error ...), so CI runs
//	        annotate the offending lines in the diff view
//
// Exit status: 0 when clean, 1 when any unsuppressed finding exists,
// 2 when the module fails to load or the flags are invalid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"epoc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -format json wire shape of one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the -format json top-level object.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Failed     int           `json:"failed"`
	Suppressed int           `json:"suppressed"`
}

// run is main with the process edges (args, stdio, exit code) made
// explicit so the exit-code contract is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epoc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list analyzers and exit")
		runList    = fs.String("run", "", "comma-separated analyzers to run (default: all)")
		suppressed = fs.Bool("suppressed", false, "also print suppressed findings with their reasons (text format)")
		format     = fs.String("format", "text", "output format: text, json, or github")
		modDir     = fs.String("mod", "", "module root to lint (default: walk up from cwd to go.mod); a tree without go.mod is compiled as module \"epoc\", which is how the testdata fixtures run")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: epoc-lint [flags] [patterns]\n\npatterns are ./... (default) or ./<dir> prefixes relative to the module root\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(stderr, "epoc-lint: unknown -format %q (want text, json, or github)\n", *format)
		return 2
	}

	analyzers := lint.All()
	if *runList != "" {
		var err error
		analyzers, err = lint.ByName(*runList)
		if err != nil {
			fmt.Fprintln(stderr, "epoc-lint:", err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "epoc-lint:", err)
		return 2
	}
	var root, modPath string
	if *modDir != "" {
		root, err = filepath.Abs(*modDir)
		if err != nil {
			fmt.Fprintln(stderr, "epoc-lint:", err)
			return 2
		}
		if r, mp, err := lint.FindModuleRoot(root); err == nil && r == root {
			modPath = mp
		} else {
			modPath = "epoc" // fixture trees carry no go.mod
		}
	} else {
		root, modPath, err = lint.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(stderr, "epoc-lint:", err)
			return 2
		}
	}
	mod, err := lint.LoadModule(root, modPath)
	if err != nil {
		fmt.Fprintln(stderr, "epoc-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	report := jsonReport{Findings: []jsonFinding{}}
	for _, f := range lint.Run(mod, analyzers) {
		if !matchesPatterns(mod, root, f.Pos.Filename, patterns) {
			continue
		}
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		if f.Suppressed {
			report.Suppressed++
		} else {
			report.Failed++
		}
		report.Findings = append(report.Findings, jsonFinding{
			File:       rel,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
			Reason:     f.Reason,
		})
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "epoc-lint:", err)
			return 2
		}
	case "github":
		for _, f := range report.Findings {
			if f.Suppressed {
				continue
			}
			// ::error annotations render on the offending line in the PR
			// diff. Messages must have newlines and special chars escaped
			// per the workflow-command grammar.
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=epoc-lint/%s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, githubEscape(f.Message))
		}
	default: // text
		for _, f := range report.Findings {
			if f.Suppressed {
				if *suppressed {
					fmt.Fprintf(stdout, "%s:%d:%d: %s: suppressed (%s): %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Reason, f.Message)
				}
				continue
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if report.Failed > 0 {
		fmt.Fprintf(stderr, "epoc-lint: %d finding(s) (%d suppressed)\n", report.Failed, report.Suppressed)
		return 1
	}
	return 0
}

// githubEscape encodes a workflow-command message per the Actions
// grammar: % first, then newlines.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// matchesPatterns reports whether filename (absolute) falls under any
// of the go-style patterns, resolved relative to the module root.
func matchesPatterns(mod *lint.Module, root, filename string, patterns []string) bool {
	rel, err := filepath.Rel(root, filename)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(filepath.Dir(rel))
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "." {
			return true
		}
		if suffix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == suffix || strings.HasPrefix(rel, suffix+"/") {
				return true
			}
			continue
		}
		if rel == pat {
			return true
		}
	}
	return false
}
