// Command epoc-lint runs the project's static-analysis suite
// (internal/lint) over the module: floatcmp, globalrand, layering,
// errcheck and copylockplus — the numerical and concurrency
// invariants EPOC's correctness claims depend on but the compiler
// cannot check. See DESIGN.md §8 for the analyzer catalog and the
// //epoc:lint-ignore suppression syntax.
//
// Usage:
//
//	epoc-lint [flags] [./...|./internal/synth|...]
//
// Exit status: 0 when clean, 1 when any unsuppressed finding exists,
// 2 when the module fails to load.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"epoc/internal/lint"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list analyzers and exit")
		run        = flag.String("run", "", "comma-separated analyzers to run (default: all)")
		suppressed = flag.Bool("suppressed", false, "also print suppressed findings with their reasons")
		modDir     = flag.String("mod", "", "module root to lint (default: walk up from cwd to go.mod); a tree without go.mod is compiled as module \"epoc\", which is how the testdata fixtures run")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: epoc-lint [flags] [patterns]\n\npatterns are ./... (default) or ./<dir> prefixes relative to the module root\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *run != "" {
		var err error
		analyzers, err = lint.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epoc-lint:", err)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "epoc-lint:", err)
		os.Exit(2)
	}
	var root, modPath string
	if *modDir != "" {
		root, err = filepath.Abs(*modDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epoc-lint:", err)
			os.Exit(2)
		}
		if r, mp, err := lint.FindModuleRoot(root); err == nil && r == root {
			modPath = mp
		} else {
			modPath = "epoc" // fixture trees carry no go.mod
		}
	} else {
		root, modPath, err = lint.FindModuleRoot(cwd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epoc-lint:", err)
			os.Exit(2)
		}
	}
	mod, err := lint.LoadModule(root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epoc-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings := lint.Run(mod, analyzers)
	failed := 0
	nsup := 0
	for _, f := range findings {
		if !matchesPatterns(mod, root, f.Pos.Filename, patterns) {
			continue
		}
		rel, err := filepath.Rel(cwd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		if f.Suppressed {
			nsup++
			if *suppressed {
				fmt.Printf("%s:%d:%d: %s: suppressed (%s): %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Reason, f.Message)
			}
			continue
		}
		failed++
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "epoc-lint: %d finding(s) (%d suppressed)\n", failed, nsup)
		os.Exit(1)
	}
}

// matchesPatterns reports whether filename (absolute) falls under any
// of the go-style patterns, resolved relative to the module root.
func matchesPatterns(mod *lint.Module, root, filename string, patterns []string) bool {
	rel, err := filepath.Rel(root, filename)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(filepath.Dir(rel))
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "." {
			return true
		}
		if suffix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == suffix || strings.HasPrefix(rel, suffix+"/") {
				return true
			}
			continue
		}
		if rel == pat {
			return true
		}
	}
	return false
}
