// Command epoc-serve runs the EPOC compilation pipeline as a
// long-lived HTTP/JSON service: POST OpenQASM 2.0 + options to
// /v1/compile and receive the run-manifest envelope; see SERVING.md
// for the full API reference and operations guide.
//
// Usage:
//
//	epoc-serve -addr localhost:8080
//	epoc-serve -addr :8080 -workers 4 -queue 64 -default-deadline 1m
//
//	curl -s localhost:8080/v1/compile -d '{"circuit":"ghz","options":{"mode":"estimate"}}'
//
// The process drains gracefully on SIGINT/SIGTERM: new compiles get
// 503, queued and running ones finish (bounded by -drain-timeout),
// then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"epoc/internal/logx"
	"epoc/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "localhost:8080", "listen address (host:port; :0 picks a free port)")
		workers         = flag.Int("workers", 2, "compile worker pool: max concurrent compilations")
		queue           = flag.Int("queue", 16, "admission queue depth; a full queue answers 429 + Retry-After")
		compileWorkers  = flag.Int("compile-workers", 1, "default per-compile synthesis/QOC parallelism (request options.workers overrides)")
		defaultDeadline = flag.Duration("default-deadline", 2*time.Minute, "soft deadline applied when a request has no deadline_ms")
		maxDeadline     = flag.Duration("max-deadline", 10*time.Minute, "cap on requested deadlines")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: in-flight compiles are canceled after this long")
		retainJobs      = flag.Int("retain-jobs", 128, "finished jobs kept queryable via GET /v1/compile/{id}")
		maxQubits       = flag.Int("max-qubits", 256, "reject circuits wider than this")
		maxBody         = flag.Int64("max-body-bytes", 1<<20, "request body size cap")
		noDebug         = flag.Bool("no-debug", false, "do not mount /debug/pprof and /debug/vars on the service mux")
		storePath       = flag.String("store", "", "persistent pulse/synth store root: warm the caches from it at startup, flush new entries after every compile")
		logLevel        = flag.String("log-level", "info", "structured JSON log level on stderr: debug | info | warn | error | off (SERVING.md \"Logging\")")
	)
	flag.Parse()

	var logger *logx.Logger
	if *logLevel != "off" {
		level, err := logx.ParseLevel(*logLevel)
		if err != nil {
			fatal(err)
		}
		logger = logx.New(os.Stderr, level)
	}

	srv, err := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CompileWorkers:  *compileWorkers,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		RetainJobs:      *retainJobs,
		MaxQubits:       *maxQubits,
		MaxBodyBytes:    *maxBody,
		Debug:           !*noDebug,
		StorePath:       *storePath,
		Log:             logger,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "epoc-serve: listening on http://%s (workers=%d queue=%d)\n",
		ln.Addr(), *workers, *queue)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "epoc-serve: %v — draining (up to %s)\n", sig, *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain compiles first so blocked synchronous POSTs can still
		// flush their responses, then close the listener.
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "epoc-serve: drain incomplete: %v\n", err)
		}
		httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelHTTP()
		if err := httpSrv.Shutdown(httpCtx); err != nil {
			fmt.Fprintf(os.Stderr, "epoc-serve: http shutdown: %v\n", err)
		}
		fmt.Fprintln(os.Stderr, "epoc-serve: stopped")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "epoc-serve:", err)
	os.Exit(1)
}
