package epoc

import (
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	prog, err := ParseQASM(`
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(prog.Circuit, CompileOptions{
		Strategy: StrategyEPOC,
		Device:   LinearDevice(2),
		Mode:     QOCEstimate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 || res.Fidelity <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestNewGateValidation(t *testing.T) {
	if _, err := NewGate("h"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGate("rz", 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGate("rz"); err == nil {
		t.Fatal("expected param error")
	}
	if _, err := NewGate("nope"); err == nil {
		t.Fatal("expected unknown-gate error")
	}
}

func TestBuildCircuitByHand(t *testing.T) {
	c := NewCircuit(2)
	h, _ := NewGate("h")
	cx, _ := NewGate("cx")
	c.Append(h, 0)
	c.Append(cx, 0, 1)
	out, err := WriteQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cx q[0],q[1];") {
		t.Fatalf("qasm output:\n%s", out)
	}
}

func TestBenchmarkAccess(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 17 {
		t.Fatalf("got %d benchmarks", len(names))
	}
	for _, n := range names {
		if _, err := Benchmark(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := Benchmark("missing"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDepthOptimizeNeverHurts(t *testing.T) {
	c, _ := Benchmark("vqe")
	opt := DepthOptimize(c)
	if opt.Depth() > c.Depth() {
		t.Fatalf("DepthOptimize increased depth: %d -> %d", c.Depth(), opt.Depth())
	}
}

func TestStrategiesList(t *testing.T) {
	ss := Strategies()
	if len(ss) != 5 || ss[0] != StrategyGateBased || ss[4] != StrategyEPOC {
		t.Fatalf("strategies: %v", ss)
	}
}

func TestSharedLibraryAcrossCompiles(t *testing.T) {
	lib := NewPulseLibrary(true)
	c, _ := Benchmark("ghz")
	opts := CompileOptions{Strategy: StrategyEPOC, Device: LinearDevice(c.NumQubits), Mode: QOCEstimate, Library: lib}
	if _, err := Compile(c, opts); err != nil {
		t.Fatal(err)
	}
	if lib.Len() == 0 {
		t.Fatal("library not populated")
	}
}
