package linalg

import (
	"math"
	"math/cmplx"
	"sort"
)

// EigHermitian diagonalizes a Hermitian matrix using the cyclic complex
// Jacobi method. It returns real eigenvalues (ascending) and a unitary
// matrix whose columns are the corresponding eigenvectors, so that
// A = V · diag(vals) · V†.
func EigHermitian(a *Matrix) (vals []float64, vecs *Matrix) {
	mustSquare(a)
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	tol := 1e-14 * (1 + w.FrobeniusNorm())
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = real(w.At(i, i))
	}
	// Sort ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for c, src := range idx {
		sortedVals[c] = vals[src]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, c, v.At(r, src))
		}
	}
	return sortedVals, sortedVecs
}

// jacobiRotate zeroes w[p][q] (and w[q][p]) with a complex Givens
// rotation, accumulating the rotation into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	apq := w.At(p, q)
	r := cmplx.Abs(apq)
	if r < 1e-300 {
		return
	}
	app := real(w.At(p, p))
	aqq := real(w.At(q, q))
	phase := apq / complex(r, 0) // e^{iα}

	tau := (aqq - app) / (2 * r)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	cc := complex(c, 0)
	sePos := complex(s, 0) * phase             // s·e^{iα}
	seNeg := complex(s, 0) * cmplx.Conj(phase) // s·e^{-iα}

	n := w.Rows
	// Column update: W <- W·R with R[p][p]=c, R[p][q]=s·e^{iα},
	// R[q][p]=-s·e^{-iα}, R[q][q]=c.
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, cc*wkp-seNeg*wkq)
		w.Set(k, q, sePos*wkp+cc*wkq)
	}
	// Row update: W <- R†·W.
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, cc*wpk-sePos*wqk)
		w.Set(q, k, seNeg*wpk+cc*wqk)
	}
	// Force exact symmetry of the zeroed pair and realness of the diagonal.
	w.Set(p, q, 0)
	w.Set(q, p, 0)
	w.Set(p, p, complex(real(w.At(p, p)), 0))
	w.Set(q, q, complex(real(w.At(q, q)), 0))
	// Accumulate eigenvectors: V <- V·R.
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, cc*vkp-seNeg*vkq)
		v.Set(k, q, sePos*vkp+cc*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s += absSq(m.At(i, j))
		}
	}
	return math.Sqrt(s)
}

// EigSymmetricReal diagonalizes a real symmetric matrix given as a
// complex Matrix with negligible imaginary parts. It returns ascending
// eigenvalues and a real orthogonal eigenvector matrix. It is a thin
// wrapper over EigHermitian that strips imaginary round-off, used by the
// KAK decomposition where real orthogonal eigenbases are required.
func EigSymmetricReal(a *Matrix) (vals []float64, vecs *Matrix) {
	re := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		re.Data[i] = complex(real(v), 0)
	}
	vals, vecs = EigHermitian(re)
	// A real symmetric matrix has a real eigenbasis, but the complex
	// Jacobi sweep can introduce a constant phase per column; rotate each
	// column to be real.
	n := vecs.Rows
	for c := 0; c < n; c++ {
		// Find the largest-magnitude entry and divide out its phase.
		var best complex128
		var bestAbs float64
		for r := 0; r < n; r++ {
			if ab := cmplx.Abs(vecs.At(r, c)); ab > bestAbs {
				bestAbs = ab
				best = vecs.At(r, c)
			}
		}
		//epoc:lint-ignore floatcmp guards normalization when the eigencolumn is exactly zero
		if bestAbs == 0 {
			continue
		}
		ph := best / complex(bestAbs, 0)
		for r := 0; r < n; r++ {
			vecs.Set(r, c, vecs.At(r, c)/ph)
		}
	}
	return vals, vecs
}
