package linalg

import (
	"math"
	"math/cmplx"

	"epoc/internal/linalg/kernel"
)

// EigHermitian diagonalizes a Hermitian matrix using the cyclic complex
// Jacobi method. It returns real eigenvalues (ascending) and a unitary
// matrix whose columns are the corresponding eigenvectors, so that
// A = V · diag(vals) · V†.
func EigHermitian(a *Matrix) (vals []float64, vecs *Matrix) {
	vals = make([]float64, a.Rows)
	vecs = NewMatrix(a.Rows, a.Rows)
	EigHermitianInto(nil, a, vals, vecs)
	return vals, vecs
}

// EigHermitianInto is EigHermitian writing into caller-owned vals
// (length n) and vecs (n×n), with all temporaries drawn from ws (nil
// allowed: falls back to allocation). This is the form the GRAPE
// propagator loop calls once per changed time slot per iteration, so
// with a warm workspace it allocates nothing.
//
//epoc:hot
func EigHermitianInto(ws *kernel.Workspace, a *Matrix, vals []float64, vecs *Matrix) {
	mustSquare(a)
	n := a.Rows
	if len(vals) != n || vecs.Rows != n || vecs.Cols != n {
		panic("linalg: EigHermitianInto shape mismatch")
	}
	mark := ws.Mark()
	defer ws.Rewind(mark)

	w := matrixAt(ws, n, n)
	copy(w.Data, a.Data)
	v := matrixAt(ws, n, n)
	for i := 0; i < n; i++ {
		v.Data[i*n+i] = 1
	}

	const maxSweeps = 100
	tol := 1e-14 * (1 + w.FrobeniusNorm())
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(&w)
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(&w, &v, p, q)
			}
		}
	}

	raw := ws.TakeFloat(n)
	for i := 0; i < n; i++ {
		raw[i] = real(w.At(i, i))
	}
	// Sort ascending, permuting eigenvector columns to match. A stable
	// insertion sort (n is a small power of two here) keeps degenerate
	// eigenvalues in sweep order deterministically and, unlike
	// sort.Slice, allocates nothing.
	idx := ws.TakeInt(n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && raw[idx[j]] < raw[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	for c, src := range idx {
		vals[c] = raw[src]
		for r := 0; r < n; r++ {
			vecs.Data[r*n+c] = v.Data[r*n+src]
		}
	}
}

// jacobiRotate zeroes w[p][q] (and w[q][p]) with a complex Givens
// rotation, accumulating the rotation into v. The three update sweeps
// run over strided/contiguous slices directly: this is the inner loop
// of every Hermitian exponential in the pipeline.
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.Rows
	wd, vd := w.Data, v.Data
	apq := wd[p*n+q]
	r := cmplx.Abs(apq)
	if r < 1e-300 {
		return
	}
	app := real(wd[p*n+p])
	aqq := real(wd[q*n+q])
	phase := apq / complex(r, 0) // e^{iα}

	tau := (aqq - app) / (2 * r)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	cc := complex(c, 0)
	sePos := complex(s, 0) * phase        // s·e^{iα}
	seNeg := complex(s, 0) * conjc(phase) // s·e^{-iα}

	// Column update: W <- W·R with R[p][p]=c, R[p][q]=s·e^{iα},
	// R[q][p]=-s·e^{-iα}, R[q][q]=c.
	for kp, kq := p, q; kp < n*n; kp, kq = kp+n, kq+n {
		wkp, wkq := wd[kp], wd[kq]
		wd[kp] = cc*wkp - seNeg*wkq
		wd[kq] = sePos*wkp + cc*wkq
	}
	// Row update: W <- R†·W, rows p and q are contiguous.
	rp := wd[p*n : (p+1)*n]
	rq := wd[q*n : (q+1)*n]
	for k := 0; k < n; k++ {
		wpk, wqk := rp[k], rq[k]
		rp[k] = cc*wpk - sePos*wqk
		rq[k] = seNeg*wpk + cc*wqk
	}
	// Force exact symmetry of the zeroed pair and realness of the diagonal.
	rp[q] = 0
	rq[p] = 0
	rp[p] = complex(real(rp[p]), 0)
	rq[q] = complex(real(rq[q]), 0)
	// Accumulate eigenvectors: V <- V·R.
	for kp, kq := p, q; kp < n*n; kp, kq = kp+n, kq+n {
		vkp, vkq := vd[kp], vd[kq]
		vd[kp] = cc*vkp - seNeg*vkq
		vd[kq] = sePos*vkp + cc*vkq
	}
}

// conjc is a call-free complex conjugate for the rotation kernels.
func conjc(v complex128) complex128 { return complex(real(v), -imag(v)) }

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		row := m.Data[i*n : (i+1)*n]
		for j, v := range row {
			if i == j {
				continue
			}
			s += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return math.Sqrt(s)
}

// EigSymmetricReal diagonalizes a real symmetric matrix given as a
// complex Matrix with negligible imaginary parts. It returns ascending
// eigenvalues and a real orthogonal eigenvector matrix. It is a thin
// wrapper over EigHermitian that strips imaginary round-off, used by the
// KAK decomposition where real orthogonal eigenbases are required.
func EigSymmetricReal(a *Matrix) (vals []float64, vecs *Matrix) {
	re := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		re.Data[i] = complex(real(v), 0)
	}
	vals, vecs = EigHermitian(re)
	// A real symmetric matrix has a real eigenbasis, but the complex
	// Jacobi sweep can introduce a constant phase per column; rotate each
	// column to be real.
	n := vecs.Rows
	for c := 0; c < n; c++ {
		// Find the largest-magnitude entry and divide out its phase.
		var best complex128
		var bestAbs float64
		for r := 0; r < n; r++ {
			if ab := cmplx.Abs(vecs.At(r, c)); ab > bestAbs {
				bestAbs = ab
				best = vecs.At(r, c)
			}
		}
		//epoc:lint-ignore floatcmp guards normalization when the eigencolumn is exactly zero
		if bestAbs == 0 {
			continue
		}
		ph := best / complex(bestAbs, 0)
		for r := 0; r < n; r++ {
			vecs.Set(r, c, vecs.At(r, c)/ph)
		}
	}
	return vals, vecs
}
