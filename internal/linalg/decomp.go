package linalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U where L
// is unit lower triangular and U is upper triangular, both packed into
// the single matrix LU.
type LU struct {
	LU    *Matrix
	Pivot []int // row i of the factorization came from row Pivot[i] of A
	Sign  int   // +1 or -1, parity of the permutation
}

// LUDecompose factors the square matrix a with partial pivoting.
func LUDecompose(a *Matrix) (*LU, error) {
	mustSquare(a)
	lu := a.Clone()
	piv := make([]int, a.Rows)
	sign, err := luFactor(lu, piv)
	if err != nil {
		return nil, err
	}
	return &LU{LU: lu, Pivot: piv, Sign: sign}, nil
}

// luFactor factors lu in place with partial pivoting, filling piv
// (len n) with the source row of each factored row. It is the
// allocation-free core shared by LUDecompose and the workspace-backed
// Padé solve in ExpmInto.
func luFactor(lu *Matrix, piv []int) (sign int, err error) {
	n := lu.Rows
	for i := range piv {
		piv[i] = i
	}
	sign = 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		best := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu.At(i, k)); a > best {
				best = a
				p = i
			}
		}
		//epoc:lint-ignore floatcmp pivot magnitude exactly 0 means structurally singular
		if best == 0 {
			return sign, ErrSingular
		}
		if p != k {
			swapRows(lu, p, k)
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path; elimination of a zero entry is a no-op
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return sign, nil
}

// luSolvePermuted substitutes through a factored matrix in place: x
// must already hold the right-hand side permuted by the pivot order
// (x[i] = b[piv[i]]) and is overwritten with the solution.
func luSolvePermuted(lu *Matrix, x []complex128) {
	n := lu.Rows
	// Forward substitution (L is unit lower).
	for i := 1; i < n; i++ {
		var s complex128
		row := lu.Data[i*n : i*n+i]
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s complex128
		row := lu.Data[i*n+i+1 : (i+1)*n]
		for j, v := range row {
			s += v * x[i+1+j]
		}
		x[i] = (x[i] - s) / lu.Data[i*n+i]
	}
}

// Solve returns x with A·x = b for the factored matrix.
func (f *LU) Solve(b []complex128) []complex128 {
	n := f.LU.Rows
	if len(b) != n {
		panic("linalg: Solve dimension mismatch")
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.Pivot[i]]
	}
	luSolvePermuted(f.LU, x)
	return x
}

// SolveMatrix returns X with A·X = B.
func (f *LU) SolveMatrix(b *Matrix) *Matrix {
	n := f.LU.Rows
	if b.Rows != n {
		panic("linalg: SolveMatrix dimension mismatch")
	}
	out := NewMatrix(n, b.Cols)
	col := make([]complex128, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := f.Solve(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.Sign), 0)
	n := f.LU.Rows
	for i := 0; i < n; i++ {
		d *= f.LU.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ for a square matrix, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(Identity(a.Rows)), nil
}

// Solve solves A·x = b directly.
func Solve(a *Matrix, b []complex128) ([]complex128, error) {
	f, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Det returns the determinant of a square matrix (0 if singular).
func Det(a *Matrix) complex128 {
	f, err := LUDecompose(a)
	if err != nil {
		return 0
	}
	return f.Det()
}

// QRDecompose computes a Householder QR factorization A = Q·R with Q
// unitary and R upper triangular. A must have Rows >= Cols.
func QRDecompose(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("linalg: QRDecompose requires rows >= cols")
	}
	r = a.Clone()
	q = Identity(m)
	v := make([]complex128, m)
	for k := 0; k < n && k < m-1; k++ {
		// Build Householder vector for column k below the diagonal.
		var normx float64
		for i := k; i < m; i++ {
			normx += absSq(r.At(i, k))
		}
		normx = math.Sqrt(normx)
		//epoc:lint-ignore floatcmp an exactly-zero column needs no Householder reflection
		if normx == 0 {
			continue
		}
		akk := r.At(k, k)
		var alpha complex128
		//epoc:lint-ignore floatcmp exact zero selects the real-alpha branch; any nonzero magnitude uses its phase
		if akk == 0 {
			alpha = complex(-normx, 0)
		} else {
			alpha = -akk / complex(cmplx.Abs(akk), 0) * complex(normx, 0)
		}
		var vnorm float64
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
		}
		v[k] -= alpha
		for i := k; i < m; i++ {
			vnorm += absSq(v[i])
		}
		//epoc:lint-ignore floatcmp guards division by the reflector norm
		if vnorm == 0 {
			continue
		}
		beta := complex(2/vnorm, 0)
		// R <- (I - beta v v†) R
		for j := k; j < n; j++ {
			var s complex128
			for i := k; i < m; i++ {
				s += cmplx.Conj(v[i]) * r.At(i, j)
			}
			s *= beta
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-v[i]*s)
			}
		}
		// Q <- Q (I - beta v v†)
		for i := 0; i < m; i++ {
			var s complex128
			for l := k; l < m; l++ {
				s += q.At(i, l) * v[l]
			}
			s *= beta
			for l := k; l < m; l++ {
				q.Set(i, l, q.At(i, l)-s*cmplx.Conj(v[l]))
			}
		}
	}
	// Zero out numerical noise below the diagonal of R.
	for i := 1; i < m; i++ {
		for j := 0; j < n && j < i; j++ {
			r.Set(i, j, 0)
		}
	}
	return q, r
}

func absSq(v complex128) float64 { return real(v)*real(v) + imag(v)*imag(v) }

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
