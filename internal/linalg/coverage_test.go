package linalg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestExpmPadeOrders drives every Padé order branch by scaling a fixed
// skew-Hermitian generator to norms in each theta band, comparing
// against the eigendecomposition exponential.
func TestExpmPadeOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := RandomHermitian(4, rng)
	h = h.Scale(complex(1/h.OneNorm(), 0)) // norm 1 generator
	for _, scale := range []float64{0.01, 0.1, 0.5, 1.5, 4.0, 20.0} {
		a := h.Scale(complex(0, scale))
		got := Expm(a)
		want := ExpIHermitian(h, scale)
		if !got.Equal(want, 1e-8) {
			t.Fatalf("scale %v: Padé and eigen exponentials differ by %v",
				scale, got.Sub(want).MaxAbs())
		}
	}
}

func TestSolvePanicsOnDimensionMismatch(t *testing.T) {
	a := Identity(2)
	f, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { f.Solve([]complex128{1, 2, 3}) },
		func() { f.SolveMatrix(NewMatrix(3, 3)) },
		func() { a.MulVec([]complex128{1}) },
		func() { NewMatrix(-1, 2) },
		func() { NewMatrix(2, 3).Trace() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQRRequiresTall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wide matrix")
		}
	}()
	QRDecompose(NewMatrix(2, 3))
}

func TestSolveSingularError(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 2), []complex128{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
	if _, err := Inverse(NewMatrix(2, 2)); err == nil {
		t.Fatal("expected singular inverse error")
	}
}

func TestCanonicalPhaseZeroMatrix(t *testing.T) {
	z := NewMatrix(2, 2)
	if got := CanonicalPhase(z); got.MaxAbs() != 0 {
		t.Fatal("zero matrix canonicalization changed values")
	}
}

func TestStringContainsEntries(t *testing.T) {
	m := FromRows([][]complex128{{1.5, 0}, {0, -2}})
	s := m.String()
	if !strings.Contains(s, "1.5000") || !strings.Contains(s, "-2.0000") {
		t.Fatalf("String output missing entries:\n%s", s)
	}
}

func TestKronAllThreeFactors(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	got := KronAll(x, x, x)
	if got.Rows != 8 {
		t.Fatalf("triple Kron dim %d", got.Rows)
	}
	// X⊗X⊗X maps |000> to |111>.
	v := make([]complex128, 8)
	v[0] = 1
	if out := got.MulVec(v); out[7] != 1 {
		t.Fatal("X^⊗3 wrong")
	}
}

func TestScaleInPlaceAndAddInPlace(t *testing.T) {
	a := Identity(2)
	a.ScaleInPlace(3)
	if a.At(0, 0) != 3 {
		t.Fatal("ScaleInPlace")
	}
	a.AddInPlace(Identity(2))
	if a.At(1, 1) != 4 {
		t.Fatal("AddInPlace")
	}
}

func TestFingerprintSnapsTinyValues(t *testing.T) {
	a := Identity(2)
	b := Identity(2)
	b.Set(0, 1, complex(1e-9, -1e-9)) // below the snap threshold
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("tiny numerical noise changed the fingerprint")
	}
}

func TestEigHermitianOneByOne(t *testing.T) {
	h := FromRows([][]complex128{{2.5}})
	vals, vecs := EigHermitian(h)
	if math.Abs(vals[0]-2.5) > 1e-12 || vecs.At(0, 0) != 1 {
		t.Fatalf("1x1 eig: %v %v", vals, vecs)
	}
}

func TestPhaseDistanceClampsNegative(t *testing.T) {
	// Numerically |tr| can exceed n by round-off; the distance must
	// clamp at 0 instead of going NaN.
	u := Identity(3)
	if d := PhaseDistance(u, u); d != 0 || math.IsNaN(d) {
		t.Fatalf("self distance %v", d)
	}
}
