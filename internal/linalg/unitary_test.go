package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomUnitaryIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 4, 8} {
		u := RandomUnitary(n, rng)
		if !u.IsUnitary(1e-9) {
			t.Fatalf("RandomUnitary(%d) not unitary", n)
		}
	}
}

func TestRandomHermitianIsHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := RandomHermitian(5, rng)
	if !h.IsHermitian(0) {
		t.Fatal("RandomHermitian not Hermitian")
	}
}

func TestHSInner(t *testing.T) {
	id := Identity(2)
	if HSInner(id, id) != 2 {
		t.Fatalf("tr(I†I) = %v", HSInner(id, id))
	}
}

func TestPhaseDistanceInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := RandomUnitary(4, rng)
	ph := cmplx.Exp(complex(0, 1.234))
	if d := PhaseDistance(u, u.Scale(ph)); d > 1e-9 {
		t.Fatalf("phase distance to phased copy = %v", d)
	}
	v := RandomUnitary(4, rng)
	if d := PhaseDistance(u, v); d < 0.01 {
		t.Fatalf("independent unitaries too close: %v", d)
	}
}

func TestAlignPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := RandomUnitary(3, rng)
	b := u.Scale(cmplx.Exp(complex(0, 2.1)))
	aligned := AlignPhase(u, b)
	if FrobeniusDistance(u, aligned) > 1e-9 {
		t.Fatalf("AlignPhase residual %v", FrobeniusDistance(u, aligned))
	}
	// Degenerate case: zero inner product must not blow up.
	z := NewMatrix(2, 2)
	if got := AlignPhase(z, Identity(2)); got == nil {
		t.Fatal("AlignPhase returned nil")
	}
}

func TestCanonicalPhaseStable(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	u := RandomUnitary(4, rng)
	for _, phi := range []float64{0.1, 1.5, -2.7, math.Pi} {
		c1 := CanonicalPhase(u)
		c2 := CanonicalPhase(u.Scale(cmplx.Exp(complex(0, phi))))
		if !c1.Equal(c2, 1e-9) {
			t.Fatalf("canonical phase differs for phi=%v", phi)
		}
	}
}

func TestFingerprintMatchesUpToGlobalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	u := RandomUnitary(4, rng)
	fp1 := Fingerprint(u)
	fp2 := Fingerprint(u.Scale(cmplx.Exp(complex(0, 0.77))))
	if fp1 != fp2 {
		t.Fatal("fingerprints of phase-equal unitaries differ")
	}
	v := RandomUnitary(4, rng)
	if Fingerprint(v) == fp1 {
		t.Fatal("fingerprints of independent unitaries collide")
	}
}

func TestFingerprintZeroMatrix(t *testing.T) {
	if Fingerprint(NewMatrix(2, 2)) != Fingerprint(NewMatrix(2, 2)) {
		t.Fatal("zero matrix fingerprint not deterministic")
	}
}

func TestEmbedOperatorSingleQubit(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	// X on qubit 0 of 2 qubits = I ⊗ X in (q1 ⊗ q0) ordering.
	got := EmbedOperator(x, []int{0}, 2)
	want := Identity(2).Kron(x)
	if !got.Equal(want, tol) {
		t.Fatalf("embed X on q0:\n%v\nwant\n%v", got, want)
	}
	// X on qubit 1 = X ⊗ I.
	got = EmbedOperator(x, []int{1}, 2)
	want = x.Kron(Identity(2))
	if !got.Equal(want, tol) {
		t.Fatalf("embed X on q1:\n%v", got)
	}
}

func TestEmbedOperatorTwoQubitOrdering(t *testing.T) {
	// CNOT with control = op qubit 1, target = op qubit 0 in
	// little-endian convention: |c t> → |c, t⊕c> with index = 2c + t.
	cnot := FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	// Embed on targets {0,1} of a 2-qubit system: identical matrix.
	got := EmbedOperator(cnot, []int{0, 1}, 2)
	if !got.Equal(cnot, tol) {
		t.Fatalf("identity embedding changed the matrix:\n%v", got)
	}
	// Embed reversed {1,0}: swaps the roles of control and target.
	got = EmbedOperator(cnot, []int{1, 0}, 2)
	want := FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	})
	if !got.Equal(want, tol) {
		t.Fatalf("reversed embedding:\n%v\nwant\n%v", got, want)
	}
}

func TestEmbedOperatorThreeQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	u := RandomUnitary(2, rng)
	// Embedding a 1q op on qubit 1 of 3: I ⊗ U ⊗ I (q2 ⊗ q1 ⊗ q0).
	got := EmbedOperator(u, []int{1}, 3)
	want := Identity(2).Kron(u).Kron(Identity(2))
	if !got.Equal(want, 1e-10) {
		t.Fatal("3-qubit embedding mismatch")
	}
}

func TestEmbedOperatorValidation(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	for _, bad := range [][]int{{-1}, {3}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for targets %v", bad)
				}
			}()
			EmbedOperator(x, bad, 3)
		}()
	}
}

func TestQuickEmbedPreservesUnitarity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := RandomUnitary(4, rng)
		q0 := rng.Intn(3)
		q1 := (q0 + 1 + rng.Intn(2)) % 3
		e := EmbedOperator(u, []int{q0, q1}, 3)
		return e.IsUnitary(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEmbedComposition(t *testing.T) {
	// Embedding commutes with multiplication for ops on the same targets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomUnitary(4, rng)
		b := RandomUnitary(4, rng)
		targets := []int{2, 0}
		lhs := EmbedOperator(a.Mul(b), targets, 3)
		rhs := EmbedOperator(a, targets, 3).Mul(EmbedOperator(b, targets, 3))
		return lhs.Equal(rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
