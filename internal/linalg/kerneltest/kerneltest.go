// Package kerneltest is the differential test harness for the profiled
// kernel layer (internal/linalg/kernel). It holds the naive reference
// implementations every kernel is checked against, the operand
// generators (random dense, Haar unitaries, Hermitian, ill-conditioned,
// denormal, sparse), and the tolerance model for comparing two
// bit-deterministic summation orders. The package has no non-test
// consumers: it exists so the property-based tests, the fuzz targets
// and the kernel benchmarks share one vocabulary, and so the reference
// code can never be accidentally linked into the pipeline.
package kerneltest

import (
	"math"
	"math/cmplx"
	"math/rand"

	"epoc/internal/linalg"
)

// NaiveMatMul is the textbook triple loop: dst[i][j] = Σ_k a[i][k]·b[k][j]
// with the inner sum accumulated left to right. Every kernel path must
// agree with it to within SumTol of the operand magnitudes.
func NaiveMatMul(dst, a, b []complex128, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s complex128
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// NaiveMulVec is the reference matrix-vector product.
func NaiveMulVec(dst, a, v []complex128, m, n int) {
	for i := 0; i < m; i++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += a[i*n+j] * v[j]
		}
		dst[i] = s
	}
}

// NaiveAdjointMul is the reference dst = a†·b for a (k×m), b (k×n).
func NaiveAdjointMul(dst, a, b []complex128, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s complex128
			for p := 0; p < k; p++ {
				s += cmplx.Conj(a[p*m+i]) * b[p*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// NaiveMulAdjoint is the reference dst = a·b† for a (m×k), b (n×k).
func NaiveMulAdjoint(dst, a, b []complex128, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s complex128
			for p := 0; p < k; p++ {
				s += a[i*k+p] * cmplx.Conj(b[j*k+p])
			}
			dst[i*n+j] = s
		}
	}
}

// SumTol bounds the difference between two correct k-term summations of
// the same products under different association: c·k·ε·max|a|·max|b|
// with a small constant. Denormal operands are covered by the absolute
// floor.
func SumTol(a, b []complex128, k int) float64 {
	scale := MaxAbs(a) * MaxAbs(b)
	tol := 8 * float64(k+1) * 2.220446049250313e-16 * scale
	if tol < 1e-300 {
		tol = 1e-300
	}
	return tol
}

// MaxAbs returns the largest entry magnitude (0 for an empty slice).
func MaxAbs(s []complex128) float64 {
	var m float64
	for _, v := range s {
		if ab := cmplx.Abs(v); ab > m {
			m = ab
		}
	}
	return m
}

// MaxDiff returns the largest |x[i]-y[i]|.
func MaxDiff(x, y []complex128) float64 {
	var m float64
	for i := range x {
		if d := cmplx.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Operand generators. All take the rng so table-driven tests stay
// deterministic per seed.

// RandomDense fills an m×n operand with standard complex Gaussians.
func RandomDense(m, n int, rng *rand.Rand) []complex128 {
	out := make([]complex128, m*n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

// RandomSparse zeroes all but a `fill` fraction of a random operand, so
// the kernel's zero-skip streaming path and density dispatch are hit.
func RandomSparse(m, n int, fill float64, rng *rand.Rand) []complex128 {
	out := make([]complex128, m*n)
	for i := range out {
		if rng.Float64() < fill {
			out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return out
}

// RandomUnitary returns a Haar unitary's raw data.
func RandomUnitary(n int, rng *rand.Rand) []complex128 {
	return linalg.RandomUnitary(n, rng).Data
}

// RandomHermitian returns a GUE-like Hermitian matrix's raw data.
func RandomHermitian(n int, rng *rand.Rand) []complex128 {
	return linalg.RandomHermitian(n, rng).Data
}

// IllConditioned builds an n×n matrix with singular values spanning
// ~16 orders of magnitude (U·diag(10^{-15}..1)·V† for Haar U, V), the
// worst case the pipeline's Padé denominators and projector chains see.
func IllConditioned(n int, rng *rand.Rand) []complex128 {
	u := linalg.RandomUnitary(n, rng)
	v := linalg.RandomUnitary(n, rng)
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		exp := -15 * float64(i) / math.Max(1, float64(n-1))
		d.Data[i*n+i] = complex(math.Pow(10, exp), 0)
	}
	return u.Mul(d).Mul(v.Adjoint()).Data
}

// Denormal fills an m×n operand with subnormal-magnitude entries
// (~1e-310), exercising gradual underflow in the accumulators.
func Denormal(m, n int, rng *rand.Rand) []complex128 {
	out := make([]complex128, m*n)
	for i := range out {
		out[i] = complex(rng.NormFloat64()*1e-310, rng.NormFloat64()*1e-310)
	}
	return out
}
