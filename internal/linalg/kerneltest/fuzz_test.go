package kerneltest

import (
	"encoding/binary"
	"math"
	"testing"

	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
)

// decodeOperands carves two m×k / k×n complex operands out of raw fuzz
// bytes. Dimensions come from the first two bytes (clamped to keep the
// product affordable), entries from consecutive float64 pairs; NaN and
// Inf entries are kept — the kernels must not crash on them — but a
// fuzz input that contains any makes the differential comparison
// vacuous (NaN ≠ NaN), so those are filtered by the callers that check
// values.
func decodeOperands(data []byte) (a, b []complex128, m, k, n int, ok bool) {
	if len(data) < 3 {
		return nil, nil, 0, 0, 0, false
	}
	m = int(data[0])%9 + 1
	k = int(data[1])%9 + 1
	n = int(data[2])%9 + 1
	data = data[3:]
	need := (m*k + k*n) * 16
	if len(data) < need {
		return nil, nil, 0, 0, 0, false
	}
	read := func(cnt int) []complex128 {
		out := make([]complex128, cnt)
		for i := range out {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
			out[i] = complex(re, im)
			data = data[16:]
		}
		return out
	}
	return read(m * k), read(k * n), m, k, n, true
}

func finite(s []complex128) bool {
	for _, v := range s {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) || math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
			return false
		}
	}
	return true
}

// FuzzKernelMatmul drives kernel.MatMul with arbitrary shapes and bit
// patterns and differentially checks it against the naive triple loop.
// Non-finite inputs only assert no-crash (comparison is vacuous).
func FuzzKernelMatmul(f *testing.F) {
	seed := make([]byte, 3+2*16)
	seed[0], seed[1], seed[2] = 1, 1, 1
	f.Add(seed)
	big := make([]byte, 3+(8*8+8*8)*16)
	big[0], big[1], big[2] = 7, 7, 7
	for i := 3; i < len(big); i++ {
		big[i] = byte(i * 37)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, m, k, n, ok := decodeOperands(data)
		if !ok {
			return
		}
		got := make([]complex128, m*n)
		kernel.MatMul(nil, got, a, b, m, k, n)
		if !finite(a) || !finite(b) {
			return
		}
		want := make([]complex128, m*n)
		NaiveMatMul(want, a, b, m, k, n)
		if d, tol := MaxDiff(got, want), SumTol(a, b, k); d > tol && !math.IsInf(MaxAbs(want), 0) {
			t.Fatalf("m=%d k=%d n=%d: kernel vs naive max diff %g > tol %g", m, k, n, d, tol)
		}
	})
}

// FuzzKernelExpm checks the scaling-and-squaring exponential on
// arbitrary square inputs against the two identities that survive any
// rounding: exp never panics on finite input, and exp(A)·exp(-A) ≈ I
// for inputs of modest norm.
func FuzzKernelExpm(f *testing.F) {
	seed := make([]byte, 3+2*16)
	seed[0], seed[1], seed[2] = 1, 1, 1
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, _, m, k, _, ok := decodeOperands(data)
		if !ok || m != k || !finite(a) {
			return
		}
		n := m
		mat := linalg.NewMatrix(n, n)
		copy(mat.Data, a[:n*n])
		// Clamp the norm so exp(A)·exp(-A) stays testable: scaling keeps
		// the identity check meaningful without restricting bit patterns.
		if nrm := mat.FrobeniusNorm(); nrm > 4 {
			mat = mat.Scale(complex(4/nrm, 0))
		}
		e := linalg.Expm(mat)
		eneg := linalg.Expm(mat.Scale(-1))
		prod := e.Mul(eneg)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				d := prod.At(i, j) - want
				if real(d)*real(d)+imag(d)*imag(d) > 1e-12 {
					t.Fatalf("n=%d: (e^A·e^-A)[%d][%d] = %v, want %v", n, i, j, prod.At(i, j), want)
				}
			}
		}
	})
}
