package kerneltest

import (
	"fmt"
	"math/rand"
	"testing"

	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
)

// operandClasses name every operand family the kernels must handle;
// each generator may ignore the aspect ratio it cannot express (square
// families use the row count).
var operandClasses = []struct {
	name string
	gen  func(m, n int, rng *rand.Rand) []complex128
}{
	{"dense", RandomDense},
	{"sparse10", func(m, n int, rng *rand.Rand) []complex128 { return RandomSparse(m, n, 0.1, rng) }},
	{"unitary", func(m, n int, rng *rand.Rand) []complex128 { return RandomUnitary(m, rng) }},
	{"hermitian", func(m, n int, rng *rand.Rand) []complex128 { return RandomHermitian(m, rng) }},
	{"illcond", func(m, n int, rng *rand.Rand) []complex128 { return IllConditioned(m, rng) }},
	{"denormal", Denormal},
}

// squareSizes covers every unrolled fast path (2, 4, 8), the generic
// streaming sizes around them, and 16 as the largest size the pipeline
// routinely exponentiates (4 qubits).
var squareSizes = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16}

// TestKernelMatMulMatchesNaive is the core differential property: for
// every operand class and size, every dispatch path of kernel.MatMul
// agrees with the left-to-right triple loop within summation tolerance,
// and a warm workspace does not change a single bit.
func TestKernelMatMulMatchesNaive(t *testing.T) {
	ws := kernel.NewWorkspace()
	for _, cls := range operandClasses {
		for _, n := range squareSizes {
			t.Run(fmt.Sprintf("%s/%dx%d", cls.name, n, n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n)*1000 + 7))
				a := cls.gen(n, n, rng)
				b := cls.gen(n, n, rng)
				got := make([]complex128, n*n)
				want := make([]complex128, n*n)
				kernel.MatMul(nil, got, a, b, n, n, n)
				NaiveMatMul(want, a, b, n, n, n)
				if d, tol := MaxDiff(got, want), SumTol(a, b, n); d > tol {
					t.Fatalf("kernel vs naive: max diff %g > tol %g", d, tol)
				}
				wsGot := make([]complex128, n*n)
				kernel.MatMul(ws, wsGot, a, b, n, n, n)
				for i := range got {
					if wsGot[i] != got[i] {
						t.Fatalf("workspace changed the result at %d: %v vs %v", i, wsGot[i], got[i])
					}
				}
			})
		}
	}
}

// TestKernelMatMulRectangular covers non-square shapes, including ones
// past the packing threshold so the cache-blocked path is differential-
// tested too (dims ≥ 32, dense).
func TestKernelMatMulRectangular(t *testing.T) {
	shapes := [][3]int{{2, 5, 3}, {7, 4, 9}, {1, 16, 1}, {16, 1, 16}, {33, 40, 37}, {48, 48, 48}, {64, 33, 35}}
	rng := rand.New(rand.NewSource(42))
	ws := kernel.NewWorkspace()
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := RandomDense(m, k, rng)
			b := RandomDense(k, n, rng)
			got := make([]complex128, m*n)
			want := make([]complex128, m*n)
			kernel.MatMul(ws, got, a, b, m, k, n)
			NaiveMatMul(want, a, b, m, k, n)
			if d, tol := MaxDiff(got, want), SumTol(a, b, k); d > tol {
				t.Fatalf("kernel vs naive: max diff %g > tol %g", d, tol)
			}
		})
	}
}

// TestKernelAdjointFusedMatchesNaive checks both adjoint-fused products
// against their references across classes and sizes.
func TestKernelAdjointFusedMatchesNaive(t *testing.T) {
	for _, cls := range operandClasses {
		for _, n := range squareSizes {
			t.Run(fmt.Sprintf("%s/%d", cls.name, n), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(n)*77 + 3))
				a := cls.gen(n, n, rng)
				b := cls.gen(n, n, rng)
				got := make([]complex128, n*n)
				want := make([]complex128, n*n)
				tol := SumTol(a, b, n)

				kernel.AdjointMul(got, a, b, n, n, n)
				NaiveAdjointMul(want, a, b, n, n, n)
				if d := MaxDiff(got, want); d > tol {
					t.Fatalf("AdjointMul vs naive: max diff %g > tol %g", d, tol)
				}

				kernel.MulAdjoint(got, a, b, n, n, n)
				NaiveMulAdjoint(want, a, b, n, n, n)
				if d := MaxDiff(got, want); d > tol {
					t.Fatalf("MulAdjoint vs naive: max diff %g > tol %g", d, tol)
				}
			})
		}
	}
}

// TestKernelMulVecMatchesNaive covers the vector product fast paths.
func TestKernelMulVecMatchesNaive(t *testing.T) {
	for _, cls := range operandClasses {
		for _, n := range squareSizes {
			rng := rand.New(rand.NewSource(int64(n)*13 + 1))
			a := cls.gen(n, n, rng)
			v := RandomDense(n, 1, rng)
			got := make([]complex128, n)
			want := make([]complex128, n)
			kernel.MulVec(got, a, v, n, n)
			NaiveMulVec(want, a, v, n, n)
			if d, tol := MaxDiff(got, want), SumTol(a, v, n); d > tol {
				t.Fatalf("%s/%d: MulVec vs naive: max diff %g > tol %g", cls.name, n, d, tol)
			}
		}
	}
}

// TestKernelDeterminism re-asserts the repo-wide reproducibility
// contract at the kernel level: the same operands produce bitwise
// identical results on every call, with and between workspaces —
// dispatch is a pure function of shape and values, so a Workers:1 and a
// Workers:8 pipeline run see the very same floats.
func TestKernelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 8, 16, 48} {
		a := RandomDense(n, n, rng)
		b := RandomDense(n, n, rng)
		ref := make([]complex128, n*n)
		kernel.MatMul(nil, ref, a, b, n, n, n)
		for trial := 0; trial < 3; trial++ {
			ws := kernel.NewWorkspace()
			got := make([]complex128, n*n)
			kernel.MatMul(ws, got, a, b, n, n, n)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("n=%d trial %d: nondeterministic at %d: %v vs %v", n, trial, i, got[i], ref[i])
				}
			}
		}
	}
}

// Metamorphic identities: relations that must hold whatever the
// summation order, checked through the public linalg API so the whole
// dispatch stack is under test.

func TestMetamorphicAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 4, 8, 13, 33} {
		a := linalg.NewMatrix(n, n)
		b := linalg.NewMatrix(n, n)
		c := linalg.NewMatrix(n, n)
		copy(a.Data, RandomDense(n, n, rng))
		copy(b.Data, RandomDense(n, n, rng))
		copy(c.Data, RandomDense(n, n, rng))
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		tol := 64 * float64(n*n) * 2.220446049250313e-16 * MaxAbs(a.Data) * MaxAbs(b.Data) * MaxAbs(c.Data)
		if d := MaxDiff(left.Data, right.Data); d > tol {
			t.Fatalf("n=%d: (A·B)·C vs A·(B·C): max diff %g > tol %g", n, d, tol)
		}
	}
}

func TestMetamorphicInverseProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 4, 8, 12} {
		a := linalg.RandomUnitary(n, rng)
		// Shift away from unitarity so the inverse is nontrivial.
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += complex(2, 0)
		}
		inv, err := linalg.Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: inverse failed: %v", n, err)
		}
		got := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if d := got.At(i, j) - want; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
					t.Fatalf("n=%d: (A·A⁻¹)[%d][%d] = %v, want %v", n, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestMetamorphicExpZeroIsIdentity(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		e := linalg.Expm(linalg.NewMatrix(n, n))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if e.At(i, j) != want {
					t.Fatalf("n=%d: exp(0)[%d][%d] = %v, want %v", n, i, j, e.At(i, j), want)
				}
			}
		}
	}
}

func TestMetamorphicExpIUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 4, 8, 16} {
		h := linalg.RandomHermitian(n, rng)
		u := linalg.ExpIHermitian(h, 0.37)
		// Norm preservation: U†·U = I for any Hermitian generator.
		prod := linalg.AdjointMul(u, u)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if d := prod.At(i, j) - want; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
					t.Fatalf("n=%d: (U†U)[%d][%d] = %v, want %v", n, i, j, prod.At(i, j), want)
				}
			}
		}
	}
}

func TestMetamorphicExpmInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{2, 4, 8} {
		a := linalg.NewMatrix(n, n)
		copy(a.Data, RandomDense(n, n, rng))
		neg := a.Scale(-1)
		prod := linalg.Expm(a).Mul(linalg.Expm(neg))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if d := prod.At(i, j) - want; real(d)*real(d)+imag(d)*imag(d) > 1e-16 {
					t.Fatalf("n=%d: (e^A·e^-A)[%d][%d] = %v, want %v", n, i, j, prod.At(i, j), want)
				}
			}
		}
	}
}

// TestIntoAPIsMatchAllocatingAPIs pins the workspace-threaded entry
// points to their allocating twins bit for bit: routing a hot loop
// through a workspace must never change numerics.
func TestIntoAPIsMatchAllocatingAPIs(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ws := kernel.NewWorkspace()
	for _, n := range []int{2, 4, 8, 9, 16} {
		h := linalg.RandomHermitian(n, rng)

		want := linalg.ExpIHermitian(h, -0.5)
		got := linalg.NewMatrix(n, n)
		linalg.ExpIHermitianInto(ws, got, h, -0.5)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("n=%d: ExpIHermitianInto differs at %d: %v vs %v", n, i, got.Data[i], want.Data[i])
			}
		}

		a := linalg.NewMatrix(n, n)
		copy(a.Data, RandomDense(n, n, rng))
		wantE := linalg.Expm(a)
		gotE := linalg.NewMatrix(n, n)
		linalg.ExpmInto(ws, gotE, a)
		for i := range wantE.Data {
			if gotE.Data[i] != wantE.Data[i] {
				t.Fatalf("n=%d: ExpmInto differs at %d: %v vs %v", n, i, gotE.Data[i], wantE.Data[i])
			}
		}
	}
}
