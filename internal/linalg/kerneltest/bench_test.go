package kerneltest

import (
	"fmt"
	"math/rand"
	"testing"

	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
)

// The BenchmarkKernel* suite backs `make bench-kernels` and the PR's
// acceptance criterion: the unrolled 4×4/8×8 paths at ≥2× the naive
// triple loop, with the naive twins measured in the same process.

func benchSquare(b *testing.B, n int, f func(dst, a, bb []complex128)) {
	rng := rand.New(rand.NewSource(int64(n)))
	a := RandomDense(n, n, rng)
	bb := RandomDense(n, n, rng)
	dst := make([]complex128, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(dst, a, bb)
	}
}

func BenchmarkKernelMul(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchSquare(b, n, func(dst, x, y []complex128) { kernel.MatMul(nil, dst, x, y, n, n, n) })
		})
	}
}

func BenchmarkNaiveMul(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchSquare(b, n, func(dst, x, y []complex128) { NaiveMatMul(dst, x, y, n, n, n) })
		})
	}
}

// prePRMul reproduces the seed's (*Matrix).Mul code path exactly — a
// fresh output allocation plus the zero-checking streaming loop — so
// BenchmarkPrePRMul is the honest "before" of the kernel layer's ≥2×
// acceptance criterion. NaiveMul above is the stricter comparison (the
// differential reference with no allocation at all).
func prePRMul(a, b []complex128, m, k, n int) []complex128 {
	out := make([]complex128, m*n)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path replicated from the seed Mul
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func BenchmarkPrePRMul(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			x := RandomDense(n, n, rng)
			y := RandomDense(n, n, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prePRMul(x, y, n, n, n)
			}
		})
	}
}

func BenchmarkKernelMulBlocked(b *testing.B) {
	for _, n := range []int{48, 96} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			ws := kernel.NewWorkspace()
			benchSquare(b, n, func(dst, x, y []complex128) { kernel.MatMul(ws, dst, x, y, n, n, n) })
		})
	}
}

func BenchmarkNaiveMulBlockedSizes(b *testing.B) {
	for _, n := range []int{48, 96} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchSquare(b, n, func(dst, x, y []complex128) { NaiveMatMul(dst, x, y, n, n, n) })
		})
	}
}

func BenchmarkKernelAdjointMul(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			benchSquare(b, n, func(dst, x, y []complex128) { kernel.AdjointMul(dst, x, y, n, n, n) })
		})
	}
}

func BenchmarkKernelExpIHermitian(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			h := linalg.RandomHermitian(n, rng)
			dst := linalg.NewMatrix(n, n)
			ws := kernel.NewWorkspace()
			linalg.ExpIHermitianInto(ws, dst, h, -0.5) // warm the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				linalg.ExpIHermitianInto(ws, dst, h, -0.5)
			}
		})
	}
}

func BenchmarkKernelExpm(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			a := linalg.NewMatrix(n, n)
			copy(a.Data, RandomDense(n, n, rng))
			dst := linalg.NewMatrix(n, n)
			ws := kernel.NewWorkspace()
			linalg.ExpmInto(ws, dst, a)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				linalg.ExpmInto(ws, dst, a)
			}
		})
	}
}
