package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveHand(t *testing.T) {
	a := FromRows([][]complex128{{2, 1}, {1, 3}})
	x, err := Solve(a, []complex128{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3
	if cmplx.Abs(x[0]-1) > tol || cmplx.Abs(x[1]-3) > tol {
		t.Fatalf("Solve: %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := LUDecompose(a); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if cmplx.Abs(Det(a)-(-2)) > tol {
		t.Fatalf("Det: %v", Det(a))
	}
	if Det(FromRows([][]complex128{{1, 1}, {1, 1}})) != 0 {
		t.Fatal("Det of singular should be 0")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		a := randMat(n, rng)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		if !a.Mul(inv).Equal(Identity(n), 1e-8) {
			t.Fatalf("A·A⁻¹ != I (n=%d)", n)
		}
	}
}

func TestQuickLUSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randMat(n, rng)
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := Solve(a, b)
		if err != nil {
			return true // singular draw: vacuously fine
		}
		got := a.MulVec(x)
		for i := range b {
			if cmplx.Abs(got[i]-b[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		a := randMat(n, rng)
		q, r := QRDecompose(a)
		if !q.IsUnitary(1e-9) {
			t.Fatalf("Q not unitary (n=%d)", n)
		}
		if !q.Mul(r).Equal(a, 1e-8) {
			t.Fatalf("QR != A (n=%d)", n)
		}
		// R upper triangular
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if cmplx.Abs(r.At(i, j)) > 1e-9 {
					t.Fatalf("R not upper triangular at (%d,%d): %v", i, j, r.At(i, j))
				}
			}
		}
	}
}

func TestQRTall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix(5, 3)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	q, r := QRDecompose(a)
	if !q.Mul(r).Equal(a, 1e-8) {
		t.Fatal("tall QR != A")
	}
}

func TestSolveMatrixMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(4, rng)
	b := randMat(4, rng)
	f, err := LUDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.SolveMatrix(b)
	if !a.Mul(x).Equal(b, 1e-8) {
		t.Fatal("SolveMatrix residual too large")
	}
}

func TestEigHermitianReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(7)
		h := RandomHermitian(n, rng)
		vals, vecs := EigHermitian(h)
		if !vecs.IsUnitary(1e-8) {
			t.Fatalf("eigenvectors not unitary (n=%d)", n)
		}
		// Ascending order.
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1]-1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, complex(vals[i], 0))
		}
		rec := vecs.Mul(d).Mul(vecs.Adjoint())
		if !rec.Equal(h, 1e-7) {
			t.Fatalf("VDV† != H (n=%d):\n%v\nvs\n%v", n, rec, h)
		}
	}
}

func TestEigHermitianDiagonalInput(t *testing.T) {
	h := FromRows([][]complex128{{3, 0}, {0, -1}})
	vals, _ := EigHermitian(h)
	if math.Abs(vals[0]+1) > tol || math.Abs(vals[1]-3) > tol {
		t.Fatalf("vals: %v", vals)
	}
}

func TestEigSymmetricRealIsReal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(4)
		s := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := complex(rng.NormFloat64(), 0)
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
		vals, vecs := EigSymmetricReal(s)
		for _, v := range vecs.Data {
			if math.Abs(imag(v)) > 1e-8 {
				t.Fatalf("eigenvector has imaginary part %v", v)
			}
		}
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, complex(vals[i], 0))
		}
		if !vecs.Mul(d).Mul(vecs.Adjoint()).Equal(s, 1e-7) {
			t.Fatal("real symmetric reconstruction failed")
		}
	}
}

func TestExpmZeroIsIdentity(t *testing.T) {
	if !Expm(NewMatrix(3, 3)).Equal(Identity(3), tol) {
		t.Fatal("expm(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := FromRows([][]complex128{{1, 0}, {0, 2i}})
	e := Expm(a)
	if cmplx.Abs(e.At(0, 0)-cmplx.Exp(1)) > 1e-10 || cmplx.Abs(e.At(1, 1)-cmplx.Exp(2i)) > 1e-10 {
		t.Fatalf("expm diagonal: %v", e)
	}
}

func TestExpmPauliRotation(t *testing.T) {
	// e^{-iθX/2} = cos(θ/2)·I - i·sin(θ/2)·X
	theta := 0.7
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	a := x.Scale(complex(0, -theta/2))
	e := Expm(a)
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	want := FromRows([][]complex128{{complex(c, 0), complex(0, -s)}, {complex(0, -s), complex(c, 0)}})
	if !e.Equal(want, 1e-10) {
		t.Fatalf("expm rotation:\n%v\nwant\n%v", e, want)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Force the scaling-and-squaring path with a norm well above theta13.
	rng := rand.New(rand.NewSource(2))
	a := randMat(4, rng).Scale(3)
	if a.OneNorm() < 6 {
		t.Fatalf("test precondition: norm %v too small to exercise scaling", a.OneNorm())
	}
	e := Expm(a)
	// Check e^A·e^{-A} = I.
	einv := Expm(a.Scale(-1))
	if !e.Mul(einv).Equal(Identity(4), 1e-6) {
		t.Fatal("expm(A)·expm(-A) != I for large-norm A")
	}
	// Skew-Hermitian large-norm input must stay exactly unitary.
	h := RandomHermitian(4, rng).Scale(10)
	u := Expm(h.Scale(complex(0, 1)))
	if !u.IsUnitary(1e-9) {
		t.Fatal("expm(iH) lost unitarity under scaling-and-squaring")
	}
}

func TestExpIHermitianUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(6)
		h := RandomHermitian(n, rng)
		u := ExpIHermitian(h, 0.37)
		if !u.IsUnitary(1e-8) {
			t.Fatalf("e^{isH} not unitary (n=%d)", n)
		}
		// Compare against the Padé path.
		want := Expm(h.Scale(complex(0, 0.37)))
		if !u.Equal(want, 1e-7) {
			t.Fatalf("eig vs Padé exponentials differ (n=%d)", n)
		}
	}
}

func TestHermitianEigReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	h := RandomHermitian(4, rng)
	e := NewHermitianEig(h)
	u1 := e.ExpI(0.1)
	u2 := e.ExpI(0.2)
	if !u1.Mul(u1).Equal(u2, 1e-8) {
		t.Fatal("ExpI(0.1)² != ExpI(0.2)")
	}
}
