// Package linalg provides dense complex linear algebra for quantum
// compilation: matrix arithmetic, Kronecker products, LU/QR
// decompositions, Hermitian eigendecomposition, matrix exponentials and
// global-phase-aware unitary distances.
//
// Matrices are stored row-major as []complex128. The package is the
// numeric substrate for the whole repository; it has no dependencies
// outside the standard library.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"epoc/internal/linalg/kernel"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewMatrix returns a zero-initialized rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from a slice of rows. All rows must have the
// same length.
func FromRows(rows [][]complex128) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// IsSquare reports whether m has equal row and column counts.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Equal reports whether m and n have the same shape and elements within
// absolute tolerance tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) *Matrix {
	checkSameShape(m, n)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// Sub returns m - n.
func (m *Matrix) Sub(n *Matrix) *Matrix {
	checkSameShape(m, n)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// AddInPlace sets m = m + n and returns m.
func (m *Matrix) AddInPlace(n *Matrix) *Matrix {
	checkSameShape(m, n)
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
	return m
}

// AddScaledInPlace sets m = m + s·n and returns m, without the
// temporary that Add(n.Scale(s)) would build — the axpy primitive of
// the Hamiltonian assembly inside GRAPE's hot loop.
func (m *Matrix) AddScaledInPlace(n *Matrix, s complex128) *Matrix {
	checkSameShape(m, n)
	kernel.Axpy(m.Data, n.Data, s)
	return m
}

// CopyFrom copies n's elements into m (shapes must match) and returns
// m, reusing m's storage.
func (m *Matrix) CopyFrom(n *Matrix) *Matrix {
	checkSameShape(m, n)
	copy(m.Data, n.Data)
	return m
}

// ScaleInPlace sets m = s·m and returns m.
func (m *Matrix) ScaleInPlace(s complex128) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Mul returns the matrix product m·n. It routes through the kernel
// layer (internal/linalg/kernel): unrolled fast paths for 2×2/4×4/8×8,
// a cache-blocked transpose-packed path for large dense products, and
// a zero-skipping streaming loop otherwise. Hot loops that must not
// allocate use MulInto with a kernel.Workspace instead.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewMatrix(m.Rows, n.Cols)
	kernel.MatMul(nil, out.Data, m.Data, n.Data, m.Rows, m.Cols, n.Cols)
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]complex128, m.Rows)
	kernel.MulVec(out, m.Data, v, m.Rows, m.Cols)
	return out
}

// Transpose returns mᵀ.
//
//epoc:hot
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Conj returns the element-wise complex conjugate of m.
func (m *Matrix) Conj() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Adjoint returns the conjugate transpose m†.
//
//epoc:hot
func (m *Matrix) Adjoint() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() complex128 {
	mustSquare(m)
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Kron returns the Kronecker product m ⊗ n.
//
//epoc:hot
func (m *Matrix) Kron(n *Matrix) *Matrix {
	out := NewMatrix(m.Rows*n.Rows, m.Cols*n.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			a := m.Data[i*m.Cols+j]
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path in the kron kernel
			if a == 0 {
				continue
			}
			for p := 0; p < n.Rows; p++ {
				dst := (i*n.Rows+p)*out.Cols + j*n.Cols
				src := p * n.Cols
				for q := 0; q < n.Cols; q++ {
					out.Data[dst+q] = a * n.Data[src+q]
				}
			}
		}
	}
	return out
}

// KronAll returns the Kronecker product of all arguments left to right.
func KronAll(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return Identity(1)
	}
	out := ms[0]
	for _, m := range ms[1:] {
		out = out.Kron(m)
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute value of any element.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// OneNorm returns the maximum absolute column sum.
func (m *Matrix) OneNorm() float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += cmplx.Abs(m.Data[i*m.Cols+j])
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// IsUnitary reports whether m†·m is the identity within tolerance tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	return m.Adjoint().Mul(m).Equal(Identity(m.Rows), tol)
}

// IsHermitian reports whether m equals m† within tolerance tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix with aligned fixed-precision entries,
// mainly for debugging and test failure messages.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "%7.4f%+7.4fi", real(v), imag(v))
			if j != m.Cols-1 {
				b.WriteString("  ")
			}
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func checkSameShape(m, n *Matrix) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
}

func mustSquare(m *Matrix) {
	if !m.IsSquare() {
		panic(fmt.Sprintf("linalg: matrix %dx%d is not square", m.Rows, m.Cols))
	}
}
