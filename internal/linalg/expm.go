package linalg

import (
	"math"
	"math/cmplx"

	"epoc/internal/linalg/kernel"
)

// Expm returns the matrix exponential e^A computed with the
// scaling-and-squaring algorithm and a degree-13 Padé approximant
// (Higham 2005). It works for arbitrary square complex matrices.
func Expm(a *Matrix) *Matrix {
	out := NewMatrix(a.Rows, a.Rows)
	ExpmInto(nil, out, a)
	return out
}

// ExpmInto is Expm writing into a caller-owned dst with every
// temporary — Padé powers, the LU factorization of the denominator and
// the squaring ping-pong buffers — drawn from ws (nil allowed). dst
// must be pre-shaped n×n and must not alias a.
func ExpmInto(ws *kernel.Workspace, dst, a *Matrix) {
	mustSquare(a)
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("linalg: ExpmInto shape mismatch")
	}
	mark := ws.Mark()
	defer ws.Rewind(mark)
	n := a.Rows
	norm := a.OneNorm()

	// Padé approximant orders and their theta bounds.
	type pade struct {
		m     int
		theta float64
	}
	table := []pade{{3, 1.495585217958292e-2}, {5, 2.539398330063230e-1}, {7, 9.504178996162932e-1}, {9, 2.097847961257068}, {13, 5.371920351148152}}

	for _, p := range table[:4] {
		if norm <= p.theta {
			padeInto(ws, dst, a, p.m)
			return
		}
	}
	// Scale so the norm falls below theta13, square back afterwards:
	// the scaling-and-squaring core. The squaring loop ping-pongs
	// between dst and one workspace buffer, so no product allocates.
	s := 0
	if norm > table[4].theta {
		s = int(math.Ceil(math.Log2(norm / table[4].theta)))
	}
	scaled := matrixAt(ws, n, n)
	copy(scaled.Data, a.Data)
	scaled.ScaleInPlace(complex(math.Pow(2, -float64(s)), 0))
	padeInto(ws, dst, &scaled, 13)
	tmp := matrixAt(ws, n, n)
	cur, oth := dst, &tmp
	for i := 0; i < s; i++ {
		MulInto(ws, oth, cur, cur)
		cur, oth = oth, cur
	}
	if cur != dst {
		copy(dst.Data, cur.Data)
	}
}

// padeCoeffs returns the Padé numerator coefficients for order m.
func padeCoeffs(m int) []float64 {
	switch m {
	case 3:
		return []float64{120, 60, 12, 1}
	case 5:
		return []float64{30240, 15120, 3360, 420, 30, 1}
	case 7:
		return []float64{17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1}
	case 9:
		return []float64{17643225600, 8821612800, 2075673600, 302702400, 30270240, 2162160, 110880, 3960, 90, 1}
	case 13:
		return []float64{64764752532480000, 32382376266240000, 7771770303897600, 1187353796428800, 129060195264000, 10559470521600, 670442572800, 33522128640, 1323241920, 40840800, 960960, 16380, 182, 1}
	}
	panic("linalg: unsupported Padé order")
}

// padeInto writes the order-m Padé approximant of e^a into dst using
// only workspace temporaries.
func padeInto(ws *kernel.Workspace, dst, a *Matrix, m int) {
	c := padeCoeffs(m)
	n := a.Rows
	mark := ws.Mark()
	defer ws.Rewind(mark)

	a2 := matrixAt(ws, n, n)
	MulInto(ws, &a2, a, a)
	u := matrixAt(ws, n, n)
	v := matrixAt(ws, n, n)

	if m == 13 {
		a4 := matrixAt(ws, n, n)
		MulInto(ws, &a4, &a2, &a2)
		a6 := matrixAt(ws, n, n)
		MulInto(ws, &a6, &a4, &a2)
		// U = A·(A6·(c13·A6 + c11·A4 + c9·A2) + c7·A6 + c5·A4 + c3·A2 + c1·I)
		inner := matrixAt(ws, n, n)
		lincomb3(&inner, &a6, c[13], &a4, c[11], &a2, c[9])
		t := matrixAt(ws, n, n)
		MulInto(ws, &t, &a6, &inner)
		addLincomb3(&t, &a6, c[7], &a4, c[5], &a2, c[3])
		addDiag(&t, c[1])
		MulInto(ws, &u, a, &t)
		// V = A6·(c12·A6 + c10·A4 + c8·A2) + c6·A6 + c4·A4 + c2·A2 + c0·I
		lincomb3(&inner, &a6, c[12], &a4, c[10], &a2, c[8])
		MulInto(ws, &v, &a6, &inner)
		addLincomb3(&v, &a6, c[6], &a4, c[4], &a2, c[2])
		addDiag(&v, c[0])
	} else {
		// U = A·Σ c[2k+1] A^{2k}, V = Σ c[2k] A^{2k}.
		powA := matrixAt(ws, n, n)
		for i := 0; i < n; i++ {
			powA.Data[i*n+i] = 1
		}
		powB := matrixAt(ws, n, n)
		usum := matrixAt(ws, n, n)
		pow, powNext := &powA, &powB
		for k := 0; 2*k <= m; k++ {
			if 2*k+1 <= m {
				kernel.Axpy(usum.Data, pow.Data, complex(c[2*k+1], 0))
			}
			kernel.Axpy(v.Data, pow.Data, complex(c[2*k], 0))
			if 2*(k+1) <= m {
				MulInto(ws, powNext, pow, &a2)
				pow, powNext = powNext, pow
			}
		}
		MulInto(ws, &u, a, &usum)
	}
	// e^A ≈ (V - U)⁻¹ (V + U): factor V-U in place and solve into dst.
	num := matrixAt(ws, n, n)
	for i := range num.Data {
		num.Data[i] = v.Data[i] + u.Data[i]
		v.Data[i] -= u.Data[i] // v becomes the denominator
	}
	piv := ws.TakeInt(n)
	if _, err := luFactor(&v, piv); err != nil {
		panic("linalg: Expm Padé denominator singular")
	}
	b := ws.TakeComplex(n)
	for j := 0; j < n; j++ {
		// Gather column j already row-permuted, then substitute in place.
		for i := 0; i < n; i++ {
			b[i] = num.Data[piv[i]*n+j]
		}
		luSolvePermuted(&v, b)
		for i := 0; i < n; i++ {
			dst.Data[i*n+j] = b[i]
		}
	}
}

// lincomb3 sets dst = s1·m1 + s2·m2 + s3·m3 element-wise.
func lincomb3(dst, m1 *Matrix, s1 float64, m2 *Matrix, s2 float64, m3 *Matrix, s3 float64) {
	c1, c2, c3 := complex(s1, 0), complex(s2, 0), complex(s3, 0)
	for i := range dst.Data {
		dst.Data[i] = c1*m1.Data[i] + c2*m2.Data[i] + c3*m3.Data[i]
	}
}

// addLincomb3 adds s1·m1 + s2·m2 + s3·m3 into dst element-wise.
func addLincomb3(dst, m1 *Matrix, s1 float64, m2 *Matrix, s2 float64, m3 *Matrix, s3 float64) {
	c1, c2, c3 := complex(s1, 0), complex(s2, 0), complex(s3, 0)
	for i := range dst.Data {
		dst.Data[i] += c1*m1.Data[i] + c2*m2.Data[i] + c3*m3.Data[i]
	}
}

// addDiag adds s·I into dst.
func addDiag(dst *Matrix, s float64) {
	n := dst.Rows
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] += complex(s, 0)
	}
}

// ExpIHermitian returns e^{i·s·H} for Hermitian H via eigendecomposition.
// This is the preferred exponential for Hamiltonian propagators (exactly
// unitary up to eigensolver accuracy, and cheaper than Padé when the
// same H is exponentiated at several scales).
func ExpIHermitian(h *Matrix, s float64) *Matrix {
	out := NewMatrix(h.Rows, h.Rows)
	ExpIHermitianInto(nil, out, h, s)
	return out
}

// ExpIHermitianInto is ExpIHermitian writing into a caller-owned dst
// with eigendecomposition temporaries drawn from ws. It is the slice
// propagator of the GRAPE hot loop: with a warm workspace one call
// performs the Jacobi sweeps, the phase scaling and one fused a·b†
// product with zero allocations.
//
//epoc:hot
func ExpIHermitianInto(ws *kernel.Workspace, dst, h *Matrix, s float64) {
	mustSquare(h)
	n := h.Rows
	mark := ws.Mark()
	defer ws.Rewind(mark)
	vals := ws.TakeFloat(n)
	vecs := matrixAt(ws, n, n)
	EigHermitianInto(ws, h, vals, &vecs)
	ExpIFromEigInto(ws, dst, vals, &vecs, s)
}

// HermitianEig bundles a reusable eigendecomposition of a Hermitian
// matrix.
type HermitianEig struct {
	Vals []float64
	Vecs *Matrix
}

// NewHermitianEig eagerly diagonalizes h.
func NewHermitianEig(h *Matrix) *HermitianEig {
	vals, vecs := EigHermitian(h)
	return &HermitianEig{Vals: vals, Vecs: vecs}
}

// ExpI returns e^{i·s·H} from the stored eigendecomposition.
func (e *HermitianEig) ExpI(s float64) *Matrix {
	out := NewMatrix(e.Vecs.Rows, e.Vecs.Rows)
	ExpIFromEigInto(nil, out, e.Vals, e.Vecs, s)
	return out
}

// ExpIFromEigInto reconstructs e^{i·s·H} = V·diag(e^{i·s·λ})·V† from an
// eigendecomposition: it scales V's columns by the phases into a
// workspace buffer, then runs one fused MulAdjoint — two dense passes
// instead of the rank-1 accumulation a naive reconstruction does.
//
//epoc:hot
func ExpIFromEigInto(ws *kernel.Workspace, dst *Matrix, vals []float64, vecs *Matrix, s float64) {
	n := len(vals)
	if vecs.Rows != n || vecs.Cols != n || dst.Rows != n || dst.Cols != n {
		panic("linalg: ExpIFromEigInto shape mismatch")
	}
	mark := ws.Mark()
	defer ws.Rewind(mark)
	b := matrixAt(ws, n, n)
	for k := 0; k < n; k++ {
		ph := cmplx.Exp(complex(0, s*vals[k]))
		for i, j := k, 0; j < n; i, j = i+n, j+1 {
			b.Data[i] = vecs.Data[i] * ph
		}
	}
	MulAdjointInto(dst, &b, vecs)
}
