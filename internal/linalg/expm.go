package linalg

import (
	"math"
	"math/cmplx"
)

// Expm returns the matrix exponential e^A computed with the
// scaling-and-squaring algorithm and a degree-13 Padé approximant
// (Higham 2005). It works for arbitrary square complex matrices.
func Expm(a *Matrix) *Matrix {
	mustSquare(a)
	n := a.Rows
	norm := a.OneNorm()

	// Padé approximant orders and their theta bounds.
	type pade struct {
		m     int
		theta float64
	}
	table := []pade{{3, 1.495585217958292e-2}, {5, 2.539398330063230e-1}, {7, 9.504178996162932e-1}, {9, 2.097847961257068}, {13, 5.371920351148152}}

	for _, p := range table[:4] {
		if norm <= p.theta {
			return padeApprox(a, p.m)
		}
	}
	// Scale so the norm falls below theta13, square back afterwards.
	s := 0
	if norm > table[4].theta {
		s = int(math.Ceil(math.Log2(norm / table[4].theta)))
	}
	scaled := a.Scale(complex(math.Pow(2, -float64(s)), 0))
	e := padeApprox(scaled, 13)
	for i := 0; i < s; i++ {
		e = e.Mul(e)
	}
	_ = n
	return e
}

// padeCoeffs returns the Padé numerator coefficients for order m.
func padeCoeffs(m int) []float64 {
	switch m {
	case 3:
		return []float64{120, 60, 12, 1}
	case 5:
		return []float64{30240, 15120, 3360, 420, 30, 1}
	case 7:
		return []float64{17297280, 8648640, 1995840, 277200, 25200, 1512, 56, 1}
	case 9:
		return []float64{17643225600, 8821612800, 2075673600, 302702400, 30270240, 2162160, 110880, 3960, 90, 1}
	case 13:
		return []float64{64764752532480000, 32382376266240000, 7771770303897600, 1187353796428800, 129060195264000, 10559470521600, 670442572800, 33522128640, 1323241920, 40840800, 960960, 16380, 182, 1}
	}
	panic("linalg: unsupported Padé order")
}

func padeApprox(a *Matrix, m int) *Matrix {
	c := padeCoeffs(m)
	n := a.Rows
	a2 := a.Mul(a)

	var u, v *Matrix
	if m == 13 {
		a4 := a2.Mul(a2)
		a6 := a4.Mul(a2)
		// U = A·(A6·(c13·A6 + c11·A4 + c9·A2) + c7·A6 + c5·A4 + c3·A2 + c1·I)
		inner := a6.Scale(complex(c[13], 0)).Add(a4.Scale(complex(c[11], 0))).Add(a2.Scale(complex(c[9], 0)))
		u = a.Mul(a6.Mul(inner).Add(a6.Scale(complex(c[7], 0))).Add(a4.Scale(complex(c[5], 0))).Add(a2.Scale(complex(c[3], 0))).Add(Identity(n).Scale(complex(c[1], 0))))
		innerV := a6.Scale(complex(c[12], 0)).Add(a4.Scale(complex(c[10], 0))).Add(a2.Scale(complex(c[8], 0)))
		v = a6.Mul(innerV).Add(a6.Scale(complex(c[6], 0))).Add(a4.Scale(complex(c[4], 0))).Add(a2.Scale(complex(c[2], 0))).Add(Identity(n).Scale(complex(c[0], 0)))
	} else {
		// U = A·Σ c[2k+1] A^{2k}, V = Σ c[2k] A^{2k}.
		pow := Identity(n)
		usum := NewMatrix(n, n)
		vsum := NewMatrix(n, n)
		for k := 0; 2*k <= m; k++ {
			if 2*k+1 <= m {
				usum.AddInPlace(pow.Scale(complex(c[2*k+1], 0)))
			}
			vsum.AddInPlace(pow.Scale(complex(c[2*k], 0)))
			if 2*(k+1) <= m {
				pow = pow.Mul(a2)
			}
		}
		u = a.Mul(usum)
		v = vsum
	}
	// e^A ≈ (V - U)⁻¹ (V + U)
	num := v.Add(u)
	den := v.Sub(u)
	f, err := LUDecompose(den)
	if err != nil {
		panic("linalg: Expm Padé denominator singular")
	}
	return f.SolveMatrix(num)
}

// ExpIHermitian returns e^{i·s·H} for Hermitian H via eigendecomposition.
// This is the preferred exponential for Hamiltonian propagators (exactly
// unitary up to eigensolver accuracy, and cheaper than Padé when the
// same H is exponentiated at several scales).
func ExpIHermitian(h *Matrix, s float64) *Matrix {
	vals, vecs := EigHermitian(h)
	return expIFromEig(vals, vecs, s)
}

// HermitianEig bundles a reusable eigendecomposition of a Hermitian
// matrix.
type HermitianEig struct {
	Vals []float64
	Vecs *Matrix
}

// NewHermitianEig eagerly diagonalizes h.
func NewHermitianEig(h *Matrix) *HermitianEig {
	vals, vecs := EigHermitian(h)
	return &HermitianEig{Vals: vals, Vecs: vecs}
}

// ExpI returns e^{i·s·H} from the stored eigendecomposition.
func (e *HermitianEig) ExpI(s float64) *Matrix {
	return expIFromEig(e.Vals, e.Vecs, s)
}

// expIFromEig reconstructs e^{i·s·H} = V·diag(e^{i·s·λ})·V† from an
// eigendecomposition. It runs once per time slot per GRAPE iteration.
//
//epoc:hot
func expIFromEig(vals []float64, vecs *Matrix, s float64) *Matrix {
	n := len(vals)
	// V · diag(e^{i s λ}) · V†
	out := NewMatrix(n, n)
	for k := 0; k < n; k++ {
		ph := cmplx.Exp(complex(0, s*vals[k]))
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k) * ph
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path; skipping a zero term is exact
			if vik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += vik * cmplx.Conj(vecs.At(j, k))
			}
		}
	}
	return out
}
