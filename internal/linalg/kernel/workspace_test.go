package kernel

import "testing"

func TestWorkspaceTakeZeroesAndReuses(t *testing.T) {
	w := NewWorkspace()
	m := w.Mark()
	s1 := w.TakeComplex(8)
	for i := range s1 {
		s1[i] = complex(float64(i), 1)
	}
	w.Rewind(m)
	s2 := w.TakeComplex(8)
	if &s1[0] != &s2[0] {
		t.Fatalf("rewind did not reuse the arena region")
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("reused slice not zeroed at %d: %v", i, v)
		}
	}
}

func TestWorkspaceGrowthKeepsOldSlicesValid(t *testing.T) {
	w := NewWorkspace()
	small := w.TakeComplex(4)
	small[0] = 42
	// Force a growth well past the initial block.
	big := w.TakeComplex(1 << 16)
	big[0] = 7
	if small[0] != 42 {
		t.Fatalf("growth corrupted an earlier checkout: %v", small[0])
	}
	// A mark from the old epoch must not let the new epoch hand out
	// overlapping memory.
	m := w.Mark()
	s1 := w.TakeComplex(16)
	s1[0] = 1
	w.Rewind(m)
	s2 := w.TakeComplex(16)
	if &s1[0] != &s2[0] {
		t.Fatalf("same-epoch rewind should reuse the region")
	}
}

func TestWorkspaceNilSafe(t *testing.T) {
	var w *Workspace
	m := w.Mark()
	s := w.TakeComplex(4)
	if len(s) != 4 {
		t.Fatalf("nil workspace TakeComplex: got len %d", len(s))
	}
	if f := w.TakeFloat(3); len(f) != 3 {
		t.Fatalf("nil workspace TakeFloat: got len %d", len(f))
	}
	if ints := w.TakeInt(2); len(ints) != 2 {
		t.Fatalf("nil workspace TakeInt: got len %d", len(ints))
	}
	w.Rewind(m)
	w.Reset()
}

func TestWorkspaceStackDiscipline(t *testing.T) {
	w := NewWorkspace()
	outer := w.TakeComplex(4)
	outer[3] = 9
	m := w.Mark()
	inner := w.TakeComplex(4)
	inner[0] = 5
	w.Rewind(m)
	if outer[3] != 9 {
		t.Fatalf("inner rewind touched outer frame")
	}
	again := w.TakeComplex(4)
	if &again[0] != &inner[0] {
		t.Fatalf("rewind should make the inner frame reusable")
	}
}
