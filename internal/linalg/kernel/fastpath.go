package kernel

// Fully unrolled fast paths for the 1–3 qubit (2×2, 4×4, 8×8) dense
// products that dominate GRAPE propagation, VUG instantiation and
// density simulation. Operands arrive as fixed-size array pointers so
// every index is a compile-time constant: no bounds checks, no loop
// counters in the 2×2/4×4 bodies, and the 8×8 row loop unrolls k and j
// completely. Summation over the shared dimension is in ascending
// order, fixed per size, so the fast paths are bit-deterministic.

// mul2 computes dst = a·b for 2×2.
func mul2(dst, a, b *[4]complex128) {
	a0, a1 := a[0], a[1]
	dst[0] = a0*b[0] + a1*b[2]
	dst[1] = a0*b[1] + a1*b[3]
	a0, a1 = a[2], a[3]
	dst[2] = a0*b[0] + a1*b[2]
	dst[3] = a0*b[1] + a1*b[3]
}

// mul4 computes dst = a·b for 4×4, fully unrolled with every index a
// constant. All of b is hoisted into locals first: dst may not alias
// the operands by contract, but the compiler cannot know that, and
// without the hoist every store to dst forces b's entries to be
// reloaded on the next row.
func mul4(dst, a, b *[16]complex128) {
	b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
	b4, b5, b6, b7 := b[4], b[5], b[6], b[7]
	b8, b9, b10, b11 := b[8], b[9], b[10], b[11]
	b12, b13, b14, b15 := b[12], b[13], b[14], b[15]
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	dst[0] = a0*b0 + a1*b4 + a2*b8 + a3*b12
	dst[1] = a0*b1 + a1*b5 + a2*b9 + a3*b13
	dst[2] = a0*b2 + a1*b6 + a2*b10 + a3*b14
	dst[3] = a0*b3 + a1*b7 + a2*b11 + a3*b15
	a0, a1, a2, a3 = a[4], a[5], a[6], a[7]
	dst[4] = a0*b0 + a1*b4 + a2*b8 + a3*b12
	dst[5] = a0*b1 + a1*b5 + a2*b9 + a3*b13
	dst[6] = a0*b2 + a1*b6 + a2*b10 + a3*b14
	dst[7] = a0*b3 + a1*b7 + a2*b11 + a3*b15
	a0, a1, a2, a3 = a[8], a[9], a[10], a[11]
	dst[8] = a0*b0 + a1*b4 + a2*b8 + a3*b12
	dst[9] = a0*b1 + a1*b5 + a2*b9 + a3*b13
	dst[10] = a0*b2 + a1*b6 + a2*b10 + a3*b14
	dst[11] = a0*b3 + a1*b7 + a2*b11 + a3*b15
	a0, a1, a2, a3 = a[12], a[13], a[14], a[15]
	dst[12] = a0*b0 + a1*b4 + a2*b8 + a3*b12
	dst[13] = a0*b1 + a1*b5 + a2*b9 + a3*b13
	dst[14] = a0*b2 + a1*b6 + a2*b10 + a3*b14
	dst[15] = a0*b3 + a1*b7 + a2*b11 + a3*b15
}

// mul8 computes dst = a·b for 8×8.
func mul8(dst, a, b *[64]complex128) {
	for i := 0; i < 64; i += 8 {
		a0, a1, a2, a3 := a[i], a[i+1], a[i+2], a[i+3]
		a4, a5, a6, a7 := a[i+4], a[i+5], a[i+6], a[i+7]
		dst[i+0] = a0*b[0] + a1*b[8] + a2*b[16] + a3*b[24] + a4*b[32] + a5*b[40] + a6*b[48] + a7*b[56]
		dst[i+1] = a0*b[1] + a1*b[9] + a2*b[17] + a3*b[25] + a4*b[33] + a5*b[41] + a6*b[49] + a7*b[57]
		dst[i+2] = a0*b[2] + a1*b[10] + a2*b[18] + a3*b[26] + a4*b[34] + a5*b[42] + a6*b[50] + a7*b[58]
		dst[i+3] = a0*b[3] + a1*b[11] + a2*b[19] + a3*b[27] + a4*b[35] + a5*b[43] + a6*b[51] + a7*b[59]
		dst[i+4] = a0*b[4] + a1*b[12] + a2*b[20] + a3*b[28] + a4*b[36] + a5*b[44] + a6*b[52] + a7*b[60]
		dst[i+5] = a0*b[5] + a1*b[13] + a2*b[21] + a3*b[29] + a4*b[37] + a5*b[45] + a6*b[53] + a7*b[61]
		dst[i+6] = a0*b[6] + a1*b[14] + a2*b[22] + a3*b[30] + a4*b[38] + a5*b[46] + a6*b[54] + a7*b[62]
		dst[i+7] = a0*b[7] + a1*b[15] + a2*b[23] + a3*b[31] + a4*b[39] + a5*b[47] + a6*b[55] + a7*b[63]
	}
}

// mulVec2 computes dst = a·v for 2×2.
func mulVec2(dst *[2]complex128, a *[4]complex128, v *[2]complex128) {
	v0, v1 := v[0], v[1]
	dst[0] = a[0]*v0 + a[1]*v1
	dst[1] = a[2]*v0 + a[3]*v1
}

// mulVec4 computes dst = a·v for 4×4.
func mulVec4(dst *[4]complex128, a *[16]complex128, v *[4]complex128) {
	v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
	dst[0] = a[0]*v0 + a[1]*v1 + a[2]*v2 + a[3]*v3
	dst[1] = a[4]*v0 + a[5]*v1 + a[6]*v2 + a[7]*v3
	dst[2] = a[8]*v0 + a[9]*v1 + a[10]*v2 + a[11]*v3
	dst[3] = a[12]*v0 + a[13]*v1 + a[14]*v2 + a[15]*v3
}

// mulVec8 computes dst = a·v for 8×8.
func mulVec8(dst *[8]complex128, a *[64]complex128, v *[8]complex128) {
	v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
	v4, v5, v6, v7 := v[4], v[5], v[6], v[7]
	for i := 0; i < 8; i++ {
		r := i * 8
		dst[i] = a[r]*v0 + a[r+1]*v1 + a[r+2]*v2 + a[r+3]*v3 +
			a[r+4]*v4 + a[r+5]*v5 + a[r+6]*v6 + a[r+7]*v7
	}
}
