package kernel

// Blocking parameters for the packed path, sized so one destination
// tile (tileI×tileJ), its packed operand panel (tileK×tileJ) and the
// streamed rows of a stay L1/L2 resident: 32×32 complex128 tiles are
// 16 KiB, a 128×32 panel is 64 KiB.
const (
	tileI = 32
	tileJ = 32
	tileK = 128

	// packMin is the smallest shared dimension for which transpose
	// packing pays for its O(k·n) copy; below it the streaming ikj loop
	// already runs at memory speed.
	packMin = 32

	// packDensity is the minimum nonzero fraction of a for the packed
	// path: the compiler's embedded operators (Kron/EmbedOperator
	// outputs) are mostly zeros, and for them skipping whole b-rows on
	// exact zeros beats any amount of cache blocking.
	packDensity = 0.5
)

// MatMul computes dst = a·b with a m×k, b k×n, dst m×n, all row-major.
// dst must not alias a or b. ws (nil allowed) provides pack scratch
// for the blocked path.
//
// Dispatch: exact 2×2/4×4/8×8 square products take the fully unrolled
// fast paths; large, mostly-dense products take the cache-blocked
// transpose-packed path; everything else takes the zero-skipping
// streaming loop. Path choice is a pure function of the operand shapes
// and values, and each path's floating-point summation order is fixed,
// so MatMul is bit-deterministic: the same operands always produce the
// same bytes, at any worker count.
func MatMul(ws *Workspace, dst, a, b []complex128, m, k, n int) {
	if m == k && k == n {
		switch n {
		case 2:
			mul2((*[4]complex128)(dst), (*[4]complex128)(a), (*[4]complex128)(b))
			return
		case 4:
			mul4((*[16]complex128)(dst), (*[16]complex128)(a), (*[16]complex128)(b))
			return
		case 8:
			mul8((*[64]complex128)(dst), (*[64]complex128)(a), (*[64]complex128)(b))
			return
		}
	}
	if k >= packMin && n >= packMin && density(a) >= packDensity {
		matMulPacked(ws, dst, a, b, m, k, n)
		return
	}
	matMulStream(dst, a, b, m, k, n)
}

// density returns the fraction of nonzero entries of a.
func density(a []complex128) float64 {
	if len(a) == 0 {
		return 0
	}
	nz := 0
	for _, v := range a {
		//epoc:lint-ignore floatcmp exact-zero sparsity census steering the path dispatch
		if v != 0 {
			nz++
		}
	}
	return float64(nz) / float64(len(a))
}

// matMulStream is the streaming ikj loop with an exact-zero skip on a:
// for sparse left operands (embedded qubit operators) a zero a[i][k]
// skips an entire row of b.
func matMulStream(dst, a, b []complex128, m, k, n int) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path in the mul kernel
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matMulPacked is the cache-blocked path: b is transpose-packed one
// tileK×tileJ panel at a time so the inner kernel reduces contiguous
// row-pairs, then i×j tiles of dst are filled with 4-way unrolled dot
// products. The lane recombination reorders the sum relative to the
// streaming path (different rounding, same tolerance class), but the
// order is fixed per shape, so the path stays bit-deterministic.
func matMulPacked(ws *Workspace, dst, a, b []complex128, m, k, n int) {
	mark := ws.Mark()
	defer ws.Rewind(mark)
	pack := ws.TakeComplex(tileK * tileJ)

	for i := range dst {
		dst[i] = 0
	}
	for j0 := 0; j0 < n; j0 += tileJ {
		jn := min(tileJ, n-j0)
		for k0 := 0; k0 < k; k0 += tileK {
			kn := min(tileK, k-k0)
			// Pack bᵀ for this panel: pack[j][p] = b[k0+p][j0+j].
			for j := 0; j < jn; j++ {
				col := pack[j*kn : (j+1)*kn]
				src := (k0)*n + j0 + j
				for p := 0; p < kn; p++ {
					col[p] = b[src]
					src += n
				}
			}
			for i0 := 0; i0 < m; i0 += tileI {
				im := min(tileI, m-i0)
				for i := 0; i < im; i++ {
					arow := a[(i0+i)*k+k0 : (i0+i)*k+k0+kn]
					drow := dst[(i0+i)*n+j0 : (i0+i)*n+j0+jn]
					for j := 0; j < jn; j++ {
						drow[j] += dotc(arow, pack[j*kn:(j+1)*kn])
					}
				}
			}
		}
	}
}

// dotc is the packed path's inner reduction: Σ a[p]·b[p] with 4-way
// unrolling over contiguous operands. Partial sums are recombined in
// lane order (s0+s1)+(s2+s3) deterministically.
func dotc(a, b []complex128) complex128 {
	var s0, s1, s2, s3 complex128
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s0 += a[p] * b[p]
		s1 += a[p+1] * b[p+1]
		s2 += a[p+2] * b[p+2]
		s3 += a[p+3] * b[p+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; p < len(a); p++ {
		s += a[p] * b[p]
	}
	return s
}

// MulVec computes dst = a·v with a m×n row-major, v length n, dst
// length m. dst must not alias v.
func MulVec(dst, a, v []complex128, m, n int) {
	if m == n {
		switch n {
		case 2:
			mulVec2((*[2]complex128)(dst), (*[4]complex128)(a), (*[2]complex128)(v))
			return
		case 4:
			mulVec4((*[4]complex128)(dst), (*[16]complex128)(a), (*[4]complex128)(v))
			return
		case 8:
			mulVec8((*[8]complex128)(dst), (*[64]complex128)(a), (*[8]complex128)(v))
			return
		}
	}
	for i := 0; i < m; i++ {
		dst[i] = dotc(a[i*n:(i+1)*n], v)
	}
}

// AdjointMul computes dst = a†·b with a k×m, b k×n, dst m×n: the fused
// form of Adjoint().Mul() that never materializes a†. The reduction
// runs k-outer so both operands stream row-contiguously; summation
// over k is ascending, matching the reference.
func AdjointMul(dst, a, b []complex128, m, k, n int) {
	if m == k && k == n {
		switch n {
		case 2:
			adjMul(dst, a, b, 2)
			return
		case 4:
			adjMul(dst, a, b, 4)
			return
		case 8:
			adjMul(dst, a, b, 8)
			return
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path in the adjoint-mul kernel
			if av == 0 {
				continue
			}
			c := conj(av)
			drow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += c * bv
			}
		}
	}
}

// adjMul is AdjointMul specialized to small square n where the whole
// product is register/L1 resident; constant trip counts let the
// compiler unroll and eliminate bounds checks.
func adjMul(dst, a, b []complex128, n int) {
	for i := range dst[:n*n] {
		dst[i] = 0
	}
	for p := 0; p < n; p++ {
		arow := a[p*n : (p+1)*n]
		brow := b[p*n : (p+1)*n]
		for i := 0; i < n; i++ {
			c := conj(arow[i])
			drow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				drow[j] += c * brow[j]
			}
		}
	}
}

// MulAdjoint computes dst = a·b† with a m×k, b n×k, dst m×n: row i of
// a against conjugated row j of b, both contiguous, so no packing is
// ever needed.
func MulAdjoint(dst, a, b []complex128, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = dotcConj(arow, b[j*k:(j+1)*k])
		}
	}
}

// dotcConj returns Σ a[p]·conj(b[p]) with the same 4-way unrolled,
// deterministic lane recombination as dotc.
func dotcConj(a, b []complex128) complex128 {
	var s0, s1, s2, s3 complex128
	p := 0
	for ; p+4 <= len(a); p += 4 {
		s0 += a[p] * conj(b[p])
		s1 += a[p+1] * conj(b[p+1])
		s2 += a[p+2] * conj(b[p+2])
		s3 += a[p+3] * conj(b[p+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; p < len(a); p++ {
		s += a[p] * conj(b[p])
	}
	return s
}

// Axpy adds s·x into y element-wise: y[i] += s·x[i].
func Axpy(y, x []complex128, s complex128) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += s * v
	}
}

// conj avoids the cmplx.Conj call in inner loops (kept local so the
// package stays dependency-free and the compiler inlines it).
func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
