// Package kernel is the profiled linear-algebra kernel layer beneath
// internal/linalg. It operates on raw row-major []complex128 buffers
// (no Matrix type, no in-module dependencies) and provides:
//
//   - MatMul: general complex matmul with an exact-zero-skipping path
//     for the sparse embedded operators the compiler builds, and a
//     cache-blocked, transpose-packed path for large dense products;
//   - fully unrolled fast paths for the 2×2, 4×4 and 8×8 (1–3 qubit)
//     products that dominate GRAPE propagation and VUG instantiation,
//     including adjoint-fused variants (a†·b, a·b†) so callers never
//     materialize a conjugate transpose;
//   - Workspace, a per-goroutine bump arena that makes the hot loops
//     (GRAPE propagators, L-BFGS instantiation, density simulation)
//     allocation-free in steady state.
//
// Every kernel is deterministic: the floating-point summation order is
// a pure function of the operand shapes, never of timing or worker
// count, which is what keeps Workers:1 ≡ Workers:8 pipeline output
// byte-identical. Correctness against the naive reference is enforced
// by the differential harness in internal/linalg/kerneltest.
package kernel

// Workspace is a per-goroutine scratch arena for kernel temporaries.
// Take* methods hand out zeroed slices by bumping an offset into a
// grow-once backing buffer; Mark/Rewind give stack discipline so
// nested kernels reuse the same bytes call after call. After warmup
// (one growth per high-water mark) a Workspace allocates nothing.
//
// Ownership rules (see DESIGN.md §14): a Workspace is NOT goroutine
// safe — create one per goroutine and never share. Slices obtained
// from Take* are owned by the arena and are invalidated by Rewind past
// their Mark or by Reset; results that outlive a kernel call must be
// copied into caller-owned memory. All methods are nil-safe: a nil
// *Workspace degrades to plain make allocations, so workspace-threaded
// APIs stay usable in cold paths and tests without plumbing.
type Workspace struct {
	c arena[complex128]
	f arena[float64]
	i arena[int]
}

// NewWorkspace returns an empty arena; backing buffers grow on demand.
func NewWorkspace() *Workspace { return &Workspace{} }

// Mark captures the current arena offsets for a later Rewind.
type Mark struct {
	c, f, i pos
}

// Mark returns the current allocation position of all three arenas.
func (w *Workspace) Mark() Mark {
	if w == nil {
		return Mark{}
	}
	return Mark{c: w.c.mark(), f: w.f.mark(), i: w.i.mark()}
}

// Rewind releases every slice taken since the matching Mark. Slices
// handed out after m must no longer be used.
func (w *Workspace) Rewind(m Mark) {
	if w == nil {
		return
	}
	w.c.rewind(m.c)
	w.f.rewind(m.f)
	w.i.rewind(m.i)
}

// Reset releases everything. Only call when no arena slice is live.
func (w *Workspace) Reset() {
	if w == nil {
		return
	}
	w.c.rewind(pos{epoch: w.c.epoch})
	w.f.rewind(pos{epoch: w.f.epoch})
	w.i.rewind(pos{epoch: w.i.epoch})
}

// TakeComplex returns a zeroed length-n complex scratch slice.
func (w *Workspace) TakeComplex(n int) []complex128 {
	if w == nil {
		return make([]complex128, n)
	}
	return w.c.take(n)
}

// TakeFloat returns a zeroed length-n float scratch slice.
func (w *Workspace) TakeFloat(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	return w.f.take(n)
}

// TakeInt returns a zeroed length-n int scratch slice.
func (w *Workspace) TakeInt(n int) []int {
	if w == nil {
		return make([]int, n)
	}
	return w.i.take(n)
}

// pos addresses a point in an arena: the buffer generation (epoch) and
// the bump offset within it.
type pos struct {
	epoch, off int
}

// arena is a bump allocator over one backing slice. Growing allocates
// a fresh, larger buffer and bumps the epoch; slices handed out from
// the old buffer stay valid (they keep the old storage alive) but the
// old bytes are only reclaimed at the next whole-buffer turnover.
// Rewinding to a mark from an older epoch keeps the current offset —
// wasting at most one transient buffer's worth — because offsets from
// different buffers are not comparable. Growth happens O(log max-need)
// times over a workspace's lifetime, so the waste is bounded and the
// steady state allocates nothing.
type arena[T int | float64 | complex128] struct {
	buf   []T
	off   int
	epoch int
}

func (a *arena[T]) mark() pos { return pos{epoch: a.epoch, off: a.off} }

func (a *arena[T]) rewind(p pos) {
	switch {
	case p.epoch == a.epoch:
		a.off = p.off
	case p.off == 0:
		// The mark predates every checkout in the current buffer
		// (nothing had been taken when it was made; later epochs only
		// ever hand out post-mark slices), so the whole buffer is
		// reclaimable even across a growth.
		a.off = 0
	}
}

func (a *arena[T]) take(n int) []T {
	if a.off+n > len(a.buf) {
		// Double both the current size and the request so a high-water
		// frame triggers O(log) growths ever, not one per call.
		grown := 2 * len(a.buf)
		if grown < 2*n {
			grown = 2 * n
		}
		if grown < 256 {
			grown = 256
		}
		a.buf = make([]T, grown)
		a.off = 0
		a.epoch++
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}
