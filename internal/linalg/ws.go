package linalg

import (
	"fmt"

	"epoc/internal/linalg/kernel"
)

// Workspace-threaded, allocation-free entry points. Each *Into
// function writes its result into a caller-owned, pre-shaped dst and
// takes an optional *kernel.Workspace for internal temporaries (nil
// falls back to plain allocation, so cold paths need no plumbing).
// The //epoc:hot loops in qoc, opt and densesim route through these;
// the allocating methods (Mul, Expm, EigHermitian, …) are thin
// wrappers that remain for everything else. Ownership rules are in
// DESIGN.md §14: one Workspace per goroutine, never shared, and
// nothing handed out by a workspace survives its Rewind.

// MulInto sets dst = a·b. dst must be pre-shaped to a.Rows×b.Cols and
// must not alias a or b.
func MulInto(ws *kernel.Workspace, dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulInto shape mismatch %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	kernel.MatMul(ws, dst.Data, a.Data, b.Data, a.Rows, a.Cols, b.Cols)
}

// AdjointMulInto sets dst = a†·b without materializing a†. dst must be
// pre-shaped to a.Cols×b.Cols and must not alias a or b.
func AdjointMulInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: AdjointMulInto shape mismatch %dx%d = (%dx%d)† · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	kernel.AdjointMul(dst.Data, a.Data, b.Data, a.Cols, a.Rows, b.Cols)
}

// MulAdjointInto sets dst = a·b† without materializing b†. dst must be
// pre-shaped to a.Rows×b.Rows and must not alias a or b.
func MulAdjointInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MulAdjointInto shape mismatch %dx%d = %dx%d · (%dx%d)†",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	kernel.MulAdjoint(dst.Data, a.Data, b.Data, a.Rows, a.Cols, b.Rows)
}

// MulVecInto sets dst = m·v. dst must have length m.Rows and must not
// alias v.
func MulVecInto(dst []complex128, m *Matrix, v []complex128) {
	if m.Cols != len(v) || m.Rows != len(dst) {
		panic("linalg: MulVecInto dimension mismatch")
	}
	kernel.MulVec(dst, m.Data, v, m.Rows, m.Cols)
}

// AdjointMul returns a†·b (allocating convenience over AdjointMulInto).
func AdjointMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	AdjointMulInto(out, a, b)
	return out
}

// MulAdjoint returns a·b† (allocating convenience over MulAdjointInto).
func MulAdjoint(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	MulAdjointInto(out, a, b)
	return out
}

// matrixAt wraps a workspace-checked-out buffer as an r×c Matrix. The
// matrix obeys arena ownership: it is dead after the Rewind of the
// frame it was taken in. It returns a value, not a pointer, so the
// header stays on the caller's stack (hot loops would otherwise pay
// one header allocation per temporary per call).
func matrixAt(ws *kernel.Workspace, r, c int) Matrix {
	return Matrix{Rows: r, Cols: c, Data: ws.TakeComplex(r * c)}
}
