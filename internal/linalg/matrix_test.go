package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("got %dx%d", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3i, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3i {
		t.Fatalf("unexpected elements: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	sum := a.Add(b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add: %v", sum)
	}
	diff := b.Sub(a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("Sub: %v", diff)
	}
	sc := a.Scale(2i)
	if sc.At(1, 0) != 6i {
		t.Fatalf("Scale: %v", sc)
	}
}

func TestMulAgainstHand(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := FromRows([][]complex128{{2, 1}, {4, 3}})
	if !got.Equal(want, tol) {
		t.Fatalf("Mul:\n%v\nwant\n%v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	got := a.MulVec([]complex128{1, 1i})
	if got[0] != 1+2i || got[1] != 3+4i {
		t.Fatalf("MulVec: %v", got)
	}
}

func TestTransposeAdjoint(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, 4}})
	tr := a.Transpose()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2i {
		t.Fatalf("Transpose: %v", tr)
	}
	ad := a.Adjoint()
	if ad.At(1, 0) != -2i {
		t.Fatalf("Adjoint: %v", ad)
	}
}

func TestTrace(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4i}})
	if a.Trace() != 1+4i {
		t.Fatalf("Trace: %v", a.Trace())
	}
}

func TestKronSmall(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	id := Identity(2)
	k := id.Kron(x)
	// I ⊗ X = block-diag(X, X)
	want := FromRows([][]complex128{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	if !k.Equal(want, tol) {
		t.Fatalf("Kron:\n%v", k)
	}
}

func TestKronAllEmpty(t *testing.T) {
	if got := KronAll(); got.Rows != 1 || got.At(0, 0) != 1 {
		t.Fatalf("KronAll() = %v", got)
	}
}

func TestKronMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		a, b := randMat(2, rng), randMat(3, rng)
		c, d := randMat(2, rng), randMat(3, rng)
		lhs := a.Kron(b).Mul(c.Kron(d))
		rhs := a.Mul(c).Kron(b.Mul(d))
		if !lhs.Equal(rhs, 1e-9) {
			t.Fatalf("mixed product property failed on trial %d", trial)
		}
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4}})
	if math.Abs(a.FrobeniusNorm()-5) > tol {
		t.Fatalf("FrobeniusNorm: %v", a.FrobeniusNorm())
	}
	if math.Abs(a.OneNorm()-4) > tol {
		t.Fatalf("OneNorm: %v", a.OneNorm())
	}
	if math.Abs(a.MaxAbs()-4) > tol {
		t.Fatalf("MaxAbs: %v", a.MaxAbs())
	}
}

func TestIsUnitaryIsHermitian(t *testing.T) {
	h := FromRows([][]complex128{{1, 2i}, {-2i, 5}})
	if !h.IsHermitian(tol) {
		t.Fatal("h should be Hermitian")
	}
	if h.IsUnitary(tol) {
		t.Fatal("h should not be unitary")
	}
	rng := rand.New(rand.NewSource(1))
	u := RandomUnitary(4, rng)
	if !u.IsUnitary(1e-9) {
		t.Fatal("random unitary is not unitary")
	}
	if NewMatrix(2, 3).IsUnitary(tol) {
		t.Fatal("non-square cannot be unitary")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestStringRendering(t *testing.T) {
	s := Identity(2).String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewMatrix(2, 2).Equal(NewMatrix(2, 3), tol) {
		t.Fatal("different shapes compared equal")
	}
}

// quick-check: matrix addition commutes and Mul distributes over Add for
// random small matrices encoded by a seed.
func TestQuickAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(3, rng), randMat(3, rng)
		return a.Add(b).Equal(b.Add(a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDistributes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randMat(3, rng), randMat(3, rng), randMat(3, rng)
		lhs := a.Mul(b.Add(c))
		rhs := a.Mul(b).Add(a.Mul(c))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAdjointInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(4, rng)
		return a.Adjoint().Adjoint().Equal(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTracePreservedBySimilarity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMat(3, rng)
		u := RandomUnitary(3, rng)
		got := u.Adjoint().Mul(a).Mul(u).Trace()
		return cmplx.Abs(got-a.Trace()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randMat(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}
