package synth

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"epoc/internal/faultclock"
	"epoc/internal/linalg"
)

// TestQSearchBudgetNodes: a node budget below what the target needs
// stops the search deterministically with ErrBudget and the
// best-so-far circuit.
func TestQSearchBudgetNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := linalg.RandomUnitary(4, rng)
	full := QSearch(u, Options{Seed: 3})
	if full.Err != nil {
		t.Fatalf("unbudgeted search Err = %v", full.Err)
	}
	capped := QSearch(u, Options{Seed: 3, BudgetNodes: 1})
	if !faultclock.IsBudget(capped.Err) {
		t.Fatalf("capped search Err = %v, want ErrBudget", capped.Err)
	}
	if capped.Nodes != 1 {
		t.Fatalf("capped search expanded %d nodes, budget was 1", capped.Nodes)
	}
	if capped.Circuit == nil {
		t.Fatal("capped search returned no best-so-far circuit")
	}
	if capped.Distance < full.Distance {
		t.Fatal("one node beat the full search; budget semantics are off")
	}
}

// TestQSearchCancelAtExactExpansion: a trip armed on the kth expansion
// check cancels the search at exactly that check.
func TestQSearchCancelAtExactExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := linalg.RandomUnitary(4, rng)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultclock.NewInjector()
	const k = 3
	inj.TripAfter(faultclock.SiteQSearchExpand, k, cancel)
	res := QSearch(u, Options{Seed: 3, Gate: &faultclock.Gate{Ctx: ctx, Inj: inj}})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if got := inj.Hits(faultclock.SiteQSearchExpand); got != k {
		t.Fatalf("search made %d expansion checks, want exactly %d", got, k)
	}
}

// TestSynthesizeBlockBudgetFallsBack: under a starved budget the block
// keeps its original gate realization (ok = false, ErrBudget), while a
// cancellation discards everything.
func TestSynthesizeBlockBudgetFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	u := linalg.RandomUnitary(4, rng)
	fb := cxCircuit()

	fake := faultclock.NewFake()
	expired := &faultclock.Gate{Clock: fake, Deadline: fake.Now().Add(-1)}
	circ, ok, err := SynthesizeBlock(u, fb, Options{Seed: 9, Gate: expired})
	if !faultclock.IsBudget(err) {
		t.Fatalf("budget-starved block err = %v, want ErrBudget", err)
	}
	if ok || circ != fb {
		t.Fatalf("budget-starved block should keep its fallback: ok=%v circ==fb %v", ok, circ == fb)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	circ, ok, err = SynthesizeBlock(u, fb, Options{Seed: 9, Gate: &faultclock.Gate{Ctx: ctx}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled block err = %v, want context.Canceled", err)
	}
	if ok || circ != nil {
		t.Fatal("canceled block must discard partial work, not fall back")
	}
}
