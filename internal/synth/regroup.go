package synth

import (
	"sort"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// Regroup aggregates adjacent gates (VUGs, CNOTs, anything else) into
// unitary block gates over at most maxQubits qubits — the regrouping
// step of EPOC that turns fine-grained synthesis output into matrices
// big enough to profit from quantum optimal control. The result is a
// circuit of gate.Unitary ops implementing the same overall unitary.
//
// Grouping is greedy and order-preserving. Blocks are emitted in
// creation order, so a block may only absorb a qubit whose most recent
// ops live at or before the block's own position; merges always move
// ops to the latest-positioned participant.
func Regroup(c *circuit.Circuit, maxQubits int) *circuit.Circuit {
	if maxQubits <= 0 {
		maxQubits = 3
	}
	type block struct {
		pos    int
		qubits map[int]bool
		ops    []circuit.Op
		closed bool
	}
	var order []*block
	owner := make(map[int]*block) // most recent block per qubit (open or closed)

	// canAbsorb reports whether block b may take over qubit q without
	// reordering: the qubit's most recent ops must not live after b.
	canAbsorb := func(b *block, q int) bool {
		prev := owner[q]
		return prev == nil || prev == b || prev.pos <= b.pos
	}

	newBlock := func(op circuit.Op) {
		b := &block{pos: len(order), qubits: map[int]bool{}}
		for _, q := range op.Qubits {
			if prev := owner[q]; prev != nil {
				prev.closed = true
			}
			b.qubits[q] = true
			owner[q] = b
		}
		b.ops = append(b.ops, op)
		order = append(order, b)
	}

	addTo := func(b *block, op circuit.Op) {
		for _, q := range op.Qubits {
			if prev := owner[q]; prev != nil && prev != b {
				prev.closed = true
			}
			b.qubits[q] = true
			owner[q] = b
		}
		b.ops = append(b.ops, op)
	}

	for _, op := range c.Ops {
		var owners []*block
		seen := map[*block]bool{}
		for _, q := range op.Qubits {
			if b := owner[q]; b != nil && !b.closed && !seen[b] {
				owners = append(owners, b)
				seen[b] = true
			}
		}
		switch len(owners) {
		case 0:
			newBlock(op)
		case 1:
			b := owners[0]
			fits := true
			union := len(b.qubits)
			for _, q := range op.Qubits {
				if !b.qubits[q] {
					union++
					if !canAbsorb(b, q) {
						fits = false
					}
				}
			}
			if fits && union <= maxQubits {
				addTo(b, op)
			} else {
				b.closed = true
				newBlock(op)
			}
		default:
			// Merge into the latest-positioned owner when the union fits
			// and every foreign qubit may move there; otherwise seal all.
			dst := owners[0]
			for _, b := range owners[1:] {
				if b.pos > dst.pos {
					dst = b
				}
			}
			union := map[int]bool{}
			for _, b := range owners {
				for q := range b.qubits {
					union[q] = true
				}
			}
			for _, q := range op.Qubits {
				union[q] = true
			}
			ok := len(union) <= maxQubits
			if ok {
				for _, q := range op.Qubits {
					if !dst.qubits[q] && !canAbsorb(dst, q) {
						ok = false
					}
				}
			}
			if ok {
				// Moving an earlier open block's ops later is safe: no
				// block between the two positions can share its qubits
				// (it would have sealed the open block).
				for _, b := range owners {
					if b == dst {
						continue
					}
					dst.ops = append(dst.ops, b.ops...)
					for q := range b.qubits {
						dst.qubits[q] = true
						owner[q] = dst
					}
					b.ops = nil
					b.closed = true
				}
				addTo(dst, op)
			} else {
				for _, b := range owners {
					b.closed = true
				}
				newBlock(op)
			}
		}
	}

	out := circuit.New(c.NumQubits)
	for _, b := range order {
		if len(b.ops) == 0 {
			continue
		}
		out.AppendOp(blockToOp(b.ops))
	}
	return out
}

// blockToOp converts a run of ops into one unitary gate op.
func blockToOp(ops []circuit.Op) circuit.Op {
	qset := map[int]bool{}
	for _, op := range ops {
		for _, q := range op.Qubits {
			qset[q] = true
		}
	}
	qubits := make([]int, 0, len(qset))
	for q := range qset {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)
	local := map[int]int{}
	for i, q := range qubits {
		local[q] = i
	}
	dim := 1 << len(qubits)
	u := linalg.Identity(dim)
	for _, op := range ops {
		lq := make([]int, len(op.Qubits))
		for i, q := range op.Qubits {
			lq[i] = local[q]
		}
		u = linalg.EmbedOperator(op.G.Matrix(), lq, len(qubits)).Mul(u)
	}
	return circuit.NewOp(gate.NewUnitary(u), qubits...)
}
