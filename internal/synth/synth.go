package synth

import (
	"math"

	"epoc/internal/circuit"
	"epoc/internal/faultclock"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/optimize"
)

// Synthesize1Q returns an exact circuit for a 1-qubit unitary: a single
// U3 gate from the ZYZ Euler angles (or an empty circuit for identity).
func Synthesize1Q(u *linalg.Matrix) *circuit.Circuit {
	c := circuit.New(1)
	_, beta, gamma, delta := optimize.ZYZ(u)
	if zeroAngle(beta) && zeroAngle(gamma) && zeroAngle(delta) {
		return c
	}
	// U3(θ,φ,λ) = RZ(φ)·RY(θ)·RZ(λ) up to phase.
	c.Append(gate.New(gate.U3, gamma, beta, delta), 0)
	return c
}

// threshold is the phase-invariant distance below which a QSearch
// result counts as an exact synthesis of the target.
const threshold = 1e-7

// SynthesizeOutcome synthesizes a block unitary into VUGs (U3) +
// CNOTs and reports ok = true when the search reached the accuracy
// threshold. On failure the best (out-of-threshold) search result is
// still returned with ok = false; the caller decides what to fall
// back to. The returned error classifies early exits the same way
// QSearch's Result.Err does: nil for a completed search,
// faultclock.ErrBudget when a budget stopped it (the partial circuit
// is still meaningful), or the context's error on cancellation. The
// outcome is a deterministic function of the unitary (up to global
// phase) and opts, which is what makes it cacheable and shareable
// across duplicate blocks.
func SynthesizeOutcome(u *linalg.Matrix, opts Options) (*circuit.Circuit, bool, error) {
	res := QSearch(u, opts)
	return res.Circuit, res.Circuit != nil && res.Distance < threshold, res.Err
}

// SynthesizeBlock is SynthesizeOutcome with fallback substitution:
// when the search misses the threshold and fallback is non-nil, the
// fallback is returned instead — callers pass the block's original
// gate realization, so synthesis is a best-effort improvement and
// never a correctness risk. A budget exit therefore degrades to the
// fallback; a cancellation discards the partial circuit and returns
// only the context's error.
func SynthesizeBlock(u *linalg.Matrix, fallback *circuit.Circuit, opts Options) (*circuit.Circuit, bool, error) {
	circ, ok, err := SynthesizeOutcome(u, opts)
	if err != nil && !faultclock.IsBudget(err) {
		return nil, false, err
	}
	if !ok {
		opts.Obs.Add("synth/fallbacks", 1)
		if fallback != nil {
			return fallback, false, err
		}
	}
	return circ, ok, err
}

func zeroAngle(a float64) bool {
	m := math.Mod(math.Abs(a), 2*math.Pi)
	return m < 1e-10 || 2*math.Pi-m < 1e-10
}
