package synth

import (
	"math"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/optimize"
)

// Synthesize1Q returns an exact circuit for a 1-qubit unitary: a single
// U3 gate from the ZYZ Euler angles (or an empty circuit for identity).
func Synthesize1Q(u *linalg.Matrix) *circuit.Circuit {
	c := circuit.New(1)
	_, beta, gamma, delta := optimize.ZYZ(u)
	if zeroAngle(beta) && zeroAngle(gamma) && zeroAngle(delta) {
		return c
	}
	// U3(θ,φ,λ) = RZ(φ)·RY(θ)·RZ(λ) up to phase.
	c.Append(gate.New(gate.U3, gamma, beta, delta), 0)
	return c
}

// SynthesizeBlock synthesizes a block unitary into VUGs (U3) + CNOTs,
// verifying the result. It reports ok = true when the search reached
// the accuracy threshold and the synthesized circuit is returned.
// Otherwise ok is false and the fallback, when non-nil, is returned
// instead — callers pass the block's original gate realization, so
// synthesis is a best-effort improvement and never a correctness risk.
// With a nil fallback the best (out-of-threshold) search result is
// returned, still with ok = false.
func SynthesizeBlock(u *linalg.Matrix, fallback *circuit.Circuit, opts Options) (*circuit.Circuit, bool) {
	const threshold = 1e-7
	res := QSearch(u, opts)
	if res.Distance < threshold {
		return res.Circuit, true
	}
	opts.Obs.Add("synth/fallbacks", 1)
	if fallback != nil {
		return fallback, false
	}
	return res.Circuit, false
}

func zeroAngle(a float64) bool {
	m := math.Mod(math.Abs(a), 2*math.Pi)
	return m < 1e-10 || 2*math.Pi-m < 1e-10
}
