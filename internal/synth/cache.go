package synth

import (
	"sort"
	"sync"

	"epoc/internal/circuit"
	"epoc/internal/faultclock"
	"epoc/internal/linalg"
)

// CacheStatus classifies the outcome of a Cache.GetOrCompute call.
type CacheStatus int

const (
	// CacheMiss: no entry existed; this call ran the synthesis.
	CacheMiss CacheStatus = iota
	// CacheHit: a completed entry existed and was returned directly.
	CacheHit
	// CacheCoalesced: another goroutine was already synthesizing the
	// same unitary; this call waited for its result instead of racing.
	CacheCoalesced
)

// String names the status for reports and trace attributes; the
// coalesced case reads "wait" to contrast with a computing miss.
func (s CacheStatus) String() string {
	switch s {
	case CacheHit:
		return "hit"
	case CacheCoalesced:
		return "wait"
	default:
		return "miss"
	}
}

// CacheTol bounds the verified phase distance between a requested
// unitary and a stored entry (or, in the pipeline's duplicate-block
// grouping, between two blocks sharing one synthesis). It is tighter
// than the pulse library's matchTol because a cached circuit is
// substituted for the block wholesale: two blocks may only share a
// realization when their unitaries agree (up to global phase) well
// below the synthesis accuracy threshold, so reuse never adds
// observable error. It still sits comfortably above the ~1e-8
// numerical noise floor of PhaseDistance on identical matrices
// (sqrt amplifies the ~1e-16 trace rounding), so true duplicates
// always match.
const CacheTol = 1e-6

// Cache is a goroutine-safe synthesis cache keyed by block unitary up
// to global phase, using the same canonical-phase fingerprint scheme
// as the pulse library. Duplicate unitaries are synthesized once;
// concurrent requests for an in-flight unitary coalesce onto the
// first computation rather than racing it. Every lookup is verified
// against the stored unitary, so fingerprint collisions degrade to
// independent entries instead of wrong circuits.
//
// Cached circuits are shared between callers and must be treated as
// immutable. All methods are safe on a nil *Cache: GetOrCompute then
// degrades to calling compute directly (no caching, no coalescing).
type Cache struct {
	mu      sync.Mutex
	entries map[string][]*cacheEntry

	hits, misses, coalesced int64
}

// cacheEntry is one synthesized unitary class. done is closed once
// circ/ok are populated; readers that find an open entry wait on it.
type cacheEntry struct {
	u    *linalg.Matrix
	done chan struct{}
	circ *circuit.Circuit
	ok   bool
}

// NewCache returns an empty synthesis cache.
func NewCache() *Cache {
	return &Cache{entries: map[string][]*cacheEntry{}}
}

// GetOrCompute returns the cached synthesis result for u, running
// compute exactly once per unitary class (up to global phase). The
// returned ok mirrors SynthesizeOutcome: true when the synthesis
// reached the accuracy threshold, false when the caller should fall
// back to the block's original realization. compute must not call
// back into the same Cache.
//
// A compute that returns a non-nil error (cancellation or budget
// exhaustion) never lands in the cache: its entry is removed before
// waiters are released, so a canceled or budget-starved fill cannot
// poison later compiles that run with a fresh budget. Coalesced
// callers that were waiting on such a fill retry the lookup — under
// their own gate — and either find a fresh fill or run compute
// themselves. The gate also makes the wait cancellable: a waiter
// whose context is canceled returns promptly with the context's
// error instead of blocking on someone else's synthesis.
func (c *Cache) GetOrCompute(g *faultclock.Gate, u *linalg.Matrix, compute func() (*circuit.Circuit, bool, error)) (*circuit.Circuit, bool, CacheStatus, error) {
	if c == nil {
		circ, ok, err := compute()
		return circ, ok, CacheMiss, err
	}
	key := linalg.Fingerprint(u)
	waited := false
	for {
		c.mu.Lock()
		var inflight *cacheEntry
		for _, e := range c.entries[key] {
			if e.u.Rows != u.Rows || linalg.PhaseDistance(e.u, u) >= CacheTol {
				continue
			}
			select {
			case <-e.done: // completed entry
				status := CacheHit
				if waited {
					status = CacheCoalesced
				} else {
					c.hits++
				}
				c.mu.Unlock()
				return e.circ, e.ok, status, nil
			default: // in flight: wait outside the lock
				inflight = e
			}
			break
		}
		if inflight == nil {
			e := &cacheEntry{u: u.Clone(), done: make(chan struct{})}
			c.entries[key] = append(c.entries[key], e)
			c.misses++
			c.mu.Unlock()
			circ, ok, err := compute()
			if err != nil {
				c.remove(key, e)
				close(e.done)
				return circ, ok, CacheMiss, err
			}
			e.circ, e.ok = circ, ok
			close(e.done)
			return circ, ok, CacheMiss, nil
		}
		if !waited {
			c.coalesced++
			waited = true
		}
		c.mu.Unlock()
		if err := g.Check(faultclock.SiteCacheWait); err != nil {
			return nil, false, CacheCoalesced, err
		}
		select {
		case <-inflight.done:
			// Loop: a successful fill is found as a completed entry on
			// the retry; a failed one was removed, so the retry either
			// finds a newer fill or becomes the computer.
		case <-g.Done():
			return nil, false, CacheCoalesced, g.Err()
		}
	}
}

// remove deletes a failed in-flight entry so it is never observed as
// a completed fill. Called before the entry's done channel closes.
func (c *Cache) remove(key string, target *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	es := c.entries[key]
	for i, e := range es {
		if e == target {
			c.entries[key] = append(es[:i:i], es[i+1:]...)
			return
		}
	}
}

// Entry is one exported cache entry: the unitary, its synthesized
// circuit (nil when none was usable) and the threshold outcome — the
// unit the persistent store (internal/store) serializes.
type Entry struct {
	U    *linalg.Matrix
	Circ *circuit.Circuit
	Ok   bool
}

// Export snapshots every *completed* entry, sorted by fingerprint key.
// In-flight entries are skipped without waiting: a harvest runs at
// compile boundaries and must not block on another compile's synthesis.
func (c *Cache) Export() []Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Entry
	for _, k := range keys {
		for _, e := range c.entries[k] {
			select {
			case <-e.done:
				out = append(out, Entry{U: e.u, Circ: e.circ, Ok: e.ok})
			default:
			}
		}
	}
	return out
}

// Import seeds the cache with a completed synthesis result unless a
// verified-equal entry already exists, reporting whether it was added.
// It never touches the hit/miss counters: warming a cache from disk is
// not a lookup.
func (c *Cache) Import(u *linalg.Matrix, circ *circuit.Circuit, ok bool) bool {
	if c == nil || u == nil {
		return false
	}
	key := linalg.Fingerprint(u)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries[key] {
		if e.u.Rows == u.Rows && linalg.PhaseDistance(e.u, u) < CacheTol {
			return false // present (completed or in flight — either way, not ours to replace)
		}
	}
	e := &cacheEntry{u: u.Clone(), done: make(chan struct{}), circ: circ, ok: ok}
	close(e.done)
	c.entries[key] = append(c.entries[key], e)
	return true
}

// Len returns the number of distinct unitary classes stored.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, es := range c.entries {
		n += len(es)
	}
	return n
}

// Hits returns the number of completed-entry lookups served.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the number of lookups that ran a synthesis.
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Coalesced returns the number of lookups that waited on an in-flight
// synthesis of the same unitary.
func (c *Cache) Coalesced() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}
