// Package synth implements circuit synthesis for EPOC: QSearch-style
// A* search over CNOT placements with numerically instantiated
// variable unitary gates (Algorithm 2 of the paper), single-qubit ZYZ
// synthesis, and the VUG regrouping pass that aggregates synthesized
// gates into QOC-sized unitary blocks.
package synth

import (
	"container/heap"
	"math"
	"math/cmplx"
	"math/rand"

	"epoc/internal/circuit"
	"epoc/internal/faultclock"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/obs"
	"epoc/internal/opt"
	"epoc/internal/trace"
)

// placement is one CNOT in a QSearch template.
type placement struct{ ctrl, tgt int }

// template is a parameterized circuit: a U3 layer on every qubit, then
// for each CNOT placement a CX followed by U3s on its two qubits.
type template struct {
	n          int
	placements []placement
}

func (t *template) paramCount() int { return 3 * (t.n + 2*len(t.placements)) }

// build evaluates the template to a unitary. Later gates multiply on
// the left, matching circuit.Unitary.
func (t *template) build(params []float64) *linalg.Matrix {
	dim := 1 << t.n
	u := linalg.Identity(dim)
	p := 0
	apply1q := func(q int) {
		g := u3Matrix(params[p], params[p+1], params[p+2])
		p += 3
		u = linalg.EmbedOperator(g, []int{q}, t.n).Mul(u)
	}
	for q := 0; q < t.n; q++ {
		apply1q(q)
	}
	cx := gate.New(gate.CX).Matrix()
	for _, pl := range t.placements {
		u = linalg.EmbedOperator(cx, []int{pl.ctrl, pl.tgt}, t.n).Mul(u)
		apply1q(pl.ctrl)
		apply1q(pl.tgt)
	}
	return u
}

// toCircuit renders the instantiated template as a circuit of U3 VUGs
// and CNOTs, dropping U3s that are identity up to phase.
func (t *template) toCircuit(params []float64) *circuit.Circuit {
	c := circuit.New(t.n)
	p := 0
	emit1q := func(q int) {
		theta, phi, lam := params[p], params[p+1], params[p+2]
		p += 3
		if isIdentityU3(theta, phi, lam) {
			return
		}
		c.Append(gate.New(gate.U3, theta, phi, lam), q)
	}
	for q := 0; q < t.n; q++ {
		emit1q(q)
	}
	for _, pl := range t.placements {
		c.Append(gate.New(gate.CX), pl.ctrl, pl.tgt)
		emit1q(pl.ctrl)
		emit1q(pl.tgt)
	}
	return c
}

// distance is the phase-invariant Hilbert-Schmidt cost
// 1 - |tr(T(p)†·U)|/dim, which is 0 iff T(p) = e^{iφ}U.
func (t *template) distance(target *linalg.Matrix, params []float64) float64 {
	got := t.build(params)
	d := 1 - cmplx.Abs(linalg.HSInner(got, target))/float64(target.Rows)
	if d < 0 {
		return 0
	}
	return d
}

// instantiate fits the template's parameters to the target with
// multistart L-BFGS over the HS cost. Returns the best parameters and
// their cost.
func (t *template) instantiate(target *linalg.Matrix, seeds [][]float64, rng *rand.Rand, budget int) ([]float64, float64) {
	np := t.paramCount()
	obj := func(x []float64) float64 { return t.distance(target, x) }
	grad := opt.FiniteDiffGradient(obj, 1e-7)

	bestF := math.Inf(1)
	var bestX []float64
	try := func(x0 []float64) {
		res := opt.LBFGS(obj, grad, x0, opt.LBFGSConfig{MaxIter: budget, GradTol: 1e-10, Tol: 1e-14})
		if res.F < bestF {
			bestF = res.F
			bestX = res.X
		}
	}
	for _, s := range seeds {
		if len(s) == np {
			try(s)
		}
		if bestF < instantiateTol {
			return bestX, bestF
		}
	}
	restarts := 2
	if len(t.placements) > 2 {
		restarts = 3
	}
	for r := 0; r < restarts && bestF >= instantiateTol; r++ {
		x0 := make([]float64, np)
		for i := range x0 {
			x0[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		try(x0)
	}
	return bestX, bestF
}

const instantiateTol = 1e-10

// Options tunes the QSearch engine.
type Options struct {
	MaxCNOTs  int   // search depth limit (default: 3 for 2q, 14 for 3q)
	MaxNodes  int   // A* node expansion budget (default 64)
	OptBudget int   // L-BFGS iteration budget per instantiation (default 150)
	Seed      int64 // RNG seed for multistart (default 1)

	// Obs, when non-nil, records search effort under "synth/*": node
	// expansions, instantiation calls and their timer, and the achieved
	// distance/CNOT-count distributions per synthesized block.
	Obs *obs.Recorder

	// Gate, when non-nil, is checked before every node expansion
	// (faultclock.SiteQSearchExpand). A cancellation or deadline stops
	// the search immediately; Result.Err classifies the exit and the
	// best-so-far circuit is still returned.
	Gate *faultclock.Gate

	// BudgetNodes, when > 0 and below MaxNodes, caps node expansions
	// deterministically: the search stops with Result.Err =
	// faultclock.ErrBudget after exactly that many expansions. Unlike a
	// deadline it does not depend on wall-clock time, so budgeted
	// compiles stay byte-identical across worker counts.
	BudgetNodes int

	// Span, when non-nil, receives the search's outcome as trace
	// attributes (nodes expanded, CNOT count, achieved distance, stop
	// reason). The caller owns the span's lifetime; QSearch only
	// annotates it. Attribute values are deterministic functions of
	// (unitary, Options), so traced compiles stay byte-identical across
	// worker counts.
	Span *trace.Span
}

func (o *Options) defaults(n int) {
	if o.MaxCNOTs == 0 {
		if n <= 2 {
			o.MaxCNOTs = 3
		} else {
			o.MaxCNOTs = 14
		}
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 64
	}
	if o.OptBudget == 0 {
		o.OptBudget = 150
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Result is a synthesized circuit with its achieved distance.
type Result struct {
	Circuit  *circuit.Circuit
	Distance float64
	CNOTs    int
	Nodes    int // A* nodes instantiated

	// Err classifies an early exit: nil when the search ran to
	// completion (target hit or MaxNodes), faultclock.ErrBudget when a
	// node or time budget stopped it (Circuit is the best-so-far and
	// usable as a degraded result), or the context's error when
	// canceled (the caller should discard the partial circuit).
	Err error
}

// node is an A* search state.
type node struct {
	placements []placement
	params     []float64
	dist       float64
	priority   float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// QSearch synthesizes a unitary over n = log2(dim) qubits into U3 VUGs
// and CNOTs using best-first search over CNOT placements (Algorithm 2).
// It returns the best circuit found; check Result.Distance against the
// caller's accuracy threshold.
func QSearch(target *linalg.Matrix, opts Options) Result {
	n := qubitsOf(target)
	if n == 1 {
		c := Synthesize1Q(target)
		return Result{Circuit: c, Distance: 0}
	}
	opts.defaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	record := func(res Result) Result {
		if r := opts.Obs; r != nil {
			r.Add("synth/blocks", 1)
			r.Add("synth/nodes", int64(res.Nodes))
			r.Observe("synth/distance", res.Distance)
			r.Observe("synth/cnots", float64(res.CNOTs))
		}
		opts.Span.SetInt("nodes", int64(res.Nodes)).
			SetInt("cnots", int64(res.CNOTs)).
			SetFloat("distance", res.Distance).
			SetStr("stop", stopReason(res.Err))
		return res
	}

	pairs := orderedPairs(n)
	open := &nodeHeap{}
	heap.Init(open)

	nodes := 0
	// gateCheck runs before every expansion: the injector/ctx/deadline
	// gate first (so "cancel at the Nth expansion" trips are observed
	// by that very check), then the deterministic node budget.
	gateCheck := func() error {
		if err := opts.Gate.Check(faultclock.SiteQSearchExpand); err != nil {
			return err
		}
		if opts.BudgetNodes > 0 && nodes >= opts.BudgetNodes {
			return faultclock.ErrBudget
		}
		return nil
	}

	expand := func(pls []placement, seeds [][]float64) *node {
		t := &template{n: n, placements: pls}
		sp := opts.Obs.Span("synth/instantiate")
		params, dist := t.instantiate(target, seeds, rng, opts.OptBudget)
		sp.End()
		opts.Obs.Add("synth/instantiations", 1)
		return &node{
			placements: pls,
			params:     params,
			dist:       dist,
			// A* priority: the cost-so-far is the CNOT count (what we
			// minimize), the heuristic is the scaled remaining distance.
			priority: float64(len(pls)) + 10*dist,
		}
	}

	if err := gateCheck(); err != nil {
		// Stopped before the root expansion: nothing synthesized at
		// all. Callers fall back to the block's gate realization (on
		// budget) or discard the compile (on cancellation).
		return record(Result{Distance: math.Inf(1), Err: err})
	}
	root := expand(nil, nil)
	nodes = 1
	best := root
	if root.dist < instantiateTol {
		t := &template{n: n, placements: root.placements}
		return record(Result{Circuit: t.toCircuit(root.params), Distance: root.dist, Nodes: nodes})
	}
	heap.Push(open, root)

	var stop error
search:
	for open.Len() > 0 && nodes < opts.MaxNodes {
		cur := heap.Pop(open).(*node)
		if len(cur.placements) >= opts.MaxCNOTs {
			continue
		}
		for _, pr := range pairs {
			if stop = gateCheck(); stop != nil {
				break search
			}
			pls := append(append([]placement(nil), cur.placements...), pr)
			// Seed the child with the parent's parameters extended by
			// identity U3s on the new layer.
			seed := append(append([]float64(nil), cur.params...), make([]float64, 6)...)
			child := expand(pls, [][]float64{seed})
			nodes++
			if child.dist < best.dist || (child.dist < instantiateTol && len(pls) < best.cnots()) {
				best = child
			}
			if child.dist < instantiateTol {
				t := &template{n: n, placements: child.placements}
				return record(Result{Circuit: t.toCircuit(child.params), Distance: child.dist, CNOTs: len(pls), Nodes: nodes})
			}
			heap.Push(open, child)
			if nodes >= opts.MaxNodes {
				break
			}
		}
	}
	t := &template{n: n, placements: best.placements}
	return record(Result{Circuit: t.toCircuit(best.params), Distance: best.dist, CNOTs: len(best.placements), Nodes: nodes, Err: stop})
}

func (n *node) cnots() int { return len(n.placements) }

// stopReason classifies a search exit for the trace attribute.
func stopReason(err error) string {
	switch {
	case err == nil:
		return "completed"
	case faultclock.IsBudget(err):
		return "budget"
	default:
		return "canceled"
	}
}

func orderedPairs(n int) []placement {
	var out []placement
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				out = append(out, placement{a, b})
			}
		}
	}
	return out
}

func qubitsOf(m *linalg.Matrix) int {
	n := 0
	for d := m.Rows; d > 1; d >>= 1 {
		n++
	}
	return n
}

func u3Matrix(theta, phi, lam float64) *linalg.Matrix {
	return gate.New(gate.U3, theta, phi, lam).Matrix()
}

func isIdentityU3(theta, phi, lam float64) bool {
	u := u3Matrix(theta, phi, lam)
	return linalg.PhaseDistance(u, linalg.Identity(2)) < 1e-9
}
