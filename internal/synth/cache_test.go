package synth

import (
	"math/cmplx"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func cxCircuit() *circuit.Circuit {
	c := circuit.New(2)
	c.Append(gate.New(gate.CX), 0, 1)
	return c
}

func TestCacheHitMissCounting(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	calls := 0
	compute := func() (*circuit.Circuit, bool, error) {
		calls++
		return cxCircuit(), true, nil
	}
	circ1, ok, st, _ := c.GetOrCompute(nil, u, compute)
	if !ok || st != CacheMiss || calls != 1 {
		t.Fatalf("first lookup: ok=%v status=%v calls=%d", ok, st, calls)
	}
	circ2, ok, st, _ := c.GetOrCompute(nil, u, compute)
	if !ok || st != CacheHit || calls != 1 {
		t.Fatalf("second lookup: ok=%v status=%v calls=%d", ok, st, calls)
	}
	if circ1 != circ2 {
		t.Fatal("hit returned a different circuit instance")
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Coalesced() != 0 || c.Len() != 1 {
		t.Fatalf("counters: hits=%d misses=%d coalesced=%d len=%d",
			c.Hits(), c.Misses(), c.Coalesced(), c.Len())
	}
}

func TestCacheMatchesUpToGlobalPhase(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	phased := u.Scale(cmplx.Exp(0.7i))
	calls := 0
	compute := func() (*circuit.Circuit, bool, error) {
		calls++
		return cxCircuit(), true, nil
	}
	if _, _, st, _ := c.GetOrCompute(nil, u, compute); st != CacheMiss {
		t.Fatalf("expected miss, got %v", st)
	}
	if _, _, st, _ := c.GetOrCompute(nil, phased, compute); st != CacheHit {
		t.Fatalf("phase-rotated unitary should hit, got %v (calls=%d)", st, calls)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
}

func TestCacheDistinguishesDistinctUnitaries(t *testing.T) {
	c := NewCache()
	rng := rand.New(rand.NewSource(11))
	u1 := linalg.RandomUnitary(4, rng)
	u2 := linalg.RandomUnitary(4, rng)
	calls := 0
	compute := func() (*circuit.Circuit, bool, error) {
		calls++
		return cxCircuit(), true, nil
	}
	c.GetOrCompute(nil, u1, compute)
	if _, _, st, _ := c.GetOrCompute(nil, u2, compute); st != CacheMiss {
		t.Fatalf("distinct unitary should miss, got %v", st)
	}
	if calls != 2 || c.Len() != 2 {
		t.Fatalf("calls=%d len=%d", calls, c.Len())
	}
}

// TestCacheCoalescesInFlight pins the coalescing contract: a second
// request for an in-flight unitary waits for the first computation
// instead of starting its own.
func TestCacheCoalescesInFlight(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	started := make(chan struct{})
	release := make(chan struct{})
	var calls sync.WaitGroup
	calls.Add(1)
	go func() {
		defer calls.Done()
		_, ok, st, _ := c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			close(started)
			<-release
			return cxCircuit(), true, nil
		})
		if !ok || st != CacheMiss {
			t.Errorf("first requester: ok=%v status=%v", ok, st)
		}
	}()
	<-started // the first computation is now in flight
	done := make(chan CacheStatus, 1)
	go func() {
		_, _, st, _ := c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			t.Error("coalesced requester ran its own compute")
			return nil, false, nil
		})
		done <- st
	}()
	// Wait until the second requester is parked on the in-flight entry
	// (the coalesced counter increments before it blocks), then check
	// it has not finished.
	deadline := time.Now().Add(5 * time.Second)
	for c.Coalesced() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second requester never coalesced")
		}
		runtime.Gosched()
	}
	select {
	case st := <-done:
		t.Fatalf("second requester finished before the first (status %v)", st)
	default:
	}
	close(release)
	if st := <-done; st != CacheCoalesced {
		t.Fatalf("second requester status %v, want CacheCoalesced", st)
	}
	calls.Wait()
	if c.Coalesced() != 1 || c.Misses() != 1 {
		t.Fatalf("coalesced=%d misses=%d", c.Coalesced(), c.Misses())
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	u := gate.New(gate.CX).Matrix()
	calls := 0
	for i := 0; i < 2; i++ {
		_, ok, st, _ := c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			calls++
			return cxCircuit(), true, nil
		})
		if !ok || st != CacheMiss {
			t.Fatalf("nil cache: ok=%v status=%v", ok, st)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache must always compute; calls=%d", calls)
	}
	if c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 || c.Coalesced() != 0 {
		t.Fatal("nil cache counters must be zero")
	}
}

// TestCachePreservesFallbackFlag: a failed synthesis outcome (ok =
// false) is cached too, so duplicates don't re-run a search that is
// known to miss the threshold — but each caller still applies its own
// fallback.
func TestCachePreservesFallbackFlag(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	calls := 0
	compute := func() (*circuit.Circuit, bool, error) {
		calls++
		return cxCircuit(), false, nil
	}
	if _, ok, _, _ := c.GetOrCompute(nil, u, compute); ok {
		t.Fatal("expected ok=false from compute")
	}
	if _, ok, st, _ := c.GetOrCompute(nil, u, compute); ok || st != CacheHit {
		t.Fatalf("cached failure: ok=%v status=%v", ok, st)
	}
	if calls != 1 {
		t.Fatalf("failed synthesis re-ran: calls=%d", calls)
	}
}
