package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func TestSynthesize1QRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		u := linalg.RandomUnitary(2, rng)
		c := Synthesize1Q(u)
		if c.Len() > 1 {
			t.Fatalf("1q synthesis emitted %d ops", c.Len())
		}
		if d := linalg.PhaseDistance(u, c.Unitary()); d > 1e-7 {
			t.Fatalf("1q synthesis distance %v", d)
		}
	}
}

func TestSynthesize1QIdentity(t *testing.T) {
	if c := Synthesize1Q(linalg.Identity(2)); c.Len() != 0 {
		t.Fatalf("identity produced %d ops", c.Len())
	}
	// Global phase only.
	if c := Synthesize1Q(linalg.Identity(2).Scale(complex(0, 1))); c.Len() != 0 {
		t.Fatalf("phased identity produced %d ops", c.Len())
	}
}

func TestQSearchProductState(t *testing.T) {
	// A ⊗ B needs zero CNOTs.
	rng := rand.New(rand.NewSource(2))
	u := linalg.RandomUnitary(2, rng).Kron(linalg.RandomUnitary(2, rng))
	res := QSearch(u, Options{Seed: 3})
	if res.Distance > 1e-7 {
		t.Fatalf("distance %v", res.Distance)
	}
	if got := res.Circuit.CountKind(gate.CX); got != 0 {
		t.Fatalf("product state used %d CNOTs", got)
	}
}

func TestQSearchCNOT(t *testing.T) {
	u := gate.New(gate.CX).Matrix()
	res := QSearch(u, Options{Seed: 5})
	if res.Distance > 1e-7 {
		t.Fatalf("distance %v", res.Distance)
	}
	if got := res.Circuit.CountKind(gate.CX); got != 1 {
		t.Fatalf("CNOT target used %d CNOTs", got)
	}
	if d := linalg.PhaseDistance(u, res.Circuit.Unitary()); d > 1e-5 {
		t.Fatalf("unitary distance %v", d)
	}
}

func TestQSearchCZ(t *testing.T) {
	u := gate.New(gate.CZ).Matrix()
	res := QSearch(u, Options{Seed: 7})
	if res.Distance > 1e-7 {
		t.Fatalf("distance %v", res.Distance)
	}
	if got := res.Circuit.CountKind(gate.CX); got != 1 {
		t.Fatalf("CZ used %d CNOTs, want 1", got)
	}
}

func TestQSearchRandomSU4(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		u := linalg.RandomUnitary(4, rng)
		res := QSearch(u, Options{Seed: int64(100 + trial)})
		if res.Distance > 1e-7 {
			t.Fatalf("trial %d distance %v (cnots %d, nodes %d)", trial, res.Distance, res.CNOTs, res.Nodes)
		}
		if cx := res.Circuit.CountKind(gate.CX); cx > 3 {
			t.Fatalf("generic SU(4) used %d CNOTs, expected <= 3", cx)
		}
		if d := linalg.PhaseDistance(u, res.Circuit.Unitary()); d > 1e-4 {
			t.Fatalf("unitary distance %v", d)
		}
	}
}

func TestQSearchSWAPDepth(t *testing.T) {
	u := gate.New(gate.SWAP).Matrix()
	res := QSearch(u, Options{Seed: 13})
	if res.Distance > 1e-7 {
		t.Fatalf("distance %v", res.Distance)
	}
	if cx := res.Circuit.CountKind(gate.CX); cx != 3 {
		t.Fatalf("SWAP used %d CNOTs, want 3", cx)
	}
}

func TestSynthesizeBlockFallback(t *testing.T) {
	// An impossible budget forces the fallback path.
	rng := rand.New(rand.NewSource(17))
	u := linalg.RandomUnitary(4, rng)
	fb := circuit.New(2)
	fb.Append(gate.NewUnitary(u), 0, 1)
	c, ok, err := SynthesizeBlock(u, fb, Options{MaxCNOTs: 1, MaxNodes: 3, OptBudget: 5, Seed: 19})
	if err != nil {
		t.Fatalf("SynthesizeBlock error: %v", err)
	}
	if ok || c != fb {
		t.Fatalf("fallback not used: ok=%v", ok)
	}
}

func TestSynthesizeBlock1Q(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	u := linalg.RandomUnitary(2, rng)
	c, ok, err := SynthesizeBlock(u, nil, Options{})
	if err != nil {
		t.Fatalf("SynthesizeBlock error: %v", err)
	}
	if !ok {
		t.Fatal("1q block synthesis must succeed")
	}
	if d := linalg.PhaseDistance(u, c.Unitary()); d > 1e-8 {
		t.Fatalf("unitary distance %v", d)
	}
}

func TestRegroupPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		c := randomVUGCircuit(n, 30, rng)
		g := Regroup(c, 2+rng.Intn(2))
		if d := linalg.PhaseDistance(c.Unitary(), g.Unitary()); d > 1e-7 {
			t.Fatalf("trial %d: regroup changed unitary (%v)", trial, d)
		}
	}
}

func TestRegroupRespectsQubitLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	c := randomVUGCircuit(5, 40, rng)
	for _, max := range []int{2, 3} {
		g := Regroup(c, max)
		for _, op := range g.Ops {
			if len(op.Qubits) > max {
				t.Fatalf("block on %v exceeds limit %d", op.Qubits, max)
			}
			if op.G.Kind != gate.Unitary {
				t.Fatalf("regroup emitted non-unitary op %s", op.G)
			}
		}
	}
}

func TestRegroupAggregates(t *testing.T) {
	// A long 2-qubit run should collapse into one block.
	c := circuit.New(2)
	for i := 0; i < 10; i++ {
		c.Append(gate.New(gate.U3, 0.1*float64(i), 0.2, 0.3), i%2)
		c.Append(gate.New(gate.CX), 0, 1)
	}
	g := Regroup(c, 2)
	if g.Len() != 1 {
		t.Fatalf("2q run became %d blocks, want 1", g.Len())
	}
}

func TestRegroupOrderSafetyRegression(t *testing.T) {
	// Crafted so a naive grouper absorbs qubit 3 into an early block even
	// though a later sealed block already holds earlier ops on qubit 3.
	c := circuit.New(6)
	c.Append(gate.New(gate.CX), 0, 1) // B1 {0,1}
	c.Append(gate.New(gate.CX), 3, 2) // B2 {2,3}
	c.Append(gate.New(gate.CX), 4, 2) // grows B2 {2,3,4}
	c.Append(gate.New(gate.CX), 2, 5) // overflows: seals B2, starts {2,5}
	c.Append(gate.New(gate.CX), 1, 3) // must NOT move before the 3,2 op
	g := Regroup(c, 3)
	if d := linalg.PhaseDistance(c.Unitary(), g.Unitary()); d > 1e-7 {
		t.Fatalf("order-safety violated: distance %v\n%s", d, g)
	}
}

func TestRegroupEmpty(t *testing.T) {
	if g := Regroup(circuit.New(3), 2); g.Len() != 0 {
		t.Fatal("empty regroup not empty")
	}
}

func TestQuickRegroupPreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomVUGCircuit(4, 25, rng)
		g := Regroup(c, 2+rng.Intn(2))
		if linalg.PhaseDistance(c.Unitary(), g.Unitary()) > 1e-7 {
			return false
		}
		// Regrouping must never increase the op count.
		return g.Len() <= c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQSearch1QExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := linalg.RandomUnitary(2, rng)
		res := QSearch(u, Options{Seed: seed + 1})
		return linalg.PhaseDistance(u, res.Circuit.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// randomVUGCircuit builds circuits shaped like synthesis output:
// U3 VUGs and CNOTs.
func randomVUGCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		if rng.Intn(2) == 0 {
			c.Append(gate.New(gate.U3, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi), rng.Intn(n))
		} else {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
