package synth

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"epoc/internal/circuit"
	"epoc/internal/faultclock"
	"epoc/internal/gate"
)

// TestCacheFailedFillNotCached: a compute that errors (canceled or
// budget-starved) must leave no entry behind — the next lookup runs a
// fresh compute and only that clean result is cached.
func TestCacheFailedFillNotCached(t *testing.T) {
	for _, fail := range []error{context.Canceled, faultclock.ErrBudget} {
		c := NewCache()
		u := gate.New(gate.CX).Matrix()
		_, _, st, err := c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			return nil, false, fail
		})
		if !errors.Is(err, fail) || st != CacheMiss {
			t.Fatalf("failed fill: err=%v status=%v", err, st)
		}
		if c.Len() != 0 {
			t.Fatalf("failed fill left %d cache entries", c.Len())
		}
		calls := 0
		_, ok, st, err := c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			calls++
			return cxCircuit(), true, nil
		})
		if err != nil || !ok || st != CacheMiss || calls != 1 {
			t.Fatalf("retry after failed fill: ok=%v status=%v calls=%d err=%v", ok, st, calls, err)
		}
		if _, _, st, _ := c.GetOrCompute(nil, u, nil); st != CacheHit {
			t.Fatalf("clean retry was not cached: status %v", st)
		}
	}
}

// TestCacheWaiterCanceledPromptly: a coalesced waiter whose context is
// canceled returns the context error without waiting for the
// in-flight fill. The cancel is armed on the waiter's own
// cache/wait announcement, so no wall-clock sleeps are involved.
func TestCacheWaiterCanceledPromptly(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	started := make(chan struct{})
	release := make(chan struct{})
	fillDone := make(chan struct{})
	go func() {
		defer close(fillDone)
		c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			close(started)
			<-release
			return cxCircuit(), true, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultclock.NewInjector()
	inj.TripAfter(faultclock.SiteCacheWait, 1, cancel)
	g := &faultclock.Gate{Ctx: ctx, Inj: inj}
	_, _, st, err := c.GetOrCompute(g, u, func() (*circuit.Circuit, bool, error) {
		t.Error("canceled waiter ran a compute")
		return nil, false, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	if st != CacheCoalesced {
		t.Fatalf("waiter status = %v, want CacheCoalesced", st)
	}

	// The original fill is unaffected: releasing it caches the result.
	close(release)
	<-fillDone
	if _, ok, st, err := c.GetOrCompute(nil, u, nil); err != nil || !ok || st != CacheHit {
		t.Fatalf("fill after canceled waiter: ok=%v status=%v err=%v", ok, st, err)
	}
}

// TestCacheWaiterRetriesAfterFailedFill: a waiter parked on a fill
// that fails must not inherit the failure — it retries, becomes the
// computer, and its clean result is what ends up cached.
func TestCacheWaiterRetriesAfterFailedFill(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			close(started)
			<-release
			return nil, false, context.Canceled
		})
	}()
	<-started

	type res struct {
		ok  bool
		st  CacheStatus
		err error
	}
	waiterDone := make(chan res, 1)
	waiterCalls := 0
	go func() {
		_, ok, st, err := c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			waiterCalls++
			return cxCircuit(), true, nil
		})
		waiterDone <- res{ok: ok, st: st, err: err}
	}()
	// Park the waiter on the in-flight entry (spin, never sleep).
	deadline := time.Now().Add(5 * time.Second)
	for c.Coalesced() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced")
		}
		runtime.Gosched()
	}
	close(release) // the fill now fails and is removed

	got := <-waiterDone
	if got.err != nil {
		t.Fatalf("waiter inherited the failed fill: %v", got.err)
	}
	if !got.ok || waiterCalls != 1 {
		t.Fatalf("waiter should have computed its own result: ok=%v calls=%d", got.ok, waiterCalls)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want the waiter's clean fill", c.Len())
	}
	if _, ok, st, _ := c.GetOrCompute(nil, u, nil); !ok || st != CacheHit {
		t.Fatalf("waiter's fill not served: ok=%v status=%v", ok, st)
	}
}

// TestCacheWaiterSeesBudgetDeadline: a waiter whose gate deadline has
// passed (fake clock) gives up the wait with ErrBudget instead of
// blocking on a fill that may take arbitrarily long.
func TestCacheWaiterSeesBudgetDeadline(t *testing.T) {
	c := NewCache()
	u := gate.New(gate.CX).Matrix()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.GetOrCompute(nil, u, func() (*circuit.Circuit, bool, error) {
			close(started)
			<-release
			return cxCircuit(), true, nil
		})
	}()
	<-started

	fake := faultclock.NewFake()
	g := &faultclock.Gate{Clock: fake, Deadline: fake.Now().Add(-time.Second)}
	_, _, st, err := c.GetOrCompute(g, u, nil)
	if !faultclock.IsBudget(err) {
		t.Fatalf("expired waiter err = %v, want ErrBudget", err)
	}
	if st != CacheCoalesced {
		t.Fatalf("expired waiter status = %v, want CacheCoalesced", st)
	}
}
