package report

import (
	"strings"
	"testing"

	"epoc/internal/obs"
)

func benchJSON(t *testing.T, latency float64) []byte {
	t.Helper()
	a := &BenchArtifact{
		Version: ManifestVersion, Suite: "small", Strategy: "epoc",
		ConfigFingerprint: "fp0",
		Circuits: []CircuitResult{
			{Name: "ghz", Metrics: map[string]float64{"latency_ns": latency, "fidelity": 0.99, "qoc_runs": 4}},
			{Name: "qft", Metrics: map[string]float64{"latency_ns": 2 * latency, "fidelity": 0.98, "qoc_runs": 6}},
		},
	}
	b, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLoadRunStatsSniffing(t *testing.T) {
	bench, err := LoadRunStats("base", benchJSON(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	if bench.Source != "bench" || bench.Circuits["ghz"]["latency_ns"] != 100 {
		t.Fatalf("bench load: %+v", bench)
	}

	rec := obs.New()
	rec.Add("synthcache/hit", 3)
	rec.Add("synthcache/miss", 1)
	m := &Manifest{
		Version: ManifestVersion, Circuit: "ghz", Strategy: "epoc",
		Metrics:        map[string]float64{"latency_ns": 100},
		Degraded:       true,
		DegradeReasons: []string{"deadline"},
		Obs:            rec.Snapshot(),
	}
	mb, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	man, err := LoadRunStats("m", mb)
	if err != nil {
		t.Fatal(err)
	}
	if man.Source != "manifest" || man.Run["synth_hit_rate"] != 0.75 {
		t.Fatalf("manifest load: %+v", man)
	}
	if len(man.Degraded["ghz"]) != 1 {
		t.Fatalf("manifest degrade reasons: %+v", man.Degraded)
	}

	// A real /v1/stats body carries a "circuits" catalog too — the
	// sniff must still route it to the stats loader (by "queue").
	statsBody := []byte(`{
	  "counters": {"serve/accepted": 10},
	  "cache": {"synth_entries": 2, "synth_hits": 8, "synth_misses": 2,
	            "library_entries": 5, "library_hits": 5, "library_misses": 5},
	  "queue": {"workers": 2, "len": 1, "cap": 16, "inflight": 2, "avg_compile_ms": 12.5},
	  "circuits": ["ghz", "qft"]
	}`)
	st, err := LoadRunStats("live", statsBody)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != "stats" || st.Run["synth_hit_rate"] != 0.8 || st.Run["inflight"] != 2 {
		t.Fatalf("stats load: %+v", st.Run)
	}
	if st.Run["counter:serve/accepted"] != 10 {
		t.Fatalf("stats counters: %+v", st.Run)
	}

	if _, err := LoadRunStats("x", []byte(`{"foo": 1}`)); err == nil {
		t.Fatal("unrecognized artifact accepted")
	}
}

func TestDiffAndGate(t *testing.T) {
	base, err := LoadRunStats("base", benchJSON(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LoadRunStats("cur", benchJSON(t, 103)) // +3% latency
	if err != nil {
		t.Fatal(err)
	}
	d := DiffRunStats(base, cur)

	var ghzLat *DiffRow
	for i := range d.Rows {
		if d.Rows[i].Scope == "ghz" && d.Rows[i].Metric == "latency_ns" {
			ghzLat = &d.Rows[i]
		}
	}
	if ghzLat == nil || ghzLat.Delta() != 3 {
		t.Fatalf("ghz latency row: %+v", ghzLat)
	}

	out := FormatDiff(d)
	for _, want := range []string{"ghz", "latency_ns", "+3.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}

	// 5% slack passes, 1% fails, absolute 2 fails, absolute 5 passes.
	for _, tc := range []struct {
		spec string
		want int
	}{
		{"latency_ns=5%", 0},
		{"latency_ns=1%", 2}, // both circuits moved 3%
		{"latency_ns=2", 2},  // ghz +3, qft +6
		{"latency_ns=7", 0},  // qft +6 within 7
		{"latency_ns=0,qoc_runs=0", 2},
	} {
		rules, err := ParseFailOn(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if got := GateDiff(d, rules); len(got) != tc.want {
			t.Errorf("%s: %d violations (%v), want %d", tc.spec, len(got), got, tc.want)
		}
	}

	// Higher-is-better: a fidelity drop fails, a rise does not.
	worse, _ := LoadRunStats("cur", benchJSON(t, 100))
	worse.Circuits["ghz"]["fidelity"] = 0.90
	rules, _ := ParseFailOn("fidelity=0")
	if v := GateDiff(DiffRunStats(base, worse), rules); len(v) != 1 {
		t.Errorf("fidelity drop: %v", v)
	}
	better, _ := LoadRunStats("cur", benchJSON(t, 100))
	better.Circuits["ghz"]["fidelity"] = 0.999
	if v := GateDiff(DiffRunStats(base, better), rules); len(v) != 0 {
		t.Errorf("fidelity rise flagged: %v", v)
	}

	// Coverage loss: gated metric vanishing is a violation.
	gone, _ := LoadRunStats("cur", benchJSON(t, 100))
	delete(gone.Circuits["ghz"], "qoc_runs")
	rules, _ = ParseFailOn("qoc_runs=0")
	if v := GateDiff(DiffRunStats(base, gone), rules); len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("coverage loss: %v", v)
	}
}

func TestDiffNotes(t *testing.T) {
	a, _ := LoadRunStats("a", benchJSON(t, 100))
	b, _ := LoadRunStats("b", benchJSON(t, 100))
	b.Fingerprint = "fp-other"
	b.Degraded["ghz"] = []string{"deadline"}
	d := DiffRunStats(a, b)
	joined := strings.Join(d.Notes, "\n")
	if !strings.Contains(joined, "fingerprint") || !strings.Contains(joined, "degrade reasons changed") {
		t.Fatalf("notes: %v", d.Notes)
	}
}

func TestParseFailOnErrors(t *testing.T) {
	for _, bad := range []string{"", "latency_ns", "=3", "latency_ns=x", "latency_ns=-1", "latency_ns=12%%"} {
		if _, err := ParseFailOn(bad); err == nil {
			t.Errorf("ParseFailOn(%q) accepted", bad)
		}
	}
	rules, err := ParseFailOn("latency_ns=2%, fidelity=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Rel != 0.02 || rules[1].Abs != 0.001 {
		t.Fatalf("rules: %+v", rules)
	}
}
