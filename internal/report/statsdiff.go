package report

// Run-diff support for cmd/epoc-stats: load any of {run manifest,
// bench artifact, /v1/stats snapshot} into one normalized shape, diff
// two of them, and gate the deltas against -fail-on thresholds. See
// DESIGN.md §15 "Run diffing".

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RunStats is the normalized view epoc-stats diffs: per-circuit scalar
// metrics (empty for a pure stats snapshot), run-wide scalars (cache
// hit rates, queue state), and per-circuit degrade reasons.
type RunStats struct {
	Label  string
	Source string // manifest | bench | stats
	Suite  string
	// Fingerprint is the config fingerprint when the source carries
	// one; DiffRunStats warns — via the returned note — when the two
	// sides differ, but does not refuse (epoc-stats is a lens, the
	// bench gate is the comparability cop).
	Fingerprint string
	Circuits    map[string]map[string]float64
	Run         map[string]float64
	Degraded    map[string][]string
}

// LoadRunStats sniffs data as one of the three supported artifacts.
// The stats check runs first: /v1/stats bodies carry a "circuits"
// catalog too, but only they have "queue"; bench artifacts are then
// the ones with "circuits", manifests the ones with "circuit".
func LoadRunStats(label string, data []byte) (*RunStats, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("report: %s: not a JSON object: %w", label, err)
	}
	switch {
	case probe["queue"] != nil:
		return fromStatsSnapshot(label, data)
	case probe["circuits"] != nil:
		a, err := DecodeArtifact(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		return fromArtifact(label, a), nil
	case probe["circuit"] != nil:
		m, err := DecodeManifest(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		return fromManifest(label, m), nil
	default:
		return nil, fmt.Errorf("report: %s: unrecognized artifact (want a bench JSON, a run manifest, or a /v1/stats snapshot)", label)
	}
}

func fromArtifact(label string, a *BenchArtifact) *RunStats {
	rs := &RunStats{
		Label: label, Source: "bench",
		Suite: a.Suite, Fingerprint: a.ConfigFingerprint,
		Circuits: map[string]map[string]float64{},
		Run:      map[string]float64{},
		Degraded: map[string][]string{},
	}
	for _, c := range a.Circuits {
		rs.Circuits[c.Name] = c.Metrics
	}
	rs.Run["circuits"] = float64(len(a.Circuits))
	return rs
}

func fromManifest(label string, m *Manifest) *RunStats {
	rs := &RunStats{
		Label: label, Source: "manifest",
		Fingerprint: m.ConfigFingerprint,
		Circuits:    map[string]map[string]float64{m.Circuit: m.Metrics},
		Run:         map[string]float64{},
		Degraded:    map[string][]string{},
	}
	if len(m.DegradeReasons) > 0 {
		rs.Degraded[m.Circuit] = m.DegradeReasons
	}
	// The embedded obs snapshot carries the cache counters the serve
	// stats expose run-wide; lift them so a manifest diffs against a
	// stats snapshot on the shared hit-rate keys.
	if m.Obs != nil {
		c := m.Obs.Counters
		addRate(rs.Run, "synth_hit_rate", float64(c["synthcache/hit"]), float64(c["synthcache/miss"]))
		addRate(rs.Run, "library_hit_rate", float64(c["library/hits"]), float64(c["library/misses"]))
	}
	return rs
}

// statsSnapshot mirrors the numeric spine of serve's /v1/stats body.
// Declared here structurally (report must not import serve — the DAG
// points the other way); unknown fields are simply ignored.
type statsSnapshot struct {
	Counters map[string]float64 `json:"counters"`
	Cache    struct {
		SynthEntries   float64 `json:"synth_entries"`
		SynthHits      float64 `json:"synth_hits"`
		SynthMisses    float64 `json:"synth_misses"`
		SynthCoalesced float64 `json:"synth_coalesced"`
		LibraryEntries float64 `json:"library_entries"`
		LibraryHits    float64 `json:"library_hits"`
		LibraryMisses  float64 `json:"library_misses"`
	} `json:"cache"`
	Queue struct {
		Workers  float64 `json:"workers"`
		Len      float64 `json:"len"`
		Cap      float64 `json:"cap"`
		Inflight float64 `json:"inflight"`
		AvgMS    float64 `json:"avg_compile_ms"`
	} `json:"queue"`
}

func fromStatsSnapshot(label string, data []byte) (*RunStats, error) {
	var s statsSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("report: %s: invalid stats snapshot: %w", label, err)
	}
	rs := &RunStats{
		Label: label, Source: "stats",
		Circuits: map[string]map[string]float64{},
		Run:      map[string]float64{},
		Degraded: map[string][]string{},
	}
	for k, v := range s.Counters {
		rs.Run["counter:"+k] = v
	}
	rs.Run["synth_entries"] = s.Cache.SynthEntries
	rs.Run["library_entries"] = s.Cache.LibraryEntries
	addRate(rs.Run, "synth_hit_rate", s.Cache.SynthHits, s.Cache.SynthMisses)
	addRate(rs.Run, "library_hit_rate", s.Cache.LibraryHits, s.Cache.LibraryMisses)
	rs.Run["queue_len"] = s.Queue.Len
	rs.Run["inflight"] = s.Queue.Inflight
	rs.Run["avg_compile_ms"] = s.Queue.AvgMS
	return rs, nil
}

// addRate stores hits/(hits+misses) under name when there was any
// traffic; a rate over zero lookups is noise, not a metric.
func addRate(m map[string]float64, name string, hits, misses float64) {
	if total := hits + misses; total > 0 {
		m[name] = hits / total
	}
}

// DiffRow is one metric's movement between two runs. Scope is the
// circuit name, or "" for run-wide metrics.
type DiffRow struct {
	Scope  string
	Metric string
	Base   float64
	Cur    float64
	// HasBase/HasCur distinguish "metric absent on one side" from a
	// genuine zero.
	HasBase bool
	HasCur  bool
}

// Delta is current − baseline (0 when either side is missing).
func (r DiffRow) Delta() float64 {
	if !r.HasBase || !r.HasCur {
		return 0
	}
	return r.Cur - r.Base
}

// Pct is the signed percent change against the baseline (positive =
// the value grew; whether that is good depends on the metric, which
// is the gate's business, not the table's).
func (r DiffRow) Pct() float64 {
	//epoc:lint-ignore floatcmp guards division; a baseline of exactly 0 means no reference value
	if !r.HasBase || !r.HasCur || r.Base == 0 {
		return 0
	}
	return 100 * (r.Cur - r.Base) / r.Base
}

// RunDiff is the full comparison: every metric either side carries,
// sorted (run-wide first, then circuits alphabetically), plus notes
// about structural differences the rows cannot express.
type RunDiff struct {
	Base, Cur *RunStats
	Rows      []DiffRow
	Notes     []string
}

// DiffRunStats compares two normalized runs metric-by-metric. It
// never fails: incomparable inputs produce notes, and the gate — not
// the diff — decides what is fatal.
func DiffRunStats(base, cur *RunStats) *RunDiff {
	d := &RunDiff{Base: base, Cur: cur}
	if base.Fingerprint != "" && cur.Fingerprint != "" && base.Fingerprint != cur.Fingerprint {
		d.Notes = append(d.Notes, fmt.Sprintf(
			"config fingerprint differs (%.12s… vs %.12s…): deltas include config changes",
			base.Fingerprint, cur.Fingerprint))
	}
	if base.Suite != cur.Suite && base.Suite != "" && cur.Suite != "" {
		d.Notes = append(d.Notes, fmt.Sprintf("suite differs: %q vs %q", base.Suite, cur.Suite))
	}

	d.Rows = append(d.Rows, diffMaps("", base.Run, cur.Run)...)
	for _, scope := range unionKeys(circuitNames(base), circuitNames(cur)) {
		d.Rows = append(d.Rows, diffMaps(scope, base.Circuits[scope], cur.Circuits[scope])...)
	}

	for _, scope := range unionKeys(degradeNames(base), degradeNames(cur)) {
		b := strings.Join(base.Degraded[scope], ",")
		c := strings.Join(cur.Degraded[scope], ",")
		if b != c {
			d.Notes = append(d.Notes, fmt.Sprintf("%s: degrade reasons changed: [%s] → [%s]", scope, b, c))
		}
	}
	return d
}

func diffMaps(scope string, base, cur map[string]float64) []DiffRow {
	var rows []DiffRow
	for _, metric := range unionKeys(mapKeys(base), mapKeys(cur)) {
		bv, hasB := base[metric]
		cv, hasC := cur[metric]
		rows = append(rows, DiffRow{
			Scope: scope, Metric: metric,
			Base: bv, Cur: cv, HasBase: hasB, HasCur: hasC,
		})
	}
	return rows
}

func mapKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func circuitNames(rs *RunStats) []string {
	out := make([]string, 0, len(rs.Circuits))
	for k := range rs.Circuits {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func degradeNames(rs *RunStats) []string {
	out := make([]string, 0, len(rs.Degraded))
	for k := range rs.Degraded {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func unionKeys(a, b []string) []string {
	set := map[string]bool{}
	for _, k := range a {
		set[k] = true
	}
	for _, k := range b {
		set[k] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FormatDiff renders the diff as the epoc-stats table: scope, metric,
// both values, delta and percent, one ← / → marker per side-only
// metric, notes appended underneath.
func FormatDiff(d *RunDiff) string {
	t := NewTable(fmt.Sprintf("run diff: %s (%s) vs %s (%s)",
		d.Base.Label, d.Base.Source, d.Cur.Label, d.Cur.Source),
		"scope", "metric", d.Base.Label, d.Cur.Label, "delta", "pct")
	for _, r := range d.Rows {
		scope := r.Scope
		if scope == "" {
			scope = "(run)"
		}
		switch {
		case !r.HasBase:
			t.AddRow(scope, r.Metric, "—", fmtF(r.Cur), "→ new", "")
		case !r.HasCur:
			t.AddRow(scope, r.Metric, fmtF(r.Base), "—", "← gone", "")
		default:
			pct := ""
			//epoc:lint-ignore floatcmp a baseline of exactly 0 has no percent change to render
			if r.Base != 0 {
				pct = fmt.Sprintf("%+.2f%%", r.Pct())
			}
			t.AddRow(scope, r.Metric, fmtF(r.Base), fmtF(r.Cur),
				fmtF(r.Delta()), pct)
		}
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	for _, n := range d.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// FailRule is one -fail-on clause: the metric may move against the
// baseline in its worse direction by at most |base|·Rel + Abs.
type FailRule struct {
	Metric string
	Rel    float64 // from a "%" suffixed limit
	Abs    float64
}

// ParseFailOn parses the -fail-on grammar:
//
//	metric=limit[,metric=limit...]
//
// where limit is an absolute delta ("latency_ns=100") or a percentage
// ("latency_ns=2%"). "metric=0" means any worsening fails.
func ParseFailOn(spec string) ([]FailRule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("report: empty -fail-on spec")
	}
	var rules []FailRule
	for _, clause := range strings.Split(spec, ",") {
		name, limit, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("report: -fail-on clause %q: want metric=limit", clause)
		}
		r := FailRule{Metric: name}
		if pct, isPct := strings.CutSuffix(limit, "%"); isPct {
			v, err := strconv.ParseFloat(pct, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("report: -fail-on %s: bad percentage %q", name, limit)
			}
			r.Rel = v / 100
		} else {
			v, err := strconv.ParseFloat(limit, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("report: -fail-on %s: bad limit %q", name, limit)
			}
			r.Abs = v
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// higherIsBetter says which direction is a regression for a metric:
// the bench gate's threshold table is authoritative for its metrics,
// and rates/fidelity-like names default to higher-is-better.
func higherIsBetter(metric string) bool {
	if th, ok := DefaultThresholds()[metric]; ok {
		return th.HigherIsBetter
	}
	return strings.HasSuffix(metric, "hit_rate") || strings.HasSuffix(metric, "fidelity")
}

// GateDiff applies -fail-on rules to a diff and returns one violation
// line per breach: a gated metric that worsened past its allowance,
// or that disappeared from the current side entirely (coverage loss).
func GateDiff(d *RunDiff, rules []FailRule) []string {
	var out []string
	for _, rule := range rules {
		for _, r := range d.Rows {
			if r.Metric != rule.Metric || !r.HasBase {
				continue
			}
			scope := r.Scope
			if scope == "" {
				scope = "(run)"
			}
			if !r.HasCur {
				out = append(out, fmt.Sprintf("%s: %s present in baseline but missing from current",
					scope, r.Metric))
				continue
			}
			slack := abs(r.Base)*rule.Rel + rule.Abs
			worse := r.Cur - r.Base // lower-is-better: positive is worse
			if higherIsBetter(r.Metric) {
				worse = r.Base - r.Cur
			}
			// Strict inequality: "=0" tolerates float-identical values
			// but fails on any real movement in the worse direction.
			if worse > slack {
				out = append(out, fmt.Sprintf("%s: %s worsened: %g → %g (allowed slack %g)",
					scope, r.Metric, r.Base, r.Cur, slack))
			}
		}
	}
	sort.Strings(out)
	return out
}
