package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"epoc/internal/obs"
	"epoc/internal/trace"
)

// ManifestVersion is the current run-manifest schema version; bump it
// when a field changes meaning so baseline comparisons can refuse
// incompatible files instead of misreading them.
const ManifestVersion = 1

// Manifest is the machine-readable record of one compilation run: the
// `epoc -report out.json` artifact, and the per-circuit payload inside
// `epoc-bench -json` BENCH files. It bundles the result metrics the
// regression gate compares, the full obs snapshot and trace summary
// for after-the-fact analysis, and a fingerprint of the configuration
// so baselines from different configs are never compared silently.
type Manifest struct {
	Version  int    `json:"version"`
	Circuit  string `json:"circuit"`
	Strategy string `json:"strategy"`

	// Config is the flattened knob set that shaped this run (workers,
	// mode, budgets, …); ConfigFingerprint is its canonical sha256,
	// also covering Strategy. Comparing two manifests with different
	// fingerprints is a config change, not a regression.
	Config            map[string]string `json:"config,omitempty"`
	ConfigFingerprint string            `json:"config_fingerprint"`

	// Metrics holds the run's scalar outcomes keyed by metric name
	// (latency_ns, fidelity, compile_time_ns, pulses, …). Keeping them
	// in one flat map is what lets the baseline gate apply per-metric
	// thresholds generically.
	Metrics map[string]float64 `json:"metrics"`

	Degraded       bool     `json:"degraded,omitempty"`
	DegradeReasons []string `json:"degrade_reasons,omitempty"`

	Obs   *obs.Snapshot  `json:"obs,omitempty"`
	Trace *trace.Summary `json:"trace,omitempty"`
}

// Fingerprint computes the canonical configuration hash: sha256 over
// the strategy and the sorted key=value config pairs. Call it after
// populating Strategy and Config; it also stores the result in
// ConfigFingerprint.
func (m *Manifest) Fingerprint() string {
	keys := make([]string, 0, len(m.Config))
	for k := range m.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "strategy=%s\n", m.Strategy)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, m.Config[k])
	}
	m.ConfigFingerprint = hex.EncodeToString(h.Sum(nil))
	return m.ConfigFingerprint
}

// EncodeManifest renders a manifest as indented JSON with a trailing
// newline; map keys are emitted sorted, so the bytes are deterministic.
func EncodeManifest(m *Manifest) ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses a manifest, rejecting versions this build does
// not understand.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("report: invalid manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("report: manifest version %d, this build reads %d", m.Version, ManifestVersion)
	}
	return &m, nil
}
