package report

import (
	"strings"
	"testing"

	"epoc/internal/obs"
)

func TestRenderSnapshot(t *testing.T) {
	r := obs.New()
	r.Span("stage/synth").End()
	r.Add("library/hits", 9)
	r.Observe("qoc/grape/iterations", 120)
	r.Sample("qoc/grape/fidelity", 0.5)
	r.Sample("qoc/grape/fidelity", 0.9)
	r.Event("qoc/grape", "slots=48 stop=target")

	out := RenderSnapshot(r.Snapshot())
	for _, want := range []string{
		"timers (hottest first)", "stage/synth",
		"counters", "library/hits", "9",
		"distributions", "qoc/grape/iterations",
		"series", "qoc/grape/fidelity",
		"events", "slots=48 stop=target",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered snapshot missing %q:\n%s", want, out)
		}
	}
}

// TestRenderSnapshotEventOrderStable pins the -stats byte-stability
// fix: two recorders fed the same events in different orders (as
// concurrent QOC workers would) must render identical bytes.
func TestRenderSnapshotEventOrderStable(t *testing.T) {
	events := []string{"slots=48 stop=target", "slots=24 stop=target", "slots=36 stop=max_iter"}
	render := func(order []int) string {
		r := obs.New()
		r.Add("compiles", 1)
		for _, i := range order {
			r.Event("qoc/grape", events[i])
		}
		return RenderSnapshot(r.Snapshot())
	}
	a := render([]int{0, 1, 2})
	b := render([]int{2, 0, 1})
	if a != b {
		t.Fatalf("rendered output depends on event insertion order:\n%s\nvs\n%s", a, b)
	}
}

func TestRenderSnapshotNil(t *testing.T) {
	if got := RenderSnapshot(nil); got != "" {
		t.Fatalf("nil snapshot rendered %q", got)
	}
}

func TestSpark(t *testing.T) {
	if Spark(nil, 10) != "" {
		t.Fatal("empty spark")
	}
	s := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if s != "▁▂▃▄▅▆▇█" {
		t.Fatalf("spark ramp: %q", s)
	}
	// Longer than width: downsampled to exactly width runes.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	if got := len([]rune(Spark(xs, 16))); got != 16 {
		t.Fatalf("downsampled width %d", got)
	}
	// Constant series renders at the floor level.
	if got := Spark([]float64{3, 3, 3}, 8); got != "▁▁▁" {
		t.Fatalf("constant spark: %q", got)
	}
}
