// Package report renders experiment results as aligned text tables and
// simple ASCII series, shared by cmd/epoc-bench and the benchmark
// harness.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// PercentChange returns 100·(from-to)/from — the reduction of `to`
// relative to `from` (positive = improvement when smaller is better).
func PercentChange(from, to float64) float64 {
	//epoc:lint-ignore floatcmp guards division; a baseline of exactly 0 means no reference value
	if from == 0 {
		return 0
	}
	return 100 * (from - to) / from
}

// GeoMean returns the geometric mean of positive values (0 if empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p := 1.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		p *= x
	}
	return math.Pow(p, 1/float64(len(xs)))
}

// Mean returns the arithmetic mean (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
