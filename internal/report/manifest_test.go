package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"epoc/internal/faultclock"
	"epoc/internal/obs"
	"epoc/internal/trace"
)

func sampleManifest() *Manifest {
	// Populate every snapshot section: empty sections are omitted from
	// the JSON (and decode as nil), so a round-trippable snapshot is
	// one with data everywhere — which a real compile always has.
	r := obs.New()
	r.Add("compiles", 1)
	r.Observe("synth/distance", 1e-9)
	r.Sample("qoc/grape/fidelity", 0.5)
	r.Eventf("qoc/grape", "slots=%d", 8)
	sp := r.Span("stage/synth")
	sp.End()
	snap := r.Snapshot()
	// Normalize event timestamps for deep-equality through JSON:
	// marshalling drops the monotonic reading and re-parsing yields the
	// UTC location, so store them that way from the start.
	for i := range snap.Events {
		snap.Events[i].Time = snap.Events[i].Time.UTC().Round(0)
	}

	clock := faultclock.NewFake()
	tr := trace.New(clock)
	root := tr.Start("compile")
	clock.Advance(3 * time.Millisecond)
	root.End()

	m := &Manifest{
		Version:  ManifestVersion,
		Circuit:  "bv_5",
		Strategy: "epoc",
		Config: map[string]string{
			"workers": "4",
			"mode":    "estimate",
		},
		Metrics: map[string]float64{
			"latency_ns":      1234.5,
			"fidelity":        0.9991,
			"pulses":          17,
			"compile_time_ns": 4.2e8,
		},
		Degraded:       true,
		DegradeReasons: []string{"qoc"},
		Obs:            snap,
		Trace:          tr.Summary(),
	}
	m.Fingerprint()
	return m
}

// TestManifestRoundTrip is the satellite round-trip test: encode →
// decode → deep-equal, and a second encode must reproduce the bytes.
func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("manifest did not round-trip:\nbefore: %+v\nafter:  %+v", m, back)
	}
	raw2, err := EncodeManifest(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("re-encoding changed bytes:\n%s\nvs\n%s", raw, raw2)
	}
}

func TestManifestVersionGate(t *testing.T) {
	m := sampleManifest()
	m.Version = ManifestVersion + 1
	raw, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(raw); err == nil {
		t.Fatal("decoded a manifest from the future without error")
	}
	if _, err := DecodeManifest([]byte("{not json")); err == nil {
		t.Fatal("decoded malformed JSON without error")
	}
}

// TestManifestFingerprint pins that the fingerprint covers strategy
// and config and ignores map insertion order.
func TestManifestFingerprint(t *testing.T) {
	a := &Manifest{Strategy: "epoc", Config: map[string]string{"x": "1", "y": "2"}}
	b := &Manifest{Strategy: "epoc", Config: map[string]string{"y": "2", "x": "1"}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on map order")
	}
	c := &Manifest{Strategy: "accqoc", Config: map[string]string{"x": "1", "y": "2"}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint ignores strategy")
	}
	d := &Manifest{Strategy: "epoc", Config: map[string]string{"x": "1", "y": "3"}}
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint ignores config values")
	}
}

func artifactPair() (*BenchArtifact, *BenchArtifact) {
	mk := func() *BenchArtifact {
		return &BenchArtifact{
			Version:           ManifestVersion,
			Suite:             "small",
			Strategy:          "epoc",
			ConfigFingerprint: "abc",
			Circuits: []CircuitResult{
				{Name: "bv_5", Metrics: map[string]float64{
					"latency_ns": 1000, "fidelity": 0.999, "pulses": 12, "compile_time_ns": 5e8,
				}},
				{Name: "qft_4", Metrics: map[string]float64{
					"latency_ns": 2000, "fidelity": 0.998, "pulses": 20, "compile_time_ns": 9e8,
				}},
			},
		}
	}
	return mk(), mk()
}

func TestCompareBaselineClean(t *testing.T) {
	base, cur := artifactPair()
	// Improvements and informational movement never gate.
	cur.Circuits[0].Metrics["latency_ns"] = 900
	cur.Circuits[0].Metrics["fidelity"] = 0.9995
	cur.Circuits[1].Metrics["compile_time_ns"] = 9e9
	regs, err := CompareBaseline(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareBaselineRegressions(t *testing.T) {
	base, cur := artifactPair()
	cur.Circuits[0].Metrics["latency_ns"] = 1001 // worse latency
	cur.Circuits[1].Metrics["fidelity"] = 0.99   // worse fidelity
	cur.Circuits[1].Metrics["pulses"] = 21       // count crept up
	regs, err := CompareBaseline(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("want 3 regressions, got %v", regs)
	}
	// Sorted by (circuit, metric).
	wantMetrics := []string{"latency_ns", "fidelity", "pulses"}
	wantCircuits := []string{"bv_5", "qft_4", "qft_4"}
	for i, r := range regs {
		if r.Circuit != wantCircuits[i] || r.Metric != wantMetrics[i] {
			t.Fatalf("regression %d = %v, want %s/%s", i, r, wantCircuits[i], wantMetrics[i])
		}
		if !strings.Contains(r.String(), "regressed") {
			t.Fatalf("unhelpful regression message %q", r.String())
		}
	}
}

func TestCompareBaselineIncomparable(t *testing.T) {
	base, cur := artifactPair()
	cur.ConfigFingerprint = "different"
	if _, err := CompareBaseline(base, cur, nil); err == nil {
		t.Fatal("compared artifacts with different config fingerprints")
	}
	base, cur = artifactPair()
	cur.Suite = "large"
	if _, err := CompareBaseline(base, cur, nil); err == nil {
		t.Fatal("compared artifacts from different suites")
	}
	base, cur = artifactPair()
	cur.Circuits = cur.Circuits[:1]
	if _, err := CompareBaseline(base, cur, nil); err == nil {
		t.Fatal("dropped circuit did not fail the gate")
	}
}

// TestArtifactEncodeSorted pins that artifact bytes are independent of
// the order the circuits finished in.
func TestArtifactEncodeSorted(t *testing.T) {
	a, b := artifactPair()
	b.Circuits[0], b.Circuits[1] = b.Circuits[1], b.Circuits[0]
	ab, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := EncodeArtifact(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("artifact bytes depend on run order:\n%s\nvs\n%s", ab, bb)
	}
	back, err := DecodeArtifact(ab)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatalf("artifact did not round-trip: %+v vs %+v", a, back)
	}
}
