package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 22)
	out := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "1.50", "22"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Alignment: all lines after the title share a prefix width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("title rendered for empty title")
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(200, 100); got != 50 {
		t.Fatalf("PercentChange = %v", got)
	}
	if got := PercentChange(0, 100); got != 0 {
		t.Fatalf("zero baseline: %v", got)
	}
	if got := PercentChange(100, 150); got != -50 {
		t.Fatalf("regression: %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("negative input should yield 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean")
	}
}
