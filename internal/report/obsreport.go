package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"epoc/internal/obs"
)

// RenderSnapshot renders an observability snapshot as aligned text
// tables: timers (hottest first), counters, value distributions, and
// bounded series with a sparkline. A nil snapshot renders to "".
func RenderSnapshot(s *obs.Snapshot) string {
	if s == nil {
		return ""
	}
	var b strings.Builder

	if len(s.Timers) > 0 {
		tb := NewTable("timers (hottest first)", "name", "count", "total", "mean", "min", "max")
		for _, name := range s.TimerNames() {
			t := s.Timers[name]
			tb.AddRow(name, t.Count,
				roundDur(t.Total), roundDur(t.Mean()), roundDur(t.Min), roundDur(t.Max))
		}
		b.WriteString(tb.String())
	}

	if len(s.Counters) > 0 {
		tb := NewTable("counters", "name", "value")
		for _, name := range s.CounterNames() {
			tb.AddRow(name, s.Counters[name])
		}
		b.WriteString(tb.String())
	}

	if len(s.Dists) > 0 {
		tb := NewTable("distributions", "name", "count", "sum", "mean", "min", "max")
		for _, name := range s.DistNames() {
			d := s.Dists[name]
			tb.AddRow(name, d.Count,
				fmt.Sprintf("%.4g", d.Sum), fmt.Sprintf("%.4g", d.Mean()),
				fmt.Sprintf("%.4g", d.Min), fmt.Sprintf("%.4g", d.Max))
		}
		b.WriteString(tb.String())
	}

	if len(s.Series) > 0 {
		tb := NewTable("series (bounded traces)", "name", "samples", "first", "last", "spark")
		for _, name := range s.SeriesNames() {
			xs := s.Series[name]
			if len(xs) == 0 {
				continue
			}
			tb.AddRow(name, len(xs),
				fmt.Sprintf("%.4g", xs[0]), fmt.Sprintf("%.4g", xs[len(xs)-1]),
				Spark(xs, 32))
		}
		b.WriteString(tb.String())
		if s.SamplesDropped > 0 {
			fmt.Fprintf(&b, "(%d samples beyond the per-series bound were dropped)\n", s.SamplesDropped)
		}
	}

	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "== events (%d", len(s.Events))
		if s.EventsDropped > 0 {
			fmt.Fprintf(&b, ", %d dropped", s.EventsDropped)
		}
		b.WriteString(") ==\n")
		// Events from concurrent workers land in the recorder in
		// scheduling order; render them sorted by (stage, message) so a
		// deterministic workload prints byte-stable -stats output at any
		// worker count.
		events := append([]obs.Event(nil), s.Events...)
		sort.SliceStable(events, func(i, j int) bool {
			if events[i].Stage != events[j].Stage {
				return events[i].Stage < events[j].Stage
			}
			return events[i].Msg < events[j].Msg
		})
		for _, e := range events {
			fmt.Fprintf(&b, "  %-14s %s\n", e.Stage, e.Msg)
		}
	}
	return b.String()
}

// roundDur trims a duration to a readable precision for tables.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// sparkLevels are the eight block glyphs a sparkline is quantized to.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a fixed-width sparkline; longer inputs are
// bucket-averaged down to width. Empty input renders to "".
func Spark(xs []float64, width int) string {
	if len(xs) == 0 || width <= 0 {
		return ""
	}
	// Downsample by bucket means.
	pts := xs
	if len(xs) > width {
		pts = make([]float64, width)
		for i := 0; i < width; i++ {
			lo := i * len(xs) / width
			hi := (i + 1) * len(xs) / width
			if hi <= lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range xs[lo:hi] {
				sum += v
			}
			pts[i] = sum / float64(hi-lo)
		}
	}
	min, max := pts[0], pts[0]
	for _, v := range pts {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range pts {
		level := 0
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}
