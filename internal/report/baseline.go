package report

import (
	"encoding/json"
	"fmt"
	"sort"
)

// BenchArtifact is one BENCH_<suite>.json file: the machine-readable
// output of `epoc-bench -json` and the input of `epoc-bench -baseline`.
// It carries a manifest per circuit, keyed and sorted by circuit name,
// so two artifacts from the same suite and config compare positionally
// without heuristics.
type BenchArtifact struct {
	Version           int               `json:"version"`
	Suite             string            `json:"suite"`
	Strategy          string            `json:"strategy"`
	Config            map[string]string `json:"config,omitempty"`
	ConfigFingerprint string            `json:"config_fingerprint"`
	Circuits          []CircuitResult   `json:"circuits"`
}

// CircuitResult is one circuit's metrics inside a bench artifact.
type CircuitResult struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// Sort orders the circuits by name; Encode calls it so artifact bytes
// are independent of run order.
func (a *BenchArtifact) Sort() {
	sort.Slice(a.Circuits, func(i, j int) bool { return a.Circuits[i].Name < a.Circuits[j].Name })
}

// EncodeArtifact renders a bench artifact as indented JSON with a
// trailing newline, circuits sorted by name.
func EncodeArtifact(a *BenchArtifact) ([]byte, error) {
	a.Sort()
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeArtifact parses a bench artifact, rejecting unknown versions.
func DecodeArtifact(data []byte) (*BenchArtifact, error) {
	var a BenchArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("report: invalid bench artifact: %w", err)
	}
	if a.Version != ManifestVersion {
		return nil, fmt.Errorf("report: bench artifact version %d, this build reads %d", a.Version, ManifestVersion)
	}
	return &a, nil
}

// Threshold says how much a metric may move against a baseline before
// the comparison counts it as a regression. The limit is
//
//	baseline ± (|baseline|·RelTol + AbsTol)
//
// in the metric's worse direction (above for lower-is-better metrics,
// below for HigherIsBetter ones). Informational metrics are reported
// but never gate — machine-dependent measurements like wall-clock
// compile time belong there.
type Threshold struct {
	RelTol         float64 `json:"rel_tol"`
	AbsTol         float64 `json:"abs_tol"`
	HigherIsBetter bool    `json:"higher_is_better"`
	Informational  bool    `json:"informational"`
}

// DefaultThresholds is the regression gate's metric policy. The
// pipeline is deterministic at any worker count, so result metrics
// (latency, fidelity, counts) gate with only float-noise slack — any
// larger movement is a real behaviour change and must come with a
// deliberate baseline update. Wall-clock compile time is
// machine-dependent and therefore informational only.
func DefaultThresholds() map[string]Threshold {
	return map[string]Threshold{
		"latency_ns":      {RelTol: 1e-9, AbsTol: 1e-9},
		"fidelity":        {AbsTol: 1e-9, HigherIsBetter: true},
		"pulses":          {},
		"blocks":          {},
		"vugs":            {},
		"cnots":           {},
		"synth_fallbacks": {},
		"qoc_runs":        {},
		"warm_starts":     {},
		"degraded":        {},
		"compile_time_ns": {Informational: true},
		// qoc_time_ns is wall clock, but unlike whole-compile time it is
		// the store-warm gate's success metric: a warm run serves every
		// pulse from the store, so stage 5 collapses to library lookups.
		// The absolute slack absorbs machine noise; a warm run that
		// re-enters GRAPE blows past it by an order of magnitude.
		"qoc_time_ns": {AbsTol: 2.5e8},
	}
}

// Regression is one metric that moved past its threshold.
type Regression struct {
	Circuit  string  `json:"circuit"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Limit    float64 `json:"limit"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed: baseline %g, current %g (limit %g)",
		r.Circuit, r.Metric, r.Baseline, r.Current, r.Limit)
}

// CompareBaseline checks current against baseline under the given
// thresholds (nil means DefaultThresholds) and returns every
// regression, sorted by (circuit, metric). It returns an error — not a
// regression list — when the two artifacts are not comparable: a
// different suite, a different config fingerprint, or a circuit
// present in the baseline but missing from the current run (coverage
// loss must fail the gate, not slip through). Metrics without a
// threshold entry, and metrics new since the baseline, are
// informational.
func CompareBaseline(baseline, current *BenchArtifact, thresholds map[string]Threshold) ([]Regression, error) {
	if baseline.Suite != current.Suite {
		return nil, fmt.Errorf("report: baseline suite %q, current %q", baseline.Suite, current.Suite)
	}
	if baseline.ConfigFingerprint != current.ConfigFingerprint {
		return nil, fmt.Errorf("report: config fingerprint changed (baseline %.12s…, current %.12s…): refresh the baseline deliberately",
			baseline.ConfigFingerprint, current.ConfigFingerprint)
	}
	if thresholds == nil {
		thresholds = DefaultThresholds()
	}
	cur := map[string]map[string]float64{}
	for _, c := range current.Circuits {
		cur[c.Name] = c.Metrics
	}
	var regs []Regression
	for _, base := range baseline.Circuits {
		metrics, ok := cur[base.Name]
		if !ok {
			return nil, fmt.Errorf("report: circuit %q in baseline but missing from current run", base.Name)
		}
		for metric, bv := range base.Metrics {
			th, gated := thresholds[metric]
			if !gated || th.Informational {
				continue
			}
			cv, ok := metrics[metric]
			if !ok {
				regs = append(regs, Regression{Circuit: base.Name, Metric: metric, Baseline: bv, Current: cv, Limit: bv})
				continue
			}
			slack := abs(bv)*th.RelTol + th.AbsTol
			if th.HigherIsBetter {
				if limit := bv - slack; cv < limit {
					regs = append(regs, Regression{Circuit: base.Name, Metric: metric, Baseline: bv, Current: cv, Limit: limit})
				}
			} else if limit := bv + slack; cv > limit {
				regs = append(regs, Regression{Circuit: base.Name, Metric: metric, Baseline: bv, Current: cv, Limit: limit})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Circuit != regs[j].Circuit {
			return regs[i].Circuit < regs[j].Circuit
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
