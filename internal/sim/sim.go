// Package sim is a state-vector simulator used to verify compiler
// passes: it applies gates directly to amplitudes without materializing
// 2^n × 2^n matrices, so equivalence checks stay cheap for circuits
// that are too large for circuit.Unitary.
//
// Qubit 0 is the least-significant bit of a basis-state index,
// matching the circuit package.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"epoc/internal/circuit"
	"epoc/internal/linalg"
)

// State is a normalized state vector over n qubits.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |00…0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > 30 {
		panic(fmt.Sprintf("sim: unsupported qubit count %d", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<n)}
	s.Amp[0] = 1
	return s
}

// FromAmplitudes wraps an amplitude vector (length must be a power of
// two). The vector is used directly, not copied.
func FromAmplitudes(amp []complex128) *State {
	n := 0
	for d := len(amp); d > 1; d >>= 1 {
		if d&1 == 1 {
			panic("sim: amplitude length is not a power of two")
		}
		n++
	}
	if len(amp) == 0 {
		panic("sim: empty amplitude vector")
	}
	return &State{N: n, Amp: amp}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	out := &State{N: s.N, Amp: make([]complex128, len(s.Amp))}
	copy(out.Amp, s.Amp)
	return out
}

// ApplyMatrix applies a 2^k × 2^k unitary to the listed target qubits.
// targets[0] is the least-significant bit of the small matrix index.
func (s *State) ApplyMatrix(u *linalg.Matrix, targets []int) {
	k := len(targets)
	dim := 1 << k
	if u.Rows != dim || u.Cols != dim {
		panic(fmt.Sprintf("sim: matrix is %dx%d for %d targets", u.Rows, u.Cols, k))
	}
	seen := map[int]bool{}
	for _, t := range targets {
		if t < 0 || t >= s.N || seen[t] {
			panic(fmt.Sprintf("sim: bad targets %v for %d qubits", targets, s.N))
		}
		seen[t] = true
	}
	// Enumerate every assignment of the non-target bits, then transform
	// the 2^k amplitudes addressed by the target bits.
	restBits := s.N - k
	sub := make([]complex128, dim)
	out := make([]complex128, dim)
	targetMask := 0
	for _, t := range targets {
		targetMask |= 1 << t
	}
	for rest := 0; rest < 1<<restBits; rest++ {
		// Spread rest over the non-target bit positions.
		base := 0
		bit := 0
		for pos := 0; pos < s.N; pos++ {
			if targetMask&(1<<pos) != 0 {
				continue
			}
			if rest&(1<<bit) != 0 {
				base |= 1 << pos
			}
			bit++
		}
		for i := 0; i < dim; i++ {
			idx := base
			for b, t := range targets {
				if i&(1<<b) != 0 {
					idx |= 1 << t
				}
			}
			sub[i] = s.Amp[idx]
		}
		for i := 0; i < dim; i++ {
			var acc complex128
			row := u.Data[i*dim : (i+1)*dim]
			for j, a := range row {
				acc += a * sub[j]
			}
			out[i] = acc
		}
		for i := 0; i < dim; i++ {
			idx := base
			for b, t := range targets {
				if i&(1<<b) != 0 {
					idx |= 1 << t
				}
			}
			s.Amp[idx] = out[i]
		}
	}
}

// ApplyOp applies one circuit op.
func (s *State) ApplyOp(op circuit.Op) {
	s.ApplyMatrix(op.G.Matrix(), op.Qubits)
}

// Run applies every op of the circuit in order.
func (s *State) Run(c *circuit.Circuit) {
	if c.NumQubits != s.N {
		panic(fmt.Sprintf("sim: circuit has %d qubits, state has %d", c.NumQubits, s.N))
	}
	for _, op := range c.Ops {
		s.ApplyOp(op)
	}
}

// RunCircuit returns the state produced by applying c to |0…0⟩.
func RunCircuit(c *circuit.Circuit) *State {
	s := NewState(c.NumQubits)
	s.Run(c)
	return s
}

// Overlap returns ⟨s|t⟩.
func (s *State) Overlap(t *State) complex128 {
	if s.N != t.N {
		panic("sim: overlap dimension mismatch")
	}
	var acc complex128
	for i := range s.Amp {
		acc += cmplx.Conj(s.Amp[i]) * t.Amp[i]
	}
	return acc
}

// Fidelity returns |⟨s|t⟩|².
func (s *State) Fidelity(t *State) float64 {
	o := cmplx.Abs(s.Overlap(t))
	return o * o
}

// Norm returns ‖s‖₂ (1 for normalized states).
func (s *State) Norm() float64 {
	var acc float64
	for _, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(acc)
}

// Probability returns the probability of measuring basis state idx.
func (s *State) Probability(idx int) float64 {
	a := s.Amp[idx]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full measurement distribution.
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.Amp))
	for i := range s.Amp {
		out[i] = s.Probability(i)
	}
	return out
}

// EquivalentCircuits reports whether two circuits implement the same
// unitary up to global phase, checked by running both on a basis of
// random product states and comparing fidelities. For n ≤ 6 it is both
// faster and stronger in practice than building full unitaries.
func EquivalentCircuits(a, b *circuit.Circuit, trials int, seedStates []*State) bool {
	if a.NumQubits != b.NumQubits {
		return false
	}
	for i := 0; i < trials && i < len(seedStates); i++ {
		sa := seedStates[i].Clone()
		sb := seedStates[i].Clone()
		sa.Run(a)
		sb.Run(b)
		if sa.Fidelity(sb) < 1-1e-9 {
			return false
		}
	}
	return true
}
