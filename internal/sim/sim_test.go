package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

const tol = 1e-9

func TestNewStateIsZeroKet(t *testing.T) {
	s := NewState(3)
	if s.Amp[0] != 1 {
		t.Fatal("|000> amplitude not 1")
	}
	if math.Abs(s.Norm()-1) > tol {
		t.Fatal("not normalized")
	}
}

func TestApplyXFlipsBit(t *testing.T) {
	s := NewState(2)
	s.ApplyMatrix(gate.New(gate.X).Matrix(), []int{1})
	if s.Amp[2] != 1 { // |q1=1,q0=0> = index 2
		t.Fatalf("X on q1: %v", s.Amp)
	}
}

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	s := RunCircuit(c)
	inv := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-inv) > tol || math.Abs(real(s.Amp[3])-inv) > tol {
		t.Fatalf("Bell: %v", s.Amp)
	}
	if math.Abs(s.Probability(0)-0.5) > tol || math.Abs(s.Probability(3)-0.5) > tol {
		t.Fatal("Bell probabilities wrong")
	}
}

func TestGHZOnManyQubits(t *testing.T) {
	n := 10
	c := circuit.New(n)
	c.Append(gate.New(gate.H), 0)
	for i := 0; i < n-1; i++ {
		c.Append(gate.New(gate.CX), i, i+1)
	}
	s := RunCircuit(c)
	inv := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-inv) > tol || math.Abs(real(s.Amp[(1<<n)-1])-inv) > tol {
		t.Fatal("GHZ amplitudes wrong")
	}
	probs := s.Probabilities()
	var total float64
	for _, p := range probs {
		total += p
	}
	if math.Abs(total-1) > tol {
		t.Fatal("probabilities do not sum to 1")
	}
}

func TestSimMatchesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		c := randomCircuit(4, 25, rng)
		// Full-matrix route.
		u := c.Unitary()
		v0 := make([]complex128, 16)
		v0[0] = 1
		want := u.MulVec(v0)
		// Simulator route.
		s := RunCircuit(c)
		for i := range want {
			d := want[i] - s.Amp[i]
			if math.Hypot(real(d), imag(d)) > 1e-8 {
				t.Fatalf("trial %d amp %d: %v vs %v", trial, i, want[i], s.Amp[i])
			}
		}
	}
}

func TestApplyMatrixMultiQubitOrdering(t *testing.T) {
	// Apply CX with control q2, target q0 on |100> — target should flip.
	s := NewState(3)
	s.ApplyMatrix(gate.New(gate.X).Matrix(), []int{2}) // now |100>
	s.ApplyMatrix(gate.New(gate.CX).Matrix(), []int{2, 0})
	if s.Amp[5] != 1 { // |101>
		t.Fatalf("controlled flip wrong: %v", s.Amp)
	}
}

func TestFromAmplitudes(t *testing.T) {
	s := FromAmplitudes([]complex128{0, 1, 0, 0})
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	for _, bad := range [][]complex128{{}, {1, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			FromAmplitudes(bad)
		}()
	}
}

func TestOverlapAndFidelity(t *testing.T) {
	a := NewState(1)
	b := NewState(1)
	if math.Abs(a.Fidelity(b)-1) > tol {
		t.Fatal("identical states should have fidelity 1")
	}
	b.ApplyMatrix(gate.New(gate.X).Matrix(), []int{0})
	if a.Fidelity(b) > tol {
		t.Fatal("orthogonal states should have fidelity 0")
	}
	b2 := NewState(1)
	b2.ApplyMatrix(gate.New(gate.H).Matrix(), []int{0})
	if math.Abs(a.Fidelity(b2)-0.5) > tol {
		t.Fatalf("H overlap = %v", a.Fidelity(b2))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewState(1)
	b := a.Clone()
	b.ApplyMatrix(gate.New(gate.X).Matrix(), []int{0})
	if a.Amp[1] != 0 {
		t.Fatal("Clone shares amplitudes")
	}
}

func TestValidationPanics(t *testing.T) {
	s := NewState(2)
	x := gate.New(gate.X).Matrix()
	for _, fn := range []func(){
		func() { s.ApplyMatrix(x, []int{5}) },
		func() { s.ApplyMatrix(x, []int{0, 1}) },
		func() { s.Run(circuit.New(3)) },
		func() { NewState(-1) },
		func() { s.Overlap(NewState(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEquivalentCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := circuit.New(2)
	a.Append(gate.New(gate.H), 0)
	a.Append(gate.New(gate.H), 0)
	b := circuit.New(2) // identity
	seeds := randomStates(2, 4, rng)
	if !EquivalentCircuits(a, b, 4, seeds) {
		t.Fatal("HH should equal identity")
	}
	cx := circuit.New(2)
	cx.Append(gate.New(gate.CX), 0, 1)
	if EquivalentCircuits(a, cx, 4, seeds) {
		t.Fatal("identity and CX compared equal")
	}
	if EquivalentCircuits(a, circuit.New(3), 1, seeds) {
		t.Fatal("different qubit counts compared equal")
	}
}

func TestQuickNormPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(5, 30, rng)
		s := RunCircuit(c)
		return math.Abs(s.Norm()-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseRestoresState(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(4, 20, rng)
		s := NewState(4)
		s.Run(c)
		s.Run(c.Inverse())
		return math.Abs(s.Probability(0)-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Append(gate.New(gate.H), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
		case 2:
			c.Append(gate.New(gate.RY, rng.Float64()*2*math.Pi), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}

func randomStates(n, count int, rng *rand.Rand) []*State {
	out := make([]*State, count)
	for i := range out {
		s := NewState(n)
		for q := 0; q < n; q++ {
			u := linalg.RandomUnitary(2, rng)
			s.ApplyMatrix(u, []int{q})
		}
		out[i] = s
	}
	return out
}
