package hardware

import (
	"testing"

	"epoc/internal/gate"
)

func TestLinearChainTopology(t *testing.T) {
	d := LinearChain(5)
	if d.NumQubits != 5 || len(d.Edges) != 4 {
		t.Fatalf("topology: %d qubits, %d edges", d.NumQubits, len(d.Edges))
	}
	for i, e := range d.Edges {
		if e[0] != i || e[1] != i+1 {
			t.Fatalf("edge %d = %v", i, e)
		}
	}
}

func TestLinearChainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LinearChain(0)
}

func TestGateLatencies(t *testing.T) {
	d := LinearChain(2)
	if d.GateLatency(gate.RZ) != 0 {
		t.Fatal("RZ should be virtual")
	}
	if d.GateLatency(gate.X) <= 0 {
		t.Fatal("X should take time")
	}
	if d.GateLatency(gate.CX) <= d.GateLatency(gate.X) {
		t.Fatal("CX should dominate X")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for block gates")
		}
	}()
	d.GateLatency(gate.Unitary)
}

func TestGateFidelityTiers(t *testing.T) {
	d := LinearChain(2)
	if !(d.GateFidelity(1) > d.GateFidelity(2) && d.GateFidelity(2) > d.GateFidelity(3)) {
		t.Fatal("fidelity tiers not ordered")
	}
}

func TestBlockModel(t *testing.T) {
	d := LinearChain(4)
	m := d.BlockModel(2)
	if m.N != 2 || m.Dt != d.Dt {
		t.Fatalf("block model: n=%d dt=%v", m.N, m.Dt)
	}
	// 2 qubits: 4 drives + 1 coupler.
	if len(m.Controls) != 5 {
		t.Fatalf("control count %d", len(m.Controls))
	}
}

func TestMaxSlotsMonotone(t *testing.T) {
	d := LinearChain(4)
	if !(d.MaxSlots(1) < d.MaxSlots(2) && d.MaxSlots(2) < d.MaxSlots(3)) {
		t.Fatal("MaxSlots should grow with block size")
	}
}
