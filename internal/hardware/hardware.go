// Package hardware models the target superconducting device: qubit
// topology, calibrated basis-gate durations and fidelities (feeding the
// gate-based baseline), and the control-model parameters handed to the
// QOC engine for pulse-level compilation.
package hardware

import (
	"fmt"

	"epoc/internal/gate"
	"epoc/internal/qoc"
)

// Device describes a superconducting quantum processor.
type Device struct {
	Name      string
	NumQubits int
	Edges     [][2]int // coupler topology

	// Calibrated basis-gate pulse durations in ns for the gate-based
	// baseline. RZ is virtual (0 ns) as on IBM backends.
	GateDuration map[gate.Kind]float64
	// Calibrated per-gate fidelities for the gate-based baseline.
	Fidelity1Q float64
	Fidelity2Q float64
	Fidelity3Q float64

	// Control-model parameters for QOC on extracted blocks.
	Dt         float64 // time-slot width, ns
	DriveMax   float64 // rad/ns
	CouplerMax float64 // rad/ns

	// Coherence times for the optional decoherence-aware fidelity
	// model (ns).
	T1 float64
	T2 float64
}

// LinearChain returns an IBM-flavoured n-qubit device with a linear
// coupler chain: 35.5 ns single-qubit pulses, virtual RZ, ~300 ns
// CNOT/CZ, tunable couplers for QOC.
func LinearChain(n int) *Device {
	if n < 1 {
		panic("hardware: need at least one qubit")
	}
	d := &Device{
		Name:      fmt.Sprintf("linear-%d", n),
		NumQubits: n,
		GateDuration: map[gate.Kind]float64{
			gate.I: 0, gate.RZ: 0, gate.P: 0, gate.U1: 0, gate.Z: 0,
			gate.S: 0, gate.Sdg: 0, gate.T: 0, gate.Tdg: 0,
			gate.X: 35.5, gate.Y: 35.5, gate.SX: 35.5, gate.SXdg: 35.5,
			gate.H: 35.5, gate.RX: 35.5, gate.RY: 35.5, gate.U2: 35.5, gate.U3: 71,
			gate.CX: 300, gate.CY: 335.5, gate.CZ: 300, gate.CH: 371,
			gate.CRX: 371, gate.CRY: 371, gate.CRZ: 335.5, gate.CP: 335.5,
			gate.RXX: 371, gate.RZZ: 335.5,
			gate.SWAP: 900, gate.CCX: 1100, gate.CSWP: 1400,
		},
		Fidelity1Q: 0.99962,
		Fidelity2Q: 0.99100,
		Fidelity3Q: 0.97500,
		Dt:         2,
		DriveMax:   0.188,
		CouplerMax: 0.0314,
		T1:         120e3, // 120 µs
		T2:         100e3, // 100 µs
	}
	for q := 0; q < n-1; q++ {
		d.Edges = append(d.Edges, [2]int{q, q + 1})
	}
	return d
}

// GateLatency returns the calibrated duration of a gate in ns. Unknown
// kinds (including block unitaries) panic: blocks must go through QOC.
func (d *Device) GateLatency(k gate.Kind) float64 {
	dur, ok := d.GateDuration[k]
	if !ok {
		panic(fmt.Sprintf("hardware: no calibrated duration for gate %q", k))
	}
	return dur
}

// GateFidelity returns the calibrated fidelity for a gate of the given
// arity.
func (d *Device) GateFidelity(qubits int) float64 {
	switch {
	case qubits <= 1:
		return d.Fidelity1Q
	case qubits == 2:
		return d.Fidelity2Q
	default:
		return d.Fidelity3Q
	}
}

// BlockModel builds the QOC control model for a block of k qubits
// using the device's drive parameters. Blocks are assumed to sit on a
// connected sub-chain of couplers (the partitioner groups interacting
// qubits), so the model uses a length-k chain.
func (d *Device) BlockModel(k int) *qoc.Model {
	return qoc.StandardModel(k, qoc.ModelOptions{
		Dt:         d.Dt,
		DriveMax:   d.DriveMax,
		CouplerMax: d.CouplerMax,
	})
}

// MaxSlots bounds the QOC duration search for a k-qubit block: the
// calibrated gate stack gives a generous upper bound on how long any
// k-qubit unitary should take.
func (d *Device) MaxSlots(k int) int {
	switch {
	case k <= 1:
		return int(80 / d.Dt) // 80 ns
	case k == 2:
		return int(640 / d.Dt) // 640 ns
	default:
		return int(960 / d.Dt) // 960 ns (≈ 3 CX-equivalents of content)
	}
}
