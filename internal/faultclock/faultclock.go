// Package faultclock makes the pipeline's cancellation and budget
// machinery deterministic and testable. It provides three small
// pieces, all nil-safe so production code threads them unconditionally
// at near-zero cost:
//
//   - Clock: an injectable time source. Production uses Real() (a
//     direct time.Now passthrough); tests use a Fake they advance by
//     hand, so time-budget expiry happens at an exact loop iteration
//     instead of after a flaky wall-clock sleep.
//   - Injector: named trip points ("cancel after N QSearch
//     expansions", "expire the budget at GRAPE iteration K"). Every
//     budget-checked loop announces its site; a test arms an action to
//     fire on exactly the nth announcement. A nil Injector is a single
//     nil check per announcement.
//   - Gate: the per-stage check evaluated at loop granularity. It
//     combines a context (cancellation — partial work is discarded), a
//     deadline against the injected clock (budget — best-so-far
//     results are kept and the compile degrades), and the injector.
//
// The split between the two error classes is the contract the whole
// pipeline is built on: Check returns the context's error verbatim
// when canceled, and ErrBudget when only the deadline has passed.
// Callers abort on the former and degrade gracefully on the latter.
package faultclock

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrBudget reports that a time or iteration budget was exhausted.
// Loops that observe it stop and return their best-so-far result; the
// pipeline marks the compilation degraded rather than failed.
var ErrBudget = errors.New("faultclock: budget exhausted")

// Clock is an injectable time source. Implementations must be
// goroutine-safe.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Real returns the production clock: a direct time.Now passthrough.
func Real() Clock { return realClock{} }

// Fake is a manually advanced clock for deterministic tests. The zero
// value starts at the zero time; NewFake picks an arbitrary non-zero
// epoch so zero-valued deadlines stay distinguishable.
type Fake struct {
	mu sync.Mutex
	t  time.Time
}

// NewFake returns a fake clock starting at a fixed non-zero instant.
func NewFake() *Fake {
	return &Fake{t: time.Unix(1_000_000, 0)}
}

// Now returns the fake's current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// Site names one injectable trip point: a loop iteration or stage
// boundary where the pipeline announces progress to the Injector and
// evaluates its Gate.
type Site string

// The pipeline's trip points. Stage sites fire once per compilation at
// the stage boundary; loop sites fire once per iteration.
const (
	SiteStageZX        Site = "stage/zx"
	SiteStageRoute     Site = "stage/route"
	SiteStagePartition Site = "stage/partition"
	SiteStageSynth     Site = "stage/synth"
	SiteStageRegroup   Site = "stage/regroup"
	SiteStageQOC       Site = "stage/qoc"
	SiteStageLower     Site = "stage/lower" // gate-based flow
	SiteQSearchExpand  Site = "qsearch/expand"
	SiteGRAPEIter      Site = "grape/iter"
	SiteCRABRestart    Site = "crab/restart"
	SiteDurationProbe  Site = "duration/probe"
	SiteCacheWait      Site = "cache/wait"
)

// Sites lists every trip point in a stable order (useful for
// table-driven conformance tests).
func Sites() []Site {
	return []Site{
		SiteStageZX, SiteStageRoute, SiteStagePartition, SiteStageSynth,
		SiteStageRegroup, SiteStageQOC, SiteStageLower,
		SiteQSearchExpand, SiteGRAPEIter, SiteCRABRestart,
		SiteDurationProbe, SiteCacheWait,
	}
}

// Injector arms deterministic fault actions on trip points. All
// methods are goroutine-safe and nil-safe; a nil *Injector is the
// production configuration and costs one nil check per announcement.
type Injector struct {
	mu    sync.Mutex
	hits  map[Site]int
	trips map[Site][]*trip
}

type trip struct {
	at int // fire when the site's hit count reaches this value
	fn func()
}

// NewInjector returns an empty injector.
func NewInjector() *Injector {
	return &Injector{hits: map[Site]int{}, trips: map[Site][]*trip{}}
}

// TripAfter arms fn to run synchronously on the nth (1-based) Hit of
// site. Multiple trips may be armed on one site; each fires at most
// once. n < 1 is treated as 1.
func (i *Injector) TripAfter(site Site, n int, fn func()) {
	if n < 1 {
		n = 1
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.trips[site] = append(i.trips[site], &trip{at: n, fn: fn})
}

// Hit announces one pass through site, firing any trip armed for that
// count. The armed action runs synchronously inside Hit, before the
// caller evaluates its gate — so "cancel at the nth expansion" is
// observed by that very expansion's check.
func (i *Injector) Hit(site Site) {
	if i == nil {
		return
	}
	var fire []func()
	i.mu.Lock()
	i.hits[site]++
	n := i.hits[site]
	kept := i.trips[site][:0]
	for _, t := range i.trips[site] {
		if t.at == n {
			fire = append(fire, t.fn)
		} else {
			kept = append(kept, t)
		}
	}
	i.trips[site] = kept
	i.mu.Unlock()
	for _, fn := range fire {
		fn()
	}
}

// Hits reports how many times site has been announced.
func (i *Injector) Hits(site Site) int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[site]
}

// Gate is the cancellation/budget check threaded through every
// expensive loop. The zero value and nil are both inert (Check always
// passes); production compiles carry a Gate with just Ctx set, and the
// deadline field only engages when a budget is configured — the real
// clock is never read otherwise.
type Gate struct {
	Ctx      context.Context
	Clock    Clock     // nil means Real()
	Deadline time.Time // zero means no deadline
	Inj      *Injector // nil means no trip points
}

// Check announces site to the injector, then evaluates cancellation
// and the deadline. It returns the context's error when canceled,
// ErrBudget when the deadline has passed, and nil otherwise. Armed
// trips fire before the evaluation, so an action that cancels the
// context or advances a fake clock is observed by this same call.
func (g *Gate) Check(site Site) error {
	if g == nil {
		return nil
	}
	g.Inj.Hit(site)
	if g.Ctx != nil {
		if err := g.Ctx.Err(); err != nil {
			return err
		}
	}
	if !g.Deadline.IsZero() {
		clock := g.Clock
		if clock == nil {
			clock = Real()
		}
		if clock.Now().After(g.Deadline) {
			return ErrBudget
		}
	}
	return nil
}

// Done exposes the context's cancellation channel for select-based
// waits; nil (block forever) when no context is attached.
func (g *Gate) Done() <-chan struct{} {
	if g == nil || g.Ctx == nil {
		return nil
	}
	return g.Ctx.Done()
}

// Err returns the context's error, if any.
func (g *Gate) Err() error {
	if g == nil || g.Ctx == nil {
		return nil
	}
	return g.Ctx.Err()
}

// IsBudget reports whether err is a budget exhaustion (degrade) rather
// than a cancellation (abort).
func IsBudget(err error) bool { return errors.Is(err, ErrBudget) }
