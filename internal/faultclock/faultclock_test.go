package faultclock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGateAndInjectorAreInert(t *testing.T) {
	var g *Gate
	for _, site := range Sites() {
		if err := g.Check(site); err != nil {
			t.Fatalf("nil gate Check(%s) = %v", site, err)
		}
	}
	if g.Done() != nil {
		t.Fatal("nil gate Done() should be nil")
	}
	if g.Err() != nil {
		t.Fatal("nil gate Err() should be nil")
	}
	var inj *Injector
	inj.Hit(SiteGRAPEIter) // must not panic
	if inj.Hits(SiteGRAPEIter) != 0 {
		t.Fatal("nil injector counted a hit")
	}
}

func TestZeroGatePasses(t *testing.T) {
	g := &Gate{}
	if err := g.Check(SiteQSearchExpand); err != nil {
		t.Fatalf("zero gate Check = %v", err)
	}
}

func TestGateReportsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gate{Ctx: ctx}
	if err := g.Check(SiteStageSynth); err != nil {
		t.Fatalf("uncanceled Check = %v", err)
	}
	cancel()
	if err := g.Check(SiteStageSynth); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Check = %v, want context.Canceled", err)
	}
	if err := g.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", err)
	}
}

func TestGateDeadlineUsesInjectedClock(t *testing.T) {
	fake := NewFake()
	g := &Gate{Clock: fake, Deadline: fake.Now().Add(time.Second)}
	if err := g.Check(SiteGRAPEIter); err != nil {
		t.Fatalf("Check before deadline = %v", err)
	}
	fake.Advance(2 * time.Second)
	err := g.Check(SiteGRAPEIter)
	if !IsBudget(err) {
		t.Fatalf("Check after deadline = %v, want ErrBudget", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("budget expiry must not look like cancellation")
	}
}

func TestCancellationWinsOverBudget(t *testing.T) {
	// When both the context is canceled and the deadline has passed,
	// Check reports the cancellation: the caller must discard partial
	// work, not keep a degraded result.
	fake := NewFake()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := &Gate{Ctx: ctx, Clock: fake, Deadline: fake.Now().Add(-time.Second)}
	if err := g.Check(SiteStageQOC); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check = %v, want context.Canceled", err)
	}
}

func TestTripFiresExactlyAtN(t *testing.T) {
	inj := NewInjector()
	fired := 0
	inj.TripAfter(SiteQSearchExpand, 3, func() { fired++ })
	for i := 1; i <= 5; i++ {
		inj.Hit(SiteQSearchExpand)
		want := 0
		if i >= 3 {
			want = 1
		}
		if fired != want {
			t.Fatalf("after %d hits fired=%d, want %d", i, fired, want)
		}
	}
	if inj.Hits(SiteQSearchExpand) != 5 {
		t.Fatalf("Hits = %d, want 5", inj.Hits(SiteQSearchExpand))
	}
}

func TestTripActionObservedBySameCheck(t *testing.T) {
	// The canonical test pattern: arm a cancel on the nth loop
	// iteration, and the gate check of that very iteration sees it.
	ctx, cancel := context.WithCancel(context.Background())
	inj := NewInjector()
	inj.TripAfter(SiteGRAPEIter, 2, cancel)
	g := &Gate{Ctx: ctx, Inj: inj}
	if err := g.Check(SiteGRAPEIter); err != nil {
		t.Fatalf("iteration 1 should pass, got %v", err)
	}
	if err := g.Check(SiteGRAPEIter); !errors.Is(err, context.Canceled) {
		t.Fatalf("iteration 2 = %v, want context.Canceled", err)
	}
}

func TestFakeClockTripExpiresBudgetAtIterationK(t *testing.T) {
	fake := NewFake()
	inj := NewInjector()
	inj.TripAfter(SiteGRAPEIter, 4, func() { fake.Advance(time.Hour) })
	g := &Gate{Clock: fake, Deadline: fake.Now().Add(time.Minute), Inj: inj}
	for i := 1; i <= 3; i++ {
		if err := g.Check(SiteGRAPEIter); err != nil {
			t.Fatalf("iteration %d = %v", i, err)
		}
	}
	if err := g.Check(SiteGRAPEIter); !IsBudget(err) {
		t.Fatalf("iteration 4 = %v, want ErrBudget", err)
	}
}

func TestInjectorConcurrentHits(t *testing.T) {
	inj := NewInjector()
	var once sync.Once
	fired := make(chan struct{})
	inj.TripAfter(SiteCacheWait, 50, func() { once.Do(func() { close(fired) }) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				inj.Hit(SiteCacheWait)
			}
		}()
	}
	wg.Wait()
	select {
	case <-fired:
	default:
		t.Fatal("trip at 50 never fired across 200 hits")
	}
	if got := inj.Hits(SiteCacheWait); got != 200 {
		t.Fatalf("Hits = %d, want 200", got)
	}
}

func TestRealClockAdvances(t *testing.T) {
	a := Real().Now()
	b := Real().Now()
	if b.Before(a) {
		t.Fatal("real clock went backwards")
	}
}
