// Package obs is the pipeline's observability substrate: a
// lightweight, goroutine-safe Recorder that the compilation stages
// thread through their hot loops to answer "where does compile time
// go, and how do the optimizers converge?" — the measurements every
// performance claim in the paper (and every future optimization PR)
// is judged against.
//
// The Recorder offers four primitives:
//
//   - named counters        Add("synth/nodes", 5)
//   - monotonic timers      sp := r.Span("stage/zx"); ...; sp.End()
//   - value distributions   Observe("qoc/grape/iterations", 120)
//   - bounded traces        Sample("qoc/grape/fidelity", 0.97)
//     and events            Eventf("qoc/grape", "slots=%d stop=%s", ...)
//
// All methods are safe on a nil *Recorder and do nothing, so
// instrumented code needs no conditionals and the disabled path costs
// a single nil check (see TestNilRecorderNoAllocs: zero allocations).
// Series and events are bounded (first MaxSeries samples per key,
// first MaxEvents events) with explicit drop counters, so a
// long-running compile cannot grow memory without bound.
//
// Snapshot returns an immutable, JSON-serializable copy of everything
// recorded; internal/report renders it as aligned text tables.
//
// Usage (see also ExampleRecorder and ExampleRecorder_span):
//
//	r := obs.New()
//	res, err := core.Compile(c, core.Options{Device: dev, Obs: r})
//	snap := r.Snapshot()
//	fmt.Print(report.RenderSnapshot(snap))
//
// Naming convention: slash-separated lowercase paths, with the
// pipeline stage timers under "stage/" (stage/zx, stage/route,
// stage/partition, stage/synth, stage/regroup, stage/qoc), optimizer
// metrics under "qoc/" and "synth/", and cache metrics under
// "library/".
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Default bounds for traces; override with NewWithLimits.
const (
	DefaultMaxEvents = 256
	DefaultMaxSeries = 2048
)

// NumBuckets is the number of finite histogram bucket bounds every
// timer and distribution carries; one overflow (+Inf) bucket follows.
// The bounds are log-spaced by a factor of 4 starting at 1e-6 — in
// seconds for timers (1 µs up to ~275 ks) — so one fixed layout covers
// microsecond kernel spans, multi-second GRAPE stages, and unitless
// distribution values (iteration counts, milliseconds) alike. A fixed
// shared layout is what lets internal/metrics render every histogram
// with identical `le` labels and lets Merge fold recorders together
// bucket by bucket.
const NumBuckets = 20

// bucketBounds holds the finite upper bounds. Multiplying by 4 only
// shifts the exponent, so the bounds are exact and identical on every
// platform.
var bucketBounds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// BucketBounds returns a copy of the finite histogram bucket upper
// bounds (the +Inf overflow bucket is implied as the final count).
func BucketBounds() []float64 {
	out := make([]float64, NumBuckets)
	copy(out, bucketBounds[:])
	return out
}

// Hist is a fixed-bucket histogram: Hist[i] counts observations with
// value ≤ BucketBounds()[i] (and above the previous bound); the final
// element counts the overflow (+Inf bucket). It is a value type — a
// fixed-size array — so snapshot copies are deep and recording into an
// existing entry allocates nothing. Counts are per-bucket, not
// cumulative; renderers that need Prometheus-style cumulative buckets
// sum as they emit.
type Hist [NumBuckets + 1]int64

// observe adds one observation. NaN (no bound compares true) lands in
// the overflow bucket rather than being dropped, so Count and the
// bucket sum always agree.
func (h *Hist) observe(v float64) {
	for i := 0; i < NumBuckets; i++ {
		if v <= bucketBounds[i] {
			h[i]++
			return
		}
	}
	h[NumBuckets]++
}

// Total returns the sum of all bucket counts.
func (h *Hist) Total() int64 {
	var n int64
	for _, c := range h {
		n += c
	}
	return n
}

// Recorder accumulates counters, timer aggregates, value
// distributions, bounded series and bounded events. All methods are
// goroutine-safe and no-ops on a nil receiver.
type Recorder struct {
	mu             sync.Mutex
	counters       map[string]int64
	timers         map[string]*TimerStats
	dists          map[string]*DistStats
	series         map[string][]float64
	events         []Event
	eventsDropped  int64
	samplesDropped int64
	maxEvents      int
	maxSeries      int
	sink           func(Event)
}

// New returns an empty Recorder with the default trace bounds.
func New() *Recorder {
	return NewWithLimits(DefaultMaxEvents, DefaultMaxSeries)
}

// NewWithLimits returns an empty Recorder keeping at most maxEvents
// events and maxSeries samples per series key; non-positive limits
// fall back to the defaults.
func NewWithLimits(maxEvents, maxSeries int) *Recorder {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	return &Recorder{
		counters:  map[string]int64{},
		timers:    map[string]*TimerStats{},
		dists:     map[string]*DistStats{},
		series:    map[string][]float64{},
		maxEvents: maxEvents,
		maxSeries: maxSeries,
	}
}

// Add increments the named counter by delta.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Observe folds v into the named distribution (count/sum/min/max).
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	d := r.dists[name]
	if d == nil {
		d = &DistStats{Min: v, Max: v}
		r.dists[name] = d
	}
	d.Count++
	d.Sum += v
	if v < d.Min {
		d.Min = v
	}
	if v > d.Max {
		d.Max = v
	}
	d.Buckets.observe(v)
	r.mu.Unlock()
}

// Sample appends v to the named bounded series; samples beyond the
// per-key bound are dropped and counted in Snapshot.SamplesDropped.
func (r *Recorder) Sample(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.series[name]
	if len(s) < r.maxSeries {
		r.series[name] = append(s, v)
	} else {
		r.samplesDropped++
	}
	r.mu.Unlock()
}

// Span starts a monotonic timer under the given name; call End on the
// returned Span to record the elapsed duration. Span is a value type,
// so the disabled (nil Recorder) path allocates nothing.
func (r *Recorder) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

// Span is an in-flight timer measurement started by Recorder.Span.
type Span struct {
	r     *Recorder
	name  string
	start time.Time
}

// End records the elapsed time since the span started. End on a span
// from a nil Recorder is a no-op.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.recordDuration(s.name, time.Since(s.start))
}

func (r *Recorder) recordDuration(name string, d time.Duration) {
	r.mu.Lock()
	t := r.timers[name]
	if t == nil {
		t = &TimerStats{Min: d, Max: d}
		r.timers[name] = t
	}
	t.Count++
	t.Total += d
	if d < t.Min {
		t.Min = d
	}
	if d > t.Max {
		t.Max = d
	}
	t.Buckets.observe(d.Seconds())
	r.mu.Unlock()
}

// SetSink registers fn to receive every Event as it is recorded,
// including events past the snapshot bound (a live stream has no
// reason to stop where the bounded buffer does). fn is called
// synchronously from the recording goroutine, outside the recorder's
// lock; it must be goroutine-safe and must not call back into the
// Recorder. A nil fn detaches the sink. The progress-streaming
// endpoint in internal/serve is the intended consumer.
func (r *Recorder) SetSink(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// Event records a trace event under a stage label. Events beyond the
// bound are dropped from the snapshot buffer (counted in
// Snapshot.EventsDropped) but still delivered to the sink, if any.
func (r *Recorder) Event(stage, msg string) {
	if r == nil {
		return
	}
	ev := Event{Time: time.Now(), Stage: stage, Msg: msg}
	r.mu.Lock()
	if len(r.events) < r.maxEvents {
		r.events = append(r.events, ev)
	} else {
		r.eventsDropped++
	}
	sink := r.sink
	r.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// Eventf is Event with fmt.Sprintf formatting; the formatting only
// happens when the Recorder is non-nil.
func (r *Recorder) Eventf(stage, format string, args ...interface{}) {
	if r == nil {
		return
	}
	r.Event(stage, fmt.Sprintf(format, args...))
}

// Event is one bounded trace entry.
type Event struct {
	Time  time.Time `json:"time"`
	Stage string    `json:"stage"`
	Msg   string    `json:"msg"`
}

// TimerStats aggregates the spans recorded under one name. Buckets
// holds the fixed-layout histogram over elapsed seconds (bounds from
// BucketBounds, final element is the +Inf overflow).
type TimerStats struct {
	Count   int64         `json:"count"`
	Total   time.Duration `json:"total_ns"`
	Min     time.Duration `json:"min_ns"`
	Max     time.Duration `json:"max_ns"`
	Buckets Hist          `json:"buckets"`
}

// Mean returns the average span duration (0 when empty).
func (t TimerStats) Mean() time.Duration {
	if t.Count == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Count)
}

// DistStats aggregates the values observed under one name. Buckets
// holds the fixed-layout histogram over the raw observed values
// (bounds from BucketBounds, final element is the +Inf overflow).
type DistStats struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Buckets Hist    `json:"buckets"`
}

// Mean returns the average observed value (0 when empty).
func (d DistStats) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// Snapshot is an immutable copy of everything a Recorder has seen,
// ready for JSON serialization or table rendering.
type Snapshot struct {
	Counters       map[string]int64      `json:"counters,omitempty"`
	Timers         map[string]TimerStats `json:"timers,omitempty"`
	Dists          map[string]DistStats  `json:"dists,omitempty"`
	Series         map[string][]float64  `json:"series,omitempty"`
	Events         []Event               `json:"events,omitempty"`
	EventsDropped  int64                 `json:"events_dropped,omitempty"`
	SamplesDropped int64                 `json:"samples_dropped,omitempty"`
}

// Snapshot copies the recorder's state. It is safe to call while
// other goroutines keep recording; nil recorders return nil.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:       make(map[string]int64, len(r.counters)),
		Timers:         make(map[string]TimerStats, len(r.timers)),
		Dists:          make(map[string]DistStats, len(r.dists)),
		Series:         make(map[string][]float64, len(r.series)),
		Events:         append([]Event(nil), r.events...),
		EventsDropped:  r.eventsDropped,
		SamplesDropped: r.samplesDropped,
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.timers {
		s.Timers[k] = *v
	}
	for k, v := range r.dists {
		s.Dists[k] = *v
	}
	for k, v := range r.series {
		s.Series[k] = append([]float64(nil), v...)
	}
	return s
}

// Merge folds a snapshot from another recorder into r: counters add,
// timer and distribution aggregates combine (counts and sums add,
// min/max widen, histogram buckets add element-wise). Series and
// events are deliberately not merged — they are bounded per-recorder
// traces, and folding many per-job recorders into one server-wide
// recorder would just thrash the bound. The serve layer uses Merge to
// aggregate per-job recorders (which own the stage timers) into the
// server recorder that /metrics renders. Nil receivers and nil or
// empty snapshots are no-ops.
func (r *Recorder) Merge(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range s.Counters {
		r.counters[k] += v
	}
	for k, v := range s.Timers {
		if v.Count == 0 {
			continue
		}
		t := r.timers[k]
		if t == nil {
			cp := v
			r.timers[k] = &cp
			continue
		}
		t.Count += v.Count
		t.Total += v.Total
		if v.Min < t.Min {
			t.Min = v.Min
		}
		if v.Max > t.Max {
			t.Max = v.Max
		}
		for i := range t.Buckets {
			t.Buckets[i] += v.Buckets[i]
		}
	}
	for k, v := range s.Dists {
		if v.Count == 0 {
			continue
		}
		d := r.dists[k]
		if d == nil {
			cp := v
			r.dists[k] = &cp
			continue
		}
		d.Count += v.Count
		d.Sum += v.Sum
		if v.Min < d.Min {
			d.Min = v.Min
		}
		if v.Max > d.Max {
			d.Max = v.Max
		}
		for i := range d.Buckets {
			d.Buckets[i] += v.Buckets[i]
		}
	}
}

// JSON renders the snapshot as indented JSON with a trailing newline.
// Map keys are emitted sorted (encoding/json's behaviour), so the
// bytes are a deterministic function of the snapshot's contents. Nil
// snapshots render as "null".
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CounterNames returns the snapshot's counter names sorted
// alphabetically (helper for deterministic rendering).
func (s *Snapshot) CounterNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// TimerNames returns the snapshot's timer names sorted by total time
// descending (hottest first), ties broken alphabetically.
func (s *Snapshot) TimerNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Timers))
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		ti, tj := s.Timers[names[i]], s.Timers[names[j]]
		if ti.Total != tj.Total {
			return ti.Total > tj.Total
		}
		return names[i] < names[j]
	})
	return names
}

// DistNames returns the snapshot's distribution names sorted
// alphabetically.
func (s *Snapshot) DistNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Dists))
	for k := range s.Dists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SeriesNames returns the snapshot's series names sorted
// alphabetically.
func (s *Snapshot) SeriesNames() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Series))
	for k := range s.Series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
