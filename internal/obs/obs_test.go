package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCountersTimersDists(t *testing.T) {
	r := New()
	r.Add("a", 1)
	r.Add("a", 4)
	r.Add("b", -2)
	r.Observe("d", 3)
	r.Observe("d", 1)
	r.Observe("d", 8)
	sp := r.Span("t")
	time.Sleep(time.Millisecond)
	sp.End()
	r.Span("t").End()

	s := r.Snapshot()
	if s.Counters["a"] != 5 || s.Counters["b"] != -2 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	d := s.Dists["d"]
	if d.Count != 3 || d.Sum != 12 || d.Min != 1 || d.Max != 8 || d.Mean() != 4 {
		t.Fatalf("dist: %+v", d)
	}
	tm := s.Timers["t"]
	if tm.Count != 2 || tm.Total < time.Millisecond || tm.Max < tm.Min {
		t.Fatalf("timer: %+v", tm)
	}
}

func TestBoundedSeriesAndEvents(t *testing.T) {
	r := NewWithLimits(2, 3)
	for i := 0; i < 5; i++ {
		r.Sample("s", float64(i))
		r.Eventf("stage", "event %d", i)
	}
	s := r.Snapshot()
	if got := s.Series["s"]; len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("series: %v", got)
	}
	if s.SamplesDropped != 2 {
		t.Fatalf("samples dropped: %d", s.SamplesDropped)
	}
	if len(s.Events) != 2 || s.Events[1].Msg != "event 1" {
		t.Fatalf("events: %+v", s.Events)
	}
	if s.EventsDropped != 3 {
		t.Fatalf("events dropped: %d", s.EventsDropped)
	}
}

// TestNilRecorderNoAllocs pins the disabled-path contract: with
// Options.Obs unset the stage-timer and counter paths must add zero
// allocations (the overhead budget DESIGN.md documents).
func TestNilRecorderNoAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.Span("stage/zx")
		r.Add("synth/nodes", 1)
		r.Observe("qoc/grape/iterations", 42)
		r.Sample("qoc/grape/fidelity", 0.5)
		r.Event("stage", "msg")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per op, want 0", allocs)
	}
}

// TestWarmRecorderNoAllocs extends the zero-alloc contract to the
// enabled steady state: once a counter, distribution, or timer key
// exists, further recording — including histogram bucket folding —
// must not allocate. The histogram is a fixed array inside the stats
// struct precisely so this holds.
func TestWarmRecorderNoAllocs(t *testing.T) {
	r := New()
	r.Add("synth/nodes", 1)
	r.Observe("qoc/grape/iterations", 42)
	r.Span("stage/zx").End()
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add("synth/nodes", 1)
		r.Observe("qoc/grape/iterations", 42)
		sp := r.Span("stage/zx")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("warm recorder allocated %.1f times per op, want 0", allocs)
	}
}

func TestBucketBounds(t *testing.T) {
	b := BucketBounds()
	if len(b) != NumBuckets {
		t.Fatalf("len(BucketBounds()) = %d, want %d", len(b), NumBuckets)
	}
	if b[0] != 1e-6 {
		t.Fatalf("first bound = %g, want 1e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != b[i-1]*4 {
			t.Fatalf("bound %d = %g, want 4x previous %g", i, b[i], b[i-1])
		}
	}
	// Mutating the returned slice must not corrupt the shared bounds.
	b[0] = -1
	if BucketBounds()[0] != 1e-6 {
		t.Fatal("BucketBounds returned shared backing array")
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := New()
	bounds := BucketBounds()
	r.Observe("v", 0)             // below first bound -> bucket 0
	r.Observe("v", bounds[0])     // exactly on a bound is <= -> bucket 0
	r.Observe("v", bounds[3]*1.5) // between bounds 3 and 4 -> bucket 4
	r.Observe("v", 1e12)          // beyond last bound -> overflow
	r.Observe("v", math.NaN())    // NaN -> overflow, never dropped
	d := r.Snapshot().Dists["v"]
	if d.Buckets[0] != 2 || d.Buckets[4] != 1 || d.Buckets[NumBuckets] != 2 {
		t.Fatalf("bucket placement: %v", d.Buckets)
	}
	if got := d.Buckets.Total(); got != d.Count {
		t.Fatalf("bucket total %d != count %d", got, d.Count)
	}

	r.recordDuration("t", 3*time.Millisecond) // 3e-3 s -> first bound >= is 4.096e-3 (bucket 6)
	tm := r.Snapshot().Timers["t"]
	if tm.Buckets[6] != 1 {
		t.Fatalf("timer bucket placement: %v", tm.Buckets)
	}
	if got := tm.Buckets.Total(); got != tm.Count {
		t.Fatalf("timer bucket total %d != count %d", got, tm.Count)
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Add("c", 2)
	a.Observe("d", 1)
	a.recordDuration("t", time.Millisecond)

	b := New()
	b.Add("c", 3)
	b.Add("only-b", 1)
	b.Observe("d", 100)
	b.Observe("only-b-dist", 7)
	b.recordDuration("t", time.Second)
	b.recordDuration("only-b-timer", time.Microsecond)

	a.Merge(b.Snapshot())
	s := a.Snapshot()
	if s.Counters["c"] != 5 || s.Counters["only-b"] != 1 {
		t.Fatalf("merged counters: %+v", s.Counters)
	}
	d := s.Dists["d"]
	if d.Count != 2 || d.Sum != 101 || d.Min != 1 || d.Max != 100 {
		t.Fatalf("merged dist: %+v", d)
	}
	if got := d.Buckets.Total(); got != 2 {
		t.Fatalf("merged dist buckets total %d, want 2", got)
	}
	tm := s.Timers["t"]
	if tm.Count != 2 || tm.Total != time.Second+time.Millisecond ||
		tm.Min != time.Millisecond || tm.Max != time.Second {
		t.Fatalf("merged timer: %+v", tm)
	}
	if got := tm.Buckets.Total(); got != 2 {
		t.Fatalf("merged timer buckets total %d, want 2", got)
	}
	if s.Timers["only-b-timer"].Count != 1 || s.Dists["only-b-dist"].Count != 1 {
		t.Fatal("merge dropped keys absent from the receiver")
	}

	// Merging into or from nil is a no-op, not a panic.
	var nilRec *Recorder
	nilRec.Merge(b.Snapshot())
	a.Merge(nil)

	// Merge must fold a copy: later recording on b must not leak into a.
	before := a.Snapshot().Counters["c"]
	b.Add("c", 50)
	if a.Snapshot().Counters["c"] != before {
		t.Fatal("merge aliased the source snapshot")
	}
}

func TestNilRecorderSnapshot(t *testing.T) {
	var r *Recorder
	if r.Snapshot() != nil {
		t.Fatal("nil recorder must snapshot to nil")
	}
	var s *Snapshot
	if s.CounterNames() != nil || s.TimerNames() != nil || s.DistNames() != nil || s.SeriesNames() != nil {
		t.Fatal("nil snapshot accessors must return nil")
	}
}

// TestConcurrentRecorder hammers every primitive from many goroutines;
// run under -race it proves the Recorder is goroutine-safe.
func TestConcurrentRecorder(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Add("n", 1)
				r.Observe("v", float64(i))
				r.Sample("s", float64(i))
				sp := r.Span("t")
				sp.End()
				r.Eventf("stage", "w%d i%d", w, i)
			}
		}(w)
	}
	// Snapshot concurrently with the writers.
	for i := 0; i < 10; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != workers*perWorker {
		t.Fatalf("lost counter updates: %d", s.Counters["n"])
	}
	if s.Timers["t"].Count != workers*perWorker {
		t.Fatalf("lost timer updates: %d", s.Timers["t"].Count)
	}
	if got := int64(len(s.Series["s"])) + s.SamplesDropped; got != workers*perWorker {
		t.Fatalf("lost samples: kept+dropped=%d", got)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := New()
	r.Add("c", 1)
	r.Sample("s", 1)
	s := r.Snapshot()
	r.Add("c", 10)
	r.Sample("s", 2)
	if s.Counters["c"] != 1 || len(s.Series["s"]) != 1 {
		t.Fatal("snapshot shares state with recorder")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add("library/hits", 7)
	r.Observe("qoc/grape/iterations", 120)
	r.Span("stage/synth").End()
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["library/hits"] != 7 || back.Dists["qoc/grape/iterations"].Count != 1 {
		t.Fatalf("round trip lost data: %s", data)
	}
}

func TestTimerNamesHottestFirst(t *testing.T) {
	r := New()
	r.recordDuration("cold", time.Millisecond)
	r.recordDuration("hot", time.Second)
	r.recordDuration("warm", 10*time.Millisecond)
	got := r.Snapshot().TimerNames()
	want := []string{"hot", "warm", "cold"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: %v", got)
		}
	}
}
