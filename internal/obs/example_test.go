package obs_test

import (
	"fmt"

	"epoc/internal/obs"
)

// ExampleRecorder shows the counter and distribution primitives the
// pipeline stages use.
func ExampleRecorder() {
	r := obs.New()
	r.Add("synth/nodes", 3)
	r.Add("synth/nodes", 2)
	r.Observe("qoc/grape/iterations", 80)
	r.Observe("qoc/grape/iterations", 120)

	snap := r.Snapshot()
	fmt.Println("nodes:", snap.Counters["synth/nodes"])
	d := snap.Dists["qoc/grape/iterations"]
	fmt.Printf("grape iters: n=%d total=%.0f mean=%.0f\n", d.Count, d.Sum, d.Mean())
	// Output:
	// nodes: 5
	// grape iters: n=2 total=200 mean=100
}

// ExampleRecorder_span times a pipeline stage. A nil *Recorder makes
// every call a no-op, so instrumented code needs no conditionals.
func ExampleRecorder_span() {
	r := obs.New()
	sp := r.Span("stage/partition")
	// ... stage work ...
	sp.End()
	fmt.Println("spans recorded:", r.Snapshot().Timers["stage/partition"].Count)

	var disabled *obs.Recorder // Options.Obs left unset
	sp = disabled.Span("stage/partition")
	sp.End()
	fmt.Println("disabled snapshot is nil:", disabled.Snapshot() == nil)
	// Output:
	// spans recorded: 1
	// disabled snapshot is nil: true
}

// ExampleRecorder_trace shows the bounded trace primitives: sampled
// series (e.g. a GRAPE convergence curve) and structured events.
func ExampleRecorder_trace() {
	r := obs.NewWithLimits(8, 4)
	for i, fid := range []float64{0.31, 0.74, 0.92, 0.986, 0.999} {
		r.Sample("qoc/grape/fidelity", fid)
		_ = i
	}
	r.Eventf("qoc/grape", "slots=%d iters=%d stop=%s", 48, 5, "target")

	snap := r.Snapshot()
	fmt.Println("kept samples:", len(snap.Series["qoc/grape/fidelity"]), "dropped:", snap.SamplesDropped)
	fmt.Println(snap.Events[0].Stage, "|", snap.Events[0].Msg)
	// Output:
	// kept samples: 4 dropped: 1
	// qoc/grape | slots=48 iters=5 stop=target
}
