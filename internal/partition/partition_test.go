package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func TestGroupQubitsCoversAll(t *testing.T) {
	c := ladder(6, 3)
	groups := GroupQubits(c, 3)
	seen := map[int]bool{}
	for _, g := range groups {
		if len(g) > 3 {
			t.Fatalf("group too big: %v", g)
		}
		for _, q := range g {
			if seen[q] {
				t.Fatalf("qubit %d in two groups", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("groups cover %d of 6 qubits", len(seen))
	}
}

func TestGroupQubitsPrefersStrongInteraction(t *testing.T) {
	// Qubits 0-1 interact heavily, 0-2 once: group of 2 should pick {0,1}.
	c := circuit.New(3)
	for i := 0; i < 5; i++ {
		c.Append(gate.New(gate.CX), 0, 1)
	}
	c.Append(gate.New(gate.CX), 0, 2)
	groups := GroupQubits(c, 2)
	if len(groups[0]) != 2 || groups[0][0] != 0 || groups[0][1] != 1 {
		t.Fatalf("first group = %v", groups[0])
	}
}

func TestPartitionValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		c := randomCircuit(n, 40, rng)
		blocks := Partition(c, Options{MaxQubits: 2 + rng.Intn(2), MaxGates: 4 + rng.Intn(8)})
		if err := Validate(c, blocks); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPartitionRespectsLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCircuit(6, 60, rng)
	blocks := Partition(c, Options{MaxQubits: 2, MaxGates: 5})
	for _, b := range blocks {
		if b.Bridge {
			continue
		}
		if len(b.Qubits) > 2 {
			t.Fatalf("block qubits %v exceed limit", b.Qubits)
		}
		if b.GateCount() > 5 {
			t.Fatalf("block has %d gates", b.GateCount())
		}
	}
}

func TestBlockCircuitPreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		c := randomCircuit(n, 25, rng)
		blocks := Partition(c, Options{MaxQubits: 2, MaxGates: 6})
		bc := ToBlockCircuit(n, blocks)
		if d := linalg.PhaseDistance(c.Unitary(), bc.Unitary()); d > 1e-7 {
			t.Fatalf("trial %d: block circuit differs (distance %v)", trial, d)
		}
		if bc.Len() >= c.Len() && c.Len() > 4 {
			t.Fatalf("blocking did not compress op count: %d -> %d", c.Len(), bc.Len())
		}
	}
}

func TestBridgeOpsPreserved(t *testing.T) {
	// Two tightly-coupled pairs with one bridge between them.
	c := circuit.New(4)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 2, 3)
	c.Append(gate.New(gate.CX), 1, 2) // bridge
	c.Append(gate.New(gate.CX), 0, 1)
	blocks := Partition(c, Options{MaxQubits: 2, MaxGates: 10})
	bridges := 0
	for _, b := range blocks {
		if b.Bridge {
			bridges++
			if b.GateCount() != 1 {
				t.Fatal("bridge block should hold one op")
			}
		}
	}
	if bridges != 1 {
		t.Fatalf("expected 1 bridge block, got %d", bridges)
	}
	if err := Validate(c, blocks); err != nil {
		t.Fatal(err)
	}
}

func TestBlockUnitaryMatchesLocalCircuit(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	blocks := Partition(c, Options{MaxQubits: 2, MaxGates: 10})
	if len(blocks) != 1 {
		t.Fatalf("expected one block, got %d", len(blocks))
	}
	u := blocks[0].Unitary()
	if !u.IsUnitary(1e-9) {
		t.Fatal("block unitary not unitary")
	}
	if d := linalg.PhaseDistance(u, c.Unitary()); d > 1e-9 {
		t.Fatal("block unitary differs from circuit unitary")
	}
}

func TestEmptyCircuit(t *testing.T) {
	blocks := Partition(circuit.New(4), Options{})
	if len(blocks) != 0 {
		t.Fatalf("empty circuit produced %d blocks", len(blocks))
	}
}

func TestSingleQubitCircuit(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.T), 0)
	blocks := Partition(c, Options{MaxQubits: 3, MaxGates: 10})
	if len(blocks) != 1 || len(blocks[0].Qubits) != 1 {
		t.Fatalf("blocks: %+v", blocks)
	}
}

func TestQuickPartitionPreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(4, 20, rng)
		opts := Options{MaxQubits: 2 + rng.Intn(2), MaxGates: 3 + rng.Intn(6)}
		blocks := Partition(c, opts)
		if Validate(c, blocks) != nil {
			return false
		}
		bc := ToBlockCircuit(4, blocks)
		return linalg.PhaseDistance(c.Unitary(), bc.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func ladder(n, reps int) *circuit.Circuit {
	c := circuit.New(n)
	for r := 0; r < reps; r++ {
		for q := 0; q < n-1; q++ {
			c.Append(gate.New(gate.CX), q, q+1)
		}
	}
	return c
}

func randomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Append(gate.New(gate.H), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
		case 2:
			c.Append(gate.New(gate.RX, rng.Float64()*2*math.Pi), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
