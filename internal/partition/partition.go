// Package partition implements EPOC's greedy circuit partitioning
// (Algorithm 1 of the paper): qubits are grouped by interaction
// ("horizontal cutting"), then each group's blocks are filled with as
// many gates as possible up to a size limit ("vertical cutting"). Ops
// that span two groups become singleton bridge blocks, preserving
// dependency order.
package partition

import (
	"fmt"
	"sort"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// Block is a contiguous group of gates over a small qubit set.
type Block struct {
	Qubits []int            // global qubit ids, ascending
	Local  *circuit.Circuit // ops remapped onto local indices 0..len(Qubits)-1
	Bridge bool             // true when the block is a single group-spanning op
}

// Unitary returns the block's unitary over its local qubit ordering.
func (b *Block) Unitary() *linalg.Matrix { return b.Local.Unitary() }

// GateCount returns the number of ops in the block.
func (b *Block) GateCount() int { return b.Local.Len() }

// Options bounds the partition.
type Options struct {
	MaxQubits int // qubits per group (paper: up to 8; default 3)
	MaxGates  int // gates per block before a vertical cut (default 16)
}

func (o *Options) defaults() {
	if o.MaxQubits <= 0 {
		o.MaxQubits = 3
	}
	if o.MaxGates <= 0 {
		o.MaxGates = 16
	}
}

// GroupQubits performs the horizontal cut: starting from each unvisited
// qubit, it pulls in interaction-graph neighbors until MaxQubits is
// reached (Algorithm 1, procedure GroupQubits).
func GroupQubits(c *circuit.Circuit, maxQubits int) [][]int {
	if maxQubits <= 0 {
		maxQubits = 3
	}
	// Interaction graph: counts of multi-qubit ops between qubit pairs.
	adj := make(map[int]map[int]int)
	for _, op := range c.Ops {
		for i := 0; i < len(op.Qubits); i++ {
			for j := i + 1; j < len(op.Qubits); j++ {
				a, b := op.Qubits[i], op.Qubits[j]
				if adj[a] == nil {
					adj[a] = map[int]int{}
				}
				if adj[b] == nil {
					adj[b] = map[int]int{}
				}
				adj[a][b]++
				adj[b][a]++
			}
		}
	}
	taken := make([]bool, c.NumQubits)
	var groups [][]int
	for q := 0; q < c.NumQubits; q++ {
		if taken[q] {
			continue
		}
		group := []int{q}
		taken[q] = true
		// Pull in the most strongly interacting available neighbors,
		// tie-breaking on the smallest qubit id for determinism.
		for len(group) < maxQubits {
			best, bestW := -1, 0
			for _, m := range group {
				for nb := 0; nb < c.NumQubits; nb++ {
					w := adj[m][nb]
					if taken[nb] || w == 0 {
						continue
					}
					if w > bestW || (w == bestW && nb < best) {
						best, bestW = nb, w
					}
				}
			}
			if best == -1 {
				break
			}
			group = append(group, best)
			taken[best] = true
		}
		sort.Ints(group)
		groups = append(groups, group)
	}
	return groups
}

// Partition splits the circuit into ordered blocks (Algorithm 1).
func Partition(c *circuit.Circuit, opts Options) []Block {
	opts.defaults()
	groups := GroupQubits(c, opts.MaxQubits)
	groupOf := make([]int, c.NumQubits)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range groups {
		for _, q := range g {
			groupOf[q] = gi
		}
	}

	var blocks []Block
	open := make([]*[]circuit.Op, len(groups)) // pending ops per group

	closeGroup := func(gi int) {
		if open[gi] == nil || len(*open[gi]) == 0 {
			return
		}
		blocks = append(blocks, buildBlock(*open[gi], false))
		open[gi] = nil
	}

	for _, op := range c.Ops {
		gi := groupOf[op.Qubits[0]]
		same := true
		for _, q := range op.Qubits[1:] {
			if groupOf[q] != gi {
				same = false
				break
			}
		}
		if !same {
			// Bridge op: close every group it touches, emit it alone.
			seen := map[int]bool{}
			for _, q := range op.Qubits {
				if g := groupOf[q]; !seen[g] {
					seen[g] = true
					closeGroup(g)
				}
			}
			blocks = append(blocks, buildBlock([]circuit.Op{op}, true))
			continue
		}
		if open[gi] == nil {
			ops := make([]circuit.Op, 0, opts.MaxGates)
			open[gi] = &ops
		}
		*open[gi] = append(*open[gi], op)
		if len(*open[gi]) >= opts.MaxGates {
			closeGroup(gi)
		}
	}
	for gi := range groups {
		closeGroup(gi)
	}
	return blocks
}

// buildBlock remaps ops onto local qubit indices.
func buildBlock(ops []circuit.Op, bridge bool) Block {
	qset := map[int]bool{}
	for _, op := range ops {
		for _, q := range op.Qubits {
			qset[q] = true
		}
	}
	qubits := make([]int, 0, len(qset))
	for q := range qset {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)
	localOf := map[int]int{}
	for i, q := range qubits {
		localOf[q] = i
	}
	local := circuit.New(len(qubits))
	for _, op := range ops {
		lq := make([]int, len(op.Qubits))
		for i, q := range op.Qubits {
			lq[i] = localOf[q]
		}
		local.Append(op.G, lq...)
	}
	return Block{Qubits: qubits, Local: local, Bridge: bridge}
}

// ToBlockCircuit lowers a block list back to a circuit whose ops are
// explicit unitary block gates (plus untouched bridge ops), preserving
// order. This is the representation consumed by synthesis.
func ToBlockCircuit(n int, blocks []Block) *circuit.Circuit {
	out := circuit.New(n)
	for _, b := range blocks {
		if b.Bridge && b.Local.Len() == 1 {
			op := b.Local.Ops[0]
			qs := make([]int, len(op.Qubits))
			for i, lq := range op.Qubits {
				qs[i] = b.Qubits[lq]
			}
			out.Append(op.G, qs...)
			continue
		}
		out.Append(gate.NewUnitary(b.Unitary()), b.Qubits...)
	}
	return out
}

// Validate checks that a partition is a faithful reordering of the
// original circuit: same per-qubit op subsequences. It returns an error
// describing the first discrepancy.
func Validate(c *circuit.Circuit, blocks []Block) error {
	var flat []circuit.Op
	for _, b := range blocks {
		for _, op := range b.Local.Ops {
			qs := make([]int, len(op.Qubits))
			for i, lq := range op.Qubits {
				qs[i] = b.Qubits[lq]
			}
			flat = append(flat, circuit.Op{G: op.G, Qubits: qs})
		}
	}
	if len(flat) != len(c.Ops) {
		return fmt.Errorf("partition: op count changed: %d -> %d", len(c.Ops), len(flat))
	}
	for q := 0; q < c.NumQubits; q++ {
		orig := opsOnQubit(c.Ops, q)
		part := opsOnQubit(flat, q)
		if len(orig) != len(part) {
			return fmt.Errorf("partition: qubit %d op count %d -> %d", q, len(orig), len(part))
		}
		for i := range orig {
			if orig[i] != part[i] {
				return fmt.Errorf("partition: qubit %d op %d reordered: %s vs %s", q, i, orig[i], part[i])
			}
		}
	}
	return nil
}

func opsOnQubit(ops []circuit.Op, q int) []string {
	var out []string
	for _, op := range ops {
		for _, oq := range op.Qubits {
			if oq == q {
				out = append(out, op.String())
				break
			}
		}
	}
	return out
}
