package partition

import (
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// TestPartitionEdgeCases pins the boundary behavior of Algorithm 1:
// degenerate circuits, blocks landing exactly on the MaxQubits and
// MaxGates limits, and bridge emission. Every case must also pass
// Validate and lower through ToBlockCircuit without losing ops.
func TestPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *circuit.Circuit
		opts    Options
		blocks  int
		bridges int
		// maxBlockQubits/maxBlockGates bound the non-bridge blocks.
		maxBlockQubits int
		maxBlockGates  int
	}{
		{
			name:   "empty circuit",
			build:  func() *circuit.Circuit { return circuit.New(3) },
			blocks: 0,
		},
		{
			name: "single-qubit circuit",
			build: func() *circuit.Circuit {
				c := circuit.New(1)
				c.Append(gate.New(gate.H), 0)
				c.Append(gate.New(gate.T), 0)
				c.Append(gate.New(gate.H), 0)
				return c
			},
			blocks:         1,
			maxBlockQubits: 1,
			maxBlockGates:  3,
		},
		{
			name: "block exactly at MaxGates",
			build: func() *circuit.Circuit {
				// 4 gates on one pair with MaxGates: 4 → exactly one
				// full block, no spill into a second.
				c := circuit.New(2)
				for i := 0; i < 4; i++ {
					c.Append(gate.New(gate.CX), 0, 1)
				}
				return c
			},
			opts:           Options{MaxGates: 4},
			blocks:         1,
			maxBlockQubits: 2,
			maxBlockGates:  4,
		},
		{
			name: "one past MaxGates splits vertically",
			build: func() *circuit.Circuit {
				c := circuit.New(2)
				for i := 0; i < 5; i++ {
					c.Append(gate.New(gate.CX), 0, 1)
				}
				return c
			},
			opts:           Options{MaxGates: 4},
			blocks:         2,
			maxBlockQubits: 2,
			maxBlockGates:  4,
		},
		{
			name: "block exactly at MaxQubits",
			build: func() *circuit.Circuit {
				// A 3-qubit chain fits one group when MaxQubits is 3.
				c := circuit.New(3)
				c.Append(gate.New(gate.CX), 0, 1)
				c.Append(gate.New(gate.CX), 1, 2)
				c.Append(gate.New(gate.CX), 0, 2)
				return c
			},
			opts:           Options{MaxQubits: 3},
			blocks:         1,
			maxBlockQubits: 3,
			maxBlockGates:  3,
		},
		{
			name: "group overflow forces bridges",
			build: func() *circuit.Circuit {
				// With MaxQubits: 2 a 3-qubit chain cannot live in one
				// group, so cross-group ops become bridge blocks.
				c := circuit.New(3)
				c.Append(gate.New(gate.CX), 0, 1)
				c.Append(gate.New(gate.CX), 1, 2)
				c.Append(gate.New(gate.CX), 0, 1)
				return c
			},
			opts:           Options{MaxQubits: 2},
			blocks:         3,
			bridges:        1,
			maxBlockQubits: 2,
			maxBlockGates:  2,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			blocks := Partition(c, tc.opts)
			if len(blocks) != tc.blocks {
				t.Fatalf("got %d blocks, want %d: %+v", len(blocks), tc.blocks, blocks)
			}
			bridges := 0
			for i, b := range blocks {
				if b.Bridge {
					bridges++
					continue
				}
				if len(b.Qubits) == 0 || b.Local.Len() == 0 {
					t.Fatalf("block %d is empty: %+v", i, b)
				}
				if tc.maxBlockQubits > 0 && len(b.Qubits) > tc.maxBlockQubits {
					t.Fatalf("block %d spans %d qubits, cap %d", i, len(b.Qubits), tc.maxBlockQubits)
				}
				if tc.maxBlockGates > 0 && b.GateCount() > tc.maxBlockGates {
					t.Fatalf("block %d has %d gates, cap %d", i, b.GateCount(), tc.maxBlockGates)
				}
			}
			if bridges != tc.bridges {
				t.Fatalf("got %d bridge blocks, want %d", bridges, tc.bridges)
			}
			if err := Validate(c, blocks); err != nil {
				t.Fatalf("partition not a faithful reordering: %v", err)
			}
			bc := ToBlockCircuit(c.NumQubits, blocks)
			if bc.NumQubits != c.NumQubits {
				t.Fatalf("block circuit width %d, want %d", bc.NumQubits, c.NumQubits)
			}
			if bc.Len() != len(blocks) {
				t.Fatalf("block circuit has %d ops for %d blocks", bc.Len(), len(blocks))
			}
		})
	}
}

// TestPartitionBridgeBlockShape pins the invariants synthesis relies
// on: a bridge block carries exactly its one op, with global qubit
// indices recoverable through Qubits.
func TestPartitionBridgeBlockShape(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 2, 3)
	c.Append(gate.New(gate.CX), 1, 2) // crosses the {0,1} / {2,3} groups
	blocks := Partition(c, Options{MaxQubits: 2})
	var bridge *Block
	for i := range blocks {
		if blocks[i].Bridge {
			if bridge != nil {
				t.Fatal("expected exactly one bridge block")
			}
			bridge = &blocks[i]
		}
	}
	if bridge == nil {
		t.Fatal("no bridge block emitted for a cross-group op")
	}
	if bridge.Local.Len() != 1 {
		t.Fatalf("bridge block carries %d ops, want 1", bridge.Local.Len())
	}
	op := bridge.Local.Ops[0]
	globals := make([]int, len(op.Qubits))
	for i, lq := range op.Qubits {
		globals[i] = bridge.Qubits[lq]
	}
	if globals[0] != 1 || globals[1] != 2 {
		t.Fatalf("bridge op remapped to %v, want [1 2]", globals)
	}
}
