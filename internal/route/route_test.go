package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// equivalentUpToLayout checks that the routed circuit equals the
// original after undoing the final layout permutation with SWAPs.
func equivalentUpToLayout(t *testing.T, orig *circuit.Circuit, res *Result, topoN int) {
	t.Helper()
	fixed := res.Circuit.Clone()
	// Restore: move logical l from FinalLayout[l] back to InitialLayout[l].
	pos := make([]int, topoN) // pos[physical] = logical currently there
	for i := range pos {
		pos[i] = -1
	}
	for l, p := range res.FinalLayout {
		pos[p] = l
	}
	for l := 0; l < len(res.FinalLayout); l++ {
		want := res.InitialLayout[l]
		cur := res.FinalLayout[l]
		// Find where logical l currently is (may have moved by fixups).
		cur = -1
		for p, lg := range pos {
			if lg == l {
				cur = p
			}
		}
		if cur == want {
			continue
		}
		fixed.Append(gate.New(gate.SWAP), cur, want)
		pos[cur], pos[want] = pos[want], pos[cur]
	}
	// Embed the original onto topoN qubits (identity elsewhere).
	big := circuit.New(topoN)
	for _, op := range orig.Ops {
		big.AppendOp(op)
	}
	if d := linalg.PhaseDistance(big.Unitary(), fixed.Unitary()); d > 1e-7 {
		t.Fatalf("routing changed the unitary (distance %v)", d)
	}
}

func TestTopologyBasics(t *testing.T) {
	lin := Linear(5)
	if !lin.Adjacent(1, 2) || lin.Adjacent(0, 2) {
		t.Fatal("linear adjacency wrong")
	}
	if lin.Distance(0, 4) != 4 {
		t.Fatalf("distance = %d", lin.Distance(0, 4))
	}
	if len(lin.Edges()) != 4 {
		t.Fatal("edge count")
	}
	g := Grid(2, 3)
	if g.N != 6 || !g.Adjacent(0, 3) || !g.Adjacent(0, 1) || g.Adjacent(0, 4) {
		t.Fatal("grid adjacency wrong")
	}
	if g.Distance(0, 5) != 3 {
		t.Fatalf("grid distance = %d", g.Distance(0, 5))
	}
}

func TestTopologyInvalidEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopology(2, [][2]int{{0, 5}})
}

func TestRouteAdjacentGatesUntouched(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 1, 2)
	res, err := Route(c, Linear(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsAdded != 0 {
		t.Fatalf("adjacent circuit got %d swaps", res.SwapsAdded)
	}
	if err := Validate(res.Circuit, Linear(3)); err != nil {
		t.Fatal(err)
	}
}

func TestRouteDistantGate(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.New(gate.CX), 0, 3)
	topo := Linear(4)
	res, err := Route(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsAdded == 0 {
		t.Fatal("distant gate needs swaps")
	}
	if err := Validate(res.Circuit, topo); err != nil {
		t.Fatal(err)
	}
	equivalentUpToLayout(t, c, res, 4)
}

func TestRouteRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		c := randomTwoQubitCircuit(n, 15, rng)
		topo := Linear(n)
		res, err := Route(c, topo)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(res.Circuit, topo); err != nil {
			t.Fatal(err)
		}
		equivalentUpToLayout(t, c, res, n)
	}
}

func TestRouteOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := randomTwoQubitCircuit(4, 12, rng)
	topo := Grid(2, 2)
	res, err := Route(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res.Circuit, topo); err != nil {
		t.Fatal(err)
	}
	equivalentUpToLayout(t, c, res, 4)
}

func TestRouteRejectsWideGates(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.New(gate.CCX), 0, 1, 2)
	if _, err := Route(c, Linear(3)); err == nil {
		t.Fatal("expected error for 3-qubit gate")
	}
}

func TestRouteTooSmallTopology(t *testing.T) {
	c := circuit.New(5)
	c.Append(gate.New(gate.H), 4)
	if _, err := Route(c, Linear(3)); err == nil {
		t.Fatal("expected error for small topology")
	}
}

func TestValidateCatchesNonCoupler(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.New(gate.CX), 0, 2)
	if err := Validate(c, Linear(3)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestRouteDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randomTwoQubitCircuit(5, 20, rng)
	r1, err := Route(c, Linear(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(c, Linear(5))
	if err != nil {
		t.Fatal(err)
	}
	if r1.SwapsAdded != r2.SwapsAdded || r1.Circuit.Len() != r2.Circuit.Len() {
		t.Fatal("routing not deterministic")
	}
}

func TestQuickRoutePreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		c := randomTwoQubitCircuit(n, 10, rng)
		topo := Linear(n)
		res, err := Route(c, topo)
		if err != nil {
			return false
		}
		if Validate(res.Circuit, topo) != nil {
			return false
		}
		// Verify with the permutation undone.
		fixed := res.Circuit.Clone()
		pos := make([]int, n)
		for l, p := range res.FinalLayout {
			pos[p] = l
		}
		for l := 0; l < n; l++ {
			cur := -1
			for p, lg := range pos {
				if lg == l {
					cur = p
				}
			}
			if cur == l {
				continue
			}
			fixed.Append(gate.New(gate.SWAP), cur, l)
			pos[cur], pos[l] = pos[l], pos[cur]
		}
		return linalg.PhaseDistance(c.Unitary(), fixed.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func randomTwoQubitCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.H), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
