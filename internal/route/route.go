// Package route maps logical circuits onto a device's coupler
// topology, inserting SWAPs so every multi-qubit gate acts on adjacent
// physical qubits — the "mapped according to the target quantum
// computer's architecture" step of the paper's compilation workflow
// (Figure 1, citing Li et al.'s SABRE).
//
// The router is a greedy lookahead heuristic: each blocked two-qubit
// gate is unblocked by the SWAP that most reduces the summed distance
// of the gates in a sliding window of upcoming ops.
package route

import (
	"fmt"
	"sort"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// Topology is an undirected coupling graph over physical qubits.
type Topology struct {
	N     int
	adj   map[int]map[int]bool
	dist  [][]int
	edges [][2]int
}

// NewTopology builds a topology from an edge list.
func NewTopology(n int, edges [][2]int) *Topology {
	t := &Topology{N: n, adj: map[int]map[int]bool{}}
	for q := 0; q < n; q++ {
		t.adj[q] = map[int]bool{}
	}
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= n || e[1] >= n || e[0] == e[1] {
			panic(fmt.Sprintf("route: invalid edge %v", e))
		}
		t.adj[e[0]][e[1]] = true
		t.adj[e[1]][e[0]] = true
		t.edges = append(t.edges, e)
	}
	t.computeDistances()
	return t
}

// Linear returns a nearest-neighbour chain topology.
func Linear(n int) *Topology {
	var edges [][2]int
	for q := 0; q < n-1; q++ {
		edges = append(edges, [2]int{q, q + 1})
	}
	return NewTopology(n, edges)
}

// Grid returns a rows×cols lattice topology.
func Grid(rows, cols int) *Topology {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return NewTopology(rows*cols, edges)
}

// computeDistances runs BFS from every vertex. Neighbors are expanded
// in sorted order so the traversal (and anything that later keys off
// it) is independent of map iteration order.
func (t *Topology) computeDistances() {
	t.dist = make([][]int, t.N)
	sorted := make([][]int, t.N)
	for v := 0; v < t.N; v++ {
		sorted[v] = t.Neighbors(v)
	}
	for s := 0; s < t.N; s++ {
		d := make([]int, t.N)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range sorted[v] {
				if d[w] == -1 {
					d[w] = d[v] + 1
					queue = append(queue, w)
				}
			}
		}
		t.dist[s] = d
	}
}

// Adjacent reports whether two physical qubits share a coupler.
func (t *Topology) Adjacent(a, b int) bool { return t.adj[a][b] }

// Neighbors returns the sorted coupler neighbors of a physical qubit.
func (t *Topology) Neighbors(q int) []int {
	out := make([]int, 0, len(t.adj[q]))
	for w := range t.adj[q] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Distance returns the coupling-graph distance (-1 if disconnected).
func (t *Topology) Distance(a, b int) int { return t.dist[a][b] }

// Edges returns the coupler list.
func (t *Topology) Edges() [][2]int { return t.edges }

// Result carries a routed circuit and its mapping metadata.
type Result struct {
	Circuit *circuit.Circuit
	// InitialLayout[logical] = physical qubit at circuit start.
	InitialLayout []int
	// FinalLayout[logical] = physical qubit at circuit end.
	FinalLayout []int
	SwapsAdded  int
}

// Route maps a logical circuit onto the topology with a trivial
// initial layout (logical i → physical i) and greedy lookahead SWAP
// insertion. Gates on more than two qubits must be decomposed first.
func Route(c *circuit.Circuit, topo *Topology) (*Result, error) {
	if c.NumQubits > topo.N {
		return nil, fmt.Errorf("route: circuit needs %d qubits, topology has %d", c.NumQubits, topo.N)
	}
	for q := 0; q < topo.N; q++ {
		for w := 0; w < topo.N; w++ {
			if topo.dist[q][w] == -1 {
				return nil, fmt.Errorf("route: topology is disconnected")
			}
		}
	}
	// phys[logical] = physical, logi[physical] = logical.
	phys := make([]int, topo.N)
	logi := make([]int, topo.N)
	for i := range phys {
		phys[i] = i
		logi[i] = i
	}
	out := circuit.New(topo.N)
	res := &Result{InitialLayout: append([]int(nil), phys[:c.NumQubits]...)}

	const lookahead = 8
	for i, op := range c.Ops {
		switch len(op.Qubits) {
		case 1:
			out.Append(op.G, phys[op.Qubits[0]])
			continue
		case 2:
		default:
			return nil, fmt.Errorf("route: op %s has %d qubits; decompose before routing", op.G, len(op.Qubits))
		}
		a, b := op.Qubits[0], op.Qubits[1]
		for !topo.Adjacent(phys[a], phys[b]) {
			// Choose the SWAP (on an edge touching either endpoint) that
			// minimizes the lookahead cost.
			best := [2]int{-1, -1}
			bestCost := 1 << 30
			for _, pq := range []int{phys[a], phys[b]} {
				for _, nb := range topo.Neighbors(pq) {
					cost := swapCost(c.Ops[i:], phys, topo, pq, nb, lookahead)
					if cost < bestCost {
						bestCost = cost
						best = [2]int{pq, nb}
					}
				}
			}
			applySwap(out, phys, logi, best[0], best[1])
			res.SwapsAdded++
		}
		out.Append(op.G, phys[a], phys[b])
	}
	res.Circuit = out
	res.FinalLayout = append([]int(nil), phys[:c.NumQubits]...)
	return res, nil
}

// swapCost evaluates the summed distances of the next few two-qubit
// gates if the physical qubits p1, p2 were swapped.
func swapCost(upcoming []circuit.Op, phys []int, topo *Topology, p1, p2 int, window int) int {
	// Build the hypothetical physical positions.
	tryPhys := func(logical int) int {
		p := phys[logical]
		if p == p1 {
			return p2
		}
		if p == p2 {
			return p1
		}
		return p
	}
	cost := 0
	count := 0
	for _, op := range upcoming {
		if len(op.Qubits) != 2 {
			continue
		}
		d := topo.Distance(tryPhys(op.Qubits[0]), tryPhys(op.Qubits[1]))
		// Earlier gates weigh more.
		cost += d * (window - count)
		count++
		if count >= window {
			break
		}
	}
	return cost
}

func applySwap(out *circuit.Circuit, phys, logi []int, p1, p2 int) {
	out.Append(gate.New(gate.SWAP), p1, p2)
	l1, l2 := logi[p1], logi[p2]
	phys[l1], phys[l2] = p2, p1
	logi[p1], logi[p2] = l2, l1
}

// Validate checks that every multi-qubit gate of a routed circuit sits
// on a coupler.
func Validate(c *circuit.Circuit, topo *Topology) error {
	for i, op := range c.Ops {
		if len(op.Qubits) == 2 && !topo.Adjacent(op.Qubits[0], op.Qubits[1]) {
			return fmt.Errorf("route: op %d (%s) not on a coupler", i, op)
		}
		if len(op.Qubits) > 2 {
			return fmt.Errorf("route: op %d (%s) has arity > 2", i, op)
		}
	}
	return nil
}
