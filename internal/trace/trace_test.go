package trace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"epoc/internal/faultclock"
	"epoc/internal/trace"
)

// TestNilTracerNoAllocs pins the disabled path's cost: starting,
// annotating and ending spans against a nil tracer allocates nothing
// (the internal/obs contract, extended to trace).
func TestNilTracerNoAllocs(t *testing.T) {
	var tr *trace.Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("compile")
		child := sp.Child("stage/synth")
		block := child.Child("stage/synth/block")
		block.SetInt("class", 3).SetStr("cache", "miss").SetFloat("distance", 1e-9).SetBool("ok", true)
		block.End()
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f times per op, want 0", allocs)
	}
}

// TestNilSafety covers every method on nil receivers, including
// export.
func TestNilSafety(t *testing.T) {
	var tr *trace.Tracer
	if got := tr.Len(); got != 0 {
		t.Fatalf("nil Len = %d", got)
	}
	if sum := tr.Summary(); sum != nil {
		t.Fatalf("nil Summary = %+v", sum)
	}
	out := tr.ChromeTrace()
	var decoded map[string]interface{}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("nil ChromeTrace is not valid JSON: %v\n%s", err, out)
	}
}

// TestHierarchyAndSummary records a small deterministic tree under a
// fake clock and checks the summary aggregates.
func TestHierarchyAndSummary(t *testing.T) {
	clock := faultclock.NewFake()
	tr := trace.New(clock)
	root := tr.Start("compile")
	stage := root.Child("stage/synth")
	for i := 0; i < 3; i++ {
		b := stage.Child("stage/synth/block").SetInt("class", int64(i))
		clock.Advance(10 * time.Millisecond)
		b.End()
	}
	stage.End()
	root.End()

	sum := tr.Summary()
	if sum.Spans != 5 {
		t.Fatalf("summary spans = %d, want 5", sum.Spans)
	}
	blocks := sum.ByName["stage/synth/block"]
	if blocks.Count != 3 || blocks.TotalNS != int64(30*time.Millisecond) {
		t.Fatalf("block stats = %+v", blocks)
	}
	if blocks.MinNS != int64(10*time.Millisecond) || blocks.MaxNS != int64(10*time.Millisecond) {
		t.Fatalf("block min/max = %+v", blocks)
	}
	if sum.ByName["compile"].TotalNS != int64(30*time.Millisecond) {
		t.Fatalf("compile total = %+v", sum.ByName["compile"])
	}
}

// TestChromeTraceDeterministic pins that two runs recording the same
// logical spans from different goroutine interleavings export
// byte-identical traces: siblings are distinguished by attributes,
// not by registration order.
func TestChromeTraceDeterministic(t *testing.T) {
	build := func(order []int) []byte {
		tr := trace.New(faultclock.NewFake())
		root := tr.Start("compile")
		stage := root.Child("stage/synth")
		var wg sync.WaitGroup
		for _, i := range order {
			wg.Add(1)
			go func(class int) {
				defer wg.Done()
				sp := stage.Child("stage/synth/block").SetInt("class", int64(class))
				sp.End()
			}(i)
			wg.Wait() // serialize each goroutine to force the given registration order
		}
		stage.End()
		root.End()
		return tr.ChromeTrace()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if !bytes.Equal(a, b) {
		t.Fatalf("export depends on registration order:\n%s\nvs\n%s", a, b)
	}
}

// TestChromeTraceLanes checks the interval-coloring track layout:
// overlapping siblings land on distinct tracks (one per concurrent
// worker), properly nested children share their parent's track, and
// zero-width spans all collapse onto track 0.
func TestChromeTraceLanes(t *testing.T) {
	clock := faultclock.NewFake()
	tr := trace.New(clock)
	root := tr.Start("compile")
	// Two overlapping "worker" spans plus one nested child.
	a := root.Child("block").SetInt("class", 0)
	b := root.Child("block").SetInt("class", 1)
	clock.Advance(time.Millisecond)
	inner := a.Child("probe")
	clock.Advance(time.Millisecond)
	inner.End()
	a.End()
	b.End()
	clock.Advance(time.Millisecond)
	root.End()

	events := decodeEvents(t, tr.ChromeTrace())
	tids := map[string]float64{}
	for _, e := range events {
		key := e.Name
		if cls, ok := e.Args["class"]; ok {
			key = fmt.Sprintf("%s/%v", e.Name, cls)
		}
		tids[key] = e.Tid
	}
	if tids["block/0"] == tids["block/1"] {
		t.Fatalf("overlapping siblings share track %v: %v", tids["block/0"], tids)
	}
	if tids["probe"] != tids["block/0"] {
		t.Fatalf("nested child left its parent's track: %v", tids)
	}
	if tids["compile"] != 0 {
		t.Fatalf("root not on track 0: %v", tids)
	}
}

// TestZeroWidthSingleLane: under a never-advanced fake clock every
// span is zero-width, nothing overlaps, and the whole trace collapses
// onto track 0 — the property that makes worker-count-independent
// golden traces possible.
func TestZeroWidthSingleLane(t *testing.T) {
	tr := trace.New(faultclock.NewFake())
	root := tr.Start("compile")
	stage := root.Child("stage/synth")
	for i := 0; i < 8; i++ {
		stage.Child("stage/synth/block").SetInt("class", int64(i)).End()
	}
	stage.End()
	root.End()
	for _, e := range decodeEvents(t, tr.ChromeTrace()) {
		if e.Tid != 0 {
			t.Fatalf("zero-width span on track %v: %+v", e.Tid, e)
		}
	}
}

// TestRaceHammer starts, annotates and ends spans from many goroutines
// against one shared tracer and parent; run under -race this pins the
// tracer's goroutine safety (the stage-3 pool contract).
func TestRaceHammer(t *testing.T) {
	tr := trace.New(nil)
	root := tr.Start("compile")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := root.Child("stage/synth/block").SetInt("worker", int64(w)).SetInt("i", int64(i))
				sp.Child("probe").SetInt("slots", int64(i%7)).End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 1+8*200*2 {
		t.Fatalf("span count = %d, want %d", got, 1+8*200*2)
	}
	if sum := tr.Summary(); sum.ByName["stage/synth/block"].Count != 8*200 {
		t.Fatalf("summary block count = %+v", sum.ByName["stage/synth/block"])
	}
	if err := json.Unmarshal(tr.ChromeTrace(), &struct{}{}); err != nil {
		t.Fatalf("hammered trace is not valid JSON: %v", err)
	}
}

// TestDoubleEndNoop pins that a second End (the defer-compose pattern)
// does not move the recorded end time.
func TestDoubleEndNoop(t *testing.T) {
	clock := faultclock.NewFake()
	tr := trace.New(clock)
	sp := tr.Start("x")
	clock.Advance(time.Millisecond)
	sp.End()
	clock.Advance(time.Hour)
	sp.End()
	if got := tr.Summary().ByName["x"].TotalNS; got != int64(time.Millisecond) {
		t.Fatalf("double End moved the end time: %d", got)
	}
}

// chromeEvent is the subset of the trace-event schema the tests read.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Tid  float64                `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

func decodeEvents(t *testing.T, raw []byte) []chromeEvent {
	t.Helper()
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export contains no events")
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
	}
	return doc.TraceEvents
}
