package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"strconv"
	"time"
)

// ChromeTrace exports every ended span as Chrome trace-event JSON
// (the format Perfetto and chrome://tracing load): one complete ("X")
// event per span with microsecond timestamps relative to the tracer's
// epoch. Spans still open at export time are skipped.
//
// Track (tid) assignment is derived from the recorded intervals, not
// from goroutine identity: a span inherits its parent's track when it
// nests there without overlapping a sibling, and overlapping siblings
// — concurrent block syntheses, parallel QOC probes — are pushed to
// the lowest free track. A real parallel compile therefore renders as
// one track per busy worker, while a fake-clock compile (all spans
// zero-width, nothing overlaps) collapses onto track 0 — which is
// what makes the exported bytes identical at any worker count and
// lets the golden test pin them.
//
// Ordering is canonical: siblings sort by (start, name, attributes),
// falling back to registration order only on full ties, so the byte
// output does not depend on goroutine scheduling.
func (t *Tracer) ChromeTrace() []byte {
	if t == nil {
		return []byte("{\"traceEvents\":[]}\n")
	}
	t.mu.Lock()
	epoch := t.epoch
	t.mu.Unlock()

	roots := buildTree(t.snapshot())
	var lanes []([]*Span) // spans assigned per track, for overlap checks
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[")
	first := true
	var emit func(sp *Span, parentLane int)
	emit = func(sp *Span, parentLane int) {
		lane := assignLane(&lanes, sp, parentLane)
		if !first {
			buf.WriteByte(',')
		}
		first = false
		writeEvent(&buf, sp, epoch, lane)
		for _, c := range sp.children {
			emit(c.span, lane)
		}
	}
	for _, r := range roots {
		emit(r, -1)
	}
	buf.WriteString("],\"displayTimeUnit\":\"ns\"}\n")
	return buf.Bytes()
}

// childList links a span to its canonically ordered children during
// the export walk.
type childList struct {
	span     *Span
	children []*childList
}

// buildTree links ended spans into parent→children lists and sorts
// every sibling list canonically. Spans whose parent never ended are
// promoted to roots so a mid-compile export degrades gracefully.
func buildTree(spans []*Span) []*Span {
	byID := map[*Span]*childList{}
	var all []*childList
	for _, sp := range spans {
		if !sp.ended {
			continue
		}
		n := &childList{span: sp}
		byID[sp] = n
		all = append(all, n)
	}
	var roots []*childList
	for _, n := range all {
		if p := n.span.parent; p != nil {
			if pn, ok := byID[p]; ok {
				pn.children = append(pn.children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	sortSiblings(roots)
	for _, n := range all {
		sortSiblings(n.children)
	}
	// Re-expose through the Span structs: stash the ordered children on
	// each span for the emit walk.
	for _, n := range all {
		n.span.children = n.children
	}
	out := make([]*Span, len(roots))
	for i, n := range roots {
		out[i] = n.span
	}
	return out
}

// sortSiblings orders a sibling list by (start, name, attribute
// string), keeping registration order only on full ties. Concurrent
// siblings carry distinguishing attributes (block class index, probe
// slot count), so a deterministic workload exports deterministically
// even when goroutine interleaving differs.
func sortSiblings(ns []*childList) {
	sort.SliceStable(ns, func(i, j int) bool {
		a, b := ns[i].span, ns[j].span
		if !a.start.Equal(b.start) {
			return a.start.Before(b.start)
		}
		if a.name != b.name {
			return a.name < b.name
		}
		ak, bk := a.attrKey(), b.attrKey()
		if ak != bk {
			return ak < bk
		}
		return a.seq < b.seq
	})
}

// attrKey renders the attribute list as a comparable string.
func (s *Span) attrKey() string {
	var b bytes.Buffer
	for _, a := range s.attrs {
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.valueString())
		b.WriteByte(';')
	}
	return b.String()
}

func (a Attr) valueString() string {
	switch a.Kind {
	case AttrInt:
		return strconv.FormatInt(a.Int, 10)
	case AttrFloat:
		return strconv.FormatFloat(a.Float, 'g', -1, 64)
	case AttrBool:
		return strconv.FormatBool(a.Bool)
	default:
		return a.Str
	}
}

// assignLane places sp on its parent's track when it fits (proper
// nesting renders as flame-graph stacking in Perfetto), otherwise on
// the lowest track where it overlaps nothing already placed.
func assignLane(lanes *[]([]*Span), sp *Span, parentLane int) int {
	if parentLane >= 0 && !overlapsAny((*lanes)[parentLane], sp) {
		(*lanes)[parentLane] = append((*lanes)[parentLane], sp)
		return parentLane
	}
	for l := range *lanes {
		if l == parentLane {
			continue
		}
		if !overlapsAny((*lanes)[l], sp) {
			(*lanes)[l] = append((*lanes)[l], sp)
			return l
		}
	}
	*lanes = append(*lanes, []*Span{sp})
	return len(*lanes) - 1
}

// overlapsAny reports whether sp's interval overlaps any span already
// on the lane, ignoring its own ancestors (a child properly nested in
// its parent shares the parent's track). Zero-width intervals never
// overlap anything.
func overlapsAny(lane []*Span, sp *Span) bool {
	for _, other := range lane {
		if isAncestor(other, sp) {
			continue
		}
		if sp.start.Before(other.end) && other.start.Before(sp.end) {
			return true
		}
	}
	return false
}

func isAncestor(candidate, sp *Span) bool {
	for p := sp.parent; p != nil; p = p.parent {
		if p == candidate {
			return true
		}
	}
	return false
}

// writeEvent emits one complete event. Timestamps are microseconds
// with nanosecond precision, relative to the tracer epoch; string
// values are JSON-escaped through encoding/json.
func writeEvent(buf *bytes.Buffer, sp *Span, epoch time.Time, lane int) {
	buf.WriteString("{\"name\":")
	writeJSONString(buf, sp.name)
	buf.WriteString(",\"ph\":\"X\",\"pid\":1,\"tid\":")
	buf.WriteString(strconv.Itoa(lane))
	buf.WriteString(",\"ts\":")
	buf.WriteString(micros(sp.start.Sub(epoch)))
	buf.WriteString(",\"dur\":")
	buf.WriteString(micros(sp.end.Sub(sp.start)))
	if len(sp.attrs) > 0 {
		buf.WriteString(",\"args\":{")
		for i, a := range sp.attrs {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(buf, a.Key)
			buf.WriteByte(':')
			switch a.Kind {
			case AttrInt:
				buf.WriteString(strconv.FormatInt(a.Int, 10))
			case AttrFloat:
				buf.WriteString(jsonFloat(a.Float))
			case AttrBool:
				buf.WriteString(strconv.FormatBool(a.Bool))
			default:
				writeJSONString(buf, a.Str)
			}
		}
		buf.WriteByte('}')
	}
	buf.WriteByte('}')
}

// micros renders a duration as decimal microseconds with nanosecond
// precision; the fixed 3-digit form keeps the output byte-stable
// across magnitudes.
func micros(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 3, 64)
}

// jsonFloat renders a float attribute; NaN/Inf (not representable in
// JSON) degrade to a quoted string.
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "NaN", "+Inf", "-Inf", "Inf":
		return "\"" + s + "\""
	}
	return s
}

func writeJSONString(buf *bytes.Buffer, s string) {
	b, err := json.Marshal(s)
	if err != nil {
		buf.WriteString("\"\"")
		return
	}
	buf.Write(b)
}

// SpanStats aggregates the ended spans recorded under one name.
type SpanStats struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MinNS   int64 `json:"min_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// Summary is the compact, JSON-round-trippable aggregate of a trace,
// bundled into the run manifest alongside the obs snapshot: span
// counts and per-name duration totals, without the per-span detail of
// the Chrome export.
type Summary struct {
	Spans  int                  `json:"spans"`
	ByName map[string]SpanStats `json:"by_name,omitempty"`
}

// Summary aggregates every ended span by name. Nil tracers summarize
// to nil.
func (t *Tracer) Summary() *Summary {
	if t == nil {
		return nil
	}
	sum := &Summary{ByName: map[string]SpanStats{}}
	for _, sp := range t.snapshot() {
		if !sp.ended {
			continue
		}
		sum.Spans++
		st := sum.ByName[sp.name]
		d := sp.end.Sub(sp.start).Nanoseconds()
		if st.Count == 0 || d < st.MinNS {
			st.MinNS = d
		}
		if st.Count == 0 || d > st.MaxNS {
			st.MaxNS = d
		}
		st.Count++
		st.TotalNS += d
		sum.ByName[sp.name] = st
	}
	return sum
}
