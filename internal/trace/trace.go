// Package trace is the pipeline's span-level tracer: where internal/obs
// answers "how much time went into each named region in aggregate",
// trace answers "which block, which QSearch expansion, which GRAPE
// probe ate the wall clock" — it records a hierarchy of timed spans
// with typed attributes (stage, block id, cache status, nodes
// expanded, probe slots, final infidelity, degrade reasons) and
// exports them as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing, plus a compact aggregated Summary for the run
// manifest (internal/report).
//
// Design constraints, in the order they shaped the API:
//
//   - Nil safety and zero cost when disabled. Every method is safe on
//     a nil *Tracer or nil *Span and does nothing; the disabled path
//     is a single nil check with zero allocations (see
//     TestNilTracerNoAllocs), so the pipeline threads spans
//     unconditionally.
//   - Goroutine safety across pools. Spans are started from worker
//     goroutines against a shared parent (stage 3's synthesis pool,
//     stage 5's QOC prefill pool); the tracer serializes span
//     registration, and each span's fields are owned by the goroutine
//     that started it until End.
//   - Determinism under an injected clock. Time is read through the
//     Clock interface (satisfied by faultclock.Real() and
//     faultclock.Fake), and the exporter orders spans canonically by
//     (start, name, attributes) rather than by creation order — so a
//     compile under a fake clock exports byte-identical traces at any
//     worker count, which is what the golden tests pin.
//
// The package is an import leaf (like internal/obs and
// internal/faultclock): it defines its own Clock interface rather
// than importing faultclock's, and both packages' clocks satisfy it.
package trace

import (
	"strconv"
	"sync"
	"time"
)

// Clock is an injectable time source; faultclock.Clock implementations
// (Real and Fake) satisfy it. Implementations must be goroutine-safe.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Tracer collects spans for one or more compilations. All methods are
// goroutine-safe and no-ops on a nil receiver.
type Tracer struct {
	clock Clock

	mu    sync.Mutex
	epoch time.Time // first instant observed; export timestamps are relative to it
	spans []*Span   // registration order (not canonical; export re-sorts)
}

// New returns an empty tracer reading time from clock; a nil clock
// means the real time.Now. Inject a faultclock.Fake to make exported
// timestamps (and therefore the exported bytes) deterministic.
func New(clock Clock) *Tracer {
	if clock == nil {
		clock = realClock{}
	}
	return &Tracer{clock: clock}
}

// AttrKind discriminates the typed attribute union.
type AttrKind int

// Attribute kinds.
const (
	AttrStr AttrKind = iota
	AttrInt
	AttrFloat
	AttrBool
)

// Attr is one typed span attribute. Exactly one value field is
// meaningful, selected by Kind.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// Span is one timed region in the trace hierarchy. A span is owned by
// the goroutine that started it: SetX and End must not race with each
// other, but children may be started from any goroutine. All methods
// are no-ops on a nil *Span.
type Span struct {
	tr     *Tracer
	parent *Span
	name   string
	start  time.Time
	end    time.Time
	ended  bool
	attrs  []Attr
	seq    int // per-tracer registration sequence (stable-sort fallback)

	// children is populated only during export (single goroutine),
	// holding the canonically ordered child list for the emit walk.
	children []*childList
}

// Start begins a root span. Returns nil (and allocates nothing) on a
// nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.register(nil, name)
}

// Child begins a span under s. Child is safe to call from any
// goroutine — stage worker pools start block spans against the shared
// stage span — and returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.register(s, name)
}

func (t *Tracer) register(parent *Span, name string) *Span {
	now := t.clock.Now()
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = now
	}
	sp := &Span{tr: t, parent: parent, name: name, start: now, seq: len(t.spans)}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span at the tracer's current clock reading. A second
// End is a no-op, so `defer sp.End()` composes with an earlier
// explicit End on the happy path.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.end = s.tr.clock.Now()
}

// ID returns the span's stable identifier within its tracer,
// "s<seq>", where seq is the registration sequence number. It is
// assigned under the tracer lock at Start/Child time and never
// changes, so it is safe to read from any goroutine and cheap enough
// for log records — the logx integration stamps it on every
// stage-boundary line so a log line and a Chrome trace join on it.
// Nil spans return the empty string.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return "s" + strconv.Itoa(s.seq)
}

// SetStr attaches a string attribute and returns the span for
// chaining.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrStr, Str: v})
	return s
}

// SetInt attaches an integer attribute and returns the span.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrInt, Int: v})
	return s
}

// SetFloat attaches a float attribute and returns the span.
func (s *Span) SetFloat(key string, v float64) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrFloat, Float: v})
	return s
}

// SetBool attaches a boolean attribute and returns the span.
func (s *Span) SetBool(key string, v bool) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: AttrBool, Bool: v})
	return s
}

// Len reports how many spans have been started.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// snapshot copies the span list under the lock. The span structs
// themselves are read without synchronization, which is safe once
// their owning goroutines have ended them and joined (the pipeline
// always joins its pools before export).
func (t *Tracer) snapshot() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}
