package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder is the static form of the repository's determinism
// guarantee (byte-identical output at any Workers count): Go map
// iteration order is randomized, so values that flow from a
// `for ... range m` over a map into an order-sensitive sink make the
// output depend on the runtime's shuffle. Two shapes are findings:
//
//   - direct emission: a write call (fmt.Fprint*, anything.Write*,
//     hash/builder writes) inside the map-range body whose arguments
//     use the iteration variables — each iteration emits in shuffle
//     order;
//   - unsorted accumulation: the body appends iteration-derived
//     values to a slice, and a CFG path from the loop reaches a use
//     of that slice (returned, passed to a call, indexed, ranged,
//     stored away) before any sort.Xxx/slices.Sort* call on it.
//
// The canonical clean pattern — collect keys, sort, then iterate the
// sorted slice — passes: the sort call dominates every sink. Uses that
// cannot observe order (len, cap, further self-appends) are not
// sinks. The analysis is intra-procedural; a slice that escapes to a
// caller who sorts it needs an //epoc:lint-ignore with that reason.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose values reach an order-sensitive sink without an intervening sort",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMaporderUnit(p, fn.Body)
			// Function literals are their own CFG units.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkMaporderUnit(p, lit.Body)
				}
				return true
			})
		}
	}
}

func checkMaporderUnit(p *Pass, body *ast.BlockStmt) {
	var loops []*ast.RangeStmt
	walkUnit(body, func(n ast.Node) {
		if r, ok := n.(*ast.RangeStmt); ok && isMapType(p, r.X) {
			loops = append(loops, r)
		}
	})
	if len(loops) == 0 {
		return
	}
	cfg := buildCFG(body)
	for _, loop := range loops {
		checkMapLoop(p, cfg, loop)
	}
}

// checkMapLoop inspects one map-range loop: direct emission inside
// the body, and unsorted accumulation flowing past the loop.
func checkMapLoop(p *Pass, cfg *funcCFG, loop *ast.RangeStmt) {
	vars := loopVars(p, loop)
	if len(vars) == 0 {
		// `for range m` binds nothing; nothing map-ordered can flow out.
		return
	}

	type acc struct {
		obj       types.Object // the accumulating slice
		appendPos token.Pos
	}
	var accs []acc
	seenObj := map[types.Object]bool{}

	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map-range loops get their own checkMapLoop call.
			if n != loop && isMapType(p, n.X) {
				return false
			}
		case *ast.CallExpr:
			// Direct emission of iteration-derived values.
			if isOrderSink(p, n) && usesAnyObj(p, n, vars) {
				p.Reportf(n.Pos(), "write inside map iteration emits values in randomized map order; collect and sort first (Workers determinism)")
				return true
			}
		case *ast.AssignStmt:
			// s = append(s, ...derived...) accumulation.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(p, id)
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				call, ok := n.Rhs[i].(*ast.CallExpr)
				if !ok || !isAppendOf(p, call, obj) {
					continue
				}
				if !usesAnyObj(p, call, vars) {
					continue // appending something unrelated to the iteration
				}
				if !seenObj[obj] {
					seenObj[obj] = true
					accs = append(accs, acc{obj: obj, appendPos: call.Pos()})
				}
			}
		}
		return true
	})

	afterBlk := cfg.after[ast.Stmt(loop)]
	if afterBlk == nil {
		return
	}
	for _, a := range accs {
		if use, ok := firstUnsortedSink(p, afterBlk, a.obj); ok {
			usePos := p.Fset.Position(use.Pos())
			p.Reportf(a.appendPos,
				"slice %s accumulates map-iteration values here and reaches an order-sensitive use at line %d without an intervening sort; sort it (or the keys) first",
				a.obj.Name(), usePos.Line)
		}
	}
}

// firstUnsortedSink walks the CFG forward from start looking for a use
// of obj that can observe element order, stopping each path at the
// first sort call covering obj. It returns the offending node.
func firstUnsortedSink(p *Pass, start *cfgBlock, obj types.Object) (ast.Node, bool) {
	visited := map[*cfgBlock]bool{}
	var walk func(b *cfgBlock) (ast.Node, bool)
	walk = func(b *cfgBlock) (ast.Node, bool) {
		if visited[b] {
			return nil, false
		}
		visited[b] = true
		for _, n := range b.nodes {
			if nodeSorts(p, n, obj) {
				return nil, false // this path is now order-safe
			}
			if use, ok := orderSensitiveUse(p, n, obj); ok {
				return use, true
			}
		}
		for _, s := range b.succs {
			if use, ok := walk(s); ok {
				return use, true
			}
		}
		return nil, false
	}
	return walk(start)
}

// nodeSorts reports whether n contains a sort/slices ordering call
// that covers obj (obj appears in an argument).
func nodeSorts(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObj(p, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// orderSensitiveUse reports the first use of obj in n that can
// observe element order. Order-blind uses — len/cap, a further
// self-append, and the sort calls nodeSorts already consumed — are
// skipped.
func orderSensitiveUse(p *Pass, n ast.Node, obj types.Object) (ast.Node, bool) {
	var hit ast.Node
	var visit func(x ast.Node) bool
	visit = func(x ast.Node) bool {
		if hit != nil || x == nil {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			// s = append(s, ...): self-append keeps accumulating; the
			// appended values are judged when the slice is finally used.
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if id, ok := x.Lhs[0].(*ast.Ident); ok && objOf(p, id) == obj {
					if call, ok := x.Rhs[0].(*ast.CallExpr); ok && isAppendOf(p, call, obj) {
						return false
					}
				}
			}
		case *ast.CallExpr:
			// len(s) / cap(s) cannot observe order.
			if isBuiltinCall(p.Info, x, "len") || isBuiltinCall(p.Info, x, "cap") {
				return false
			}
		case *ast.Ident:
			if p.Info.Uses[x] == obj {
				hit = x
				return false
			}
		}
		for _, child := range childNodes(x) {
			visit(child)
		}
		return false
	}
	visit(n)
	return hit, hit != nil
}

// childNodes lists x's direct AST children (via ast.Inspect depth
// trickery kept simple: one-level Inspect).
func childNodes(x ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(x, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		out = append(out, n)
		return false
	})
	return out
}

// isOrderSink reports whether call writes its arguments somewhere
// order matters: fmt.Fprint*/Print* and any method named Write*.
func isOrderSink(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Write") {
		return true
	}
	return false
}

// loopVars returns the objects bound by the loop's key/value idents.
func loopVars(p *Pass, loop *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := objOf(p, id); obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// objOf resolves an ident to its object, whether this is a defining
// (`:=`) or using occurrence.
func objOf(p *Pass, id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// usesAnyObj reports whether n uses any of objs.
func usesAnyObj(p *Pass, n ast.Node, objs []types.Object) bool {
	for _, o := range objs {
		if usesObj(p, n, o) {
			return true
		}
	}
	return false
}

// isAppendOf reports whether call is append(obj, ...).
func isAppendOf(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	if !isBuiltinCall(p.Info, call, "append") || len(call.Args) == 0 {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && p.Info.Uses[arg] == obj
}

// isMapType reports whether expr has an underlying map type.
func isMapType(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isSliceType reports whether t's underlying type is a slice.
func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
