package lint

import (
	"go/ast"
	"go/types"
)

// Copylockplus flags by-value movement of lock-carrying structs in
// places go vet's copylocks pass does not look: function results,
// value receivers, by-value parameters and range clauses over
// elements that transitively contain sync.Mutex, sync.RWMutex,
// sync.Once, sync.WaitGroup, sync.Cond, sync.Pool, sync.Map or an
// obs.Recorder value. A copied mutex is two mutexes that both think
// they guard one thing — in this pipeline that means a shared
// synth.Cache or obs.Recorder silently stops synchronizing and the
// Workers determinism guarantee dies without a data-race report.
//
// Only in-module named types, direct sync types and anonymous structs
// are checked; third-party value types are stdlib's business.
var Copylockplus = &Analyzer{
	Name: "copylockplus",
	Doc:  "flags by-value params/results/receivers/range of structs carrying sync or obs state",
	Run:  runCopylockplus,
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true,
	"WaitGroup": true, "Cond": true, "Pool": true, "Map": true,
}

func runCopylockplus(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(p, n.Recv, "receiver")
				if n.Type != nil {
					checkFieldList(p, n.Type.Params, "parameter")
					checkFieldList(p, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				checkFieldList(p, n.Type.Params, "parameter")
				checkFieldList(p, n.Type.Results, "result")
			case *ast.RangeStmt:
				checkRangeCopy(p, n)
			}
			return true
		})
	}
}

func checkFieldList(p *Pass, fl *ast.FieldList, role string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if why := copyUnsafe(p, tv.Type); why != "" {
			p.Reportf(field.Type.Pos(), "%s passes %s by value (contains %s); use a pointer", role, types.TypeString(tv.Type, nil), why)
		}
	}
}

func checkRangeCopy(p *Pass, n *ast.RangeStmt) {
	if n.Value == nil {
		return
	}
	var t types.Type
	if id, ok := n.Value.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		// With := the value var is a definition, recorded in Defs
		// rather than Types; ObjectOf covers both forms.
		if obj := p.Info.ObjectOf(id); obj != nil {
			t = obj.Type()
		}
	} else if tv, ok := p.Info.Types[n.Value]; ok {
		t = tv.Type
	}
	if t == nil {
		return
	}
	if why := copyUnsafe(p, t); why != "" {
		p.Reportf(n.Value.Pos(), "range clause copies %s by value (contains %s); range by index or store pointers", types.TypeString(t, nil), why)
	}
}

// copyUnsafe returns a description of the lock buried inside t, or ""
// when t is safe to copy. Pointers, slices, maps and channels are
// references and always safe; only in-module named types, direct sync
// types and anonymous structs/arrays are inspected.
func copyUnsafe(p *Pass, t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		pkg := t.Obj().Pkg()
		if pkg == nil {
			return ""
		}
		if pkg.Path() == "sync" && syncLockTypes[t.Obj().Name()] {
			return "sync." + t.Obj().Name()
		}
		if !p.Module.InModule(pkg.Path()) {
			return ""
		}
		if pkg.Path() == p.Module.Path+"/internal/obs" && t.Obj().Name() == "Recorder" {
			return "obs.Recorder"
		}
		return lockInside(p, t.Underlying(), map[types.Type]bool{t: true})
	case *types.Struct, *types.Array:
		return lockInside(p, t, map[types.Type]bool{})
	}
	return ""
}

// lockInside walks struct fields and array elements looking for a
// lock-carrying type, following named types regardless of package
// (a field's type already escaped the "in-module only" gate above).
func lockInside(p *Pass, t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		pkg := t.Obj().Pkg()
		if pkg != nil {
			if pkg.Path() == "sync" && syncLockTypes[t.Obj().Name()] {
				return "sync." + t.Obj().Name()
			}
			if pkg.Path() == p.Module.Path+"/internal/obs" && t.Obj().Name() == "Recorder" {
				return "obs.Recorder"
			}
		}
		return lockInside(p, t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if why := lockInside(p, t.Field(i).Type(), seen); why != "" {
				return why
			}
		}
	case *types.Array:
		return lockInside(p, t.Elem(), seen)
	}
	return ""
}
