// Package lint is epoc-lint: a small, pure-stdlib static-analysis
// framework (go/parser + go/types only — no golang.org/x/tools) that
// enforces the project invariants the Go compiler cannot see:
//
//   - unitaries are compared only up to global phase with explicit
//     tolerances, never with raw float/complex equality (floatcmp);
//   - the pipeline is byte-identical at any Workers count, so all
//     randomness flows through injected seeded *rand.Rand values,
//     never math/rand globals or wall-clock seeds (globalrand);
//   - the package import DAG from ARCHITECTURE.md holds — internal/obs,
//     internal/linalg and internal/opt stay leaves, internal/* never
//     reaches cmd/* (layering);
//   - error and (..., ok) results from in-module APIs are never
//     silently dropped (errcheck);
//   - structs carrying sync.Mutex/sync.Once/obs state are never
//     copied by value, including via returns, receivers and range
//     clauses that go vet's copylocks pass does not flag (copylockplus);
//   - a context.Context accepted by a function actually flows into the
//     work it guards — no unused ctx parameters, no in-module calls
//     handed a fresh context.Background() while the caller's context
//     is in scope (ctxflow);
//   - a *trace.Span obtained in a function is ended on every path out
//     of it: defer sp.End(), or let the span escape to the owner of
//     its lifetime (spanend);
//   - values iterated out of a map never reach an order-sensitive
//     sink — emitted, hashed, compared — without an intervening sort
//     (maporder);
//   - struct fields tied to a mutex, by a `// guards:` comment or the
//     mu-adjacency idiom in the shared-state packages, are only
//     touched while the mutex is held (lockguard);
//   - every spawned goroutine has a join path: WaitGroup Done, a
//     channel send/close, or a ctx-cancel edge (goleak);
//   - functions annotated //epoc:hot do not allocate inside their
//     loops (allochot).
//
// The last four are flow-sensitive: they run over a per-function
// control-flow graph (cfg.go) and a module-level call graph
// (callgraph.go), both built from the same pure-stdlib loader.
//
// Findings may be suppressed, one site at a time and with a mandatory
// reason, by a comment on the offending line or the line above:
//
//	//epoc:lint-ignore <analyzer> <reason>
//
// A malformed ignore (missing reason, unknown analyzer name) is itself
// a finding, so suppressions cannot rot silently. The suite runs from
// `make lint`, from CI, and from the self-check test in this package,
// which keeps the repository permanently lint-clean.
//
// DESIGN.md §8 documents the analyzer catalog and how to add one;
// §13 documents the CFG/call-graph layer under the dataflow analyzers.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked
// package via the Pass and reports findings; it must not mutate the
// loaded module.
type Analyzer struct {
	Name string // short lowercase identifier used in findings and ignores
	Doc  string // one-line description shown by epoc-lint -list
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) view handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module  // whole-module view (layering needs the DAG)
	Pkg      *Package // the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File // the package's non-test files
	Types    *types.Package
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool   // an //epoc:lint-ignore comment covers it
	Reason     string // the ignore's reason, when suppressed
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// All returns the full epoc-lint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Floatcmp, Globalrand, Layering, Errcheck, Copylockplus, Ctxflow, Spanend, Maporder, Lockguard, Goleak, Allochot, Metricname}
}

// ByName resolves a comma-separated analyzer list ("floatcmp,layering")
// against the full suite.
func ByName(list string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer list")
	}
	return out, nil
}

// Names lists every analyzer in the suite.
func Names() []string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name)
	}
	return ns
}

// ignoreRe matches the suppression syntax. The reason group is
// mandatory: an ignore without a reason is reported as malformed.
var ignoreRe = regexp.MustCompile(`^//epoc:lint-ignore\s+([a-z][a-z0-9-]*)(?:\s+(\S.*))?$`)

// ignore is one parsed //epoc:lint-ignore comment.
type ignore struct {
	analyzer string
	reason   string
	pos      token.Position
}

// Run executes the analyzers over every package in the module (in
// deterministic import-path order) and returns all findings, sorted by
// position. Findings covered by a well-formed ignore comment on the
// same line or the line directly above are returned with Suppressed
// set rather than dropped, so callers can audit suppressions.
// Malformed ignores are appended as findings of the pseudo-analyzer
// "lint".
func Run(m *Module, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range m.Sorted() {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Module:   m,
				Pkg:      pkg,
				Fset:     m.Fset,
				Files:    pkg.Files,
				Types:    pkg.Types,
				Info:     pkg.Info,
				findings: &findings,
			}
			a.Run(pass)
		}
	}

	ignores, malformed := collectIgnores(m)
	findings = append(findings, malformed...)
	known := map[string]bool{"lint": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for i := range findings {
		f := &findings[i]
		for _, ig := range ignores[f.Pos.Filename] {
			if ig.analyzer != f.Analyzer {
				continue
			}
			if ig.pos.Line == f.Pos.Line || ig.pos.Line == f.Pos.Line-1 {
				f.Suppressed = true
				f.Reason = ig.reason
				break
			}
		}
	}

	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// Unsuppressed filters Run's output down to the findings that fail a
// lint run.
func Unsuppressed(all []Finding) []Finding {
	var out []Finding
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// collectIgnores scans every file's comments for suppression
// directives. It returns well-formed ignores keyed by filename, plus
// findings for malformed ones (missing reason, unknown analyzer).
func collectIgnores(m *Module) (map[string][]ignore, []Finding) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	byFile := map[string][]ignore{}
	var malformed []Finding
	for _, pkg := range m.Sorted() {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//epoc:lint-ignore") {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					mm := ignoreRe.FindStringSubmatch(c.Text)
					switch {
					case mm == nil:
						malformed = append(malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed ignore: want //epoc:lint-ignore <analyzer> <reason>",
						})
					case mm[2] == "":
						malformed = append(malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  fmt.Sprintf("ignore for %q is missing the mandatory reason", mm[1]),
						})
					case !known[mm[1]]:
						malformed = append(malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  fmt.Sprintf("ignore names unknown analyzer %q (have %s)", mm[1], strings.Join(Names(), ", ")),
						})
					default:
						byFile[pos.Filename] = append(byFile[pos.Filename], ignore{
							analyzer: mm[1],
							reason:   mm[2],
							pos:      pos,
						})
					}
				}
			}
		}
	}
	return byFile, malformed
}
