package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp flags ==, != and switch on float or complex operands.
// EPOC's correctness story (paper §3.3–§3.4) compares unitaries only
// up to global phase and only with explicit tolerances; a raw float
// equality silently breaks phase-keyed caching the moment a value is
// recomputed along a different (but mathematically equal) path.
//
// Exemptions:
//   - x != x / x == x on the same side-effect-free expression (the
//     IEEE-754 NaN probe);
//   - comparisons where both operands are compile-time constants;
//   - bodies of the tolerance/fingerprint kernels listed in
//     floatcmpAllowed — the functions whose whole job is to define
//     what "equal" means, so raw comparisons there are the point.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!=/switch on float64/complex128 operands outside tolerance helpers",
	Run:  runFloatcmp,
}

// floatcmpAllowed lists the fully qualified functions allowed to
// compare floats exactly: the global-phase/tolerance kernels and the
// quantized fingerprint constructors they feed. Methods use the
// types.Func.FullName form, e.g. "(*epoc/internal/synth.Cache).get".
var floatcmpAllowed = map[string]bool{
	// Tolerance / global-phase kernels: these functions define what
	// "equal" means for everyone else (paper §3.3–§3.4), so their raw
	// comparisons are the specification, not a bug.
	"epoc/internal/linalg.PhaseDistance":  true,
	"epoc/internal/linalg.AlignPhase":     true,
	"epoc/internal/linalg.CanonicalPhase": true,
	"epoc/internal/linalg.Fingerprint":    true,
	// ZX phase predicates compare values already snapped by normPhase
	// (exactly 0 within phaseTol), so == on the canonical form is exact.
	"epoc/internal/zx.normPhase":    true,
	"epoc/internal/zx.phaseIsZero":  true,
	"epoc/internal/zx.phaseIsPauli": true,
	// Zero-value config defaulting: 0 is the documented "unset"
	// sentinel of these option structs, and only a literal zero value
	// (never a computed float) reaches the comparison.
	"(*epoc/internal/core.Options).withDefaults":     true,
	"(*epoc/internal/opt.AdamConfig).defaults":       true,
	"(*epoc/internal/opt.LBFGSConfig).defaults":      true,
	"(*epoc/internal/opt.NelderMeadConfig).defaults": true,
	"(*epoc/internal/qoc.CRABConfig).defaults":       true,
	"(*epoc/internal/qoc.GRAPEConfig).defaults":      true,
	"(*epoc/internal/qoc.ModelOptions).defaults":     true,
}

func runFloatcmp(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				// Package-level initializers etc. are never allowlisted.
				if _, isDecl := n.(*ast.GenDecl); isDecl {
					checkFloatCmps(p, n)
					return false
				}
				return true
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok && floatcmpAllowed[obj.FullName()] {
				return false
			}
			if fd.Body != nil {
				checkFloatCmps(p, fd.Body)
			}
			return false
		})
	}
}

func checkFloatCmps(p *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			kind := floatyKind(p, n.X)
			if kind == "" {
				kind = floatyKind(p, n.Y)
			}
			if kind == "" {
				return true
			}
			if isConst(p, n.X) && isConst(p, n.Y) {
				return true // folded at compile time
			}
			if n.Op == token.NEQ || n.Op == token.EQL {
				if samePureExpr(n.X, n.Y) {
					return true // NaN probe: x != x
				}
			}
			p.Reportf(n.OpPos, "%s values compared with %s; use a tolerance helper such as linalg.PhaseDistance or an explicit epsilon", kind, n.Op)
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			if kind := floatyKind(p, n.Tag); kind != "" {
				p.Reportf(n.Tag.Pos(), "switch on %s value; case equality on floats is exact — compare with an explicit tolerance instead", kind)
			}
		}
		return true
	})
}

// floatyKind returns the basic float/complex kind name of e's type, or
// "" if the comparison is not floating-point.
func floatyKind(p *Pass, e ast.Expr) string {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.Complex64, types.Complex128,
		types.UntypedFloat, types.UntypedComplex:
		return b.Name()
	}
	return ""
}

func isConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// samePureExpr reports whether a and b are the same side-effect-free
// identifier/selector chain, the shape of the x != x NaN idiom.
func samePureExpr(a, b ast.Expr) bool {
	pa, oka := purePath(a)
	pb, okb := purePath(b)
	return oka && okb && pa == pb
}

func purePath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := purePath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return purePath(e.X)
	}
	return "", false
}
