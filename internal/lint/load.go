package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a fully parsed, fully type-checked view of one Go module:
// every buildable package under the root, non-test files only. Test
// files are deliberately out of scope — the invariants epoc-lint
// enforces protect shipped pipeline code, and test packages have their
// own (seeded, per-test) determinism conventions.
type Module struct {
	Path     string // module path, e.g. "epoc"
	Dir      string // absolute module root
	Fset     *token.FileSet
	Packages map[string]*Package // keyed by import path

	sorted []*Package // dependency order, then import-path order
	cg     *callGraph // lazily built module call graph (see callgraph.go)
}

// Package is one loaded package.
type Package struct {
	Path  string // import path ("epoc", "epoc/internal/zx", ...)
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	imports []string // in-module imports, non-test files only
}

// Sorted returns the module's packages in deterministic dependency
// order (imports before importers, ties broken by path).
func (m *Module) Sorted() []*Package { return m.sorted }

// InModule reports whether path names a package of this module.
func (m *Module) InModule(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// LoadModule parses and type-checks every buildable package under dir,
// resolving in-module imports against the tree itself and everything
// else (the standard library) through the source importer — no
// external tooling, no x/tools. modPath is the module path the tree is
// compiled as; testdata fixtures reuse the real module path so
// analyzer tables keyed by "epoc/..." apply verbatim.
func LoadModule(dir, modPath string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:     modPath,
		Dir:      abs,
		Fset:     token.NewFileSet(),
		Packages: map[string]*Package{},
	}

	if err := m.discover(); err != nil {
		return nil, err
	}
	if err := m.typecheck(); err != nil {
		return nil, err
	}
	return m, nil
}

// discover walks the tree, parsing each buildable package's non-test
// files. Directories named testdata, vendor, or starting with "." or
// "_" are skipped, matching the go tool's convention.
func (m *Module) discover() error {
	ctx := build.Default
	return filepath.WalkDir(m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := ctx.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("%s: %w", path, err)
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}

		rel, err := filepath.Rel(m.Dir, path)
		if err != nil {
			return err
		}
		importPath := m.Path
		if rel != "." {
			importPath = m.Path + "/" + filepath.ToSlash(rel)
		}

		pkg := &Package{Path: importPath, Dir: path}
		files := append([]string(nil), bp.GoFiles...)
		sort.Strings(files)
		for _, f := range files {
			af, err := parser.ParseFile(m.Fset, filepath.Join(path, f), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parse %s: %w", filepath.Join(path, f), err)
			}
			pkg.Files = append(pkg.Files, af)
		}
		for _, imp := range bp.Imports {
			if imp == m.Path || strings.HasPrefix(imp, m.Path+"/") {
				pkg.imports = append(pkg.imports, imp)
			}
		}
		m.Packages[importPath] = pkg
		return nil
	})
}

// typecheck orders packages so imports come first, then checks each
// with a chained importer: in-module paths resolve to the packages
// loaded here, all others fall through to the source importer.
func (m *Module) typecheck() error {
	order, err := m.topoSort()
	if err != nil {
		return err
	}
	m.sorted = order

	imp := &moduleImporter{
		m:   m,
		src: importer.ForCompiler(m.Fset, "source", nil),
	}
	for _, pkg := range order {
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
		if err != nil || len(typeErrs) > 0 {
			msgs := make([]string, 0, len(typeErrs))
			for _, e := range typeErrs {
				msgs = append(msgs, e.Error())
			}
			if len(msgs) == 0 {
				msgs = append(msgs, err.Error())
			}
			return fmt.Errorf("type-check %s:\n  %s", pkg.Path, strings.Join(msgs, "\n  "))
		}
		pkg.Types = tpkg
		pkg.Info = info
	}
	return nil
}

// topoSort returns packages with every package after all of its
// in-module imports, failing loudly on import cycles.
func (m *Module) topoSort() ([]*Package, error) {
	paths := make([]string, 0, len(m.Packages))
	for p := range m.Packages {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string, trail []string) error
	visit = func(path string, trail []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle: %s -> %s", strings.Join(trail, " -> "), path)
		}
		state[path] = visiting
		pkg := m.Packages[path]
		deps := append([]string(nil), pkg.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := m.Packages[dep]; !ok {
				return fmt.Errorf("%s imports %s, which is not in the loaded module", path, dep)
			}
			if err := visit(dep, append(trail, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves in-module packages from the loaded tree and
// defers everything else to the compiler's source importer.
type moduleImporter struct {
	m   *Module
	src types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := mi.m.Packages[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("internal error: %s imported before it was type-checked", path)
		}
		return pkg.Types, nil
	}
	return mi.src.Import(path)
}

// FindModuleRoot walks up from dir to the enclosing go.mod and returns
// the directory plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
