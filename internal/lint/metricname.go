package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// Metricname keeps the Prometheus exposition surface stable: every
// metric name a package exports — the Name of a metrics.Gauge
// composite literal anywhere in the module, and the rename table
// inside internal/metrics itself — must be epoc_-prefixed snake_case
// (DESIGN.md §15). Scrape configs, dashboards and alert rules key on
// these strings, so a stray capital or a double underscore is an
// operational break, not a style nit. Counter names in the rename
// table must additionally end in _total (the text-format convention
// the strict parser enforces); gauge names must not.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "exported Prometheus metric names must be epoc_-prefixed snake_case (counters end _total, gauges do not)",
	Run:  runMetricname,
}

var metricNameRE = regexp.MustCompile(`^epoc_[a-z][a-z0-9_]*$`)

// metricNameProblem returns "" for a well-formed name, else a short
// description of what is wrong with it.
func metricNameProblem(name string) string {
	switch {
	case !metricNameRE.MatchString(name):
		return "must be epoc_-prefixed lowercase snake_case ([a-z0-9_], epoc_ first)"
	case strings.Contains(name, "__"):
		return "contains consecutive underscores"
	case strings.HasSuffix(name, "_"):
		return "ends with an underscore"
	default:
		return ""
	}
}

func runMetricname(p *Pass) {
	inMetrics := p.Module.relPath(p.Pkg.Path) == "internal/metrics"
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if tv, ok := p.Info.Types[n]; ok && isMetricsGauge(tv.Type) {
					checkGaugeLit(p, n)
				}
			case *ast.ValueSpec:
				// The rename table is the other half of the exposition
				// surface; it lives only in internal/metrics.
				if inMetrics {
					checkRenameTable(p, n)
				}
			}
			return true
		})
	}
}

// checkGaugeLit validates the Name field of one metrics.Gauge literal,
// keyed or positional (Name is field 0).
func checkGaugeLit(p *Pass, lit *ast.CompositeLit) {
	var nameExpr ast.Expr
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
				nameExpr = kv.Value
			}
			continue
		}
		if i == 0 {
			nameExpr = elt
		}
	}
	name, ok := stringLit(nameExpr)
	if !ok {
		return // computed names are the renderer's sanitize problem
	}
	if problem := metricNameProblem(name); problem != "" {
		p.Reportf(nameExpr.Pos(), "gauge name %q %s", name, problem)
		return
	}
	if strings.HasSuffix(name, "_total") {
		p.Reportf(nameExpr.Pos(), "gauge name %q ends in _total, the counter suffix; scrapers will misread its semantics", name)
	}
}

// checkRenameTable validates the values of the promRenames map: each
// is an exported counter name and must carry the _total suffix.
func checkRenameTable(p *Pass, spec *ast.ValueSpec) {
	for i, nameID := range spec.Names {
		if nameID.Name != "promRenames" || i >= len(spec.Values) {
			continue
		}
		lit, ok := spec.Values[i].(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			name, ok := stringLit(kv.Value)
			if !ok {
				continue
			}
			if problem := metricNameProblem(name); problem != "" {
				p.Reportf(kv.Value.Pos(), "renamed counter %q %s", name, problem)
				continue
			}
			if !strings.HasSuffix(name, "_total") {
				p.Reportf(kv.Value.Pos(), "renamed counter %q must end in _total", name)
			}
		}
	}
}

// stringLit unquotes e when it is a string basic literal.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// isMetricsGauge reports whether t is (a pointer to) the Gauge type of
// this module's internal/metrics package.
func isMetricsGauge(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Gauge" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/metrics")
}
