package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces PR 4's cancellation contract: a context accepted by
// a function must actually flow into the work it guards. Two shapes of
// discarded context are findings:
//
//   - a context.Context parameter the body never reads (including one
//     named _): the caller believes cancellation reaches this call,
//     but it silently cannot;
//   - a call that passes context.Background() or context.TODO() to an
//     in-module function while a context parameter is in scope: the
//     caller's cancellation is cut off mid-pipeline.
//
// Minting a fresh context where none is in scope (main, tests, root
// entry points) is legitimate and not flagged.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context parameters that are accepted but not threaded onward",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Type.Params == nil {
				continue
			}
			hasCtx := false
			for _, field := range fn.Type.Params.List {
				tv, ok := p.Info.Types[field.Type]
				if !ok || !isContextType(tv.Type) {
					continue
				}
				hasCtx = true
				for _, name := range field.Names {
					if name.Name == "_" {
						p.Reportf(name.Pos(), "context parameter is blank; name it and thread it onward, or drop the parameter")
						continue
					}
					obj := p.Info.Defs[name]
					if obj != nil && !objUsed(p, fn.Body, obj) {
						p.Reportf(name.Pos(), "context parameter %s is unused; thread it into the function's calls or drop it", name.Name)
					}
				}
			}
			if hasCtx {
				flagFreshContexts(p, fn.Body)
			}
		}
	}
}

// objUsed reports whether body contains at least one use of obj.
func objUsed(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// flagFreshContexts reports in-module calls inside body that are
// handed a freshly minted context.Background()/context.TODO() even
// though the enclosing function has a context parameter in scope.
func flagFreshContexts(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil || !p.Module.InModule(fn.Pkg().Path()) {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := arg.(*ast.CallExpr)
			if !ok {
				continue
			}
			mint := calleeFunc(p, inner)
			if mint == nil || mint.Pkg() == nil || mint.Pkg().Path() != "context" {
				continue
			}
			if mint.Name() == "Background" || mint.Name() == "TODO" {
				p.Reportf(arg.Pos(), "call to %s discards the in-scope context; pass it instead of context.%s()", fn.FullName(), mint.Name())
			}
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
