package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted expectation regexps from a
// `// want "..."` comment, x/tools analysistest style.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// TestFixtures runs each analyzer over its own mini-module under
// testdata/src/<name>/ and checks the findings against the fixtures'
// want comments: every finding must match a want on its line, every
// want must be claimed by a finding.
func TestFixtures(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("analyzer %s has no fixture directory: %v", name, err)
			}
			mod, err := LoadModule(dir, "epoc")
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			analyzers, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			findings := Unsuppressed(Run(mod, analyzers))
			if len(findings) == 0 {
				t.Errorf("fixture produced no findings; positive cases are missing")
			}
			checkWants(t, mod, findings)
		})
	}
}

// collectWants scans every fixture file for want comments.
func collectWants(t *testing.T, mod *Module) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range mod.Sorted() {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := mod.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, mod *Module, findings []Finding) {
	t.Helper()
	wants := collectWants(t, mod)
	for _, f := range findings {
		text := f.Analyzer + ": " + f.Message
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q matched no finding", w.file, w.line, w.re)
		}
	}
}

// TestIgnoreValidation checks suppression hygiene on the ignores
// fixture: a reasonless ignore, an unknown analyzer name and an
// unparsable directive each yield a "lint" finding, while the
// well-formed ignore silently suppresses its floatcmp target.
func TestIgnoreValidation(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src", "ignores"), "epoc")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	findings := Run(mod, All())

	var unsup []string
	for _, f := range Unsuppressed(findings) {
		unsup = append(unsup, fmt.Sprintf("%s: %s", f.Analyzer, f.Message))
	}
	wantSubstrings := []string{
		`ignore for "floatcmp" is missing the mandatory reason`,
		`ignore names unknown analyzer "nosuchanalyzer"`,
		`malformed ignore`,
	}
	if len(unsup) != len(wantSubstrings) {
		t.Fatalf("got %d unsuppressed findings, want %d:\n%s", len(unsup), len(wantSubstrings), strings.Join(unsup, "\n"))
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(unsup[i], sub) {
			t.Errorf("finding %d = %q, want substring %q", i, unsup[i], sub)
		}
	}

	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			if f.Reason == "" {
				t.Errorf("suppressed finding has no recorded reason: %s", f)
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("got %d suppressed findings, want exactly 1 (the a == b in Clean)", suppressed)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("floatcmp, layering")
	if err != nil || len(got) != 2 || got[0].Name != "floatcmp" || got[1].Name != "layering" {
		t.Fatalf("ByName = %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName accepted an empty list")
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "epoc" {
		t.Fatalf("module path = %q, want epoc", modPath)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("root %s has no go.mod: %v", root, err)
	}
}
