package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Allochot enforces the hot-path allocation budget (ROADMAP item 2:
// steady-state pulse kernels should not allocate per iteration). A
// function opts in with an `//epoc:hot` directive in its doc comment;
// inside any loop of such a function, expressions that allocate are
// findings:
//
//   - make, new, and growing append calls;
//   - composite literals (slice/map/struct literals build a fresh
//     value each pass — hoist them, or index into a preallocated
//     workspace);
//   - function literals (a closure capture allocates);
//   - explicit conversions to an interface type (the value is boxed).
//
// The check is syntactic and local on purpose: a call that allocates
// internally is the callee's business — annotate the callee with
// //epoc:hot and the analyzer follows it there. Loop bounds and
// escape analysis are out of scope; an allocation the author knows is
// amortized (e.g. a grow-once append) takes an //epoc:lint-ignore
// with that reasoning.
var Allochot = &Analyzer{
	Name: "allochot",
	Doc:  "flags allocations inside loops of //epoc:hot-annotated functions",
	Run:  runAllochot,
}

// hotDirective is the doc-comment opt-in marker.
const hotDirective = "//epoc:hot"

func runAllochot(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotFunc(fn) {
				continue
			}
			checkHotFunc(p, fn)
		}
	}
}

// isHotFunc reports whether the declaration carries //epoc:hot.
func isHotFunc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotDirective ||
			strings.HasPrefix(strings.TrimSpace(c.Text), hotDirective+" ") {
			return true
		}
	}
	return false
}

// checkHotFunc flags allocations inside the function's loops.
func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	walkUnit(fn.Body, func(n ast.Node) {
		var body *ast.BlockStmt
		var post ast.Stmt
		switch l := n.(type) {
		case *ast.ForStmt:
			body, post = l.Body, l.Post
		case *ast.RangeStmt:
			body = l.Body
		default:
			return
		}
		reportAllocs(p, body)
		if post != nil {
			reportAllocs(p, post)
		}
	})
}

// reportAllocs walks one loop body (not descending into function
// literals: the literal itself is the finding, what it does when
// called is its own unit) and reports each allocating expression.
// Nested loops are skipped here — walkUnit in checkHotFunc visits
// them as loops in their own right, so each allocation is reported
// exactly once.
func reportAllocs(p *Pass, root ast.Node) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n != root {
				return false
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure allocated inside a hot loop; hoist it out of the loop or pass state explicitly")
			return false
		case *ast.CompositeLit:
			p.Reportf(n.Pos(), "composite literal allocates inside a hot loop; hoist it or reuse a preallocated workspace")
			return false // inner literals are part of the same allocation
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(p.Info, n, "make"):
				p.Reportf(n.Pos(), "make inside a hot loop allocates per iteration; preallocate outside the loop")
			case isBuiltinCall(p.Info, n, "new"):
				p.Reportf(n.Pos(), "new inside a hot loop allocates per iteration; preallocate outside the loop")
			case isBuiltinCall(p.Info, n, "append"):
				p.Reportf(n.Pos(), "append inside a hot loop may grow per iteration; presize the slice outside the loop")
			}
			if convertsToInterface(p, n) {
				p.Reportf(n.Pos(), "conversion to an interface type boxes the value inside a hot loop; keep it concrete")
			}
		}
		return true
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n == root {
			return true
		}
		return visit(n)
	})
}

// convertsToInterface reports whether call is an explicit conversion
// T(v) where T is an interface type and v is not.
func convertsToInterface(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	if !types.IsInterface(tv.Type) {
		return false
	}
	argTV, ok := p.Info.Types[call.Args[0]]
	return ok && argTV.Type != nil && !types.IsInterface(argTV.Type)
}
