package lint

import (
	"go/ast"
	"go/types"
)

// callGraph is the module-level static call graph: for every declared
// function or method, the set of in-module functions it calls
// directly (including calls made from function literals nested inside
// it — a closure's calls are attributed to the declaring function,
// which matches how join/cleanup responsibilities flow in this
// codebase). Indirect calls through function values and interface
// methods are not resolved; analyzers that consult the graph
// (goleak) treat "unresolvable" as "no evidence" and lean on
// suppression comments for the rare dynamic dispatch site.
type callGraph struct {
	nodes map[*types.Func]*callNode
}

type callNode struct {
	decl    *ast.FuncDecl
	pkg     *Package
	callees []*types.Func // in-module static callees, in source order
}

// callGraph returns the module's call graph, building it on first use.
// Run drives analyzers sequentially, so no locking is needed.
func (m *Module) callGraph() *callGraph {
	if m.cg != nil {
		return m.cg
	}
	cg := &callGraph{nodes: map[*types.Func]*callNode{}}
	for _, pkg := range m.Sorted() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &callNode{decl: fd, pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(pkg.Info, call)
					if callee != nil && callee.Pkg() != nil && m.InModule(callee.Pkg().Path()) {
						node.callees = append(node.callees, callee)
					}
					return true
				})
				cg.nodes[fn] = node
			}
		}
	}
	m.cg = cg
	return cg
}

// node returns the graph node for fn, nil when fn is not a declared
// in-module function (or has no body).
func (g *callGraph) node(fn *types.Func) *callNode {
	return g.nodes[fn]
}

// anyReachable reports whether pred holds for fn's declaration or for
// any function transitively reachable from it within maxDepth calls.
// pred receives each visited node; depth 0 checks only fn itself.
func (g *callGraph) anyReachable(fn *types.Func, maxDepth int, pred func(*callNode) bool) bool {
	seen := map[*types.Func]bool{}
	var visit func(f *types.Func, depth int) bool
	visit = func(f *types.Func, depth int) bool {
		if seen[f] {
			return false
		}
		seen[f] = true
		n := g.nodes[f]
		if n == nil {
			return false
		}
		if pred(n) {
			return true
		}
		if depth >= maxDepth {
			return false
		}
		for _, callee := range n.callees {
			if visit(callee, depth+1) {
				return true
			}
		}
		return false
	}
	return visit(fn, 0)
}

// isBuiltinCall reports whether call invokes the predeclared builtin
// of the given name (append, close, make, ...). The identifier must
// resolve to a *types.Builtin — a user function shadowing the name
// resolves to a *types.Func and does not match.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// calleeOf resolves the called function object of call using info,
// unwrapping parens; nil for builtins, conversions and indirect
// calls. This is calleeFunc without the Pass plumbing, shared with
// the call-graph builder which runs outside any single pass.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := call.Fun
	for {
		paren, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = paren.X
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
