package lint

import (
	"go/ast"
	"go/types"
)

// Goleak flags `go` statements that spawn a goroutine with no
// detectable join path. A goroutine is considered joined when the
// spawned code — the function literal's body, or for a named callee
// anything reachable through the module call graph — contains
// completion evidence:
//
//   - a sync.WaitGroup Done call (the Add/Wait pairing lives at the
//     spawn site, Done in the goroutine);
//   - a channel send or close (the goroutine hands its result or its
//     termination to someone);
//   - a ctx.Done()/ctx.Err() consultation (the goroutine is tied to a
//     context the spawner cancels).
//
// Anything else runs unsupervised: nothing waits for it, nothing can
// stop it, and under `go test` or server shutdown it is a leak.
// Indirect calls (function values, interface methods) cannot be
// traced; a goroutine whose only exit path runs through one needs an
// //epoc:lint-ignore goleak with the reason. The call-graph search is
// depth-limited so a spawn that launders its join through many layers
// is surfaced for a human look rather than silently trusted.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "flags go statements with no detectable join (WaitGroup Done, channel send/close, or ctx-cancel path)",
	Run:  runGoleak,
}

// goleakMaxDepth bounds the call-graph search from a spawned callee.
const goleakMaxDepth = 4

func runGoleak(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoins(p, gs) {
				p.Reportf(gs.Pos(), "goroutine has no detectable join: no WaitGroup Done, channel send/close, or ctx-cancel path; tie its lifetime to a join or suppress with the reason it may outlive its spawner")
			}
			return true
		})
	}
}

// goroutineJoins reports whether the spawned call carries join
// evidence.
func goroutineJoins(p *Pass, gs *ast.GoStmt) bool {
	// go func() { ... }(): inspect the literal body directly.
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return bodyJoins(p, lit.Body)
	}
	// go s.worker() / go run(x): follow the call graph.
	fn := calleeFunc(p, gs.Call)
	if fn == nil {
		return false // indirect call: no evidence
	}
	cg := p.Module.callGraph()
	return cg.anyReachable(fn, goleakMaxDepth, func(n *callNode) bool {
		return n.decl.Body != nil && bodyJoins(p, n.decl.Body)
	})
}

// bodyJoins scans one function body (descending into nested literals:
// a join signaled from a closure the goroutine itself runs still
// counts) for completion evidence. In-module callees are followed
// through the call graph.
func bodyJoins(p *Pass, body *ast.BlockStmt) bool {
	joined := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			if isBuiltinClose(p.Info, n) {
				joined = true
				return false
			}
			fn := calleeFunc(p, n)
			if fn == nil {
				return true
			}
			if isWaitGroupDone(fn) || isCtxSignal(fn) {
				joined = true
				return false
			}
			if fn.Pkg() != nil && p.Module.InModule(fn.Pkg().Path()) {
				callees = append(callees, fn)
			}
		}
		return true
	})
	if joined {
		return true
	}
	cg := p.Module.callGraph()
	for _, fn := range callees {
		if cg.anyReachable(fn, goleakMaxDepth, func(cn *callNode) bool {
			return cn.decl.Body != nil && declJoinsShallow(p, cn)
		}) {
			return true
		}
	}
	return false
}

// declJoinsShallow checks one call-graph node's own body for direct
// evidence, without re-entering the callee recursion (anyReachable
// already walks the graph).
func declJoinsShallow(p *Pass, cn *callNode) bool {
	joined := false
	ast.Inspect(cn.decl.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			if isBuiltinClose(cn.pkg.Info, n) {
				joined = true
				return false
			}
			if fn := calleeOf(cn.pkg.Info, n); fn != nil && (isWaitGroupDone(fn) || isCtxSignal(fn)) {
				joined = true
				return false
			}
		}
		return true
	})
	return joined
}

// isBuiltinClose reports whether call is the predeclared close(ch),
// distinguishing it from a user function that shadows the name.
func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltinCall(info, call, "close")
}

// isWaitGroupDone reports whether fn is (*sync.WaitGroup).Done.
func isWaitGroupDone(fn *types.Func) bool {
	if fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := baseNamed(sig.Recv().Type())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isCtxSignal reports whether fn is context.Context.Done or .Err —
// the goroutine consults its context, so cancellation reaches it.
func isCtxSignal(fn *types.Func) bool {
	if fn.Name() != "Done" && fn.Name() != "Err" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isContextType(sig.Recv().Type())
}
