package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Spanend enforces PR 5's tracing contract: a *trace.Span obtained in
// a function must be ended on every path out of it, so the trace never
// carries open spans whose durations silently extend to export time.
// The only constructs that guarantee every-path coverage are
//
//	sp := tr.Start("...")
//	defer sp.End()
//
// (directly, or inside a deferred function literal), so a span-typed
// local assigned from a call without one is a finding — a plain
// sp.End() statement misses early returns and panics. Spans that
// escape the function (returned, passed to a call, stored in a field,
// placed in a composite literal) hand their lifetime to the caller and
// are not flagged; internal/trace itself, which constructs spans, is
// skipped.
var Spanend = &Analyzer{
	Name: "spanend",
	Doc:  "requires defer sp.End() on every locally obtained *trace.Span that does not escape",
	Run:  runSpanend,
}

func runSpanend(p *Pass) {
	if p.Module.relPath(p.Pkg.Path) == "internal/trace" {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanUnit(p, fn.Body)
		}
	}
}

// checkSpanUnit analyzes one function body: every span-typed local
// assigned from a call directly in this unit (not in a nested function
// literal, which is its own unit) must be deferred-ended or escape.
// Nested literals are recursed into so per-iteration spans inside
// worker closures get the same check with the closure as their scope.
func checkSpanUnit(p *Pass, body *ast.BlockStmt) {
	walkUnit(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkSpanUnit(p, n.Body)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil || !isSpanPtr(obj.Type()) {
					continue
				}
				// Only spans freshly obtained from a call (Start, Child,
				// or a chained setter) start a lifetime here; aliasing an
				// existing span does not.
				if i < len(n.Rhs) {
					if _, ok := n.Rhs[i].(*ast.CallExpr); !ok {
						continue
					}
				} else if len(n.Rhs) != 1 {
					continue
				} else if _, ok := n.Rhs[0].(*ast.CallExpr); !ok {
					continue
				}
				if !spanHandled(p, body, obj) {
					p.Reportf(id.Pos(), "span %s is not ended on every path; defer %s.End() right after obtaining it (or let it escape to the owner of its lifetime)", id.Name, id.Name)
				}
			}
		}
	})
}

// walkUnit visits the statements of one function unit, handing nested
// *ast.FuncLit nodes to fn without descending into them — their bodies
// are separate units.
func walkUnit(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		fn(n)
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// spanHandled reports whether obj's lifetime is covered inside body:
// a defer ends it on every path, or it escapes to a longer-lived
// owner. The whole body (including nested literals) is searched —
// a deferred closure that ends the span counts wherever it appears.
func spanHandled(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if deferEndsSpan(p, n, obj) {
				handled = true
			}
		case *ast.ReturnStmt:
			if usesObj(p, n, obj) {
				handled = true
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if usesObj(p, arg, obj) {
					handled = true
				}
			}
		case *ast.CompositeLit:
			if usesObj(p, n, obj) {
				handled = true
			}
		case *ast.AssignStmt:
			// A store through a selector or index hands the span to a
			// struct or container that outlives this call.
			rhsUses := false
			for _, rhs := range n.Rhs {
				if usesObj(p, rhs, obj) {
					rhsUses = true
				}
			}
			if rhsUses {
				for _, lhs := range n.Lhs {
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						handled = true
					}
				}
			}
		}
		return !handled
	})
	return handled
}

// deferEndsSpan reports whether d is `defer sp.End()` or a deferred
// function literal whose body calls sp.End().
func deferEndsSpan(p *Pass, d *ast.DeferStmt, obj types.Object) bool {
	if isEndCall(p, d.Call, obj) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	ends := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCall(p, call, obj) {
			ends = true
		}
		return !ends
	})
	return ends
}

// isEndCall reports whether call is obj.End().
func isEndCall(p *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// usesObj reports whether the subtree contains a use of obj.
func usesObj(p *Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// isSpanPtr reports whether t is *trace.Span for this module's
// internal/trace package.
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/trace")
}
