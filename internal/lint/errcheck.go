package lint

import (
	"go/ast"
	"go/types"
)

// Errcheck flags calls to in-module functions whose error or trailing
// (..., ok) result is silently dropped: a bare call statement, or a
// go/defer of such a call. PR 1 exists because exactly this bug
// shipped — synth.SynthesizeBlock's fallback signal was ignored and
// Stats.SynthFallback never counted. Stdlib calls are out of scope
// (go vet and convention cover fmt.Println and friends); the module's
// own APIs return error/ok for control-flow reasons and dropping them
// is always a bug or needs a written justification.
//
// Explicit discards (`_ = f()`, `v, _ := f()`) are allowed: the
// blank identifier is the visible, reviewable form of "I mean it".
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flags discarded error and (..., ok) results from in-module calls",
	Run:  runErrcheck,
}

func runErrcheck(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			verb := ""
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call, verb = n.Call, "go "
			case *ast.DeferStmt:
				call, verb = n.Call, "defer "
			default:
				return true
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || !p.Module.InModule(fn.Pkg().Path()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			res := sig.Results()
			for i := 0; i < res.Len(); i++ {
				if isErrorType(res.At(i).Type()) {
					p.Reportf(call.Pos(), "%serror returned by %s is not checked; handle it or discard with `_ =` and a comment", verb, fn.FullName())
					return true
				}
			}
			if last := res.At(res.Len() - 1); isBoolType(last.Type()) {
				p.Reportf(call.Pos(), "%s(..., %s bool) result of %s is discarded; the ok flag signals fallback/miss and must be consumed", verb, resultName(last), fn.FullName())
			}
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" &&
		types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func resultName(v *types.Var) string {
	if v.Name() != "" {
		return v.Name()
	}
	return "ok"
}
