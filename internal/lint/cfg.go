package lint

import (
	"go/ast"
	"go/token"
)

// This file is the dataflow substrate under the flow-sensitive
// analyzers (lockguard, maporder): an intra-procedural control-flow
// graph built from the AST alone. Like the rest of the framework it
// is pure stdlib — no x/tools/go/cfg — and deliberately small: basic
// blocks hold statements and the conditions that guard their
// successors, in source order, and edges follow Go's structured
// control flow (if/else, for/range with break/continue including
// labels, switch/type-switch/select with fallthrough, goto, return,
// and panic). Defer is modeled by collecting the function's defer
// statements on the side: deferred calls run on every path out, so
// analyzers consult cfg.defers when deciding exit-state questions
// rather than finding them on block paths.
//
// The builder is per function "unit": function literals are separate
// units and are not descended into (a closure runs at an unknown
// time, on an unknown goroutine — flow facts of the enclosing body do
// not apply inside it).

// cfgBlock is one basic block: statements and guard expressions in
// source order, plus successor edges.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic: every return/panic/fall-off-end edge lands here
	blocks []*cfgBlock

	// after maps a compound statement (if/for/range/switch/select) to
	// the block control reaches when the statement completes; maporder
	// starts its post-loop walk there.
	after map[ast.Stmt]*cfgBlock

	// defers lists every defer statement in the unit, in source order.
	// Deferred calls execute on all paths out of the function.
	defers []*ast.DeferStmt
}

// reachableFrom returns the set of blocks reachable from b (inclusive).
func (c *funcCFG) reachableFrom(b *cfgBlock) map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{}
	var visit func(*cfgBlock)
	visit = func(x *cfgBlock) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.succs {
			visit(s)
		}
	}
	visit(b)
	return seen
}

// loopTargets is one break/continue scope.
type loopTargets struct {
	brk  *cfgBlock
	cont *cfgBlock // nil for switch/select scopes (continue passes through)
}

type pendingGoto struct {
	from  *cfgBlock
	label string
	pos   token.Pos
}

type cfgBuilder struct {
	c   *funcCFG
	cur *cfgBlock // nil never happens; unreachable code gets a fresh pred-less block

	scopes        []loopTargets          // innermost last
	labels        map[string]loopTargets // labeled loop/switch break+continue targets
	labelBlocks   map[string]*cfgBlock   // label -> block starting the labeled statement (goto)
	gotos         []pendingGoto
	pendingLabel  string    // label naming the next loop/switch processed
	fallthroughTo *cfgBlock // next case clause during switch body processing
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	c := &funcCFG{after: map[ast.Stmt]*cfgBlock{}}
	b := &cfgBuilder{
		c:           c,
		labels:      map[string]loopTargets{},
		labelBlocks: map[string]*cfgBlock{},
	}
	c.entry = b.newBlock()
	c.exit = b.newBlock()
	b.cur = c.entry
	b.stmts(body.List)
	b.edge(b.cur, c.exit)
	for _, g := range b.gotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, target)
		} else {
			// Label outside the unit (or a parse oddity): treat as exit so
			// the graph stays connected.
			b.edge(g.from, c.exit)
		}
	}
	return c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.nodes = append(b.cur.nodes, n) }

// startUnreachable begins a fresh block with no predecessors, for code
// after a terminating statement.
func (b *cfgBuilder) startUnreachable() { b.cur = b.newBlock() }

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement now being
// built, registering its break/continue targets.
func (b *cfgBuilder) takeLabel(t loopTargets) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = t
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after
		b.c.after[s] = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *cfgBlock
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.takeLabel(loopTargets{brk: after, cont: cont})
		b.scopes = append(b.scopes, loopTargets{brk: after, cont: cont})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmt(s.Body)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = after
		b.c.after[s] = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself stands for the per-iteration
		// key/value binding and the use of the ranged expression.
		head.nodes = append(head.nodes, s)
		after := b.newBlock()
		b.edge(head, after)
		b.takeLabel(loopTargets{brk: after, cont: head})
		b.scopes = append(b.scopes, loopTargets{brk: after, cont: head})
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmt(s.Body)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.edge(b.cur, head)
		b.cur = after
		b.c.after[s] = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitch(s, s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildSwitch(s, s.Body, false)

	case *ast.SelectStmt:
		b.buildSwitch(s, s.Body, true)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		b.labelBlocks[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.c.exit)
		b.startUnreachable()

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t, ok := b.branchTarget(s, false); ok {
				b.edge(b.cur, t)
			}
			b.startUnreachable()
		case token.CONTINUE:
			if t, ok := b.branchTarget(s, true); ok {
				b.edge(b.cur, t)
			}
			b.startUnreachable()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name, pos: s.Pos()})
			b.startUnreachable()
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.cur, b.fallthroughTo)
			}
			b.startUnreachable()
		}

	case *ast.DeferStmt:
		b.c.defers = append(b.c.defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.cur, b.c.exit)
			b.startUnreachable()
		}

	default:
		// Assignments, sends, inc/dec, declarations, go statements,
		// empty statements: straight-line nodes.
		b.add(s)
	}
}

// buildSwitch handles switch, type switch and select bodies: the
// current block fans out to every clause; clause bodies converge on
// the after block. A switch without a default also edges straight to
// after; a select without a default has no such edge (it blocks until
// a case is ready).
func (b *cfgBuilder) buildSwitch(s ast.Stmt, body *ast.BlockStmt, isSelect bool) {
	head := b.cur
	after := b.newBlock()
	b.takeLabel(loopTargets{brk: after})
	b.scopes = append(b.scopes, loopTargets{brk: after})

	// Pre-create clause blocks so fallthrough can target the next one.
	var clauseBlocks []*cfgBlock
	hasDefault := false
	for _, cs := range body.List {
		clauseBlocks = append(clauseBlocks, b.newBlock())
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	savedFall := b.fallthroughTo
	for i, cs := range body.List {
		cb := clauseBlocks[i]
		b.edge(head, cb)
		b.cur = cb
		b.fallthroughTo = nil
		if i+1 < len(clauseBlocks) {
			b.fallthroughTo = clauseBlocks[i+1]
		}
		switch cc := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.add(e)
			}
			b.stmts(cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
		}
		b.edge(b.cur, after)
	}
	b.fallthroughTo = savedFall
	if !hasDefault && !isSelect {
		b.edge(head, after)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
	b.c.after[s] = after
}

// branchTarget resolves a break/continue to its block. Unlabeled
// continue skips switch/select scopes (they have no cont target).
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isContinue bool) (*cfgBlock, bool) {
	if s.Label != nil {
		t, ok := b.labels[s.Label.Name]
		if !ok {
			return nil, false
		}
		if isContinue {
			return t.cont, t.cont != nil
		}
		return t.brk, t.brk != nil
	}
	for i := len(b.scopes) - 1; i >= 0; i-- {
		t := b.scopes[i]
		if isContinue {
			if t.cont != nil {
				return t.cont, true
			}
			continue // switch/select: continue belongs to the enclosing loop
		}
		return t.brk, true
	}
	return nil, false
}

// isPanicCall reports whether e is a call to the predeclared panic.
// A shadowed `panic` identifier would misclassify, but the repo's
// conventions (and gofmt-era Go at large) never shadow it.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
