package lint

import (
	"go/ast"
	"testing"
)

// TestRepoIsLintClean runs the full analyzer suite over the real
// module and fails on any unsuppressed finding — the permanent guard
// that keeps the repository lint-clean: a future raw float comparison,
// global-rand draw, undeclared import edge, dropped error or copied
// lock fails `go test ./...`, not just `make lint`.
func TestRepoIsLintClean(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root, modPath)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}

	findings := Run(mod, All())
	for _, f := range Unsuppressed(findings) {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Log("fix the finding or add `//epoc:lint-ignore <analyzer> <reason>` on (or above) the line; see DESIGN.md §8")
	}

	// Table hygiene: every layeringDAG entry must name a real package,
	// so deleted or renamed packages cannot leave stale DAG rows.
	for rel := range layeringDAG {
		if _, ok := mod.Packages[modPath+"/"+rel]; !ok {
			t.Errorf("layeringDAG entry %q names no package in the module; update the table and ARCHITECTURE.md", rel)
		}
	}

	// Suppression audit: count stays visible in -v output so reviewers
	// notice when the ignore inventory grows.
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		}
	}
	t.Logf("suite clean: %d analyzers over %d packages, %d reasoned suppressions", len(All()), len(mod.Packages), suppressed)
}

// TestSuiteRoster pins the registered analyzer set: adding an
// analyzer means registering it in All(), giving it a fixture
// (TestFixtures enforces that) and listing it here and in DESIGN.md §8.
func TestSuiteRoster(t *testing.T) {
	want := []string{
		"floatcmp", "globalrand", "layering", "errcheck", "copylockplus",
		"ctxflow", "spanend", "maporder", "lockguard", "goleak", "allochot",
		"metricname",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("analyzer %d = %q, want %q", i, got[i], name)
		}
	}
}

// TestHotAnnotationsPresent pins the //epoc:hot seed set: the GRAPE
// propagator path and the dense linalg kernels must stay annotated so
// allochot keeps watching them (acceptance criterion for the
// hot-path allocation budget).
func TestHotAnnotationsPresent(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root, modPath)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	want := map[string][]string{
		"internal/qoc":      {"grapeFrom", "traceProduct", "update", "slotHamiltonianInto"},
		"internal/linalg":   {"Transpose", "Adjoint", "Kron", "EigHermitianInto", "ExpIHermitianInto", "ExpIFromEigInto"},
		"internal/opt":      {"LBFGS"},
		"internal/densesim": {"ApplyUnitary"},
	}
	for rel, fns := range want {
		pkg := mod.Packages[modPath+"/"+rel]
		if pkg == nil {
			t.Fatalf("package %s missing", rel)
		}
		hot := map[string]bool{}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && isHotFunc(fn) {
					hot[fn.Name.Name] = true
				}
			}
		}
		for _, name := range fns {
			if !hot[name] {
				t.Errorf("%s.%s has lost its //epoc:hot annotation", rel, name)
			}
		}
	}
}
