package lint

import (
	"testing"
)

// TestRepoIsLintClean runs the full analyzer suite over the real
// module and fails on any unsuppressed finding — the permanent guard
// that keeps the repository lint-clean: a future raw float comparison,
// global-rand draw, undeclared import edge, dropped error or copied
// lock fails `go test ./...`, not just `make lint`.
func TestRepoIsLintClean(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root, modPath)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}

	findings := Run(mod, All())
	for _, f := range Unsuppressed(findings) {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Log("fix the finding or add `//epoc:lint-ignore <analyzer> <reason>` on (or above) the line; see DESIGN.md §8")
	}

	// Table hygiene: every layeringDAG entry must name a real package,
	// so deleted or renamed packages cannot leave stale DAG rows.
	for rel := range layeringDAG {
		if _, ok := mod.Packages[modPath+"/"+rel]; !ok {
			t.Errorf("layeringDAG entry %q names no package in the module; update the table and ARCHITECTURE.md", rel)
		}
	}

	// Suppression audit: count stays visible in -v output so reviewers
	// notice when the ignore inventory grows.
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		}
	}
	t.Logf("suite clean: %d analyzers over %d packages, %d reasoned suppressions", len(All()), len(mod.Packages), suppressed)
}
