package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Globalrand forbids process-global randomness inside internal/*.
// PR 2's guarantee — byte-identical pipeline output at any Workers
// count — only holds if every random draw flows through an injected,
// explicitly seeded *rand.Rand. The math/rand package-level functions
// share one hidden source whose consumption order depends on goroutine
// scheduling, and a time.Now()-derived seed makes two runs of the same
// compile disagree, which poisons phase-keyed caches and golden tests.
//
// Allowed: constructing sources (rand.New, rand.NewSource, rand.NewZipf
// and the v2 equivalents) from fixed seeds, and everything on an
// injected *rand.Rand value.
var Globalrand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbids math/rand global functions and time.Now()-derived seeds in internal/*",
	Run:  runGlobalrand,
}

// globalrandConstructors are the math/rand functions that build a new
// explicit source rather than draw from the hidden global one.
var globalrandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalrand(p *Pass) {
	if !strings.HasPrefix(p.Pkg.Path, p.Module.Path+"/internal/") {
		return
	}

	// Pass 1: any use of a math/rand package-level function outside
	// the constructor allowlist draws from the hidden global source.
	type use struct {
		id *ast.Ident
		fn *types.Func
	}
	var uses []use
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			continue // methods on *rand.Rand / rand.Source are the sanctioned path
		}
		if globalrandConstructors[fn.Name()] {
			continue
		}
		uses = append(uses, use{id, fn})
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })
	for _, u := range uses {
		p.Reportf(u.id.Pos(), "%s.%s draws from the process-global rand source; inject a seeded *rand.Rand instead (determinism at any Workers count)", u.fn.Pkg().Path(), u.fn.Name())
	}

	// Pass 2: constructors are fine, but not when seeded from the
	// wall clock — that defeats reproducibility just as thoroughly.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) || !globalrandConstructors[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if now := findTimeNow(p, arg); now != nil {
					p.Reportf(now.Pos(), "rand source seeded from time.Now(); use a fixed or caller-injected seed so runs are reproducible")
				}
			}
			return true
		})
	}
}

// findTimeNow returns the first time.Now() call anywhere inside e.
func findTimeNow(p *Pass, e ast.Expr) ast.Expr {
	var hit ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			hit = call
			return false
		}
		return true
	})
	return hit
}

// calleeFunc resolves the called function object of call, unwrapping
// parens; nil for builtins, conversions and indirect calls.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	return calleeOf(p.Info, call)
}
