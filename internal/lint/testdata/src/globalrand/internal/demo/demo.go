// Package demo exercises the globalrand analyzer: math/rand global
// functions and wall-clock seeds are flagged inside internal/*, while
// injected seeded sources pass.
package demo

import (
	"math/rand"
	"time"
)

func Violations() float64 {
	n := rand.Intn(10)                           // want "globalrand: math/rand.Intn draws from the process-global rand source"
	f := rand.Float64()                          // want "globalrand: math/rand.Float64 draws from the process-global rand source"
	rand.Shuffle(3, func(i, j int) {})           // want "globalrand: math/rand.Shuffle draws from the process-global rand source"
	src := rand.NewSource(time.Now().UnixNano()) // want "globalrand: rand source seeded from time.Now"
	return float64(n) + f + float64(src.Int63())
}

func Negatives(injected *rand.Rand) float64 {
	rng := rand.New(rand.NewSource(42)) // fixed seed: the sanctioned pattern
	return rng.Float64() + injected.Float64() + float64(injected.Intn(3))
}
