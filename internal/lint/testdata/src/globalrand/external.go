// Package globalrandroot sits outside internal/*: globalrand does not
// apply here (the root facade and cmd/* have their own review rules),
// so the global draw below is a negative case.
package globalrandroot

import "math/rand"

func OutsideInternal() int { return rand.Intn(4) }
