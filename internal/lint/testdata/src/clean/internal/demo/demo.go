// Package demo is deliberately boring: nothing in it trips any
// analyzer. The exit-code contract test in cmd/epoc-lint runs the
// full suite over this tree and requires exit status 0.
package demo

// Add returns a+b.
func Add(a, b int) int { return a + b }

// Sum folds Add over xs.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total = Add(total, x)
	}
	return total
}
