// Package metrics is a fixture stub of the real internal/metrics:
// the Gauge type demo packages construct, and a rename table with
// deliberately broken entries for the metricname analyzer.
package metrics

// Gauge mirrors the real exposition Gauge.
type Gauge struct {
	Name  string
	Help  string
	Value float64
}

// promRenames maps obs counter names to their exported Prometheus
// names; every value is part of the scrape surface.
var promRenames = map[string]string{
	"synthcache/hit": "epoc_synthcache_hits_total",
	"library/hits":   "epoc_Library_hits_total",   // want "renamed counter .* snake_case"
	"store/flushed":  "epoc_store_flushed",        // want "must end in _total"
	"store/corrupt":  "epoc_store__corrupt_total", // want "consecutive underscores"
}

// use keeps the table referenced so the fixture type-checks cleanly.
func use() int { return len(promRenames) }

var _ = use
