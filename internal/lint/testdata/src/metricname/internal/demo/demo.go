// Package demo exercises the metricname analyzer on Gauge literals:
// names flow into the Prometheus exposition verbatim, so every
// literal Name is checked, keyed or positional.
package demo

import "epoc/internal/metrics"

// Gauges returns the demo server's gauge set.
func Gauges(depth int) []metrics.Gauge {
	return []metrics.Gauge{
		{Name: "epoc_serve_queue_depth", Help: "ok", Value: float64(depth)},
		{Name: "epoc_Serve_inflight", Help: "capital letter", Value: 0},       // want "gauge name .* snake_case"
		{Name: "queue_depth", Help: "missing prefix", Value: 0},               // want "gauge name .* snake_case"
		{Name: "epoc_serve_requests_total", Help: "counter suffix", Value: 0}, // want "ends in _total"
		{Name: "epoc_serve_depth_", Help: "trailing underscore", Value: 0},    // want "underscore"
		{"epoc_bad-name", "positional", 1},                                    // want "gauge name .* snake_case"
	}
}

// Dynamic names are out of scope: the renderer sanitizes them.
func dynamic(name string) metrics.Gauge {
	return metrics.Gauge{Name: "epoc_" + name, Help: "computed"}
}

var _ = dynamic
