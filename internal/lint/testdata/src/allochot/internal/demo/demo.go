// Package demo exercises the allochot analyzer: functions annotated
// //epoc:hot must not allocate inside their loops.
package demo

type point struct{ x, y float64 }

// AxpyInPlace is the shape hot kernels should have: all memory comes
// from the caller, the loop only indexes.
//
//epoc:hot
func AxpyInPlace(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// MakePerIter allocates a fresh row every pass.
//
//epoc:hot
func MakePerIter(n int, rows [][]float64) {
	for i := 0; i < n; i++ {
		row := make([]float64, n) // want "allochot: make inside a hot loop"
		rows[i] = row
	}
}

// AppendGrow grows a slice inside the loop.
//
//epoc:hot
func AppendGrow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "allochot: append inside a hot loop"
	}
	return out
}

// NewPerIter boxes a fresh value each pass.
//
//epoc:hot
func NewPerIter(n int, sink []*int) {
	for i := 0; i < n; i++ {
		sink[i] = new(int) // want "allochot: new inside a hot loop"
	}
}

// Lits builds a composite literal per iteration.
//
//epoc:hot
func Lits(ps []point) float64 {
	s := 0.0
	for _, p := range ps {
		q := point{p.x, p.y} // want "allochot: composite literal allocates inside a hot loop"
		s += q.x
	}
	return s
}

// Closures captures per iteration.
//
//epoc:hot
func Closures(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		f := func() float64 { return x } // want "allochot: closure allocated inside a hot loop"
		s += f()
	}
	return s
}

// Boxing converts to an interface inside the loop.
//
//epoc:hot
func Boxing(xs []int) int {
	total := 0
	for _, x := range xs {
		v := any(x) // want "allochot: conversion to an interface type boxes the value"
		total += v.(int)
	}
	return total
}

// helper keeps its own allocation profile; calls are the callee's
// business.
func helper(x float64) float64 { return x * 2 }

// Calls is clean: the loop body only calls and indexes.
//
//epoc:hot
func Calls(a, b []float64) {
	for i := range a {
		a[i] = helper(b[i])
	}
}

// Cold allocates freely: it never opted in.
func Cold(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Hoisted allocates before the loop: clean.
//
//epoc:hot
func Hoisted(n int) []float64 {
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(i)
	}
	return buf
}
