// Package demo exercises the floatcmp analyzer: raw float/complex
// equality is flagged, while NaN probes, integer comparisons,
// constant folding, allowlisted kernels and reasoned ignores are not.
package demo

import "math"

func Violations(a, b float64, c, d complex128, xs []float64) bool {
	if a == b { // want "floatcmp: float64 values compared with =="
		return true
	}
	if c != d { // want "floatcmp: complex128 values compared with !="
		return true
	}
	if a == 0.25 { // want "floatcmp: float64 values compared with =="
		return true
	}
	switch a { // want "floatcmp: switch on float64 value"
	case 1.0:
		return true
	}
	for _, x := range xs {
		if x == math.Pi { // want "floatcmp: float64 values compared with =="
			return true
		}
	}
	return false
}

func Negatives(a float64, n, m int) bool {
	if a != a { // NaN probe: allowed
		return true
	}
	if n == m { // ints: not floatcmp's business
		return true
	}
	const x = 1.5
	const y = 2.5
	if x == y { // both constant: folded at compile time
		return true
	}
	//epoc:lint-ignore floatcmp fixture: demonstrates a reasoned suppression
	if a == 3.5 {
		return true
	}
	return a > 1
}
