// Package linalg mirrors the real module's tolerance kernel so the
// fixture proves the floatcmpAllowed table works: PhaseDistance may
// compare floats raw, anything else in the package may not.
package linalg

// PhaseDistance is allowlisted in floatcmpAllowed: no finding, even
// though it compares floats with ==.
func PhaseDistance(a, b float64) float64 {
	if a == b {
		return 0
	}
	return b - a
}

// NotAllowlisted is an ordinary function: same comparison, flagged.
func NotAllowlisted(a, b float64) bool {
	return a == b // want "floatcmp: float64 values compared with =="
}
