// Package trace is a fixture stub of the real internal/trace: just
// enough surface for the spanend demo to type-check. The analyzer
// skips this package itself (it constructs spans).
package trace

type Tracer struct{}

func New() *Tracer { return &Tracer{} }

func (t *Tracer) Start(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) Child(name string) *Span        { return &Span{} }
func (s *Span) End()                           {}
func (s *Span) SetStr(k, v string) *Span       { return s }
func (s *Span) SetInt(k string, v int64) *Span { return s }
func (s *Span) SetBool(k string, v bool) *Span { return s }
