// Package demo exercises the spanend analyzer: a span obtained in a
// function must be deferred-ended or escape to its lifetime's owner.
package demo

import "epoc/internal/trace"

type holder struct {
	sp *trace.Span
}

// DeferDirect is the canonical clean shape.
func DeferDirect(tr *trace.Tracer) {
	sp := tr.Start("work")
	defer sp.End()
}

// DeferChained: a chained setter still yields the same span.
func DeferChained(tr *trace.Tracer) {
	sp := tr.Start("work").SetStr("k", "v").SetInt("n", 1)
	defer sp.End()
}

// DeferInLiteral: ending inside a deferred closure counts.
func DeferInLiteral(tr *trace.Tracer) {
	sp := tr.Start("work")
	defer func() {
		sp.SetBool("done", true)
		sp.End()
	}()
}

// EscapeReturn hands the lifetime to the caller.
func EscapeReturn(tr *trace.Tracer) *trace.Span {
	sp := tr.Start("work")
	return sp
}

// EscapeArg hands the span to another function.
func EscapeArg(tr *trace.Tracer) {
	sp := tr.Start("work")
	annotate(sp)
}

func annotate(sp *trace.Span) { defer sp.End() }

// EscapeField stores the span in a struct that outlives the call.
func EscapeField(tr *trace.Tracer, h *holder) {
	sp := tr.Start("work")
	h.sp = sp
}

// EscapeLiteral places the span in a composite literal.
func EscapeLiteral(tr *trace.Tracer) holder {
	sp := tr.Start("work")
	return holder{sp: sp}
}

// Alias copies an existing pointer; no new lifetime starts.
func Alias(sp *trace.Span) {
	alias := sp
	alias.SetStr("k", "v")
}

// Leaked never ends the span.
func Leaked(tr *trace.Tracer) {
	sp := tr.Start("work") // want "spanend: span sp is not ended on every path"
	sp.SetStr("k", "v")
}

// PlainEnd misses early returns and panics; only defer covers every
// path.
func PlainEnd(tr *trace.Tracer, fail bool) error {
	sp := tr.Start("work") // want "spanend: span sp is not ended on every path"
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

// LeakedChild: children need ending too.
func LeakedChild(parent *trace.Span) {
	child := parent.Child("sub") // want "spanend: span child is not ended on every path"
	child.SetInt("n", 2)
}

// ClosureLeak: a span obtained inside a worker closure is scoped to
// the closure, and the closure never ends it.
func ClosureLeak(tr *trace.Tracer) func() {
	return func() {
		sp := tr.Start("iter") // want "spanend: span sp is not ended on every path"
		sp.SetStr("k", "v")
	}
}

// ClosureClean: per-iteration spans deferred inside the closure are
// the intended worker-pool shape.
func ClosureClean(tr *trace.Tracer) func() {
	return func() {
		sp := tr.Start("iter")
		defer sp.End()
	}
}

// Suppressed: an acknowledged leak with a reason stays quiet.
func Suppressed(tr *trace.Tracer) {
	//epoc:lint-ignore spanend process-lifetime span, ended at exit
	sp := tr.Start("daemon")
	sp.SetStr("k", "v")
}

var errFail = error(nil)
