// Package demo exercises the ctxflow analyzer: contexts must flow
// into the work they guard, not stop at a signature.
package demo

import "context"

// Step is the in-module context-taking callee.
func Step(ctx context.Context) error { return ctx.Err() }

// Forward threads its context on: clean.
func Forward(ctx context.Context) error { return Step(ctx) }

// Root has no context in scope, so minting one is legitimate.
func Root() error { return Step(context.Background()) }

func Dropped(ctx context.Context) error { // want "ctxflow: context parameter ctx is unused"
	return nil
}

func Blank(_ context.Context) error { // want "ctxflow: context parameter is blank"
	return nil
}

func Fresh(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Step(context.Background()) // want "ctxflow: call to .*Step discards the in-scope context"
}

func Todo(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return Step(context.TODO()) // want "ctxflow: call to .*Step discards the in-scope context"
}

// Closure: a context in scope covers function literals too.
func InClosure(ctx context.Context) func() error {
	_ = ctx.Err()
	return func() error {
		return Step(context.Background()) // want "ctxflow: call to .*Step discards the in-scope context"
	}
}

// Suppressions carry a reason, as everywhere in epoc-lint.
func Reasoned(ctx context.Context) error {
	_ = ctx.Err()
	//epoc:lint-ignore ctxflow fixture: detached background work must outlive the request
	return Step(context.Background())
}
