package demo

import "fmt"

func Violations() {
	Fallible()       // want "errcheck: error returned by epoc/internal/demo.Fallible is not checked"
	Lookup("k")      // want "errcheck: .* result of epoc/internal/demo.Lookup is discarded"
	defer Fallible() // want "errcheck: defer error returned by epoc/internal/demo.Fallible is not checked"
	go Fallible()    // want "errcheck: go error returned by epoc/internal/demo.Fallible is not checked"
}

func Negatives() {
	if err := Fallible(); err != nil {
		_ = err
	}
	_ = Fallible() // explicit discard: the reviewable form of "I mean it"
	if v, ok := Lookup("k"); ok {
		_ = v
	}
	Value()            // no error/ok result
	fmt.Println("out") // stdlib: out of scope
	//epoc:lint-ignore errcheck fixture: demonstrates a reasoned suppression
	Fallible()
}
