// Package demo exercises the errcheck analyzer with an in-module API
// whose error and ok results must be consumed.
package demo

import "errors"

// Fallible returns an error that callers must check.
func Fallible() error { return errors.New("boom") }

// Lookup mimics synth.SynthesizeBlock's (value, ok) signature.
func Lookup(k string) (int, bool) { return 0, k != "" }

// Value has no error/ok result; bare calls are fine.
func Value() int { return 7 }
