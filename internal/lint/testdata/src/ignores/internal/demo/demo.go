// Package demo exercises suppression hygiene: a reasonless ignore, an
// ignore naming an unknown analyzer, and an unparsable directive are
// each findings of the pseudo-analyzer "lint"; a well-formed ignore
// suppresses its target without any finding.
package demo

//epoc:lint-ignore floatcmp

//epoc:lint-ignore nosuchanalyzer the analyzer name is wrong

//epoc:lint-ignoreMALFORMED text

func Clean(a, b float64) bool {
	//epoc:lint-ignore floatcmp fixture: valid suppression with a reason
	return a == b
}
