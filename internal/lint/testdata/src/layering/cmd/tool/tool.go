// Package tool stands in for a CLI entry point. cmd/* may import any
// internal package (negative case below) but is never imported itself.
package tool

import (
	_ "epoc/internal/linalg"
	_ "epoc/internal/obs"
)

func Main() {}
