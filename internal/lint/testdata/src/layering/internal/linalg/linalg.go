// Package linalg is a clean leaf: no in-module imports, no findings.
package linalg

func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
