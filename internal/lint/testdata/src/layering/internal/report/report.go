// Package report may import obs (declared in the DAG table): this
// import is the negative case.
package report

import (
	_ "epoc/internal/obs"
)

func Render() string { return "" }
