// Package mystery is absent from the layering DAG table, so its
// in-module imports are flagged until the table (and ARCHITECTURE.md)
// declare it. It also tries to import a cmd package, which nothing is
// ever allowed to do.
package mystery

import (
	_ "epoc/cmd/tool"        // want "layering: import of epoc/cmd/tool: cmd/\* packages are entry points"
	_ "epoc/internal/linalg" // want "layering: package epoc/internal/mystery is not in the layering DAG table"
)

func X() {}
