// Package obs must stay dependency-free (a leaf of the DAG): any
// in-module import is a violation.
package obs

import (
	_ "epoc/internal/linalg" // want "layering: import of epoc/internal/linalg is not in the DAG"
)

// Recorder mirrors the real obs.Recorder so copylockplus fixtures can
// reference a lock-free version; layering does not care about bodies.
type Recorder struct{ n int }
