// Package demo exercises the goleak analyzer: every go statement
// needs a detectable join path.
package demo

import (
	"context"
	"sync"
)

// FireAndForget spawns a goroutine nothing waits for.
func FireAndForget() {
	go func() { // want "goleak: goroutine has no detectable join"
		_ = 1 + 1
	}()
}

// WaitGroupJoin is the canonical pattern: Add at the spawn site, Done
// in the goroutine, Wait to join.
func WaitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// SendJoin hands its result to a channel the caller drains.
func SendJoin() <-chan int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return ch
}

// CloseJoin signals termination by closing the channel.
func CloseJoin() <-chan struct{} {
	done := make(chan struct{})
	go func() { close(done) }()
	return done
}

// CtxJoin ties the goroutine's lifetime to a cancelable context.
func CtxJoin(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// worker signals through the channel it is handed.
func worker(ch chan<- int) { ch <- 1 }

// NamedJoin spawns a declared function; the join evidence lives in
// the callee and is found through the call graph.
func NamedJoin() {
	ch := make(chan int)
	go worker(ch)
	<-ch
}

// spin never signals anything.
func spin() {
	for i := 0; ; i++ {
		_ = i
	}
}

// NamedLeak spawns a declared function with no join path anywhere in
// its reachable call graph.
func NamedLeak() {
	go spin() // want "goleak: goroutine has no detectable join"
}

// Indirect spawns through a function value the analyzer cannot
// resolve; no evidence means a finding.
func Indirect(fn func()) {
	go fn() // want "goleak: goroutine has no detectable join"
}

// step wraps the worker one call deep: the search is transitive.
func step(ch chan<- int) { worker(ch) }

// DeepJoin joins through an intermediate callee.
func DeepJoin() {
	ch := make(chan int)
	go step(ch)
	<-ch
}
