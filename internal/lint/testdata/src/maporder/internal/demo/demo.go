// Package demo exercises the maporder analyzer: values iterated out
// of a map must not reach an order-sensitive sink unsorted.
package demo

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// Emit writes each entry as it comes off the map: randomized order.
func Emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "maporder: write inside map iteration"
	}
}

// Hash feeds map keys to a hash in iteration order: the digest is
// different on every run.
func Hash(m map[string]bool) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k)) // want "maporder: write inside map iteration"
	}
	return h.Sum64()
}

// Unsorted returns the accumulated keys without sorting them.
func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: slice keys accumulates map-iteration values"
	}
	return keys
}

// MaybeSorted sorts on one branch only; the other path leaks map
// order to the caller.
func MaybeSorted(m map[string]int, doSort bool) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder: slice keys accumulates map-iteration values"
	}
	if doSort {
		sort.Strings(keys)
	}
	return keys
}

// Sorted is the canonical clean pattern: collect, sort, then use.
func Sorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Count only observes cardinality; `for range` binds nothing.
func Count(w io.Writer, m map[string]int) {
	n := 0
	for range m {
		n++
	}
	fmt.Fprintln(w, n)
}

// LenOnly uses the slice in order-blind ways only.
func LenOnly(m map[string]int) int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return len(keys)
}
