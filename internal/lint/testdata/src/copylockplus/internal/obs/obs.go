// Package obs mirrors the real recorder WITHOUT any sync field: the
// copylockplus analyzer must still refuse to copy it by value, because
// the real Recorder's identity (shared counters) dies on copy.
package obs

// Recorder is special-cased by name in copylockplus.
type Recorder struct{ n int }

func (r *Recorder) Add(delta int) { r.n += delta }
