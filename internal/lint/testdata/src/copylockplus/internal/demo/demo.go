// Package demo exercises copylockplus: by-value parameters, results,
// receivers and range clauses over lock-carrying structs are flagged;
// pointers and index-based ranging pass.
package demo

import (
	"sync"

	"epoc/internal/obs"
)

// Guarded carries a mutex directly.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper carries one transitively.
type Wrapper struct{ g Guarded }

// Traced carries an obs.Recorder by value (flagged even though the
// fixture Recorder has no sync field — identity dies on copy).
type Traced struct{ rec obs.Recorder }

// Safe holds only references: copying it is fine.
type Safe struct {
	mu  *sync.Mutex
	rec *obs.Recorder
}

func ByValueParam(g Guarded) int { // want "copylockplus: parameter passes .*Guarded by value \(contains sync.Mutex\)"
	return g.n
}

func ByValueResult() Wrapper { // want "copylockplus: result passes .*Wrapper by value \(contains sync.Mutex\)"
	return Wrapper{}
}

func (g Guarded) ValueReceiver() int { // want "copylockplus: receiver passes .*Guarded by value \(contains sync.Mutex\)"
	return g.n
}

func TracedParam(t Traced) { // want "copylockplus: parameter passes .*Traced by value \(contains obs.Recorder\)"
	_ = t
}

func RangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "copylockplus: range clause copies .*Guarded by value"
		total += g.n
	}
	return total
}

func Negatives(gs []Guarded, ptrs []*Guarded, s Safe) int {
	total := 0
	for i := range gs { // index ranging: no copy
		total += gs[i].n
	}
	for _, p := range ptrs { // pointers: fine
		total += p.n
	}
	_ = s // Safe holds references only
	return total
}

func PointerParam(g *Guarded) int { return g.n }
