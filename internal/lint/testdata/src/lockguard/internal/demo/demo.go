// Package demo exercises the lockguard analyzer's explicit mode: a
// `// guards:` comment on the mutex field ties it to the fields it
// protects.
package demo

import "sync"

// Counter demonstrates the explicit tie. name sits outside the
// guards list and may be read freely (it is set once at construction).
type Counter struct {
	mu   sync.Mutex // guards: n, last
	n    int
	last string

	name string
}

// Inc holds the lock across both guarded writes: clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.last = "inc"
	c.mu.Unlock()
}

// DeferStyle uses the deferred unlock; the lock is held until return.
func (c *Counter) DeferStyle() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.last = "peek"
	return c.last
}

// Bad reads a guarded field with no lock at all.
func (c *Counter) Bad() int {
	return c.n // want "lockguard: field n is guarded by mu"
}

// AfterUnlock releases the lock and keeps writing.
func (c *Counter) AfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.last = "late" // want "lockguard: field last is guarded by mu"
}

// BranchBad only locks on one path; at the join the lock may not be
// held.
func (c *Counter) BranchBad(lock bool) int {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n // want "lockguard: field n is guarded by mu"
}

// value is lock-free by contract. The caller must hold c.mu.
func (c *Counter) value() int { return c.n }

// Snapshot composes the documented helper under the lock: clean.
func (c *Counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.value()
}

// Name reads an unguarded field: clean.
func (c *Counter) Name() string { return c.name }
