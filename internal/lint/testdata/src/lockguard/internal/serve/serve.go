// Package serve exercises the lockguard adjacency mode: in
// internal/serve (and internal/store, internal/pulse) the fields
// following a mu field up to the first blank line are implicitly
// guarded by it — no comment required.
package serve

import "sync"

// Server uses the adjacency idiom: jobs and count ride directly under
// mu; addr sits after the blank line and is unguarded.
type Server struct {
	mu    sync.Mutex
	jobs  map[string]int
	count int

	addr string
}

// Add mutates the guarded block under the lock: clean.
func (s *Server) Add(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[id]++
	s.count++
}

// Peek reads the guarded map without locking.
func (s *Server) Peek(id string) int {
	return s.jobs[id] // want "lockguard: field jobs is guarded by mu"
}

// Addr reads past the blank-line cutoff: clean.
func (s *Server) Addr() string { return s.addr }
