package lint

import (
	"sort"
	"strconv"
	"strings"
)

// Layering enforces the package import DAG documented in
// ARCHITECTURE.md ("Enforced import DAG"). The table below is the
// machine-readable copy: each internal package lists the in-module
// packages it may import, and anything else is a finding. On top of
// the table, three structural rules always hold:
//
//   - cmd/* is never imported by anyone;
//   - internal/* never imports cmd/*, examples/*, or the root facade;
//   - an internal package with in-module imports must appear in the
//     table, so the DAG cannot drift undocumented.
//
// cmd/* may import the facade and any internal package; examples/*
// may import anything except cmd/* and other examples; the root
// facade imports only internal/*.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforces the ARCHITECTURE.md import DAG (obs/linalg/opt are leaves, internal never imports cmd)",
	Run:  runLayering,
}

// layeringDAG is the single source of truth for the internal import
// DAG, keyed by module-relative package path. Keep the table and the
// ARCHITECTURE.md "Enforced import DAG" section in sync — the
// self-check test fails if code drifts from this table.
var layeringDAG = map[string][]string{
	// Leaves: depend on nothing in-module. obs must stay dependency-free
	// (PR 1), linalg and opt are the numerical foundation, and
	// faultclock is the cancellation/budget gate threaded through the
	// pipeline's loops (PR 4) — a leaf so every layer can carry it.
	// trace is a leaf by the same argument as faultclock: it declares
	// its own Clock interface (satisfied structurally by faultclock's
	// fake), so every layer can carry spans without new edges.
	// logx is a leaf too: it takes trace/span IDs as plain strings
	// instead of importing internal/trace, so any layer can carry a
	// logger without new edges.
	"internal/faultclock": {},
	"internal/gate":       {"internal/linalg"},
	"internal/lint":       {},
	"internal/logx":       {},
	"internal/obs":        {},
	"internal/opt":        {},
	"internal/trace":      {},

	// The profiled kernel layer sits beneath linalg: raw []complex128
	// kernels and the workspace arena, no in-module deps. linalg routes
	// every product through it; hot loops elsewhere (qoc, densesim)
	// import it directly for workspace plumbing. kerneltest is the
	// differential harness proving kernel ≡ naive reference.
	"internal/linalg":            {"internal/linalg/kernel"},
	"internal/linalg/kernel":     {},
	"internal/linalg/kerneltest": {"internal/linalg", "internal/linalg/kernel"},

	// Circuit IR and its direct consumers.
	"internal/benchcirc": {"internal/circuit", "internal/gate"},
	"internal/circuit":   {"internal/gate", "internal/linalg"},
	"internal/densesim":  {"internal/circuit", "internal/gate", "internal/linalg", "internal/linalg/kernel"},
	"internal/optimize":  {"internal/circuit", "internal/gate", "internal/linalg"},
	"internal/partition": {"internal/circuit", "internal/gate", "internal/linalg"},
	"internal/qasm":      {"internal/circuit", "internal/gate"},
	"internal/route":     {"internal/circuit", "internal/gate"},
	"internal/sim":       {"internal/circuit", "internal/linalg"},
	"internal/zx":        {"internal/circuit", "internal/gate", "internal/optimize"},

	// The telemetry exposition sits directly on obs: it renders
	// snapshots, never records.
	"internal/metrics": {"internal/obs"},

	// Pulse/QOC layer.
	"internal/debugsrv": {"internal/metrics", "internal/obs"},
	"internal/hardware": {"internal/gate", "internal/qoc"},
	"internal/pulse":    {"internal/linalg"},
	"internal/qoc":      {"internal/faultclock", "internal/gate", "internal/linalg", "internal/linalg/kernel", "internal/obs", "internal/opt", "internal/trace"},
	"internal/report":   {"internal/obs", "internal/trace"},
	"internal/synth":    {"internal/circuit", "internal/faultclock", "internal/gate", "internal/linalg", "internal/obs", "internal/opt", "internal/optimize", "internal/trace"},

	// Persistence for the pulse library and synthesis cache: sits beside
	// the caches it serializes, plus report for the namespace
	// fingerprint. core and serve sit above it; it never imports them.
	"internal/store": {
		"internal/circuit", "internal/gate", "internal/linalg",
		"internal/pulse", "internal/report", "internal/synth",
	},

	// The pipeline orchestrator sits on top of everything.
	"internal/core": {
		"internal/circuit", "internal/faultclock", "internal/gate",
		"internal/hardware", "internal/linalg", "internal/logx",
		"internal/obs", "internal/optimize", "internal/partition",
		"internal/pulse", "internal/qoc", "internal/route",
		"internal/sim", "internal/store", "internal/synth",
		"internal/trace", "internal/zx",
	},

	// The HTTP compile service sits above core: it is the in-process
	// equivalent of a cmd/* entry point, packaged as a library so
	// cmd/epoc-serve stays a flag-parsing shell and the handler suite
	// tests against httptest.
	"internal/serve": {
		"internal/benchcirc", "internal/circuit", "internal/core",
		"internal/debugsrv", "internal/faultclock", "internal/hardware",
		"internal/logx", "internal/metrics", "internal/obs",
		"internal/pulse", "internal/qasm", "internal/report",
		"internal/store", "internal/synth", "internal/trace",
	},
}

func runLayering(p *Pass) {
	rel := p.Module.relPath(p.Pkg.Path)
	allowed, inTable := layeringDAG[rel]
	allowedSet := map[string]bool{}
	for _, a := range allowed {
		allowedSet[a] = true
	}

	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !p.Module.InModule(path) {
				continue
			}
			impRel := p.Module.relPath(path)
			switch {
			case strings.HasPrefix(impRel, "cmd/"):
				p.Reportf(imp.Pos(), "import of %s: cmd/* packages are entry points and are never imported", path)
			case strings.HasPrefix(rel, "internal/"):
				switch {
				case !strings.HasPrefix(impRel, "internal/"):
					p.Reportf(imp.Pos(), "internal package imports %s; internal/* may only depend on other internal packages", path)
				case !inTable:
					p.Reportf(imp.Pos(), "package %s is not in the layering DAG table; add it to layeringDAG and the ARCHITECTURE.md import-DAG section", p.Pkg.Path)
				case !allowedSet[impRel]:
					p.Reportf(imp.Pos(), "import of %s is not in the DAG: %s may import {%s}", path, rel, strings.Join(sortedCopy(allowed), ", "))
				}
			case strings.HasPrefix(rel, "examples/"):
				if strings.HasPrefix(impRel, "examples/") {
					p.Reportf(imp.Pos(), "examples are standalone; %s must not import %s", rel, path)
				}
			case rel == ".": // the root facade
				if !strings.HasPrefix(impRel, "internal/") {
					p.Reportf(imp.Pos(), "the root facade imports only internal/*, not %s", path)
				}
			}
		}
	}
}

// relPath maps an in-module import path to its module-relative form
// ("." for the root package).
func (m *Module) relPath(path string) string {
	if path == m.Path {
		return "."
	}
	return strings.TrimPrefix(path, m.Path+"/")
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
