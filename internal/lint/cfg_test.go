package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseCFG builds the CFG of the first function declared in src.
func parseCFG(t *testing.T, src string) (*funcCFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
			return buildCFG(fn.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// lineOf returns the 1-based line of the first occurrence of marker in
// src, accounting for the injected "package p" line.
func lineOf(t *testing.T, src, marker string) int {
	t.Helper()
	idx := strings.Index(src, marker)
	if idx < 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	return 2 + strings.Count(src[:idx], "\n")
}

// blockOn returns a block holding a node that starts on line.
func blockOn(c *funcCFG, fset *token.FileSet, line int) *cfgBlock {
	for _, b := range c.blocks {
		for _, n := range b.nodes {
			if fset.Position(n.Pos()).Line == line {
				return b
			}
		}
	}
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c, _ := parseCFG(t, `
func f() {
	x := 1
	x++
	_ = x
}`)
	if !c.reachableFrom(c.entry)[c.exit] {
		t.Fatal("exit unreachable in straight-line code")
	}
	if len(c.entry.nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(c.entry.nodes))
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	src := `
func f(b bool) {
	x := 0
	if b {
		x = 1
	} else {
		x = 2
	}
	_ = x // join
}`
	c, fset := parseCFG(t, src)
	join := blockOn(c, fset, lineOf(t, src, "_ = x"))
	if join == nil {
		t.Fatal("no block for the join statement")
	}
	then := blockOn(c, fset, lineOf(t, src, "x = 1"))
	els := blockOn(c, fset, lineOf(t, src, "x = 2"))
	for name, b := range map[string]*cfgBlock{"then": then, "else": els} {
		if b == nil {
			t.Fatalf("no block for %s branch", name)
		}
		if !c.reachableFrom(b)[join] {
			t.Errorf("join not reachable from %s branch", name)
		}
	}
}

func TestCFGForLoop(t *testing.T) {
	src := `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	c, fset := parseCFG(t, src)
	body := blockOn(c, fset, lineOf(t, src, "s += i"))
	ret := blockOn(c, fset, lineOf(t, src, "return s"))
	if body == nil || ret == nil {
		t.Fatal("missing body or return block")
	}
	if !c.reachableFrom(body)[body] {
		t.Error("loop body cannot re-reach itself (no back edge)")
	}
	if !c.reachableFrom(c.entry)[ret] {
		t.Error("statement after the loop unreachable")
	}
}

func TestCFGInfiniteForVsBreak(t *testing.T) {
	noBreak, _ := parseCFG(t, `
func f() {
	for {
	}
}`)
	if noBreak.reachableFrom(noBreak.entry)[noBreak.exit] {
		t.Error("exit reachable past an infinite loop")
	}
	withBreak, _ := parseCFG(t, `
func f(b bool) {
	for {
		if b {
			break
		}
	}
}`)
	if !withBreak.reachableFrom(withBreak.entry)[withBreak.exit] {
		t.Error("exit unreachable despite the break")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// An unlabeled break only exits the inner loop; the outer loop
	// still never terminates.
	inner, _ := parseCFG(t, `
func f() {
	for {
		for {
			break
		}
	}
}`)
	if inner.reachableFrom(inner.entry)[inner.exit] {
		t.Error("unlabeled break escaped the outer infinite loop")
	}
	// A labeled break exits both.
	labeled, _ := parseCFG(t, `
func f() {
outer:
	for {
		for {
			break outer
		}
	}
}`)
	if !labeled.reachableFrom(labeled.entry)[labeled.exit] {
		t.Error("labeled break did not reach past the outer loop")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	src := `
func f(n int) {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue outer
			}
			s++
		}
	}
	_ = s // after
}`
	c, fset := parseCFG(t, src)
	cont := blockOn(c, fset, lineOf(t, src, "continue outer"))
	after := blockOn(c, fset, lineOf(t, src, "_ = s"))
	if cont == nil || after == nil {
		t.Fatal("missing continue or after block")
	}
	if !c.reachableFrom(cont)[after] {
		t.Error("continue outer cannot eventually leave the outer loop")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	src := `
func f() int {
	return 1
	_ = 2 // dead
}`
	c, fset := parseCFG(t, src)
	dead := blockOn(c, fset, lineOf(t, src, "_ = 2"))
	if dead == nil {
		t.Fatal("dead statement has no block")
	}
	if c.reachableFrom(c.entry)[dead] {
		t.Error("statement after return is reachable")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	src := `
func f() {
	panic("boom")
	_ = 2 // dead
}`
	c, fset := parseCFG(t, src)
	dead := blockOn(c, fset, lineOf(t, src, "_ = 2"))
	if c.reachableFrom(c.entry)[dead] {
		t.Error("statement after panic is reachable")
	}
	if !c.reachableFrom(c.entry)[c.exit] {
		t.Error("panic does not edge to exit")
	}
}

func TestCFGSwitch(t *testing.T) {
	src := `
func f(x int) int {
	switch x {
	case 1:
		return 1
	case 2:
		x = 5
	}
	return x // after
}`
	c, fset := parseCFG(t, src)
	after := blockOn(c, fset, lineOf(t, src, "return x"))
	caseTwo := blockOn(c, fset, lineOf(t, src, "x = 5"))
	if after == nil || caseTwo == nil {
		t.Fatal("missing switch blocks")
	}
	// No default: the head must edge past the switch as well as
	// through the non-returning case.
	if !c.reachableFrom(c.entry)[after] {
		t.Error("after-switch statement unreachable")
	}
	if !c.reachableFrom(caseTwo)[after] {
		t.Error("falling out of a case does not reach the after block")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	src := `
func f(x int) int {
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20 // next clause
	}
	return x
}`
	c, fset := parseCFG(t, src)
	first := blockOn(c, fset, lineOf(t, src, "x = 10"))
	second := blockOn(c, fset, lineOf(t, src, "x = 20"))
	if first == nil || second == nil {
		t.Fatal("missing clause blocks")
	}
	if !c.reachableFrom(first)[second] {
		t.Error("fallthrough does not reach the next clause")
	}
}

func TestCFGSelectNoDefaultBlocks(t *testing.T) {
	src := `
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
	// no fallthrough edge: a default-less select blocks
}`
	c, fset := parseCFG(t, src)
	recv := blockOn(c, fset, lineOf(t, src, "case v := <-ch"))
	if recv == nil {
		t.Fatal("missing comm clause block")
	}
	// The only way to exit is through the clause's return.
	if !c.reachableFrom(c.entry)[c.exit] {
		t.Error("exit unreachable through the select clause")
	}
}

func TestCFGRange(t *testing.T) {
	src := `
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s // after
}`
	c, fset := parseCFG(t, src)
	body := blockOn(c, fset, lineOf(t, src, "s += x"))
	after := blockOn(c, fset, lineOf(t, src, "return s"))
	if body == nil || after == nil {
		t.Fatal("missing range blocks")
	}
	if !c.reachableFrom(body)[body] {
		t.Error("range body has no back edge")
	}
	if !c.reachableFrom(c.entry)[after] {
		t.Error("after-range statement unreachable")
	}
}

func TestCFGDefersCollected(t *testing.T) {
	src := `
func f() {
	defer one()
	if true {
		defer two()
	}
}
func one() {}
func two() {}`
	c, _ := parseCFG(t, src)
	if len(c.defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(c.defers))
	}
	if !c.reachableFrom(c.entry)[c.exit] {
		t.Error("defers must not terminate flow")
	}
}

func TestCFGGoto(t *testing.T) {
	src := `
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`
	c, fset := parseCFG(t, src)
	target := blockOn(c, fset, lineOf(t, src, "i++"))
	gotoBlk := blockOn(c, fset, lineOf(t, src, "goto loop"))
	if target == nil || gotoBlk == nil {
		t.Fatal("missing goto blocks")
	}
	if !c.reachableFrom(gotoBlk)[target] {
		t.Error("goto does not edge back to its label")
	}
	if !c.reachableFrom(c.entry)[c.exit] {
		t.Error("exit unreachable in goto loop")
	}
}

func TestCFGAfterMap(t *testing.T) {
	src := `
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	c := buildCFG(fn.Body)
	var loop *ast.RangeStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			loop = r
		}
		return true
	})
	after := c.after[ast.Stmt(loop)]
	if after == nil {
		t.Fatal("after map has no entry for the range statement")
	}
	found := false
	for _, n := range after.nodes {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("the block after the loop does not hold the return")
	}
}
