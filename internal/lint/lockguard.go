package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Lockguard checks that struct fields tied to a mutex are only
// touched while that mutex is held. A tie is declared two ways:
//
//   - explicitly, with a `// guards: a, b, c` trailing or doc comment
//     on the mutex field (the convention serve.Server already uses);
//   - implicitly, in the shared-state packages internal/serve,
//     internal/store and internal/pulse, where the idiom is "mu, then
//     the fields it protects, then a blank line": every field after a
//     sync.Mutex/sync.RWMutex field named mu* is guarded until the
//     first blank-line gap or the end of the struct.
//
// For each method on such a struct the analyzer runs a forward
// may-analysis over the CFG with two bits — may-be-locked and
// may-be-unlocked — driven by receiver.mu.Lock/RLock/Unlock/RUnlock
// calls (a deferred Unlock does not release mid-flow). A guarded
// field access in a state where the lock may be unlocked is a
// finding. Methods whose doc comment says the caller must hold the
// lock (e.g. "The caller must hold l.mu.") start in the locked
// state. Function literals are separate units and are skipped: a
// closure runs at an unknown time, so the enclosing method's lock
// state cannot be assumed inside it.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "flags guarded-field accesses on CFG paths where the guarding mutex may not be held",
	Run:  runLockguard,
}

// guardsRe matches the explicit tie comment: "guards: a, b" or
// "guards a, b" after the // marker.
var guardsRe = regexp.MustCompile(`//\s*guards:?\s+(.+)$`)

// callerHoldsRe matches doc-comment phrasings that shift locking
// responsibility to the caller.
var callerHoldsRe = regexp.MustCompile(`(?i)caller(s)? must hold|must be held|held by the caller`)

// lockguardAdjacencyPkgs are the module-relative package paths where
// the mu-adjacency idiom is load-bearing enough to enforce without an
// explicit guards comment.
var lockguardAdjacencyPkgs = map[string]bool{
	"internal/serve": true,
	"internal/store": true,
	"internal/pulse": true,
}

// guardSet is the guard relation for one struct type: mutex field ->
// set of guarded fields.
type guardSet struct {
	mutex   *types.Var
	muName  string
	guarded map[*types.Var]bool
}

func runLockguard(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			recvType := baseNamed(p.Info.TypeOf(fn.Recv.List[0].Type))
			if recvType == nil {
				continue
			}
			gs, ok := guards[recvType]
			if !ok {
				continue
			}
			checkLockguardMethod(p, fn, gs)
		}
	}
}

// collectGuards builds the guard relation for every struct type
// declared in the package.
func collectGuards(p *Pass) map[*types.Named][]*guardSet {
	adjacency := lockguardAdjacencyPkgs[p.Module.relPath(p.Pkg.Path)]
	out := map[*types.Named][]*guardSet{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				named, _ := p.Info.Defs[ts.Name].Type().(*types.Named)
				if named == nil {
					continue
				}
				sets := structGuards(p, st, adjacency)
				if len(sets) > 0 {
					out[named] = sets
				}
			}
		}
	}
	return out
}

// structGuards extracts the guard sets of one struct literal.
func structGuards(p *Pass, st *ast.StructType, adjacency bool) []*guardSet {
	var sets []*guardSet
	fields := st.Fields.List
	for i, f := range fields {
		if len(f.Names) != 1 || !isMutexType(p.Info.TypeOf(f.Type)) {
			continue
		}
		muVar, _ := p.Info.Defs[f.Names[0]].(*types.Var)
		if muVar == nil {
			continue
		}
		gs := &guardSet{mutex: muVar, muName: muVar.Name(), guarded: map[*types.Var]bool{}}

		byName := map[string]*types.Var{}
		for _, g := range fields {
			for _, n := range g.Names {
				if v, ok := p.Info.Defs[n].(*types.Var); ok {
					byName[n.Name] = v
				}
			}
		}

		if names, ok := guardsComment(f); ok {
			for _, n := range names {
				if v := byName[n]; v != nil {
					gs.guarded[v] = true
				}
			}
		} else if adjacency && strings.HasPrefix(muVar.Name(), "mu") {
			// Fields after mu until the first blank-line gap.
			prevLine := p.Fset.Position(f.End()).Line
			for _, g := range fields[i+1:] {
				gl := p.Fset.Position(g.Pos()).Line
				if gl > prevLine+1 {
					break // blank line (or detached comment) ends the guarded run
				}
				prevLine = p.Fset.Position(g.End()).Line
				if isMutexType(p.Info.TypeOf(g.Type)) {
					break
				}
				for _, n := range g.Names {
					if v, ok := p.Info.Defs[n].(*types.Var); ok {
						gs.guarded[v] = true
					}
				}
			}
		}
		if len(gs.guarded) > 0 {
			sets = append(sets, gs)
		}
	}
	return sets
}

// guardsComment parses the field's doc or trailing comment for the
// explicit "guards:" list.
func guardsComment(f *ast.Field) ([]string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardsRe.FindStringSubmatch(c.Text); m != nil {
				raw := strings.Split(m[1], ",")
				names := make([]string, 0, len(raw))
				for _, r := range raw {
					if n := strings.TrimSpace(r); n != "" {
						names = append(names, n)
					}
				}
				return names, len(names) > 0
			}
		}
	}
	return nil, false
}

// lockState is the per-block may-state of one mutex.
type lockState uint8

const (
	mayLocked lockState = 1 << iota
	mayUnlocked
)

// checkLockguardMethod runs the forward fixpoint for each guard set
// over the method body and reports unguarded accesses.
func checkLockguardMethod(p *Pass, fn *ast.FuncDecl, sets []*guardSet) {
	cfg := buildCFG(fn.Body)
	entry := lockState(mayUnlocked)
	if fn.Doc != nil && callerHoldsRe.MatchString(fn.Doc.Text()) {
		entry = mayLocked
	}
	for _, gs := range sets {
		in := map[*cfgBlock]lockState{cfg.entry: entry}
		work := []*cfgBlock{cfg.entry}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			out := transferLock(p, b, gs, in[b])
			for _, s := range b.succs {
				if in[s]|out != in[s] {
					in[s] |= out
					work = append(work, s)
				}
			}
		}
		// Reporting pass: replay each reachable block's transfer,
		// flagging guarded accesses while mayUnlocked is set.
		seen := map[token.Pos]bool{}
		var poss []token.Pos
		msgs := map[token.Pos]string{}
		for _, b := range cfg.blocks {
			st, ok := in[b]
			if !ok && b != cfg.entry {
				continue // unreachable
			}
			if b == cfg.entry {
				st = entry
			}
			for _, n := range b.nodes {
				if ls, unlocks := lockTransition(p, n, gs); ls {
					st = mayLocked
				} else if unlocks {
					st = mayUnlocked
				}
				if st&mayUnlocked == 0 {
					continue
				}
				for _, acc := range guardedAccesses(p, n, gs) {
					if !seen[acc.pos] {
						seen[acc.pos] = true
						poss = append(poss, acc.pos)
						msgs[acc.pos] = acc.name
					}
				}
			}
		}
		sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
		for _, pos := range poss {
			p.Reportf(pos, "field %s is guarded by %s but accessed on a path where the lock may not be held", msgs[pos], gs.muName)
		}
	}
}

// transferLock computes the block's exit state from its entry state.
func transferLock(p *Pass, b *cfgBlock, gs *guardSet, st lockState) lockState {
	for _, n := range b.nodes {
		if locks, unlocks := lockTransition(p, n, gs); locks {
			st = mayLocked
		} else if unlocks {
			st = mayUnlocked
		}
	}
	return st
}

// lockTransition classifies a node as a lock or unlock of gs.mutex.
// A deferred unlock is neither: it runs at function exit, not here.
func lockTransition(p *Pass, n ast.Node, gs *guardSet) (locks, unlocks bool) {
	walkUnit(n, func(x ast.Node) {
		if _, ok := x.(*ast.DeferStmt); ok {
			return
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || p.Info.Uses[inner.Sel] != gs.mutex {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			locks, unlocks = true, false
		case "Unlock", "RUnlock":
			locks, unlocks = false, true
		}
	})
	// defers containing the calls above were skipped by the DeferStmt
	// early-return only at the defer node itself; re-filter: if n is a
	// DeferStmt, it contributes nothing to in-flow state.
	if _, ok := n.(*ast.DeferStmt); ok {
		return false, false
	}
	return locks, unlocks
}

type guardedAccess struct {
	pos  token.Pos
	name string
}

// guardedAccesses lists uses of guarded fields inside n, skipping
// nested function literals (separate units).
func guardedAccesses(p *Pass, n ast.Node, gs *guardSet) []guardedAccess {
	var out []guardedAccess
	walkUnit(n, func(x ast.Node) {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return
		}
		v, ok := p.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !gs.guarded[v] {
			return
		}
		out = append(out, guardedAccess{pos: sel.Sel.Pos(), name: v.Name()})
	})
	return out
}

// isMutexType reports whether t (possibly pointer) is sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// baseNamed unwraps a (possibly pointer) receiver type to its named
// type.
func baseNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
