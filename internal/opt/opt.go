// Package opt provides the numerical optimizers used by circuit
// synthesis (VUG instantiation) and quantum optimal control: Adam,
// L-BFGS with two-loop recursion, Nelder-Mead simplex search, and
// golden-section line search, plus finite-difference gradients.
package opt

import (
	"math"
)

// Objective is a scalar function of a parameter vector.
type Objective func(x []float64) float64

// Gradient fills grad with ∂f/∂x at x.
type Gradient func(x []float64, grad []float64)

// Result reports the outcome of an optimization run.
type Result struct {
	X          []float64
	F          float64
	Iterations int
	Converged  bool
}

// FiniteDiffGradient returns a Gradient computed with central
// differences of width h around f.
func FiniteDiffGradient(f Objective, h float64) Gradient {
	return func(x []float64, grad []float64) {
		xx := make([]float64, len(x))
		copy(xx, x)
		for i := range x {
			orig := xx[i]
			xx[i] = orig + h
			fp := f(xx)
			xx[i] = orig - h
			fm := f(xx)
			xx[i] = orig
			grad[i] = (fp - fm) / (2 * h)
		}
	}
}

// AdamConfig controls the Adam optimizer.
type AdamConfig struct {
	LearningRate float64 // step size (default 0.01)
	Beta1        float64 // first-moment decay (default 0.9)
	Beta2        float64 // second-moment decay (default 0.999)
	Epsilon      float64 // numerical floor (default 1e-8)
	MaxIter      int     // iteration budget (default 500)
	Tol          float64 // stop when |Δf| < Tol (default 1e-10)
	GradTol      float64 // stop when ‖grad‖∞ < GradTol (default 1e-8)
}

func (c *AdamConfig) defaults() {
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 500
	}
	if c.Tol == 0 {
		c.Tol = 1e-10
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-8
	}
}

// Adam minimizes f starting from x0 using the Adam update rule.
func Adam(f Objective, g Gradient, x0 []float64, cfg AdamConfig) Result {
	cfg.defaults()
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	m := make([]float64, n)
	v := make([]float64, n)
	grad := make([]float64, n)
	prevF := math.Inf(1)
	var fx float64
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		fx = f(x)
		g(x, grad)
		gi := maxAbs(grad)
		if gi < cfg.GradTol || math.Abs(prevF-fx) < cfg.Tol {
			return Result{X: x, F: fx, Iterations: iter, Converged: true}
		}
		prevF = fx
		b1t := 1 - math.Pow(cfg.Beta1, float64(iter))
		b2t := 1 - math.Pow(cfg.Beta2, float64(iter))
		for i := 0; i < n; i++ {
			m[i] = cfg.Beta1*m[i] + (1-cfg.Beta1)*grad[i]
			v[i] = cfg.Beta2*v[i] + (1-cfg.Beta2)*grad[i]*grad[i]
			mhat := m[i] / b1t
			vhat := v[i] / b2t
			x[i] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + cfg.Epsilon)
		}
	}
	return Result{X: x, F: f(x), Iterations: cfg.MaxIter, Converged: false}
}

// LBFGSConfig controls the L-BFGS optimizer.
type LBFGSConfig struct {
	Memory  int     // history length (default 8)
	MaxIter int     // iteration budget (default 200)
	GradTol float64 // stop when ‖grad‖∞ < GradTol (default 1e-8)
	Tol     float64 // stop when |Δf| < Tol (default 1e-12)
}

func (c *LBFGSConfig) defaults() {
	if c.Memory == 0 {
		c.Memory = 8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-8
	}
	if c.Tol == 0 {
		c.Tol = 1e-12
	}
}

// lbfgsHistory is a ring buffer of (s, y, ρ) curvature pairs. Rows are
// allocated once at capacity; push overwrites the oldest entry in place
// and reset just zeroes the logical length, so a running L-BFGS never
// allocates history after construction.
type lbfgsHistory struct {
	s, y  [][]float64
	rho   []float64
	head  int // index of the oldest entry
	count int
}

func newLBFGSHistory(mem, n int) *lbfgsHistory {
	h := &lbfgsHistory{
		s:   make([][]float64, mem),
		y:   make([][]float64, mem),
		rho: make([]float64, mem),
	}
	for i := 0; i < mem; i++ {
		h.s[i] = make([]float64, n)
		h.y[i] = make([]float64, n)
	}
	return h
}

// at maps logical index i (0 = oldest) to the ring slot.
func (h *lbfgsHistory) at(i int) int { return (h.head + i) % len(h.s) }

// push records a curvature pair, evicting the oldest when full.
func (h *lbfgsHistory) push(s, y []float64, rho float64) {
	var slot int
	if h.count < len(h.s) {
		slot = h.at(h.count)
		h.count++
	} else {
		slot = h.head
		h.head = (h.head + 1) % len(h.s)
	}
	copy(h.s[slot], s)
	copy(h.y[slot], y)
	h.rho[slot] = rho
}

func (h *lbfgsHistory) reset() { h.count, h.head = 0, 0 }

// LBFGS minimizes f with limited-memory BFGS and a backtracking Armijo
// line search. The iteration loop is allocation-free: the direction and
// line-search buffers are preallocated, the curvature history lives in
// a fixed ring buffer, and the line-search closures are hoisted out of
// the loop — VUG instantiation calls this once per candidate template,
// so per-iteration garbage multiplies across the whole synthesis sweep.
//
//epoc:hot
func LBFGS(f Objective, g Gradient, x0 []float64, cfg LBFGSConfig) Result {
	cfg.defaults()
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	grad := make([]float64, n)
	f(x)
	g(x, grad)

	hist := newLBFGSHistory(cfg.Memory, n)
	alpha := make([]float64, cfg.Memory)
	d := make([]float64, n)
	xNew := make([]float64, n)
	trial := make([]float64, n)
	gradNew := make([]float64, n)
	s := make([]float64, n)
	y := make([]float64, n)
	fx := f(x)

	// Line-search state shared with the hoisted closures; fx, g0 and d
	// mutate between calls, the closures read them by reference.
	var g0, fNew float64
	eval := func(step float64) float64 {
		for i := range x {
			trial[i] = x[i] + step*d[i]
		}
		return f(trial)
	}
	lineSearch := func() bool {
		step := 1.0
		for ls := 0; ls < 50; ls++ {
			ft := eval(step)
			if ft <= fx+1e-4*step*g0 {
				// Greedily expand while the objective keeps dropping; this
				// substitutes for a Wolfe curvature check and yields useful
				// (s, y) pairs in narrow valleys.
				for exp := 0; exp < 10; exp++ {
					ft2 := eval(2 * step)
					if ft2 >= ft || ft2 > fx+1e-4*2*step*g0 {
						break
					}
					step *= 2
					ft = ft2
				}
				fNew = eval(step)
				copy(xNew, trial)
				return true
			}
			step *= 0.5
		}
		return false
	}

	for iter := 1; iter <= cfg.MaxIter; iter++ {
		if maxAbs(grad) < cfg.GradTol {
			//epoc:lint-ignore allochot exit-path result literal: allocates once per run, not per iteration
			return Result{X: x, F: fx, Iterations: iter, Converged: true}
		}
		// Two-loop recursion to get the search direction d = -H·grad.
		q := d
		copy(q, grad)
		k := hist.count
		for i := k - 1; i >= 0; i-- {
			j := hist.at(i)
			alpha[i] = hist.rho[j] * dot(hist.s[j], q)
			axpy(q, hist.y[j], -alpha[i])
		}
		// Initial Hessian scaling; without history, bound the first step
		// so a steep objective does not trigger a wall of backtracking.
		if k > 0 {
			j := hist.at(k - 1)
			gammaK := dot(hist.s[j], hist.y[j]) / dot(hist.y[j], hist.y[j])
			scale(q, gammaK)
		} else if g := maxAbs(q); g > 1 {
			scale(q, 1/g)
		}
		for i := 0; i < k; i++ {
			j := hist.at(i)
			beta := hist.rho[j] * dot(hist.y[j], q)
			axpy(q, hist.s[j], alpha[i]-beta)
		}
		scale(d, -1)

		// Armijo backtracking.
		g0 = dot(grad, d)
		if g0 >= 0 {
			// Not a descent direction (stale curvature); fall back to -grad.
			copy(d, grad)
			scale(d, -1)
			g0 = dot(grad, d)
			hist.reset()
		}
		if !lineSearch() {
			// Retry once along the raw negative gradient with fresh history.
			copy(d, grad)
			scale(d, -1)
			g0 = dot(grad, d)
			hist.reset()
			if !lineSearch() {
				//epoc:lint-ignore allochot exit-path result literal: allocates once per run, not per iteration
				return Result{X: x, F: fx, Iterations: iter, Converged: maxAbs(grad) < math.Sqrt(cfg.GradTol)}
			}
		}
		g(xNew, gradNew)

		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gradNew[i] - grad[i]
		}
		sy := dot(s, y)
		if sy > 1e-12 {
			hist.push(s, y, 1/sy)
		}
		if math.Abs(fx-fNew) < cfg.Tol*(1+math.Abs(fNew)) && maxAbs(gradNew) < math.Sqrt(cfg.GradTol) {
			copy(x, xNew)
			//epoc:lint-ignore allochot exit-path result literal: allocates once per run, not per iteration
			return Result{X: x, F: fNew, Iterations: iter, Converged: true}
		}
		copy(x, xNew)
		copy(grad, gradNew)
		fx = fNew
	}
	return Result{X: x, F: fx, Iterations: cfg.MaxIter, Converged: false}
}

// NelderMeadConfig controls the simplex search.
type NelderMeadConfig struct {
	MaxIter int     // iteration budget (default 2000)
	Tol     float64 // stop when the simplex f-spread < Tol (default 1e-10)
	Step    float64 // initial simplex edge (default 0.5)
}

func (c *NelderMeadConfig) defaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 2000
	}
	if c.Tol == 0 {
		c.Tol = 1e-10
	}
	if c.Step == 0 {
		c.Step = 0.5
	}
}

// NelderMead minimizes f with the derivative-free simplex algorithm.
func NelderMead(f Objective, x0 []float64, cfg NelderMeadConfig) Result {
	cfg.defaults()
	n := len(x0)
	// Build the initial simplex.
	pts := make([][]float64, n+1)
	fv := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		p := make([]float64, n)
		copy(p, x0)
		if i > 0 {
			p[i-1] += cfg.Step
		}
		pts[i] = p
		fv[i] = f(p)
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	order := func() {
		// Insertion sort: simplexes are small.
		for i := 1; i <= n; i++ {
			for j := i; j > 0 && fv[j] < fv[j-1]; j-- {
				fv[j], fv[j-1] = fv[j-1], fv[j]
				pts[j], pts[j-1] = pts[j-1], pts[j]
			}
		}
	}
	centroid := make([]float64, n)
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		order()
		if fv[n]-fv[0] < cfg.Tol {
			return Result{X: pts[0], F: fv[0], Iterations: iter, Converged: true}
		}
		// Centroid of all but the worst.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		worst := pts[n]
		refl := make([]float64, n)
		for j := 0; j < n; j++ {
			refl[j] = centroid[j] + alpha*(centroid[j]-worst[j])
		}
		fr := f(refl)
		switch {
		case fr < fv[0]:
			exp := make([]float64, n)
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + gamma*(refl[j]-centroid[j])
			}
			if fe := f(exp); fe < fr {
				pts[n], fv[n] = exp, fe
			} else {
				pts[n], fv[n] = refl, fr
			}
		case fr < fv[n-1]:
			pts[n], fv[n] = refl, fr
		default:
			contr := make([]float64, n)
			for j := 0; j < n; j++ {
				contr[j] = centroid[j] + rho*(worst[j]-centroid[j])
			}
			if fc := f(contr); fc < fv[n] {
				pts[n], fv[n] = contr, fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + sigma*(pts[i][j]-pts[0][j])
					}
					fv[i] = f(pts[i])
				}
			}
		}
	}
	order()
	return Result{X: pts[0], F: fv[0], Iterations: cfg.MaxIter, Converged: false}
}

// GoldenSection minimizes a unimodal 1-D function on [a, b] to within
// tol and returns the minimizing point.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	if a > b {
		a, b = b, a
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y, x []float64, a float64) {
	for i := range y {
		y[i] += a * x[i]
	}
}

func scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
