package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func sphereGrad(x, g []float64) {
	for i := range x {
		g[i] = 2 * x[i]
	}
}

func rosenbrock(x []float64) float64 {
	var s float64
	for i := 0; i < len(x)-1; i++ {
		s += 100*math.Pow(x[i+1]-x[i]*x[i], 2) + math.Pow(1-x[i], 2)
	}
	return s
}

func TestAdamSphere(t *testing.T) {
	res := Adam(sphere, sphereGrad, []float64{3, -2, 1}, AdamConfig{MaxIter: 5000, LearningRate: 0.05})
	if res.F > 1e-6 {
		t.Fatalf("Adam did not minimize the sphere: f=%v x=%v", res.F, res.X)
	}
}

func TestAdamConvergesFlag(t *testing.T) {
	res := Adam(sphere, sphereGrad, []float64{0.001, 0.001}, AdamConfig{MaxIter: 5000, LearningRate: 0.05})
	if !res.Converged {
		t.Fatal("Adam should report convergence near the optimum")
	}
}

func TestLBFGSSphere(t *testing.T) {
	res := LBFGS(sphere, sphereGrad, []float64{5, -7, 2, 1}, LBFGSConfig{})
	if res.F > 1e-10 {
		t.Fatalf("LBFGS sphere: f=%v", res.F)
	}
	if !res.Converged {
		t.Fatal("LBFGS should converge on the sphere")
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	g := FiniteDiffGradient(rosenbrock, 1e-6)
	res := LBFGS(rosenbrock, g, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 500})
	if res.F > 1e-6 {
		t.Fatalf("LBFGS Rosenbrock: f=%v x=%v", res.F, res.X)
	}
	for _, v := range res.X {
		if math.Abs(v-1) > 1e-3 {
			t.Fatalf("Rosenbrock minimizer should be (1,1): %v", res.X)
		}
	}
}

func TestNelderMeadSphere(t *testing.T) {
	res := NelderMead(sphere, []float64{2, -3}, NelderMeadConfig{})
	if res.F > 1e-8 {
		t.Fatalf("NelderMead sphere: f=%v", res.F)
	}
}

func TestNelderMeadRosenbrock2D(t *testing.T) {
	res := NelderMead(rosenbrock, []float64{-1.2, 1}, NelderMeadConfig{MaxIter: 5000})
	if res.F > 1e-6 {
		t.Fatalf("NelderMead Rosenbrock: f=%v x=%v", res.F, res.X)
	}
}

func TestNelderMeadNonSmooth(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0]-1) + math.Abs(x[1]+2) }
	res := NelderMead(f, []float64{0, 0}, NelderMeadConfig{MaxIter: 5000, Tol: 1e-12})
	if res.F > 1e-5 {
		t.Fatalf("NelderMead |.|: f=%v x=%v", res.F, res.X)
	}
}

func TestFiniteDiffGradientMatchesAnalytic(t *testing.T) {
	g := FiniteDiffGradient(sphere, 1e-6)
	x := []float64{1.5, -0.5, 2}
	num := make([]float64, 3)
	ana := make([]float64, 3)
	g(x, num)
	sphereGrad(x, ana)
	for i := range x {
		if math.Abs(num[i]-ana[i]) > 1e-6 {
			t.Fatalf("grad[%d]: %v vs %v", i, num[i], ana[i])
		}
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return (x - 1.3) * (x - 1.3) }, -10, 10, 1e-8)
	if math.Abs(x-1.3) > 1e-6 {
		t.Fatalf("GoldenSection: %v", x)
	}
}

func TestGoldenSectionReversedBounds(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return x * x }, 5, -5, 1e-8)
	if math.Abs(x) > 1e-6 {
		t.Fatalf("GoldenSection reversed bounds: %v", x)
	}
}

func TestQuickAdamQuadraticRandomStart(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x0 := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		res := Adam(sphere, sphereGrad, x0, AdamConfig{MaxIter: 8000, LearningRate: 0.05})
		return res.F < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLBFGSShiftedQuadratic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		target := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		obj := func(x []float64) float64 {
			var s float64
			for i := range x {
				d := x[i] - target[i]
				s += d * d
			}
			return s
		}
		res := LBFGS(obj, FiniteDiffGradient(obj, 1e-7), make([]float64, 3), LBFGSConfig{})
		return res.F < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
