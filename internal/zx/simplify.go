package zx

import (
	"math"
	"sort"
)

// ToGraphLike rewrites the diagram so that every spider is a Z-spider
// and every spider-spider edge is a Hadamard edge: X-spiders are
// color-changed, simple-edge-connected Z pairs are fused (Hopf-resolving
// parallel edges), and phase-0 degree-2 identity spiders are removed.
func (g *Graph) ToGraphLike() {
	g.colorChange()
	for {
		changed := g.fuseAll()
		if g.removeIdentities() {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// colorChange converts every X-spider to a Z-spider by toggling the
// kind of each incident edge.
func (g *Graph) colorChange() {
	for _, v := range g.Vertices() {
		if g.kind[v] != XSpider {
			continue
		}
		g.kind[v] = ZSpider
		for w, k := range g.adj[v] {
			nk := Hadamard
			if k == Hadamard {
				nk = Simple
			}
			g.adj[v][w] = nk
			g.adj[w][v] = nk
		}
	}
}

// fuseAll merges every pair of Z-spiders joined by a simple edge until
// none remain. Returns whether anything changed.
func (g *Graph) fuseAll() bool {
	changed := false
	for {
		u, v, found := g.findFusable()
		if !found {
			return changed
		}
		g.fuse(u, v)
		changed = true
	}
}

func (g *Graph) findFusable() (int, int, bool) {
	for _, v := range g.Vertices() {
		if g.kind[v] != ZSpider {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if g.adj[v][w] == Simple && g.kind[w] == ZSpider {
				return v, w, true
			}
		}
	}
	return 0, 0, false
}

// fuse merges v into u (both Z-spiders joined by a simple edge),
// resolving parallel edges: simple‖simple → simple, Hadamard‖Hadamard →
// none (Hopf), simple‖Hadamard → simple with a π phase.
func (g *Graph) fuse(u, v int) {
	g.AddToPhase(u, g.phase[v])
	g.RemoveEdge(u, v)
	for w, k := range g.adj[v] {
		if w == u {
			// A second u-v edge beyond the fusing one: it becomes a
			// self-loop. A simple self-loop is dropped; a Hadamard
			// self-loop contributes a π phase.
			if k == Hadamard {
				g.AddToPhase(u, math.Pi)
			}
			continue
		}
		g.combineEdge(u, w, k)
	}
	g.RemoveVertex(v)
}

// combineEdge adds an edge of kind k between u and w, resolving a
// parallel edge if one exists. Both endpoints must not both be
// boundaries for the parallel rules to apply; boundary vertices have
// degree one so the parallel case cannot involve them.
func (g *Graph) combineEdge(u, w int, k EKind) {
	old, exists := g.Edge(u, w)
	if !exists {
		g.SetEdge(u, w, k)
		return
	}
	switch {
	case old == Simple && k == Simple:
		// Parallel plain edges between Z-spiders: keep one (the pair
		// fuses later and the extra edge becomes a dropped self-loop).
	case old == Hadamard && k == Hadamard:
		// Hopf: parallel Hadamard edges cancel.
		g.RemoveEdge(u, w)
	default:
		// simple + Hadamard: fusing along the plain edge leaves a
		// Hadamard self-loop, i.e. a π phase; keep the plain edge.
		g.SetEdge(u, w, Simple)
		g.AddToPhase(u, math.Pi)
	}
}

// removeIdentities deletes phase-0 degree-2 Z-spiders, splicing their
// two edges together. Returns whether anything changed.
func (g *Graph) removeIdentities() bool {
	changed := false
	for _, v := range g.Vertices() {
		if g.kind[v] != ZSpider || !phaseIsZero(g.phase[v]) || g.Degree(v) != 2 {
			continue
		}
		nb := g.Neighbors(v)
		a, b := nb[0], nb[1]
		ka := g.adj[v][a]
		kb := g.adj[v][b]
		combined := Simple
		if (ka == Hadamard) != (kb == Hadamard) {
			combined = Hadamard
		}
		// Splicing may create a parallel edge; resolve it when both ends
		// are spiders, otherwise skip this identity (rare, boundary case).
		if _, exists := g.Edge(a, b); exists {
			if g.kind[a] == Boundary || g.kind[b] == Boundary {
				continue
			}
			g.RemoveVertex(v)
			g.combineEdge(a, b, combined)
			changed = true
			continue
		}
		g.RemoveVertex(v)
		g.SetEdge(a, b, combined)
		changed = true
	}
	return changed
}

// lcompAll applies local complementation to every interior proper-
// Clifford (±π/2) spider, removing it. Returns whether anything
// changed.
func (g *Graph) lcompAll() bool {
	changed := false
	for {
		v, found := g.findLcomp()
		if !found {
			return changed
		}
		g.lcomp(v)
		changed = true
	}
}

func (g *Graph) findLcomp() (int, bool) {
	for _, v := range g.Vertices() {
		if g.kind[v] != ZSpider || !phaseIsProperClifford(g.phase[v]) || !g.isInterior(v) {
			continue
		}
		ok := true
		for w, k := range g.adj[v] {
			if k != Hadamard || g.Degree(w) == 1 {
				// Keep phase-gadget structure intact: complementing the
				// neighborhood of a vertex with a degree-1 leaf would
				// tear the gadget apart.
				ok = false
				break
			}
		}
		if ok {
			return v, true
		}
	}
	return 0, false
}

// lcomp removes v (phase ±π/2, all-Hadamard interior spider) by local
// complementation: toggle Hadamard edges between all neighbor pairs and
// subtract v's phase from every neighbor.
func (g *Graph) lcomp(v int) {
	nb := g.Neighbors(v)
	p := g.phase[v]
	for i := 0; i < len(nb); i++ {
		for j := i + 1; j < len(nb); j++ {
			g.toggleHEdge(nb[i], nb[j])
		}
	}
	for _, w := range nb {
		g.AddToPhase(w, -p)
	}
	g.RemoveVertex(v)
}

// pivotAll applies the pivot rule to every interior Pauli pair joined
// by a Hadamard edge, removing both. Returns whether anything changed.
func (g *Graph) pivotAll() bool {
	changed := false
	for {
		u, v, found := g.findPivot()
		if !found {
			return changed
		}
		g.pivot(u, v)
		changed = true
	}
}

func (g *Graph) findPivot() (int, int, bool) {
	for _, u := range g.Vertices() {
		if !g.pivotCandidate(u) {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if g.adj[u][w] == Hadamard && w > u && g.pivotCandidate(w) {
				return u, w, true
			}
		}
	}
	return 0, 0, false
}

// interiorPauliAllH reports whether v is an interior Pauli Z-spider
// with only Hadamard edges (gadget axes included).
func (g *Graph) interiorPauliAllH(v int) bool {
	if g.kind[v] != ZSpider || !phaseIsPauli(g.phase[v]) || !g.isInterior(v) {
		return false
	}
	for _, k := range g.adj[v] {
		if k != Hadamard {
			return false
		}
	}
	return true
}

func (g *Graph) pivotCandidate(v int) bool {
	if g.kind[v] != ZSpider || !phaseIsPauli(g.phase[v]) || !g.isInterior(v) {
		return false
	}
	for w, k := range g.adj[v] {
		if k != Hadamard {
			return false
		}
		// Vertices carrying a phase-gadget leaf (degree-1 neighbor) are
		// axes; pivoting them would tear the gadget apart and lets the
		// gadgetizing loop run forever.
		if g.Degree(w) == 1 {
			return false
		}
	}
	return true
}

// pivot removes the Hadamard-connected interior Pauli pair (u, v):
// with A = N(u)∖N(v)∖{v}, B = N(v)∖N(u)∖{u}, C = N(u)∩N(v), it toggles
// all edges across A×B, A×C and B×C and shifts phases: A += φ(v),
// B += φ(u), C += φ(u)+φ(v)+π.
func (g *Graph) pivot(u, v int) {
	pu, pv := g.phase[u], g.phase[v]
	inU := g.adj[u]
	inV := g.adj[v]
	var a, b, c []int
	for w := range inU {
		if w == v {
			continue
		}
		if _, shared := inV[w]; shared {
			c = append(c, w)
		} else {
			a = append(a, w)
		}
	}
	for w := range inV {
		if w == u {
			continue
		}
		if _, shared := inU[w]; !shared {
			b = append(b, w)
		}
	}
	// The toggles and phase shifts below are commutative, but sorted
	// sets keep the rewrite trace (and any future order-sensitive use)
	// independent of map iteration order.
	sort.Ints(a)
	sort.Ints(b)
	sort.Ints(c)
	for _, x := range a {
		for _, y := range b {
			g.toggleHEdge(x, y)
		}
	}
	for _, x := range a {
		for _, y := range c {
			g.toggleHEdge(x, y)
		}
	}
	for _, x := range b {
		for _, y := range c {
			g.toggleHEdge(x, y)
		}
	}
	for _, x := range a {
		g.AddToPhase(x, pv)
	}
	for _, y := range b {
		g.AddToPhase(y, pu)
	}
	for _, z := range c {
		g.AddToPhase(z, pu+pv+math.Pi)
	}
	g.RemoveVertex(u)
	g.RemoveVertex(v)
}

// toggleHEdge flips the presence of a Hadamard edge between two
// Z-spiders.
func (g *Graph) toggleHEdge(x, y int) {
	if x == y {
		return
	}
	if _, exists := g.Edge(x, y); exists {
		g.RemoveEdge(x, y)
	} else {
		g.SetEdge(x, y, Hadamard)
	}
}

// Simplify runs the interior Clifford simplification loop: graph-like
// normalization, then local complementation and pivoting to a fixed
// point. This mirrors PyZX's clifford_simp strategy and is the
// graph-based depth-optimization stage of the EPOC pipeline.
func (g *Graph) Simplify() {
	g.ToGraphLike()
	for {
		changed := false
		if g.lcompAll() {
			changed = true
		}
		if g.pivotAll() {
			changed = true
		}
		if changed {
			// Rewrites can create new fusable/identity patterns.
			g.ToGraphLike()
		} else {
			return
		}
	}
}
