package zx

import "sort"

// Phase-gadget machinery: the extra rewrites that lift Simplify
// (clifford_simp) to the strength of PyZX's full_reduce. A phase
// gadget is a phase-carrying leaf spider attached through a phase-0
// axis spider to the gadget's legs:
//
//	leaf(α) ─H─ axis(0) ─H─ {legs...}
//
// pivotGadget turns a non-Pauli interior spider into a gadget so a
// pivot with its Pauli neighbor becomes possible; fuseGadgets merges
// gadgets with identical leg sets (adding phases), which is where
// T-count/depth reductions on structured ansätze come from.

// pivotGadgetAll applies the gadgetizing pivot wherever an interior
// Pauli spider is Hadamard-adjacent to an interior non-Pauli spider.
// Returns whether anything changed.
func (g *Graph) pivotGadgetAll() bool {
	changed := false
	// Each gadgetizing pivot consumes one non-axis interior Pauli
	// spider, so the initial vertex count bounds the loop; the snapshot
	// also guards against any residual growth pathology.
	limit := 10*len(g.kind) + 10
	for iter := 0; iter < limit; iter++ {
		u, v, found := g.findPivotGadget()
		if !found {
			return changed
		}
		g.pivotGadget(u, v)
		changed = true
	}
	return changed
}

// findPivotGadget looks for u (interior Pauli, all-H) H-adjacent to v
// (interior non-Pauli, all-H). v must not itself be a gadget axis or
// leaf (gadgetizing those would loop forever).
func (g *Graph) findPivotGadget() (int, int, bool) {
	for _, u := range g.Vertices() {
		if !g.pivotCandidate(u) {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if g.adj[u][v] != Hadamard {
				continue
			}
			if g.kind[v] != ZSpider || phaseIsPauli(g.phase[v]) || !g.isInterior(v) {
				continue
			}
			if g.Degree(v) == 1 || g.isGadgetAxis(v) {
				continue
			}
			allH := true
			for _, k := range g.adj[v] {
				if k != Hadamard {
					allH = false
					break
				}
			}
			if allH {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}

// pivotGadget unfuses v's phase into a fresh gadget, leaving v Pauli,
// then pivots (u, v).
func (g *Graph) pivotGadget(u, v int) {
	leaf := g.AddVertex(ZSpider, g.phase[v])
	axis := g.AddVertex(ZSpider, 0)
	g.SetEdge(leaf, axis, Hadamard)
	g.SetEdge(axis, v, Hadamard)
	g.SetPhase(v, 0)
	g.pivot(u, v)
}

// isGadgetAxis reports whether v is a phase-0 spider with exactly one
// degree-1 neighbor (its phase leaf).
func (g *Graph) isGadgetAxis(v int) bool {
	if g.kind[v] != ZSpider || !phaseIsZero(g.phase[v]) {
		return false
	}
	leaves := 0
	for w := range g.adj[v] {
		if g.Degree(w) == 1 && g.kind[w] == ZSpider {
			leaves++
		}
	}
	return leaves == 1
}

// gadgetLeaf returns the degree-1 phase leaf of a gadget axis.
func (g *Graph) gadgetLeaf(axis int) int {
	for w := range g.adj[axis] {
		if g.Degree(w) == 1 && g.kind[w] == ZSpider {
			return w
		}
	}
	return -1
}

// fuseGadgets merges phase gadgets whose leg sets are identical,
// adding their leaf phases. Returns whether anything changed.
func (g *Graph) fuseGadgets() bool {
	// Collect gadgets: axis -> sorted leg list.
	type gadget struct {
		axis, leaf int
		legs       string
	}
	var gadgets []gadget
	for _, v := range g.Vertices() {
		if !g.isGadgetAxis(v) {
			continue
		}
		leaf := g.gadgetLeaf(v)
		legs := make([]int, 0, g.Degree(v)-1)
		allH := true
		for w, k := range g.adj[v] {
			if w == leaf {
				continue
			}
			if k != Hadamard || g.kind[w] == Boundary {
				allH = false
				break
			}
			legs = append(legs, w)
		}
		if !allH || len(legs) == 0 {
			continue
		}
		sort.Ints(legs)
		gadgets = append(gadgets, gadget{axis: v, leaf: leaf, legs: intsKey(legs)})
	}
	byLegs := map[string]gadget{}
	changed := false
	for _, gd := range gadgets {
		prev, dup := byLegs[gd.legs]
		if !dup {
			byLegs[gd.legs] = gd
			continue
		}
		// Merge gd into prev: phases add on the leaves.
		g.AddToPhase(prev.leaf, g.phase[gd.leaf])
		g.RemoveVertex(gd.leaf)
		g.RemoveVertex(gd.axis)
		changed = true
	}
	return changed
}

func intsKey(xs []int) string {
	buf := make([]byte, 0, len(xs)*4)
	for _, x := range xs {
		for x > 0 {
			buf = append(buf, byte('0'+x%10))
			x /= 10
		}
		buf = append(buf, ',')
	}
	return string(buf)
}

// FullSimplify runs Simplify plus the phase-gadget rewrites to a fixed
// point — the counterpart of PyZX's full_reduce. Extraction of the
// result may need the gadget-aware stall recovery in ToCircuit. A
// vertex budget backstops termination: if rewriting ever grows the
// diagram past 4× its original size the loop stops with whatever has
// been achieved (the diagram stays semantically valid throughout).
func (g *Graph) FullSimplify() {
	g.Simplify()
	budget := 4*g.NumVertices() + 64
	for rounds := 0; rounds < 100; rounds++ {
		changed := g.pivotGadgetAll()
		if g.fuseGadgets() {
			changed = true
		}
		if !changed || g.NumVertices() > budget {
			return
		}
		g.Simplify()
	}
}
