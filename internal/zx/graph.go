// Package zx implements ZX-calculus circuit optimization: conversion
// of circuits to ZX-diagrams, graph-like simplification (spider fusion,
// identity removal, local complementation, pivoting — the
// clifford_simp strategy of PyZX), and extraction of an equivalent,
// usually shallower circuit via GF(2) Gaussian elimination.
//
// Phases are in radians, stored modulo 2π.
package zx

import (
	"fmt"
	"math"
	"sort"
)

// VKind classifies a vertex.
type VKind uint8

// Vertex kinds.
const (
	Boundary VKind = iota
	ZSpider
	XSpider
)

// EKind classifies an edge.
type EKind uint8

// Edge kinds: a Simple edge is a plain wire, a Hadamard edge carries an
// implicit Hadamard box.
const (
	Simple EKind = iota
	Hadamard
)

type edgeKey struct{ a, b int }

func key(a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// Graph is an undirected ZX-diagram (open graph with ordered boundary
// lists). Parallel edges are resolved eagerly by rewrite rules, so the
// representation stores at most one edge per vertex pair.
type Graph struct {
	kind    map[int]VKind
	phase   map[int]float64
	adj     map[int]map[int]EKind
	Inputs  []int
	Outputs []int
	next    int
}

// NewGraph returns an empty diagram.
func NewGraph() *Graph {
	return &Graph{
		kind:  map[int]VKind{},
		phase: map[int]float64{},
		adj:   map[int]map[int]EKind{},
	}
}

// AddVertex inserts a vertex and returns its id.
func (g *Graph) AddVertex(k VKind, phase float64) int {
	id := g.next
	g.next++
	g.kind[id] = k
	g.phase[id] = normPhase(phase)
	g.adj[id] = map[int]EKind{}
	return id
}

// RemoveVertex deletes a vertex and all incident edges.
func (g *Graph) RemoveVertex(v int) {
	for w := range g.adj[v] {
		delete(g.adj[w], v)
	}
	delete(g.adj, v)
	delete(g.kind, v)
	delete(g.phase, v)
}

// Kind returns the vertex kind.
func (g *Graph) Kind(v int) VKind { return g.kind[v] }

// Phase returns the vertex phase in radians.
func (g *Graph) Phase(v int) float64 { return g.phase[v] }

// SetPhase overwrites the vertex phase.
func (g *Graph) SetPhase(v int, p float64) { g.phase[v] = normPhase(p) }

// AddToPhase adds p to the vertex phase.
func (g *Graph) AddToPhase(v int, p float64) { g.phase[v] = normPhase(g.phase[v] + p) }

// SetEdge inserts or overwrites the edge between a and b.
func (g *Graph) SetEdge(a, b int, k EKind) {
	if a == b {
		panic("zx: self-loop edges must be resolved by the caller")
	}
	g.adj[a][b] = k
	g.adj[b][a] = k
}

// RemoveEdge deletes the edge between a and b if present.
func (g *Graph) RemoveEdge(a, b int) {
	delete(g.adj[a], b)
	delete(g.adj[b], a)
}

// Edge returns the edge kind and whether the edge exists.
func (g *Graph) Edge(a, b int) (EKind, bool) {
	k, ok := g.adj[a][b]
	return k, ok
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor ids of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Vertices returns all vertex ids in sorted order.
func (g *Graph) Vertices() []int {
	out := make([]int, 0, len(g.kind))
	for v := range g.kind {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.kind) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nb := range g.adj {
		n += len(nb)
	}
	return n / 2
}

// NumSpiders returns the number of non-boundary vertices.
func (g *Graph) NumSpiders() int {
	n := 0
	for _, k := range g.kind {
		if k != Boundary {
			n++
		}
	}
	return n
}

// TCount returns the number of non-Clifford spider phases in the
// diagram — the resource metric T-count-reduction work (Kissinger &
// van de Wetering 2019) optimizes.
func (g *Graph) TCount() int {
	n := 0
	for v, k := range g.kind {
		if k == Boundary {
			continue
		}
		p := g.phase[v]
		if !phaseIsPauli(p) && !phaseIsProperClifford(p) {
			n++
		}
	}
	return n
}

// isInterior reports whether no neighbor of v is a boundary.
func (g *Graph) isInterior(v int) bool {
	for w := range g.adj[v] {
		if g.kind[w] == Boundary {
			return false
		}
	}
	return true
}

// String renders a compact description for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("zx.Graph{%d vertices, %d edges, %d in, %d out}\n",
		g.NumVertices(), g.NumEdges(), len(g.Inputs), len(g.Outputs))
	for _, v := range g.Vertices() {
		kindName := map[VKind]string{Boundary: "B", ZSpider: "Z", XSpider: "X"}[g.kind[v]]
		s += fmt.Sprintf("  %d %s(%.3f):", v, kindName, g.phase[v])
		for _, w := range g.Neighbors(v) {
			e := "-"
			if g.adj[v][w] == Hadamard {
				e = "~"
			}
			s += fmt.Sprintf(" %s%d", e, w)
		}
		s += "\n"
	}
	return s
}

// normPhase maps a phase into [0, 2π).
func normPhase(p float64) float64 {
	m := math.Mod(p, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	if m < phaseTol || 2*math.Pi-m < phaseTol {
		return 0
	}
	return m
}

const phaseTol = 1e-10

// phaseIsZero reports p ≈ 0 (mod 2π).
func phaseIsZero(p float64) bool { return normPhase(p) == 0 }

// phaseIsPauli reports p ≈ 0 or π.
func phaseIsPauli(p float64) bool {
	n := normPhase(p)
	return n == 0 || math.Abs(n-math.Pi) < phaseTol
}

// phaseIsProperClifford reports p ≈ ±π/2.
func phaseIsProperClifford(p float64) bool {
	n := normPhase(p)
	return math.Abs(n-math.Pi/2) < phaseTol || math.Abs(n-3*math.Pi/2) < phaseTol
}
