package zx

import (
	"errors"
	"fmt"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// ErrNoExtraction is returned when the extractor cannot make progress;
// for diagrams produced by FromCircuit + Simplify this indicates a
// diagram without the expected generalized flow.
var ErrNoExtraction = errors.New("zx: diagram admits no circuit extraction")

// ToCircuit extracts a circuit from a graph-like diagram (call
// Simplify or ToGraphLike first). The extraction walks from the
// outputs toward the inputs, peeling off phase gates, CZs from frontier
// edges, CNOTs from GF(2) row eliminations and Hadamards on frontier
// advancement, mirroring the PyZX extraction algorithm.
func (g *Graph) ToCircuit() (*circuit.Circuit, error) {
	n := len(g.Outputs)
	work := g.clone()
	work.normalizeBoundaries()

	out := circuit.New(n)
	var rev []circuit.Op // collected back-to-front
	emit := func(gt gate.Gate, qs ...int) {
		rev = append(rev, circuit.NewOp(gt, qs...))
	}

	// Initialize the frontier: after normalizeBoundaries each output has
	// a unique spider neighbor via a simple edge.
	frontier := make([]int, n)   // qubit -> vertex
	qubitOf := make(map[int]int) // vertex -> qubit
	for q, o := range work.Outputs {
		nb := work.Neighbors(o)
		if len(nb) != 1 {
			return nil, fmt.Errorf("zx: output %d has degree %d after normalization", q, len(nb))
		}
		v := nb[0]
		if work.kind[v] == Boundary {
			return nil, fmt.Errorf("zx: output %d connects directly to a boundary after normalization", q)
		}
		frontier[q] = v
		qubitOf[v] = q
	}

	inputQubit := make(map[int]int)
	for q, in := range work.Inputs {
		inputQubit[in] = q
	}

	// Snapshot the budgets: stall recovery adds vertices, so a live
	// bound would never trip.
	maxIter := 10*work.next + 100
	recoveries := work.NumSpiders() + 8
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return nil, ErrNoExtraction
		}
		// 1. Peel phases off frontier vertices.
		for q, v := range frontier {
			if p := work.phase[v]; !phaseIsZero(p) {
				emit(gate.New(gate.RZ, p), q)
				work.SetPhase(v, 0)
			}
		}
		// 2. Peel CZs off frontier-frontier Hadamard edges.
		for q1 := 0; q1 < n; q1++ {
			for q2 := q1 + 1; q2 < n; q2++ {
				if k, ok := work.Edge(frontier[q1], frontier[q2]); ok {
					if k != Hadamard {
						return nil, fmt.Errorf("zx: simple edge between frontier vertices")
					}
					emit(gate.New(gate.CZ), q1, q2)
					work.RemoveEdge(frontier[q1], frontier[q2])
				}
			}
		}
		// 3. Build the biadjacency over ALL non-frontier neighbors —
		// interior spiders first (advancement targets), then input
		// boundaries. Inputs must be columns too: a row operation XORs a
		// frontier vertex's entire back-neighborhood, including its
		// Hadamard wires into the inputs.
		colIndex := map[int]int{}
		var cols []int
		spiderCols := 0
		for pass := 0; pass < 2; pass++ {
			for _, v := range frontier {
				for _, w := range work.Neighbors(v) {
					k := work.adj[v][w]
					if _, isFrontier := qubitOf[w]; isFrontier {
						continue
					}
					isSpider := work.kind[w] == ZSpider
					if pass == 0 && !isSpider {
						continue
					}
					if pass == 1 {
						if isSpider {
							continue
						}
						if _, isInput := inputQubit[w]; !isInput {
							continue // the vertex's own output boundary
						}
					}
					if k != Hadamard {
						return nil, fmt.Errorf("zx: non-Hadamard edge behind the frontier")
					}
					if _, seen := colIndex[w]; !seen {
						colIndex[w] = len(cols)
						cols = append(cols, w)
						if isSpider {
							spiderCols++
						}
					}
				}
			}
		}
		m := newBitMatrix(n, len(cols))
		for q, v := range frontier {
			for w := range work.adj[v] {
				if ci, ok := colIndex[w]; ok {
					m.set(q, ci, true)
				}
			}
		}
		// 4. Gauss-Jordan over GF(2); every row operation row[i] ^= row[j]
		// updates the diagram's frontier adjacency and emits a CNOT with
		// control i, target j (validated by round-trip tests).
		rowOp := func(i, j int) {
			m.xorRow(i, j)
			vi, vj := frontier[i], frontier[j]
			for _, w := range cols {
				if _, hasJ := work.Edge(vj, w); hasJ {
					work.toggleHEdge(vi, w)
				}
			}
			emit(gate.New(gate.CX), i, j)
		}
		m.gaussJordan(rowOp)

		if spiderCols == 0 {
			break // only inputs remain; elimination above made it a permutation
		}

		// 5. Advance the frontier along rows whose single 1 sits on a
		// spider column.
		advanced := false
		for q := 0; q < n; q++ {
			ci, single := m.singleOne(q)
			if !single || ci >= spiderCols {
				continue
			}
			w := cols[ci]
			if _, taken := qubitOf[w]; taken {
				continue // already promoted this round by another row
			}
			v := frontier[q]
			// v now has exactly: one simple edge to its output, one H edge
			// to w (phases and frontier CZs were peeled above).
			emit(gate.New(gate.H), q)
			o := work.Outputs[q]
			work.RemoveVertex(v)
			delete(qubitOf, v)
			work.SetEdge(w, o, Simple)
			frontier[q] = w
			qubitOf[w] = q
			advanced = true
		}
		if !advanced {
			// Phase gadgets block frontier advancement; pivot one away.
			recoveries--
			if recoveries < 0 || !work.recoverStall(frontier, qubitOf, inputQubit) {
				return nil, ErrNoExtraction
			}
		}
	}

	// Final stage: every frontier vertex sees only input boundaries and
	// the Gauss-Jordan above reduced the frontier-input biadjacency to a
	// permutation. Peel the Hadamard input wires, then realize the
	// permutation with SWAPs.
	perm := make([]int, n) // output qubit -> input qubit
	for q, v := range frontier {
		inQ := -1
		for w, k := range work.adj[v] {
			if work.kind[w] != Boundary {
				return nil, fmt.Errorf("zx: leftover spider neighbor in final stage")
			}
			if iq, isInput := inputQubit[w]; isInput {
				if inQ != -1 {
					return nil, fmt.Errorf("zx: frontier vertex adjacent to two inputs")
				}
				inQ = iq
				if k != Hadamard {
					return nil, fmt.Errorf("zx: input edge not Hadamard after normalization")
				}
				emit(gate.New(gate.H), q)
			}
		}
		if inQ == -1 {
			return nil, fmt.Errorf("zx: frontier vertex disconnected from inputs")
		}
		perm[q] = inQ
	}
	// Emit SWAPs realizing the permutation: wire q must carry input
	// perm[q]. SWAPs are appended to the reversed list, so they land at
	// the front of the final circuit.
	p := append([]int(nil), perm...)
	for q := 0; q < n; q++ {
		for p[q] != q {
			j := p[q]
			emit(gate.New(gate.SWAP), q, j)
			p[q], p[j] = p[j], p[q]
		}
	}

	// Reverse into circuit order.
	for i := len(rev) - 1; i >= 0; i-- {
		out.AppendOp(rev[i])
	}
	return out, nil
}

// recoverStall unblocks a stalled extraction (typically caused by
// phase gadgets): it pivots a zero-phase frontier vertex with an
// interior Pauli neighbor, after detaching the frontier vertex from
// its boundaries with identity-preserving dummy chains so the standard
// interior pivot applies. Returns false when no such pivot exists.
func (g *Graph) recoverStall(frontier []int, qubitOf map[int]int, inputQubit map[int]int) bool {
	for q, v := range frontier {
		if !phaseIsZero(g.phase[v]) {
			continue // phases are peeled at the top of the loop; skip
		}
		for _, w := range g.Neighbors(v) {
			if _, isFrontier := qubitOf[w]; isFrontier {
				continue
			}
			// Unlike the simplifier's pivotCandidate, gadget axes ARE
			// eligible here: destroying the gadget (its leaf becomes an
			// ordinary spider) is exactly how the stall clears.
			if !g.interiorPauliAllH(w) {
				continue
			}
			// Detach v from its output: v -S- out ⇒ v -H- d1 -H- d2 -S- out.
			var out = -1
			for _, nb := range g.Neighbors(v) {
				if g.kind[nb] == Boundary {
					if _, isIn := inputQubit[nb]; !isIn {
						out = nb
					}
				}
			}
			if out == -1 {
				continue
			}
			g.RemoveEdge(v, out)
			d1 := g.AddVertex(ZSpider, 0)
			d2 := g.AddVertex(ZSpider, 0)
			g.SetEdge(v, d1, Hadamard)
			g.SetEdge(d1, d2, Hadamard)
			g.SetEdge(d2, out, Simple)
			// Detach v from inputs: i -H- v ⇒ i -H- e1 -H- e2 -H- v.
			for _, nb := range g.Neighbors(v) {
				if _, isIn := inputQubit[nb]; !isIn {
					continue
				}
				g.RemoveEdge(v, nb)
				e1 := g.AddVertex(ZSpider, 0)
				e2 := g.AddVertex(ZSpider, 0)
				g.SetEdge(nb, e1, Hadamard)
				g.SetEdge(e1, e2, Hadamard)
				g.SetEdge(e2, v, Hadamard)
			}
			g.pivot(v, w)
			delete(qubitOf, v)
			frontier[q] = d2
			qubitOf[d2] = q
			return true
		}
	}
	return false
}

// clone deep-copies the graph.
func (g *Graph) clone() *Graph {
	out := NewGraph()
	out.next = g.next
	for v, k := range g.kind {
		out.kind[v] = k
		out.phase[v] = g.phase[v]
		out.adj[v] = map[int]EKind{}
	}
	for v, nb := range g.adj {
		for w, k := range nb {
			out.adj[v][w] = k
		}
	}
	out.Inputs = append([]int(nil), g.Inputs...)
	out.Outputs = append([]int(nil), g.Outputs...)
	return out
}

// normalizeBoundaries rewrites boundary edges so that every input
// connects to a spider via a Hadamard edge and every output connects to
// a unique fresh spider via a simple edge. All inserted spiders are
// phase-0 Z-spiders, so the diagram's linear map is unchanged.
func (g *Graph) normalizeBoundaries() {
	for _, in := range g.Inputs {
		nb := g.Neighbors(in)
		if len(nb) != 1 {
			panic(fmt.Sprintf("zx: input %d has degree %d", in, len(nb)))
		}
		v := nb[0]
		k := g.adj[in][v]
		if k == Simple {
			// in -S- v  ⇒  in -H- d -H- v (H·H = wire).
			d := g.AddVertex(ZSpider, 0)
			g.RemoveEdge(in, v)
			g.SetEdge(in, d, Hadamard)
			g.combineOrSet(d, v, Hadamard)
		}
	}
	for _, o := range g.Outputs {
		nb := g.Neighbors(o)
		if len(nb) != 1 {
			panic(fmt.Sprintf("zx: output %d has degree %d", o, len(nb)))
		}
		v := nb[0]
		k := g.adj[o][v]
		g.RemoveEdge(o, v)
		if k == Hadamard {
			// v -H- d -S- out.
			d := g.AddVertex(ZSpider, 0)
			g.combineOrSet(v, d, Hadamard)
			g.SetEdge(d, o, Simple)
		} else {
			// v -H- d1 -H- d2 -S- out.
			d1 := g.AddVertex(ZSpider, 0)
			d2 := g.AddVertex(ZSpider, 0)
			g.combineOrSet(v, d1, Hadamard)
			g.SetEdge(d1, d2, Hadamard)
			g.SetEdge(d2, o, Simple)
		}
	}
}

// combineOrSet adds a Hadamard edge, resolving a parallel edge if the
// endpoints are spiders. Fresh vertices never collide, but v may
// already share an edge with another fresh dummy when an input and an
// output normalize against the same spider.
func (g *Graph) combineOrSet(a, b int, k EKind) {
	if g.kind[a] != Boundary && g.kind[b] != Boundary {
		g.combineEdge(a, b, k)
		return
	}
	g.SetEdge(a, b, k)
}

// --- GF(2) bit matrix ---

type bitMatrix struct {
	rows, cols int
	bits       [][]bool
}

func newBitMatrix(rows, cols int) *bitMatrix {
	m := &bitMatrix{rows: rows, cols: cols, bits: make([][]bool, rows)}
	for i := range m.bits {
		m.bits[i] = make([]bool, cols)
	}
	return m
}

func (m *bitMatrix) set(i, j int, v bool) { m.bits[i][j] = v }

func (m *bitMatrix) xorRow(i, j int) {
	for c := 0; c < m.cols; c++ {
		m.bits[i][c] = m.bits[i][c] != m.bits[j][c]
	}
}

// gaussJordan reduces the matrix to reduced row-echelon form over
// GF(2) up to a row permutation, without row swaps (each swap would
// cost CNOTs in the extracted circuit). Every elementary operation
// row[i] ^= row[j] is reported through rowOp(i, j), which must itself
// perform the xorRow (so the caller can keep external state in sync).
func (m *bitMatrix) gaussJordan(rowOp func(i, j int)) {
	used := make([]bool, m.rows)
	for c := 0; c < m.cols; c++ {
		// Prefer the unused pivot row with the fewest set bits: its row
		// additions disturb the other rows least, which keeps the CNOT
		// count of the extraction down.
		pivot := -1
		best := m.cols + 1
		for i := 0; i < m.rows; i++ {
			if used[i] || !m.bits[i][c] {
				continue
			}
			if w := m.rowWeight(i); w < best {
				best = w
				pivot = i
			}
		}
		if pivot == -1 {
			continue
		}
		used[pivot] = true
		for i := 0; i < m.rows; i++ {
			if i != pivot && m.bits[i][c] {
				rowOp(i, pivot)
			}
		}
	}
}

func (m *bitMatrix) rowWeight(i int) int {
	w := 0
	for c := 0; c < m.cols; c++ {
		if m.bits[i][c] {
			w++
		}
	}
	return w
}

// singleOne returns (col, true) if row i has exactly one set bit.
func (m *bitMatrix) singleOne(i int) (int, bool) {
	col := -1
	for c := 0; c < m.cols; c++ {
		if m.bits[i][c] {
			if col != -1 {
				return -1, false
			}
			col = c
		}
	}
	return col, col != -1
}
