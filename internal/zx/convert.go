package zx

import (
	"fmt"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/optimize"
)

// FromCircuit converts a circuit to a ZX-diagram. Gates outside the
// {RZ, RX, H, CX, CZ} basis are decomposed first, so any registry gate
// is accepted; block gates must be synthesized beforehand.
func FromCircuit(c *circuit.Circuit) *Graph {
	basis := optimize.DecomposeToBasis(c)
	g := NewGraph()
	n := c.NumQubits

	// Per-qubit chain state: the last vertex on the wire and the kind of
	// the pending edge to the next vertex (Hadamard gates toggle it).
	last := make([]int, n)
	pending := make([]EKind, n)
	g.Inputs = make([]int, n)
	g.Outputs = make([]int, n)
	for q := 0; q < n; q++ {
		in := g.AddVertex(Boundary, 0)
		g.Inputs[q] = in
		last[q] = in
		pending[q] = Simple
	}

	// attach appends a new vertex to qubit q's wire.
	attach := func(q int, k VKind, phase float64) int {
		v := g.AddVertex(k, phase)
		g.SetEdge(last[q], v, pending[q])
		last[q] = v
		pending[q] = Simple
		return v
	}

	for _, op := range basis.Ops {
		switch op.G.Kind {
		case gate.H:
			q := op.Qubits[0]
			if pending[q] == Simple {
				pending[q] = Hadamard
			} else {
				pending[q] = Simple
			}
		case gate.RZ:
			attach(op.Qubits[0], ZSpider, op.G.Params[0])
		case gate.RX:
			attach(op.Qubits[0], XSpider, op.G.Params[0])
		case gate.CZ:
			a := attach(op.Qubits[0], ZSpider, 0)
			b := attach(op.Qubits[1], ZSpider, 0)
			g.SetEdge(a, b, Hadamard)
		case gate.CX:
			ctrl := attach(op.Qubits[0], ZSpider, 0)
			tgt := attach(op.Qubits[1], XSpider, 0)
			g.SetEdge(ctrl, tgt, Simple)
		default:
			panic(fmt.Sprintf("zx: unexpected basis gate %s", op.G.Kind))
		}
	}

	for q := 0; q < n; q++ {
		out := g.AddVertex(Boundary, 0)
		g.Outputs[q] = out
		g.SetEdge(last[q], out, pending[q])
	}
	return g
}
