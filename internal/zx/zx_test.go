package zx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// roundTrip converts, optionally simplifies, extracts and compares
// unitaries up to global phase.
func roundTrip(t *testing.T, c *circuit.Circuit, simplify bool, context string) *circuit.Circuit {
	t.Helper()
	g := FromCircuit(c)
	if simplify {
		g.Simplify()
	} else {
		g.ToGraphLike()
	}
	out, err := g.ToCircuit()
	if err != nil {
		t.Fatalf("%s: extraction failed: %v\n%s", context, err, g)
	}
	d := linalg.PhaseDistance(c.Unitary(), out.Unitary())
	if d > 1e-7 {
		t.Fatalf("%s: round trip changed unitary (distance %v)\noriginal:\n%s\nextracted:\n%s",
			context, d, c, out)
	}
	return out
}

func TestEmptyCircuitRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		roundTrip(t, circuit.New(n), false, "empty")
		roundTrip(t, circuit.New(n), true, "empty simplified")
	}
}

func TestSingleGateRoundTrips(t *testing.T) {
	cases := []struct {
		name  string
		build func() *circuit.Circuit
	}{
		{"H", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.H), 0) }},
		{"X", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.X), 0) }},
		{"Z", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.Z), 0) }},
		{"S", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.S), 0) }},
		{"T", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.T), 0) }},
		{"RZ", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.RZ, 0.7), 0) }},
		{"RX", func() *circuit.Circuit { return circuit.New(1).Append(gate.New(gate.RX, 1.1), 0) }},
		{"CX", func() *circuit.Circuit { return circuit.New(2).Append(gate.New(gate.CX), 0, 1) }},
		{"CXrev", func() *circuit.Circuit { return circuit.New(2).Append(gate.New(gate.CX), 1, 0) }},
		{"CZ", func() *circuit.Circuit { return circuit.New(2).Append(gate.New(gate.CZ), 0, 1) }},
		{"SWAP", func() *circuit.Circuit { return circuit.New(2).Append(gate.New(gate.SWAP), 0, 1) }},
	}
	for _, tc := range cases {
		roundTrip(t, tc.build(), false, tc.name+" unsimplified")
		roundTrip(t, tc.build(), true, tc.name+" simplified")
	}
}

func TestBellAndGHZRoundTrip(t *testing.T) {
	bell := circuit.New(2)
	bell.Append(gate.New(gate.H), 0)
	bell.Append(gate.New(gate.CX), 0, 1)
	roundTrip(t, bell, true, "bell")

	ghz := circuit.New(3)
	ghz.Append(gate.New(gate.H), 0)
	ghz.Append(gate.New(gate.CX), 0, 1)
	ghz.Append(gate.New(gate.CX), 1, 2)
	roundTrip(t, ghz, true, "ghz")
}

func TestFromCircuitStructure(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	g := FromCircuit(c)
	if len(g.Inputs) != 2 || len(g.Outputs) != 2 {
		t.Fatal("boundary counts wrong")
	}
	// CX adds one Z and one X spider.
	zs, xs := 0, 0
	for _, v := range g.Vertices() {
		switch g.Kind(v) {
		case ZSpider:
			zs++
		case XSpider:
			xs++
		}
	}
	if zs != 1 || xs != 1 {
		t.Fatalf("spiders: %d Z, %d X", zs, xs)
	}
}

func TestColorChangeRemovesXSpiders(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.RX, 0.4), 0)
	g := FromCircuit(c)
	g.ToGraphLike()
	for _, v := range g.Vertices() {
		if g.Kind(v) == XSpider {
			t.Fatal("X spider survived ToGraphLike")
		}
	}
	// All spider-spider edges must be Hadamard.
	for _, v := range g.Vertices() {
		if g.Kind(v) != ZSpider {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if g.Kind(w) == ZSpider {
				if k, _ := g.Edge(v, w); k != Hadamard {
					t.Fatal("simple spider-spider edge survived ToGraphLike")
				}
			}
		}
	}
}

func TestFusionMergesPhases(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.RZ, 0.3), 0)
	c.Append(gate.New(gate.RZ, 0.4), 0)
	g := FromCircuit(c)
	g.ToGraphLike()
	var phases []float64
	for _, v := range g.Vertices() {
		if g.Kind(v) == ZSpider && !phaseIsZero(g.Phase(v)) {
			phases = append(phases, g.Phase(v))
		}
	}
	if len(phases) != 1 || math.Abs(phases[0]-0.7) > 1e-9 {
		t.Fatalf("fusion phases: %v", phases)
	}
}

func TestSimplifyReducesSpiderCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomCliffordT(4, 60, rng)
	g := FromCircuit(c)
	before := g.NumSpiders()
	g.Simplify()
	after := g.NumSpiders()
	if after >= before {
		t.Fatalf("Simplify did not reduce spiders: %d -> %d", before, after)
	}
}

func TestRoundTripRandomCliffords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(3)
		c := randomClifford(n, 10+rng.Intn(30), rng)
		roundTrip(t, c, true, "random clifford")
	}
}

func TestRoundTripRandomCliffordT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(3)
		c := randomCliffordT(n, 10+rng.Intn(30), rng)
		roundTrip(t, c, true, "random clifford+T")
	}
}

func TestRoundTripRandomRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(3)
		c := randomRotations(n, 10+rng.Intn(25), rng)
		roundTrip(t, c, true, "random rotations")
	}
}

func TestRoundTripUnsimplified(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		c := randomCliffordT(3, 20, rng)
		roundTrip(t, c, false, "unsimplified")
	}
}

func TestOptimizeReducesDepthOnCliffordHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	improved := 0
	for trial := 0; trial < 10; trial++ {
		c := randomClifford(4, 60, rng)
		out := roundTrip(t, c, true, "depth check")
		if out.Depth() < c.Depth() {
			improved++
		}
	}
	if improved < 5 {
		t.Fatalf("Simplify+extract rarely reduces Clifford depth (%d/10)", improved)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCliffordT(3, 15+rng.Intn(15), rng)
		g := FromCircuit(c)
		g.Simplify()
		out, err := g.ToCircuit()
		if err != nil {
			return false
		}
		return linalg.PhaseDistance(c.Unitary(), out.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex(ZSpider, 0.5)
	b := g.AddVertex(XSpider, 0)
	g.SetEdge(a, b, Hadamard)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatal("counts wrong")
	}
	if k, ok := g.Edge(b, a); !ok || k != Hadamard {
		t.Fatal("edge lookup wrong")
	}
	g.AddToPhase(a, 2*math.Pi-0.5)
	if !phaseIsZero(g.Phase(a)) {
		t.Fatalf("phase wrap: %v", g.Phase(a))
	}
	g.RemoveVertex(b)
	if g.Degree(a) != 0 {
		t.Fatal("RemoveVertex left a dangling edge")
	}
	if len(g.String()) == 0 {
		t.Fatal("empty String")
	}
}

func TestPhasePredicates(t *testing.T) {
	if !phaseIsPauli(0) || !phaseIsPauli(math.Pi) || phaseIsPauli(math.Pi/2) {
		t.Fatal("phaseIsPauli wrong")
	}
	if !phaseIsProperClifford(math.Pi/2) || !phaseIsProperClifford(-math.Pi/2) || phaseIsProperClifford(math.Pi) {
		t.Fatal("phaseIsProperClifford wrong")
	}
}

func randomClifford(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	kinds := []gate.Kind{gate.H, gate.S, gate.Sdg, gate.X, gate.Z}
	for i := 0; i < ops; i++ {
		if rng.Intn(3) == 0 && n > 1 {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			if rng.Intn(2) == 0 {
				c.Append(gate.New(gate.CX), a, b)
			} else {
				c.Append(gate.New(gate.CZ), a, b)
			}
		} else {
			c.Append(gate.New(kinds[rng.Intn(len(kinds))]), rng.Intn(n))
		}
	}
	return c
}

func randomCliffordT(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	kinds := []gate.Kind{gate.H, gate.S, gate.T, gate.Tdg, gate.X, gate.Z}
	for i := 0; i < ops; i++ {
		if rng.Intn(3) == 0 && n > 1 {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		} else {
			c.Append(gate.New(kinds[rng.Intn(len(kinds))]), rng.Intn(n))
		}
	}
	return c
}

func randomRotations(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0:
			c.Append(gate.New(gate.H), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
		case 2:
			c.Append(gate.New(gate.RX, rng.Float64()*2*math.Pi), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
