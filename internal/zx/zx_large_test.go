package zx

import (
	"math"
	"math/rand"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/sim"
)

// simEquivalent checks equivalence up to global phase on random
// product states — viable for widths where full unitaries are too big.
func simEquivalent(t *testing.T, a, b *circuit.Circuit, context string) {
	t.Helper()
	if a.NumQubits != b.NumQubits {
		t.Fatalf("%s: qubit counts differ", context)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		sa := sim.NewState(a.NumQubits)
		for q := 0; q < a.NumQubits; q++ {
			sa.ApplyMatrix(linalg.RandomUnitary(2, rng), []int{q})
		}
		sb := sa.Clone()
		sa.Run(a)
		sb.Run(b)
		if f := sa.Fidelity(sb); math.Abs(f-1) > 1e-8 {
			t.Fatalf("%s: trial %d fidelity %v", context, trial, f)
		}
	}
}

func TestRoundTripFiveQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		c := randomCliffordT(5, 40+rng.Intn(40), rng)
		g := FromCircuit(c)
		g.Simplify()
		out, err := g.ToCircuit()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		simEquivalent(t, c, out, "5q round trip")
	}
}

func TestRoundTripSixQubitsStructured(t *testing.T) {
	// GHZ-like + phase layers: highly structured circuits stress the
	// extraction's final permutation stage.
	c := circuit.New(6)
	c.Append(gate.New(gate.H), 0)
	for q := 0; q < 5; q++ {
		c.Append(gate.New(gate.CX), q, q+1)
	}
	for q := 0; q < 6; q++ {
		c.Append(gate.New(gate.T), q)
	}
	for q := 4; q >= 0; q-- {
		c.Append(gate.New(gate.CX), q, q+1)
	}
	c.Append(gate.New(gate.H), 0)
	g := FromCircuit(c)
	g.Simplify()
	out, err := g.ToCircuit()
	if err != nil {
		t.Fatal(err)
	}
	simEquivalent(t, c, out, "6q structured")
}

func TestRoundTripDeepCliffordChain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := randomClifford(4, 150, rng)
	g := FromCircuit(c)
	before := g.NumSpiders()
	g.Simplify()
	if g.NumSpiders() >= before/2 {
		t.Fatalf("deep Clifford chain barely simplified: %d -> %d spiders", before, g.NumSpiders())
	}
	out, err := g.ToCircuit()
	if err != nil {
		t.Fatal(err)
	}
	simEquivalent(t, c, out, "deep clifford")
}

func TestExtractionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	c := randomCliffordT(4, 30, rng)
	g1 := FromCircuit(c)
	g1.Simplify()
	out1, err := g1.ToCircuit()
	if err != nil {
		t.Fatal(err)
	}
	g2 := FromCircuit(c)
	g2.Simplify()
	out2, err := g2.ToCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if out1.Len() != out2.Len() || out1.Depth() != out2.Depth() {
		t.Fatalf("extraction not deterministic: %d/%d vs %d/%d ops/depth",
			out1.Len(), out1.Depth(), out2.Len(), out2.Depth())
	}
	for i := range out1.Ops {
		if out1.Ops[i].String() != out2.Ops[i].String() {
			t.Fatalf("op %d differs: %s vs %s", i, out1.Ops[i], out2.Ops[i])
		}
	}
}
