package zx

import (
	"math"
	"math/rand"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// fullRoundTrip converts, FullSimplify-es, extracts and compares.
func fullRoundTrip(t *testing.T, c *circuit.Circuit, context string) *circuit.Circuit {
	t.Helper()
	g := FromCircuit(c)
	g.FullSimplify()
	out, err := g.ToCircuit()
	if err != nil {
		t.Fatalf("%s: extraction failed: %v", context, err)
	}
	if d := linalg.PhaseDistance(c.Unitary(), out.Unitary()); d > 1e-7 {
		t.Fatalf("%s: full_reduce round trip changed unitary (distance %v)", context, d)
	}
	return out
}

func TestFullSimplifySingleGates(t *testing.T) {
	for _, k := range []gate.Kind{gate.T, gate.S, gate.H, gate.X} {
		c := circuit.New(1).Append(gate.New(k), 0)
		fullRoundTrip(t, c, string(k))
	}
	c := circuit.New(2).Append(gate.New(gate.CX), 0, 1)
	fullRoundTrip(t, c, "cx")
}

func TestFullSimplifyPhasePolynomial(t *testing.T) {
	// A classic phase-polynomial circuit: CX ladders with RZ cores.
	// full_reduce should fuse the repeated ZZ-phase gadgets.
	c := circuit.New(3)
	for rep := 0; rep < 3; rep++ {
		c.Append(gate.New(gate.CX), 0, 1)
		c.Append(gate.New(gate.RZ, 0.3), 1)
		c.Append(gate.New(gate.CX), 0, 1)
	}
	out := fullRoundTrip(t, c, "phase polynomial")
	// Three identical gadgets fuse into one rotation's worth of work.
	if out.TwoQubitCount() > 2 {
		t.Fatalf("gadget fusion failed: %d two-qubit gates (want <= 2):\n%s", out.TwoQubitCount(), out)
	}
}

func TestFullSimplifyRandomCliffordT(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3)
		c := randomCliffordT(n, 15+rng.Intn(25), rng)
		fullRoundTrip(t, c, "random clifford+T")
	}
}

func TestFullSimplifyRandomRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(3)
		c := randomRotations(n, 15+rng.Intn(20), rng)
		fullRoundTrip(t, c, "random rotations")
	}
}

func TestFullSimplifyReducesTCount(t *testing.T) {
	// T gates sandwiched in CX conjugation: the same ZZ-gadget appears
	// twice and must fuse (the Kissinger–van de Wetering phase
	// teleportation effect).
	c := circuit.New(2)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.T), 1)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.T), 1)
	c.Append(gate.New(gate.CX), 0, 1)
	out := fullRoundTrip(t, c, "phase teleportation")
	// Count non-Clifford 1q rotations in the output: full_reduce must
	// never inflate the T-count (2 here), and usually fuses them.
	nonClifford := 0
	for _, op := range out.Ops {
		if op.G.Kind == gate.RZ && !cliffordAngle(op.G.Params[0]) {
			nonClifford++
		}
		if op.G.Kind == gate.T || op.G.Kind == gate.Tdg {
			nonClifford++
		}
	}
	if nonClifford > 2 {
		t.Fatalf("T-count inflated: %d non-Clifford rotations\n%s", nonClifford, out)
	}
}

func TestGadgetFusionDirect(t *testing.T) {
	// Build two gadgets with identical legs by hand and fuse them.
	g := NewGraph()
	l1 := g.AddVertex(ZSpider, 0.3)
	a1 := g.AddVertex(ZSpider, 0)
	l2 := g.AddVertex(ZSpider, 0.4)
	a2 := g.AddVertex(ZSpider, 0)
	leg1 := g.AddVertex(ZSpider, 0.1)
	leg2 := g.AddVertex(ZSpider, 0.2)
	g.SetEdge(l1, a1, Hadamard)
	g.SetEdge(l2, a2, Hadamard)
	for _, axis := range []int{a1, a2} {
		g.SetEdge(axis, leg1, Hadamard)
		g.SetEdge(axis, leg2, Hadamard)
	}
	if !g.fuseGadgets() {
		t.Fatal("fuseGadgets found nothing")
	}
	// One gadget remains (the other axis+leaf were deleted), and the
	// surviving leaf carries the summed phase 0.3+0.4.
	if g.NumVertices() != 4 {
		t.Fatalf("expected 4 vertices after fusion, got %d", g.NumVertices())
	}
	survivor := l1
	if _, ok := g.kind[l1]; !ok {
		survivor = l2
	}
	if math.Abs(g.Phase(survivor)-0.7) > 1e-9 {
		t.Fatalf("fused leaf phase %v, want 0.7", g.Phase(survivor))
	}
}

func TestIsGadgetAxis(t *testing.T) {
	g := NewGraph()
	leaf := g.AddVertex(ZSpider, 0.5)
	axis := g.AddVertex(ZSpider, 0)
	leg := g.AddVertex(ZSpider, 0)
	other := g.AddVertex(ZSpider, 0)
	anchor := g.AddVertex(ZSpider, 0.3)
	g.SetEdge(leaf, axis, Hadamard)
	g.SetEdge(axis, leg, Hadamard)
	g.SetEdge(leg, other, Hadamard)
	// Keep every non-leaf vertex at degree ≥ 2 so the axis is unambiguous.
	g.SetEdge(other, anchor, Hadamard)
	g.SetEdge(anchor, leg, Hadamard)
	if !g.isGadgetAxis(axis) {
		t.Fatal("axis not recognized")
	}
	if g.isGadgetAxis(leg) || g.isGadgetAxis(leaf) || g.isGadgetAxis(other) {
		t.Fatal("non-axis recognized as axis")
	}
	if g.gadgetLeaf(axis) != leaf {
		t.Fatal("wrong leaf")
	}
}

func TestFullSimplifyVQEStyle(t *testing.T) {
	// UCCSD-like structure: basis change + ladder + RZ + ladder + undo,
	// twice with different angles — gadgets over the same legs fuse.
	c := circuit.New(3)
	term := func(theta float64) {
		c.Append(gate.New(gate.H), 0)
		c.Append(gate.New(gate.H), 2)
		c.Append(gate.New(gate.CX), 0, 1)
		c.Append(gate.New(gate.CX), 1, 2)
		c.Append(gate.New(gate.RZ, theta), 2)
		c.Append(gate.New(gate.CX), 1, 2)
		c.Append(gate.New(gate.CX), 0, 1)
		c.Append(gate.New(gate.H), 0)
		c.Append(gate.New(gate.H), 2)
	}
	term(0.4)
	term(0.9)
	out := fullRoundTrip(t, c, "uccsd terms")
	if out.TwoQubitCount() >= c.TwoQubitCount() {
		t.Fatalf("full_reduce did not reduce 2q count: %d -> %d",
			c.TwoQubitCount(), out.TwoQubitCount())
	}
}

func cliffordAngle(theta float64) bool {
	m := math.Mod(theta, math.Pi/2)
	if m < 0 {
		m += math.Pi / 2
	}
	return m < 1e-9 || math.Pi/2-m < 1e-9
}

func TestTCount(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.T), 1)
	c.Append(gate.New(gate.S), 0) // Clifford: not counted
	c.Append(gate.New(gate.RZ, 0.3), 1)
	g := FromCircuit(c)
	if got := g.TCount(); got != 3 {
		t.Fatalf("TCount = %d, want 3 (two T + one arbitrary RZ)", got)
	}
	// Phase teleportation through full_reduce must not raise it.
	g.FullSimplify()
	if got := g.TCount(); got > 3 {
		t.Fatalf("FullSimplify raised T-count to %d", got)
	}
}
