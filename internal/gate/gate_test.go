package gate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/linalg"
)

const tol = 1e-10

func TestAllFixedGatesAreUnitary(t *testing.T) {
	for kind, spec := range Registry {
		params := make([]float64, spec.Params)
		for i := range params {
			params[i] = 0.3 * float64(i+1)
		}
		g := New(kind, params...)
		m := g.Matrix()
		if m.Rows != 1<<spec.Qubits {
			t.Errorf("%s: matrix is %dx%d for %d qubits", kind, m.Rows, m.Cols, spec.Qubits)
		}
		if !m.IsUnitary(tol) {
			t.Errorf("%s: matrix not unitary:\n%v", kind, m)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	x := New(X).Matrix()
	y := New(Y).Matrix()
	z := New(Z).Matrix()
	// XY = iZ
	if !x.Mul(y).Equal(z.Scale(1i), tol) {
		t.Fatal("XY != iZ")
	}
	// HXH = Z
	h := New(H).Matrix()
	if !h.Mul(x).Mul(h).Equal(z, tol) {
		t.Fatal("HXH != Z")
	}
	// S² = Z, T² = S
	s := New(S).Matrix()
	if !s.Mul(s).Equal(z, tol) {
		t.Fatal("S² != Z")
	}
	tt := New(T).Matrix()
	if !tt.Mul(tt).Equal(s, tol) {
		t.Fatal("T² != S")
	}
	// SX² = X
	sx := New(SX).Matrix()
	if !sx.Mul(sx).Equal(x, tol) {
		t.Fatal("SX² != X")
	}
}

func TestRotationsMatchExponentials(t *testing.T) {
	theta := 1.234
	for _, tc := range []struct {
		kind Kind
		p    *linalg.Matrix
	}{
		{RX, New(X).Matrix()},
		{RY, New(Y).Matrix()},
		{RZ, New(Z).Matrix()},
	} {
		want := linalg.Expm(tc.p.Scale(complex(0, -theta/2)))
		got := New(tc.kind, theta).Matrix()
		if !got.Equal(want, tol) {
			t.Errorf("%s(θ) != exp(-iθP/2):\n%v\nvs\n%v", tc.kind, got, want)
		}
	}
}

func TestU3SpecialCases(t *testing.T) {
	// U3(π, 0, π) = X
	if !New(U3, math.Pi, 0, math.Pi).Matrix().Equal(New(X).Matrix(), tol) {
		t.Fatal("U3(π,0,π) != X")
	}
	// U3(π/2, 0, π) = H
	if !New(U3, math.Pi/2, 0, math.Pi).Matrix().Equal(New(H).Matrix(), tol) {
		t.Fatal("U3(π/2,0,π) != H")
	}
	// U2(φ,λ) = U3(π/2,φ,λ)
	if !New(U2, 0.3, 0.7).Matrix().Equal(New(U3, math.Pi/2, 0.3, 0.7).Matrix(), tol) {
		t.Fatal("U2 != U3(π/2,·,·)")
	}
	// U1(λ) = P(λ)
	if !New(U1, 0.9).Matrix().Equal(New(P, 0.9).Matrix(), tol) {
		t.Fatal("U1 != P")
	}
}

func TestCXTruthTable(t *testing.T) {
	cx := New(CX).Matrix()
	// Little-endian: index = (target<<1)|control. c=1,t=0 (idx 1) → c=1,t=1 (idx 3).
	cases := map[int]int{0: 0, 1: 3, 2: 2, 3: 1}
	for in, out := range cases {
		for row := 0; row < 4; row++ {
			want := complex128(0)
			if row == out {
				want = 1
			}
			if cx.At(row, in) != want {
				t.Fatalf("CX[%d][%d] = %v, want %v", row, in, cx.At(row, in), want)
			}
		}
	}
}

func TestCZSymmetric(t *testing.T) {
	cz := New(CZ).Matrix()
	if !cz.Equal(cz.Transpose(), tol) {
		t.Fatal("CZ should be symmetric")
	}
	// Only |11> picks up the minus sign.
	if cz.At(3, 3) != -1 || cz.At(0, 0) != 1 || cz.At(1, 1) != 1 || cz.At(2, 2) != 1 {
		t.Fatalf("CZ diagonal wrong:\n%v", cz)
	}
}

func TestSwapTruthTable(t *testing.T) {
	sw := New(SWAP).Matrix()
	v := []complex128{0, 1, 0, 0} // |q1=0, q0=1>
	got := sw.MulVec(v)
	if got[2] != 1 { // expect |q1=1, q0=0>
		t.Fatalf("SWAP|01> = %v", got)
	}
}

func TestToffoliTruthTable(t *testing.T) {
	ccx := New(CCX).Matrix()
	// controls q0,q1 set (bits 0,1), target q2: |011> (3) <-> |111> (7)
	for in, out := range map[int]int{0: 0, 1: 1, 2: 2, 3: 7, 4: 4, 5: 5, 6: 6, 7: 3} {
		v := make([]complex128, 8)
		v[in] = 1
		got := ccx.MulVec(v)
		if got[out] != 1 {
			t.Fatalf("CCX|%03b> expected |%03b>, got %v", in, out, got)
		}
	}
}

func TestFredkinTruthTable(t *testing.T) {
	cs := New(CSWP).Matrix()
	// control q0=1: swap q1,q2. |c=1,q1=1,q2=0> = 0b011 = 3 → 0b101 = 5.
	for in, out := range map[int]int{0: 0, 1: 1, 2: 2, 3: 5, 4: 4, 5: 3, 6: 6, 7: 7} {
		v := make([]complex128, 8)
		v[in] = 1
		got := cs.MulVec(v)
		if got[out] != 1 {
			t.Fatalf("CSWAP|%03b> expected |%03b>", in, out)
		}
	}
}

func TestRZZDiagonal(t *testing.T) {
	theta := 0.8
	m := New(RZZ, theta).Matrix()
	e := func(s float64) complex128 {
		return complex(math.Cos(s), math.Sin(s))
	}
	want := []complex128{e(-theta / 2), e(theta / 2), e(theta / 2), e(-theta / 2)}
	for i, w := range want {
		if d := m.At(i, i) - w; math.Abs(real(d))+math.Abs(imag(d)) > tol {
			t.Fatalf("RZZ diag[%d] = %v, want %v", i, m.At(i, i), w)
		}
	}
}

func TestDaggerInvertsEveryKind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for kind, spec := range Registry {
		params := make([]float64, spec.Params)
		for i := range params {
			params[i] = rng.Float64()*2 - 1
		}
		g := New(kind, params...)
		id := linalg.Identity(1 << spec.Qubits)
		prod := g.Matrix().Mul(g.Dagger().Matrix())
		if !prod.Equal(id, 1e-9) {
			t.Errorf("%s: G·G† != I:\n%v", kind, prod)
		}
	}
}

func TestDaggerBlockGates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := linalg.RandomUnitary(4, rng)
	for _, g := range []Gate{NewUnitary(u), NewVUG(u)} {
		if !g.Matrix().Mul(g.Dagger().Matrix()).Equal(linalg.Identity(4), 1e-9) {
			t.Errorf("%s block dagger failed", g.Kind)
		}
	}
}

func TestBlockGateQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 3; n++ {
		g := NewUnitary(linalg.RandomUnitary(1<<n, rng))
		if g.Qubits() != n {
			t.Fatalf("block on %d qubits reports %d", n, g.Qubits())
		}
		if !g.IsBlock() {
			t.Fatal("unitary should be a block")
		}
	}
	if New(CX).IsBlock() {
		t.Fatal("CX is not a block")
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Kind("nope")) },
		func() { New(RX) },                            // missing param
		func() { New(X, 1.0) },                        // extra param
		func() { NewUnitary(linalg.NewMatrix(3, 3)) }, // not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestIsDiagonal(t *testing.T) {
	for _, k := range []Kind{Z, S, T, RZ, CZ, RZZ, P} {
		spec := Registry[k]
		params := make([]float64, spec.Params)
		for i := range params {
			params[i] = 0.4
		}
		g := New(k, params...)
		m := g.Matrix()
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				if i != j && m.At(i, j) != 0 {
					t.Fatalf("%s claims diagonal but M[%d][%d]=%v", k, i, j, m.At(i, j))
				}
			}
		}
		if !g.IsDiagonal() {
			t.Fatalf("%s should report IsDiagonal", k)
		}
	}
	if New(X).IsDiagonal() || New(H).IsDiagonal() {
		t.Fatal("X/H are not diagonal")
	}
}

func TestIsSelfInverseConsistent(t *testing.T) {
	for kind, spec := range Registry {
		if spec.Params > 0 {
			continue
		}
		g := New(kind)
		claims := g.IsSelfInverse()
		actual := g.Matrix().Mul(g.Matrix()).Equal(linalg.Identity(1<<spec.Qubits), 1e-9)
		if claims != actual {
			t.Errorf("%s: IsSelfInverse=%v but matrix says %v", kind, claims, actual)
		}
	}
}

func TestStringFormats(t *testing.T) {
	if New(X).String() != "x" {
		t.Fatalf("X string: %q", New(X).String())
	}
	if got := New(RX, 0.5).String(); got != "rx(0.5)" {
		t.Fatalf("RX string: %q", got)
	}
	rng := rand.New(rand.NewSource(1))
	if got := NewVUG(linalg.RandomUnitary(2, rng)).String(); got != "vug[1q]" {
		t.Fatalf("VUG string: %q", got)
	}
}

func TestQuickRotationComposition(t *testing.T) {
	// RZ(a)·RZ(b) = RZ(a+b) for random angles.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := rng.Float64()*4-2, rng.Float64()*4-2
		lhs := New(RZ, a).Matrix().Mul(New(RZ, b).Matrix())
		rhs := New(RZ, a+b).Matrix()
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickU3Covers1QUnitaries(t *testing.T) {
	// Any U3 matrix must be unitary for arbitrary angles.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(U3, rng.Float64()*6, rng.Float64()*6, rng.Float64()*6)
		return g.Matrix().IsUnitary(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
