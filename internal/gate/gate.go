// Package gate defines the quantum gate set used throughout the
// compiler: fixed Clifford+T gates, parameterized rotations, controlled
// gates and matrix-carrying block gates (partitioned subcircuits and
// variable unitary gates produced by synthesis).
//
// Convention: gate-local qubit 0 is the least-significant bit of a
// basis-state index (little-endian, as in Qiskit). For controlled gates
// the control is gate-local qubit 0 and the target is qubit 1.
package gate

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"

	"epoc/internal/linalg"
)

// Kind names a gate type.
type Kind string

// Supported gate kinds.
const (
	I    Kind = "id"
	X    Kind = "x"
	Y    Kind = "y"
	Z    Kind = "z"
	H    Kind = "h"
	S    Kind = "s"
	Sdg  Kind = "sdg"
	T    Kind = "t"
	Tdg  Kind = "tdg"
	SX   Kind = "sx"
	SXdg Kind = "sxdg"
	RX   Kind = "rx"
	RY   Kind = "ry"
	RZ   Kind = "rz"
	P    Kind = "p" // phase gate, diag(1, e^{iλ})
	U1   Kind = "u1"
	U2   Kind = "u2"
	U3   Kind = "u3"
	CX   Kind = "cx"
	CY   Kind = "cy"
	CZ   Kind = "cz"
	CH   Kind = "ch"
	CRX  Kind = "crx"
	CRY  Kind = "cry"
	CRZ  Kind = "crz"
	CP   Kind = "cp"
	RXX  Kind = "rxx"
	RZZ  Kind = "rzz"
	SWAP Kind = "swap"
	CCX  Kind = "ccx"   // Toffoli: controls are qubits 0,1, target is qubit 2
	CSWP Kind = "cswap" // Fredkin: control is qubit 0, swapped pair 1,2

	// Unitary is a matrix-carrying block gate: a partitioned subcircuit
	// or a regrouped block whose matrix is stored explicitly.
	Unitary Kind = "unitary"
	// VUG is a variable unitary gate produced by synthesis; like Unitary
	// it carries an explicit matrix, but it is tagged separately so the
	// regrouping pass and reports can distinguish synthesis output.
	VUG Kind = "vug"
)

// Gate is a single quantum gate, possibly parameterized or carrying an
// explicit matrix (for Unitary/VUG kinds).
type Gate struct {
	Kind   Kind
	Params []float64
	// Mat is set only for Unitary and VUG kinds.
	Mat *linalg.Matrix
}

// Spec describes a gate kind's shape.
type Spec struct {
	Qubits int
	Params int
}

// Registry maps every fixed-size gate kind to its arity and parameter
// count. Unitary/VUG are excluded: their arity depends on the matrix.
var Registry = map[Kind]Spec{
	I: {1, 0}, X: {1, 0}, Y: {1, 0}, Z: {1, 0}, H: {1, 0},
	S: {1, 0}, Sdg: {1, 0}, T: {1, 0}, Tdg: {1, 0}, SX: {1, 0}, SXdg: {1, 0},
	RX: {1, 1}, RY: {1, 1}, RZ: {1, 1}, P: {1, 1}, U1: {1, 1}, U2: {1, 2}, U3: {1, 3},
	CX: {2, 0}, CY: {2, 0}, CZ: {2, 0}, CH: {2, 0},
	CRX: {2, 1}, CRY: {2, 1}, CRZ: {2, 1}, CP: {2, 1},
	RXX: {2, 1}, RZZ: {2, 1}, SWAP: {2, 0},
	CCX: {3, 0}, CSWP: {3, 0},
}

// New builds a gate of the given kind, validating the parameter count.
func New(k Kind, params ...float64) Gate {
	spec, ok := Registry[k]
	if !ok {
		panic(fmt.Sprintf("gate: unknown kind %q", k))
	}
	if len(params) != spec.Params {
		panic(fmt.Sprintf("gate: %s wants %d params, got %d", k, spec.Params, len(params)))
	}
	return Gate{Kind: k, Params: params}
}

// NewUnitary wraps an explicit unitary matrix as a block gate.
func NewUnitary(m *linalg.Matrix) Gate {
	checkPow2(m)
	return Gate{Kind: Unitary, Mat: m}
}

// NewVUG wraps an explicit unitary matrix as a variable unitary gate.
func NewVUG(m *linalg.Matrix) Gate {
	checkPow2(m)
	return Gate{Kind: VUG, Mat: m}
}

func checkPow2(m *linalg.Matrix) {
	if !m.IsSquare() || m.Rows == 0 || m.Rows&(m.Rows-1) != 0 {
		panic(fmt.Sprintf("gate: matrix dimension %dx%d is not a power of two", m.Rows, m.Cols))
	}
}

// Qubits returns the gate's arity.
func (g Gate) Qubits() int {
	if g.Kind == Unitary || g.Kind == VUG {
		n := 0
		for d := g.Mat.Rows; d > 1; d >>= 1 {
			n++
		}
		return n
	}
	return Registry[g.Kind].Qubits
}

// IsBlock reports whether the gate carries an explicit matrix.
func (g Gate) IsBlock() bool { return g.Kind == Unitary || g.Kind == VUG }

// Matrix returns the gate's unitary in gate-local little-endian
// ordering.
func (g Gate) Matrix() *linalg.Matrix {
	switch g.Kind {
	case Unitary, VUG:
		return g.Mat
	case I:
		return linalg.Identity(2)
	case X:
		return mat2(0, 1, 1, 0)
	case Y:
		return mat2(0, -1i, 1i, 0)
	case Z:
		return mat2(1, 0, 0, -1)
	case H:
		s := complex(1/math.Sqrt2, 0)
		return mat2(s, s, s, -s)
	case S:
		return mat2(1, 0, 0, 1i)
	case Sdg:
		return mat2(1, 0, 0, -1i)
	case T:
		return mat2(1, 0, 0, cmplx.Exp(1i*math.Pi/4))
	case Tdg:
		return mat2(1, 0, 0, cmplx.Exp(-1i*math.Pi/4))
	case SX:
		return mat2(0.5+0.5i, 0.5-0.5i, 0.5-0.5i, 0.5+0.5i)
	case SXdg:
		return mat2(0.5-0.5i, 0.5+0.5i, 0.5+0.5i, 0.5-0.5i)
	case RX:
		c, s := rotHalf(g.Params[0])
		return mat2(c, complex(0, -1)*s, complex(0, -1)*s, c)
	case RY:
		c, s := rotHalf(g.Params[0])
		return mat2(c, -s, s, c)
	case RZ:
		e := cmplx.Exp(complex(0, -g.Params[0]/2))
		return mat2(e, 0, 0, cmplx.Conj(e))
	case P, U1:
		return mat2(1, 0, 0, cmplx.Exp(complex(0, g.Params[0])))
	case U2:
		phi, lam := g.Params[0], g.Params[1]
		inv := complex(1/math.Sqrt2, 0)
		return mat2(
			inv, -inv*cmplx.Exp(complex(0, lam)),
			inv*cmplx.Exp(complex(0, phi)), inv*cmplx.Exp(complex(0, phi+lam)))
	case U3:
		return u3Matrix(g.Params[0], g.Params[1], g.Params[2])
	case CX:
		return controlled(New(X).Matrix())
	case CY:
		return controlled(New(Y).Matrix())
	case CZ:
		return controlled(New(Z).Matrix())
	case CH:
		return controlled(New(H).Matrix())
	case CRX:
		return controlled(New(RX, g.Params[0]).Matrix())
	case CRY:
		return controlled(New(RY, g.Params[0]).Matrix())
	case CRZ:
		return controlled(New(RZ, g.Params[0]).Matrix())
	case CP:
		return controlled(New(P, g.Params[0]).Matrix())
	case RXX:
		return twoBodyRotation(New(X).Matrix(), g.Params[0])
	case RZZ:
		return twoBodyRotation(New(Z).Matrix(), g.Params[0])
	case SWAP:
		m := linalg.NewMatrix(4, 4)
		m.Set(0, 0, 1)
		m.Set(1, 2, 1)
		m.Set(2, 1, 1)
		m.Set(3, 3, 1)
		return m
	case CCX:
		// Controls = qubits 0,1 (low bits), target = qubit 2 (high bit).
		m := linalg.Identity(8)
		m.Set(3, 3, 0)
		m.Set(7, 7, 0)
		m.Set(3, 7, 1)
		m.Set(7, 3, 1)
		return m
	case CSWP:
		// Control = qubit 0; swap qubits 1 and 2 when it is set.
		m := linalg.Identity(8)
		// |c=1, q1=1, q2=0> (index 0b011=3) <-> |c=1, q1=0, q2=1> (0b101=5)
		m.Set(3, 3, 0)
		m.Set(5, 5, 0)
		m.Set(3, 5, 1)
		m.Set(5, 3, 1)
		return m
	}
	panic(fmt.Sprintf("gate: no matrix for kind %q", g.Kind))
}

// Dagger returns the inverse gate.
func (g Gate) Dagger() Gate {
	switch g.Kind {
	case Unitary:
		return NewUnitary(g.Mat.Adjoint())
	case VUG:
		return NewVUG(g.Mat.Adjoint())
	case S:
		return New(Sdg)
	case Sdg:
		return New(S)
	case T:
		return New(Tdg)
	case Tdg:
		return New(T)
	case SX:
		return New(SXdg)
	case SXdg:
		return New(SX)
	case RX, RY, RZ, P, U1, CRX, CRY, CRZ, CP, RXX, RZZ:
		return New(g.Kind, -g.Params[0])
	case U2:
		// U2(φ,λ)† = U3(-π/2, -λ, -φ)
		return New(U3, -math.Pi/2, -g.Params[1], -g.Params[0])
	case U3:
		return New(U3, -g.Params[0], -g.Params[2], -g.Params[1])
	default:
		// Self-inverse gates: I X Y Z H CX CY CZ CH SWAP CCX CSWAP.
		return g
	}
}

// IsSelfInverse reports whether applying the gate twice is the identity.
func (g Gate) IsSelfInverse() bool {
	switch g.Kind {
	case I, X, Y, Z, H, CX, CY, CZ, CH, SWAP, CCX, CSWP:
		return true
	}
	return false
}

// IsDiagonal reports whether the gate's matrix is diagonal in the
// computational basis (commutes with Z-basis operations).
func (g Gate) IsDiagonal() bool {
	switch g.Kind {
	case I, Z, S, Sdg, T, Tdg, RZ, P, U1, CZ, CRZ, CP, RZZ:
		return true
	}
	return false
}

// String renders the gate in QASM-like syntax.
func (g Gate) String() string {
	if g.IsBlock() {
		return fmt.Sprintf("%s[%dq]", g.Kind, g.Qubits())
	}
	if len(g.Params) == 0 {
		return string(g.Kind)
	}
	parts := make([]string, len(g.Params))
	for i, p := range g.Params {
		parts[i] = fmt.Sprintf("%.6g", p)
	}
	return fmt.Sprintf("%s(%s)", g.Kind, strings.Join(parts, ","))
}

func mat2(a, b, c, d complex128) *linalg.Matrix {
	return linalg.FromRows([][]complex128{{a, b}, {c, d}})
}

func rotHalf(theta float64) (c, s complex128) {
	return complex(math.Cos(theta/2), 0), complex(math.Sin(theta/2), 0)
}

func u3Matrix(theta, phi, lam float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(math.Sin(theta/2), 0)
	return mat2(
		c, -s*cmplx.Exp(complex(0, lam)),
		s*cmplx.Exp(complex(0, phi)), c*cmplx.Exp(complex(0, phi+lam)))
}

// controlled returns the controlled version of a 1-qubit unitary with
// the control on gate-local qubit 0 (low bit) and target on qubit 1.
func controlled(u *linalg.Matrix) *linalg.Matrix {
	m := linalg.Identity(4)
	// Basis index = (target<<1) | control: the control-set states are
	// indices 1 (t=0) and 3 (t=1).
	m.Set(1, 1, u.At(0, 0))
	m.Set(1, 3, u.At(0, 1))
	m.Set(3, 1, u.At(1, 0))
	m.Set(3, 3, u.At(1, 1))
	return m
}

// twoBodyRotation returns exp(-i θ/2 · P⊗P) for a 1-qubit Pauli P.
func twoBodyRotation(p *linalg.Matrix, theta float64) *linalg.Matrix {
	pp := p.Kron(p)
	return linalg.Expm(pp.Scale(complex(0, -theta/2)))
}
