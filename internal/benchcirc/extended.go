package benchcirc

import (
	"math"
	"math/rand"
	"sort"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// registryExtended holds benchmarks beyond the paper's 17-circuit
// evaluation set: useful for wider regression coverage and for users
// exploring the compiler, but excluded from the figure reproductions.
var registryExtended = map[string]Generator{
	"dj":        DeutschJozsa,
	"qec5":      QECBitFlip,
	"hs4":       HiddenShift,
	"cc":        CounterfeitCoin,
	"mult":      Multiplier,
	"supremacy": Supremacy,
	"teleport":  Teleport,
	"qwalk":     QuantumWalk,
}

// ExtendedNames returns the extra benchmark names in sorted order.
func ExtendedNames() []string {
	out := make([]string, 0, len(registryExtended))
	for name := range registryExtended {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AllNames returns paper + extended benchmark names.
func AllNames() []string {
	out := append(Names(), ExtendedNames()...)
	sort.Strings(out)
	return out
}

// DeutschJozsa builds a 6-qubit Deutsch-Jozsa instance with a balanced
// oracle f(x) = x0 ⊕ x2 ⊕ x4.
func DeutschJozsa() *circuit.Circuit {
	const n = 5
	c := circuit.New(n + 1)
	c.Append(gate.New(gate.X), n)
	for q := 0; q <= n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	for _, q := range []int{0, 2, 4} {
		c.Append(gate.New(gate.CX), q, n)
	}
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	return c
}

// QECBitFlip builds the 3-qubit bit-flip code with two ancillas:
// encode, inject an X error, syndrome-extract, correct, decode.
func QECBitFlip() *circuit.Circuit {
	c := circuit.New(5)
	// Prepare an interesting data state.
	c.Append(gate.New(gate.RY, 0.83), 0)
	// Encode |ψ⟩ into qubits 0,1,2.
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 0, 2)
	// Error: X on qubit 1.
	c.Append(gate.New(gate.X), 1)
	// Syndrome extraction onto ancillas 3,4.
	c.Append(gate.New(gate.CX), 0, 3)
	c.Append(gate.New(gate.CX), 1, 3)
	c.Append(gate.New(gate.CX), 1, 4)
	c.Append(gate.New(gate.CX), 2, 4)
	// Correction: syndrome 11 on (3,4)? No — X on q1 gives s=(1,1)->
	// here s3=1 (q0⊕q1), s4=1 (q1⊕q2) → flip q1.
	c.Append(gate.New(gate.CCX), 3, 4, 1)
	// Decode.
	c.Append(gate.New(gate.CX), 0, 2)
	c.Append(gate.New(gate.CX), 0, 1)
	return c
}

// HiddenShift builds a 4-qubit Boolean hidden-shift instance with
// shift 1010 and a CZ-based bent-function oracle.
func HiddenShift() *circuit.Circuit {
	const n = 4
	shift := []int{0, 1, 0, 1}
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	for q, s := range shift {
		if s == 1 {
			c.Append(gate.New(gate.X), q)
		}
	}
	oracle := func() {
		c.Append(gate.New(gate.CZ), 0, 1)
		c.Append(gate.New(gate.CZ), 2, 3)
	}
	oracle()
	for q, s := range shift {
		if s == 1 {
			c.Append(gate.New(gate.X), q)
		}
	}
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	oracle()
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	return c
}

// CounterfeitCoin builds a 5-qubit counterfeit-coin finding instance
// (4 coins + oracle ancilla, coin 2 counterfeit).
func CounterfeitCoin() *circuit.Circuit {
	const coins = 4
	c := circuit.New(coins + 1)
	anc := coins
	for q := 0; q < coins; q++ {
		c.Append(gate.New(gate.H), q)
	}
	// Balance oracle: ancilla flips for the counterfeit coin.
	c.Append(gate.New(gate.X), anc)
	c.Append(gate.New(gate.H), anc)
	c.Append(gate.New(gate.CX), 2, anc)
	c.Append(gate.New(gate.H), anc)
	c.Append(gate.New(gate.X), anc)
	for q := 0; q < coins; q++ {
		c.Append(gate.New(gate.H), q)
	}
	return c
}

// Multiplier builds a 2×2-bit quantum multiplier into a 3-bit product
// register (7 qubits) from Toffolis and a ripple carry.
func Multiplier() *circuit.Circuit {
	// a = q0,q1; b = q2,q3; p = q4,q5,q6.
	c := circuit.New(7)
	// Load a = 3 (11), b = 2 (10).
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.X), 1)
	c.Append(gate.New(gate.X), 3)
	// Partial products.
	c.Append(gate.New(gate.CCX), 0, 2, 4) // a0·b0 → p0
	c.Append(gate.New(gate.CCX), 1, 2, 5) // a1·b0 → p1
	c.Append(gate.New(gate.CCX), 0, 3, 5) // a0·b1 → p1 (carry ignored into p2 below)
	c.Append(gate.New(gate.CCX), 1, 3, 6) // a1·b1 → p2
	// Carry from the two p1 contributions.
	c.Append(gate.New(gate.CCX), 5, 4, 6)
	return c
}

// Supremacy builds a 6-qubit random-circuit-sampling style brickwork:
// alternating sqrt-X/sqrt-Y/T layers with CZ bricks (Google style).
func Supremacy() *circuit.Circuit {
	const n = 6
	rng := rand.New(rand.NewSource(12))
	c := circuit.New(n)
	oneQ := []gate.Kind{gate.SX, gate.T}
	for layer := 0; layer < 8; layer++ {
		for q := 0; q < n; q++ {
			if rng.Intn(3) == 0 {
				c.Append(gate.New(gate.RY, math.Pi/2), q)
			} else {
				c.Append(gate.New(oneQ[rng.Intn(len(oneQ))]), q)
			}
		}
		off := layer % 2
		for q := off; q+1 < n; q += 2 {
			c.Append(gate.New(gate.CZ), q, q+1)
		}
	}
	return c
}

// Teleport builds the unitary part of quantum teleportation (the
// classically-controlled corrections become quantum-controlled).
func Teleport() *circuit.Circuit {
	c := circuit.New(3)
	c.Append(gate.New(gate.U3, 0.62, 0.41, 0.27), 0) // payload
	c.Append(gate.New(gate.H), 1)
	c.Append(gate.New(gate.CX), 1, 2)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 1, 2)
	c.Append(gate.New(gate.CZ), 0, 2)
	return c
}

// QuantumWalk builds two steps of a coined quantum walk on a 4-node
// cycle (2 position qubits + 1 coin).
func QuantumWalk() *circuit.Circuit {
	c := circuit.New(3)
	coin := 2
	step := func() {
		c.Append(gate.New(gate.H), coin)
		// Conditional increment (coin=1): +1 mod 4 on (q1 q0).
		c.Append(gate.New(gate.CCX), coin, 0, 1)
		c.Append(gate.New(gate.CX), coin, 0)
		// Conditional decrement (coin=0): flip coin, subtract, flip back.
		c.Append(gate.New(gate.X), coin)
		c.Append(gate.New(gate.CX), coin, 0)
		c.Append(gate.New(gate.CCX), coin, 0, 1)
		c.Append(gate.New(gate.X), coin)
	}
	step()
	step()
	return c
}
