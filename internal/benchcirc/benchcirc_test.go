package benchcirc

import (
	"math"
	"testing"

	"epoc/internal/gate"
	"epoc/internal/sim"
)

func TestAllBenchmarksBuild(t *testing.T) {
	for _, name := range Names() {
		c, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Len() == 0 {
			t.Errorf("%s: empty circuit", name)
		}
		if c.NumQubits < 3 {
			t.Errorf("%s: only %d qubits", name, c.NumQubits)
		}
		if c.Depth() == 0 {
			t.Errorf("%s: zero depth", name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTable1NamesAreKnown(t *testing.T) {
	names := Table1Names()
	if len(names) != 7 {
		t.Fatalf("table 1 has %d circuits", len(names))
	}
	for _, n := range names {
		if _, err := Get(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

func TestSeventeenBenchmarks(t *testing.T) {
	if len(Names()) != 17 {
		t.Fatalf("expected 17 benchmarks (paper evaluates 17), got %d", len(Names()))
	}
}

func TestGHZState(t *testing.T) {
	s := sim.RunCircuit(GHZ8())
	inv := 1 / math.Sqrt2
	if math.Abs(math.Abs(real(s.Amp[0]))-inv) > 1e-9 || math.Abs(math.Abs(real(s.Amp[(1<<8)-1]))-inv) > 1e-9 {
		t.Fatal("GHZ8 did not prepare a GHZ state")
	}
}

func TestWStatePreparation(t *testing.T) {
	s := sim.RunCircuit(WState())
	// W state: equal weight on |0001>, |0010>, |0100>, |1000>.
	for _, idx := range []int{1, 2, 4, 8} {
		if math.Abs(s.Probability(idx)-0.25) > 1e-9 {
			t.Fatalf("W amplitude at %d: %v", idx, s.Probability(idx))
		}
	}
}

func TestBVRecoversSecret(t *testing.T) {
	s := sim.RunCircuit(BV())
	// After BV, the input register holds the secret 11010 (q0..q4) with
	// certainty; the ancilla is in |->.
	secret := 0
	for i, b := range []int{1, 1, 0, 1, 0} {
		if b == 1 {
			secret |= 1 << i
		}
	}
	p := s.Probability(secret) + s.Probability(secret|(1<<5))
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("BV secret probability %v", p)
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|0...0> = uniform superposition.
	s := sim.RunCircuit(QFT(4))
	for i := 0; i < 16; i++ {
		if math.Abs(s.Probability(i)-1.0/16) > 1e-9 {
			t.Fatalf("QFT|0> not uniform at %d: %v", i, s.Probability(i))
		}
	}
}

func TestGroverAmplifiesMarkedState(t *testing.T) {
	s := sim.RunCircuit(Grover())
	// Marked state |101⟩: q0=1, q1=0, q2=1 → index 5.
	marked := s.Probability(5)
	if marked < 0.9 {
		t.Fatalf("Grover marked-state probability %v", marked)
	}
}

func TestQPEEstimatesPhase(t *testing.T) {
	s := sim.RunCircuit(QPE())
	// Phase 0.3125 = 5/16 → counting register should read 5 exactly.
	p := 0.0
	for anc := 0; anc < 2; anc++ {
		p += s.Probability(5 | anc<<4)
	}
	if p < 0.99 {
		t.Fatalf("QPE probability of correct phase %v", p)
	}
}

func TestSimonOracleStructure(t *testing.T) {
	c := Simon()
	if c.CountKind(gate.CX) < 4 {
		t.Fatal("simon oracle too small")
	}
}

func TestVQEIsDeep(t *testing.T) {
	if VQE().Depth() < 20 {
		t.Fatalf("VQE depth %d too shallow for the ZX study", VQE().Depth())
	}
}

func TestRandomCircuitReachesDepth(t *testing.T) {
	c := RandomCircuit(5, 40, 3)
	if c.Depth() < 40 {
		t.Fatalf("random circuit depth %d < 40", c.Depth())
	}
	// Determinism.
	c2 := RandomCircuit(5, 40, 3)
	if c.Len() != c2.Len() {
		t.Fatal("random circuit not deterministic for fixed seed")
	}
}

func TestRandomLayeredShape(t *testing.T) {
	c := RandomLayered(20, 4, 1)
	if c.NumQubits != 20 {
		t.Fatal("wrong width")
	}
	if c.CountKind(gate.CX) == 0 {
		t.Fatal("no entanglement")
	}
	if c.Depth() < 8 {
		t.Fatalf("depth %d too small", c.Depth())
	}
}

func TestDeterministicGenerators(t *testing.T) {
	for _, name := range Names() {
		a, _ := Get(name)
		b, _ := Get(name)
		if a.Len() != b.Len() || a.Depth() != b.Depth() {
			t.Fatalf("%s: non-deterministic generator", name)
		}
	}
}
