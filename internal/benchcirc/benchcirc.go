// Package benchcirc generates the benchmark circuits used by the
// evaluation: Go constructions of the 17 QASMBench-style programs the
// paper reports on (simon, bb84, bv, qaoa, decod24, dnn, ham7, ghz,
// qft, adder, vqe, wstate, grover, qpe, toffoli, fredkin, ising) plus
// seeded random circuits for the ZX-optimization study (Figure 5).
package benchcirc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// Generator builds a named benchmark circuit.
type Generator func() *circuit.Circuit

// registry maps benchmark names to generators.
var registry = map[string]Generator{
	"simon":   Simon,
	"bb84":    BB84,
	"bv":      BV,
	"qaoa":    QAOA,
	"decod24": Decod24,
	"dnn":     DNN,
	"ham7":    Ham7,
	"ghz":     GHZ8,
	"qft":     QFT5,
	"adder":   Adder,
	"vqe":     VQE,
	"wstate":  WState,
	"grover":  Grover,
	"qpe":     QPE,
	"toffoli": Toffoli,
	"fredkin": Fredkin,
	"ising":   Ising,
}

// Names returns all benchmark names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Table1Names returns the seven circuits of the paper's Table 1 in
// paper order.
func Table1Names() []string {
	return []string{"simon", "bb84", "bv", "qaoa", "decod24", "dnn", "ham7"}
}

// Get returns the named benchmark from the paper set or the extended
// set.
func Get(name string) (*circuit.Circuit, error) {
	if g, ok := registry[name]; ok {
		return g(), nil
	}
	if g, ok := registryExtended[name]; ok {
		return g(), nil
	}
	return nil, fmt.Errorf("benchcirc: unknown benchmark %q", name)
}

// Simon builds a 6-qubit Simon's-algorithm instance with secret 110:
// Hadamards on the input register, an entangling oracle, Hadamards.
func Simon() *circuit.Circuit {
	c := circuit.New(6)
	for q := 0; q < 3; q++ {
		c.Append(gate.New(gate.H), q)
	}
	// Oracle: copy inputs, then fold in the secret string s = 110.
	for q := 0; q < 3; q++ {
		c.Append(gate.New(gate.CX), q, q+3)
	}
	c.Append(gate.New(gate.CX), 0, 4)
	c.Append(gate.New(gate.CX), 0, 5)
	c.Append(gate.New(gate.X), 4)
	for q := 0; q < 3; q++ {
		c.Append(gate.New(gate.H), q)
	}
	return c
}

// BB84 builds an 8-qubit BB84 state-preparation round: random-looking
// but fixed bit/basis choices expressed with X and H gates.
func BB84() *circuit.Circuit {
	c := circuit.New(8)
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0}
	bases := []int{0, 1, 1, 0, 1, 0, 0, 1}
	for q := 0; q < 8; q++ {
		if bits[q] == 1 {
			c.Append(gate.New(gate.X), q)
		}
		if bases[q] == 1 {
			c.Append(gate.New(gate.H), q)
		}
	}
	// Receiving basis rotation.
	for q := 0; q < 8; q++ {
		if (q+bases[q])%2 == 0 {
			c.Append(gate.New(gate.H), q)
		}
	}
	return c
}

// BV builds a 6-qubit Bernstein-Vazirani circuit with secret 11010.
func BV() *circuit.Circuit {
	const n = 5
	secret := []int{1, 1, 0, 1, 0}
	c := circuit.New(n + 1)
	c.Append(gate.New(gate.X), n)
	c.Append(gate.New(gate.H), n)
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	for q := 0; q < n; q++ {
		if secret[q] == 1 {
			c.Append(gate.New(gate.CX), q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	return c
}

// QAOA builds a depth-2 MaxCut QAOA on a 6-qubit ring.
func QAOA() *circuit.Circuit {
	const n = 6
	c := circuit.New(n)
	gammas := []float64{0.7, 1.2}
	betas := []float64{0.4, 0.9}
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	for p := 0; p < 2; p++ {
		for q := 0; q < n; q++ {
			a, b := q, (q+1)%n
			c.Append(gate.New(gate.CX), a, b)
			c.Append(gate.New(gate.RZ, 2*gammas[p]), b)
			c.Append(gate.New(gate.CX), a, b)
		}
		for q := 0; q < n; q++ {
			c.Append(gate.New(gate.RX, 2*betas[p]), q)
		}
	}
	return c
}

// Decod24 builds the 4-qubit 2-to-4 decoder benchmark (Clifford+T
// style, as in RevLib/QASMBench decod24).
func Decod24() *circuit.Circuit {
	c := circuit.New(4)
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.CX), 0, 2)
	c.Append(gate.New(gate.H), 3)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.T), 2)
	c.Append(gate.New(gate.T), 3)
	c.Append(gate.New(gate.CX), 2, 0)
	c.Append(gate.New(gate.CX), 3, 2)
	c.Append(gate.New(gate.CX), 0, 3)
	c.Append(gate.New(gate.Tdg), 2)
	c.Append(gate.New(gate.CX), 0, 2)
	c.Append(gate.New(gate.Tdg), 0)
	c.Append(gate.New(gate.Tdg), 2)
	c.Append(gate.New(gate.T), 3)
	c.Append(gate.New(gate.CX), 3, 2)
	c.Append(gate.New(gate.CX), 0, 3)
	c.Append(gate.New(gate.CX), 2, 0)
	c.Append(gate.New(gate.H), 3)
	c.Append(gate.New(gate.CX), 1, 3)
	c.Append(gate.New(gate.X), 1)
	return c
}

// DNN builds an 8-qubit "quantum neural network" ansatz: three layers
// of parameterized RY/RZ rotations with CZ-ladder entanglement.
func DNN() *circuit.Circuit {
	const n = 8
	c := circuit.New(n)
	rng := rand.New(rand.NewSource(42))
	for layer := 0; layer < 3; layer++ {
		for q := 0; q < n; q++ {
			c.Append(gate.New(gate.RY, rng.Float64()*math.Pi), q)
			c.Append(gate.New(gate.RZ, rng.Float64()*math.Pi), q)
		}
		for q := 0; q < n-1; q++ {
			c.Append(gate.New(gate.CZ), q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.RY, rng.Float64()*math.Pi), q)
	}
	return c
}

// Ham7 builds the 7-qubit Hamming(7,4) encoder/decoder benchmark.
func Ham7() *circuit.Circuit {
	c := circuit.New(7)
	// Prepare a data word.
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.X), 2)
	// Encode parity qubits.
	for _, e := range [][2]int{{0, 4}, {1, 4}, {3, 4}, {0, 5}, {2, 5}, {3, 5}, {1, 6}, {2, 6}, {3, 6}} {
		c.Append(gate.New(gate.CX), e[0], e[1])
	}
	// Inject an error and re-compute syndromes.
	c.Append(gate.New(gate.X), 1)
	for _, e := range [][2]int{{0, 4}, {1, 4}, {3, 4}, {0, 5}, {2, 5}, {3, 5}, {1, 6}, {2, 6}, {3, 6}} {
		c.Append(gate.New(gate.CX), e[0], e[1])
	}
	// Correct using the syndrome.
	c.Append(gate.New(gate.CCX), 4, 6, 1)
	c.Append(gate.New(gate.CCX), 5, 6, 2)
	c.Append(gate.New(gate.CCX), 4, 5, 0)
	return c
}

// GHZ8 builds an 8-qubit GHZ preparation.
func GHZ8() *circuit.Circuit {
	const n = 8
	c := circuit.New(n)
	c.Append(gate.New(gate.H), 0)
	for q := 0; q < n-1; q++ {
		c.Append(gate.New(gate.CX), q, q+1)
	}
	return c
}

// QFT5 builds a 5-qubit quantum Fourier transform.
func QFT5() *circuit.Circuit { return QFT(5) }

// QFT builds an n-qubit quantum Fourier transform with final swaps
// (little-endian: qubit 0 is the least-significant bit; the matrix
// equals the DFT with ω = e^{2πi/2^n}).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := n - 1; q >= 0; q-- {
		c.Append(gate.New(gate.H), q)
		for k := q - 1; k >= 0; k-- {
			c.Append(gate.New(gate.CP, math.Pi/math.Pow(2, float64(q-k))), k, q)
		}
	}
	for q := 0; q < n/2; q++ {
		c.Append(gate.New(gate.SWAP), q, n-1-q)
	}
	return c
}

// Adder builds a 4-qubit ripple-carry adder stage (cuccaro style).
func Adder() *circuit.Circuit {
	c := circuit.New(4)
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.X), 1)
	c.Append(gate.New(gate.CX), 0, 2)
	c.Append(gate.New(gate.CX), 1, 2)
	c.Append(gate.New(gate.CCX), 0, 1, 3)
	c.Append(gate.New(gate.CX), 2, 3)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 1, 2)
	return c
}

// VQE builds a deep 6-qubit UCCSD-style VQE ansatz: trotterized
// Pauli-string exponentials with basis changes and CX ladders. The
// shared ladders between consecutive terms are heavily redundant,
// which is why the paper's extreme ZX-reduction example is a VQE
// circuit.
func VQE() *circuit.Circuit {
	const n = 6
	c := circuit.New(n)
	rng := rand.New(rand.NewSource(7))
	// Exponential of a Z...Z string over qubits [lo, hi] with X/Y basis
	// changes on the endpoints, as UCCSD excitation terms produce.
	term := func(lo, hi int, basisX bool, theta float64) {
		if basisX {
			c.Append(gate.New(gate.H), lo)
			c.Append(gate.New(gate.H), hi)
		} else {
			c.Append(gate.New(gate.RX, math.Pi/2), lo)
			c.Append(gate.New(gate.RX, math.Pi/2), hi)
		}
		for q := lo; q < hi; q++ {
			c.Append(gate.New(gate.CX), q, q+1)
		}
		c.Append(gate.New(gate.RZ, theta), hi)
		for q := hi - 1; q >= lo; q-- {
			c.Append(gate.New(gate.CX), q, q+1)
		}
		if basisX {
			c.Append(gate.New(gate.H), lo)
			c.Append(gate.New(gate.H), hi)
		} else {
			c.Append(gate.New(gate.RX, -math.Pi/2), lo)
			c.Append(gate.New(gate.RX, -math.Pi/2), hi)
		}
	}
	for rep := 0; rep < 2; rep++ {
		for lo := 0; lo < n-1; lo++ {
			for hi := lo + 1; hi < n && hi < lo+3; hi++ {
				term(lo, hi, true, rng.Float64()*2*math.Pi)
				term(lo, hi, false, rng.Float64()*2*math.Pi)
			}
		}
	}
	return c
}

// WState builds a 4-qubit W-state preparation.
func WState() *circuit.Circuit {
	c := circuit.New(4)
	theta := func(k int) float64 { return 2 * math.Acos(math.Sqrt(1.0/float64(k))) }
	c.Append(gate.New(gate.RY, theta(4)), 0)
	c.Append(gate.New(gate.CRY, theta(3)), 0, 1)
	c.Append(gate.New(gate.CRY, theta(2)), 1, 2)
	c.Append(gate.New(gate.CX), 2, 3)
	c.Append(gate.New(gate.CX), 1, 2)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.X), 0)
	return c
}

// Grover builds a 3-qubit Grover search (two iterations, marked state
// |101⟩) using CCZ = H·CCX·H oracles.
func Grover() *circuit.Circuit {
	const n = 3
	c := circuit.New(n)
	ccz := func() {
		c.Append(gate.New(gate.H), 2)
		c.Append(gate.New(gate.CCX), 0, 1, 2)
		c.Append(gate.New(gate.H), 2)
	}
	for q := 0; q < n; q++ {
		c.Append(gate.New(gate.H), q)
	}
	for it := 0; it < 2; it++ {
		// Oracle: phase-flip |101⟩ (flip q1 around a CCZ).
		c.Append(gate.New(gate.X), 1)
		ccz()
		c.Append(gate.New(gate.X), 1)
		// Diffusion about the mean.
		for q := 0; q < n; q++ {
			c.Append(gate.New(gate.H), q)
			c.Append(gate.New(gate.X), q)
		}
		ccz()
		for q := 0; q < n; q++ {
			c.Append(gate.New(gate.X), q)
			c.Append(gate.New(gate.H), q)
		}
	}
	return c
}

// QPE builds a 5-qubit quantum phase estimation of a Z-rotation.
func QPE() *circuit.Circuit {
	const counting = 4
	c := circuit.New(counting + 1)
	c.Append(gate.New(gate.X), counting) // eigenstate |1>
	for q := 0; q < counting; q++ {
		c.Append(gate.New(gate.H), q)
	}
	phase := 2 * math.Pi * 0.3125
	for q := 0; q < counting; q++ {
		reps := 1 << q
		c.Append(gate.New(gate.CP, phase*float64(reps)), q, counting)
	}
	// Inverse QFT on the counting register.
	for _, op := range QFT(counting).Inverse().Ops {
		c.AppendOp(op)
	}
	return c
}

// Toffoli builds a 3-qubit Toffoli cascade.
func Toffoli() *circuit.Circuit {
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.H), 1)
	c.Append(gate.New(gate.CCX), 0, 1, 2)
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.CCX), 0, 2, 1)
	return c
}

// Fredkin builds a 3-qubit controlled-swap benchmark.
func Fredkin() *circuit.Circuit {
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.X), 1)
	c.Append(gate.New(gate.CSWP), 0, 1, 2)
	c.Append(gate.New(gate.H), 0)
	return c
}

// Ising builds a 6-qubit trotterized transverse-field Ising evolution
// (3 Trotter steps).
func Ising() *circuit.Circuit {
	const n = 6
	c := circuit.New(n)
	dt := 0.35
	for step := 0; step < 3; step++ {
		for q := 0; q < n-1; q++ {
			c.Append(gate.New(gate.RZZ, 2*dt), q, q+1)
		}
		for q := 0; q < n; q++ {
			c.Append(gate.New(gate.RX, 2*0.8*dt), q)
		}
	}
	return c
}

// RandomCircuit builds a seeded random circuit, the population used
// for the Figure 5 ZX study. The gate mix mirrors compiled benchmark
// programs: Clifford-dominated with a sprinkling of T and arbitrary
// Z-rotations.
func RandomCircuit(n, depth int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	clifford := []gate.Kind{gate.H, gate.S, gate.Sdg, gate.X, gate.Z}
	for c.Depth() < depth {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			c.Append(gate.New(clifford[rng.Intn(len(clifford))]), rng.Intn(n))
		case 4:
			if rng.Intn(2) == 0 {
				c.Append(gate.New(gate.T), rng.Intn(n))
			} else {
				c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
			}
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			if rng.Intn(2) == 0 {
				c.Append(gate.New(gate.CX), a, b)
			} else {
				c.Append(gate.New(gate.CZ), a, b)
			}
		}
	}
	return c
}

// RandomLayered builds a wide, deep brickwork circuit used for the
// 160-qubit scalability experiment: alternating single-qubit rotation
// layers and nearest-neighbour CX brick layers.
func RandomLayered(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), q)
			c.Append(gate.New(gate.RX, rng.Float64()*math.Pi), q)
		}
		off := l % 2
		for q := off; q+1 < n; q += 2 {
			c.Append(gate.New(gate.CX), q, q+1)
		}
	}
	return c
}
