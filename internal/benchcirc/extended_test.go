package benchcirc

import (
	"math"
	"testing"

	"epoc/internal/sim"
)

func TestExtendedBenchmarksBuild(t *testing.T) {
	if len(ExtendedNames()) != 8 {
		t.Fatalf("extended set has %d benchmarks", len(ExtendedNames()))
	}
	for _, name := range ExtendedNames() {
		c, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Len() == 0 || c.Depth() == 0 {
			t.Fatalf("%s: trivial circuit", name)
		}
	}
	if len(AllNames()) != 25 {
		t.Fatalf("AllNames has %d entries", len(AllNames()))
	}
}

func TestDeutschJozsaBalancedOracle(t *testing.T) {
	s := sim.RunCircuit(DeutschJozsa())
	// Balanced oracle: probability of measuring all-zeros on the input
	// register must be 0.
	p := 0.0
	for anc := 0; anc < 2; anc++ {
		p += s.Probability(anc << 5)
	}
	if p > 1e-9 {
		t.Fatalf("balanced oracle gave all-zeros probability %v", p)
	}
}

func TestQECBitFlipCorrects(t *testing.T) {
	s := sim.RunCircuit(QECBitFlip())
	// After encode → X error on q1 → syndrome → correct → decode, the
	// data qubit must hold RY(0.83)|0> and q1, q2 must be |0>; the
	// ancillas carry the syndrome 11.
	want0 := math.Cos(0.83 / 2) // amplitude of |0> on the data qubit
	// Basis index: ancillas q3=1, q4=1 → 0b11000 = 24; data q0 ∈ {0,1}.
	p0 := s.Probability(24)
	p1 := s.Probability(25)
	if math.Abs(p0-want0*want0) > 1e-9 {
		t.Fatalf("data |0> probability %v, want %v", p0, want0*want0)
	}
	if math.Abs(p0+p1-1) > 1e-9 {
		t.Fatalf("leakage outside the corrected subspace: %v", 1-p0-p1)
	}
}

func TestHiddenShiftRecoversShift(t *testing.T) {
	s := sim.RunCircuit(HiddenShift())
	// The algorithm concentrates on the shift string 1010 (q0=0, q1=1,
	// q2=0, q3=1 → index 0b1010 = 10).
	if p := s.Probability(10); p < 0.99 {
		t.Fatalf("shift probability %v", p)
	}
}

func TestMultiplierComputesProduct(t *testing.T) {
	s := sim.RunCircuit(Multiplier())
	// a=3, b=2 → product 6 on (q6 q5 q4) = 110, with inputs intact:
	// q0=1,q1=1 (a=3), q3=1 (b=2).
	idx := 1 | 1<<1 | 1<<3 | 1<<5 | 1<<6
	if p := s.Probability(idx); math.Abs(p-1) > 1e-9 {
		t.Fatalf("product state probability %v", p)
	}
}

func TestTeleportDeliversPayload(t *testing.T) {
	s := sim.RunCircuit(Teleport())
	// The payload U3(0.62,0.41,0.27)|0> must arrive on qubit 2
	// regardless of the measurement outcomes (qubits 0,1 arbitrary).
	// Check: probability that qubit 2 is |1> equals sin²(θ/2).
	want := math.Sin(0.31) * math.Sin(0.31)
	got := 0.0
	for idx := 0; idx < 8; idx++ {
		if idx&4 != 0 {
			got += s.Probability(idx)
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("teleported P(1) = %v, want %v", got, want)
	}
}

func TestQuantumWalkSpreads(t *testing.T) {
	s := sim.RunCircuit(QuantumWalk())
	// After two steps from position 0 the walker must have left the
	// origin with nonzero probability and the state stays normalized.
	atOrigin := s.Probability(0) + s.Probability(4)
	if atOrigin > 0.99 {
		t.Fatal("walker did not move")
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Fatal("norm broken")
	}
}

func TestSupremacyEntangles(t *testing.T) {
	c := Supremacy()
	if c.TwoQubitCount() < 10 {
		t.Fatalf("supremacy circuit has only %d 2q gates", c.TwoQubitCount())
	}
	s := sim.RunCircuit(c)
	// Output distribution should be spread (Porter-Thomas-like): no
	// basis state dominates.
	for i, p := range s.Probabilities() {
		if p > 0.5 {
			t.Fatalf("state %d carries probability %v", i, p)
		}
	}
}

func TestExtendedDisjointFromPaperSet(t *testing.T) {
	paper := map[string]bool{}
	for _, n := range Names() {
		paper[n] = true
	}
	for _, n := range ExtendedNames() {
		if paper[n] {
			t.Fatalf("%s appears in both registries", n)
		}
	}
}
