package core

import (
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/densesim"
	"epoc/internal/gate"
	"epoc/internal/hardware"
)

// replayNoisy reconstructs each pulse's achieved unitary from its
// amplitudes and replays the schedule through the density-matrix
// simulator with a depolarizing channel of strength 1−F per pulse,
// returning the state fidelity against the noiseless replay.
func replayNoisy(t *testing.T, res *Result, dev *hardware.Device, n int) float64 {
	t.Helper()
	var steps []densesim.Step
	for _, item := range res.Schedule.Items {
		p := item.Pulse
		if p.Amps == nil {
			t.Fatal("pulse without amplitudes; use full QOC mode")
		}
		model := dev.BlockModel(len(p.Qubits))
		steps = append(steps, densesim.Step{
			U:        model.Propagate(p.Amps),
			Qubits:   p.Qubits,
			Fidelity: p.Fidelity,
		})
	}
	return densesim.NoisyFidelity(n, steps)
}

// TestESPTracksNoisySimulation validates Equation 3: the ESP product
// the compiler reports must approximate the density-matrix fidelity of
// the same pulse program with per-pulse depolarizing noise.
func TestESPTracksNoisySimulation(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 1, 2)
	c.Append(gate.New(gate.T), 2)
	c.Append(gate.New(gate.CX), 1, 2)
	dev := hardware.LinearChain(3)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev, GRAPEIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	noisy := replayNoisy(t, res, dev, 3)
	// The depolarizing replay has two error sources: the channel
	// (strength 1−F per pulse, which ESP multiplies out) and the pulse
	// unitaries' own coherent error (already ≤ 1−F each). ESP should
	// therefore sit within a small multiple of the simulated infidelity.
	espErr := 1 - res.Fidelity
	simErr := 1 - noisy
	if simErr > 4*espErr+1e-6 {
		t.Fatalf("noisy simulation error %v far exceeds ESP error %v", simErr, espErr)
	}
	if noisy > 1.0+1e-9 {
		t.Fatalf("invalid fidelity %v", noisy)
	}
	t.Logf("ESP=%.5f, noisy density-matrix fidelity=%.5f", res.Fidelity, noisy)
}

// TestESPOrderingMatchesNoisySimulation checks that the ESP ranking of
// two strategies agrees with the ground-truth noisy simulation: the
// strategy with fewer/better pulses must also win the density-matrix
// comparison.
func TestESPOrderingMatchesNoisySimulation(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.RZ, 0.6), 1)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.H), 1)
	dev := hardware.LinearChain(2)

	grouped, err := Compile(c, Options{Strategy: EPOC, Device: dev, GRAPEIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	ungrouped, err := Compile(c, Options{Strategy: EPOCNoGroup, Device: dev, GRAPEIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	ng := replayNoisy(t, grouped, dev, 2)
	nu := replayNoisy(t, ungrouped, dev, 2)
	t.Logf("grouped: ESP=%.5f noisy=%.5f | ungrouped: ESP=%.5f noisy=%.5f",
		grouped.Fidelity, ng, ungrouped.Fidelity, nu)
	if grouped.Fidelity >= ungrouped.Fidelity && ng < nu-0.01 {
		t.Fatal("ESP ranking contradicts the noisy simulation")
	}
}
