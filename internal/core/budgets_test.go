package core

import (
	"testing"
	"time"
)

func TestParseBudgets(t *testing.T) {
	cases := []struct {
		spec    string
		want    Budgets
		wantErr bool
	}{
		{"", Budgets{}, false},
		{"   ", Budgets{}, false},
		{"total=30s", Budgets{Total: 30 * time.Second}, false},
		{
			"total=1m, synth=2s, qoc=500ms, synth-nodes=500, qoc-iters=50",
			Budgets{
				Total: time.Minute, SynthTime: 2 * time.Second,
				QOCTime: 500 * time.Millisecond, SynthNodes: 500, QOCIters: 50,
			},
			false,
		},
		{"synth-nodes=0", Budgets{}, false}, // 0 = unlimited, still valid
		{"total", Budgets{}, true},          // missing =
		{"total=xyz", Budgets{}, true},      // bad duration
		{"total=-5s", Budgets{}, true},      // negative duration
		{"synth-nodes=-1", Budgets{}, true}, // negative count
		{"synth-nodes=2s", Budgets{}, true}, // duration where int expected
		{"frobnicate=1", Budgets{}, true},   // unknown key
	}
	for _, tc := range cases {
		got, err := ParseBudgets(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseBudgets(%q): want error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBudgets(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBudgets(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}
