package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/linalg"
	"epoc/internal/obs"
)

// storeTestOpts returns full-GRAPE options small enough for a test
// compile but otherwise default, pinned so every compile in a test
// shares one store namespace.
func storeTestOpts(n int, storePath string) Options {
	return Options{
		Strategy:   EPOC,
		Device:     hardware.LinearChain(n),
		Mode:       QOCFull,
		GRAPEIters: 80,
		StorePath:  storePath,
	}
}

// rotCircuit is the warm-start fixture: small rotations around a CX.
// Compiling it at a slightly different angle produces block unitaries
// near — but not within exact-match tolerance of — a previous run's,
// which is exactly the case the warm-start path exists for.
func rotCircuit(theta float64) *circuit.Circuit {
	c := circuit.New(2)
	c.Append(gate.New(gate.RX, theta), 0)
	c.Append(gate.New(gate.RY, theta/2), 1)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.RX, theta/3), 1)
	return c
}

func scheduleBytes(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStoreRestartServesWarm is the tentpole contract end-to-end: a
// second compile of the same circuit from the same store directory —
// a fresh process in miniature — runs zero GRAPE optimizations and
// reproduces the cold result byte for byte.
func TestStoreRestartServesWarm(t *testing.T) {
	dir := t.TempDir()
	c := rotCircuit(0.5)

	cold, err := Compile(c, storeTestOpts(2, dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.QOCRuns == 0 {
		t.Fatal("cold compile ran no QOC — fixture too trivial to test warming")
	}

	rec := obs.New()
	opts := storeTestOpts(2, dir)
	opts.Obs = rec
	warm, err := Compile(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.QOCRuns != 0 {
		t.Fatalf("warm compile ran %d QOC optimizations, want 0", warm.Stats.QOCRuns)
	}
	if warm.Latency != cold.Latency || warm.Fidelity != cold.Fidelity {
		t.Fatalf("warm result diverged: latency %v vs %v, fidelity %v vs %v",
			warm.Latency, cold.Latency, warm.Fidelity, cold.Fidelity)
	}
	if a, b := scheduleBytes(t, cold), scheduleBytes(t, warm); a != b {
		t.Fatal("warm schedule is not byte-identical to the cold schedule")
	}
	snap := rec.Snapshot()
	if snap.Counters["store/warm/pulses"] == 0 {
		t.Fatal("warm compile imported no pulses from the store")
	}
	if warm.QOCTime >= cold.QOCTime && cold.Stats.QOCRuns > 0 {
		// Not load-bearing for correctness, but the whole point: warm
		// stage-5 time should collapse to library lookups.
		t.Logf("note: warm QOC time %v not below cold %v", warm.QOCTime, cold.QOCTime)
	}
}

// TestStoreWarmStartDeterminismAndEquivalence compiles a perturbed
// circuit against a store populated from a nearby one, so pulses go
// through the GRAPE warm-start path (near neighbours, not exact hits).
// The output must be byte-identical at 1 and 8 workers, and the
// lowered circuit must stay equivalent to the input under the same
// harness the cold pipeline is held to.
func TestStoreWarmStartDeterminismAndEquivalence(t *testing.T) {
	seed := t.TempDir()
	if _, err := Compile(rotCircuit(0.5), storeTestOpts(2, seed)); err != nil {
		t.Fatal(err)
	}

	perturbed := rotCircuit(0.52)
	want := perturbed.Unitary()
	wantRho := densityOf(perturbed)
	var schedules []string
	for _, workers := range []int{1, 8} {
		// Each worker count compiles against its own copy of the seed
		// store: the first compile harvests the perturbed pulses, and a
		// shared directory would hand the second compile exact hits
		// instead of warm starts.
		dir := t.TempDir()
		copyStoreDir(t, seed, dir)
		opts := storeTestOpts(2, dir)
		opts.Workers = workers
		res, err := Compile(perturbed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.WarmStarts == 0 {
			t.Fatalf("workers=%d: no GRAPE run was warm-started", workers)
		}
		if res.Lowered == nil {
			t.Fatalf("workers=%d: no lowered circuit", workers)
		}
		if d := linalg.PhaseDistance(want, res.Lowered.Unitary()); d > equivTol {
			t.Fatalf("workers=%d: lowered circuit diverged: phase distance %g", workers, d)
		}
		if d := linalg.FrobeniusDistance(wantRho, densityOf(res.Lowered)); d > equivTol {
			t.Fatalf("workers=%d: density evolution diverged: %g", workers, d)
		}
		schedules = append(schedules, scheduleBytes(t, res))
	}
	if schedules[0] != schedules[1] {
		t.Fatal("warm-start compile is not byte-identical across worker counts")
	}
}

// copyStoreDir clones a store root (namespace dirs and their record
// files) into dst.
func copyStoreDir(t *testing.T, src, dst string) {
	t.Helper()
	nss, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range nss {
		if !ns.IsDir() {
			continue
		}
		nsDst := filepath.Join(dst, ns.Name())
		if err := os.MkdirAll(nsDst, 0o755); err != nil {
			t.Fatal(err)
		}
		files, err := os.ReadDir(filepath.Join(src, ns.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			data, err := os.ReadFile(filepath.Join(src, ns.Name(), f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(nsDst, f.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStoreNamespaceMismatchDropsStore: a shared store opened under
// different knobs must not warm this compile — using its pulses would
// be cache poisoning — but the compile itself proceeds cold.
func TestStoreNamespaceMismatchDropsStore(t *testing.T) {
	dir := t.TempDir()
	other := storeTestOpts(2, "")
	other.GRAPEIters = 33 // a different namespace
	st, err := OpenStore(dir, other)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()

	rec := obs.New()
	opts := storeTestOpts(2, "")
	opts.Store = st
	opts.Obs = rec
	res, err := Compile(rotCircuit(0.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Counters["store/namespace_mismatch"] != 1 {
		t.Fatalf("mismatch counter = %d, want 1", snap.Counters["store/namespace_mismatch"])
	}
	if snap.Counters["store/harvest/pulses"] != 0 {
		t.Fatal("compile harvested into a mismatched store")
	}
	if p, s := st.Len(); p != 0 || s != 0 {
		t.Fatalf("mismatched store gained records: %d pulses, %d synths", p, s)
	}
	if res.Stats.QOCRuns == 0 {
		t.Fatal("compile should have run cold")
	}
}

// TestStoreCorruptionDoesNotPoisonCompile damages a store on disk the
// way crashes and bit rot do — a flipped bit, a truncated record, a
// stray temp file from a writer that died before rename — and
// recompiles from it. The compile must succeed and reproduce the
// undamaged result exactly: damaged records are skipped and recomputed,
// never served.
func TestStoreCorruptionDoesNotPoisonCompile(t *testing.T) {
	dir := t.TempDir()
	c := rotCircuit(0.5)
	cold, err := Compile(c, storeTestOpts(2, dir))
	if err != nil {
		t.Fatal(err)
	}

	ns := StoreNamespace(storeTestOpts(2, dir))
	nsDir := filepath.Join(dir, ns)
	entries, err := os.ReadDir(nsDir)
	if err != nil {
		t.Fatal(err)
	}
	var recs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".rec") {
			recs = append(recs, e.Name())
		}
	}
	if len(recs) == 0 {
		t.Fatal("cold compile persisted no records")
	}
	// Flip one payload bit in the first record.
	path := filepath.Join(nsDir, recs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate the second, if there is one.
	if len(recs) > 1 {
		p2 := filepath.Join(nsDir, recs[1])
		d2, err := os.ReadFile(p2)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p2, d2[:len(d2)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file from a crashed writer.
	if err := os.WriteFile(filepath.Join(nsDir, ".tmp-p-crashed"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Compile(c, storeTestOpts(2, dir))
	if err != nil {
		t.Fatalf("compile from corrupted store failed: %v", err)
	}
	if res.Latency != cold.Latency || res.Fidelity != cold.Fidelity {
		t.Fatalf("corrupted store changed the result: latency %v vs %v, fidelity %v vs %v",
			res.Latency, cold.Latency, res.Fidelity, cold.Fidelity)
	}
	if a, b := scheduleBytes(t, cold), scheduleBytes(t, res); a != b {
		t.Fatal("schedule diverged after store corruption")
	}
	// The damaged records were recomputed; a reopened store must be
	// whole again (content addressing heals the flipped record under a
	// fresh write of the same name).
	st, err := OpenStore(dir, storeTestOpts(2, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()
	if cnt := st.Counters(); cnt.Corrupt != 0 {
		t.Fatalf("store still corrupt after healing compile: %+v", cnt)
	}
}

// TestStoreConcurrentCompiles hammers one store directory from
// concurrent compiles (run under -race in CI): distinct circuits, a
// shared Options.Store, and per-compile harvest+flush must neither
// race nor corrupt the directory.
func TestStoreConcurrentCompiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, storeTestOpts(2, ""))
	if err != nil {
		t.Fatal(err)
	}
	angles := []float64{0.5, 0.9, 1.3, 0.5, 0.9, 1.3}
	errc := make(chan error, len(angles))
	for _, theta := range angles {
		go func(theta float64) {
			opts := storeTestOpts(2, "")
			opts.Store = st
			_, err := Compile(rotCircuit(theta), opts)
			errc <- err
		}(theta)
	}
	for range angles {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir, storeTestOpts(2, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if cnt := re.Counters(); cnt.Corrupt != 0 {
		t.Fatalf("concurrent compiles corrupted the store: %+v", cnt)
	}
	if p, _ := re.Len(); p == 0 {
		t.Fatal("concurrent compiles persisted nothing")
	}
}

// TestStoreNamespaceCoversDeviceKnobs pins the namespace contract:
// same physics, different qubit count → same namespace (pulses are
// per-block); different physics → different namespace.
func TestStoreNamespaceCoversDeviceKnobs(t *testing.T) {
	base := storeTestOpts(2, "")
	wide := storeTestOpts(7, "")
	if StoreNamespace(base) != StoreNamespace(wide) {
		t.Fatal("qubit count must not split the namespace")
	}
	slow := storeTestOpts(2, "")
	dev := *hardware.LinearChain(2)
	dev.Dt = dev.Dt * 2
	slow.Device = &dev
	if StoreNamespace(base) == StoreNamespace(slow) {
		t.Fatal("device Dt must split the namespace")
	}
	est := storeTestOpts(2, "")
	est.Mode = QOCEstimate
	if StoreNamespace(base) == StoreNamespace(est) {
		t.Fatal("QOC mode must split the namespace")
	}
	if !strings.HasPrefix(StoreNamespace(base), "v1-") {
		t.Fatalf("namespace %q missing codec version", StoreNamespace(base))
	}
}
