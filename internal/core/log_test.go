package core

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"

	"epoc/internal/logx"
	"epoc/internal/trace"
)

// TestStageBoundaryLogging pins the telemetry contract: a compile with
// a logger attached emits one "stage done" record per pipeline stage
// carrying the stage name and its trace span ID, plus a final "compile
// done" record — and attached request-scoped attributes (trace_id from
// serve) ride on every record.
func TestStageBoundaryLogging(t *testing.T) {
	var buf bytes.Buffer
	log := logx.New(&buf, slog.LevelInfo).With("trace_id", "tid-42")
	tr := trace.New(nil)

	res, err := Compile(bell(), Options{
		Strategy: EPOC,
		Device:   dev(2),
		Mode:     QOCEstimate,
		Log:      log,
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil {
		t.Fatal("no schedule")
	}

	var records []map[string]any
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("log line not JSON: %v", err)
		}
		records = append(records, m)
	}
	if len(records) == 0 {
		t.Fatal("no log records")
	}

	stagesDone := map[string]bool{}
	var compileDone map[string]any
	for _, m := range records {
		if m["trace_id"] != "tid-42" {
			t.Fatalf("record without the request trace_id: %v", m)
		}
		switch m["msg"] {
		case "stage done":
			stage, _ := m["stage"].(string)
			stagesDone[stage] = true
			span, _ := m["span"].(string)
			if len(span) < 2 || span[0] != 's' {
				t.Fatalf("stage record without span ID: %v", m)
			}
			if _, ok := m["elapsed_ms"].(float64); !ok {
				t.Fatalf("stage record without elapsed_ms: %v", m)
			}
		case "compile done":
			compileDone = m
		}
	}
	// The EPOC flow's stage boundaries (QOCEstimate still runs all five
	// pipeline stages; zx is on for the EPOC strategy).
	for _, want := range []string{"stage/zx", "stage/partition", "stage/synth", "stage/regroup", "stage/qoc"} {
		if !stagesDone[want] {
			t.Errorf("no 'stage done' record for %s; got %v", want, stagesDone)
		}
	}
	if compileDone == nil {
		t.Fatal("no 'compile done' record")
	}
	if compileDone["strategy"] != "epoc" || compileDone["fidelity"] == nil {
		t.Fatalf("compile done record: %v", compileDone)
	}
}

// A nil logger must leave the compile result identical — logging is
// observability, never behaviour.
func TestNilLoggerCompileUnchanged(t *testing.T) {
	base, err := Compile(bell(), Options{Strategy: EPOC, Device: dev(2), Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logged, err := Compile(bell(), Options{
		Strategy: EPOC, Device: dev(2), Mode: QOCEstimate,
		Log: logx.New(&buf, slog.LevelInfo),
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Latency != logged.Latency || base.Fidelity != logged.Fidelity {
		t.Fatalf("logging changed the compile: %v vs %v", base.Latency, logged.Latency)
	}
}
