package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseBudgets parses the CLI budget grammar shared by epoc and
// epoc-bench: a comma-separated list of key=value pairs where time
// budgets take Go durations and iteration budgets take integers.
//
//	total=30s,synth=2s,qoc=5s,synth-nodes=500,qoc-iters=50
//
// An empty spec yields the zero (unlimited) Budgets.
func ParseBudgets(spec string) (Budgets, error) {
	var b Budgets
	if strings.TrimSpace(spec) == "" {
		return b, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return Budgets{}, fmt.Errorf("budget %q: want key=value", pair)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "total", "synth", "qoc":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Budgets{}, fmt.Errorf("budget %s: %v", key, err)
			}
			if d < 0 {
				return Budgets{}, fmt.Errorf("budget %s: negative duration %s", key, d)
			}
			switch key {
			case "total":
				b.Total = d
			case "synth":
				b.SynthTime = d
			case "qoc":
				b.QOCTime = d
			}
		case "synth-nodes", "qoc-iters":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Budgets{}, fmt.Errorf("budget %s: want a non-negative integer, got %q", key, val)
			}
			if key == "synth-nodes" {
				b.SynthNodes = n
			} else {
				b.QOCIters = n
			}
		default:
			return Budgets{}, fmt.Errorf("unknown budget key %q (want total, synth, qoc, synth-nodes, qoc-iters)", key)
		}
	}
	return b, nil
}
