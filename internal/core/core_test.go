package core

import (
	"testing"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/pulse"
)

func dev(n int) *hardware.Device { return hardware.LinearChain(n) }

func bell() *circuit.Circuit {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	return c
}

func TestGateBasedBell(t *testing.T) {
	res, err := Compile(bell(), Options{Strategy: GateBased, Device: dev(2)})
	if err != nil {
		t.Fatal(err)
	}
	// H (35.5) then CX (300) serially.
	if res.Latency != 335.5 {
		t.Fatalf("latency %v", res.Latency)
	}
	if res.Fidelity >= 1 || res.Fidelity < 0.98 {
		t.Fatalf("fidelity %v", res.Fidelity)
	}
	if res.Stats.PulseCount != 2 {
		t.Fatalf("pulses %d", res.Stats.PulseCount)
	}
}

func TestGateBasedVirtualRZ(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.RZ, 0.5), 0)
	res, err := Compile(c, Options{Strategy: GateBased, Device: dev(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 0 || res.Stats.PulseCount != 0 {
		t.Fatalf("virtual RZ scheduled: %v", res.Latency)
	}
}

func TestGateBasedRejectsBlocks(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewUnitary(gate.New(gate.X).Matrix()), 0)
	if _, err := Compile(c, Options{Strategy: GateBased, Device: dev(1)}); err == nil {
		t.Fatal("expected error for block gate")
	}
}

func TestEPOCBellFullQOC(t *testing.T) {
	res, err := Compile(bell(), Options{Strategy: EPOC, Device: dev(2), GRAPEIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.99 {
		t.Fatalf("EPOC bell fidelity %v", res.Fidelity)
	}
	if res.Latency <= 0 {
		t.Fatal("no latency")
	}
	// The whole Bell circuit should regroup into a single 2q pulse and
	// beat the 335.5 ns gate-based latency.
	if res.Latency >= 335.5 {
		t.Fatalf("EPOC latency %v not better than gate-based", res.Latency)
	}
}

func TestStrategyLatencyOrdering(t *testing.T) {
	// On a QAOA workload the paper's ordering must hold:
	// gate-based > accqoc/paqoc > epoc.
	c, _ := benchcirc.Get("qaoa")
	lib := map[Strategy]float64{}
	for _, s := range []Strategy{GateBased, AccQOC, EPOC} {
		res, err := Compile(c, Options{Strategy: s, Device: dev(c.NumQubits), Mode: QOCEstimate})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		lib[s] = res.Latency
	}
	if !(lib[GateBased] > lib[AccQOC]) {
		t.Fatalf("gate-based (%v) should exceed accqoc (%v)", lib[GateBased], lib[AccQOC])
	}
	if !(lib[AccQOC] > lib[EPOC]) {
		t.Fatalf("accqoc (%v) should exceed epoc (%v)", lib[AccQOC], lib[EPOC])
	}
}

func TestGroupingBeatsNoGrouping(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	resNo, err := Compile(c, Options{Strategy: EPOCNoGroup, Device: dev(c.NumQubits), Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	resYes, err := Compile(c, Options{Strategy: EPOC, Device: dev(c.NumQubits), Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	if resYes.Latency >= resNo.Latency {
		t.Fatalf("grouping (%v) should beat no-grouping (%v)", resYes.Latency, resNo.Latency)
	}
	if resYes.Stats.PulseCount >= resNo.Stats.PulseCount {
		t.Fatalf("grouping should emit fewer pulses (%d vs %d)",
			resYes.Stats.PulseCount, resNo.Stats.PulseCount)
	}
	if resYes.Fidelity < resNo.Fidelity {
		t.Fatalf("grouping fidelity %v below no-grouping %v", resYes.Fidelity, resNo.Fidelity)
	}
}

func TestSharedLibraryHits(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	shared := pulse.NewLibrary(true)
	o := Options{Strategy: EPOC, Device: dev(c.NumQubits), Mode: QOCEstimate, Library: shared}
	if _, err := Compile(c, o); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := shared.Misses
	if _, err := Compile(c, o); err != nil {
		t.Fatal(err)
	}
	if shared.Misses != missesAfterFirst {
		t.Fatalf("second compile missed the shared library (%d -> %d)",
			missesAfterFirst, shared.Misses)
	}
	if shared.Hits == 0 {
		t.Fatal("no library hits on identical recompile")
	}
}

func TestZXStageReducesDepth(t *testing.T) {
	c, _ := benchcirc.Get("vqe")
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev(c.NumQubits), Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DepthAfterZX >= res.Stats.DepthBefore {
		t.Fatalf("ZX did not reduce VQE depth: %d -> %d",
			res.Stats.DepthBefore, res.Stats.DepthAfterZX)
	}
}

func TestZXAblationToggle(t *testing.T) {
	c, _ := benchcirc.Get("vqe")
	off := false
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev(c.NumQubits), Mode: QOCEstimate, UseZX: &off})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DepthAfterZX != res.Stats.DepthBefore {
		t.Fatal("UseZX=false still changed depth")
	}
}

func TestAllStrategiesOnAllBenchmarksEstimateMode(t *testing.T) {
	for _, name := range benchcirc.Names() {
		c, _ := benchcirc.Get(name)
		for _, s := range Strategies() {
			res, err := Compile(c, Options{Strategy: s, Device: dev(c.NumQubits), Mode: QOCEstimate})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, s, err)
			}
			if res.Latency <= 0 {
				t.Fatalf("%s/%s: zero latency", name, s)
			}
			if res.Fidelity <= 0 || res.Fidelity > 1 {
				t.Fatalf("%s/%s: fidelity %v", name, s, res.Fidelity)
			}
		}
	}
}

func TestEPOCFullQOCOnGHZ(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 1, 2)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev(3), GRAPEIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.99 {
		t.Fatalf("GHZ3 fidelity %v", res.Fidelity)
	}
	if res.Stats.QOCRuns == 0 {
		t.Fatal("full mode ran no GRAPE searches")
	}
}

func TestUnknownStrategyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Compile(bell(), Options{Strategy: "bogus", Device: dev(2)})
}

func TestMissingDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Compile(bell(), Options{Strategy: EPOC})
}

func TestCompileTimeRecorded(t *testing.T) {
	res, err := Compile(bell(), Options{Strategy: GateBased, Device: dev(2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompileTime <= 0 {
		t.Fatal("compile time not recorded")
	}
}
