package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"epoc/internal/benchcirc"
	"epoc/internal/faultclock"
	"epoc/internal/hardware"
	"epoc/internal/linalg"
	"epoc/internal/qasm"
)

// TestDegradedCompileEquivalence is the property test for graceful
// degradation: a budget-starved compile must still lower the input to
// an equivalent circuit — same unitary up to global phase, same
// density evolution of |0…0⟩ — because every degraded block falls
// back to its own gate realization, never to a wrong one. Reuses the
// end-to-end equivalence harness.
func TestDegradedCompileEquivalence(t *testing.T) {
	cases := []struct {
		n, depth int
		seed     int64
	}{
		{3, 8, 1},
		{4, 10, 2},
		{4, 12, 5},
	}
	degraded := 0
	for _, tc := range cases {
		c := benchcirc.RandomCircuit(tc.n, tc.depth, tc.seed)
		want := c.Unitary()
		wantRho := densityOf(c)
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("n%d-seed%d-w%d", tc.n, tc.seed, workers)
			t.Run(name, func(t *testing.T) {
				res, err := Compile(c, Options{
					Strategy: EPOC,
					Device:   hardware.LinearChain(tc.n),
					Mode:     QOCEstimate,
					Workers:  workers,
					// A single-node synthesis budget: only blocks whose
					// root template already fits survive; the rest
					// degrade to their gate realization.
					Budgets: Budgets{SynthNodes: 1},
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Degraded {
					degraded++
					if res.Stats.SynthDegraded == 0 {
						t.Fatalf("Degraded set but SynthDegraded = 0: %+v", res.Stats)
					}
				}
				got := res.Lowered.Unitary()
				if d := linalg.PhaseDistance(want, got); d > equivTol {
					t.Fatalf("degraded lowering diverged: phase distance %g", d)
				}
				if d := linalg.FrobeniusDistance(wantRho, densityOf(res.Lowered)); d > equivTol {
					t.Fatalf("degraded density evolution diverged: Frobenius distance %g", d)
				}
			})
		}
	}
	if degraded == 0 {
		t.Fatal("no case degraded under a 1-node synthesis budget; the property was never exercised")
	}
}

// TestDegradedMidSynthesisStillEquivalent: the ISSUE's acceptance
// scenario — a time budget that expires mid-synthesis (fake clock
// advanced by a trip at the nth expansion) yields Degraded = true and
// a schedule-backing circuit equivalent to the input.
func TestDegradedMidSynthesisStillEquivalent(t *testing.T) {
	c := benchcirc.RandomCircuit(4, 10, 3)
	want := c.Unitary()
	fake := faultclock.NewFake()
	inj := faultclock.NewInjector()
	inj.TripAfter(faultclock.SiteQSearchExpand, 2, func() { fake.Advance(time.Hour) })
	res, err := Compile(c, Options{
		Strategy: EPOC,
		Device:   hardware.LinearChain(4),
		Mode:     QOCEstimate,
		Clock:    fake,
		Inject:   inj,
		Budgets:  Budgets{SynthTime: time.Minute},
	})
	if err != nil {
		t.Fatalf("mid-synthesis budget expiry must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatal("mid-synthesis budget expiry did not mark the result degraded")
	}
	found := false
	for _, r := range res.DegradeReasons {
		if r == "synth" {
			found = true
		}
	}
	if !found {
		t.Fatalf("DegradeReasons %v missing \"synth\"", res.DegradeReasons)
	}
	if d := linalg.PhaseDistance(want, res.Lowered.Unitary()); d > equivTol {
		t.Fatalf("degraded lowering diverged: phase distance %g", d)
	}
}

// TestDeterminismUnderBudgets extends the worker-count determinism
// contract to the degraded path: with deterministic per-unit budgets
// (and no wall-clock deadline), Workers: 1 and Workers: 8 must agree
// byte for byte on the schedule, the Stats, the lowered QASM, and the
// degradation reasons.
func TestDeterminismUnderBudgets(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	compile := func(workers int) *Result {
		t.Helper()
		res, err := Compile(c, Options{
			Strategy: EPOC,
			Device:   dev,
			Workers:  workers,
			Budgets:  Budgets{SynthNodes: 1, QOCIters: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := compile(1)
	par := compile(8)
	if !seq.Degraded || !par.Degraded {
		t.Fatalf("budgeted compiles not degraded: w1=%v w8=%v", seq.Degraded, par.Degraded)
	}
	if !reflect.DeepEqual(seq.DegradeReasons, par.DegradeReasons) {
		t.Fatalf("worker count changed degrade reasons: %v vs %v", seq.DegradeReasons, par.DegradeReasons)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Fatalf("worker count changed Stats under budgets:\n  1: %+v\n  8: %+v", seq.Stats, par.Stats)
	}
	seqJSON, err := json.Marshal(seq.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("worker count changed the degraded schedule")
	}
	seqQASM, err := qasm.Write(seq.Lowered)
	if err != nil {
		t.Fatal(err)
	}
	parQASM, err := qasm.Write(par.Lowered)
	if err != nil {
		t.Fatal(err)
	}
	if seqQASM != parQASM {
		t.Fatal("worker count changed the degraded lowered circuit")
	}
}

// TestDeterminismUnderFakeDeadline: a deadline already expired on a
// fake clock degrades every budget-checked site identically at any
// worker count — the fake clock never advances, so the expiry is a
// pure function of the configuration, not of scheduling.
func TestDeterminismUnderFakeDeadline(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	compile := func(workers int) *Result {
		t.Helper()
		fake := faultclock.NewFake()
		fake.Advance(time.Hour) // past any deadline derived below
		res, err := Compile(c, Options{
			Strategy: EPOC,
			Device:   dev,
			Workers:  workers,
			Clock:    &preExpired{fake},
			Budgets:  Budgets{Total: time.Minute},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := compile(1)
	par := compile(8)
	if !seq.Degraded {
		t.Fatal("expired deadline did not degrade")
	}
	if !reflect.DeepEqual(seq.DegradeReasons, par.DegradeReasons) {
		t.Fatalf("worker count changed degrade reasons: %v vs %v", seq.DegradeReasons, par.DegradeReasons)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Fatalf("worker count changed Stats under an expired deadline:\n  1: %+v\n  8: %+v", seq.Stats, par.Stats)
	}
	seqJSON, _ := json.Marshal(seq.Schedule)
	parJSON, _ := json.Marshal(par.Schedule)
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("worker count changed the schedule under an expired deadline")
	}
}

// preExpired wraps a fake clock so the deadline computed at compile
// start (now + budget) is already in the past by the first check: Now
// jumps forward an hour after the first read.
type preExpired struct{ fake *faultclock.Fake }

func (p *preExpired) Now() time.Time {
	t := p.fake.Now()
	p.fake.Advance(2 * time.Hour)
	return t
}
