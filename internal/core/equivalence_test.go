package core

import (
	"fmt"
	"testing"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/densesim"
	"epoc/internal/hardware"
	"epoc/internal/linalg"
)

// equivTol bounds the phase-invariant distance between the input and
// the lowered circuit. Each synthesized block is within 1e-7 of its
// target in HS cost, i.e. ~3e-4 in PhaseDistance (the sqrt of the
// cost); a dozen blocks compose to a few 1e-3, so 1e-2 leaves an
// order of magnitude of headroom while still catching any dropped,
// reordered or corrupted block outright (those score ~1).
const equivTol = 1e-2

// TestCompileEquivalenceRandomCircuits is the end-to-end backstop for
// the parallel synthesis dispatcher: seeded random circuits, compiled
// under every QOC strategy and worker count, must produce a lowered
// circuit whose unitary matches the input up to global phase — both
// as a full operator and as a density-matrix evolution of |0…0⟩
// (which is global-phase-free by construction).
func TestCompileEquivalenceRandomCircuits(t *testing.T) {
	strategies := []Strategy{AccQOC, PAQOC, EPOCNoGroup, EPOC}
	cases := []struct {
		n, depth int
		seed     int64
	}{
		{3, 8, 1},
		{4, 10, 2},
		{5, 12, 3},
	}
	for _, tc := range cases {
		c := benchcirc.RandomCircuit(tc.n, tc.depth, tc.seed)
		want := c.Unitary()
		wantRho := densityOf(c)
		for _, strat := range strategies {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/n%d-seed%d-w%d", strat, tc.n, tc.seed, workers)
				t.Run(name, func(t *testing.T) {
					res, err := Compile(c, Options{
						Strategy: strat,
						Device:   hardware.LinearChain(tc.n),
						Mode:     QOCEstimate,
						Workers:  workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Lowered == nil {
						t.Fatal("QOC flow returned no lowered circuit")
					}
					got := res.Lowered.Unitary()
					if d := linalg.PhaseDistance(want, got); d > equivTol {
						t.Fatalf("lowered circuit diverged: phase distance %g", d)
					}
					if d := linalg.FrobeniusDistance(wantRho, densityOf(res.Lowered)); d > equivTol {
						t.Fatalf("density evolution diverged: Frobenius distance %g", d)
					}
				})
			}
		}
	}
}

// TestCompileEquivalenceGateBased: the gate-based flow never lowers
// through blocks, so it reports no lowered circuit.
func TestCompileEquivalenceGateBased(t *testing.T) {
	c := benchcirc.RandomCircuit(3, 6, 4)
	res, err := Compile(c, Options{Strategy: GateBased, Device: hardware.LinearChain(3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lowered != nil {
		t.Fatal("gate-based flow should not report a lowered circuit")
	}
}

// densityOf evolves |0…0⟩⟨0…0| through the circuit (densesim), giving
// a global-phase-free view of its action.
func densityOf(c *circuit.Circuit) *linalg.Matrix {
	d := densesim.NewDensity(c.NumQubits)
	for _, op := range c.Ops {
		d.ApplyOp(op)
	}
	return d.Rho
}
