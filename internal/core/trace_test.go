package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"epoc/internal/faultclock"
	"epoc/internal/hardware"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/trace"
)

// traceCompile runs one EPOC compile of the obs test circuit with a
// fake-clock tracer attached and returns the Chrome export.
func traceCompile(t *testing.T, workers int) []byte {
	t.Helper()
	c := obsTestCircuit()
	tr := trace.New(faultclock.NewFake())
	_, err := Compile(c, Options{
		Strategy:       EPOC,
		Device:         hardware.LinearChain(c.NumQubits),
		Workers:        workers,
		Trace:          tr,
		GRAPEIters:     40,
		FidelityTarget: 0.99,
		Library:        pulse.NewLibrary(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.ChromeTrace()
}

// TestTraceGoldenWorkerInvariant is the golden determinism test: under
// the fake clock a full-QOC EPOC compile exports byte-identical Chrome
// traces at Workers:1 and Workers:8. Goroutine interleaving in the
// stage-3 synthesis pool and the stage-5 prefill pool must not leak
// into the artifact — spans are ordered by their deterministic
// attributes, and zero-width spans all collapse onto one track.
func TestTraceGoldenWorkerInvariant(t *testing.T) {
	serial := traceCompile(t, 1)
	parallel := traceCompile(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace export depends on worker count\nWorkers:1 (%d bytes):\n%s\nWorkers:8 (%d bytes):\n%s",
			len(serial), serial, len(parallel), parallel)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Tid  float64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(serial, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		names[e.Name]++
		if e.Tid != 0 {
			t.Fatalf("fake-clock span %q on track %v, want 0", e.Name, e.Tid)
		}
	}
	for _, want := range []string{"compile", "stage/zx", "stage/partition", "stage/synth",
		"stage/synth/block", "stage/regroup", "stage/qoc", "qoc/pulse", "qoc/duration_probe"} {
		if names[want] == 0 {
			t.Fatalf("no %q span in the trace; got %v", want, names)
		}
	}
}

// TestTraceDoesNotChangeResults pins that attaching a tracer is
// observation only, like the obs recorder.
func TestTraceDoesNotChangeResults(t *testing.T) {
	c := obsTestCircuit()
	dev := hardware.LinearChain(c.NumQubits)
	plain, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(nil)
	traced, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Latency != traced.Latency || plain.Fidelity != traced.Fidelity {
		t.Fatalf("tracing changed results: %v/%v vs %v/%v",
			plain.Latency, plain.Fidelity, traced.Latency, traced.Fidelity)
	}
	if plain.Stats != traced.Stats {
		t.Fatalf("tracing changed stats: %+v vs %+v", plain.Stats, traced.Stats)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	// Estimate mode still attributes per-pulse spans.
	sum := tr.Summary()
	if sum.ByName["qoc/pulse"].Count == 0 {
		t.Fatalf("no qoc/pulse spans in estimate mode: %v", sum.ByName)
	}
	if sum.ByName["compile"].Count != 1 {
		t.Fatalf("compile span count: %v", sum.ByName["compile"])
	}
}

// TestTraceBlockSpansMatchObsTimer pins the acceptance criterion that
// per-block trace spans and the aggregate obs timer measure the same
// region: span counts agree exactly, and under the fake clock (no time
// advances) their durations agree trivially. The real-clock 5%
// agreement is checked by the epoc CLI walkthrough in the README.
func TestTraceBlockSpansMatchObsTimer(t *testing.T) {
	c := obsTestCircuit()
	tr := trace.New(nil)
	rec := obs.New()
	_, err := Compile(c, Options{
		Strategy: EPOC,
		Device:   hardware.LinearChain(c.NumQubits),
		Mode:     QOCEstimate,
		Trace:    tr,
		Obs:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	sum := tr.Summary()
	if got, want := sum.ByName["stage/synth/block"].Count, snap.Timers["stage/synth/block"].Count; got != want {
		t.Fatalf("block span count %d != obs timer count %d", got, want)
	}
	if got, want := sum.ByName["qoc/pulse"].Count, int64(snap.Counters["pulses"]); got == 0 || want == 0 {
		t.Fatalf("missing pulse instrumentation: spans=%d pulses=%d", got, want)
	}
}
