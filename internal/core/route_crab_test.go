package core

import (
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/hardware"
)

func TestRoutedCompileNonAdjacent(t *testing.T) {
	// A CX between the two ends of the chain requires routing.
	c := circuit.New(4)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 3)
	dev := hardware.LinearChain(4)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Route: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatal("routed compile produced no schedule")
	}
	for _, it := range res.Schedule.Items {
		qs := it.Pulse.Qubits
		if len(qs) == 2 && qs[1]-qs[0] != 1 {
			t.Fatalf("pulse on non-adjacent qubits %v", qs)
		}
	}
}

func TestRoutedCompileWideGate(t *testing.T) {
	// CCX must be decomposed by the routing pre-pass, not rejected.
	c := circuit.New(3)
	c.Append(gate.New(gate.CCX), 0, 1, 2)
	dev := hardware.LinearChain(3)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Route: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatal("no schedule")
	}
	// With routing, every pulse acts on adjacent qubits.
	for _, it := range res.Schedule.Items {
		qs := it.Pulse.Qubits
		if len(qs) == 2 && qs[1]-qs[0] != 1 {
			t.Fatalf("pulse on non-adjacent qubits %v", qs)
		}
		if len(qs) > 2 {
			t.Fatalf("routed compile produced a %d-qubit pulse", len(qs))
		}
	}
}

func TestCRABCompileBell(t *testing.T) {
	// CRAB end to end on a tiny circuit; derivative-free so keep the
	// search space minimal.
	c := circuit.New(1)
	c.Append(gate.New(gate.H), 0)
	dev := hardware.LinearChain(1)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev, Algorithm: AlgCRAB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.99 {
		t.Fatalf("CRAB compile fidelity %v", res.Fidelity)
	}
	if res.Stats.QOCRuns == 0 {
		t.Fatal("CRAB ran no searches")
	}
}
