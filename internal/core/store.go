package core

import (
	"fmt"
	"strconv"

	"epoc/internal/linalg"
	"epoc/internal/store"
)

// StoreNamespace returns the persistent-store namespace key for a
// configuration: the codec version plus a sha256 over every knob that
// shapes stored artifacts. Two Options with the same namespace produce
// interchangeable pulses and syntheses; anything that would change
// them — the QOC mode or algorithm, fidelity target, iteration count,
// seed, slot grid, synthesis tuning, or the device physics — lands in
// a different namespace directory, which is the store's entire
// invalidation mechanism (DESIGN.md §12).
//
// Deliberately excluded: strategy and MatchGlobalPhase (records are
// re-keyed on import, so flows share warm entries), worker count (the
// pipeline is worker-count invariant), partition/regroup limits (the
// store is keyed by unitary — which unitaries appear doesn't change
// what a record means), budgets (degraded results are never stored),
// and the device's qubit count (pulses are per-block, not per-chip, so
// a 5-qubit and a 50-qubit chain with the same physics share entries).
func StoreNamespace(opts Options) string {
	o := opts.withDefaults()
	return store.Namespace(storeConfig(&o))
}

// OpenStore opens (or creates) the store for opts under root. The
// caller owns the returned store: share it via Options.Store across
// compiles and Close it when done.
func OpenStore(root string, opts Options) (*store.Store, error) {
	o := opts.withDefaults()
	st, err := store.Open(root, store.Namespace(storeConfig(&o)))
	if err != nil {
		return nil, err
	}
	return st, nil
}

// storeConfig flattens the namespace-relevant knobs of a defaulted
// Options. Keep in sync with the StoreNamespace doc comment.
func storeConfig(o *Options) map[string]string {
	mode := "full"
	if o.Mode == QOCEstimate {
		mode = "estimate"
	}
	alg := "grape"
	if o.Algorithm == AlgCRAB {
		alg = "crab"
	}
	return map[string]string{
		"mode":               mode,
		"algorithm":          alg,
		"fidelity_target":    fmt.Sprintf("%g", o.FidelityTarget),
		"grape_iters":        strconv.Itoa(o.GRAPEIters),
		"slot_step_2q":       strconv.Itoa(o.SlotStep2Q),
		"seed":               strconv.FormatInt(o.Seed, 10),
		"synth_max_cnots":    strconv.Itoa(o.Synth.MaxCNOTs),
		"synth_max_nodes":    strconv.Itoa(o.Synth.MaxNodes),
		"synth_opt_budget":   strconv.Itoa(o.Synth.OptBudget),
		"synth_seed":         strconv.FormatInt(o.Synth.Seed, 10),
		"device_dt":          fmt.Sprintf("%g", o.Device.Dt),
		"device_drive_max":   fmt.Sprintf("%g", o.Device.DriveMax),
		"device_coupler_max": fmt.Sprintf("%g", o.Device.CouplerMax),
		"device_max_slots":   fmt.Sprintf("%d/%d/%d", o.Device.MaxSlots(1), o.Device.MaxSlots(2), o.Device.MaxSlots(3)),
	}
}

// attachStore resolves the compile's store: Options.Store when its
// namespace matches this configuration, else a store opened from
// StorePath (owned by this compile and closed by detachStore). A
// shared store whose namespace does not match is dropped for this
// compile — its records were produced under other knobs, and warming
// from them would be exactly the cache poisoning the namespace exists
// to prevent.
func attachStore(o *Options) (owned *store.Store, err error) {
	ns := store.Namespace(storeConfig(o))
	if o.Store != nil && o.Store.Namespace() != ns {
		o.Obs.Add("store/namespace_mismatch", 1)
		o.compileSpan.SetStr("store", "namespace_mismatch")
		o.Store = nil
	}
	if o.Store == nil && o.StorePath != "" {
		st, err := store.Open(o.StorePath, ns)
		if err != nil {
			return nil, err
		}
		o.Store = st
		owned = st
	}
	if o.Store != nil {
		wp := o.Store.WarmLibrary(o.Library)
		ws := o.Store.WarmSynthCache(o.SynthCache)
		o.Obs.Add("store/warm/pulses", int64(wp))
		o.Obs.Add("store/warm/synth", int64(ws))
		o.compileSpan.SetInt("store_warm_pulses", int64(wp)).
			SetInt("store_warm_synth", int64(ws))
	}
	return owned, nil
}

// harvestStore persists what the compile learned: every new library
// and cache entry is staged and flushed. A flush failure never fails
// the compile — the result in hand is valid — it is counted and the
// entries stay staged for the next flush (or are lost with the
// process, which is the cold-start status quo).
func harvestStore(o *Options) {
	if o.Store == nil {
		return
	}
	hp := o.Store.HarvestLibrary(o.Library)
	hs := o.Store.HarvestSynthCache(o.SynthCache)
	o.Obs.Add("store/harvest/pulses", int64(hp))
	o.Obs.Add("store/harvest/synth", int64(hs))
	if err := o.Store.Flush(); err != nil {
		o.Obs.Add("store/flush_errors", 1)
		o.compileSpan.SetStr("store_flush_error", err.Error())
	}
}

// warmStartMaxDist bounds how far (in phase-invariant distance, range
// [0, √2]) a stored neighbour may be and still seed GRAPE. Beyond it a
// cold random start is the safer bet: a distant initialization can
// steer the optimizer into a worse basin than the one it finds from
// noise, breaking the warm ≥ cold convergence property the store
// promises.
const warmStartMaxDist = 0.75

// snapshotWarmCands freezes the warm-start candidate set at stage-5
// entry: the library's exported entries that carry raw amplitudes.
// The snapshot — not the live library — is what every pulse consults,
// so concurrent prefill workers storing new pulses cannot change a
// later pulse's warm choice and the output stays byte-identical at any
// worker count.
func snapshotWarmCands(o *Options) {
	entries := o.Library.Export()
	if len(entries) == 0 {
		return
	}
	us := make([]*linalg.Matrix, len(entries))
	for i, e := range entries {
		if e.P != nil && e.P.Slots > 0 && len(e.P.Amps) > 0 {
			us[i] = e.U
		}
	}
	o.warmCands = entries
	o.warmUs = us
}
