package core

import (
	"math"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/linalg"
	"epoc/internal/qoc"
)

// reconstructUnitary rebuilds the total unitary of a compiled schedule
// by propagating every pulse's stored amplitudes through the device
// model and embedding the results in schedule order. This closes the
// loop: the microwave program, not just the intermediate circuit, must
// implement the input circuit.
func reconstructUnitary(t *testing.T, res *Result, dev *hardware.Device, n int) *linalg.Matrix {
	t.Helper()
	u := linalg.Identity(1 << n)
	for _, item := range res.Schedule.Items {
		p := item.Pulse
		if p.Amps == nil {
			t.Fatalf("pulse %q carries no amplitudes (estimate mode?)", p.Label)
		}
		model := dev.BlockModel(len(p.Qubits))
		block := model.Propagate(p.Amps)
		u = linalg.EmbedOperator(block, p.Qubits, n).Mul(u)
	}
	return u
}

// endToEnd compiles with full QOC and checks the physical pulse
// program against the input circuit's unitary.
func endToEnd(t *testing.T, c *circuit.Circuit, strategy Strategy, minFid float64) {
	t.Helper()
	dev := hardware.LinearChain(c.NumQubits)
	res, err := Compile(c, Options{Strategy: strategy, Device: dev, GRAPEIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	got := reconstructUnitary(t, res, dev, c.NumQubits)
	fid := qoc.Fidelity(got, c.Unitary())
	if fid < minFid {
		t.Fatalf("%s: pulse program implements the wrong unitary: fidelity %v (ESP claim %v)",
			strategy, fid, res.Fidelity)
	}
	// The claimed ESP should roughly lower-bound the true process
	// fidelity's error budget: with k pulses each ≥ target fidelity, the
	// product is a pessimistic estimate, so the reconstructed fidelity
	// must not be wildly below it.
	if fid < res.Fidelity-0.05 {
		t.Fatalf("%s: reconstructed fidelity %v far below claimed ESP %v", strategy, fid, res.Fidelity)
	}
}

func TestEndToEndBellEPOC(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	endToEnd(t, c, EPOC, 0.99)
}

func TestEndToEndBellAllQOCStrategies(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	for _, s := range []Strategy{AccQOC, PAQOC, EPOCNoGroup} {
		endToEnd(t, c, s, 0.99)
	}
}

func TestEndToEndGHZ3(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 1, 2)
	endToEnd(t, c, EPOC, 0.99)
}

func TestEndToEndPhaseKickback(t *testing.T) {
	// A circuit with non-Clifford content and an idle-ish qubit.
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.CX), 0, 2)
	c.Append(gate.New(gate.RZ, 0.7), 2)
	c.Append(gate.New(gate.CX), 0, 2)
	c.Append(gate.New(gate.RX, 1.1), 1)
	endToEnd(t, c, EPOC, 0.99)
}

func TestEndToEndScheduleTimingConsistency(t *testing.T) {
	// Gate-based schedule latency must equal the circuit's weighted
	// critical path under the device's calibrations.
	c := circuit.New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.X), 2)
	c.Append(gate.New(gate.CX), 1, 2)
	dev := hardware.LinearChain(3)
	res, err := Compile(c, Options{Strategy: GateBased, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	want := c.CriticalPath(func(op circuit.Op) float64 {
		return dev.GateLatency(op.G.Kind)
	})
	if math.Abs(res.Latency-want) > 1e-9 {
		t.Fatalf("schedule latency %v != critical path %v", res.Latency, want)
	}
}
