package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"epoc/internal/circuit"
	"epoc/internal/faultclock"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/optimize"
	"epoc/internal/partition"
	"epoc/internal/pulse"
	"epoc/internal/qoc"
	"epoc/internal/route"
	"epoc/internal/sim"
	"epoc/internal/synth"
	"epoc/internal/zx"
)

// compileGateBased lowers every gate to its calibrated pulse.
func compileGateBased(c *circuit.Circuit, o Options) (*Result, error) {
	if err := o.stageGate(0).Check(faultclock.SiteStageLower); err != nil && !faultclock.IsBudget(err) {
		return nil, err
	}
	sp := o.beginStage("stage/lower")
	defer sp.End()
	sched := pulse.NewSchedule(c.NumQubits)
	res := &Result{Schedule: sched}
	res.Stats.DepthBefore = c.Depth()
	res.Stats.GatesBefore = c.Len()
	for _, op := range c.Ops {
		if op.G.IsBlock() {
			return nil, fmt.Errorf("core: gate-based flow cannot lower block gate %s", op.G)
		}
		dur := o.Device.GateLatency(op.G.Kind)
		//epoc:lint-ignore floatcmp GateLatency returns exactly 0 only for virtual frame-change gates
		if dur == 0 {
			continue // virtual gate (frame change)
		}
		sched.Add(&pulse.Pulse{
			Label:    string(op.G.Kind),
			Qubits:   append([]int(nil), op.Qubits...),
			Duration: dur,
			Fidelity: o.Device.GateFidelity(len(op.Qubits)),
		})
		res.Stats.PulseCount++
	}
	return res, nil
}

// compileQOC runs the partition/synthesis/QOC flows (AccQOC, PAQOC,
// EPOC with and without grouping).
func compileQOC(c *circuit.Circuit, o Options) (*Result, error) {
	res := &Result{}
	res.Stats.DepthBefore = c.Depth()
	res.Stats.GatesBefore = c.Len()

	// g guards the stage boundaries: cancellation aborts the compile at
	// every boundary; total-budget expiry skips the expendable stages
	// (ZX, regrouping — the pipeline is correct without them) and lets
	// the mandatory ones degrade internally.
	g := o.stageGate(0)

	work := c
	// PAQOC is "program-aware": it cleans the gate stream first.
	if o.Strategy == PAQOC {
		work = optimize.Peephole(work)
	}
	// Stage 1: graph-based depth optimization (EPOC flows).
	if err := g.Check(faultclock.SiteStageZX); err != nil {
		if !faultclock.IsBudget(err) {
			return nil, err
		}
		res.DegradeReasons = append(res.DegradeReasons, "zx")
	} else if *o.UseZX {
		sp := o.beginStage("stage/zx")
		work = zxOptimize(work)
		sp.End()
	}
	res.Stats.DepthAfterZX = work.Depth()
	res.Stats.GatesAfterZX = work.Len()

	// Optional topology mapping: decompose wide gates, insert SWAPs.
	// Runs after the ZX stage, whose extraction may rewire qubit pairs.
	// Routing is a correctness stage (the device can only execute
	// mapped circuits), so a budget never skips it.
	if o.Route {
		if err := g.Check(faultclock.SiteStageRoute); err != nil && !faultclock.IsBudget(err) {
			return nil, err
		}
		sp := o.beginStage("stage/route")
		basis := optimize.DecomposeToBasis(work)
		topo := route.NewTopology(o.Device.NumQubits, o.Device.Edges)
		routed, err := route.Route(basis, topo)
		sp.End()
		if err != nil {
			return nil, err
		}
		work = routed.Circuit
	}

	// Stage 2: greedy partition (Algorithm 1). Mandatory: later stages
	// consume blocks.
	if err := g.Check(faultclock.SiteStagePartition); err != nil && !faultclock.IsBudget(err) {
		return nil, err
	}
	sp := o.beginStage("stage/partition")
	blocks := partition.Partition(work, partition.Options{
		MaxQubits: o.PartitionMaxQubits,
		MaxGates:  o.PartitionMaxGates,
	})
	sp.End()
	res.Stats.Blocks = len(blocks)

	// Stage 3: lower blocks. EPOC flows synthesize each block into
	// VUGs + CNOTs; AccQOC/PAQOC feed block unitaries straight to QOC.
	// The stage always runs; budget expiry degrades per block (each
	// falls back to its own gate realization).
	var lowered *circuit.Circuit
	epocFlow := o.Strategy == EPOC || o.Strategy == EPOCNoGroup
	if epocFlow {
		if err := g.Check(faultclock.SiteStageSynth); err != nil && !faultclock.IsBudget(err) {
			return nil, err
		}
		o.synthGate = o.stageGate(o.Budgets.SynthTime)
		o.Synth.Gate = o.synthGate
		sp := o.beginStage("stage/synth")
		o.synthSpan = sp.tr
		var err error
		lowered, err = synthesizeBlocks(c.NumQubits, blocks, o, &res.Stats)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.Stats.VUGs = lowered.CountKind(gate.U3)
		res.Stats.CNOTsAfter = lowered.CountKind(gate.CX)
	} else {
		lowered = partition.ToBlockCircuit(c.NumQubits, blocks)
	}
	res.Lowered = lowered

	// Stage 4: regrouping (full EPOC and the coarse baselines; the
	// no-grouping ablation pulses every op individually). Expendable:
	// on budget expiry the fine-grained circuit is pulsed directly.
	var pulsed *circuit.Circuit
	switch o.Strategy {
	case EPOC:
		if err := g.Check(faultclock.SiteStageRegroup); err != nil {
			if !faultclock.IsBudget(err) {
				return nil, err
			}
			res.DegradeReasons = append(res.DegradeReasons, "regroup")
			pulsed = lowered
			break
		}
		sp := o.beginStage("stage/regroup")
		pulsed = synth.Regroup(lowered, o.RegroupMaxQubits)
		sp.End()
	case EPOCNoGroup:
		pulsed = lowered
	default:
		// AccQOC/PAQOC blocks are already unitary ops of bounded size.
		pulsed = lowered
	}

	// Stage 5: QOC per distinct unitary, with library reuse. The
	// distinct misses are optimized first — concurrently when
	// Workers > 1 — so the scheduling loop below only hits the library
	// and Stats.Library{Hits,Misses} are identical for every worker
	// count. The AccQOC baseline instead builds its library along a
	// minimum spanning tree of the unitary similarity graph with
	// warm-started GRAPE, as the original AccQOC paper does.
	//
	// QOC is mandatory (the schedule needs a pulse per op) and degrades
	// internally: budget-stopped optimizer runs keep their best-so-far
	// pulse, and a budget that expires before any probe completes falls
	// back to the calibrated estimator. Degraded pulses are never
	// stored in the library, so a shared library is not poisoned for
	// later compiles that run with a fresh budget.
	if err := g.Check(faultclock.SiteStageQOC); err != nil && !faultclock.IsBudget(err) {
		return nil, err
	}
	qocStart := time.Now()
	o.qocGate = o.stageGate(o.Budgets.QOCTime)
	sp = o.beginStage("stage/qoc")
	o.qocSpan = sp.tr
	// Freeze the warm-start candidate set before any worker runs: every
	// pulse in this compile selects its neighbour from the same
	// snapshot, so the choice — and therefore the output — cannot
	// depend on worker scheduling. AccQOC keeps its own MST warm-start
	// policy.
	if o.Mode == QOCFull && *o.WarmStart && o.Strategy != AccQOC {
		snapshotWarmCands(&o)
	}
	if o.Mode == QOCFull {
		if o.Strategy == AccQOC {
			if err := mstPrefill(pulsed, o, &res.Stats); err != nil {
				return nil, err
			}
		} else if err := prefillLibrary(pulsed, o, &res.Stats); err != nil {
			return nil, err
		}
	}
	sched := pulse.NewSchedule(c.NumQubits)
	res.Schedule = sched
	for _, op := range pulsed.Ops {
		u := op.G.Matrix()
		p, hit := o.Library.Lookup(u)
		if !hit {
			var err error
			p, err = pulseFor(u, op, o, &res.Stats)
			if err != nil && !faultclock.IsBudget(err) {
				return nil, err
			}
			if err == nil {
				o.Library.Store(u, p)
			}
		}
		placed := &pulse.Pulse{
			Label:    p.Label,
			Qubits:   append([]int(nil), op.Qubits...),
			Duration: p.Duration,
			Fidelity: p.Fidelity,
			Slots:    p.Slots,
			Amps:     p.Amps,
		}
		sched.Add(placed)
		res.Stats.PulseCount++
	}
	sp.End()
	res.QOCTime = time.Since(qocStart)
	return res, nil
}

// synthesizeBlocks runs stage 3 of the EPOC flows: every eligible
// block (non-bridge, ≤3 qubits, more than one gate) is synthesized
// into VUGs + CNOTs through the synthesis cache, with distinct
// unitaries dispatched to a pool of o.Workers goroutines. The output
// is byte-identical for every worker count:
//
//   - Eligible blocks are first grouped by unitary up to global phase
//     (verified, not just fingerprinted), electing the lowest block
//     index as each class representative. The class→result mapping is
//     therefore a pure function of the circuit, not of scheduling.
//   - Only representatives are dispatched; workers write results into
//     a slice indexed by class, and the lowered circuit is assembled
//     serially in block order afterwards.
//   - QSearch itself is deterministic given (unitary, Options.Synth):
//     its multistart RNG is seeded per call, and its phase-invariant
//     cost makes phase-equivalent duplicates converge identically.
//
// Blocks whose synthesis misses the accuracy threshold fall back to
// their own U3/CX realization (never a cached one, which would make
// the output depend on which duplicate computed first).
//
// Cancellation returns the context's error after every worker has
// drained (the pool always joins — no leaked goroutines); budget
// expiry instead degrades block by block to the fallback realization
// and counts Stats.SynthDegraded.
func synthesizeBlocks(n int, blocks []partition.Block, o Options, st *Stats) (*circuit.Circuit, error) {
	type class struct {
		u   *linalg.Matrix
		dup int // eligible blocks beyond the representative
	}
	classOf := make([]int, len(blocks))
	var classes []class
	byKey := map[string][]int{} // fingerprint -> class indices (collision chain)
	for i := range blocks {
		classOf[i] = -1
		b := &blocks[i]
		if b.Bridge || len(b.Qubits) > 3 || b.Local.Len() <= 1 {
			continue
		}
		u := b.Unitary()
		ci := -1
		for _, cand := range byKey[linalg.Fingerprint(u)] {
			if classes[cand].u.Rows == u.Rows && linalg.PhaseDistance(classes[cand].u, u) < synth.CacheTol {
				ci = cand
				break
			}
		}
		if ci < 0 {
			ci = len(classes)
			classes = append(classes, class{u: u})
			byKey[linalg.Fingerprint(u)] = append(byKey[linalg.Fingerprint(u)], ci)
		} else {
			classes[ci].dup++
		}
		classOf[i] = ci
	}

	type outcome struct {
		circ   *circuit.Circuit
		ok     bool
		status synth.CacheStatus
		err    error
	}
	results := make([]outcome, len(classes))
	run := func(ci int) {
		bsp := o.Obs.Span("stage/synth/block")
		// The class index, qubit count and duplicate count are pure
		// functions of the circuit, so block spans sort canonically
		// regardless of which worker ran them.
		tsp := o.synthSpan.Child("stage/synth/block").
			SetInt("class", int64(ci)).
			SetInt("qubits", int64(log2(classes[ci].u.Rows))).
			SetInt("dup", int64(classes[ci].dup))
		defer tsp.End()
		sopts := o.Synth
		sopts.Span = tsp
		circ, ok, status, err := o.SynthCache.GetOrCompute(o.synthGate, classes[ci].u, func() (*circuit.Circuit, bool, error) {
			return synth.SynthesizeOutcome(classes[ci].u, sopts)
		})
		bsp.End()
		tsp.SetStr("cache", status.String()).SetBool("ok", ok)
		results[ci] = outcome{circ: circ, ok: ok, status: status, err: err}
	}
	workers := o.Workers
	if workers > len(classes) {
		workers = len(classes)
	}
	if workers <= 1 {
		for ci := range classes {
			run(ci)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range work {
					run(ci)
				}
			}()
		}
		for ci := range classes {
			work <- ci
		}
		close(work)
		wg.Wait()
	}

	// Cancellation wins over everything: the pool has fully drained by
	// here, so returning the context's error leaks nothing, and the
	// partial per-class results are simply discarded.
	for ci := range classes {
		if err := results[ci].err; err != nil && !faultclock.IsBudget(err) {
			return nil, err
		}
	}

	// Cache accounting: in-compile duplicates are hits by construction;
	// representatives report what the (possibly shared) cache saw.
	// Coalesced lookups did not run a synthesis, so they count as hits
	// in Stats while keeping their own obs counter.
	for ci := range classes {
		st.SynthCacheHits += classes[ci].dup
		o.Obs.Add("synthcache/hit", int64(classes[ci].dup))
		switch results[ci].status {
		case synth.CacheMiss:
			st.SynthCacheMisses++
			o.Obs.Add("synthcache/miss", 1)
		case synth.CacheHit:
			st.SynthCacheHits++
			o.Obs.Add("synthcache/hit", 1)
		case synth.CacheCoalesced:
			st.SynthCacheHits++
			o.Obs.Add("synthcache/coalesced", 1)
		}
	}

	// Serial assembly in block order keeps the lowered circuit, stats
	// and spans independent of worker scheduling.
	lowered := circuit.New(n)
	for i := range blocks {
		b := &blocks[i]
		local := b.Local
		if ci := classOf[i]; ci >= 0 {
			if out := results[ci]; out.ok {
				local = out.circ
			} else {
				local = decomposeFallback(b.Local)
				st.SynthFallback++
				o.Obs.Add("synth/fallbacks", 1)
				if faultclock.IsBudget(out.err) {
					st.SynthDegraded++
					o.Obs.Add("synth/degraded", 1)
				}
			}
		}
		for _, op := range local.Ops {
			qs := make([]int, len(op.Qubits))
			for j, lq := range op.Qubits {
				qs[j] = b.Qubits[lq]
			}
			lowered.Append(op.G, qs...)
		}
	}
	return lowered, nil
}

// prefillLibrary optimizes every distinct uncached block unitary with
// a pool of worker goroutines, then stores the results, so the main
// scheduling loop only hits the library. Stats.QOCRuns is accumulated
// afterwards to stay race-free.
//
// Only clean results are stored: budget-degraded pulses are left for
// the sequential scheduling loop, which recomputes them (cheaply —
// the expired budget trips the optimizer immediately), counts the
// degradation once, and keeps them out of the shared library. A
// cancellation is returned after the pool drains; scheduling never
// starts.
func prefillLibrary(pulsed *circuit.Circuit, o Options, st *Stats) error {
	type job struct {
		u  *linalg.Matrix
		op circuit.Op
	}
	var jobs []job
	seen := map[string]bool{}
	for _, op := range pulsed.Ops {
		u := op.G.Matrix()
		fp := linalg.Fingerprint(u)
		if seen[fp] || o.Library.Peek(u) {
			continue
		}
		seen[fp] = true
		jobs = append(jobs, job{u: u, op: op})
	}
	if o.Obs != nil {
		o.Obs.Add("library/prefill/distinct", int64(len(jobs)))
		o.Obs.Add("library/prefill/deduped", int64(pulsed.Len()-len(jobs)))
	}
	if len(jobs) == 0 {
		return nil
	}
	type done struct {
		idx int
		p   *pulse.Pulse
		st  Stats
		err error
	}
	work := make(chan int)
	results := make(chan done, len(jobs))
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range work {
				var local Stats
				p, err := pulseFor(jobs[idx].u, jobs[idx].op, o, &local)
				results <- done{idx: idx, p: p, st: local, err: err}
			}
		}()
	}
	go func() {
		for i := range jobs {
			work <- i
		}
		close(work)
	}()
	var canceled error
	for range jobs {
		d := <-results
		if d.err != nil {
			// Budget-degraded pulses stay out of the library (the
			// scheduling loop recomputes and accounts them); a
			// cancellation is remembered and returned once every worker
			// has drained, so nothing leaks.
			if !faultclock.IsBudget(d.err) {
				canceled = d.err
			}
			continue
		}
		o.Library.Store(jobs[d.idx].u, d.p)
		st.QOCRuns += d.st.QOCRuns
		st.WarmStarts += d.st.WarmStarts
	}
	return canceled
}

// mstPrefill builds the pulse library in AccQOC's order: group the
// distinct uncached unitaries by size, span each group's similarity
// graph with an MST, and optimize along the tree with GRAPE warm
// starts from each vertex's parent pulse. Like prefillLibrary it
// stores only clean results and returns cancellation.
func mstPrefill(pulsed *circuit.Circuit, o Options, st *Stats) error {
	type job struct {
		u  *linalg.Matrix
		op circuit.Op
	}
	byDim := map[int][]job{}
	seen := map[string]bool{}
	distinct := 0
	for _, op := range pulsed.Ops {
		u := op.G.Matrix()
		fp := linalg.Fingerprint(u)
		if seen[fp] || o.Library.Peek(u) {
			continue
		}
		seen[fp] = true
		distinct++
		byDim[u.Rows] = append(byDim[u.Rows], job{u: u, op: op})
	}
	if o.Obs != nil {
		o.Obs.Add("library/prefill/distinct", int64(distinct))
		o.Obs.Add("library/prefill/deduped", int64(pulsed.Len()-distinct))
	}
	for _, jobs := range byDim {
		us := make([]*linalg.Matrix, len(jobs))
		for i, j := range jobs {
			us[i] = j.u
		}
		order, parent := qoc.MSTOrder(us)
		pulses := make([]*pulse.Pulse, len(jobs))
		for _, idx := range order {
			var warm [][]float64
			if parent[idx] >= 0 && pulses[parent[idx]] != nil {
				warm = pulses[parent[idx]].Amps
			}
			p, err := pulseForWarm(jobs[idx].u, jobs[idx].op, o, st, warm)
			if err != nil {
				if !faultclock.IsBudget(err) {
					return err
				}
				continue // degraded: the scheduling loop recomputes it
			}
			pulses[idx] = p
			o.Library.Store(jobs[idx].u, p)
		}
	}
	return nil
}

// log2 returns the base-2 logarithm of a power-of-two dimension.
func log2(dim int) int {
	n := 0
	for d := dim; d > 1; d >>= 1 {
		n++
	}
	return n
}

// pulseFor produces a pulse for one block unitary, via GRAPE or the
// calibrated estimator. With a warm-candidate snapshot in place (see
// snapshotWarmCands) it seeds the optimizer from the nearest stored
// neighbour's amplitudes — the AccQOC similarity-reuse idea, driven by
// the persistent store instead of an MST over the current batch. The
// snapshot was taken before any of this compile's pulses ran, so the
// selection is a pure function of (snapshot, u) and worker-count
// invariant. Exact matches never reach here: they were served by the
// library lookup or skipped by the prefill's Peek.
func pulseFor(u *linalg.Matrix, op circuit.Op, o Options, st *Stats) (*pulse.Pulse, error) {
	var warm [][]float64
	if len(o.warmUs) > 0 && o.Mode == QOCFull {
		if idx, dist := qoc.Nearest(o.warmUs, u, warmStartMaxDist); idx >= 0 {
			warm = o.warmCands[idx].P.Amps
			st.WarmStarts++
			o.Obs.Add("qoc/warmstart", 1)
			o.Obs.Observe("qoc/warmstart/distance", dist)
		}
	}
	return pulseForWarm(u, op, o, st, warm)
}

// pulseForWarm is pulseFor with an optional GRAPE warm start.
//
// Error contract: a nil error is a clean pulse; faultclock.ErrBudget
// accompanies a usable degraded pulse (the optimizer's best-so-far,
// or the calibrated estimate when the budget expired before any probe
// completed) and increments Stats.QOCDegraded; any other error is a
// cancellation and the pulse is nil.
func pulseForWarm(u *linalg.Matrix, op circuit.Op, o Options, st *Stats, warm [][]float64) (*pulse.Pulse, error) {
	k := len(op.Qubits)
	label := fmt.Sprintf("%s[%dq]", op.G.Kind, k)
	// One trace span per pulse that reaches the optimizer (or the
	// estimator); the unitary fingerprint prefix distinguishes sibling
	// spans deterministically — the prefill pools dedupe by
	// fingerprint, so no two concurrent pulse spans share one.
	tsp := o.qocSpan.Child("qoc/pulse").
		SetStr("label", label).
		SetStr("u", fingerprintPrefix(u))
	defer tsp.End()
	if o.Mode == QOCEstimate {
		if err := o.qocGate.Err(); err != nil {
			tsp.SetStr("stop", "canceled")
			return nil, err
		}
		dur, fid := estimatePulse(op, o)
		tsp.SetBool("estimated", true).SetFloat("duration_ns", dur)
		return &pulse.Pulse{Label: label, Duration: dur, Fidelity: fid}, nil
	}
	model := o.Device.BlockModel(k)
	maxSlots := o.Device.MaxSlots(k)
	step := 2
	if k == 2 {
		step = o.SlotStep2Q
	} else if k > 2 {
		step = 2 * o.SlotStep2Q
	}
	st.QOCRuns++
	// Per-entry optimize cost: one span per distinct unitary that
	// reaches the optimizer (the pulse library absorbs the rest).
	sp := o.Obs.Span("qoc/pulse")
	defer sp.End()
	var r qoc.Result
	if o.Algorithm == AlgCRAB {
		r = qoc.DurationSearchCRAB(model, u, 2, maxSlots, step, qoc.CRABConfig{
			Target:      o.FidelityTarget,
			Seed:        o.Seed,
			Obs:         o.Obs,
			Gate:        o.qocGate,
			BudgetIters: o.Budgets.QOCIters,
			Span:        tsp,
		})
	} else {
		cfg := qoc.GRAPEConfig{
			MaxIter:     o.GRAPEIters,
			Target:      o.FidelityTarget,
			Seed:        o.Seed,
			Obs:         o.Obs,
			Gate:        o.qocGate,
			BudgetIters: o.Budgets.QOCIters,
			Span:        tsp,
		}
		if warm == nil {
			r = qoc.DurationSearch(model, u, 2, maxSlots, step, cfg)
		} else {
			r = qoc.SearchDuration(cfg.Gate, 2, maxSlots, step, cfg.Target, qoc.ObserveProbes(o.Obs, qoc.TraceProbes(tsp, func(slots int) qoc.Result {
				return qoc.WarmStartGRAPE(model, u, slots, warm, cfg)
			})))
		}
	}
	tsp.SetInt("slots", int64(r.Slots)).
		SetInt("iterations", int64(r.Iterations)).
		SetFloat("duration_ns", r.Duration).
		SetFloat("infidelity", 1-r.Fidelity)
	// Warm vs cold iteration counts land in separate distributions, so
	// a run's obs snapshot shows the warm-start savings directly.
	if warm != nil {
		tsp.SetBool("warm", true)
		o.Obs.Observe("qoc/warmstart/iterations", float64(r.Iterations))
	} else {
		o.Obs.Observe("qoc/coldstart/iterations", float64(r.Iterations))
	}
	if r.Err != nil {
		if !faultclock.IsBudget(r.Err) {
			tsp.SetStr("stop", "canceled")
			return nil, r.Err
		}
		st.QOCDegraded++
		o.Obs.Add("qoc/degraded", 1)
		tsp.SetStr("stop", "budget")
		if r.Slots <= 0 || r.Amps == nil {
			// The budget expired before any probe completed: fall back
			// to the calibrated estimator rather than an empty pulse.
			dur, fid := estimatePulse(op, o)
			tsp.SetBool("estimated", true)
			return &pulse.Pulse{Label: label, Duration: dur, Fidelity: fid}, faultclock.ErrBudget
		}
	}
	return &pulse.Pulse{
		Label:    label,
		Duration: r.Duration,
		Fidelity: r.Fidelity,
		Slots:    r.Slots,
		Amps:     r.Amps,
	}, r.Err
}

// fingerprintPrefix shortens a unitary fingerprint to a readable trace
// attribute.
func fingerprintPrefix(u *linalg.Matrix) string {
	fp := linalg.Fingerprint(u)
	if len(fp) > 12 {
		fp = fp[:12]
	}
	return fp
}

// estimatePulse predicts a pulse's duration and fidelity from gate
// content, with constants calibrated against the GRAPE engine (1q ops
// ≈ 16 ns, CX-equivalents ≈ 96 ns on the default device).
func estimatePulse(op circuit.Op, o Options) (dur, fid float64) {
	const (
		oneQ = 16.0
		twoQ = 96.0
	)
	k := len(op.Qubits)
	switch {
	case op.G.Kind == gate.CX || op.G.Kind == gate.CZ:
		dur = twoQ
	case k == 1:
		dur = oneQ
	default:
		// Content heuristic for a block: its non-locality is bounded by
		// the Weyl volume; approximate with one CX-equivalent per qubit
		// pair plus one 1q layer.
		dur = twoQ*float64(k-1) + oneQ
	}
	// Quantize to the device slot grid.
	dur = math.Ceil(dur/o.Device.Dt) * o.Device.Dt
	return dur, o.FidelityTarget
}

// DepthOptimize exposes the graph-based depth-optimization stage on
// its own (used by the Figure 5 experiment and cmd/zxopt): it returns
// the shallowest verified equivalent of c found via ZX simplification
// and extraction, never worse than c itself.
func DepthOptimize(c *circuit.Circuit) *circuit.Circuit {
	return zxSelect(c, func(cand *circuit.Circuit) float64 { return float64(cand.Depth()) })
}

// zxOptimize is the pipeline's ZX stage. Unlike DepthOptimize it
// scores candidates by a pulse-latency proxy — the critical path with
// two-qubit ops an order of magnitude more expensive than single-qubit
// ops — because extraction can trade depth for extra CNOT scaffolding
// that would lengthen the final schedule.
func zxOptimize(c *circuit.Circuit) *circuit.Circuit {
	return zxSelect(c, latencyProxy)
}

func latencyProxy(c *circuit.Circuit) float64 {
	return c.CriticalPath(func(op circuit.Op) float64 {
		if len(op.Qubits) >= 2 {
			return 96
		}
		return 16
	})
}

// zxSelect applies the ZX pass with verification and a safe fallback:
// the extracted circuit must reproduce the original unitary on random
// product states (up to 12 qubits); on extraction failure or
// verification mismatch the gate-level peephole optimizer stands in.
// Among the verified candidates (original, peephole-cleaned original,
// cleaned extraction) the best under `score` wins, so the pass never
// hurts.
func zxSelect(c *circuit.Circuit, score func(*circuit.Circuit) float64) *circuit.Circuit {
	best := c
	bestScore := score(c)
	consider := func(cand *circuit.Circuit) {
		if s := score(cand); s < bestScore {
			best = cand
			bestScore = s
		}
	}
	peep := optimize.Peephole(c)
	consider(peep)
	consider(optimize.MergeSingleQubitRuns(peep))

	tryExtract := func(simplify func(*zx.Graph)) {
		g := zx.FromCircuit(c)
		simplify(g)
		out, err := g.ToCircuit()
		if err != nil {
			return
		}
		if c.NumQubits <= 12 && !verifyEquivalent(c, out) {
			return
		}
		consider(out)
		peepOut := optimize.Peephole(out)
		consider(peepOut)
		consider(optimize.MergeSingleQubitRuns(peepOut))
	}
	tryExtract(func(g *zx.Graph) { g.Simplify() })
	tryExtract(func(g *zx.Graph) { g.FullSimplify() })
	return best
}

// verifyEquivalent checks circuit equality up to global phase on
// random product states.
func verifyEquivalent(a, b *circuit.Circuit) bool {
	if a.NumQubits != b.NumQubits {
		return false
	}
	seeds := deterministicStates(a.NumQubits, 3)
	return sim.EquivalentCircuits(a, b, len(seeds), seeds)
}

func deterministicStates(n, count int) []*sim.State {
	states := make([]*sim.State, count)
	for i := range states {
		s := sim.NewState(n)
		for q := 0; q < n; q++ {
			theta := 0.7*float64(i+1) + 0.31*float64(q)
			phi := 1.3*float64(i+1) - 0.17*float64(q)
			s.ApplyMatrix(gate.New(gate.U3, theta, phi, 0.4).Matrix(), []int{q})
		}
		states[i] = s
	}
	return states
}

// decomposeFallback renders a block's original gates in the U3/CX
// vocabulary so the synthesis fallback composes with regrouping.
func decomposeFallback(local *circuit.Circuit) *circuit.Circuit {
	basis := optimize.DecomposeToBasis(local)
	return optimize.MergeSingleQubitRuns(basis)
}
