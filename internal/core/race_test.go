package core

import (
	"sync"
	"testing"

	"epoc/internal/benchcirc"
	"epoc/internal/hardware"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/synth"
)

// TestConcurrentCompilesSharedRecorderAndCache hammers Compile from
// many goroutines sharing one obs.Recorder and one synthesis cache —
// the supported sharing surface. Each goroutine gets its own pulse
// library (Library is documented as not goroutine-safe). Under -race
// this exercises the cache's in-flight coalescing and the recorder's
// counter/span/distribution paths concurrently; functionally, every
// compile of the same circuit must agree.
func TestConcurrentCompilesSharedRecorderAndCache(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	rec := obs.New()
	cache := synth.NewCache()

	const goroutines = 8
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Compile(c, Options{
				Strategy:   EPOC,
				Device:     dev,
				Mode:       QOCEstimate,
				Workers:    2,
				Obs:        rec,
				SynthCache: cache,
				Library:    pulse.NewLibrary(true),
			})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	first := results[0]
	for i, res := range results[1:] {
		if res.Latency != first.Latency || res.Fidelity != first.Fidelity {
			t.Fatalf("goroutine %d diverged: latency %v vs %v, fidelity %v vs %v",
				i+1, res.Latency, first.Latency, res.Fidelity, first.Fidelity)
		}
	}

	// The shared cache synthesized each unitary class exactly once
	// across all compiles: every compile after the first was served
	// entirely by hits or coalesced waits.
	totalMisses := int64(0)
	for _, res := range results {
		totalMisses += int64(res.Stats.SynthCacheMisses)
	}
	if got := cache.Misses(); got != totalMisses {
		t.Fatalf("cache misses %d, sum of per-compile misses %d", got, totalMisses)
	}
	if cache.Misses() != int64(cache.Len()) {
		t.Fatalf("cache synthesized %d times for %d classes", cache.Misses(), cache.Len())
	}
	snap := rec.Snapshot()
	if snap.Counters["synthcache/miss"] != cache.Misses() {
		t.Fatalf("recorder counted %d misses, cache %d",
			snap.Counters["synthcache/miss"], cache.Misses())
	}
	if snap.Counters["synthcache/hit"]+snap.Counters["synthcache/coalesced"] == 0 {
		t.Fatal("no cache reuse across concurrent compiles of the same circuit")
	}
}
