package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"epoc/internal/benchcirc"
	"epoc/internal/faultclock"
	"epoc/internal/hardware"
	"epoc/internal/pulse"
	"epoc/internal/synth"
)

// settleGoroutines spins (never sleeps) until the goroutine count is
// back at the baseline. All pipeline goroutines are joined before
// Compile returns, so only goroutines between their final send and
// actual exit can still be counted; yielding lets them finish.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutine leak: %d before compile, %d after settling",
		baseline, runtime.NumGoroutine())
}

// TestCompileCanceledBeforeStart: an already-canceled context returns
// promptly with the context's error, no result, and no goroutines.
func TestCompileCanceledBeforeStart(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range Strategies() {
		baseline := runtime.NumGoroutine()
		res, err := CompileContext(ctx, c, Options{Strategy: strat, Device: dev})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", strat, err)
		}
		if res != nil {
			t.Fatalf("%s: canceled compile returned a result", strat)
		}
		settleGoroutines(t, baseline)
	}
}

// TestCancelAtEveryTripPoint is the cancellation conformance suite:
// for every injectable trip point a compile reaches, arm a cancel on
// that site's nth announcement and assert the compile aborts with the
// context's error, discards the partial result, and leaks nothing.
func TestCancelAtEveryTripPoint(t *testing.T) {
	cases := []struct {
		name string
		site faultclock.Site
		n    int // 1-based announcement to cancel at
		opts Options
	}{
		{"stage-zx", faultclock.SiteStageZX, 1, Options{Strategy: EPOC}},
		{"stage-partition", faultclock.SiteStagePartition, 1, Options{Strategy: EPOC}},
		{"stage-synth", faultclock.SiteStageSynth, 1, Options{Strategy: EPOC}},
		{"stage-regroup", faultclock.SiteStageRegroup, 1, Options{Strategy: EPOC}},
		{"stage-qoc", faultclock.SiteStageQOC, 1, Options{Strategy: EPOC}},
		{"stage-lower", faultclock.SiteStageLower, 1, Options{Strategy: GateBased}},
		{"qsearch-expand", faultclock.SiteQSearchExpand, 2, Options{Strategy: EPOC, Mode: QOCEstimate}},
		{"qsearch-expand-parallel", faultclock.SiteQSearchExpand, 2, Options{Strategy: EPOC, Mode: QOCEstimate, Workers: 4}},
		{"grape-iter", faultclock.SiteGRAPEIter, 3, Options{Strategy: EPOC}},
		{"duration-probe", faultclock.SiteDurationProbe, 2, Options{Strategy: EPOC}},
		{"duration-probe-parallel", faultclock.SiteDurationProbe, 2, Options{Strategy: EPOC, Workers: 4}},
		{"crab-restart", faultclock.SiteCRABRestart, 1, Options{Strategy: EPOC, Algorithm: AlgCRAB}},
		{"grape-iter-accqoc", faultclock.SiteGRAPEIter, 2, Options{Strategy: AccQOC}},
	}
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			inj := faultclock.NewInjector()
			inj.TripAfter(tc.site, tc.n, cancel)
			opts := tc.opts
			opts.Device = dev
			opts.Inject = inj
			baseline := runtime.NumGoroutine()
			res, err := CompileContext(ctx, c, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Fatal("canceled compile returned a partial result")
			}
			if got := inj.Hits(tc.site); got < tc.n {
				t.Fatalf("site %s announced %d times; trip at %d never armed",
					tc.site, got, tc.n)
			}
			settleGoroutines(t, baseline)
		})
	}
}

// TestCanceledFillDoesNotPoisonSharedCaches: a compile canceled inside
// synthesis must leave a shared synthesis cache and pulse library in a
// state where the next compile succeeds from scratch and matches an
// uncontaminated compile exactly.
func TestCanceledFillDoesNotPoisonSharedCaches(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	clean, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}

	shared := Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate}
	shared.SynthCache = synth.NewCache()
	shared.Library = pulse.NewLibrary(true)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultclock.NewInjector()
	inj.TripAfter(faultclock.SiteQSearchExpand, 1, cancel)
	canceledOpts := shared
	canceledOpts.Inject = inj
	if _, err := CompileContext(ctx, c, canceledOpts); !errors.Is(err, context.Canceled) {
		t.Fatalf("poisoning compile: err = %v, want context.Canceled", err)
	}

	// The same shared cache/library must now serve a full compile that
	// is byte-for-byte the clean one.
	after, err := Compile(c, shared)
	if err != nil {
		t.Fatal(err)
	}
	if after.Degraded {
		t.Fatalf("compile after cancellation degraded: %v", after.DegradeReasons)
	}
	if after.Latency != clean.Latency || after.Fidelity != clean.Fidelity {
		t.Fatalf("canceled fill poisoned the caches: latency %v vs %v, fidelity %v vs %v",
			after.Latency, clean.Latency, after.Fidelity, clean.Fidelity)
	}
	if after.Stats.SynthFallback != clean.Stats.SynthFallback {
		t.Fatalf("fallback count changed after cancellation: %d vs %d",
			after.Stats.SynthFallback, clean.Stats.SynthFallback)
	}
}

// TestCompileBudgetExpiredDeadline: with a total deadline that a fake
// clock expires at the first stage boundary, the compile completes
// degraded — expendable stages skipped, synthesis falling back, QOC
// estimating — and the result is still a correct realization.
func TestCompileBudgetExpiredDeadline(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	fake := faultclock.NewFake()
	inj := faultclock.NewInjector()
	inj.TripAfter(faultclock.SiteStageZX, 1, func() { fake.Advance(time.Hour) })
	res, err := Compile(c, Options{
		Strategy: EPOC,
		Device:   dev,
		Clock:    fake,
		Inject:   inj,
		Budgets:  Budgets{Total: time.Minute},
	})
	if err != nil {
		t.Fatalf("budget expiry must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatal("expired deadline did not mark the result degraded")
	}
	wantReasons := map[string]bool{"zx": true, "regroup": true, "synth": true, "qoc": true}
	for _, r := range res.DegradeReasons {
		if !wantReasons[r] {
			t.Fatalf("unexpected degrade reason %q in %v", r, res.DegradeReasons)
		}
	}
	if len(res.DegradeReasons) < 3 {
		t.Fatalf("expected zx/regroup + stage degradations, got %v", res.DegradeReasons)
	}
	if res.Schedule == nil || res.Stats.PulseCount == 0 {
		t.Fatal("degraded compile produced no schedule")
	}
	if res.Fidelity <= 0 || res.Fidelity > 1 {
		t.Fatalf("degraded fidelity out of range: %v", res.Fidelity)
	}
}

// TestCompileCancellationWinsOverBudget: when the context is canceled
// and the budget has also expired, the compile aborts with the context
// error — it must not return a degraded result the caller no longer
// wants.
func TestCompileCancellationWinsOverBudget(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	fake := faultclock.NewFake()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultclock.NewInjector()
	inj.TripAfter(faultclock.SiteStageZX, 1, func() {
		fake.Advance(time.Hour)
		cancel()
	})
	res, err := CompileContext(ctx, c, Options{
		Strategy: EPOC,
		Device:   dev,
		Clock:    fake,
		Inject:   inj,
		Budgets:  Budgets{Total: time.Minute},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled compile returned a result")
	}
}
