// Package core implements the EPOC compilation pipeline — the paper's
// primary contribution — and the baselines it is evaluated against:
//
//	gate-based    calibrated per-gate pulses, no QOC
//	accqoc        AccQOC-style: fixed 2-qubit partitions + QOC + library
//	paqoc         PAQOC-style: gate-level optimization, program-aware
//	              3-qubit partitions + QOC + library
//	epoc-nogroup  EPOC without the regrouping step (ablation: QOC is run
//	              directly on the fine-grained synthesis output)
//	epoc          full EPOC: ZX depth optimization → greedy partition →
//	              VUG synthesis → regrouping → QOC with a global-phase-
//	              aware pulse library
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"epoc/internal/circuit"
	"epoc/internal/faultclock"
	"epoc/internal/hardware"
	"epoc/internal/linalg"
	"epoc/internal/logx"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/store"
	"epoc/internal/synth"
	"epoc/internal/trace"
)

// Strategy selects a compilation flow.
type Strategy string

// Available strategies.
const (
	GateBased   Strategy = "gate-based"
	AccQOC      Strategy = "accqoc"
	PAQOC       Strategy = "paqoc"
	EPOCNoGroup Strategy = "epoc-nogroup"
	EPOC        Strategy = "epoc"
)

// Strategies lists all supported strategies in report order.
func Strategies() []Strategy {
	return []Strategy{GateBased, AccQOC, PAQOC, EPOCNoGroup, EPOC}
}

// QOCMode selects how block pulses are produced.
type QOCMode int

const (
	// QOCFull runs GRAPE with a duration binary search per distinct
	// block unitary (the paper's flow).
	QOCFull QOCMode = iota
	// QOCEstimate predicts pulse duration from the block's gate content
	// with constants calibrated against GRAPE; used for scale studies
	// where thousands of distinct blocks make full QOC impractical on
	// one machine (see DESIGN.md substitutions).
	QOCEstimate
)

// Budgets bounds how long a compilation may work. Zero values mean
// unlimited. Time budgets are wall-clock deadlines evaluated against
// the injected clock at loop granularity; iteration budgets are
// deterministic per-unit caps (per-block synthesis nodes, per-run
// optimizer iterations) that produce byte-identical results at any
// worker count. When a budget expires the pipeline degrades instead
// of failing: expendable stages are skipped, block synthesis falls
// back to the original gate realization, and QOC keeps its
// best-so-far pulse (or the calibrated estimator when nothing was
// probed). The compile then reports Result.Degraded with per-stage
// reasons. Cancellation via context is different: the compile aborts
// and partial work is discarded.
type Budgets struct {
	Total      time.Duration // whole-pipeline deadline
	SynthTime  time.Duration // stage-3 (block synthesis) deadline
	QOCTime    time.Duration // stage-5 (pulse optimization) deadline
	SynthNodes int           // per-block QSearch node-expansion cap
	QOCIters   int           // per-run GRAPE/CRAB iteration cap
}

// Zero reports whether no budget is configured.
func (b Budgets) Zero() bool {
	return b.Total == 0 && b.SynthTime == 0 && b.QOCTime == 0 &&
		b.SynthNodes == 0 && b.QOCIters == 0
}

// Options configures Compile.
type Options struct {
	Strategy Strategy
	Device   *hardware.Device

	// Partitioning (Algorithm 1) limits. Defaults depend on strategy.
	PartitionMaxQubits int
	PartitionMaxGates  int
	// Regrouping limit for the full EPOC flow (default 2).
	RegroupMaxQubits int

	// UseZX toggles the graph-based depth-optimization stage; set by
	// the strategy but overridable for ablations.
	UseZX *bool

	// Pulse library reuse. Library may be shared across compilations;
	// when nil a fresh one is created. MatchGlobalPhase defaults to
	// true for EPOC flows and false for AccQOC/PAQOC (the paper's
	// distinction).
	Library          *pulse.Library
	MatchGlobalPhase *bool

	// QOC tuning.
	Mode           QOCMode
	FidelityTarget float64 // default 0.999
	GRAPEIters     int     // default 200
	SlotStep2Q     int     // duration-search grid step for ≥2q blocks (default 8)
	Seed           int64   // default 1

	// Synthesis tuning (EPOC flows only).
	Synth synth.Options

	// SynthCache reuses block synthesis results across blocks and, when
	// shared, across compilations: it is keyed by the block unitary up
	// to global phase (the pulse-library keying scheme) and is
	// goroutine-safe, with concurrent in-flight requests for the same
	// unitary coalesced rather than raced. When nil a fresh cache is
	// created per compile.
	SynthCache *synth.Cache

	// Store attaches an opened persistent store (internal/store) shared
	// across compiles: the library and synthesis cache are warmed from
	// it before the pipeline runs and new entries are harvested and
	// flushed after. The store's namespace must match this
	// configuration's (core.StoreNamespace); a mismatched store is
	// ignored for the compile — never read, never written — because its
	// records were produced under different physics or tuning.
	Store *store.Store

	// StorePath, when Store is nil, opens a per-compile store under
	// this root directory (namespace derived from the options) and
	// closes it after the compile — the one-shot CLI convenience.
	// Long-lived processes should open once and share via Store.
	StorePath string

	// WarmStart seeds GRAPE from the nearest stored library entry (by
	// phase-invariant similarity, internal/qoc/similarity.go) on a
	// library miss, instead of a cold random start. nil defaults to
	// true when a store is attached, false otherwise. Warm candidates
	// are snapshotted once at QOC-stage entry, so results stay
	// byte-identical at any worker count.
	WarmStart *bool

	// Workers sets the number of goroutines used for block synthesis
	// and for QOC on distinct block unitaries (default 1; >1 helps on
	// multi-core machines). Results are collected by block index, so
	// the compiled output is identical for every worker count.
	Workers int

	// Decoherence enables T1/T2-aware fidelity: in addition to the ESP
	// product, each qubit decays for the schedule's full latency
	// (idle time included), so shorter schedules score higher. Off by
	// default — the paper's Equation 3 is pure pulse ESP.
	Decoherence bool

	// Route maps the circuit onto the device coupler topology before
	// partitioning, decomposing ≥3-qubit gates and inserting SWAPs.
	Route bool

	// Algorithm selects the pulse optimizer (default GRAPE).
	Algorithm QOCAlgorithm

	// Obs, when non-nil, records per-stage timings, optimizer
	// convergence metrics and library cache behaviour for this compile
	// (see internal/obs). The recorder is goroutine-safe and may be
	// shared across compilations to aggregate; snapshot it with
	// Obs.Snapshot() after Compile returns. When nil (the default) the
	// instrumented paths cost a single nil check and zero allocations.
	Obs *obs.Recorder

	// Log, when non-nil, emits structured JSON records at the pipeline's
	// stage boundaries and at compile completion (stage name, span ID
	// from Trace, elapsed time, degrade reasons). The serve layer passes
	// a request-scoped logger already carrying the trace_id, so a log
	// line, a /metrics scrape and a Chrome trace join on one ID
	// (DESIGN.md §15). Nil (the default) costs one nil check.
	Log *logx.Logger

	// Trace, when non-nil, records a hierarchical span trace of this
	// compile: a "compile" root span, one child per pipeline stage, one
	// span per synthesized block class (with cache status, QSearch
	// nodes and achieved distance) and per optimized pulse (with its
	// duration-search probes). Where Obs answers "how much time per
	// stage in aggregate", the trace answers "which block ate it".
	// Export with Trace.ChromeTrace (Perfetto-loadable) or bundle
	// Trace.Summary into a run manifest (internal/report). Like Obs,
	// a nil tracer costs one nil check and zero allocations.
	Trace *trace.Tracer

	// Budgets bounds the compile's work; see the type's documentation.
	// The zero value means unlimited.
	Budgets Budgets

	// Clock is the time source budget deadlines are evaluated against.
	// nil means the real clock; tests inject a faultclock.Fake so
	// budget expiry happens at an exact loop iteration. The clock is
	// never read unless a time budget is configured.
	Clock faultclock.Clock

	// Inject, when non-nil, arms deterministic trip points on the
	// pipeline's cancellation/budget check sites (see
	// faultclock.Sites). Test-only; production leaves it nil, which
	// costs one nil check per site announcement.
	Inject *faultclock.Injector

	// ctx and totalDeadline are set by CompileContext; stage gates are
	// derived from them (plus per-stage budgets) at stage entry.
	ctx           context.Context
	totalDeadline time.Time
	// synthGate/qocGate are the per-stage gates, built at stage entry
	// and threaded to the inner loops through this Options copy.
	synthGate *faultclock.Gate
	qocGate   *faultclock.Gate
	// compileSpan is the root trace span; synthSpan/qocSpan are the
	// stage-3/stage-5 spans, threaded to the block and pulse loops
	// through this Options copy so their spans nest correctly.
	compileSpan *trace.Span
	synthSpan   *trace.Span
	qocSpan     *trace.Span
	// warmCands/warmUs are the warm-start candidate snapshot taken at
	// stage-5 entry (see snapshotWarmCands): the exported library
	// entries, and a parallel matrix slice with nil holes for entries
	// without raw amplitudes, shaped for qoc.Nearest.
	warmCands []pulse.Entry
	warmUs    []*linalg.Matrix
}

// stageSpan pairs a stage's aggregate obs timer with its trace span
// (and, when logging is on, a stage-boundary log record) so the
// pipeline opens and closes all three with one call.
type stageSpan struct {
	obs   obs.Span
	tr    *trace.Span
	log   *logx.Logger
	name  string
	start time.Time
}

func (s stageSpan) End() {
	s.obs.End()
	s.tr.End()
	if s.log.Enabled() {
		s.log.Info("stage done",
			"stage", s.name,
			"span", s.tr.ID(),
			"elapsed_ms", float64(time.Since(s.start).Nanoseconds())/1e6)
	}
}

// beginStage opens the paired obs timer and trace span for one
// pipeline stage, the trace span a child of the compile root. The
// wall-clock read for the log record happens only when a logger is
// attached, keeping the disabled path identical to the pre-logging
// pipeline.
func (o *Options) beginStage(name string) stageSpan {
	ss := stageSpan{obs: o.Obs.Span(name), tr: o.compileSpan.Child(name), log: o.Log, name: name}
	if o.Log.Enabled() {
		ss.start = time.Now()
		o.Log.Info("stage start", "stage", name, "span", ss.tr.ID())
	}
	return ss
}

// stageGate builds the cancellation/budget gate for one stage: the
// compile's context and total deadline, tightened by the stage's own
// time budget measured from stage entry.
func (o *Options) stageGate(budget time.Duration) *faultclock.Gate {
	deadline := o.totalDeadline
	if budget > 0 {
		clock := o.Clock
		if clock == nil {
			clock = faultclock.Real()
		}
		if d := clock.Now().Add(budget); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	return &faultclock.Gate{Ctx: o.ctx, Clock: o.Clock, Deadline: deadline, Inj: o.Inject}
}

// QOCAlgorithm selects the optimal-control algorithm.
type QOCAlgorithm int

// Supported pulse optimizers (paper §2.4 discusses both).
const (
	AlgGRAPE QOCAlgorithm = iota
	AlgCRAB
)

func (o *Options) withDefaults() Options {
	out := *o
	if out.Device == nil {
		panic("core: Options.Device is required")
	}
	switch out.Strategy {
	case GateBased, AccQOC, PAQOC, EPOCNoGroup, EPOC:
	case "":
		out.Strategy = EPOC
	default:
		panic(fmt.Sprintf("core: unknown strategy %q", out.Strategy))
	}
	if out.PartitionMaxQubits == 0 {
		switch out.Strategy {
		case AccQOC:
			out.PartitionMaxQubits = 2
		default:
			out.PartitionMaxQubits = 2
		}
	}
	if out.PartitionMaxGates == 0 {
		switch out.Strategy {
		case AccQOC:
			// AccQOC slices the circuit into small uniform subcircuits.
			out.PartitionMaxGates = 4
		case PAQOC:
			// PAQOC pulses mined gate patterns of a few gates each.
			out.PartitionMaxGates = 6
		default:
			out.PartitionMaxGates = 16
		}
	}
	if out.RegroupMaxQubits == 0 {
		out.RegroupMaxQubits = 2
	}
	if out.UseZX == nil {
		zx := out.Strategy == EPOC || out.Strategy == EPOCNoGroup
		out.UseZX = &zx
	}
	if out.MatchGlobalPhase == nil {
		match := out.Strategy == EPOC || out.Strategy == EPOCNoGroup
		out.MatchGlobalPhase = &match
	}
	if out.Library == nil {
		out.Library = pulse.NewLibrary(*out.MatchGlobalPhase)
	}
	if out.FidelityTarget == 0 {
		out.FidelityTarget = 0.999
	}
	if out.GRAPEIters == 0 {
		out.GRAPEIters = 200
	}
	if out.SlotStep2Q == 0 {
		out.SlotStep2Q = 8
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.Synth.Obs == nil {
		out.Synth.Obs = out.Obs
	}
	if out.Synth.BudgetNodes == 0 {
		out.Synth.BudgetNodes = out.Budgets.SynthNodes
	}
	if out.SynthCache == nil {
		out.SynthCache = synth.NewCache()
	}
	if out.WarmStart == nil {
		warm := out.Store != nil || out.StorePath != ""
		out.WarmStart = &warm
	}
	return out
}

// Stats records what each stage did.
type Stats struct {
	DepthBefore      int
	DepthAfterZX     int
	GatesBefore      int
	GatesAfterZX     int
	Blocks           int
	SynthFallback    int // blocks that kept their original gate realization
	VUGs             int // U3 VUGs emitted by synthesis
	CNOTsAfter       int // CNOTs in the synthesized circuit
	SynthCacheHits   int // eligible blocks served from the synthesis cache
	SynthCacheMisses int // eligible blocks that ran a fresh synthesis
	PulseCount       int
	QOCRuns          int // GRAPE duration searches actually executed
	WarmStarts       int // QOC runs seeded from a similar stored pulse
	LibraryHits      int
	LibraryMisses    int
	SynthDegraded    int // blocks whose synthesis stopped on a budget
	QOCDegraded      int // pulses kept as best-so-far or estimated on a budget
}

// Result is a compiled pulse program with its metrics.
type Result struct {
	Strategy    Strategy
	Schedule    *pulse.Schedule
	Latency     float64 // ns
	Fidelity    float64 // ESP (Equation 3)
	CompileTime time.Duration
	// QOCTime is the wall time of stage 5 (pulse optimization +
	// scheduling): the cost a warm store is supposed to erase. The
	// store-warm CI gate tracks it as qoc_time_ns.
	QOCTime time.Duration
	Stats   Stats

	// Lowered is the gate-level circuit the QOC stage consumed, before
	// regrouping: synthesized VUGs + CNOTs for EPOC flows, unitary
	// block gates for AccQOC/PAQOC, nil for the gate-based flow. It is
	// unitarily equivalent (up to global phase, within the synthesis
	// threshold) to the input circuit — the hook the end-to-end
	// equivalence and determinism tests verify against.
	Lowered *circuit.Circuit

	// Degraded reports that a budget expired mid-compile and the result
	// is a graceful fallback rather than the full pipeline's output: an
	// expendable stage was skipped, a block kept its gate realization,
	// or a pulse is the optimizer's best-so-far/estimate. The schedule
	// is still a correct realization of the input circuit.
	Degraded bool
	// DegradeReasons lists which stages degraded, sorted: a subset of
	// "zx", "synth", "regroup", "qoc".
	DegradeReasons []string
}

// MetricMap flattens the result into the flat float64 metric set the
// run manifest and bench artifacts carry, keyed to match the
// regression gate's default thresholds. compile_time_ns is the only
// wall-clock-dependent entry; everything else is deterministic for a
// given circuit and config.
func (r *Result) MetricMap() map[string]float64 {
	degraded := 0.0
	if r.Degraded {
		degraded = 1.0
	}
	return map[string]float64{
		"latency_ns":      r.Latency,
		"fidelity":        r.Fidelity,
		"compile_time_ns": float64(r.CompileTime.Nanoseconds()),
		"pulses":          float64(r.Stats.PulseCount),
		"blocks":          float64(r.Stats.Blocks),
		"vugs":            float64(r.Stats.VUGs),
		"cnots":           float64(r.Stats.CNOTsAfter),
		"synth_fallbacks": float64(r.Stats.SynthFallback),
		"qoc_runs":        float64(r.Stats.QOCRuns),
		"qoc_time_ns":     float64(r.QOCTime.Nanoseconds()),
		"warm_starts":     float64(r.Stats.WarmStarts),
		"degraded":        degraded,
	}
}

// Compile lowers a circuit to a pulse schedule under the selected
// strategy. It is CompileContext with a background context: no
// cancellation, budgets still honored.
func Compile(c *circuit.Circuit, opts Options) (*Result, error) {
	return CompileContext(context.Background(), c, opts)
}

// CompileContext is Compile under a context. Cancellation is observed
// at stage boundaries and inside every expensive loop (QSearch node
// expansions, GRAPE/CRAB iterations, duration-search probes, cache
// waits); a canceled compile returns the context's error promptly,
// discards partial work, and leaks no goroutines. Budget expiry (see
// Options.Budgets) instead degrades: the result is still returned,
// with Result.Degraded and DegradeReasons set.
func CompileContext(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	o := opts.withDefaults()
	o.ctx = ctx
	if o.Budgets.Total > 0 {
		clock := o.Clock
		if clock == nil {
			clock = faultclock.Real()
		}
		o.totalDeadline = clock.Now().Add(o.Budgets.Total)
	}
	start := time.Now()
	hits0, misses0 := o.Library.Counts()
	sp := o.Obs.Span("compile")
	tsp := o.Trace.Start("compile").
		SetStr("strategy", string(o.Strategy)).
		SetInt("qubits", int64(c.NumQubits)).
		SetInt("gates", int64(c.Len()))
	defer tsp.End()
	o.compileSpan = tsp
	ownedStore, err := attachStore(&o)
	if err != nil {
		return nil, err
	}
	if ownedStore != nil {
		defer func() {
			if cerr := ownedStore.Close(); cerr != nil {
				o.Obs.Add("store/flush_errors", 1)
			}
		}()
	}
	var res *Result
	switch o.Strategy {
	case GateBased:
		res, err = compileGateBased(c, o)
	default:
		res, err = compileQOC(c, o)
	}
	sp.End()
	if err != nil {
		o.Obs.Add("compile/canceled", 1)
		tsp.SetStr("stop", "canceled")
		if o.Log.Enabled() {
			o.Log.Warn("compile aborted",
				"strategy", string(o.Strategy),
				"span", tsp.ID(),
				"err", err.Error(),
				"elapsed_ms", float64(time.Since(start).Nanoseconds())/1e6)
		}
		return nil, err
	}
	if res.Stats.SynthDegraded > 0 {
		res.DegradeReasons = append(res.DegradeReasons, "synth")
	}
	if res.Stats.QOCDegraded > 0 {
		res.DegradeReasons = append(res.DegradeReasons, "qoc")
	}
	sort.Strings(res.DegradeReasons)
	res.Degraded = len(res.DegradeReasons) > 0
	tsp.SetBool("degraded", res.Degraded)
	if res.Degraded {
		o.Obs.Add("compile/degraded", 1)
		tsp.SetStr("degrade_reasons", strings.Join(res.DegradeReasons, ","))
	} else {
		o.Obs.Add("compile/completed", 1)
	}
	hits1, misses1 := o.Library.Counts()
	if o.Obs != nil {
		o.Obs.Add("compiles", 1)
		o.Obs.Add("library/hits", int64(hits1-hits0))
		o.Obs.Add("library/misses", int64(misses1-misses0))
		o.Obs.Add("qoc/runs", int64(res.Stats.QOCRuns))
		o.Obs.Add("pulses", int64(res.Stats.PulseCount))
	}
	// Persist what this compile learned. Degradation doesn't block the
	// harvest: degraded pulses and budget-stopped syntheses were never
	// stored in the in-memory caches, so everything exported is clean.
	harvestStore(&o)
	res.Strategy = o.Strategy
	res.CompileTime = time.Since(start)
	res.Latency = res.Schedule.Latency
	res.Fidelity = res.Schedule.TotalFidelity()
	if o.Decoherence && o.Device.T2 > 0 {
		// Each qubit dephases over the schedule's full latency, idle
		// periods included.
		decay := math.Exp(-float64(c.NumQubits) * res.Latency / o.Device.T2)
		res.Fidelity *= decay
	}
	res.Stats.LibraryHits = hits1
	res.Stats.LibraryMisses = misses1
	if o.Log.Enabled() {
		o.Log.Info("compile done",
			"strategy", string(o.Strategy),
			"span", tsp.ID(),
			"qubits", c.NumQubits,
			"gates", c.Len(),
			"latency_ns", res.Latency,
			"fidelity", res.Fidelity,
			"qoc_runs", res.Stats.QOCRuns,
			"degraded", res.Degraded,
			"degrade_reasons", strings.Join(res.DegradeReasons, ","),
			"elapsed_ms", float64(res.CompileTime.Nanoseconds())/1e6)
	}
	return res, nil
}
