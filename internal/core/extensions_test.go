package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"epoc/internal/benchcirc"
	"epoc/internal/hardware"
	"epoc/internal/pulse"
	"epoc/internal/qasm"
	"epoc/internal/synth"
)

func TestParallelQOCMatchesSequential(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	seq, err := Compile(c, Options{Strategy: EPOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile(c, Options{Strategy: EPOC, Device: dev, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Latency-par.Latency) > 1e-9 {
		t.Fatalf("parallel QOC changed latency: %v vs %v", seq.Latency, par.Latency)
	}
	if math.Abs(seq.Fidelity-par.Fidelity) > 1e-9 {
		t.Fatalf("parallel QOC changed fidelity: %v vs %v", seq.Fidelity, par.Fidelity)
	}
	if par.Stats.QOCRuns != seq.Stats.QOCRuns {
		t.Fatalf("parallel QOC ran %d searches, sequential %d", par.Stats.QOCRuns, seq.Stats.QOCRuns)
	}
}

// TestParallelSynthDeterministic extends the QOC determinism check to
// the synthesis stage: Workers: 1 and Workers: 8 must produce
// byte-identical schedules, Stats, and QASM round-trip output — the
// contract the parallel block dispatcher and synthesis cache are
// built around.
func TestParallelSynthDeterministic(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	seq, err := Compile(c, Options{Strategy: EPOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile(c, Options{Strategy: EPOC, Device: dev, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Fatalf("worker count changed Stats:\n  1: %+v\n  8: %+v", seq.Stats, par.Stats)
	}
	seqJSON, err := json.Marshal(seq.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(par.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Fatal("worker count changed the serialized schedule")
	}
	seqQASM, err := qasm.Write(seq.Lowered)
	if err != nil {
		t.Fatal(err)
	}
	parQASM, err := qasm.Write(par.Lowered)
	if err != nil {
		t.Fatal(err)
	}
	if seqQASM != parQASM {
		t.Fatal("worker count changed the lowered circuit's QASM")
	}
}

// TestSynthCacheHitsOnRepeatedBlocks: a circuit with repeated
// structure must serve some blocks from the synthesis cache instead
// of re-running QSearch.
func TestSynthCacheHitsOnRepeatedBlocks(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SynthCacheHits == 0 {
		t.Fatalf("no synthesis cache hits on a repeated-block circuit: %+v", res.Stats)
	}
	if res.Stats.SynthCacheMisses == 0 {
		t.Fatal("expected at least one synthesis cache miss")
	}
}

// TestSharedSynthCacheAcrossCompiles: a cache shared between
// compilations reuses synthesis results the way a shared pulse
// library reuses pulses.
func TestSharedSynthCacheAcrossCompiles(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	cache := synth.NewCache()
	first, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, SynthCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.SynthCacheMisses == 0 {
		t.Fatal("first compile should miss the fresh cache")
	}
	second, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, SynthCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.SynthCacheMisses != 0 {
		t.Fatalf("second compile missed the warm cache %d times", second.Stats.SynthCacheMisses)
	}
	if second.Latency != first.Latency || second.Fidelity != first.Fidelity {
		t.Fatal("warm cache changed the compiled output")
	}
}

func TestDecoherenceLowersFidelity(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	plain, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Decoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fidelity >= plain.Fidelity {
		t.Fatalf("decoherence did not lower fidelity: %v vs %v", dec.Fidelity, plain.Fidelity)
	}
	want := plain.Fidelity * math.Exp(-float64(c.NumQubits)*plain.Latency/dev.T2)
	if math.Abs(dec.Fidelity-want) > 1e-9 {
		t.Fatalf("decoherence factor wrong: %v vs %v", dec.Fidelity, want)
	}
}

func TestDecoherenceRewardsShorterSchedules(t *testing.T) {
	// Under decoherence, the latency gap between gate-based and EPOC
	// must widen the fidelity gap too.
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	gb, err := Compile(c, Options{Strategy: GateBased, Device: dev, Decoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Decoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Fidelity <= gb.Fidelity {
		t.Fatalf("EPOC (%v) should beat gate-based (%v) under decoherence", ep.Fidelity, gb.Fidelity)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	var back pulse.Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumQubits != res.Schedule.NumQubits || len(back.Items) != len(res.Schedule.Items) {
		t.Fatal("round trip lost structure")
	}
	if math.Abs(back.Latency-res.Schedule.Latency) > 1e-9 {
		t.Fatal("round trip changed latency")
	}
	if math.Abs(back.TotalFidelity()-res.Schedule.TotalFidelity()) > 1e-12 {
		t.Fatal("round trip changed fidelity")
	}
	// Amplitudes survive for full-QOC pulses.
	found := false
	for _, it := range back.Items {
		if len(it.Pulse.Amps) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no amplitudes serialized")
	}
}

func TestAccQOCMSTPrefill(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	res, err := Compile(c, Options{Strategy: AccQOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.9 {
		t.Fatalf("AccQOC MST flow fidelity %v", res.Fidelity)
	}
	if res.Stats.QOCRuns == 0 {
		t.Fatal("MST prefill ran no QOC")
	}
	// Every schedule pulse must have come from the library (prefill).
	if res.Stats.LibraryMisses != 0 {
		t.Fatalf("main loop missed the prefilled library %d times", res.Stats.LibraryMisses)
	}
}
