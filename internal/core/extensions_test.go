package core

import (
	"encoding/json"
	"math"
	"testing"

	"epoc/internal/benchcirc"
	"epoc/internal/hardware"
	"epoc/internal/pulse"
)

func TestParallelQOCMatchesSequential(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	seq, err := Compile(c, Options{Strategy: EPOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compile(c, Options{Strategy: EPOC, Device: dev, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Latency-par.Latency) > 1e-9 {
		t.Fatalf("parallel QOC changed latency: %v vs %v", seq.Latency, par.Latency)
	}
	if math.Abs(seq.Fidelity-par.Fidelity) > 1e-9 {
		t.Fatalf("parallel QOC changed fidelity: %v vs %v", seq.Fidelity, par.Fidelity)
	}
	if par.Stats.QOCRuns != seq.Stats.QOCRuns {
		t.Fatalf("parallel QOC ran %d searches, sequential %d", par.Stats.QOCRuns, seq.Stats.QOCRuns)
	}
}

func TestDecoherenceLowersFidelity(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	plain, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Decoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fidelity >= plain.Fidelity {
		t.Fatalf("decoherence did not lower fidelity: %v vs %v", dec.Fidelity, plain.Fidelity)
	}
	want := plain.Fidelity * math.Exp(-float64(c.NumQubits)*plain.Latency/dev.T2)
	if math.Abs(dec.Fidelity-want) > 1e-9 {
		t.Fatalf("decoherence factor wrong: %v vs %v", dec.Fidelity, want)
	}
}

func TestDecoherenceRewardsShorterSchedules(t *testing.T) {
	// Under decoherence, the latency gap between gate-based and EPOC
	// must widen the fidelity gap too.
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	gb, err := Compile(c, Options{Strategy: GateBased, Device: dev, Decoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Decoherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Fidelity <= gb.Fidelity {
		t.Fatalf("EPOC (%v) should beat gate-based (%v) under decoherence", ep.Fidelity, gb.Fidelity)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	c, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(c.NumQubits)
	res, err := Compile(c, Options{Strategy: EPOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	var back pulse.Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumQubits != res.Schedule.NumQubits || len(back.Items) != len(res.Schedule.Items) {
		t.Fatal("round trip lost structure")
	}
	if math.Abs(back.Latency-res.Schedule.Latency) > 1e-9 {
		t.Fatal("round trip changed latency")
	}
	if math.Abs(back.TotalFidelity()-res.Schedule.TotalFidelity()) > 1e-12 {
		t.Fatal("round trip changed fidelity")
	}
	// Amplitudes survive for full-QOC pulses.
	found := false
	for _, it := range back.Items {
		if len(it.Pulse.Amps) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no amplitudes serialized")
	}
}

func TestAccQOCMSTPrefill(t *testing.T) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	res, err := Compile(c, Options{Strategy: AccQOC, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.9 {
		t.Fatalf("AccQOC MST flow fidelity %v", res.Fidelity)
	}
	if res.Stats.QOCRuns == 0 {
		t.Fatal("MST prefill ran no QOC")
	}
	// Every schedule pulse must have come from the library (prefill).
	if res.Stats.LibraryMisses != 0 {
		t.Fatalf("main loop missed the prefilled library %d times", res.Stats.LibraryMisses)
	}
}
