package core

import (
	"math"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/synth"
)

// obsTestCircuit builds a small circuit with several distinct 2-qubit
// block unitaries, so the concurrent prefill pass has real work.
func obsTestCircuit() *circuit.Circuit {
	c := circuit.New(4)
	for q := 0; q < 4; q++ {
		c.Append(gate.New(gate.H), q)
	}
	for q := 0; q < 3; q++ {
		c.Append(gate.New(gate.CX), q, q+1)
		c.Append(gate.New(gate.RZ, 0.3+0.4*float64(q)), q+1)
	}
	return c
}

// TestObsConcurrentPrefill exercises prefillLibrary's worker pool with
// a shared Recorder; under `go test -race` it proves the obs layer is
// safe against concurrent QOC workers (ISSUE 1 satellite).
func TestObsConcurrentPrefill(t *testing.T) {
	c := obsTestCircuit()
	r := obs.New()
	res, err := Compile(c, Options{
		Strategy:       EPOC,
		Device:         hardware.LinearChain(c.NumQubits),
		Workers:        4,
		Obs:            r,
		GRAPEIters:     60,
		FidelityTarget: 0.99,
		Library:        pulse.NewLibrary(true),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Counters["compiles"] != 1 {
		t.Fatalf("compiles counter: %d", snap.Counters["compiles"])
	}
	if snap.Counters["library/prefill/distinct"] == 0 {
		t.Fatal("prefill recorded no distinct unitaries; the worker pool did not run")
	}
	if snap.Counters["qoc/grape/runs"] == 0 {
		t.Fatal("no GRAPE runs recorded")
	}
	if got := snap.Timers["qoc/pulse"].Count; got != int64(res.Stats.QOCRuns) {
		t.Fatalf("qoc/pulse spans %d, want QOCRuns %d", got, res.Stats.QOCRuns)
	}
	for _, stage := range []string{"compile", "stage/zx", "stage/partition", "stage/synth", "stage/regroup", "stage/qoc"} {
		if snap.Timers[stage].Count == 0 {
			t.Fatalf("stage timer %q missing; timers: %v", stage, snap.TimerNames())
		}
	}
	if len(snap.Series["qoc/grape/fidelity"]) == 0 {
		t.Fatal("no GRAPE convergence samples recorded")
	}
	stops := snap.Counters["qoc/grape/stop/target"] + snap.Counters["qoc/grape/stop/max_iter"]
	if stops != snap.Counters["qoc/grape/runs"] {
		t.Fatalf("stop reasons %d do not cover runs %d", stops, snap.Counters["qoc/grape/runs"])
	}
}

// TestObsDoesNotChangeResults pins that attaching a Recorder is
// observation only: latency, fidelity and stats stay bit-identical.
func TestObsDoesNotChangeResults(t *testing.T) {
	c := obsTestCircuit()
	dev := hardware.LinearChain(c.NumQubits)
	plain, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Compile(c, Options{Strategy: EPOC, Device: dev, Mode: QOCEstimate, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Latency-observed.Latency) > 0 || math.Abs(plain.Fidelity-observed.Fidelity) > 0 {
		t.Fatalf("observation changed results: %v/%v vs %v/%v",
			plain.Latency, plain.Fidelity, observed.Latency, observed.Fidelity)
	}
	if plain.Stats != observed.Stats {
		t.Fatalf("observation changed stats: %+v vs %+v", plain.Stats, observed.Stats)
	}
}

// TestSynthFallbackCounted pins the explicit (circuit, ok) fallback
// contract: with an impossible synthesis budget every eligible block
// must fall back and be counted, in both Stats and the obs counters.
func TestSynthFallbackCounted(t *testing.T) {
	c := obsTestCircuit()
	r := obs.New()
	res, err := Compile(c, Options{
		Strategy: EPOC,
		Device:   hardware.LinearChain(c.NumQubits),
		Mode:     QOCEstimate,
		Obs:      r,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if int64(res.Stats.SynthFallback) != snap.Counters["synth/fallbacks"] {
		t.Fatalf("Stats.SynthFallback %d disagrees with obs counter %d",
			res.Stats.SynthFallback, snap.Counters["synth/fallbacks"])
	}

	// Starve the search: every multi-gate block must now fall back.
	r2 := obs.New()
	res2, err := Compile(c, Options{
		Strategy: EPOC,
		Device:   hardware.LinearChain(c.NumQubits),
		Mode:     QOCEstimate,
		Obs:      r2,
		Synth:    synth.Options{MaxCNOTs: 1, MaxNodes: 2, OptBudget: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.SynthFallback == 0 {
		t.Fatal("starved synthesis budget produced no fallbacks")
	}
	snap2 := r2.Snapshot()
	if int64(res2.Stats.SynthFallback) != snap2.Counters["synth/fallbacks"] {
		t.Fatalf("starved run: Stats.SynthFallback %d vs obs counter %d",
			res2.Stats.SynthFallback, snap2.Counters["synth/fallbacks"])
	}
}
