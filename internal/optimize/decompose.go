// Package optimize provides gate-level circuit transformations: a
// decomposition pass that rewrites any supported gate into the
// {RZ, RX, H, CX, CZ} basis consumed by the ZX converter, and a
// peephole optimizer (inverse cancellation, rotation merging,
// commutation-aware sinking) used both as a cleanup pass and as the
// verified fallback when ZX extraction declines a circuit.
package optimize

import (
	"fmt"
	"math"
	"math/cmplx"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// DecomposeToBasis rewrites every op into the basis
// {RZ, RX, H, CX, CZ}, preserving the circuit's unitary up to global
// phase. Block gates (unitary/vug) are not handled here — synthesize
// them first.
func DecomposeToBasis(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	for _, op := range c.Ops {
		emitBasis(out, op)
	}
	return out
}

func emitBasis(out *circuit.Circuit, op circuit.Op) {
	q := op.Qubits
	g := op.G
	rz := func(theta float64, q int) {
		if !zeroMod2Pi(theta) {
			out.Append(gate.New(gate.RZ, theta), q)
		}
	}
	rx := func(theta float64, q int) {
		if !zeroMod2Pi(theta) {
			out.Append(gate.New(gate.RX, theta), q)
		}
	}
	h := func(q int) { out.Append(gate.New(gate.H), q) }
	cx := func(c, t int) { out.Append(gate.New(gate.CX), c, t) }

	switch g.Kind {
	case gate.I:
		// drop
	case gate.RZ:
		rz(g.Params[0], q[0])
	case gate.RX:
		rx(g.Params[0], q[0])
	case gate.H:
		h(q[0])
	case gate.CX:
		cx(q[0], q[1])
	case gate.CZ:
		out.Append(gate.New(gate.CZ), q[0], q[1])
	case gate.X:
		rx(math.Pi, q[0])
	case gate.Y:
		rz(math.Pi, q[0])
		rx(math.Pi, q[0])
	case gate.Z:
		rz(math.Pi, q[0])
	case gate.S:
		rz(math.Pi/2, q[0])
	case gate.Sdg:
		rz(-math.Pi/2, q[0])
	case gate.T:
		rz(math.Pi/4, q[0])
	case gate.Tdg:
		rz(-math.Pi/4, q[0])
	case gate.SX:
		rx(math.Pi/2, q[0])
	case gate.SXdg:
		rx(-math.Pi/2, q[0])
	case gate.P, gate.U1:
		rz(g.Params[0], q[0])
	case gate.RY:
		// RY(θ) = RZ(π/2)·RX(θ)·RZ(-π/2) (conjugation rotates X into Y).
		rz(-math.Pi/2, q[0])
		rx(g.Params[0], q[0])
		rz(math.Pi/2, q[0])
	case gate.U2:
		emitBasis(out, circuit.NewOp(gate.New(gate.U3, math.Pi/2, g.Params[0], g.Params[1]), q[0]))
	case gate.U3:
		// U3(θ,φ,λ) = RZ(φ)·RY(θ)·RZ(λ) up to global phase.
		theta, phi, lam := g.Params[0], g.Params[1], g.Params[2]
		rz(lam, q[0])
		emitBasis(out, circuit.NewOp(gate.New(gate.RY, theta), q[0]))
		rz(phi, q[0])
	case gate.CY:
		rz(-math.Pi/2, q[1])
		cx(q[0], q[1])
		rz(math.Pi/2, q[1])
	case gate.CH:
		// Controlled-H via the ABC construction on H = e^{iπ/2}·RZ(π/2)·RY(π/2)·RZ(π/2)... handled generically.
		emitControlled1Q(out, gate.New(gate.H).Matrix(), q[0], q[1])
	case gate.CRZ:
		rz(g.Params[0]/2, q[1])
		cx(q[0], q[1])
		rz(-g.Params[0]/2, q[1])
		cx(q[0], q[1])
	case gate.CRX:
		h(q[1])
		emitBasis(out, circuit.NewOp(gate.New(gate.CRZ, g.Params[0]), q[0], q[1]))
		h(q[1])
	case gate.CRY:
		emitBasis(out, circuit.NewOp(gate.New(gate.RY, g.Params[0]/2), q[1]))
		cx(q[0], q[1])
		emitBasis(out, circuit.NewOp(gate.New(gate.RY, -g.Params[0]/2), q[1]))
		cx(q[0], q[1])
	case gate.CP:
		lam := g.Params[0]
		rz(lam/2, q[0])
		cx(q[0], q[1])
		rz(-lam/2, q[1])
		cx(q[0], q[1])
		rz(lam/2, q[1])
	case gate.RZZ:
		cx(q[0], q[1])
		rz(g.Params[0], q[1])
		cx(q[0], q[1])
	case gate.RXX:
		h(q[0])
		h(q[1])
		cx(q[0], q[1])
		rz(g.Params[0], q[1])
		cx(q[0], q[1])
		h(q[0])
		h(q[1])
	case gate.SWAP:
		cx(q[0], q[1])
		cx(q[1], q[0])
		cx(q[0], q[1])
	case gate.CCX:
		// Standard 6-CNOT Toffoli; controls q[0], q[1], target q[2].
		a, b, t := q[0], q[1], q[2]
		h(t)
		cx(b, t)
		rz(-math.Pi/4, t)
		cx(a, t)
		rz(math.Pi/4, t)
		cx(b, t)
		rz(-math.Pi/4, t)
		cx(a, t)
		rz(math.Pi/4, b)
		rz(math.Pi/4, t)
		h(t)
		cx(a, b)
		rz(math.Pi/4, a)
		rz(-math.Pi/4, b)
		cx(a, b)
	case gate.CSWP:
		// Fredkin = CX(t2,t1)·CCX(c,t1,t2)·CX(t2,t1).
		c0, t1, t2 := q[0], q[1], q[2]
		cx(t2, t1)
		emitBasis(out, circuit.NewOp(gate.New(gate.CCX), c0, t1, t2))
		cx(t2, t1)
	case gate.Unitary, gate.VUG:
		panic(fmt.Sprintf("optimize: cannot decompose block gate %s; synthesize it first", g))
	default:
		panic(fmt.Sprintf("optimize: no decomposition for %s", g.Kind))
	}
}

// emitControlled1Q emits a controlled version of an arbitrary 1-qubit
// unitary using the ABC construction: with U = e^{iα}·RZ(β)·RY(γ)·RZ(δ),
// CU = P(α)_c · [A · CX · B · CX · C]_t where A·B·C with the X
// conjugation reproduces U and A·X·B·X·C = I.
func emitControlled1Q(out *circuit.Circuit, u *linalg.Matrix, ctrl, tgt int) {
	alpha, beta, gamma, delta := zyzAngles(u)
	// C = RZ((δ-β)/2)
	// B = RY(-γ/2)·RZ(-(δ+β)/2)
	// A = RZ(β)·RY(γ/2)
	emit := func(g gate.Gate, q int) { emitBasis(out, circuit.NewOp(g, q)) }
	emit(gate.New(gate.RZ, (delta-beta)/2), tgt)
	out.Append(gate.New(gate.CX), ctrl, tgt)
	emit(gate.New(gate.RZ, -(delta+beta)/2), tgt)
	emit(gate.New(gate.RY, -gamma/2), tgt)
	out.Append(gate.New(gate.CX), ctrl, tgt)
	emit(gate.New(gate.RY, gamma/2), tgt)
	emit(gate.New(gate.RZ, beta), tgt)
	emit(gate.New(gate.RZ, alpha), ctrl) // phase on control = P(α)
}

// zyzAngles returns (α, β, γ, δ) with U = e^{iα}·RZ(β)·RY(γ)·RZ(δ).
func zyzAngles(u *linalg.Matrix) (alpha, beta, gamma, delta float64) {
	det := u.At(0, 0)*u.At(1, 1) - u.At(0, 1)*u.At(1, 0)
	// Normalize to SU(2).
	phase := cmplx.Sqrt(det)
	su := u.Scale(1 / phase)
	alpha = cmplx.Phase(phase)
	a := su.At(0, 0)
	c := su.At(1, 0)
	gamma = 2 * math.Atan2(cmplx.Abs(c), cmplx.Abs(a))
	if cmplx.Abs(a) < 1e-12 {
		// cos(γ/2)=0: only β-δ is determined; pick δ=0.
		beta = 2 * cmplx.Phase(c)
		delta = 0
	} else if cmplx.Abs(c) < 1e-12 {
		// sin(γ/2)=0: only β+δ is determined; pick δ=0.
		beta = -2 * cmplx.Phase(a)
		delta = 0
	} else {
		sum := -2 * cmplx.Phase(a) // β+δ
		diff := 2 * cmplx.Phase(c) // β-δ
		beta = (sum + diff) / 2
		delta = (sum - diff) / 2
	}
	return alpha, beta, gamma, delta
}

// ZYZ returns the angles (α, β, γ, δ) of the Euler decomposition
// U = e^{iα}·RZ(β)·RY(γ)·RZ(δ) of a 1-qubit unitary. Exported for the
// synthesis package.
func ZYZ(u *linalg.Matrix) (alpha, beta, gamma, delta float64) {
	if u.Rows != 2 || u.Cols != 2 {
		panic("optimize: ZYZ needs a 2x2 matrix")
	}
	return zyzAngles(u)
}

func zeroMod2Pi(theta float64) bool {
	m := math.Mod(theta, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	return m < 1e-12 || 2*math.Pi-m < 1e-12
}
