package optimize

import (
	"math"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// Peephole repeatedly applies local rewrites — inverse-pair
// cancellation, rotation merging, H·R·H basis flips — using gate
// commutation to bring partners together, until a fixed point. The
// result implements the same unitary up to global phase.
func Peephole(c *circuit.Circuit) *circuit.Circuit {
	ops := append([]circuit.Op(nil), c.Ops...)
	for changed := true; changed; {
		changed = false
		if next, ok := cancelPass(ops, c.NumQubits); ok {
			ops = next
			changed = true
		}
		if next, ok := hConjugationPass(ops); ok {
			ops = next
			changed = true
		}
	}
	out := circuit.New(c.NumQubits)
	out.Ops = ops
	return out
}

// cancelPass finds one cancel/merge opportunity and applies it.
func cancelPass(ops []circuit.Op, n int) ([]circuit.Op, bool) {
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if disjoint(ops[i], ops[j]) {
				continue
			}
			if merged, drop := tryMerge(ops[i], ops[j]); drop || merged != nil {
				out := make([]circuit.Op, 0, len(ops))
				out = append(out, ops[:i]...)
				if merged != nil {
					out = append(out, *merged)
				}
				out = append(out, ops[i+1:j]...)
				out = append(out, ops[j+1:]...)
				return out, true
			}
			if !commutes(ops[i], ops[j]) {
				break
			}
		}
	}
	return ops, false
}

// hConjugationPass rewrites H·RZ(θ)·H → RX(θ) and H·RX(θ)·H → RZ(θ)
// on a single qubit when the three ops are adjacent in the qubit's
// timeline.
func hConjugationPass(ops []circuit.Op) ([]circuit.Op, bool) {
	for i := 0; i < len(ops); i++ {
		if ops[i].G.Kind != gate.H {
			continue
		}
		q := ops[i].Qubits[0]
		j := nextOnQubit(ops, i, q)
		if j < 0 {
			continue
		}
		mid := ops[j]
		if (mid.G.Kind != gate.RZ && mid.G.Kind != gate.RX) || mid.Qubits[0] != q {
			continue
		}
		k := nextOnQubit(ops, j, q)
		if k < 0 || ops[k].G.Kind != gate.H {
			continue
		}
		newKind := gate.RX
		if mid.G.Kind == gate.RX {
			newKind = gate.RZ
		}
		out := make([]circuit.Op, 0, len(ops)-2)
		for idx, op := range ops {
			switch idx {
			case i, k:
				// drop the Hadamards
			case j:
				out = append(out, circuit.NewOp(gate.New(newKind, mid.G.Params[0]), q))
			default:
				out = append(out, op)
			}
		}
		return out, true
	}
	return ops, false
}

// nextOnQubit returns the index of the next op after i that touches
// qubit q, or -1 if an intervening multi-qubit op on q blocks or none
// exists. Ops not touching q are skipped.
func nextOnQubit(ops []circuit.Op, i, q int) int {
	for j := i + 1; j < len(ops); j++ {
		for _, oq := range ops[j].Qubits {
			if oq == q {
				return j
			}
		}
	}
	return -1
}

func disjoint(a, b circuit.Op) bool { return !overlap(a, b) }

func overlap(a, b circuit.Op) bool {
	for _, qa := range a.Qubits {
		for _, qb := range b.Qubits {
			if qa == qb {
				return true
			}
		}
	}
	return false
}

// tryMerge returns (replacement, true) if a and b cancel entirely, or
// (merged op, false) if they merge into one op; (nil, false) otherwise.
func tryMerge(a, b circuit.Op) (*circuit.Op, bool) {
	if !sameQubits(a, b) {
		// CZ and SWAP are symmetric: allow reversed operands.
		if (a.G.Kind == gate.CZ || a.G.Kind == gate.SWAP) && a.G.Kind == b.G.Kind &&
			len(a.Qubits) == 2 && a.Qubits[0] == b.Qubits[1] && a.Qubits[1] == b.Qubits[0] {
			return nil, true
		}
		return nil, false
	}
	if a.G.Kind != b.G.Kind {
		return nil, false
	}
	switch a.G.Kind {
	case gate.H, gate.X, gate.Y, gate.Z, gate.CX, gate.CY, gate.CZ, gate.CH, gate.SWAP, gate.CCX, gate.CSWP:
		return nil, true
	case gate.S:
		op := circuit.NewOp(gate.New(gate.Z), a.Qubits[0])
		return &op, false
	case gate.Sdg:
		op := circuit.NewOp(gate.New(gate.Z), a.Qubits[0])
		return &op, false
	case gate.T:
		op := circuit.NewOp(gate.New(gate.S), a.Qubits[0])
		return &op, false
	case gate.Tdg:
		op := circuit.NewOp(gate.New(gate.Sdg), a.Qubits[0])
		return &op, false
	case gate.RX, gate.RY, gate.RZ, gate.P, gate.U1, gate.CRX, gate.CRY, gate.CRZ, gate.CP, gate.RXX, gate.RZZ:
		sum := a.G.Params[0] + b.G.Params[0]
		if zeroMod2Pi(sum) {
			return nil, true
		}
		op := circuit.NewOp(gate.New(a.G.Kind, normAngle(sum)), a.Qubits...)
		return &op, false
	}
	return nil, false
}

func sameQubits(a, b circuit.Op) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			return false
		}
	}
	return true
}

// commutes reports whether two overlapping ops commute, using standard
// structural rules (both diagonal; RZ-like on a CX control; RX/X on a
// CX target; CXs sharing only controls or only targets).
func commutes(a, b circuit.Op) bool {
	if a.G.IsDiagonal() && b.G.IsDiagonal() {
		return true
	}
	if ok, done := cxCommute(a, b); done {
		return ok
	}
	if ok, done := cxCommute(b, a); done {
		return ok
	}
	return false
}

// cxCommute handles the cases where a is a CX; done=false means the
// rule does not apply.
func cxCommute(a, b circuit.Op) (ok, done bool) {
	if a.G.Kind != gate.CX {
		return false, false
	}
	ctrl, tgt := a.Qubits[0], a.Qubits[1]
	if len(b.Qubits) == 1 {
		q := b.Qubits[0]
		if q == ctrl {
			return b.G.IsDiagonal(), true
		}
		if q == tgt {
			k := b.G.Kind
			return k == gate.X || k == gate.RX || k == gate.SX || k == gate.SXdg || k == gate.I, true
		}
		return false, true
	}
	if b.G.Kind == gate.CX {
		bc, bt := b.Qubits[0], b.Qubits[1]
		if ctrl == bc && tgt != bt {
			return true, true
		}
		if tgt == bt && ctrl != bc {
			return true, true
		}
		if ctrl == bc && tgt == bt {
			return true, true // identical CX commutes with itself
		}
		return false, true
	}
	return false, false
}

// MergeSingleQubitRuns collapses every maximal run of 1-qubit gates on
// a qubit into at most one U3 gate. Runs whose product is the identity
// (up to phase) vanish entirely.
func MergeSingleQubitRuns(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	type run struct {
		ops []circuit.Op
	}
	pending := make(map[int]*run)
	flush := func(q int) {
		r := pending[q]
		if r == nil {
			return
		}
		delete(pending, q)
		if len(r.ops) == 0 {
			return
		}
		// Product of the run (later ops multiply on the left).
		u := r.ops[0].G.Matrix()
		for _, op := range r.ops[1:] {
			u = op.G.Matrix().Mul(u)
		}
		_, beta, gamma, delta := zyzAngles(u)
		if zeroMod2Pi(beta) && zeroMod2Pi(gamma) && zeroMod2Pi(delta) {
			return // identity up to phase
		}
		out.Append(gate.New(gate.U3, gamma, beta, delta), q)
	}
	for _, op := range c.Ops {
		if len(op.Qubits) == 1 && !op.G.IsBlock() {
			q := op.Qubits[0]
			if pending[q] == nil {
				pending[q] = &run{}
			}
			pending[q].ops = append(pending[q].ops, op)
			continue
		}
		for _, q := range op.Qubits {
			flush(q)
		}
		out.AppendOp(op)
	}
	for q := 0; q < c.NumQubits; q++ {
		flush(q)
	}
	return out
}

func normAngle(theta float64) float64 {
	m := math.Mod(theta, 2*math.Pi)
	if m > math.Pi {
		m -= 2 * math.Pi
	}
	if m < -math.Pi {
		m += 2 * math.Pi
	}
	return m
}
