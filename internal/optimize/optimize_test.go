package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// equivalent checks unitary equality up to global phase.
func equivalent(t *testing.T, a, b *circuit.Circuit, context string) {
	t.Helper()
	if d := linalg.PhaseDistance(a.Unitary(), b.Unitary()); d > 1e-7 {
		t.Fatalf("%s: circuits differ (phase distance %v)", context, d)
	}
}

func TestDecomposeEveryRegistryGate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for kind, spec := range gate.Registry {
		params := make([]float64, spec.Params)
		for i := range params {
			params[i] = rng.Float64()*3 - 1.5
		}
		c := circuit.New(spec.Qubits)
		qs := make([]int, spec.Qubits)
		for i := range qs {
			qs[i] = i
		}
		c.Append(gate.New(kind, params...), qs...)
		d := DecomposeToBasis(c)
		for _, op := range d.Ops {
			switch op.G.Kind {
			case gate.RZ, gate.RX, gate.H, gate.CX, gate.CZ:
			default:
				t.Fatalf("%s: decomposition contains non-basis gate %s", kind, op.G.Kind)
			}
		}
		equivalent(t, c, d, string(kind))
	}
}

func TestDecomposeGateOperandOrderings(t *testing.T) {
	// Multi-qubit gates with permuted operands must stay correct.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		c := circuit.New(3)
		c.Append(gate.New(gate.CCX), 2, 0, 1)
		c.Append(gate.New(gate.CSWP), 1, 2, 0)
		c.Append(gate.New(gate.CRZ, rng.Float64()), 2, 1)
		c.Append(gate.New(gate.CH), 1, 0)
		equivalent(t, c, DecomposeToBasis(c), "permuted operands")
	}
}

func TestDecomposeRejectsBlocks(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.NewUnitary(linalg.Identity(2)), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on block gate")
		}
	}()
	DecomposeToBasis(c)
}

func TestZYZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		u := linalg.RandomUnitary(2, rng)
		alpha, beta, gamma, delta := ZYZ(u)
		rec := gate.New(gate.RZ, beta).Matrix().
			Mul(gate.New(gate.RY, gamma).Matrix()).
			Mul(gate.New(gate.RZ, delta).Matrix()).
			Scale(complexExp(alpha))
		if linalg.FrobeniusDistance(u, rec) > 1e-8 {
			t.Fatalf("ZYZ reconstruction failed (trial %d): dist=%v", trial, linalg.FrobeniusDistance(u, rec))
		}
	}
}

func TestZYZDiagonalAndAntiDiagonal(t *testing.T) {
	for _, u := range []*linalg.Matrix{
		gate.New(gate.Z).Matrix(),
		gate.New(gate.X).Matrix(),
		gate.New(gate.S).Matrix(),
		linalg.Identity(2),
	} {
		alpha, beta, gamma, delta := ZYZ(u)
		rec := gate.New(gate.RZ, beta).Matrix().
			Mul(gate.New(gate.RY, gamma).Matrix()).
			Mul(gate.New(gate.RZ, delta).Matrix()).
			Scale(complexExp(alpha))
		if linalg.FrobeniusDistance(u, rec) > 1e-9 {
			t.Fatalf("ZYZ failed on special matrix:\n%v", u)
		}
	}
}

func TestPeepholeCancelsInversePairs(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 0, 1)
	out := Peephole(c)
	if out.Len() != 0 {
		t.Fatalf("expected empty circuit, got %d ops:\n%s", out.Len(), out)
	}
}

func TestPeepholeMergesRotations(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.RZ, 0.3), 0)
	c.Append(gate.New(gate.RZ, 0.4), 0)
	out := Peephole(c)
	if out.Len() != 1 || math.Abs(out.Ops[0].G.Params[0]-0.7) > 1e-12 {
		t.Fatalf("rotation merge failed: %s", out)
	}
	// Opposite rotations cancel entirely.
	c2 := circuit.New(1)
	c2.Append(gate.New(gate.RX, 0.9), 0)
	c2.Append(gate.New(gate.RX, -0.9), 0)
	if Peephole(c2).Len() != 0 {
		t.Fatal("opposite rotations should cancel")
	}
}

func TestPeepholeCommutesThroughCX(t *testing.T) {
	// RZ on control commutes through CX; the two RZs merge.
	c := circuit.New(2)
	c.Append(gate.New(gate.RZ, 0.3), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.RZ, -0.3), 0)
	out := Peephole(c)
	if out.Len() != 1 || out.Ops[0].G.Kind != gate.CX {
		t.Fatalf("commute-merge through CX failed: %s", out)
	}
	equivalent(t, c, out, "commute through CX")

	// X on target commutes through CX.
	c2 := circuit.New(2)
	c2.Append(gate.New(gate.X), 1)
	c2.Append(gate.New(gate.CX), 0, 1)
	c2.Append(gate.New(gate.X), 1)
	out2 := Peephole(c2)
	if out2.Len() != 1 {
		t.Fatalf("X through CX target failed: %s", out2)
	}
	equivalent(t, c2, out2, "X through CX")

	// RZ on *target* must NOT commute through CX.
	c3 := circuit.New(2)
	c3.Append(gate.New(gate.RZ, 0.5), 1)
	c3.Append(gate.New(gate.CX), 0, 1)
	c3.Append(gate.New(gate.RZ, -0.5), 1)
	out3 := Peephole(c3)
	equivalent(t, c3, out3, "non-commuting preserved")
	if out3.Len() != 3 {
		t.Fatalf("RZ moved through CX target: %s", out3)
	}
}

func TestPeepholeSymmetricGates(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.CZ), 0, 1)
	c.Append(gate.New(gate.CZ), 1, 0)
	if Peephole(c).Len() != 0 {
		t.Fatal("CZ with reversed operands should cancel")
	}
	c2 := circuit.New(2)
	c2.Append(gate.New(gate.SWAP), 0, 1)
	c2.Append(gate.New(gate.SWAP), 1, 0)
	if Peephole(c2).Len() != 0 {
		t.Fatal("SWAP with reversed operands should cancel")
	}
}

func TestPeepholeSTFusion(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.S), 0) // T·T = S, then S·S = Z
	out := Peephole(c)
	if out.Len() != 1 || out.Ops[0].G.Kind != gate.Z {
		t.Fatalf("T·T·S should fuse to Z: %s", out)
	}
	equivalent(t, c, out, "phase fusion")
}

func TestHConjugation(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.RZ, 0.8), 0)
	c.Append(gate.New(gate.H), 0)
	out := Peephole(c)
	if out.Len() != 1 || out.Ops[0].G.Kind != gate.RX {
		t.Fatalf("H·RZ·H should become RX: %s", out)
	}
	equivalent(t, c, out, "H conjugation")
}

func TestMergeSingleQubitRuns(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.T), 0)
	c.Append(gate.New(gate.S), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.RX, 0.4), 1)
	c.Append(gate.New(gate.RZ, 0.2), 1)
	out := MergeSingleQubitRuns(c)
	// Run of 3 on q0 becomes one U3; run of 2 on q1 becomes one U3.
	if out.Len() != 3 {
		t.Fatalf("expected 3 ops after merging, got %d:\n%s", out.Len(), out)
	}
	equivalent(t, c, out, "single-qubit run merge")
}

func TestMergeRunsDropsIdentity(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.H), 0)
	out := MergeSingleQubitRuns(c)
	if out.Len() != 0 {
		t.Fatalf("HH run should vanish: %s", out)
	}
}

func TestPeepholeReducesRandomCliffordT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var reduced int
	for trial := 0; trial < 10; trial++ {
		c := randomCliffordT(4, 40, rng)
		out := Peephole(c)
		equivalent(t, c, out, "random Clifford+T")
		if out.Len() < c.Len() {
			reduced++
		}
	}
	if reduced == 0 {
		t.Fatal("peephole never reduced any random circuit")
	}
}

func TestQuickPeepholePreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCliffordT(3, 30, rng)
		out := Peephole(c)
		return linalg.PhaseDistance(c.Unitary(), out.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecomposePreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomMixed(3, 15, rng)
		d := DecomposeToBasis(c)
		return linalg.PhaseDistance(c.Unitary(), d.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeRunsPreservesUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomMixed(3, 20, rng)
		out := MergeSingleQubitRuns(c)
		return linalg.PhaseDistance(c.Unitary(), out.Unitary()) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func complexExp(theta float64) complex128 {
	return complex(math.Cos(theta), math.Sin(theta))
}

func randomCliffordT(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	kinds := []gate.Kind{gate.H, gate.S, gate.T, gate.X, gate.Z, gate.Sdg, gate.Tdg}
	for i := 0; i < ops; i++ {
		if rng.Intn(3) == 0 && n > 1 {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		} else {
			c.Append(gate.New(kinds[rng.Intn(len(kinds))]), rng.Intn(n))
		}
	}
	return c
}

func randomMixed(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0:
			c.Append(gate.New(gate.H), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.U3, rng.Float64()*3, rng.Float64()*3, rng.Float64()*3), rng.Intn(n))
		case 2:
			c.Append(gate.New(gate.RY, rng.Float64()*3), rng.Intn(n))
		case 3:
			c.Append(gate.New(gate.RZ, rng.Float64()*3), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
