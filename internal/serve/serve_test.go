package serve

// The handler suite runs entirely against httptest with an injected
// compile function and (where timing matters) a faultclock.Fake, per
// the repo's no-sleeps convention: every wait is a channel receive,
// every duration is fake-clock arithmetic, and the whole file is
// -race clean.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/faultclock"
)

// compileFunc matches Server.compile.
type compileFunc func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error)

// okResult is a minimal successful pipeline result for stubbed compiles.
func okResult() *core.Result {
	return &core.Result{
		Strategy: core.EPOC,
		Latency:  100,
		Fidelity: 0.99,
	}
}

// newTestServer builds a server, swaps in the stub compile function
// (nil keeps the real pipeline), and tears it down with the test.
func newTestServer(t *testing.T, cfg Config, fn compileFunc) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if fn != nil {
		s.compile = fn
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// post sends a synchronous JSON request through the mux and returns
// the recorder.
func post(s *Server, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/compile", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) *CompileResponse {
	t.Helper()
	var resp CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode envelope: %v\nbody: %s", err, w.Body.String())
	}
	return &resp
}

func errorCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body: %v\nbody: %s", err, w.Body.String())
	}
	return body.Error.Code
}

// waitTrue spins (yielding) until cond holds; it is bounded so a
// broken condition fails the test instead of hanging it. The condition
// flips on another goroutine's mutex write, not on wall time, so this
// stays deterministic.
func waitTrue(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("condition never held: %s", what)
}

// TestDeadlineMapsToBudgets pins the deadline→budget contract from
// DESIGN.md §11: deadline_ms becomes Budgets.Total at dequeue, an
// explicit smaller total wins, and per-stage budgets pass through
// alongside the derived total.
func TestDeadlineMapsToBudgets(t *testing.T) {
	clk := faultclock.NewFake()
	captured := make(chan core.Budgets, 1)
	s := newTestServer(t, Config{Workers: 1, Clock: clk},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			captured <- opts.Budgets
			return okResult(), nil
		})

	cases := []struct {
		name string
		body string
		want func(t *testing.T, b core.Budgets)
	}{
		{
			name: "deadline becomes Total",
			body: `{"circuit":"ghz","deadline_ms":5000}`,
			want: func(t *testing.T, b core.Budgets) {
				if b.Total != 5*time.Second {
					t.Fatalf("Budgets.Total = %v, want 5s", b.Total)
				}
			},
		},
		{
			name: "explicit smaller total wins",
			body: `{"circuit":"ghz","deadline_ms":5000,"options":{"budgets":"total=2s"}}`,
			want: func(t *testing.T, b core.Budgets) {
				if b.Total != 2*time.Second {
					t.Fatalf("Budgets.Total = %v, want the explicit 2s", b.Total)
				}
			},
		},
		{
			name: "explicit larger total clamped to deadline",
			body: `{"circuit":"ghz","deadline_ms":5000,"options":{"budgets":"total=1h"}}`,
			want: func(t *testing.T, b core.Budgets) {
				if b.Total != 5*time.Second {
					t.Fatalf("Budgets.Total = %v, want clamp to 5s", b.Total)
				}
			},
		},
		{
			name: "stage budgets ride along",
			body: `{"circuit":"ghz","deadline_ms":5000,"options":{"budgets":"synth=1s,qoc-iters=50"}}`,
			want: func(t *testing.T, b core.Budgets) {
				if b.SynthTime != time.Second || b.QOCIters != 50 {
					t.Fatalf("stage budgets = synth %v, qoc-iters %d; want 1s, 50", b.SynthTime, b.QOCIters)
				}
				if b.Total != 5*time.Second {
					t.Fatalf("Budgets.Total = %v, want 5s", b.Total)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(s, tc.body, nil)
			if w.Code != http.StatusOK {
				t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
			}
			tc.want(t, <-captured)
		})
	}
}

// TestQueueFullReturns429 fills one worker and a depth-1 queue with
// blocked compiles; the next request must bounce with 429 and a
// Retry-After hint instead of queueing unboundedly.
func TestQueueFullReturns429(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			started <- struct{}{}
			select {
			case <-release:
				return okResult(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})

	// Occupy the worker, then the queue slot (async so the POSTs return).
	w := post(s, `{"circuit":"ghz","async":true}`, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first admit: status = %d", w.Code)
	}
	<-started // the worker is now inside the blocked compile
	if w = post(s, `{"circuit":"ghz","async":true}`, nil); w.Code != http.StatusAccepted {
		t.Fatalf("second admit: status = %d", w.Code)
	}

	w = post(s, `{"circuit":"ghz"}`, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-admission: status = %d, want 429; body %s", w.Code, w.Body.String())
	}
	if code := errorCode(t, w); code != "queue_full" {
		t.Fatalf("error code = %q, want queue_full", code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 response is missing Retry-After")
	}
	if w.Header().Get(TraceIDHeader) == "" {
		t.Fatal("429 response is missing the trace-ID header")
	}

	close(release)
	<-started // second job runs after the first frees the worker
}

// TestClientDisconnectCancelsCompile verifies the synchronous path's
// cancellation contract: when the caller drops the connection, the
// compile's context is canceled and the job lands in state canceled.
func TestClientDisconnectCancelsCompile(t *testing.T) {
	started := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			close(started)
			<-ctx.Done() // a real compile polls this at every gate checkpoint
			return nil, ctx.Err()
		})

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/compile", strings.NewReader(`{"circuit":"ghz"}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-started // the compile is running under the request's context
	cancel()  // client walks away
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response instead of an error")
	}

	// The job is internal state now — nobody is left to read a response
	// — so assert on it directly.
	var j *job
	s.mu.Lock()
	for _, cand := range s.jobs {
		j = cand
	}
	s.mu.Unlock()
	if j == nil {
		t.Fatal("job not found")
	}
	<-j.done
	state, _, _, apiErr, _, _ := j.snapshotState()
	if state != statusCanceled {
		t.Fatalf("job state = %q, want canceled", state)
	}
	if apiErr == nil || apiErr.Code != "canceled" {
		t.Fatalf("job error = %+v, want code canceled", apiErr)
	}
}

// TestSharedCacheWarmSecondRequest drives the real pipeline twice with
// the same circuit through one server: the second request must be
// served from the process-wide synthesis cache. This is the service's
// reason to exist (warm-cache amortization across requests), so it
// runs the genuine core.CompileContext in estimate mode.
func TestSharedCacheWarmSecondRequest(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, nil) // real compile

	body := `{"circuit":"ghz","options":{"mode":"estimate","seed":1}}`
	w1 := post(s, body, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("cold request: status = %d, body %s", w1.Code, w1.Body.String())
	}
	cold := decodeEnvelope(t, w1)
	if cold.Status != statusDone || cold.Cache == nil {
		t.Fatalf("cold request: status %q, cache %+v", cold.Status, cold.Cache)
	}
	if cold.Cache.SynthMisses == 0 {
		t.Fatalf("cold request reported no synth misses: %+v", cold.Cache)
	}

	w2 := post(s, body, nil)
	warm := decodeEnvelope(t, w2)
	if warm.Cache == nil || warm.Cache.SynthHits == 0 {
		t.Fatalf("warm request saw no synth-cache hits: %+v", warm.Cache)
	}
	if warm.Cache.SynthMisses != 0 {
		t.Fatalf("warm request re-synthesized %d blocks", warm.Cache.SynthMisses)
	}
	if warm.Cache.LibraryHits == 0 {
		t.Fatalf("warm request saw no pulse-library hits: %+v", warm.Cache)
	}

	// Identical input and config ⇒ identical manifest fingerprint, the
	// property that makes cross-request baseline comparison work.
	if cold.Manifest == nil || warm.Manifest == nil {
		t.Fatal("missing manifest on a done response")
	}
	if cold.Manifest.ConfigFingerprint != warm.Manifest.ConfigFingerprint {
		t.Fatalf("config fingerprints differ: %s vs %s",
			cold.Manifest.ConfigFingerprint, warm.Manifest.ConfigFingerprint)
	}
}

// TestGracefulShutdownDrains starts a blocked compile, begins
// Shutdown, and checks the full drain contract: new work 503s, the
// in-flight compile finishes and its synchronous response flushes,
// then Shutdown returns.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.compile = func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
		close(started)
		select {
		case <-release:
			return okResult(), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflight <- post(s, `{"circuit":"ghz"}`, nil)
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitTrue(t, "server starts draining", s.Draining)

	// New work is refused while draining.
	w := post(s, `{"circuit":"ghz"}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("admission while draining: status = %d, want 503", w.Code)
	}
	if code := errorCode(t, w); code != "draining" {
		t.Fatalf("error code = %q, want draining", code)
	}
	if hz := get(s, "/v1/healthz"); hz.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status = %d, want 503", hz.Code)
	}

	// The in-flight compile still completes and its caller gets 200.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got := <-inflight
	if got.Code != http.StatusOK {
		t.Fatalf("drained request: status = %d, body %s", got.Code, got.Body.String())
	}
	if resp := decodeEnvelope(t, got); resp.Status != statusDone {
		t.Fatalf("drained request finished in state %q", resp.Status)
	}
}

// TestShutdownDeadlineAbortsInflight covers the other Shutdown arm: if
// the drain context expires, running compiles are canceled and
// Shutdown still joins the pool before returning the context error.
func TestShutdownDeadlineAbortsInflight(t *testing.T) {
	started := make(chan struct{})
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.compile = func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}

	w := post(s, `{"circuit":"ghz","async":true}`, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("admit: status = %d", w.Code)
	}
	id := decodeEnvelope(t, w).ID
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // an already-expired drain deadline
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	j := s.lookup(id)
	if j == nil {
		t.Fatal("job evicted during shutdown")
	}
	<-j.done
	if state, _, _, _, _, _ := j.snapshotState(); state != statusCanceled {
		t.Fatalf("job state = %q, want canceled", state)
	}
}

// TestDeadlineExpiredWhileQueued advances the fake clock past a queued
// job's soft deadline before a worker reaches it; the job must fail
// with deadline_exceeded and report 504 on the status endpoint.
func TestDeadlineExpiredWhileQueued(t *testing.T) {
	clk := faultclock.NewFake()
	started := make(chan struct{})
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Clock: clk},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			select {
			case <-started: // already closed: later jobs pass straight through
			default:
				close(started)
				<-release
			}
			return okResult(), nil
		})

	// Blocker occupies the only worker.
	if w := post(s, `{"circuit":"ghz","async":true}`, nil); w.Code != http.StatusAccepted {
		t.Fatalf("blocker: status = %d", w.Code)
	}
	<-started

	// Victim queues behind it with a 1s soft deadline...
	w := post(s, `{"circuit":"ghz","async":true,"deadline_ms":1000}`, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("victim: status = %d", w.Code)
	}
	id := decodeEnvelope(t, w).ID

	// ...and the clock jumps past it while the victim is still queued.
	clk.Advance(2 * time.Second)
	close(release)

	j := s.lookup(id)
	if j == nil {
		t.Fatal("victim job not found")
	}
	<-j.done
	sw := get(s, "/v1/compile/"+id)
	if sw.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired job status endpoint: %d, want 504; body %s", sw.Code, sw.Body.String())
	}
	resp := decodeEnvelope(t, sw)
	if resp.Status != statusFailed || resp.Error == nil || resp.Error.Code != "deadline_exceeded" {
		t.Fatalf("expired job envelope: %+v", resp)
	}
}

// TestTraceIDHeader pins the trace-ID contract: a well-formed inbound
// ID is honored on the response and envelope; a malformed one is
// replaced by the job ID; the header is present even on errors.
func TestTraceIDHeader(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			return okResult(), nil
		})

	w := post(s, `{"circuit":"ghz"}`, map[string]string{TraceIDHeader: "caller-trace.01"})
	if got := w.Header().Get(TraceIDHeader); got != "caller-trace.01" {
		t.Fatalf("honored trace ID: header = %q", got)
	}
	if resp := decodeEnvelope(t, w); resp.TraceID != "caller-trace.01" {
		t.Fatalf("honored trace ID: envelope = %q", resp.TraceID)
	}

	w = post(s, `{"circuit":"ghz"}`, map[string]string{TraceIDHeader: "bad header!"})
	resp := decodeEnvelope(t, w)
	if got := w.Header().Get(TraceIDHeader); got != resp.ID {
		t.Fatalf("malformed trace ID: header %q should fall back to job ID %q", got, resp.ID)
	}

	w = post(s, `{"circuit":"no-such-circuit"}`, map[string]string{TraceIDHeader: "err-trace"})
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown circuit: status = %d", w.Code)
	}
	if got := w.Header().Get(TraceIDHeader); got != "err-trace" {
		t.Fatalf("error response dropped the trace header: %q", got)
	}
}

// TestEventsStream checks the progress stream end to end: lifecycle
// events, recorder-sink events emitted mid-compile, and the terminal
// done line, replayed in order after the job finished.
func TestEventsStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			opts.Obs.Event("qoc/grape", "iter=1 infidelity=0.5")
			opts.Obs.Event("qoc/grape", "iter=2 infidelity=0.1")
			return okResult(), nil
		})

	w := post(s, `{"circuit":"ghz"}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("compile: status = %d", w.Code)
	}
	id := decodeEnvelope(t, w).ID

	ew := get(s, "/v1/compile/"+id+"/events")
	if ew.Code != http.StatusOK {
		t.Fatalf("events: status = %d", ew.Code)
	}
	if ct := ew.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q", ct)
	}
	var lines []StreamEvent
	for _, raw := range strings.Split(strings.TrimSpace(ew.Body.String()), "\n") {
		var ev StreamEvent
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", raw, err)
		}
		lines = append(lines, ev)
	}
	var stages []string
	for _, ev := range lines {
		if ev.Stage != "" {
			stages = append(stages, ev.Stage+":"+firstField(ev.Msg))
		}
	}
	want := []string{"serve:queued", "serve:compiling", "qoc/grape:iter=1", "qoc/grape:iter=2", "serve:done"}
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("event sequence = %v, want %v", stages, want)
	}
	last := lines[len(lines)-1]
	if !last.Done || last.Status != statusDone {
		t.Fatalf("terminal line = %+v, want done:true status:done", last)
	}
	for i, ev := range lines {
		if ev.Seq != i {
			t.Fatalf("line %d has seq %d", i, ev.Seq)
		}
	}

	if ew := get(s, "/v1/compile/nope/events"); ew.Code != http.StatusNotFound {
		t.Fatalf("unknown job events: status = %d", ew.Code)
	}
}

func firstField(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

// TestAsyncLifecycle follows the 202 → poll → done flow and checks
// that the async job survives its POST request's context.
func TestAsyncLifecycle(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			<-release
			if err := ctx.Err(); err != nil {
				return nil, err // would mean the POST's context leaked in
			}
			return okResult(), nil
		})

	// Async jobs run on a context detached from the POST's, so a
	// fire-and-forget client dropping the connection never cancels one.
	w := post(s, `{"circuit":"ghz","async":true}`, nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("async POST: status = %d", w.Code)
	}
	resp := decodeEnvelope(t, w)
	if resp.Status != statusQueued || resp.StatusURL == "" || resp.EventsURL == "" {
		t.Fatalf("async envelope: %+v", resp)
	}

	if sw := get(s, resp.StatusURL); decodeEnvelope(t, sw).Status == statusFailed {
		t.Fatalf("async job failed early: %s", sw.Body.String())
	}
	close(release)
	j := s.lookup(resp.ID)
	if j == nil {
		t.Fatal("async job not found")
	}
	<-j.done
	sw := get(s, resp.StatusURL)
	if sw.Code != http.StatusOK {
		t.Fatalf("status poll: %d", sw.Code)
	}
	final := decodeEnvelope(t, sw)
	if final.Status != statusDone || final.Manifest == nil {
		t.Fatalf("final envelope: status %q, manifest nil=%t", final.Status, final.Manifest == nil)
	}
}

// TestRequestValidation sweeps the 4xx surface: every rejection has
// the documented status and error code.
func TestRequestValidation(t *testing.T) {
	// MaxQubits 4 admits fredkin (3 qubits) and rejects ghz (8).
	s := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 256, MaxQubits: 4},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			return okResult(), nil
		})

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"empty body", ``, http.StatusBadRequest, "invalid_request"},
		{"no source", `{}`, http.StatusBadRequest, "invalid_request"},
		{"both sources", `{"qasm":"OPENQASM 2.0;","circuit":"fredkin"}`, http.StatusBadRequest, "invalid_request"},
		{"unknown circuit", `{"circuit":"nope"}`, http.StatusNotFound, "unknown_circuit"},
		{"bad qasm", `{"qasm":"this is not qasm"}`, http.StatusBadRequest, "invalid_request"},
		{"unknown strategy", `{"circuit":"fredkin","options":{"strategy":"yolo"}}`, http.StatusBadRequest, "invalid_request"},
		{"unknown mode", `{"circuit":"fredkin","options":{"mode":"fast"}}`, http.StatusBadRequest, "invalid_request"},
		{"bad budgets", `{"circuit":"fredkin","options":{"budgets":"total=banana"}}`, http.StatusBadRequest, "invalid_request"},
		{"unknown field", `{"circuit":"fredkin","turbo":true}`, http.StatusBadRequest, "invalid_request"},
		{"too wide", `{"circuit":"ghz"}`, http.StatusBadRequest, "invalid_request"},
		{"body too large", `{"qasm":"` + strings.Repeat("x", 512) + `"}`, http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(s, tc.body, nil)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d; body %s", w.Code, tc.status, w.Body.String())
			}
			if code := errorCode(t, w); code != tc.code {
				t.Fatalf("error code = %q, want %q", code, tc.code)
			}
			if w.Header().Get(TraceIDHeader) == "" {
				t.Fatal("error response is missing the trace-ID header")
			}
		})
	}

	if w := get(s, "/v1/compile/missing"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: status = %d", w.Code)
	}
}

// TestStatsAndHealth sanity-checks the observability endpoints after a
// couple of compiles.
func TestStatsAndHealth(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			return okResult(), nil
		})
	for i := 0; i < 2; i++ {
		if w := post(s, `{"circuit":"ghz"}`, nil); w.Code != http.StatusOK {
			t.Fatalf("compile %d: status = %d", i, w.Code)
		}
	}

	hw := get(s, "/v1/healthz")
	if hw.Code != http.StatusOK {
		t.Fatalf("healthz: status = %d", hw.Code)
	}
	var health HealthResponse
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers != 2 {
		t.Fatalf("health = %+v", health)
	}

	sw := get(s, "/v1/stats")
	var stats StatsResponse
	if err := json.Unmarshal(sw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Counters["serve/requests"] != 2 || stats.Counters["serve/completed"] != 2 {
		t.Fatalf("counters = %v", stats.Counters)
	}
	if len(stats.Circuits) == 0 {
		t.Fatal("stats lists no benchmark circuits")
	}
	if stats.Queue.Workers != 2 {
		t.Fatalf("queue stats = %+v", stats.Queue)
	}
}

// TestJobEviction bounds the retained-jobs map: with RetainJobs=2 the
// oldest finished job becomes unqueryable after the third completes.
func TestJobEviction(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetainJobs: 2},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			return okResult(), nil
		})
	var ids []string
	for i := 0; i < 3; i++ {
		w := post(s, `{"circuit":"ghz"}`, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("compile %d: status = %d", i, w.Code)
		}
		ids = append(ids, decodeEnvelope(t, w).ID)
	}
	if w := get(s, "/v1/compile/"+ids[0]); w.Code != http.StatusNotFound {
		t.Fatalf("evicted job: status = %d, want 404", w.Code)
	}
	for _, id := range ids[1:] {
		if w := get(s, "/v1/compile/"+id); w.Code != http.StatusOK {
			t.Fatalf("retained job %s: status = %d", id, w.Code)
		}
	}
}
