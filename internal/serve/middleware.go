package serve

import (
	"context"
	"net/http"
	"sync"
	"time"

	"epoc/internal/metrics"
)

// ctxKey namespaces this package's context values.
type ctxKey int

const accessInfoKey ctxKey = iota

// accessInfo is the per-request enrichment slot the access-log
// middleware plants in the request context: handlers that know more
// than the HTTP layer (the compile path's queue-wait vs compile-time
// split and degrade flag) fill it, and the final access record carries
// it. Guarded by a mutex out of caution — handlers and the middleware
// run on one goroutine, but the events endpoint hands the writer to
// http.Flusher paths worth being defensive about.
type accessInfo struct {
	mu        sync.Mutex
	hasJob    bool
	queueMS   float64
	compileMS float64
	degraded  bool
}

func (a *accessInfo) setJob(queueMS, compileMS float64, degraded bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.hasJob = true
	a.queueMS = queueMS
	a.compileMS = compileMS
	a.degraded = degraded
	a.mu.Unlock()
}

func (a *accessInfo) read() (hasJob bool, queueMS, compileMS float64, degraded bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hasJob, a.queueMS, a.compileMS, a.degraded
}

// jobAccessInfo returns the request's enrichment slot, nil when the
// handler runs outside the middleware (unit tests hitting handlers
// directly).
func jobAccessInfo(ctx context.Context) *accessInfo {
	info, _ := ctx.Value(accessInfoKey).(*accessInfo)
	return info
}

// statusWriter captures the response status and byte count for the
// access log. It forwards Flush so the events endpoint's streaming
// contract survives the wrapping.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withAccessLog wraps the mux: it stamps Epoc-Trace-Id on every
// response before the handler runs (the sanitized inbound ID, or a
// fresh one), and — when logging is configured — emits one structured
// access record per request after the handler returns, carrying the
// same trace ID the response header carries plus the compile path's
// queue/compile split when a job ran.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if w.Header().Get(TraceIDHeader) == "" {
			tid := requestTraceID(r)
			if tid == "" {
				tid = newID()
			}
			w.Header().Set(TraceIDHeader, tid)
		}
		sw := &statusWriter{ResponseWriter: w}
		info := &accessInfo{}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), accessInfoKey, info)))
		if !s.log.Enabled() {
			return
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		args := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"bytes", sw.bytes,
			// Handlers may refine the trace ID (status polls adopt the
			// job's); read the final header so log and response agree.
			"trace_id", sw.Header().Get(TraceIDHeader),
			"elapsed_ms", float64(time.Since(start).Nanoseconds()) / 1e6,
		}
		if hasJob, queueMS, compileMS, degraded := info.read(); hasJob {
			args = append(args,
				"queue_ms", queueMS,
				"compile_ms", compileMS,
				"degraded", degraded)
		}
		s.log.Info("request", args...)
	})
}

// routesMetrics mounts the Prometheus exposition. Split from routes()
// only to keep the metrics wiring (snapshot source + gauge source) in
// one file with the middleware.
func (s *Server) routesMetrics() {
	s.mux.Handle("GET /metrics", metrics.Handler(s.rec.Snapshot, s.gauges))
}
