package serve

import (
	gocontext "context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/qasm"
	"epoc/internal/report"
	"epoc/internal/synth"
	"epoc/internal/trace"
)

// TraceIDHeader carries the request's trace ID: honored inbound (so a
// caller can stitch the compile into its own trace), always set on
// the response — including errors — and attached to the root
// serve/request span. See SERVING.md "Trace IDs".
const TraceIDHeader = "Epoc-Trace-Id"

// CompileRequest is the POST /v1/compile body. Exactly one of QASM
// (inline OpenQASM 2.0 source) or Circuit (a built-in benchmark name)
// selects the input.
type CompileRequest struct {
	QASM    string `json:"qasm,omitempty"`
	Circuit string `json:"circuit,omitempty"`

	Options RequestOptions `json:"options,omitempty"`

	// DeadlineMS is the soft deadline for the whole request, queue
	// wait included, mapped onto core.Budgets.Total at dequeue: the
	// compile degrades to fit rather than failing (DESIGN.md §11).
	// 0 means the server's default; values above the server's max are
	// clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Async makes the POST return 202 immediately with the job's
	// status and events URLs instead of blocking until the compile
	// finishes.
	Async bool `json:"async,omitempty"`
}

// RequestOptions is the per-request subset of core.Options the API
// exposes. Zero values take server defaults.
type RequestOptions struct {
	Strategy   string `json:"strategy,omitempty"`    // gate-based | accqoc | paqoc | epoc-nogroup | epoc (default epoc)
	Mode       string `json:"mode,omitempty"`        // full (GRAPE, default) | estimate (calibrated model)
	Workers    int    `json:"workers,omitempty"`     // per-compile synthesis/QOC workers (default: server config)
	GrapeIters int    `json:"grape_iters,omitempty"` // GRAPE iteration budget (default 200)
	Route      bool   `json:"route,omitempty"`       // map onto the device topology first
	Seed       int64  `json:"seed,omitempty"`        // optimizer seed (default 1)
	Budgets    string `json:"budgets,omitempty"`     // per-stage budgets, core.ParseBudgets grammar
}

// CompileResponse is the envelope for POST /v1/compile and
// GET /v1/compile/{id}: job identity, timing, per-request cache
// effectiveness, and — once done — the PR-5 run manifest.
type CompileResponse struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id"`
	Status  string `json:"status"` // queued | running | done | failed | canceled

	QueueMS   float64 `json:"queue_ms,omitempty"`
	CompileMS float64 `json:"compile_ms,omitempty"`

	Degraded       bool     `json:"degraded,omitempty"`
	DegradeReasons []string `json:"degrade_reasons,omitempty"`

	Cache    *CacheStats      `json:"cache,omitempty"`
	Manifest *report.Manifest `json:"manifest,omitempty"`
	Error    *ErrorBody       `json:"error,omitempty"`

	// Async navigation.
	StatusURL string `json:"status_url,omitempty"`
	EventsURL string `json:"events_url,omitempty"`
}

// CacheStats reports what the process-wide caches did for one request
// (the per-request numbers) and how big they have grown (process
// totals) — the warm-vs-cold signal SERVING.md's capacity section is
// built on.
type CacheStats struct {
	SynthHits      int `json:"synth_hits"`
	SynthMisses    int `json:"synth_misses"`
	LibraryHits    int `json:"library_hits"`
	LibraryMisses  int `json:"library_misses"`
	SynthEntries   int `json:"synth_entries"`
	LibraryEntries int `json:"library_entries"`
}

// ErrorBody is the uniform error payload: every non-2xx response
// carries {"error": {"code", "message"}}.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError pairs an ErrorBody with its HTTP status.
type apiError struct {
	Status  int
	Code    string
	Message string
}

func (e *apiError) Error() string { return e.Message }

func badRequest(msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: "invalid_request", Message: msg}
}

// HealthResponse is the GET /v1/healthz body.
type HealthResponse struct {
	Status     string `json:"status"` // ok | draining
	Workers    int    `json:"workers"`
	QueueLen   int    `json:"queue_len"`
	QueueCap   int    `json:"queue_cap"`
	UptimeMS   int64  `json:"uptime_ms"`
	RetainJobs int    `json:"retain_jobs"`
}

// StatsResponse is the GET /v1/stats body: server counters, cache
// totals, and the benchmark-circuit catalog.
type StatsResponse struct {
	Counters map[string]int64 `json:"counters,omitempty"`
	Cache    CacheTotals      `json:"cache"`
	Store    *StoreTotals     `json:"store,omitempty"` // nil when no -store is configured
	Queue    QueueStats       `json:"queue"`
	Circuits []string         `json:"circuits"`
}

// CacheTotals is the process-wide cache accounting in /v1/stats.
type CacheTotals struct {
	SynthEntries   int   `json:"synth_entries"`
	SynthHits      int64 `json:"synth_hits"`
	SynthMisses    int64 `json:"synth_misses"`
	SynthCoalesced int64 `json:"synth_coalesced"`
	LibraryEntries int   `json:"library_entries"`
	LibraryHits    int   `json:"library_hits"`
	LibraryMisses  int   `json:"library_misses"`
}

// StoreTotals is the persistent store's accounting in /v1/stats: what
// was on disk at startup, what this process has learned and flushed,
// and what was skipped as corrupt — the restart-warmness dashboard.
type StoreTotals struct {
	Namespace      string `json:"namespace"`
	Dir            string `json:"dir"`
	PulseRecords   int    `json:"pulse_records"` // loaded at startup
	SynthRecords   int    `json:"synth_records"`
	WarmPulses     int64  `json:"warm_pulses"` // imported into the caches
	WarmSynth      int64  `json:"warm_synth"`
	PulseHarvested int64  `json:"pulse_harvested"` // new records staged this process
	SynthHarvested int64  `json:"synth_harvested"`
	Flushed        int64  `json:"flushed"` // records written to disk
	Corrupt        int64  `json:"corrupt"` // files skipped at startup
}

// QueueStats is the admission-control state in /v1/stats. Len,
// Inflight and AvgMS are also exported as gauges on /metrics
// (epoc_serve_queue_depth, epoc_serve_inflight,
// epoc_serve_avg_compile_ms).
type QueueStats struct {
	Workers  int     `json:"workers"`
	Len      int     `json:"len"`
	Cap      int     `json:"cap"`
	Inflight int     `json:"inflight"`
	AvgMS    float64 `json:"avg_compile_ms"`
	Draining bool    `json:"draining"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("GET /v1/compile/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/compile/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.routesMetrics()
}

// handleCompile admits a compile request and, unless async, blocks
// until it finishes and writes the manifest envelope.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.rec.Add("serve/requests", 1)
	// Trace-ID contract: a well-formed inbound ID is honored; otherwise
	// the job ID doubles as the trace ID, so even a request rejected
	// before admission carries a non-empty Epoc-Trace-Id. The access-log
	// middleware pre-stamps the header (the inbound ID, or a fresh
	// newID() when none usable); when the stamp is the middleware's own
	// mint we adopt it as the job ID so the access record, the job and
	// the response all agree without violating the job-ID fallback.
	inbound := requestTraceID(r)
	preset := w.Header().Get(TraceIDHeader)
	var id, traceID string
	switch {
	case preset != "" && preset != inbound:
		id, traceID = preset, preset
	case inbound != "":
		id, traceID = newID(), inbound
	default:
		id = newID()
		traceID = id
	}
	w.Header().Set(TraceIDHeader, traceID)

	req, apiErr := s.decodeRequest(r)
	if apiErr != nil {
		s.rec.Add("serve/invalid", 1)
		writeError(w, apiErr)
		return
	}
	j, apiErr := s.prepareJob(r, req, id, traceID)
	if apiErr != nil {
		s.rec.Add("serve/invalid", 1)
		writeError(w, apiErr)
		return
	}

	// The queued event goes in before admission so it always precedes
	// the worker's "compiling" event; if admission fails the job (and
	// its log) is simply discarded.
	j.events.append(obs.Event{Time: j.admitted, Stage: "serve",
		Msg: fmt.Sprintf("queued id=%s trace=%s position=%d", j.id, j.traceID, len(s.queue))})

	ok, draining := s.admit(j)
	if !ok {
		if draining {
			s.rec.Add("serve/rejected/draining", 1)
			writeError(w, &apiError{Status: http.StatusServiceUnavailable, Code: "draining",
				Message: "server is shutting down and no longer accepts compiles"})
			return
		}
		s.rec.Add("serve/rejected/queue_full", 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, &apiError{Status: http.StatusTooManyRequests, Code: "queue_full",
			Message: fmt.Sprintf("compile queue is full (%d queued, %d workers); retry after the indicated delay",
				len(s.queue), s.cfg.Workers)})
		return
	}
	s.rec.Add("serve/accepted", 1)

	if req.Async {
		writeJSON(w, http.StatusAccepted, &CompileResponse{
			ID: j.id, TraceID: j.traceID, Status: statusQueued,
			StatusURL: "/v1/compile/" + j.id,
			EventsURL: "/v1/compile/" + j.id + "/events",
		})
		return
	}

	select {
	case <-j.done:
		s.writeJobResponse(w, r, j)
	case <-r.Context().Done():
		// Client gone: cancel the compile (queued jobs are skipped at
		// dequeue, running ones abort at the next pipeline checkpoint).
		// There is nobody left to write a response to.
		j.abort()
	}
}

// handleStatus reports a job's current envelope; for finished jobs
// that is the same body the synchronous POST returned.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: "unknown_job",
			Message: "no such compile job (finished jobs are retained only up to the configured limit)"})
		return
	}
	w.Header().Set(TraceIDHeader, j.traceID)
	s.writeJobResponse(w, r, j)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, &HealthResponse{
		Status:     status,
		Workers:    s.cfg.Workers,
		QueueLen:   len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		UptimeMS:   time.Since(s.started).Milliseconds(),
		RetainJobs: s.cfg.RetainJobs,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	libHits, libMisses := s.lib.Counts()
	s.mu.Lock()
	avg := s.avgMS
	draining := s.draining
	s.mu.Unlock()
	snap := s.rec.Snapshot()
	var st *StoreTotals
	if s.store != nil {
		c := s.store.Counters()
		pn, sn := s.store.Len()
		st = &StoreTotals{
			Namespace:      s.store.Namespace(),
			Dir:            s.store.Dir(),
			PulseRecords:   pn,
			SynthRecords:   sn,
			WarmPulses:     c.WarmPulses,
			WarmSynth:      c.WarmSynth,
			PulseHarvested: c.PulseHarvested,
			SynthHarvested: c.SynthHarvested,
			Flushed:        c.Flushed,
			Corrupt:        c.Corrupt,
		}
	}
	writeJSON(w, http.StatusOK, &StatsResponse{
		Counters: snap.Counters,
		Store:    st,
		Cache: CacheTotals{
			SynthEntries:   s.cache.Len(),
			SynthHits:      s.cache.Hits(),
			SynthMisses:    s.cache.Misses(),
			SynthCoalesced: s.cache.Coalesced(),
			LibraryEntries: s.lib.Len(),
			LibraryHits:    libHits,
			LibraryMisses:  libMisses,
		},
		Queue: QueueStats{
			Workers:  s.cfg.Workers,
			Len:      len(s.queue),
			Cap:      s.cfg.QueueDepth,
			Inflight: int(s.inflight.Load()),
			AvgMS:    avg,
			Draining: draining,
		},
		Circuits: benchcirc.Names(),
	})
}

// decodeRequest parses and bounds the POST body.
func (s *Server) decodeRequest(r *http.Request) (*CompileRequest, *apiError) {
	r.Body = http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req CompileRequest
	if err := dec.Decode(&req); err != nil {
		if _, ok := err.(*http.MaxBytesError); ok {
			return nil, &apiError{Status: http.StatusRequestEntityTooLarge, Code: "body_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return nil, badRequest(fmt.Sprintf("invalid JSON body: %v", err))
	}
	return &req, nil
}

// prepareJob validates the request and builds the admitted job:
// circuit, options, deadline, recorder, tracer, event stream.
func (s *Server) prepareJob(r *http.Request, req *CompileRequest, id, traceID string) (*job, *apiError) {
	circ, name, apiErr := loadCircuit(req)
	if apiErr != nil {
		return nil, apiErr
	}
	if circ.NumQubits > s.cfg.MaxQubits {
		return nil, badRequest(fmt.Sprintf("circuit has %d qubits; this server accepts at most %d",
			circ.NumQubits, s.cfg.MaxQubits))
	}
	opts, apiErr := s.buildOptions(&req.Options, circ)
	if apiErr != nil {
		return nil, apiErr
	}

	softFor := time.Duration(req.DeadlineMS) * time.Millisecond
	if softFor <= 0 {
		softFor = s.cfg.DefaultDeadline
	}
	if softFor > s.cfg.MaxDeadline {
		softFor = s.cfg.MaxDeadline
	}

	now := s.now()

	rec := obs.New()
	opts.Obs = rec
	tracer := trace.New(s.cfg.Clock)
	opts.Trace = tracer
	// The job logger carries the job and trace IDs on every record it
	// emits — its own lifecycle records and, via opts.Log, the core
	// pipeline's stage-boundary records — so one grep by trace_id
	// stitches the access log, the job log and the stage log together.
	jlog := s.log.With("job", id, "trace_id", traceID)
	opts.Log = jlog

	j := &job{
		id:       id,
		traceID:  traceID,
		circ:     circ,
		circName: name,
		opts:     opts,
		baseCtx:  baseContext(r, req),
		deadline: now.Add(softFor),
		softFor:  softFor,
		admitted: now,
		rec:      rec,
		tracer:   tracer,
		events:   newEventLog(),
		log:      jlog,
		state:    statusQueued,
		done:     make(chan struct{}),
	}
	// Stream every obs event (GRAPE/CRAB convergence, duration-search
	// probes) to the job's event log as it is recorded.
	rec.SetSink(j.events.append)
	return j, nil
}

// baseContext picks the compile's base context: the request's for
// sync jobs (client disconnect cancels), detached for async ones (the
// job outlives the POST by design).
func baseContext(r *http.Request, req *CompileRequest) gocontext.Context {
	if req.Async {
		return gocontext.WithoutCancel(r.Context())
	}
	return r.Context()
}

// buildOptions maps the wire options onto core.Options, applying
// server defaults and rejecting unknown enum values.
func (s *Server) buildOptions(ro *RequestOptions, circ *circuit.Circuit) (core.Options, *apiError) {
	opts := core.Options{
		Device:     device(circ),
		Workers:    s.cfg.CompileWorkers,
		SynthCache: s.cache,
		Library:    s.lib,
		// The shared store, when configured. core checks the namespace
		// per compile: a request whose options diverge from the server
		// defaults skips the store instead of polluting it.
		Store: s.store,
		Clock: s.cfg.Clock,
	}
	switch ro.Strategy {
	case "":
		opts.Strategy = core.EPOC
	case string(core.GateBased), string(core.AccQOC), string(core.PAQOC), string(core.EPOCNoGroup), string(core.EPOC):
		opts.Strategy = core.Strategy(ro.Strategy)
	default:
		return core.Options{}, badRequest(fmt.Sprintf(
			"unknown strategy %q (want gate-based, accqoc, paqoc, epoc-nogroup or epoc)", ro.Strategy))
	}
	switch ro.Mode {
	case "", "full":
		opts.Mode = core.QOCFull
	case "estimate":
		opts.Mode = core.QOCEstimate
	default:
		return core.Options{}, badRequest(fmt.Sprintf("unknown mode %q (want full or estimate)", ro.Mode))
	}
	if ro.Workers > 0 {
		opts.Workers = ro.Workers
	}
	if opts.Workers > 16 {
		opts.Workers = 16
	}
	// Apply the pipeline's documented defaults here rather than leaving
	// zeros for core's withDefaults: the manifest's config fingerprint
	// is built from these values, and "unset" must fingerprint the same
	// as "explicitly the default".
	opts.GRAPEIters = 200
	if ro.GrapeIters > 0 {
		opts.GRAPEIters = ro.GrapeIters
	}
	opts.Seed = 1
	if ro.Seed != 0 {
		opts.Seed = ro.Seed
	}
	opts.Route = ro.Route
	if ro.Budgets != "" {
		b, err := core.ParseBudgets(ro.Budgets)
		if err != nil {
			return core.Options{}, badRequest(fmt.Sprintf("invalid budgets: %v", err))
		}
		opts.Budgets = b
	}
	// A request whose options leave the store's namespace must not
	// share the in-memory caches either: its pulses would otherwise be
	// library-hit by a later matched compile and harvested into a
	// namespace whose physics they don't satisfy. Give it throwaway
	// caches; core drops the store itself on the same mismatch.
	if s.store != nil && core.StoreNamespace(opts) != s.store.Namespace() {
		opts.SynthCache = synth.NewCache()
		opts.Library = pulse.NewLibrary(true)
	}
	return opts, nil
}

// writeJobResponse renders a job's envelope at whatever state it is
// in. Failures keep their original HTTP status so a poll of a failed
// job sees the same code the synchronous caller did.
func (s *Server) writeJobResponse(w http.ResponseWriter, r *http.Request, j *job) {
	state, res, m, apiErr, queueMS, compileMS := j.snapshotState()
	// Enrich the access-log record with the queue-wait vs compile-time
	// split the HTTP layer cannot see.
	jobAccessInfo(r.Context()).setJob(queueMS, compileMS, res != nil && res.Degraded)
	resp := &CompileResponse{
		ID:        j.id,
		TraceID:   j.traceID,
		Status:    state,
		QueueMS:   queueMS,
		CompileMS: compileMS,
		Manifest:  m,
		EventsURL: "/v1/compile/" + j.id + "/events",
	}
	code := http.StatusOK
	switch state {
	case statusQueued, statusRunning:
		code = http.StatusOK
	case statusDone:
		if res != nil {
			resp.Degraded = res.Degraded
			resp.DegradeReasons = res.DegradeReasons
			libHits, libMisses := perRequestLibraryCounts(j.rec)
			resp.Cache = &CacheStats{
				SynthHits:      res.Stats.SynthCacheHits,
				SynthMisses:    res.Stats.SynthCacheMisses,
				LibraryHits:    libHits,
				LibraryMisses:  libMisses,
				SynthEntries:   s.cache.Len(),
				LibraryEntries: s.lib.Len(),
			}
		}
	default: // failed, canceled
		code = http.StatusInternalServerError
		if apiErr != nil {
			code = apiErr.Status
			resp.Error = &ErrorBody{Code: apiErr.Code, Message: apiErr.Message}
		}
	}
	writeJSON(w, code, resp)
}

// perRequestLibraryCounts reads the per-compile pulse-library deltas
// the pipeline records on the job's own recorder — the process-wide
// Library totals would conflate concurrent requests.
func perRequestLibraryCounts(rec *obs.Recorder) (hits, misses int) {
	snap := rec.Snapshot()
	return int(snap.Counters["library/hits"]), int(snap.Counters["library/misses"])
}

// requestTraceID returns the sanitized inbound trace ID, or "" when
// absent or unusable (the job ID then becomes the trace ID).
func requestTraceID(r *http.Request) string {
	id := r.Header.Get(TraceIDHeader)
	if id == "" || len(id) > 64 {
		return ""
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// qasmName labels an inline-QASM run for the manifest: a content
// digest, so identical sources compare and distinct ones do not.
func qasmName(src string) string {
	sum := sha256.Sum256([]byte(src))
	return "qasm:" + hex.EncodeToString(sum[:6])
}

// parseQASM wraps the parser to return just the circuit.
func parseQASM(src string) (*circuit.Circuit, error) {
	prog, err := qasm.Parse(src)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a value we just built cannot fail; a broken connection
	// surfaces as a write error there is nobody to hand to.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, struct {
		Error ErrorBody `json:"error"`
	}{ErrorBody{Code: e.Code, Message: e.Message}})
}
