// Package serve implements epoc-serve: a long-lived HTTP/JSON
// compilation service over the same pipeline the CLIs drive. It is
// the deployment shape the PR 1–5 groundwork was built for — every
// request runs core.CompileContext with a per-request deadline mapped
// onto core.Budgets (degrade, don't fail), a per-request trace ID
// threaded into the span tracer and response headers, and progress
// streamed live from the obs recorder — while a process-wide
// synth.Cache and pulse.Library turn repeat circuits into warm-cache
// hits across requests (the AccQOC amortization argument, applied at
// the service boundary).
//
// Endpoints (full reference with schemas and examples: SERVING.md):
//
//	POST /v1/compile             compile QASM, return the manifest envelope
//	GET  /v1/compile/{id}        job status / result envelope
//	GET  /v1/compile/{id}/events progress stream (JSON lines)
//	GET  /v1/healthz             liveness + drain state
//	GET  /v1/stats               server counters and cache sizes
//	GET  /metrics                Prometheus exposition (internal/metrics)
//	GET  /debug/pprof, /debug/vars  (internal/debugsrv, same mux)
//
// Admission control is a bounded queue in front of a fixed worker
// pool: a full queue answers 429 with a Retry-After estimate instead
// of letting latency grow without bound. Graceful shutdown stops
// admitting (503), drains queued and in-flight compiles, and only
// then tears the listener down.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/debugsrv"
	"epoc/internal/faultclock"
	"epoc/internal/hardware"
	"epoc/internal/logx"
	"epoc/internal/metrics"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/report"
	"epoc/internal/store"
	"epoc/internal/synth"
	"epoc/internal/trace"
)

// Config tunes a Server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Workers is the compile worker pool size: at most this many
	// compilations run concurrently (default 2). Throughput knob #1.
	Workers int
	// QueueDepth bounds the admission queue of compiles accepted but
	// not yet running (default 16). A full queue rejects with 429 +
	// Retry-After rather than queueing unboundedly. Latency knob #1.
	QueueDepth int
	// CompileWorkers is the default per-compile parallelism
	// (core.Options.Workers) when a request does not set its own
	// (default 1). Total CPU demand ≈ Workers × CompileWorkers.
	CompileWorkers int

	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 2m). MaxDeadline caps every request (default 10m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DeadlineGrace is the slack between the soft deadline (mapped to
	// Budgets.Total: the compile degrades to fit) and the hard context
	// deadline that aborts a compile which failed to degrade in time
	// (default 5s). Only armed under the real clock; see job.run.
	DeadlineGrace time.Duration

	// RetainJobs bounds how many finished jobs stay queryable via
	// GET /v1/compile/{id} (default 128; oldest evicted first).
	RetainJobs int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxQubits rejects circuits wider than this before they reach the
	// queue (default 256).
	MaxQubits int

	// StorePath, when set, backs the process-wide caches with the
	// persistent store (internal/store) rooted at this directory: the
	// library and synthesis cache warm from disk at startup, every
	// compile's new entries are harvested and flushed, and Shutdown
	// closes the store — so a restarted daemon answers repeat circuits
	// from disk without rerunning GRAPE. Requests whose options diverge
	// from the server defaults (different grape_iters, seed, mode, …)
	// fall outside the store's namespace and simply skip it for that
	// compile. Multiple daemons may share one path: records are
	// content-addressed and flushes take an advisory flock.
	StorePath string

	// Debug mounts /debug/pprof and /debug/vars on the server's mux
	// with the server-wide recorder behind the "epoc" expvar key.
	// (GET /metrics is always mounted, debug or not: scraping is a
	// production concern, profiling is not.)
	Debug bool

	// Log, when non-nil, enables structured JSON logging: a per-request
	// access log line (method, path, status, bytes, trace_id, and for
	// compile requests the queue-wait vs compile-time split), job
	// lifecycle records, and — threaded into core.Options.Log — the
	// pipeline's stage-boundary records. Every record of one request
	// carries the trace_id the response's Epoc-Trace-Id header carries.
	// Nil disables logging entirely.
	Log *logx.Logger

	// Clock injects the time source for deadlines, queue-wait
	// accounting and Retry-After estimates; nil means the real clock.
	// Tests inject a faultclock.Fake so every duration in the suite is
	// deterministic, per the repo's no-sleeps testing convention.
	Clock faultclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CompileWorkers <= 0 {
		c.CompileWorkers = 1
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.DeadlineGrace <= 0 {
		c.DeadlineGrace = 5 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxQubits <= 0 {
		c.MaxQubits = 256
	}
	return c
}

// Server is the compile service: shared caches, the admission queue,
// the worker pool, and the HTTP handlers. Create with New, expose
// via Handler, stop with Shutdown.
type Server struct {
	cfg Config

	mux   *http.ServeMux
	cache *synth.Cache   // process-wide synthesis cache (goroutine-safe, coalescing)
	lib   *pulse.Library // process-wide pulse library (goroutine-safe)
	store *store.Store   // persistent backing for both caches; nil without Config.StorePath
	rec   *obs.Recorder  // server-wide counters: serve/*, plus expvar export

	queue chan *job
	log   *logx.Logger // nil-safe structured logging (Config.Log)

	inflight atomic.Int64 // jobs a worker is actively compiling

	mu       sync.Mutex // guards draining, jobs, finished, avgMS
	draining bool
	jobs     map[string]*job
	finished []string // finished job ids in completion order (eviction ring)
	avgMS    float64  // EWMA of compile wall time, for Retry-After

	workerWG   sync.WaitGroup
	inflightWG sync.WaitGroup // accepted jobs not yet finished

	started time.Time

	// compile is the pipeline entry point; tests swap it to control
	// timing without sleeps. Production is core.CompileContext.
	compile func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error)
}

// New builds a Server and starts its worker pool. The caller owns the
// HTTP listener (http.Server{Handler: s.Handler()}); Shutdown drains
// compiles independently of the listener's lifecycle. With
// Config.StorePath set, New opens the persistent store and warms the
// process-wide caches from it before the first request; an unopenable
// store fails construction rather than silently serving cold.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   synth.NewCache(),
		lib:     pulse.NewLibrary(true),
		rec:     obs.New(),
		queue:   make(chan *job, cfg.QueueDepth),
		log:     cfg.Log,
		jobs:    map[string]*job{},
		started: time.Now(),
		compile: core.CompileContext,
	}
	if cfg.StorePath != "" {
		st, err := core.OpenStore(cfg.StorePath, s.defaultOptions())
		if err != nil {
			return nil, fmt.Errorf("serve: open store: %w", err)
		}
		s.store = st
		s.rec.Add("serve/store/warm_pulses", int64(st.WarmLibrary(s.lib)))
		s.rec.Add("serve/store/warm_synth", int64(st.WarmSynthCache(s.cache)))
	}
	s.routes()
	if cfg.Debug {
		debugsrv.Register(s.mux, s.rec)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// defaultOptions is the core configuration of a request that sets no
// options — the configuration the store namespace is derived from.
// The probe circuit's width is irrelevant: the namespace deliberately
// excludes qubit count (pulses are per-block).
func (s *Server) defaultOptions() core.Options {
	opts, apiErr := s.buildOptions(&RequestOptions{}, circuit.New(2))
	if apiErr != nil {
		// Empty request options cannot fail validation; reaching here is
		// a bug in buildOptions itself.
		panic(fmt.Sprintf("serve: default options rejected: %v", apiErr.Message))
	}
	return opts
}

// Handler returns the server's handler: the /v1 API and /metrics
// (plus, when Config.Debug is set, the /debug endpoints), wrapped in
// the access-log middleware that stamps Epoc-Trace-Id on every
// response and — with Config.Log set — emits one structured access
// record per request.
func (s *Server) Handler() http.Handler { return s.withAccessLog(s.mux) }

// gauges reads the instantaneous admission-control state for the
// Prometheus exposition: the queue-pressure signals that counters
// alone (429s after the fact) cannot show.
func (s *Server) gauges() []metrics.Gauge {
	s.mu.Lock()
	avg := s.avgMS
	draining := s.draining
	s.mu.Unlock()
	drainingVal := 0.0
	if draining {
		drainingVal = 1
	}
	return []metrics.Gauge{
		{Name: "epoc_serve_queue_depth", Help: "Jobs waiting in the admission queue.", Value: float64(len(s.queue))},
		{Name: "epoc_serve_queue_capacity", Help: "Admission queue capacity (Config.QueueDepth).", Value: float64(s.cfg.QueueDepth)},
		{Name: "epoc_serve_inflight", Help: "Jobs a worker is actively compiling.", Value: float64(s.inflight.Load())},
		{Name: "epoc_serve_workers", Help: "Compile worker pool size.", Value: float64(s.cfg.Workers)},
		{Name: "epoc_serve_avg_compile_ms", Help: "EWMA of compile wall time in milliseconds (the Retry-After basis).", Value: avg},
		{Name: "epoc_serve_draining", Help: "1 while Shutdown drains, else 0.", Value: drainingVal},
	}
}

func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock.Now()
	}
	return time.Now()
}

// newID mints a job ID: 12 hex chars of crypto/rand entropy. Job IDs
// double as default trace IDs, so they must be unguessable enough not
// to collide across a fleet.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in much deeper
		// trouble than job naming; degrade to a constant-free panic.
		panic(fmt.Sprintf("serve: crypto/rand: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// admit enqueues a prepared job, answering false with a reason when
// the server is draining or the queue is full. The queue send and the
// draining check sit under one lock so Shutdown can close the queue
// without racing an in-flight send.
func (s *Server) admit(j *job) (ok bool, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, true
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.inflightWG.Add(1)
		return true, false
	default:
		return false, false
	}
}

// retryAfter estimates seconds until a queue slot frees: the work
// ahead of a new arrival (queued + worst-case running) divided by the
// pool width, scaled by the EWMA compile time. Always ≥ 1 so clients
// never busy-loop.
func (s *Server) retryAfter() int {
	s.mu.Lock()
	avg := s.avgMS
	s.mu.Unlock()
	if avg <= 0 {
		return 1
	}
	ahead := len(s.queue) + s.cfg.Workers
	sec := int(avg*float64(ahead)/float64(s.cfg.Workers)/1000 + 0.999)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// observeCompileMS folds one compile's wall time into the EWMA behind
// Retry-After (α = 0.3: reactive to load shifts, stable per-request).
func (s *Server) observeCompileMS(ms float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.avgMS <= 0 {
		s.avgMS = ms
	} else {
		s.avgMS = 0.7*s.avgMS + 0.3*ms
	}
}

// lookup returns a job by ID.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// finish records a job's completion for eviction accounting and
// releases its inflight slot.
func (s *Server) finish(j *job) {
	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	s.inflightWG.Done()
}

// worker drains the admission queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one admitted job end to end: skip if the client
// vanished while queued, fail if its deadline already passed, else
// compile under the derived context and record the outcome.
func (s *Server) runJob(j *job) {
	defer s.finish(j)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	// Fold the per-job recorder — which owns the stage timers and cache
	// counters — into the server-wide recorder on every exit path, so
	// /metrics aggregates all requests.
	defer func() { s.rec.Merge(j.rec.Snapshot()) }()
	start := s.now()
	j.setQueueMS(start)
	queueMS := float64(start.Sub(j.admitted).Nanoseconds()) / 1e6
	s.rec.Observe("serve/queue_ms", queueMS)

	if j.aborted() {
		s.rec.Add("serve/canceled", 1)
		j.log.Warn("job canceled", "reason", "client_gone_queued", "queue_ms", queueMS)
		j.complete(statusCanceled, nil, nil, errClientGone)
		return
	}
	remaining := j.deadline.Sub(start)
	if remaining <= 0 {
		s.rec.Add("serve/deadline_expired_queued", 1)
		j.log.Warn("job failed", "reason", "deadline_expired_queued", "queue_ms", queueMS)
		j.complete(statusFailed, nil, nil, &apiError{
			Status: http.StatusGatewayTimeout, Code: "deadline_exceeded",
			Message: "deadline expired while the request was queued",
		})
		return
	}

	// Deadline → budget mapping (DESIGN.md §11): the soft deadline
	// becomes Budgets.Total so the pipeline degrades to fit; the hard
	// context deadline sits DeadlineGrace later as a backstop for a
	// compile that cannot reach a degrade checkpoint. The hard
	// deadline is real-time only — under an injected fake clock the
	// budget machinery (which reads the same fake) is the sole timer.
	opts := j.opts
	if opts.Budgets.Total == 0 || opts.Budgets.Total > remaining {
		opts.Budgets.Total = remaining
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if s.cfg.Clock == nil {
		ctx, cancel = context.WithDeadline(j.baseCtx, time.Now().Add(remaining+s.cfg.DeadlineGrace))
	} else {
		ctx, cancel = context.WithCancel(j.baseCtx)
	}
	defer cancel()
	j.setCancel(cancel)

	j.events.append(obs.Event{Time: start, Stage: "serve", Msg: fmt.Sprintf(
		"compiling circuit=%s qubits=%d gates=%d strategy=%s budget=%s",
		j.circName, j.circ.NumQubits, j.circ.Len(), opts.Strategy, opts.Budgets.Total)})
	if j.log.Enabled() {
		j.log.Info("job start",
			"circuit", j.circName,
			"qubits", j.circ.NumQubits,
			"gates", j.circ.Len(),
			"strategy", string(opts.Strategy),
			"queue_ms", queueMS)
	}

	res, err := s.tracedCompile(ctx, j, opts)
	elapsed := s.now().Sub(start)
	ms := float64(elapsed.Nanoseconds()) / 1e6
	s.observeCompileMS(ms)
	s.rec.Observe("serve/compile_ms", ms)
	j.setCompileMS(ms)

	if err != nil {
		if j.aborted() || ctx.Err() != nil {
			s.rec.Add("serve/canceled", 1)
			j.log.Warn("job canceled", "queue_ms", queueMS, "compile_ms", ms, "err", err.Error())
			j.complete(statusCanceled, nil, nil, &apiError{
				Status: http.StatusGatewayTimeout, Code: "canceled",
				Message: fmt.Sprintf("compile canceled: %v", err),
			})
			return
		}
		s.rec.Add("serve/failed", 1)
		j.log.Error("job failed", "queue_ms", queueMS, "compile_ms", ms, "err", err.Error())
		j.complete(statusFailed, nil, nil, &apiError{
			Status: http.StatusInternalServerError, Code: "compile_failed",
			Message: err.Error(),
		})
		return
	}
	s.rec.Add("serve/completed", 1)
	if res.Degraded {
		s.rec.Add("serve/degraded", 1)
	}
	if j.log.Enabled() {
		j.log.Info("job done",
			"queue_ms", queueMS,
			"compile_ms", ms,
			"latency_ns", res.Latency,
			"fidelity", res.Fidelity,
			"degraded", res.Degraded,
			"degrade_reasons", strings.Join(res.DegradeReasons, ","))
	}
	m := s.buildManifest(j, res)
	j.complete(statusDone, res, m, nil)
}

// tracedCompile wraps the pipeline call in the request's root span,
// carrying the trace ID every child span inherits by ancestry.
func (s *Server) tracedCompile(ctx context.Context, j *job, opts core.Options) (*core.Result, error) {
	tsp := j.tracer.Start("serve/request").
		SetStr("trace_id", j.traceID).
		SetStr("circuit", j.circName)
	defer tsp.End()
	return s.compile(ctx, j.circ, opts)
}

// buildManifest bundles a finished compile into the PR-5 manifest
// envelope: result metrics, obs snapshot, trace summary, and a config
// fingerprint over every knob that shaped the output. The trace ID is
// deliberately not part of Config — it would make every fingerprint
// unique and defeat baseline comparison.
func (s *Server) buildManifest(j *job, res *core.Result) *report.Manifest {
	m := &report.Manifest{
		Version:        report.ManifestVersion,
		Circuit:        j.circName,
		Strategy:       string(res.Strategy),
		Config:         j.configMap(),
		Metrics:        res.MetricMap(),
		Degraded:       res.Degraded,
		DegradeReasons: res.DegradeReasons,
		Obs:            j.rec.Snapshot(),
		Trace:          j.tracer.Summary(),
	}
	m.Fingerprint()
	return m
}

// Shutdown gracefully drains the server: new work is rejected with
// 503, queued and running compiles finish, and the worker pool exits.
// If ctx expires first, the remaining compiles are canceled (they
// abort promptly at their next pipeline checkpoint) and Shutdown
// still waits for the pool to join before returning ctx's error.
// The HTTP listener is the caller's to close — drain compiles first,
// then http.Server.Shutdown, so in-flight sync responses flush.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflightWG.Wait()
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.closeStore()
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.abort()
		}
		s.mu.Unlock()
		<-done
		_ = s.closeStore()
		return ctx.Err()
	}
}

// closeStore flushes and closes the persistent store. It deliberately
// does NOT harvest the process-wide caches here: they may hold entries
// computed under per-request option overrides (namespace-mismatched
// compiles share the in-memory caches but must never reach the store),
// and only the per-compile harvest knows the compile's options matched
// the namespace. The cost is losing the partial learning of compiles
// canceled mid-drain, which is the safe side of the trade.
func (s *Server) closeStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// job statuses, as reported in envelopes and the events stream.
const (
	statusQueued   = "queued"
	statusRunning  = "running"
	statusDone     = "done"
	statusFailed   = "failed"
	statusCanceled = "canceled"
)

// errClientGone marks a job whose client disconnected while it was
// still queued; no response is ever written for it.
var errClientGone = &apiError{
	Status: http.StatusGatewayTimeout, Code: "canceled",
	Message: "client disconnected before the compile started",
}

// job is one admitted compile request moving through the queue, the
// worker pool, and the retained-results map.
type job struct {
	id      string
	traceID string

	circ     *circuit.Circuit
	circName string
	opts     core.Options // budgets/ctx applied at dequeue
	baseCtx  context.Context
	deadline time.Time     // soft deadline in the server clock's domain
	softFor  time.Duration // the deadline duration, for reporting
	admitted time.Time

	rec    *obs.Recorder
	tracer *trace.Tracer
	events *eventLog
	log    *logx.Logger // request-scoped: carries job + trace_id attrs

	mu        sync.Mutex
	state     string
	res       *core.Result
	manifest  *report.Manifest
	apiErr    *apiError
	queueMS   float64
	compileMS float64
	cancelFn  context.CancelFunc
	abortFlag bool

	done chan struct{}
}

func (j *job) setQueueMS(start time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.queueMS = float64(start.Sub(j.admitted).Nanoseconds()) / 1e6
	if j.state == statusQueued {
		j.state = statusRunning
	}
}

func (j *job) setCompileMS(ms float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.compileMS = ms
}

func (j *job) setCancel(fn context.CancelFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelFn = fn
	if j.abortFlag {
		fn()
	}
}

// abort requests cancellation: a queued job is skipped at dequeue, a
// running one has its compile context canceled.
func (j *job) abort() {
	j.mu.Lock()
	fn := j.cancelFn
	j.abortFlag = true
	j.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func (j *job) aborted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.abortFlag
}

// complete transitions the job to a terminal state, emits the final
// stream event, and releases every waiter.
func (j *job) complete(state string, res *core.Result, m *report.Manifest, apiErr *apiError) {
	j.mu.Lock()
	j.state = state
	j.res = res
	j.manifest = m
	j.apiErr = apiErr
	j.mu.Unlock()

	msg := "done status=" + state
	if res != nil {
		msg = fmt.Sprintf("done status=%s latency_ns=%.1f fidelity=%.5f degraded=%t",
			state, res.Latency, res.Fidelity, res.Degraded)
	} else if apiErr != nil {
		msg = fmt.Sprintf("done status=%s code=%s", state, apiErr.Code)
	}
	j.events.append(obs.Event{Time: time.Now(), Stage: "serve", Msg: msg})
	j.events.close()
	close(j.done)
}

// snapshotState reads the job's mutable fields consistently.
func (j *job) snapshotState() (state string, res *core.Result, m *report.Manifest, apiErr *apiError, queueMS, compileMS float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.res, j.manifest, j.apiErr, j.queueMS, j.compileMS
}

// configMap flattens the knobs that shaped this compile for the
// manifest fingerprint; keep in sync with buildOptions.
func (j *job) configMap() map[string]string {
	mode := "full"
	if j.opts.Mode == core.QOCEstimate {
		mode = "estimate"
	}
	return map[string]string{
		"mode":        mode,
		"workers":     fmt.Sprintf("%d", j.opts.Workers),
		"grape_iters": fmt.Sprintf("%d", j.opts.GRAPEIters),
		"route":       fmt.Sprintf("%t", j.opts.Route),
		"seed":        fmt.Sprintf("%d", j.opts.Seed),
		"deadline_ms": fmt.Sprintf("%d", j.softFor.Milliseconds()),
	}
}

// loadCircuit resolves a request's circuit source: inline QASM or a
// built-in benchmark name.
func loadCircuit(req *CompileRequest) (*circuit.Circuit, string, *apiError) {
	switch {
	case req.QASM != "" && req.Circuit != "":
		return nil, "", badRequest("request sets both qasm and circuit; pick one")
	case req.QASM != "":
		prog, err := parseQASM(req.QASM)
		if err != nil {
			return nil, "", badRequest(fmt.Sprintf("invalid qasm: %v", err))
		}
		return prog, qasmName(req.QASM), nil
	case req.Circuit != "":
		c, err := benchcirc.Get(req.Circuit)
		if err != nil {
			return nil, "", &apiError{Status: http.StatusNotFound, Code: "unknown_circuit",
				Message: fmt.Sprintf("unknown benchmark circuit %q (see GET /v1/stats for the list)", req.Circuit)}
		}
		return c, req.Circuit, nil
	default:
		return nil, "", badRequest("request needs qasm (OpenQASM 2.0 source) or circuit (benchmark name)")
	}
}

// device builds the target device for a circuit. The service models
// the same IBM-flavoured linear chain the CLIs use; multi-device
// support is a config axis for a later PR.
func device(c *circuit.Circuit) *hardware.Device {
	return hardware.LinearChain(c.NumQubits)
}
