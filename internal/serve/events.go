package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"epoc/internal/obs"
)

// eventLog is a job's progress stream: an append-only event list with
// broadcast wakeups, fed by the job's obs recorder sink (GRAPE/CRAB
// convergence, duration-search probes) and the server's lifecycle
// events (queued, compiling, done). Unlike the recorder's snapshot
// buffer it is unbounded per job — jobs are bounded by RetainJobs and
// a compile's event volume is bounded by its budgets — and it
// supports any number of late or concurrent subscribers: each replays
// from the start, then follows live until close.
type eventLog struct {
	mu      sync.Mutex
	events  []obs.Event
	changed chan struct{} // closed and replaced on every append; closed for good on close
	closed  bool
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// append adds an event and wakes every waiting subscriber. Appends
// after close are dropped (the final lifecycle event wins the race
// against a last optimizer event by construction: the recorder sink
// is synchronous and complete() runs after the compile returns).
func (l *eventLog) append(e obs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, e)
	close(l.changed)
	l.changed = make(chan struct{})
}

// close ends the stream; subscribers drain what remains and return.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.changed)
}

// next returns the events from position i onward, the channel to wait
// on for more, and whether the log is complete.
func (l *eventLog) next(i int) (evs []obs.Event, wait <-chan struct{}, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < len(l.events) {
		evs = append(evs, l.events[i:]...)
	}
	return evs, l.changed, l.closed
}

// StreamEvent is one line of the GET /v1/compile/{id}/events body.
// The stream is application/x-ndjson: one JSON object per line,
// flushed as produced, ending with a line where Done is true.
type StreamEvent struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time,omitempty"`
	Stage string    `json:"stage,omitempty"`
	Msg   string    `json:"msg,omitempty"`

	// Final-line fields.
	Done   bool   `json:"done,omitempty"`
	Status string `json:"status,omitempty"`
}

// handleEvents streams a job's progress as JSON lines: replay from
// the first event, follow live, terminate with {"done":true} once the
// job completes. Disconnecting the stream does not cancel the compile
// — only the compile request's own connection owns that.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: "unknown_job",
			Message: "no such compile job"})
		return
	}
	w.Header().Set(TraceIDHeader, j.traceID)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	seq := 0
	for {
		evs, wait, done := j.events.next(seq)
		for _, e := range evs {
			line := StreamEvent{Seq: seq, Time: e.Time, Stage: e.Stage, Msg: e.Msg}
			seq++
			if err := enc.Encode(line); err != nil {
				return // subscriber gone
			}
		}
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			state, _, _, _, _, _ := j.snapshotState()
			// Terminal line; encode errors mean the subscriber left.
			_ = enc.Encode(StreamEvent{Seq: seq, Done: true, Status: state})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}
