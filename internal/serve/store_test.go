package serve

// Persistent-store integration: these tests run the real pipeline
// (no stubbed compile) against tiny circuits, so a "restarted" server
// is just a second Server over the same store directory.

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"
)

// warmQASM is the restart-warm fixture: small enough that a full-GRAPE
// compile stays in test-friendly time, non-trivial enough to persist
// several pulse records.
const warmQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rx(0.5) q[0];
ry(0.25) q[1];
cx q[0],q[1];
rx(0.17) q[1];
`

func compileWarmQASM(t *testing.T, s *Server) *CompileResponse {
	t.Helper()
	w := post(s, `{"qasm":`+jsonString(warmQASM)+`}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("compile: status %d, body %s", w.Code, w.Body.String())
	}
	resp := decodeEnvelope(t, w)
	if resp.Status != statusDone || resp.Manifest == nil {
		t.Fatalf("compile did not finish: %+v", resp)
	}
	return resp
}

func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func statsStore(t *testing.T, s *Server) *StoreTotals {
	t.Helper()
	w := get(s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: status %d", w.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	return stats.Store
}

// TestServeRestartAnswersWarmFromStore is the serving half of the
// tentpole: a daemon restarted over the same store directory answers a
// repeat circuit without a single GRAPE run, with identical metrics.
func TestServeRestartAnswersWarmFromStore(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Config{Workers: 1, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := compileWarmQASM(t, s1)
	coldQOC := cold.Manifest.Metrics["qoc_runs"]
	if coldQOC == 0 {
		t.Fatal("cold compile ran no QOC — fixture too trivial")
	}
	st1 := statsStore(t, s1)
	if st1 == nil {
		t.Fatal("stats carries no store block despite StorePath")
	}
	if st1.PulseHarvested == 0 || st1.Flushed == 0 {
		t.Fatalf("nothing persisted: %+v", st1)
	}
	shutdownServer(t, s1)

	// The "restarted daemon": a fresh Server, same directory.
	s2, err := New(Config{Workers: 1, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	st2 := statsStore(t, s2)
	if st2 == nil || st2.PulseRecords == 0 || st2.WarmPulses == 0 {
		t.Fatalf("restarted server did not warm from disk: %+v", st2)
	}
	if st2.Corrupt != 0 {
		t.Fatalf("restart found corrupt records: %+v", st2)
	}
	warm := compileWarmQASM(t, s2)
	if got := warm.Manifest.Metrics["qoc_runs"]; got != 0 {
		t.Fatalf("warm compile ran %v QOC optimizations, want 0", got)
	}
	for _, metric := range []string{"latency_ns", "fidelity", "pulses"} {
		if warm.Manifest.Metrics[metric] != cold.Manifest.Metrics[metric] {
			t.Fatalf("%s diverged across restart: %v vs %v",
				metric, warm.Manifest.Metrics[metric], cold.Manifest.Metrics[metric])
		}
	}
}

// TestServeStoreSkipsMismatchedRequests: a request whose options leave
// the server's namespace (different grape_iters) must compile fine and
// leave the store untouched.
func TestServeStoreSkipsMismatchedRequests(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}

	w := post(s, `{"qasm":`+jsonString(warmQASM)+`,"options":{"grape_iters":37}}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("mismatched compile: status %d, body %s", w.Code, w.Body.String())
	}
	if st := statsStore(t, s); st.PulseHarvested != 0 || st.Flushed != 0 {
		t.Fatalf("mismatched request reached the store: %+v", st)
	}

	// Laundering guard: a matched compile of the same circuit must not
	// library-hit the mismatched compile's in-memory pulses (and then
	// harvest them into a namespace whose physics they don't satisfy) —
	// it must pay for its own GRAPE runs under the namespace's options.
	matched := compileWarmQASM(t, s)
	if got := matched.Manifest.Metrics["qoc_runs"]; got == 0 {
		t.Fatal("matched compile reused the mismatched compile's pulses")
	}

	// The shutdown path must not smuggle the mismatched compile's
	// pulses in either: only what the matched compile harvested may be
	// on disk, and a restarted server must serve it warm.
	shutdownServer(t, s)
	s2, err := New(Config{Workers: 1, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s2)
	st := statsStore(t, s2)
	if st.PulseRecords == 0 || st.WarmPulses == 0 {
		t.Fatalf("matched compile's entries did not persist: %+v", st)
	}
	warm := compileWarmQASM(t, s2)
	if got := warm.Manifest.Metrics["qoc_runs"]; got != 0 {
		t.Fatalf("restart re-ran %v QOC optimizations for the matched circuit", got)
	}
}

// TestTwoServersSharedStoreDir runs two live servers over one store
// directory — two daemons on one host — compiling concurrently. The
// flock + content-addressed writes must keep the directory coherent:
// a third server opened afterwards sees zero corrupt records and
// serves the union warm.
func TestTwoServersSharedStoreDir(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Workers: 2, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Workers: 2, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}

	qasms := []string{
		warmQASM,
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nrx(0.9) q[0];\ncx q[0],q[1];\n",
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		srv := s1
		if i%2 == 1 {
			srv = s2
		}
		go func(srv *Server, qasm string) {
			w := post(srv, `{"qasm":`+jsonString(qasm)+`}`, nil)
			if w.Code != http.StatusOK {
				done <- &apiErrorErr{code: w.Code, body: w.Body.String()}
				return
			}
			done <- nil
		}(srv, qasms[i%len(qasms)])
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	shutdownServer(t, s1)
	shutdownServer(t, s2)

	s3, err := New(Config{Workers: 1, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s3)
	st := statsStore(t, s3)
	if st.Corrupt != 0 {
		t.Fatalf("shared-dir writes corrupted the store: %+v", st)
	}
	if st.PulseRecords == 0 || st.WarmPulses == 0 {
		t.Fatalf("third server loaded nothing: %+v", st)
	}
	warm := compileWarmQASM(t, s3)
	if got := warm.Manifest.Metrics["qoc_runs"]; got != 0 {
		t.Fatalf("third server re-ran %v QOC optimizations", got)
	}
}

// apiErrorErr adapts an HTTP failure into an error for channel plumbing.
type apiErrorErr struct {
	code int
	body string
}

func (e *apiErrorErr) Error() string {
	return "compile failed: status " + http.StatusText(e.code) + ": " + e.body
}

// TestServeStoreOpenFailure: an unopenable store path must fail New
// rather than silently serving cold.
func TestServeStoreOpenFailure(t *testing.T) {
	// A regular file where the store needs a directory.
	path := t.TempDir() + "/flat"
	if err := os.WriteFile(path, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{StorePath: path}); err == nil {
		t.Fatal("New succeeded with an unusable store path")
	}
}
