package serve

// Telemetry suite: the Prometheus endpoint under concurrent load and
// the access-log ↔ trace-header correlation contract from ISSUE 10.
// Every /metrics body is run through the package's own strict parser,
// so a format regression fails here before any external scraper sees
// it.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/logx"
	"epoc/internal/metrics"
)

// parseMetrics scrapes GET /metrics and strict-parses the body,
// returning families keyed by name.
func parseMetrics(t *testing.T, s *Server) map[string]metrics.Family {
	t.Helper()
	w := get(s, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	fams, err := metrics.Parse(w.Body.String())
	if err != nil {
		t.Fatalf("strict parse of /metrics failed: %v\nbody:\n%s", err, w.Body.String())
	}
	byName := make(map[string]metrics.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// TestMetricsEndpoint pins what a scrape of a live server exposes:
// serve counters, the queue/inflight gauge set, the queue-wait and
// compile-time distributions, and — via the per-job recorder merge —
// the pipeline's stage histograms.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			// Stand in for the pipeline's stage spans: the per-job
			// recorder must surface in the server-wide scrape.
			sp := opts.Obs.Span("stage/qoc")
			sp.End()
			return okResult(), nil
		})

	for i := 0; i < 3; i++ {
		if w := post(s, `{"circuit":"ghz"}`, nil); w.Code != http.StatusOK {
			t.Fatalf("compile %d: %d %s", i, w.Code, w.Body.String())
		}
	}

	fams := parseMetrics(t, s)
	for _, want := range []string{
		"epoc_serve_requests_total",
		"epoc_serve_accepted_total",
		"epoc_serve_queue_depth",
		"epoc_serve_queue_capacity",
		"epoc_serve_inflight",
		"epoc_serve_workers",
		"epoc_serve_avg_compile_ms",
		"epoc_serve_draining",
		"epoc_serve_queue_ms",
		"epoc_serve_compile_ms",
		"epoc_stage_seconds",
	} {
		if _, ok := fams[want]; !ok {
			t.Errorf("scrape missing family %s", want)
		}
	}
	if f, ok := fams["epoc_stage_seconds"]; ok {
		found := false
		for _, sm := range f.Samples {
			if sm.Labels["stage"] == "qoc" {
				found = true
			}
		}
		if !found {
			t.Errorf("epoc_stage_seconds has no stage=\"qoc\" series: %+v", f.Samples)
		}
	}
}

// TestScrapeWhileCompiling hammers /metrics and /v1/stats while
// compiles are queued and in flight; with -race this doubles as the
// data-race check on the recorder merge, the gauges and the EWMA.
func TestScrapeWhileCompiling(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			started <- struct{}{}
			<-release
			return okResult(), nil
		})

	const jobs = 4
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(s, `{"circuit":"ghz"}`, nil)
		}()
	}
	// Both workers are inside the stub before any scrape runs.
	<-started
	<-started

	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for n := 0; n < 25; n++ {
				w := get(s, "/metrics")
				if _, err := metrics.Parse(w.Body.String()); err != nil {
					t.Errorf("scrape %d invalid: %v", n, err)
					return
				}
				if w := get(s, "/v1/stats"); w.Code != http.StatusOK {
					t.Errorf("stats scrape: %d", w.Code)
					return
				}
			}
		}()
	}
	scrapers.Wait()

	// With both workers parked in the stub, the inflight gauge and
	// /v1/stats must agree on 2.
	fams := parseMetrics(t, s)
	if f, ok := fams["epoc_serve_inflight"]; !ok || len(f.Samples) != 1 || f.Samples[0].Value != 2 {
		t.Errorf("epoc_serve_inflight while 2 compiles run: %+v", f)
	}
	var stats StatsResponse
	if err := json.Unmarshal(get(s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queue.Inflight != 2 {
		t.Errorf("stats inflight = %d, want 2", stats.Queue.Inflight)
	}

	close(release)
	wg.Wait()
}

// syncBuffer makes a bytes.Buffer safe for the server's concurrent
// log writers (request goroutines and compile workers).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) records(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	dec := json.NewDecoder(bytes.NewReader(b.buf.Bytes()))
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("log line not JSON: %v", err)
		}
		out = append(out, m)
	}
	return out
}

// TestAccessLogTraceCorrelation pins the acceptance criterion: every
// access-log line carries the same trace ID the response header does,
// whether the caller supplied one or the server minted it, and the
// job-lifecycle records share it too.
func TestAccessLogTraceCorrelation(t *testing.T) {
	buf := &syncBuffer{}
	s := newTestServer(t, Config{Workers: 1, Log: logx.New(buf, slog.LevelInfo)},
		func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
			return okResult(), nil
		})

	w := post(s, `{"circuit":"ghz"}`, map[string]string{TraceIDHeader: "caller-trace.07"})
	if w.Code != http.StatusOK {
		t.Fatalf("compile: %d %s", w.Code, w.Body.String())
	}
	hdr := w.Header().Get(TraceIDHeader)
	if hdr != "caller-trace.07" {
		t.Fatalf("response header trace = %q", hdr)
	}
	// A minted-trace request (no inbound header) and a plain read.
	w2 := post(s, `{"circuit":"ghz"}`, nil)
	hdr2 := w2.Header().Get(TraceIDHeader)
	if hdr2 == "" {
		t.Fatal("minted trace header empty")
	}
	wStats := get(s, "/v1/stats")
	statsTrace := wStats.Header().Get(TraceIDHeader)
	if statsTrace == "" {
		t.Fatal("stats response has no trace header")
	}

	recs := buf.records(t)
	var accessSeen int
	byTrace := map[string][]map[string]any{}
	for _, m := range recs {
		tid, _ := m["trace_id"].(string)
		if tid == "" {
			t.Fatalf("log record without trace_id: %v", m)
		}
		byTrace[tid] = append(byTrace[tid], m)
		if m["msg"] == "request" {
			accessSeen++
		}
	}
	if accessSeen != 3 {
		t.Fatalf("expected 3 access records, saw %d: %v", accessSeen, recs)
	}
	for _, want := range []string{hdr, hdr2, statsTrace} {
		found := false
		for _, m := range byTrace[want] {
			if m["msg"] == "request" {
				found = true
			}
		}
		if !found {
			t.Errorf("no access record carries trace %q (response header value)", want)
		}
	}
	// Compile requests also log the queue/compile split and the job
	// lifecycle under the same trace.
	var sawSplit, sawJobDone bool
	for _, m := range byTrace[hdr] {
		if m["msg"] == "request" {
			if _, ok := m["queue_ms"].(float64); ok {
				sawSplit = true
			}
			if m["path"] != "/v1/compile" || m["status"] != float64(http.StatusOK) {
				t.Errorf("access record fields: %v", m)
			}
		}
		if m["msg"] == "job done" {
			sawJobDone = true
			if _, ok := m["compile_ms"].(float64); !ok {
				t.Errorf("job done without compile_ms: %v", m)
			}
		}
	}
	if !sawSplit {
		t.Errorf("compile access record missing queue_ms/compile_ms split: %v", byTrace[hdr])
	}
	if !sawJobDone {
		t.Errorf("no 'job done' record under trace %q: %v", hdr, byTrace[hdr])
	}
}

// TestMetricsMethodNotAllowed: the exposition endpoint is read-only.
func TestMetricsMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1}, func(ctx context.Context, c *circuit.Circuit, opts core.Options) (*core.Result, error) {
		return okResult(), nil
	})
	req := httptest.NewRequest(http.MethodDelete, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /metrics: %d, want 405", w.Code)
	}
}
