package densesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/sim"
)

const tol = 1e-9

func TestNewDensityIsPureZero(t *testing.T) {
	d := NewDensity(2)
	if math.Abs(real(d.Trace())-1) > tol {
		t.Fatal("trace != 1")
	}
	if math.Abs(d.Purity()-1) > tol {
		t.Fatal("purity != 1")
	}
	v := make([]complex128, 4)
	v[0] = 1
	if math.Abs(d.FidelityWithPure(v)-1) > tol {
		t.Fatal("fidelity with |00> != 1")
	}
}

func TestUnitaryEvolutionMatchesStateVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(3, 15, rng)
	s := sim.RunCircuit(c)
	d := NewDensity(3)
	for _, op := range c.Ops {
		d.ApplyOp(op)
	}
	if f := d.FidelityWithPure(s.Amp); math.Abs(f-1) > 1e-8 {
		t.Fatalf("density evolution diverged from state vector: %v", f)
	}
	if math.Abs(d.Purity()-1) > 1e-8 {
		t.Fatal("unitary evolution lost purity")
	}
}

func TestDepolarizeFullyMixes(t *testing.T) {
	d := NewDensity(1)
	d.Depolarize(1, []int{0})
	// Full-strength single-qubit depolarizing sends any state to I/2.
	if math.Abs(real(d.Rho.At(0, 0))-0.5) > tol || math.Abs(real(d.Rho.At(1, 1))-0.5) > tol {
		t.Fatalf("not maximally mixed:\n%v", d.Rho)
	}
	if math.Abs(d.Purity()-0.5) > tol {
		t.Fatalf("purity %v, want 0.5", d.Purity())
	}
}

func TestDepolarizeTracePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDensity(2)
	d.ApplyUnitary(linalg.RandomUnitary(4, rng), []int{0, 1})
	d.Depolarize(0.2, []int{0})
	if math.Abs(real(d.Trace())-1) > 1e-9 {
		t.Fatalf("trace after channel: %v", d.Trace())
	}
	d.Depolarize(0.3, []int{0, 1})
	if math.Abs(real(d.Trace())-1) > 1e-9 {
		t.Fatal("two-qubit channel broke the trace")
	}
}

func TestAmplitudeDampDecaysExcitedState(t *testing.T) {
	d := NewDensity(1)
	d.ApplyUnitary(gate.New(gate.X).Matrix(), []int{0}) // |1>
	d.AmplitudeDamp(0.4, 0)
	// P(1) = 1-γ.
	if math.Abs(real(d.Rho.At(1, 1))-0.6) > tol {
		t.Fatalf("excited population %v, want 0.6", d.Rho.At(1, 1))
	}
	if math.Abs(real(d.Trace())-1) > tol {
		t.Fatal("trace broken")
	}
	// γ=1 fully relaxes to |0>.
	d.AmplitudeDamp(1, 0)
	if math.Abs(real(d.Rho.At(0, 0))-1) > tol {
		t.Fatal("full damping did not reach the ground state")
	}
}

func TestDephaseKillsCoherence(t *testing.T) {
	d := NewDensity(1)
	d.ApplyUnitary(gate.New(gate.H).Matrix(), []int{0}) // |+>
	d.Dephase(1, 0)
	// Full dephasing (λ=1 means Z with prob 1... which is unitary).
	// Use λ=0.5: coherences vanish entirely.
	d2 := NewDensity(1)
	d2.ApplyUnitary(gate.New(gate.H).Matrix(), []int{0})
	d2.Dephase(0.5, 0)
	if cAbs(d2.Rho.At(0, 1)) > tol {
		t.Fatalf("off-diagonal survived λ=0.5 dephasing: %v", d2.Rho.At(0, 1))
	}
	// Populations untouched.
	if math.Abs(real(d2.Rho.At(0, 0))-0.5) > tol {
		t.Fatal("dephasing changed populations")
	}
	_ = d
}

func TestNoisyFidelityMatchesESPRegime(t *testing.T) {
	// For small per-step infidelities, the true process fidelity should
	// track the ESP product within a factor-of-two error budget.
	rng := rand.New(rand.NewSource(7))
	var steps []Step
	esp := 1.0
	for i := 0; i < 6; i++ {
		u := linalg.RandomUnitary(4, rng)
		q := rng.Intn(2)
		f := 0.995 + 0.004*rng.Float64()
		steps = append(steps, Step{U: u, Qubits: []int{q, (q + 1) % 3}, Fidelity: f})
		esp *= f
	}
	got := NoisyFidelity(3, steps)
	if got > 1+tol || got < 0 {
		t.Fatalf("fidelity out of range: %v", got)
	}
	// ESP is a pessimistic product; the simulated fidelity must be of
	// the same order: within [esp - 3(1-esp), 1].
	lower := esp - 3*(1-esp)
	if got < lower {
		t.Fatalf("simulated fidelity %v far below ESP %v", got, esp)
	}
}

func TestNoisyFidelityPerfectPulses(t *testing.T) {
	steps := []Step{
		{U: gate.New(gate.H).Matrix(), Qubits: []int{0}, Fidelity: 1},
		{U: gate.New(gate.CX).Matrix(), Qubits: []int{0, 1}, Fidelity: 1},
	}
	if f := NoisyFidelity(2, steps); math.Abs(f-1) > 1e-9 {
		t.Fatalf("perfect pulses should give fidelity 1, got %v", f)
	}
}

func TestQuickChannelsPreserveTraceAndPositivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDensity(2)
		d.ApplyUnitary(linalg.RandomUnitary(4, rng), []int{0, 1})
		d.Depolarize(rng.Float64()*0.5, []int{rng.Intn(2)})
		d.AmplitudeDamp(rng.Float64()*0.5, rng.Intn(2))
		d.Dephase(rng.Float64()*0.5, rng.Intn(2))
		if math.Abs(real(d.Trace())-1) > 1e-8 {
			return false
		}
		// Purity in (0, 1].
		p := d.Purity()
		return p > 0 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFromPure(t *testing.T) {
	amp := []complex128{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	d := FromPure(amp)
	if d.N != 2 || math.Abs(d.Purity()-1) > tol {
		t.Fatal("FromPure broken")
	}
	if math.Abs(d.FidelityWithPure(amp)-1) > tol {
		t.Fatal("self fidelity != 1")
	}
}

func cAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

func randomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			c.Append(gate.New(gate.H), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
