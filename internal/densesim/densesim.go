// Package densesim is a density-matrix simulator with noise channels.
// It closes the loop on the compiler's fidelity accounting: a compiled
// pulse schedule can be replayed as a sequence of unitaries each
// followed by a depolarizing channel of strength 1−F, and the state
// fidelity against the ideal output compared with the schedule's ESP
// (Equation 3), which is exactly the product-of-fidelities
// approximation the paper uses.
//
// Dimensions are kept small (ρ is 4^n complex numbers); intended for
// verification, not scale.
package densesim

import (
	"fmt"
	"math"
	"math/cmplx"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
)

// Density is an n-qubit density matrix.
type Density struct {
	N   int
	Rho *linalg.Matrix

	// Conjugation scratch, allocated on first use: every channel is a
	// sum of B·ρ·B† terms, and routing them through the workspace
	// kernels with persistent buffers keeps schedule replays (one
	// conjugation per pulse step) allocation-light.
	ws       *kernel.Workspace
	tmp, out *linalg.Matrix
}

// ensureScratch lazily allocates the conjugation buffers so literal
// construction of Density (tests, callers that only read ρ) stays valid.
func (d *Density) ensureScratch() {
	if d.ws == nil {
		dim := d.Rho.Rows
		d.ws = kernel.NewWorkspace()
		d.tmp = linalg.NewMatrix(dim, dim)
		d.out = linalg.NewMatrix(dim, dim)
	}
}

// conjugate sets ρ ← b·ρ·b† with the fused adjoint kernel (b† is never
// materialized), swapping ρ with the scratch output instead of copying.
func (d *Density) conjugate(b *linalg.Matrix) {
	d.ensureScratch()
	linalg.MulInto(d.ws, d.tmp, b, d.Rho)
	linalg.MulAdjointInto(d.out, d.tmp, b)
	d.Rho, d.out = d.out, d.Rho
}

// conjugateAdd adds b·ρ·b† into dst without touching ρ.
func (d *Density) conjugateAdd(dst *linalg.Matrix, b *linalg.Matrix) {
	d.ensureScratch()
	linalg.MulInto(d.ws, d.tmp, b, d.Rho)
	linalg.MulAdjointInto(d.out, d.tmp, b)
	dst.AddInPlace(d.out)
}

// NewDensity returns |0…0⟩⟨0…0| on n qubits.
func NewDensity(n int) *Density {
	if n < 0 || n > 12 {
		panic(fmt.Sprintf("densesim: unsupported qubit count %d", n))
	}
	dim := 1 << n
	rho := linalg.NewMatrix(dim, dim)
	rho.Set(0, 0, 1)
	return &Density{N: n, Rho: rho}
}

// FromPure builds ρ = |ψ⟩⟨ψ| from an amplitude vector.
func FromPure(amp []complex128) *Density {
	n := 0
	for d := len(amp); d > 1; d >>= 1 {
		n++
	}
	dim := len(amp)
	rho := linalg.NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			rho.Set(i, j, amp[i]*cmplx.Conj(amp[j]))
		}
	}
	return &Density{N: n, Rho: rho}
}

// ApplyUnitary conjugates ρ by a unitary on the listed target qubits.
// The schedule-replay loop calls this once per pulse step; only the
// operator embedding allocates, the conjugation itself runs in the
// reused scratch.
//
//epoc:hot
func (d *Density) ApplyUnitary(u *linalg.Matrix, targets []int) {
	big := linalg.EmbedOperator(u, targets, d.N)
	d.conjugate(big)
}

// ApplyOp applies one circuit op.
func (d *Density) ApplyOp(op circuit.Op) { d.ApplyUnitary(op.G.Matrix(), op.Qubits) }

// Depolarize applies a depolarizing channel of strength p on the
// listed qubits: ρ → (1−p)·ρ + p·(Tr_T ρ ⊗ I/2^k) restricted to the
// targets, implemented via uniform Pauli twirling.
func (d *Density) Depolarize(p float64, targets []int) {
	if p <= 0 {
		return
	}
	k := len(targets)
	paulis := []*linalg.Matrix{
		linalg.Identity(2),
		gate.New(gate.X).Matrix(),
		gate.New(gate.Y).Matrix(),
		gate.New(gate.Z).Matrix(),
	}
	count := 1
	for i := 0; i < k; i++ {
		count *= 4
	}
	mixed := linalg.NewMatrix(d.Rho.Rows, d.Rho.Cols)
	for idx := 0; idx < count; idx++ {
		// Build the Pauli string for this index.
		op := linalg.Identity(1)
		rem := idx
		for q := 0; q < k; q++ {
			op = paulis[rem%4].Kron(op)
			rem /= 4
		}
		big := linalg.EmbedOperator(op, targets, d.N)
		d.conjugateAdd(mixed, big)
	}
	mixed.ScaleInPlace(complex(1/float64(count), 0))
	d.Rho = d.Rho.Scale(complex(1-p, 0)).Add(mixed.Scale(complex(p, 0)))
}

// AmplitudeDamp applies an amplitude-damping channel of strength γ on
// one qubit (T1-style energy relaxation) via its two Kraus operators.
func (d *Density) AmplitudeDamp(gamma float64, q int) {
	if gamma <= 0 {
		return
	}
	k0 := linalg.FromRows([][]complex128{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}})
	k1 := linalg.FromRows([][]complex128{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}})
	b0 := linalg.EmbedOperator(k0, []int{q}, d.N)
	b1 := linalg.EmbedOperator(k1, []int{q}, d.N)
	d.applyKrausPair(b0, b1)
}

// applyKrausPair sets ρ ← b0·ρ·b0† + b1·ρ·b1† through the scratch
// kernels.
func (d *Density) applyKrausPair(b0, b1 *linalg.Matrix) {
	d.ensureScratch()
	sum := linalg.NewMatrix(d.Rho.Rows, d.Rho.Cols)
	d.conjugateAdd(sum, b0)
	d.conjugateAdd(sum, b1)
	d.Rho = sum
}

// Dephase applies a phase-damping channel of strength λ on one qubit
// (T2-style dephasing).
func (d *Density) Dephase(lambda float64, q int) {
	if lambda <= 0 {
		return
	}
	k0 := linalg.Identity(2).Scale(complex(math.Sqrt(1-lambda), 0))
	k1 := gate.New(gate.Z).Matrix().Scale(complex(math.Sqrt(lambda), 0))
	b0 := linalg.EmbedOperator(k0, []int{q}, d.N)
	b1 := linalg.EmbedOperator(k1, []int{q}, d.N)
	d.applyKrausPair(b0, b1)
}

// Trace returns Tr(ρ) (1 for a valid state).
func (d *Density) Trace() complex128 { return d.Rho.Trace() }

// Purity returns Tr(ρ²).
func (d *Density) Purity() float64 {
	return real(d.Rho.Mul(d.Rho).Trace())
}

// FidelityWithPure returns ⟨ψ|ρ|ψ⟩.
func (d *Density) FidelityWithPure(amp []complex128) float64 {
	v := d.Rho.MulVec(amp)
	var s complex128
	for i := range amp {
		s += cmplx.Conj(amp[i]) * v[i]
	}
	return real(s)
}

// NoisyFidelity replays a sequence of (unitary, qubit set, fidelity)
// steps on |0…0⟩ with a depolarizing channel of strength 1−F after
// each step, and returns the state fidelity against the noiseless
// output. This is the ground truth the ESP product approximates.
type Step struct {
	U        *linalg.Matrix
	Qubits   []int
	Fidelity float64
}

// NoisyFidelity simulates the steps with and without noise and returns
// the state fidelity between the two outcomes.
func NoisyFidelity(n int, steps []Step) float64 {
	ideal := make([]complex128, 1<<n)
	ideal[0] = 1
	for _, st := range steps {
		big := linalg.EmbedOperator(st.U, st.Qubits, n)
		ideal = big.MulVec(ideal)
	}
	noisy := NewDensity(n)
	for _, st := range steps {
		noisy.ApplyUnitary(st.U, st.Qubits)
		noisy.Depolarize(1-st.Fidelity, st.Qubits)
	}
	return noisy.FidelityWithPure(ideal)
}
