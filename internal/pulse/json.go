package pulse

import "encoding/json"

// scheduleJSON is the serialized form of a Schedule.
type scheduleJSON struct {
	NumQubits int        `json:"num_qubits"`
	Latency   float64    `json:"latency_ns"`
	Fidelity  float64    `json:"esp_fidelity"`
	Items     []itemJSON `json:"pulses"`
}

type itemJSON struct {
	Label    string      `json:"label"`
	Qubits   []int       `json:"qubits"`
	Start    float64     `json:"start_ns"`
	Duration float64     `json:"duration_ns"`
	Fidelity float64     `json:"fidelity"`
	Slots    int         `json:"slots,omitempty"`
	Amps     [][]float64 `json:"amplitudes,omitempty"`
}

// MarshalJSON serializes the schedule, including raw amplitude
// envelopes when present, for consumption by plotting or AWG tooling.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{
		NumQubits: s.NumQubits,
		Latency:   s.Latency,
		Fidelity:  s.TotalFidelity(),
		Items:     make([]itemJSON, len(s.Items)),
	}
	for i, it := range s.Items {
		out.Items[i] = itemJSON{
			Label:    it.Pulse.Label,
			Qubits:   it.Pulse.Qubits,
			Start:    it.Start,
			Duration: it.Pulse.Duration,
			Fidelity: it.Pulse.Fidelity,
			Slots:    it.Pulse.Slots,
			Amps:     it.Pulse.Amps,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a schedule serialized by MarshalJSON.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.NumQubits = in.NumQubits
	s.Latency = in.Latency
	s.Items = make([]Item, len(in.Items))
	s.fronts = nil
	for i, it := range in.Items {
		s.Items[i] = Item{
			Start: it.Start,
			Pulse: &Pulse{
				Label:    it.Label,
				Qubits:   it.Qubits,
				Duration: it.Duration,
				Fidelity: it.Fidelity,
				Slots:    it.Slots,
				Amps:     it.Amps,
			},
		}
	}
	return nil
}
