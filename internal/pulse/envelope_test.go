package pulse

import (
	"math"
	"testing"

	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/qoc"
)

func integral(samples []float64, dt float64) float64 {
	s := 0.0
	for _, v := range samples {
		s += v * dt
	}
	return s
}

func TestGaussianArea(t *testing.T) {
	for _, area := range []float64{math.Pi, math.Pi / 2, 0.3} {
		env := Gaussian(area, 32, 2)
		if got := integral(env, 2); math.Abs(got-area) > 1e-9 {
			t.Fatalf("area %v, want %v", got, area)
		}
	}
}

func TestGaussianShape(t *testing.T) {
	env := Gaussian(math.Pi, 40, 2)
	// Peak in the middle, near-zero at the edges, symmetric.
	mid := len(env) / 2
	if env[0] > env[mid]/4 || env[len(env)-1] > env[mid]/4 {
		t.Fatalf("edges not suppressed: %v ... %v vs peak %v", env[0], env[len(env)-1], env[mid])
	}
	for k := 0; k < len(env)/2; k++ {
		if math.Abs(env[k]-env[len(env)-1-k]) > 1e-9 {
			t.Fatalf("asymmetric at %d", k)
		}
	}
}

func TestGaussianSquarePlateau(t *testing.T) {
	env := GaussianSquare(math.Pi, 100, 10, 2)
	if got := integral(env, 2); math.Abs(got-math.Pi) > 1e-9 {
		t.Fatalf("area %v", got)
	}
	// Plateau flat in the middle.
	mid := len(env) / 2
	if math.Abs(env[mid]-env[mid+2]) > 1e-12 {
		t.Fatal("plateau not flat")
	}
	// Edges below the plateau.
	if env[0] >= env[mid] {
		t.Fatal("edge not below plateau")
	}
}

func TestGaussianPulseImplementsRX(t *testing.T) {
	// A σx/2 drive with any envelope of area θ is exactly RX(θ) on a
	// drift-free qubit; the sampled Gaussian must reproduce that.
	m := qoc.StandardModel(1, qoc.ModelOptions{Dt: 2})
	theta := math.Pi
	env := Gaussian(theta, 40, 2)
	amps := make([][]float64, len(env))
	for k := range env {
		amps[k] = []float64{env[k], 0}
	}
	u := m.Propagate(amps)
	want := gate.New(gate.RX, theta).Matrix()
	if d := linalg.PhaseDistance(u, want); d > 1e-6 {
		t.Fatalf("Gaussian π-pulse distance to RX(π): %v", d)
	}
}

func TestGaussianSquareCouplerPulseImplementsISwapFamily(t *testing.T) {
	// Coupler drive (XX+YY)/2 with integral π/2 implements iSWAP† (the
	// |01⟩/|10⟩ block picks up -i); integral -π/2 gives iSWAP.
	m := qoc.StandardModel(2, qoc.ModelOptions{Dt: 2})
	env := GaussianSquare(-math.Pi/2, 120, 16, 2)
	amps := make([][]float64, len(env))
	for k := range env {
		amps[k] = []float64{0, 0, 0, 0, env[k]} // the coupler is control 4
	}
	u := m.Propagate(amps)
	iswap := linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1i, 0},
		{0, 1i, 0, 0},
		{0, 0, 0, 1},
	})
	if d := linalg.PhaseDistance(u, iswap); d > 1e-6 {
		t.Fatalf("coupler pulse distance to iSWAP: %v", d)
	}
}

func TestDRAGComponents(t *testing.T) {
	beta := 0.5
	samples := DRAG(math.Pi, 40, 2, beta)
	// I component carries the area.
	var iArea float64
	for _, s := range samples {
		iArea += s[0] * 2
	}
	if math.Abs(iArea-math.Pi) > 1e-9 {
		t.Fatalf("DRAG I area %v", iArea)
	}
	// Q is the scaled derivative: antisymmetric about the center (the
	// grid samples sit half a slot either side of it).
	mid := len(samples) / 2
	if math.Abs(samples[mid-1][1]+samples[mid][1]) > 1e-9 {
		t.Fatalf("Q not antisymmetric at the center: %v vs %v",
			samples[mid-1][1], samples[mid][1])
	}
	if samples[mid-5][1]*samples[mid+4][1] > 0 {
		t.Fatal("Q signs equal on both sides of the peak")
	}
	// On a two-level model the DRAG quadrature slightly tilts the
	// rotation axis (its purpose is 3-level leakage suppression); the
	// pulse must still implement RX(π) to first order.
	m := qoc.StandardModel(1, qoc.ModelOptions{Dt: 2})
	u := m.Propagate(samples)
	if f := qoc.Fidelity(u, gate.New(gate.X).Matrix()); f < 0.995 {
		t.Fatalf("DRAG X-pulse fidelity %v", f)
	}
	// Without the quadrature the rotation is exact.
	plain := DRAG(math.Pi, 40, 2, 0)
	if f := qoc.Fidelity(m.Propagate(plain), gate.New(gate.X).Matrix()); f < 1-1e-9 {
		t.Fatalf("β=0 DRAG should be exact: %v", f)
	}
}

func TestEnvelopeEdgeCases(t *testing.T) {
	if got := Gaussian(1, 0.5, 2); len(got) != 1 {
		t.Fatalf("sub-slot duration: %d samples", len(got))
	}
	env := GaussianSquare(1, 20, 50, 2) // edge larger than duration/2
	if got := integral(env, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("clamped edges broke the area: %v", got)
	}
	if MaxAbsAmplitude(nil) != 0 {
		t.Fatal("empty MaxAbsAmplitude")
	}
}

func col(samples [][]float64, j int) []float64 {
	out := make([]float64, len(samples))
	for i := range samples {
		out[i] = samples[i][j]
	}
	return out
}
