package pulse

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the schedule as an ASCII timeline, one row per qubit
// line, width columns wide. Pulses are drawn as blocks labelled with
// their first letter; '.' marks idle time. Multi-qubit pulses appear
// on every involved line at the same columns, which makes alignment
// and utilization visible at a glance.
func (s *Schedule) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	//epoc:lint-ignore floatcmp latency is exactly 0 only for an empty schedule
	if s.Latency == 0 || len(s.Items) == 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / s.Latency
	rows := make([][]byte, s.NumQubits)
	for q := range rows {
		rows[q] = []byte(strings.Repeat(".", width))
	}
	items := append([]Item(nil), s.Items...)
	sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
	for _, it := range items {
		from := int(it.Start * scale)
		to := int(it.End() * scale)
		if to <= from {
			to = from + 1
		}
		if to > width {
			to = width
		}
		mark := byte('#')
		if len(it.Pulse.Label) > 0 {
			mark = it.Pulse.Label[0]
		}
		for _, q := range it.Pulse.Qubits {
			for x := from; x < to; x++ {
				rows[q][x] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "0 ns%*s%.1f ns\n", width-1, "", s.Latency)
	for q := 0; q < s.NumQubits; q++ {
		fmt.Fprintf(&b, "q%-3d %s\n", q, rows[q])
	}
	return b.String()
}
