package pulse

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"epoc/internal/linalg"
)

func mk(label string, dur float64, qubits ...int) *Pulse {
	return &Pulse{Label: label, Qubits: qubits, Duration: dur, Fidelity: 0.999}
}

func TestScheduleASAPParallel(t *testing.T) {
	s := NewSchedule(2)
	s.Add(mk("x", 30, 0))
	s.Add(mk("x", 40, 1))
	if s.Latency != 40 {
		t.Fatalf("parallel latency %v", s.Latency)
	}
}

func TestScheduleASAPSerial(t *testing.T) {
	s := NewSchedule(2)
	if st := s.Add(mk("x", 30, 0)); st != 0 {
		t.Fatalf("first start %v", st)
	}
	if st := s.Add(mk("cx", 200, 0, 1)); st != 30 {
		t.Fatalf("cx start %v", st)
	}
	if st := s.Add(mk("x", 30, 1)); st != 230 {
		t.Fatalf("trailing start %v", st)
	}
	if s.Latency != 260 {
		t.Fatalf("latency %v", s.Latency)
	}
}

func TestScheduleCriticalPathIndependence(t *testing.T) {
	// Two independent chains; latency is the longer one.
	s := NewSchedule(4)
	s.Add(mk("a", 100, 0, 1))
	s.Add(mk("b", 50, 2, 3))
	s.Add(mk("c", 50, 2, 3))
	s.Add(mk("d", 10, 0))
	if s.Latency != 110 {
		t.Fatalf("latency %v", s.Latency)
	}
}

func TestScheduleOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchedule(1).Add(mk("x", 10, 3))
}

func TestTotalFidelityProduct(t *testing.T) {
	s := NewSchedule(2)
	p1 := mk("a", 10, 0)
	p1.Fidelity = 0.99
	p2 := mk("b", 10, 1)
	p2.Fidelity = 0.98
	s.Add(p1)
	s.Add(p2)
	if math.Abs(s.TotalFidelity()-0.99*0.98) > 1e-12 {
		t.Fatalf("ESP %v", s.TotalFidelity())
	}
}

func TestUtilization(t *testing.T) {
	s := NewSchedule(2)
	s.Add(mk("a", 50, 0))
	s.Add(mk("b", 100, 1))
	u := s.Utilization()
	if math.Abs(u[0]-0.5) > 1e-12 || math.Abs(u[1]-1.0) > 1e-12 {
		t.Fatalf("utilization %v", u)
	}
	if got := NewSchedule(2).Utilization(); got[0] != 0 || got[1] != 0 {
		t.Fatal("empty schedule utilization should be zero")
	}
}

func TestScheduleString(t *testing.T) {
	s := NewSchedule(1)
	s.Add(mk("x", 10, 0))
	if len(s.String()) == 0 {
		t.Fatal("empty String")
	}
}

func TestLibraryStoreLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lib := NewLibrary(true)
	u := linalg.RandomUnitary(4, rng)
	if _, ok := lib.Lookup(u); ok {
		t.Fatal("empty library hit")
	}
	p := mk("u", 100, 0, 1)
	lib.Store(u, p)
	got, ok := lib.Lookup(u)
	if !ok || got != p {
		t.Fatal("lookup after store failed")
	}
	if lib.Len() != 1 || lib.Hits != 1 || lib.Misses != 1 {
		t.Fatalf("stats: len=%d hits=%d misses=%d", lib.Len(), lib.Hits, lib.Misses)
	}
	if math.Abs(lib.HitRate()-0.5) > 1e-12 {
		t.Fatalf("hit rate %v", lib.HitRate())
	}
}

func TestLibraryGlobalPhaseMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := linalg.RandomUnitary(4, rng)
	phased := u.Scale(cmplx.Exp(complex(0, 1.234)))

	withPhase := NewLibrary(true)
	withPhase.Store(u, mk("u", 100, 0, 1))
	if _, ok := withPhase.Lookup(phased); !ok {
		t.Fatal("global-phase library missed a phased copy")
	}

	without := NewLibrary(false)
	without.Store(u, mk("u", 100, 0, 1))
	if _, ok := without.Lookup(phased); ok {
		t.Fatal("phase-naive library should miss a phased copy")
	}
	if _, ok := without.Lookup(u); !ok {
		t.Fatal("phase-naive library should hit an exact copy")
	}
}

func TestLibraryHitRateEmpty(t *testing.T) {
	if NewLibrary(true).HitRate() != 0 {
		t.Fatal("hit rate before lookups should be 0")
	}
}

func TestQuickScheduleLatencyLowerBound(t *testing.T) {
	// Latency is at least the max pulse duration and at least every
	// qubit's busy time.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s := NewSchedule(n)
		busy := make([]float64, n)
		var maxDur float64
		for i := 0; i < 20; i++ {
			dur := 10 + rng.Float64()*100
			q1 := rng.Intn(n)
			qs := []int{q1}
			if rng.Intn(2) == 0 {
				q2 := (q1 + 1) % n
				qs = append(qs, q2)
			}
			p := mk("p", dur, qs...)
			s.Add(p)
			for _, q := range qs {
				busy[q] += dur
			}
			if dur > maxDur {
				maxDur = dur
			}
		}
		if s.Latency < maxDur-1e-9 {
			return false
		}
		for _, b := range busy {
			if s.Latency < b-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScheduleRespectsQubitOrder(t *testing.T) {
	// Pulses sharing a qubit never overlap in time.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		s := NewSchedule(n)
		for i := 0; i < 15; i++ {
			q := rng.Intn(n)
			qs := []int{q}
			if rng.Intn(2) == 0 {
				qs = append(qs, (q+1)%n)
			}
			s.Add(mk("p", 5+rng.Float64()*50, qs...))
		}
		for i := 0; i < len(s.Items); i++ {
			for j := i + 1; j < len(s.Items); j++ {
				if shareQubit(s.Items[i], s.Items[j]) {
					a, b := s.Items[i], s.Items[j]
					if a.Start < b.End() && b.Start < a.End() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func shareQubit(a, b Item) bool {
	for _, x := range a.Pulse.Qubits {
		for _, y := range b.Pulse.Qubits {
			if x == y {
				return true
			}
		}
	}
	return false
}

func TestGanttRendering(t *testing.T) {
	s := NewSchedule(2)
	s.Add(mk("x", 50, 0))
	s.Add(mk("cx", 100, 0, 1))
	out := s.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "x") || !strings.Contains(lines[1], "c") {
		t.Fatalf("q0 row missing pulses: %q", lines[1])
	}
	if strings.Contains(lines[2], "x") {
		t.Fatalf("q1 row should not show the 1q pulse: %q", lines[2])
	}
	// q1 idles while x runs: leading dots.
	if !strings.HasPrefix(strings.TrimPrefix(lines[2], "q1   "), ".") {
		t.Fatalf("q1 should start idle: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := NewSchedule(1).Gantt(20); !strings.Contains(out, "empty") {
		t.Fatalf("empty gantt: %q", out)
	}
}

func TestLibraryCollisionSafety(t *testing.T) {
	// Two distinct unitaries forced onto the same fingerprint must not
	// cross-contaminate: hits are verified against the stored matrix.
	lib := NewLibrary(true)
	rng := rand.New(rand.NewSource(3))
	a := linalg.RandomUnitary(4, rng)
	// b differs from a by slightly more than the fingerprint rounding
	// but (artificially) shares a's key by direct construction: perturb
	// below the matchTol threshold first to confirm a hit...
	lib.Store(a, mk("a", 100, 0, 1))
	if _, ok := lib.Lookup(a); !ok {
		t.Fatal("exact lookup failed")
	}
	// ...then look up a genuinely different unitary: must miss even
	// though the library is keyed per-fingerprint.
	b := linalg.RandomUnitary(4, rng)
	if _, ok := lib.Lookup(b); ok {
		t.Fatal("distinct unitary hit a's entry")
	}
	// Storing b as a second entry keeps both retrievable.
	lib.Store(b, mk("b", 200, 0, 1))
	pa, _ := lib.Lookup(a)
	pb, _ := lib.Lookup(b)
	if pa == nil || pb == nil || pa == pb {
		t.Fatal("entries cross-contaminated")
	}
	if lib.Len() != 2 {
		t.Fatalf("Len = %d", lib.Len())
	}
}
