package pulse

// ALAPStarts returns the as-late-as-possible start time of every item
// (same order as Items) for the schedule's existing latency: each
// pulse is pushed right until it meets its successors. Comparing with
// the ASAP starts gives per-pulse slack.
func (s *Schedule) ALAPStarts() []float64 {
	back := make([]float64, s.NumQubits)
	for q := range back {
		back[q] = s.Latency
	}
	starts := make([]float64, len(s.Items))
	for i := len(s.Items) - 1; i >= 0; i-- {
		it := s.Items[i]
		end := s.Latency
		for _, q := range it.Pulse.Qubits {
			if back[q] < end {
				end = back[q]
			}
		}
		start := end - it.Pulse.Duration
		starts[i] = start
		for _, q := range it.Pulse.Qubits {
			back[q] = start
		}
	}
	return starts
}

// Slack returns, per item, how far the pulse could slide right without
// growing the schedule (ALAP start − ASAP start). Zero-slack pulses
// form the critical path.
func (s *Schedule) Slack() []float64 {
	alap := s.ALAPStarts()
	out := make([]float64, len(s.Items))
	for i, it := range s.Items {
		out[i] = alap[i] - it.Start
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// CriticalPulses returns the indices of zero-slack items — the chain
// that determines the schedule latency and the first target for
// further optimization.
func (s *Schedule) CriticalPulses() []int {
	var out []int
	for i, sl := range s.Slack() {
		if sl < 1e-9 {
			out = append(out, i)
		}
	}
	return out
}
