// Package pulse models the pulse-level artifacts of compilation:
// control-pulse descriptors produced by QOC, per-qubit-line ASAP
// schedules with latency and utilization accounting, and the pulse
// library — a lookup table keyed by unitary fingerprints (global-phase
// aware, as in EPOC) that lets compilations reuse previously optimized
// pulses.
package pulse

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"epoc/internal/linalg"
)

// Pulse is one optimized control envelope implementing a unitary on a
// set of qubits.
type Pulse struct {
	Label    string      // human-readable origin, e.g. "cx" or "unitary[2q]"
	Qubits   []int       // global qubits, ascending gate-local order
	Duration float64     // ns
	Fidelity float64     // |tr(U†·achieved)|/dim from QOC (1.0 for calibrated gates)
	Slots    int         // time slots (0 for calibrated analytic pulses)
	Amps     [][]float64 // optional raw amplitudes [slot][control]
}

// Item is a pulse placed at a start time in a schedule.
type Item struct {
	Pulse *Pulse
	Start float64
}

// End returns the item's finish time.
func (it Item) End() float64 { return it.Start + it.Pulse.Duration }

// Schedule is an ASAP-packed pulse program for a device.
type Schedule struct {
	NumQubits int
	Items     []Item
	Latency   float64 // ns: finish time of the last pulse
	fronts    []float64
}

// NewSchedule creates an empty schedule.
func NewSchedule(n int) *Schedule {
	return &Schedule{NumQubits: n}
}

// Add places a pulse as soon as all its qubit lines are free (ASAP)
// and returns its start time.
func (s *Schedule) Add(p *Pulse) float64 {
	if s.fronts == nil {
		s.fronts = make([]float64, s.NumQubits)
	}
	start := 0.0
	for _, q := range p.Qubits {
		if q < 0 || q >= s.NumQubits {
			panic(fmt.Sprintf("pulse: qubit %d out of range (n=%d)", q, s.NumQubits))
		}
		if s.fronts[q] > start {
			start = s.fronts[q]
		}
	}
	end := start + p.Duration
	for _, q := range p.Qubits {
		s.fronts[q] = end
	}
	s.Items = append(s.Items, Item{Pulse: p, Start: start})
	if end > s.Latency {
		s.Latency = end
	}
	return start
}

// TotalFidelity returns the ESP of the schedule: the product of pulse
// fidelities (Equation 3 of the paper).
func (s *Schedule) TotalFidelity() float64 {
	f := 1.0
	for _, it := range s.Items {
		f *= it.Pulse.Fidelity
	}
	return f
}

// Utilization returns, per qubit line, the fraction of the schedule's
// latency during which a pulse drives that line.
func (s *Schedule) Utilization() []float64 {
	busy := make([]float64, s.NumQubits)
	for _, it := range s.Items {
		for _, q := range it.Pulse.Qubits {
			busy[q] += it.Pulse.Duration
		}
	}
	out := make([]float64, s.NumQubits)
	//epoc:lint-ignore floatcmp latency is exactly 0 only for an empty schedule
	if s.Latency == 0 {
		return out
	}
	for q := range out {
		out[q] = busy[q] / s.Latency
	}
	return out
}

// String renders the schedule as a timeline table.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule(%d qubits, %d pulses, latency %.1f ns)\n", s.NumQubits, len(s.Items), s.Latency)
	items := append([]Item(nil), s.Items...)
	sort.Slice(items, func(i, j int) bool { return items[i].Start < items[j].Start })
	for _, it := range items {
		fmt.Fprintf(&b, "  %8.1f - %8.1f  %-14s q%v  F=%.5f\n",
			it.Start, it.End(), it.Pulse.Label, it.Pulse.Qubits, it.Pulse.Fidelity)
	}
	return b.String()
}

// Library caches optimized pulses by unitary fingerprint. With
// MatchGlobalPhase (EPOC's improvement over AccQOC/PAQOC), unitaries
// equal up to a global phase share an entry, raising the hit rate.
// Every hit is verified against the stored unitary, so fingerprint
// collisions degrade to misses instead of wrong pulses.
//
// A Library is goroutine-safe and may be shared across concurrent
// compilations (the long-lived server in internal/serve shares one
// process-wide). Unlike synth.Cache it does not coalesce in-flight
// work: two concurrent compiles that miss on the same unitary both
// run QOC and both store — duplicate effort, never a wrong pulse.
// The exported Hits/Misses fields are kept for single-goroutine
// callers (CLIs, examples); concurrent readers must use Counts.
type Library struct {
	MatchGlobalPhase bool

	mu           sync.Mutex
	entries      map[string][]libEntry
	Hits, Misses int
}

type libEntry struct {
	u *linalg.Matrix
	p *Pulse
}

// NewLibrary returns an empty library; matchGlobalPhase selects the
// EPOC keying behaviour.
func NewLibrary(matchGlobalPhase bool) *Library {
	return &Library{MatchGlobalPhase: matchGlobalPhase, entries: map[string][]libEntry{}}
}

// key fingerprints a unitary. Without global-phase matching the raw
// rounded entries are used, so e^{iφ}·U and U key differently.
func (l *Library) key(u *linalg.Matrix) string {
	if l.MatchGlobalPhase {
		return linalg.Fingerprint(u)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d:", u.Rows, u.Cols)
	for _, v := range u.Data {
		fmt.Fprintf(&b, "%.5f,%.5f;", real(v), imag(v))
	}
	return b.String()
}

// matchTol bounds the verified distance between a looked-up unitary
// and a stored entry. Entries farther than this are fingerprint
// collisions and are skipped.
const matchTol = 1e-4

// find returns the verified entry for u, if any. The caller must hold
// l.mu.
func (l *Library) find(u *linalg.Matrix) (*Pulse, bool) {
	for _, e := range l.entries[l.key(u)] {
		if e.u.Rows != u.Rows {
			continue
		}
		var d float64
		if l.MatchGlobalPhase {
			d = linalg.PhaseDistance(e.u, u)
		} else {
			d = linalg.FrobeniusDistance(e.u, u) / float64(u.Rows)
		}
		if d < matchTol {
			return e.p, true
		}
	}
	return nil, false
}

// Lookup returns the cached pulse for a unitary, counting hit/miss.
func (l *Library) Lookup(u *linalg.Matrix) (*Pulse, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.find(u)
	if ok {
		l.Hits++
	} else {
		l.Misses++
	}
	return p, ok
}

// Peek reports whether a pulse is cached without touching the hit/miss
// counters (used by prefill passes).
func (l *Library) Peek(u *linalg.Matrix) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.find(u)
	return ok
}

// Store caches a pulse under the unitary's key, keeping a copy of the
// unitary for hit verification.
func (l *Library) Store(u *linalg.Matrix, p *Pulse) {
	k := l.key(u)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[k] = append(l.entries[k], libEntry{u: u.Clone(), p: p})
}

// Entry is one exported library entry: the unitary and its pulse, as
// handed to the persistent store (internal/store) and the warm-start
// candidate snapshot in core.
type Entry struct {
	U *linalg.Matrix
	P *Pulse
}

// Export snapshots every entry, sorted by fingerprint key (collision
// chains keep insertion order). The deterministic order is load-bearing:
// the warm-start selector and the store's harvest both iterate it, and
// both must behave identically at any worker count.
func (l *Library) Export() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.entries))
	for k := range l.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Entry
	for _, k := range keys {
		for _, e := range l.entries[k] {
			out = append(out, Entry{U: e.u, P: e.p})
		}
	}
	return out
}

// Import stores a pulse unless a verified-equal entry already exists,
// reporting whether it was added. Unlike Store it re-keys the unitary
// under this library's own keying scheme, so records persisted by a
// MatchGlobalPhase library import correctly into a non-matching one
// and vice versa. It never touches the hit/miss counters.
func (l *Library) Import(u *linalg.Matrix, p *Pulse) bool {
	if u == nil || p == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.find(u); ok {
		return false
	}
	k := l.key(u)
	l.entries[k] = append(l.entries[k], libEntry{u: u.Clone(), p: p})
	return true
}

// Len returns the number of cached entries.
func (l *Library) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, es := range l.entries {
		n += len(es)
	}
	return n
}

// Counts returns the hit/miss totals under the library's lock — the
// accessor concurrent compilations must use instead of reading the
// Hits/Misses fields directly.
func (l *Library) Counts() (hits, misses int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.Hits, l.Misses
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (l *Library) HitRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Hits) / float64(total)
}
