package pulse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestALAPSerialChainHasNoSlack(t *testing.T) {
	s := NewSchedule(1)
	s.Add(mk("a", 10, 0))
	s.Add(mk("b", 20, 0))
	s.Add(mk("c", 30, 0))
	for i, sl := range s.Slack() {
		if sl > 1e-12 {
			t.Fatalf("serial item %d has slack %v", i, sl)
		}
	}
	crit := s.CriticalPulses()
	if len(crit) != 3 {
		t.Fatalf("critical pulses: %v", crit)
	}
}

func TestALAPParallelShortBranchHasSlack(t *testing.T) {
	s := NewSchedule(2)
	s.Add(mk("long", 100, 0))
	s.Add(mk("short", 30, 1))
	sl := s.Slack()
	if sl[0] > 1e-12 {
		t.Fatalf("long pulse slack %v", sl[0])
	}
	if math.Abs(sl[1]-70) > 1e-12 {
		t.Fatalf("short pulse slack %v, want 70", sl[1])
	}
}

func TestALAPDiamond(t *testing.T) {
	// q0: a(10) then joint(50); q1: b(40) then joint. a has 30 slack.
	s := NewSchedule(2)
	s.Add(mk("a", 10, 0))
	s.Add(mk("b", 40, 1))
	s.Add(mk("j", 50, 0, 1))
	sl := s.Slack()
	if math.Abs(sl[0]-30) > 1e-12 {
		t.Fatalf("a slack %v, want 30", sl[0])
	}
	if sl[1] > 1e-12 || sl[2] > 1e-12 {
		t.Fatalf("b/j should be critical: %v", sl)
	}
}

func TestQuickALAPRespectsDependencies(t *testing.T) {
	// ALAP starts must never precede the ASAP starts, and items sharing
	// a qubit must stay disjoint at their ALAP positions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		s := NewSchedule(n)
		for i := 0; i < 15; i++ {
			q := rng.Intn(n)
			qs := []int{q}
			if rng.Intn(2) == 0 {
				qs = append(qs, (q+1)%n)
			}
			s.Add(mk("p", 5+rng.Float64()*40, qs...))
		}
		alap := s.ALAPStarts()
		for i, it := range s.Items {
			if alap[i] < it.Start-1e-9 {
				return false
			}
			if alap[i]+it.Pulse.Duration > s.Latency+1e-9 {
				return false
			}
		}
		for i := 0; i < len(s.Items); i++ {
			for j := i + 1; j < len(s.Items); j++ {
				if !shareQubit(s.Items[i], s.Items[j]) {
					continue
				}
				ai, aj := alap[i], alap[j]
				di := s.Items[i].Pulse.Duration
				dj := s.Items[j].Pulse.Duration
				if ai < aj+dj-1e-9 && aj < ai+di-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPulsesNonEmpty(t *testing.T) {
	s := NewSchedule(3)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		q := rng.Intn(3)
		s.Add(mk("p", 10+rng.Float64()*50, q))
	}
	if len(s.CriticalPulses()) == 0 {
		t.Fatal("every schedule has a critical path")
	}
}
