package pulse

import "math"

// Envelope shapes for analytic (calibrated) pulses, as used by real
// superconducting backends: Gaussian for single-qubit drives (with an
// optional DRAG quadrature) and flat-top GaussianSquare for coupler
// pulses. Sampling returns piecewise-constant amplitudes compatible
// with the qoc control model, so analytic pulses and GRAPE pulses are
// interchangeable in schedules and simulations.

// Gaussian samples a Gaussian envelope of the given duration whose
// time-integral equals area (the rotation angle for a σ/2 drive). The
// standard deviation is duration/4, truncated at ±2σ and lifted so the
// endpoints are zero.
func Gaussian(area, duration, dt float64) []float64 {
	slots := int(math.Round(duration / dt))
	if slots < 1 {
		slots = 1
	}
	sigma := duration / 4
	mid := duration / 2
	raw := make([]float64, slots)
	edge := math.Exp(-0.5 * math.Pow(duration/2/sigma, 2))
	sum := 0.0
	for k := 0; k < slots; k++ {
		t := (float64(k) + 0.5) * dt
		v := math.Exp(-0.5*math.Pow((t-mid)/sigma, 2)) - edge
		if v < 0 {
			v = 0
		}
		raw[k] = v
		sum += v * dt
	}
	//epoc:lint-ignore floatcmp guards division when the envelope has exactly zero area
	if sum == 0 {
		return raw
	}
	scale := area / sum
	for k := range raw {
		raw[k] *= scale
	}
	return raw
}

// GaussianSquare samples a flat-top envelope: Gaussian rise and fall
// of the given edge duration around a flat plateau, normalized so the
// integral equals area.
func GaussianSquare(area, duration, edge, dt float64) []float64 {
	slots := int(math.Round(duration / dt))
	if slots < 1 {
		slots = 1
	}
	if edge*2 > duration {
		edge = duration / 2
	}
	sigma := edge / 2
	raw := make([]float64, slots)
	sum := 0.0
	for k := 0; k < slots; k++ {
		t := (float64(k) + 0.5) * dt
		v := 1.0
		switch {
		case t < edge && sigma > 0:
			v = math.Exp(-0.5 * math.Pow((t-edge)/sigma, 2))
		case t > duration-edge && sigma > 0:
			v = math.Exp(-0.5 * math.Pow((t-(duration-edge))/sigma, 2))
		}
		raw[k] = v
		sum += v * dt
	}
	scale := area / sum
	for k := range raw {
		raw[k] *= scale
	}
	return raw
}

// DRAG samples a DRAG pulse: a Gaussian in-phase component with area
// theta plus a derivative-shaped quadrature scaled by beta (the
// leakage-suppression coefficient on anharmonic transmons). The result
// is [slot][2]: I (X drive) and Q (Y drive) amplitudes.
func DRAG(theta, duration, dt, beta float64) [][]float64 {
	i := Gaussian(theta, duration, dt)
	out := make([][]float64, len(i))
	for k := range i {
		out[k] = make([]float64, 2)
		out[k][0] = i[k]
		// Central-difference derivative of the sampled envelope.
		var d float64
		switch {
		case k == 0 && len(i) > 1:
			d = (i[1] - 0) / (2 * dt)
		case k == len(i)-1 && len(i) > 1:
			d = (0 - i[k-1]) / (2 * dt)
		case len(i) > 2:
			d = (i[k+1] - i[k-1]) / (2 * dt)
		}
		out[k][1] = -beta * d
	}
	return out
}

// MaxAbsAmplitude returns the largest |amplitude| in a sampled
// envelope, for checking hardware bounds.
func MaxAbsAmplitude(samples []float64) float64 {
	m := 0.0
	for _, v := range samples {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
