package qasm

import (
	"math"
	"testing"
)

func TestExpressionFunctions(t *testing.T) {
	prog, err := Parse(`
qreg q[1];
rz(sin(pi/2)) q[0];
rz(cos(pi)) q[0];
rz(tan(0)) q[0];
rz(exp(0)) q[0];
rz(ln(1) + 1) q[0];
rz(sqrt(4)) q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -1, 0, 1, 1, 2}
	for i, w := range want {
		if got := prog.Circuit.Ops[i].G.Params[0]; math.Abs(got-w) > 1e-12 {
			t.Errorf("op %d param %v, want %v", i, got, w)
		}
	}
}

func TestExpressionParenthesesAndPrecedence(t *testing.T) {
	prog, err := Parse(`
qreg q[1];
rz((1+2)*3) q[0];
rz(1+2*3) q[0];
rz(2^3^1) q[0];
rz(-(1+1)) q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 7, 8, -2}
	for i, w := range want {
		if got := prog.Circuit.Ops[i].G.Params[0]; math.Abs(got-w) > 1e-12 {
			t.Errorf("op %d = %v, want %v", i, got, w)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	cases := []string{
		"qreg q[1]; rz(foo(1)) q[0];",  // unknown function
		"qreg q[1]; rz(1+) q[0];",      // dangling operator
		"qreg q[1]; rz((1) q[0];",      // unbalanced paren
		"qreg q[1]; rz(;) q[0];",       // junk token in expression
		"qreg q[1]; rz(ln(0-1)) q[0];", // syntactically valid but evaluates to NaN
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// Unterminated string.
	if _, err := Parse(`include "qelib1.inc;`); err == nil {
		t.Error("unterminated string accepted")
	}
	// Unexpected character.
	if _, err := Parse(`qreg q[1]; x q[0]; @`); err == nil {
		t.Error("stray @ accepted")
	}
	// Scientific notation with signs.
	prog, err := Parse("qreg q[1]; rz(1.5e-2) q[0]; rz(2E+1) q[0];")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prog.Circuit.Ops[0].G.Params[0]-0.015) > 1e-12 {
		t.Errorf("exponent parse: %v", prog.Circuit.Ops[0].G.Params[0])
	}
	if math.Abs(prog.Circuit.Ops[1].G.Params[0]-20) > 1e-12 {
		t.Errorf("uppercase exponent parse: %v", prog.Circuit.Ops[1].G.Params[0])
	}
}

func TestGateDefErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated body": "qreg q[1]; gate foo a { x a;",
		"body bad gate":     "qreg q[1]; gate foo a { nope a; } foo q[0];",
		"recursive gate":    "qreg q[1]; gate foo a { foo a; } foo q[0];",
		"arity mismatch":    "qreg q[2]; gate foo a { x a; } foo q[0], q[1];",
		"param mismatch":    "qreg q[1]; gate foo(t) a { rz(t) a; } foo q[0];",
		"formal indexed":    "qreg q[1]; gate foo a { x a[0]; } foo q[0];",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestProgramLevelErrors(t *testing.T) {
	cases := map[string]string{
		"statement not ident":  "qreg q[1]; ; x q[0];",
		"include not string":   "include qelib1;",
		"broadcast mismatch":   "qreg a[2]; qreg b[3]; cx a, b;",
		"version garbage":      "OPENQASM two;",
		"gate call no qubits":  "qreg q[1]; x ;",
		"measure unterminated": "qreg q[1]; creg c[1]; measure q[0] -> c[0]",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBroadcastMultiRegister(t *testing.T) {
	// Two same-size registers broadcast elementwise.
	prog, err := Parse("qreg a[3]; qreg b[3]; cx a, b;")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 3 {
		t.Fatalf("broadcast cx count %d", prog.Circuit.Len())
	}
	for i, op := range prog.Circuit.Ops {
		if op.Qubits[0] != i || op.Qubits[1] != i+3 {
			t.Fatalf("broadcast pair %d: %v", i, op.Qubits)
		}
	}
	// Mixed indexed + broadcast.
	prog, err = Parse("qreg a[1]; qreg b[3]; cx a[0], b;")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 3 {
		t.Fatalf("mixed broadcast count %d", prog.Circuit.Len())
	}
}

func TestGateBodyBarrierSkipped(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
gate foo a, b { x a; barrier a, b; x b; }
foo q[0], q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 2 {
		t.Fatalf("gate-body barrier mishandled: %d ops", prog.Circuit.Len())
	}
}
