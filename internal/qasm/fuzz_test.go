package qasm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"epoc/internal/benchcirc"
)

// FuzzParse feeds arbitrary source text to the parser. The contract:
// Parse never panics and never runs unbounded, and any program it
// accepts survives a Write → Parse round trip (the circuit the writer
// prints is itself valid QASM describing the same ops).
func FuzzParse(f *testing.F) {
	// Seed with the real benchmark files...
	files, _ := filepath.Glob(filepath.Join("testdata", "*.qasm"))
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// ...the writer's own output for the built-in circuits...
	for _, name := range benchcirc.Names() {
		c, _ := benchcirc.Get(name)
		if src, err := Write(c); err == nil {
			f.Add(src)
		}
	}
	// ...and regression inputs for past parser panics and hangs.
	f.Add("qreg q[2];\ncx q[0],q[0];\n")   // duplicate qubit operand
	f.Add("qreg q[3];\ncx q,q;\n")         // duplicate via broadcast
	f.Add("qreg q[1];\nrx(1/0.0) q[0];\n") // non-finite parameter
	f.Add("qreg q[1];\nrx(----1) q[0];\n") // deep unary nesting
	f.Add("qreg q[999999999];\nx q;\n")    // oversized register broadcast
	f.Add("gate g a { x a; x a; }\nqreg q[1];\ng q[0];\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if prog.Circuit.NumQubits == 0 {
			// A program with no qreg has no QASM spelling (Write would
			// emit qreg q[0], which is invalid).
			return
		}
		out, err := Write(prog.Circuit)
		if err != nil {
			// The writer only supports gates it can name; a parsed
			// program may legitimately be unwritable.
			return
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("written output failed to re-parse: %v\noutput:\n%s", err, out)
		}
		if back.Circuit.NumQubits != prog.Circuit.NumQubits {
			t.Fatalf("round trip changed qubit count: %d -> %d",
				prog.Circuit.NumQubits, back.Circuit.NumQubits)
		}
		if len(back.Circuit.Ops) != len(prog.Circuit.Ops) {
			t.Fatalf("round trip changed op count: %d -> %d",
				len(prog.Circuit.Ops), len(back.Circuit.Ops))
		}
	})
}

// TestParseRejectsHostileInputs pins the parser-hardening fixes found
// by fuzzing: each input used to panic or admit unbounded work, and
// must now fail with a plain error.
func TestParseRejectsHostileInputs(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			name:    "duplicate indexed operands",
			src:     "qreg q[2];\ncx q[0],q[0];\n",
			wantErr: "duplicate qubit operand",
		},
		{
			name:    "duplicate broadcast operands",
			src:     "qreg q[3];\ncx q,q;\n",
			wantErr: "duplicate qubit operand",
		},
		{
			name:    "duplicate operands inside gate body",
			src:     "gate g a, b { cx a, a; }\nqreg q[2];\ng q[0],q[1];\n",
			wantErr: "duplicate qubit operand",
		},
		{
			name:    "infinite parameter",
			src:     "qreg q[1];\nrx(exp(99999)) q[0];\n",
			wantErr: "not finite",
		},
		{
			name:    "nan parameter",
			src:     "qreg q[1];\nrx(ln(-1)) q[0];\n",
			wantErr: "not finite",
		},
		{
			name:    "oversized register",
			src:     "qreg q[999999999];\nx q[0];\n",
			wantErr: "past 16384",
		},
		{
			name:    "oversized total across registers",
			src:     "qreg a[16000];\nqreg b[16000];\n",
			wantErr: "past 16384",
		},
		{
			name:    "deep unary nesting",
			src:     "qreg q[1];\nrx(" + strings.Repeat("-", 5000) + "1) q[0];\n",
			wantErr: "nested deeper",
		},
		{
			name:    "deep paren nesting",
			src:     "qreg q[1];\nrx(" + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + ") q[0];\n",
			wantErr: "nested deeper",
		},
		{
			name: "exponential gate expansion",
			src: "qreg q[1];\n" +
				"gate g0 a { x a; x a; }\n" +
				expansionTower(30) +
				"g30 q[0];\n",
			wantErr: "exceeds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("hostile input accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// expansionTower defines g1..gN where each gi doubles gi-1: naive
// expansion of gN emits 2^(N+1) ops.
func expansionTower(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "gate g%d a { g%d a; g%d a; }\n", i, i-1, i-1)
	}
	return b.String()
}
