package qasm

import (
	"fmt"
	"strings"

	"epoc/internal/circuit"
)

// Write renders a circuit as OpenQASM 2.0 source with a single register
// named q. Matrix-carrying block gates (unitary/vug) have no QASM
// spelling and cause an error; decompose them with the synth package
// before writing.
func Write(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for _, op := range c.Ops {
		if op.G.IsBlock() {
			return "", fmt.Errorf("qasm: cannot serialize block gate %s; synthesize it first", op.G)
		}
		name := string(op.G.Kind)
		if _, ok := kindFor[name]; !ok {
			return "", fmt.Errorf("qasm: gate %q has no QASM spelling", name)
		}
		b.WriteString(name)
		if len(op.G.Params) > 0 {
			parts := make([]string, len(op.G.Params))
			for i, p := range op.G.Params {
				parts[i] = fmt.Sprintf("%.12g", p)
			}
			fmt.Fprintf(&b, "(%s)", strings.Join(parts, ","))
		}
		qs := make([]string, len(op.Qubits))
		for i, q := range op.Qubits {
			qs[i] = fmt.Sprintf("q[%d]", q)
		}
		fmt.Fprintf(&b, " %s;\n", strings.Join(qs, ","))
	}
	return b.String(), nil
}
