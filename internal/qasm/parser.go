package qasm

import (
	"fmt"
	"math"
	"strconv"

	"epoc/internal/circuit"
	"epoc/internal/gate"
)

// Program is the result of parsing a QASM source: a flat circuit over
// all declared quantum registers plus bookkeeping about the registers.
type Program struct {
	Circuit  *circuit.Circuit
	QRegs    []Register
	CRegs    []Register
	Measures int // number of measure statements skipped
	Barriers int // number of barrier statements skipped
}

// Register is a named quantum or classical register with its offset in
// the flattened qubit numbering.
type Register struct {
	Name   string
	Size   int
	Offset int
}

// gateDef is a user-defined gate body, expanded at application time.
type gateDef struct {
	params []string
	qargs  []string
	body   []gateCall
}

// gateCall is one statement inside a gate body or the main program.
type gateCall struct {
	name  string
	exprs []expr
	qargs []qref
	line  int
}

// qref names a qubit operand: a register (possibly indexed) or a formal
// gate argument.
type qref struct {
	name    string
	index   int
	indexed bool
}

// Resource limits. QASM inputs are untrusted (fuzzed, user-supplied
// benchmark files); these bound the work a single Parse can demand.
const (
	// maxQubits caps the flattened qubit count across all qregs. The
	// pipeline never simulates past ~a dozen qubits, but parsing alone
	// must stay cheap for any accepted input.
	maxQubits = 16384
	// maxOps caps emitted circuit ops: nested gate definitions expand
	// multiplicatively, so a small source can demand exponential work.
	maxOps = 1 << 20
	// maxExprDepth caps parameter-expression nesting; unary minus and
	// parentheses recurse once per level.
	maxExprDepth = 200
)

type parser struct {
	toks      []token
	pos       int
	qregs     map[string]*Register
	cregs     map[string]*Register
	defs      map[string]*gateDef
	prog      *Program
	nQubit    int
	exprDepth int
}

// Parse compiles QASM source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:  toks,
		qregs: map[string]*Register{},
		cregs: map[string]*Register{},
		defs:  map[string]*gateDef{},
		prog:  &Program{},
	}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("qasm: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	if p.cur().kind != tokSymbol || p.cur().text != s {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, got %q", p.cur().text)
	}
	s := p.cur().text
	p.advance()
	return s, nil
}

func (p *parser) parseProgram() error {
	// Optional OPENQASM header.
	if p.cur().kind == tokIdent && p.cur().text == "OPENQASM" {
		p.advance()
		if p.cur().kind != tokNumber {
			return p.errf("expected version number")
		}
		p.advance()
		if err := p.expectSymbol(";"); err != nil {
			return err
		}
	}
	var calls []gateCall
	for p.cur().kind != tokEOF {
		t := p.cur()
		if t.kind != tokIdent {
			return p.errf("expected statement, got %q", t.text)
		}
		switch t.text {
		case "include":
			p.advance()
			if p.cur().kind != tokString {
				return p.errf("expected include path string")
			}
			p.advance()
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
		case "qreg", "creg":
			if err := p.parseReg(t.text == "qreg"); err != nil {
				return err
			}
		case "gate":
			if err := p.parseGateDef(); err != nil {
				return err
			}
		case "measure":
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
			p.prog.Measures++
		case "barrier":
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
			p.prog.Barriers++
		case "if", "reset", "opaque":
			return p.errf("unsupported statement %q", t.text)
		default:
			call, err := p.parseGateCall()
			if err != nil {
				return err
			}
			calls = append(calls, call)
		}
	}
	// Build the flat circuit.
	c := circuit.New(p.nQubit)
	env := &evalEnv{params: map[string]float64{}}
	for _, call := range calls {
		if err := p.emitCall(c, call, env, nil, 0); err != nil {
			return err
		}
	}
	p.prog.Circuit = c
	return nil
}

func (p *parser) skipToSemicolon() error {
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokSymbol && p.cur().text == ";" {
			p.advance()
			return nil
		}
		p.advance()
	}
	return p.errf("missing semicolon")
}

func (p *parser) parseReg(quantum bool) error {
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSymbol("["); err != nil {
		return err
	}
	if p.cur().kind != tokNumber {
		return p.errf("expected register size")
	}
	size, err := strconv.Atoi(p.cur().text)
	if err != nil || size <= 0 {
		return p.errf("bad register size %q", p.cur().text)
	}
	if quantum && p.nQubit+size > maxQubits {
		return p.errf("register %q pushes qubit count past %d", name, maxQubits)
	}
	p.advance()
	if err := p.expectSymbol("]"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	reg := Register{Name: name, Size: size}
	if quantum {
		if _, dup := p.qregs[name]; dup {
			return p.errf("duplicate qreg %q", name)
		}
		reg.Offset = p.nQubit
		p.nQubit += size
		p.qregs[name] = &reg
		p.prog.QRegs = append(p.prog.QRegs, reg)
	} else {
		p.cregs[name] = &reg
		p.prog.CRegs = append(p.prog.CRegs, reg)
	}
	return nil
}

func (p *parser) parseGateDef() error {
	p.advance()
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	def := &gateDef{}
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		for p.cur().kind == tokIdent {
			def.params = append(def.params, p.cur().text)
			p.advance()
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
	}
	for p.cur().kind == tokIdent {
		def.qargs = append(def.qargs, p.cur().text)
		p.advance()
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
		} else {
			break
		}
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	for !(p.cur().kind == tokSymbol && p.cur().text == "}") {
		if p.cur().kind == tokEOF {
			return p.errf("unterminated gate body for %q", name)
		}
		if p.cur().kind == tokIdent && p.cur().text == "barrier" {
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
			continue
		}
		call, err := p.parseGateCall()
		if err != nil {
			return err
		}
		def.body = append(def.body, call)
	}
	p.advance() // consume }
	p.defs[name] = def
	return nil
}

func (p *parser) parseGateCall() (gateCall, error) {
	call := gateCall{line: p.cur().line}
	name, err := p.expectIdent()
	if err != nil {
		return call, err
	}
	call.name = name
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		for !(p.cur().kind == tokSymbol && p.cur().text == ")") {
			e, err := p.parseExpr()
			if err != nil {
				return call, err
			}
			call.exprs = append(call.exprs, e)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
			}
		}
		p.advance() // consume )
	}
	for {
		if p.cur().kind != tokIdent {
			return call, p.errf("expected qubit operand for %q", name)
		}
		ref := qref{name: p.cur().text}
		p.advance()
		if p.cur().kind == tokSymbol && p.cur().text == "[" {
			p.advance()
			if p.cur().kind != tokNumber {
				return call, p.errf("expected qubit index")
			}
			idx, err := strconv.Atoi(p.cur().text)
			if err != nil {
				return call, p.errf("bad qubit index %q", p.cur().text)
			}
			ref.index = idx
			ref.indexed = true
			p.advance()
			if err := p.expectSymbol("]"); err != nil {
				return call, err
			}
		}
		call.qargs = append(call.qargs, ref)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return call, err
	}
	return call, nil
}

// kindFor maps a QASM gate name to the internal gate kind.
var kindFor = map[string]gate.Kind{
	"id": gate.I, "x": gate.X, "y": gate.Y, "z": gate.Z, "h": gate.H,
	"s": gate.S, "sdg": gate.Sdg, "t": gate.T, "tdg": gate.Tdg,
	"sx": gate.SX, "sxdg": gate.SXdg,
	"rx": gate.RX, "ry": gate.RY, "rz": gate.RZ, "p": gate.P,
	"u1": gate.U1, "u2": gate.U2, "u3": gate.U3, "u": gate.U3,
	"cx": gate.CX, "CX": gate.CX, "cy": gate.CY, "cz": gate.CZ, "ch": gate.CH,
	"crx": gate.CRX, "cry": gate.CRY, "crz": gate.CRZ, "cp": gate.CP, "cu1": gate.CP,
	"rxx": gate.RXX, "rzz": gate.RZZ,
	"swap": gate.SWAP, "ccx": gate.CCX, "cswap": gate.CSWP,
}

type evalEnv struct {
	params map[string]float64
}

// emitCall expands a gate call into circuit ops, resolving formal qubit
// arguments against binding (nil at top level) and handling register
// broadcasting.
func (p *parser) emitCall(c *circuit.Circuit, call gateCall, env *evalEnv, binding map[string]int, depth int) error {
	if depth > 64 {
		return fmt.Errorf("qasm: line %d: gate expansion too deep (recursive definition?)", call.line)
	}
	// Evaluate parameters in the current environment.
	params := make([]float64, len(call.exprs))
	for i, e := range call.exprs {
		v, err := e.eval(env)
		if err != nil {
			return fmt.Errorf("qasm: line %d: %v", call.line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("qasm: line %d: parameter %d of %q is not finite", call.line, i, call.name)
		}
		params[i] = v
	}

	// Resolve qubit operands. Top level may broadcast whole registers.
	if binding == nil {
		broadcast := 0
		for _, ref := range call.qargs {
			reg, ok := p.qregs[ref.name]
			if !ok {
				return fmt.Errorf("qasm: line %d: unknown qreg %q", call.line, ref.name)
			}
			if !ref.indexed {
				if broadcast != 0 && broadcast != reg.Size {
					return fmt.Errorf("qasm: line %d: mismatched broadcast sizes", call.line)
				}
				broadcast = reg.Size
			} else if ref.index >= reg.Size {
				return fmt.Errorf("qasm: line %d: index %d out of range for %q", call.line, ref.index, ref.name)
			}
		}
		reps := broadcast
		if reps == 0 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			qubits := make([]int, len(call.qargs))
			for i, ref := range call.qargs {
				reg := p.qregs[ref.name]
				idx := ref.index
				if !ref.indexed {
					idx = r
				}
				qubits[i] = reg.Offset + idx
			}
			if err := p.applyNamed(c, call, params, qubits, depth); err != nil {
				return err
			}
		}
		return nil
	}
	// Inside a gate body: operands are formal names.
	qubits := make([]int, len(call.qargs))
	for i, ref := range call.qargs {
		q, ok := binding[ref.name]
		if !ok || ref.indexed {
			return fmt.Errorf("qasm: line %d: unknown gate argument %q", call.line, ref.name)
		}
		qubits[i] = q
	}
	return p.applyNamed(c, call, params, qubits, depth)
}

// applyNamed applies a resolved call (concrete params and qubits).
func (p *parser) applyNamed(c *circuit.Circuit, call gateCall, params []float64, qubits []int, depth int) error {
	for i, q := range qubits {
		for _, prev := range qubits[:i] {
			if q == prev {
				return fmt.Errorf("qasm: line %d: duplicate qubit operand for %q", call.line, call.name)
			}
		}
	}
	if len(c.Ops) >= maxOps {
		return fmt.Errorf("qasm: line %d: circuit exceeds %d ops", call.line, maxOps)
	}
	if kind, ok := kindFor[call.name]; ok {
		spec := gate.Registry[kind]
		if len(params) != spec.Params || len(qubits) != spec.Qubits {
			return fmt.Errorf("qasm: line %d: %s expects %d params/%d qubits, got %d/%d",
				call.line, call.name, spec.Params, spec.Qubits, len(params), len(qubits))
		}
		c.Append(gate.New(kind, params...), qubits...)
		return nil
	}
	def, ok := p.defs[call.name]
	if !ok {
		return fmt.Errorf("qasm: line %d: unknown gate %q", call.line, call.name)
	}
	if len(params) != len(def.params) || len(qubits) != len(def.qargs) {
		return fmt.Errorf("qasm: line %d: gate %q expects %d params/%d qubits, got %d/%d",
			call.line, call.name, len(def.params), len(def.qargs), len(params), len(qubits))
	}
	env := &evalEnv{params: map[string]float64{}}
	for i, name := range def.params {
		env.params[name] = params[i]
	}
	binding := map[string]int{}
	for i, name := range def.qargs {
		binding[name] = qubits[i]
	}
	for _, inner := range def.body {
		if err := p.emitCall(c, inner, env, binding, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// --- parameter expressions ---

type expr interface {
	eval(env *evalEnv) (float64, error)
}

type numExpr float64

func (n numExpr) eval(*evalEnv) (float64, error) { return float64(n), nil }

type identExpr string

func (id identExpr) eval(env *evalEnv) (float64, error) {
	if id == "pi" {
		return math.Pi, nil
	}
	if v, ok := env.params[string(id)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("unknown parameter %q", string(id))
}

type unaryExpr struct {
	op string
	x  expr
}

func (u unaryExpr) eval(env *evalEnv) (float64, error) {
	v, err := u.x.eval(env)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case "-":
		return -v, nil
	case "sin":
		return math.Sin(v), nil
	case "cos":
		return math.Cos(v), nil
	case "tan":
		return math.Tan(v), nil
	case "exp":
		return math.Exp(v), nil
	case "ln":
		return math.Log(v), nil
	case "sqrt":
		return math.Sqrt(v), nil
	}
	return 0, fmt.Errorf("unknown function %q", u.op)
}

type binExpr struct {
	op   string
	x, y expr
}

func (b binExpr) eval(env *evalEnv) (float64, error) {
	x, err := b.x.eval(env)
	if err != nil {
		return 0, err
	}
	y, err := b.y.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "+":
		return x + y, nil
	case "-":
		return x - y, nil
	case "*":
		return x * y, nil
	case "/":
		//epoc:lint-ignore floatcmp exact division-by-zero check on user expression input
		if y == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return x / y, nil
	case "^":
		return math.Pow(x, y), nil
	}
	return 0, fmt.Errorf("unknown operator %q", b.op)
}

// parseExpr parses an additive expression.
func (p *parser) parseExpr() (expr, error) {
	p.exprDepth++
	defer func() { p.exprDepth-- }()
	if p.exprDepth > maxExprDepth {
		return nil, p.errf("expression nested deeper than %d", maxExprDepth)
	}
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.advance()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, x: left, y: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.cur().text
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: op, x: left, y: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (expr, error) {
	// Unary minus recurses without passing through parseExpr, so the
	// depth guard must cover it too.
	p.exprDepth++
	defer func() { p.exprDepth-- }()
	if p.exprDepth > maxExprDepth {
		return nil, p.errf("expression nested deeper than %d", maxExprDepth)
	}
	if p.cur().kind == tokSymbol && p.cur().text == "-" {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "-", x: x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (expr, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSymbol && p.cur().text == "^" {
		p.advance()
		exp, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return binExpr{op: "^", x: base, y: exp}, nil
	}
	return base, nil
}

func (p *parser) parseAtom() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		p.advance()
		return numExpr(v), nil
	case t.kind == tokIdent:
		name := t.text
		p.advance()
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			p.advance()
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return unaryExpr{op: name, x: arg}, nil
		}
		return identExpr(name), nil
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
