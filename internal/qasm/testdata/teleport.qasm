// Quantum teleportation (unitary part), QASMBench style.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
// prepare the payload
u3(0.3,0.2,0.1) q[0];
// entangle the channel
h q[1];
cx q[1],q[2];
// Bell measurement basis
cx q[0],q[1];
h q[0];
barrier q;
measure q[0] -> c[0];
measure q[1] -> c[1];
