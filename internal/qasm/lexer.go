// Package qasm parses and prints a practical subset of OpenQASM 2.0:
// version header, includes, qreg/creg declarations, the qelib1 gate
// vocabulary, user-defined gates (expanded inline), whole-register
// broadcasting, and parameter expressions with pi and arithmetic.
// measure and barrier statements are accepted and skipped, since the
// pulse compiler consumes only the unitary part of a program.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single punctuation: ; , ( ) [ ] { } + - * / ^ ->
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
			} else if unicode.IsDigit(rune(ch)) {
				l.pos++
			} else if ch == 'e' || ch == 'E' {
				// exponent
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokSymbol, text: "->", line: l.line}, nil
	case strings.ContainsRune(";,()[]{}+-*/^=", rune(c)):
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// tokenize scans the whole source up front.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
