package qasm

import (
	"math"
	"strings"
	"testing"

	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func TestParseMinimal(t *testing.T) {
	prog, err := Parse(`
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumQubits != 2 || prog.Circuit.Len() != 2 {
		t.Fatalf("parsed %d qubits, %d ops", prog.Circuit.NumQubits, prog.Circuit.Len())
	}
	if prog.Measures != 1 {
		t.Fatalf("measures = %d", prog.Measures)
	}
	if prog.Circuit.Ops[0].G.Kind != gate.H || prog.Circuit.Ops[1].G.Kind != gate.CX {
		t.Fatalf("ops: %v", prog.Circuit.Ops)
	}
	if prog.Circuit.Ops[1].Qubits[0] != 0 || prog.Circuit.Ops[1].Qubits[1] != 1 {
		t.Fatalf("cx qubits: %v", prog.Circuit.Ops[1].Qubits)
	}
}

func TestParseParamExpressions(t *testing.T) {
	prog, err := Parse(`
qreg q[1];
rz(pi/2) q[0];
rx(-pi/4) q[0];
ry(2*pi/3 + 0.5) q[0];
u3(0.1, 0.2e1, 3^2) q[0];
p(cos(0)) q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	ops := prog.Circuit.Ops
	checks := []struct {
		idx  int
		p    int
		want float64
	}{
		{0, 0, math.Pi / 2},
		{1, 0, -math.Pi / 4},
		{2, 0, 2*math.Pi/3 + 0.5},
		{3, 1, 2.0},
		{3, 2, 9.0},
		{4, 0, 1.0},
	}
	for _, c := range checks {
		if got := ops[c.idx].G.Params[c.p]; math.Abs(got-c.want) > 1e-12 {
			t.Errorf("op %d param %d = %v, want %v", c.idx, c.p, got, c.want)
		}
	}
}

func TestParseBroadcast(t *testing.T) {
	prog, err := Parse(`
qreg q[3];
h q;
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 3 {
		t.Fatalf("broadcast produced %d ops", prog.Circuit.Len())
	}
	for i, op := range prog.Circuit.Ops {
		if op.Qubits[0] != i {
			t.Fatalf("op %d on qubit %d", i, op.Qubits[0])
		}
	}
}

func TestParseMultiRegister(t *testing.T) {
	prog, err := Parse(`
qreg a[2];
qreg b[2];
cx a[1],b[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	op := prog.Circuit.Ops[0]
	if op.Qubits[0] != 1 || op.Qubits[1] != 2 {
		t.Fatalf("flattening wrong: %v", op.Qubits)
	}
	if prog.Circuit.NumQubits != 4 {
		t.Fatalf("total qubits = %d", prog.Circuit.NumQubits)
	}
}

func TestParseCustomGate(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
gate mygate(theta) a, b {
  h a;
  cx a, b;
  rz(theta/2) b;
}
mygate(pi) q[1], q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	ops := prog.Circuit.Ops
	if len(ops) != 3 {
		t.Fatalf("expanded to %d ops", len(ops))
	}
	if ops[0].G.Kind != gate.H || ops[0].Qubits[0] != 1 {
		t.Fatalf("op0: %v", ops[0])
	}
	if ops[1].G.Kind != gate.CX || ops[1].Qubits[0] != 1 || ops[1].Qubits[1] != 0 {
		t.Fatalf("op1: %v", ops[1])
	}
	if math.Abs(ops[2].G.Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("op2 param: %v", ops[2].G.Params)
	}
}

func TestParseNestedCustomGates(t *testing.T) {
	prog, err := Parse(`
qreg q[2];
gate inner a { x a; }
gate outer a, b { inner a; cx a, b; inner b; }
outer q[0], q[1];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 3 {
		t.Fatalf("nested expansion: %d ops", prog.Circuit.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":      "qreg q[1]; bogus q[0];",
		"out of range":      "qreg q[1]; x q[5];",
		"unknown qreg":      "qreg q[1]; x r[0];",
		"bad register size": "qreg q[0];",
		"duplicate qreg":    "qreg q[1]; qreg q[2];",
		"missing semicolon": "qreg q[1]\nx q[0];",
		"wrong arity":       "qreg q[2]; cx q[0];",
		"wrong params":      "qreg q[1]; rz q[0];",
		"unknown param":     "qreg q[1]; rz(foo) q[0];",
		"unsupported":       "qreg q[1]; creg c[1]; if (c==1) x q[0];",
		"division by zero":  "qreg q[1]; rz(1/0) q[0];",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestParseComments(t *testing.T) {
	prog, err := Parse(`
// leading comment
qreg q[1]; // trailing
x q[0];
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 1 {
		t.Fatalf("ops = %d", prog.Circuit.Len())
	}
}

func TestParseBarrier(t *testing.T) {
	prog, err := Parse("qreg q[2]; x q[0]; barrier q; x q[1];")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Barriers != 1 || prog.Circuit.Len() != 2 {
		t.Fatalf("barriers=%d ops=%d", prog.Barriers, prog.Circuit.Len())
	}
}

func TestWriteRoundTrip(t *testing.T) {
	src := `
qreg q[3];
h q[0];
cx q[0],q[1];
rz(0.5) q[2];
ccx q[0],q[1],q[2];
u3(0.1,0.2,0.3) q[1];
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Write(prog.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	u1 := prog.Circuit.Unitary()
	u2 := prog2.Circuit.Unitary()
	if linalg.PhaseDistance(u1, u2) > 1e-9 {
		t.Fatal("round trip changed the unitary")
	}
}

func TestWriteRejectsBlocks(t *testing.T) {
	prog, err := Parse("qreg q[1]; x q[0];")
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	c.Append(gate.NewUnitary(linalg.Identity(2)), 0)
	if _, err := Write(c); err == nil {
		t.Fatal("expected error for block gate")
	}
}

func TestQelibGateNames(t *testing.T) {
	// Every supported gate name parses with the right parameter shape.
	src := `
qreg q[3];
id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0]; t q[0]; tdg q[0];
sx q[0]; sxdg q[0];
rx(0.1) q[0]; ry(0.2) q[0]; rz(0.3) q[0]; p(0.4) q[0]; u1(0.5) q[0];
u2(0.1,0.2) q[0]; u3(0.1,0.2,0.3) q[0]; u(0.1,0.2,0.3) q[0];
cx q[0],q[1]; cy q[0],q[1]; cz q[0],q[1]; ch q[0],q[1];
crx(0.1) q[0],q[1]; cry(0.2) q[0],q[1]; crz(0.3) q[0],q[1]; cp(0.4) q[0],q[1]; cu1(0.5) q[0],q[1];
rxx(0.6) q[0],q[1]; rzz(0.7) q[0],q[1];
swap q[0],q[1]; ccx q[0],q[1],q[2]; cswap q[0],q[1],q[2];
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.Len() != 33 {
		t.Fatalf("parsed %d ops, want 33", prog.Circuit.Len())
	}
}

func TestUnitaryOfParsedBell(t *testing.T) {
	prog, err := Parse("qreg q[2]; h q[0]; cx q[0],q[1];")
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Circuit.Unitary().MulVec([]complex128{1, 0, 0, 0})
	inv := 1 / math.Sqrt2
	if math.Abs(real(v[0])-inv) > 1e-9 || math.Abs(real(v[3])-inv) > 1e-9 {
		t.Fatalf("Bell from QASM: %v", v)
	}
}

func TestWriterOutputShape(t *testing.T) {
	prog, _ := Parse("qreg q[1]; x q[0];")
	out, err := Write(prog.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[1];", "x q[0];"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
