package qasm

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"epoc/internal/sim"
)

// TestParseTestdataFiles loads realistic QASM programs from disk —
// the kind of files QASMBench ships — and sanity-checks the parsed
// circuits.
func TestParseTestdataFiles(t *testing.T) {
	files, err := filepath.Glob("testdata/*.qasm")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected at least 3 testdata programs, found %d", len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if prog.Circuit.Len() == 0 {
			t.Fatalf("%s: empty circuit", f)
		}
	}
}

func TestTeleportFile(t *testing.T) {
	src, err := os.ReadFile("testdata/teleport.qasm")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Measures != 2 || prog.Barriers != 1 {
		t.Fatalf("measures=%d barriers=%d", prog.Measures, prog.Barriers)
	}
	if prog.Circuit.NumQubits != 3 {
		t.Fatalf("qubits = %d", prog.Circuit.NumQubits)
	}
}

func TestGroverFileAmplifies(t *testing.T) {
	src, err := os.ReadFile("testdata/grover_n3.qasm")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.RunCircuit(prog.Circuit)
	// One Grover iteration marking |101> pushes its probability well
	// above uniform (1/8).
	if p := s.Probability(5); p < 0.5 {
		t.Fatalf("marked-state probability %v", p)
	}
}

func TestQFTFileIsUniformOnZero(t *testing.T) {
	src, err := os.ReadFile("testdata/qft_n4.qasm")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.RunCircuit(prog.Circuit)
	for i, p := range s.Probabilities() {
		if math.Abs(p-1.0/16) > 1e-9 {
			t.Fatalf("QFT|0> not uniform at %d: %v", i, p)
		}
	}
}
