package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epoc/internal/gate"
	"epoc/internal/linalg"
)

const tol = 1e-9

func bell() *Circuit {
	c := New(2)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	return c
}

func TestAppendAndLen(t *testing.T) {
	c := bell()
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.CountKind(gate.H) != 1 || c.CountKind(gate.CX) != 1 {
		t.Fatal("CountKind wrong")
	}
	if c.TwoQubitCount() != 1 {
		t.Fatal("TwoQubitCount wrong")
	}
}

func TestAppendOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Append(gate.New(gate.CX), 0, 1)
}

func TestNewOpValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewOp(gate.New(gate.CX), 0) },    // wrong arity
		func() { NewOp(gate.New(gate.CX), 0, 0) }, // duplicate qubit
		func() { NewOp(gate.New(gate.X), -1) },    // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDepthSerialVsParallel(t *testing.T) {
	c := New(2)
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.X), 1)
	if c.Depth() != 1 {
		t.Fatalf("parallel X depth = %d", c.Depth())
	}
	c.Append(gate.New(gate.CX), 0, 1)
	if c.Depth() != 2 {
		t.Fatalf("depth after CX = %d", c.Depth())
	}
	c.Append(gate.New(gate.X), 0)
	if c.Depth() != 3 {
		t.Fatalf("depth after X = %d", c.Depth())
	}
}

func TestMomentsStructure(t *testing.T) {
	c := New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.H), 1)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.X), 2)
	layers := c.Moments()
	if len(layers) != 2 {
		t.Fatalf("expected 2 layers, got %d", len(layers))
	}
	if len(layers[0]) != 3 { // H0, H1, X2 all fit in layer 0
		t.Fatalf("layer 0 has %d ops", len(layers[0]))
	}
	if len(layers[1]) != 1 {
		t.Fatalf("layer 1 has %d ops", len(layers[1]))
	}
	// Total op count preserved.
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	if total != c.Len() {
		t.Fatal("Moments lost ops")
	}
}

func TestCriticalPathWeights(t *testing.T) {
	c := New(2)
	c.Append(gate.New(gate.X), 0)     // 10
	c.Append(gate.New(gate.X), 1)     // 10 (parallel)
	c.Append(gate.New(gate.CX), 0, 1) // 100
	w := func(op Op) float64 {
		if len(op.Qubits) == 2 {
			return 100
		}
		return 10
	}
	if got := c.CriticalPath(w); math.Abs(got-110) > tol {
		t.Fatalf("critical path = %v, want 110", got)
	}
}

func TestBellUnitary(t *testing.T) {
	u := bell().Unitary()
	// Bell circuit maps |00> to (|00> + |11>)/√2.
	v := u.MulVec([]complex128{1, 0, 0, 0})
	inv := 1 / math.Sqrt2
	if math.Abs(real(v[0])-inv) > tol || math.Abs(real(v[3])-inv) > tol {
		t.Fatalf("Bell state: %v", v)
	}
	if !u.IsUnitary(tol) {
		t.Fatal("circuit unitary is not unitary")
	}
}

func TestGHZUnitary(t *testing.T) {
	c := New(3)
	c.Append(gate.New(gate.H), 0)
	c.Append(gate.New(gate.CX), 0, 1)
	c.Append(gate.New(gate.CX), 1, 2)
	v := c.Unitary().MulVec([]complex128{1, 0, 0, 0, 0, 0, 0, 0})
	inv := 1 / math.Sqrt2
	if math.Abs(real(v[0])-inv) > tol || math.Abs(real(v[7])-inv) > tol {
		t.Fatalf("GHZ state: %v", v)
	}
}

func TestUnitaryOrdering(t *testing.T) {
	// X then Z on one qubit: U = Z·X (later ops multiply on the left).
	c := New(1)
	c.Append(gate.New(gate.X), 0)
	c.Append(gate.New(gate.Z), 0)
	want := gate.New(gate.Z).Matrix().Mul(gate.New(gate.X).Matrix())
	if !c.Unitary().Equal(want, tol) {
		t.Fatal("op ordering in Unitary is wrong")
	}
}

func TestInverseComposesToIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCircuit(3, 20, rng)
	inv := c.Inverse()
	u := c.Unitary().Mul(inv.Unitary())
	// c.Unitary()·inv.Unitary() applies inverse first then c — either
	// order must give the identity.
	if !u.Equal(linalg.Identity(8), 1e-8) {
		t.Fatal("C·C⁻¹ != I")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := bell()
	d := c.Clone()
	d.Append(gate.New(gate.X), 0)
	if c.Len() == d.Len() {
		t.Fatal("Clone shares op slice")
	}
	d.Ops[0].Qubits[0] = 1
	if c.Ops[0].Qubits[0] != 0 {
		t.Fatal("Clone shares qubit slices")
	}
}

func TestUsedQubits(t *testing.T) {
	c := New(5)
	c.Append(gate.New(gate.X), 1)
	c.Append(gate.New(gate.CX), 3, 1)
	got := c.UsedQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("UsedQubits = %v", got)
	}
}

func TestRemap(t *testing.T) {
	c := New(2)
	c.Append(gate.New(gate.CX), 0, 1)
	m := c.Remap(map[int]int{0: 2, 1: 0}, 3)
	if m.NumQubits != 3 {
		t.Fatal("Remap qubit count")
	}
	if m.Ops[0].Qubits[0] != 2 || m.Ops[0].Qubits[1] != 0 {
		t.Fatalf("Remap qubits = %v", m.Ops[0].Qubits)
	}
	// Missing mapping should panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing mapping")
		}
	}()
	c.Remap(map[int]int{0: 1}, 2)
}

func TestStatsAndString(t *testing.T) {
	c := bell()
	st := c.GetStats()
	if st.Qubits != 2 || st.Gates != 2 || st.TwoQubit != 1 || st.Depth != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if len(c.String()) == 0 || len(c.Ops[0].String()) == 0 {
		t.Fatal("empty String()")
	}
}

func TestQuickDepthNeverExceedsLen(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(4, 30, rng)
		return c.Depth() <= c.Len() && c.Depth() == len(c.Moments())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnitaryAlwaysUnitary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(3, 15, rng)
		return c.Unitary().IsUnitary(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseDepthEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(4, 25, rng)
		return c.Inverse().Depth() == c.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// randomCircuit builds a random circuit from a small gate set.
func randomCircuit(n, ops int, rng *rand.Rand) *Circuit {
	c := New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Append(gate.New(gate.H), rng.Intn(n))
		case 1:
			c.Append(gate.New(gate.RZ, rng.Float64()*2*math.Pi), rng.Intn(n))
		case 2:
			c.Append(gate.New(gate.RX, rng.Float64()*2*math.Pi), rng.Intn(n))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(gate.New(gate.CX), a, b)
		}
	}
	return c
}
