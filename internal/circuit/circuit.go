// Package circuit defines the quantum circuit intermediate
// representation used by every compiler pass: a sequence of gate
// applications on named qubits, with depth/moment analysis, full-
// register unitary construction, and structural edits (slicing,
// remapping, inversion).
//
// Qubit 0 is the least-significant bit of a basis-state index.
package circuit

import (
	"fmt"
	"strings"

	"epoc/internal/gate"
	"epoc/internal/linalg"
)

// Op is one gate application. Qubits[i] is the circuit qubit bound to
// gate-local qubit i (so for CX, Qubits[0] is the control).
type Op struct {
	G      gate.Gate
	Qubits []int
}

// NewOp builds an op, validating arity.
func NewOp(g gate.Gate, qubits ...int) Op {
	if len(qubits) != g.Qubits() {
		panic(fmt.Sprintf("circuit: gate %s wants %d qubits, got %v", g, g.Qubits(), qubits))
	}
	seen := map[int]bool{}
	for _, q := range qubits {
		if q < 0 || seen[q] {
			panic(fmt.Sprintf("circuit: invalid qubit list %v", qubits))
		}
		seen[q] = true
	}
	return Op{G: g, Qubits: append([]int(nil), qubits...)}
}

// String renders the op in QASM-like syntax.
func (o Op) String() string {
	qs := make([]string, len(o.Qubits))
	for i, q := range o.Qubits {
		qs[i] = fmt.Sprintf("q[%d]", q)
	}
	return fmt.Sprintf("%s %s", o.G, strings.Join(qs, ","))
}

// Circuit is an ordered list of ops over NumQubits qubits.
type Circuit struct {
	NumQubits int
	Ops       []Op
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{NumQubits: n}
}

// Append adds an op built from a gate and its qubits.
func (c *Circuit) Append(g gate.Gate, qubits ...int) *Circuit {
	op := NewOp(g, qubits...)
	for _, q := range qubits {
		if q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range (n=%d)", q, c.NumQubits))
		}
	}
	c.Ops = append(c.Ops, op)
	return c
}

// AppendOp adds a pre-built op, validating qubit range.
func (c *Circuit) AppendOp(op Op) *Circuit {
	for _, q := range op.Qubits {
		if q < 0 || q >= c.NumQubits {
			panic(fmt.Sprintf("circuit: qubit %d out of range (n=%d)", q, c.NumQubits))
		}
	}
	c.Ops = append(c.Ops, op)
	return c
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Ops = make([]Op, len(c.Ops))
	for i, op := range c.Ops {
		out.Ops[i] = Op{G: op.G, Qubits: append([]int(nil), op.Qubits...)}
	}
	return out
}

// Len returns the number of ops.
func (c *Circuit) Len() int { return len(c.Ops) }

// CountKind returns how many ops have the given gate kind.
func (c *Circuit) CountKind(k gate.Kind) int {
	n := 0
	for _, op := range c.Ops {
		if op.G.Kind == k {
			n++
		}
	}
	return n
}

// TwoQubitCount returns the number of ops touching two or more qubits.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, op := range c.Ops {
		if len(op.Qubits) >= 2 {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the longest
// qubit-dependency chain, with every gate costing one layer.
func (c *Circuit) Depth() int {
	front := make([]int, c.NumQubits)
	maxDepth := 0
	for _, op := range c.Ops {
		layer := 0
		for _, q := range op.Qubits {
			if front[q] > layer {
				layer = front[q]
			}
		}
		layer++
		for _, q := range op.Qubits {
			front[q] = layer
		}
		if layer > maxDepth {
			maxDepth = layer
		}
	}
	return maxDepth
}

// Moments partitions ops into layers: each layer holds ops whose qubits
// are disjoint and whose dependencies are all in earlier layers.
func (c *Circuit) Moments() [][]Op {
	front := make([]int, c.NumQubits)
	var layers [][]Op
	for _, op := range c.Ops {
		layer := 0
		for _, q := range op.Qubits {
			if front[q] > layer {
				layer = front[q]
			}
		}
		for len(layers) <= layer {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], op)
		for _, q := range op.Qubits {
			front[q] = layer + 1
		}
	}
	return layers
}

// CriticalPath returns the weighted depth of the circuit: the longest
// qubit-dependency chain where each op costs weight(op). This is the
// latency model used for pulse schedules where each op has a duration.
func (c *Circuit) CriticalPath(weight func(Op) float64) float64 {
	front := make([]float64, c.NumQubits)
	var max float64
	for _, op := range c.Ops {
		start := 0.0
		for _, q := range op.Qubits {
			if front[q] > start {
				start = front[q]
			}
		}
		end := start + weight(op)
		for _, q := range op.Qubits {
			front[q] = end
		}
		if end > max {
			max = end
		}
	}
	return max
}

// Unitary returns the full 2^n × 2^n unitary of the circuit. It is
// intended for small n (verification, block unitaries); the cost is
// O(len(Ops) · 4^n).
func (c *Circuit) Unitary() *linalg.Matrix {
	dim := 1 << c.NumQubits
	u := linalg.Identity(dim)
	for _, op := range c.Ops {
		g := linalg.EmbedOperator(op.G.Matrix(), op.Qubits, c.NumQubits)
		u = g.Mul(u)
	}
	return u
}

// Inverse returns the circuit implementing U† (ops reversed and
// daggered).
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits)
	for i := len(c.Ops) - 1; i >= 0; i-- {
		op := c.Ops[i]
		out.Append(op.G.Dagger(), op.Qubits...)
	}
	return out
}

// UsedQubits returns the sorted list of qubits touched by any op.
func (c *Circuit) UsedQubits() []int {
	seen := make([]bool, c.NumQubits)
	for _, op := range c.Ops {
		for _, q := range op.Qubits {
			seen[q] = true
		}
	}
	var out []int
	for q, s := range seen {
		if s {
			out = append(out, q)
		}
	}
	return out
}

// Remap returns a copy of the circuit on newN qubits with each qubit q
// replaced by mapping[q]. Every used qubit must be present in mapping.
func (c *Circuit) Remap(mapping map[int]int, newN int) *Circuit {
	out := New(newN)
	for _, op := range c.Ops {
		qs := make([]int, len(op.Qubits))
		for i, q := range op.Qubits {
			nq, ok := mapping[q]
			if !ok {
				panic(fmt.Sprintf("circuit: qubit %d missing from mapping", q))
			}
			qs[i] = nq
		}
		out.Append(op.G, qs...)
	}
	return out
}

// String renders the circuit one op per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit(%d qubits, %d ops)\n", c.NumQubits, len(c.Ops))
	for _, op := range c.Ops {
		b.WriteString("  " + op.String() + "\n")
	}
	return b.String()
}

// Stats summarizes a circuit for reports.
type Stats struct {
	Qubits   int
	Gates    int
	TwoQubit int
	Depth    int
}

// GetStats computes summary statistics.
func (c *Circuit) GetStats() Stats {
	return Stats{
		Qubits:   c.NumQubits,
		Gates:    len(c.Ops),
		TwoQubit: c.TwoQubitCount(),
		Depth:    c.Depth(),
	}
}
