package qoc

import (
	"math"
	"math/cmplx"
	"math/rand"

	"epoc/internal/faultclock"
	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
	"epoc/internal/obs"
	"epoc/internal/trace"
)

// GRAPEConfig tunes the optimizer.
type GRAPEConfig struct {
	MaxIter   int     // iteration budget (default 300)
	Target    float64 // stop once fidelity reaches this (default 0.999)
	LearnRate float64 // Adam step size in amplitude units (default: MaxAmp/8)
	Seed      int64   // initial-guess RNG seed (default 1)

	// Gate, when non-nil, is checked once per iteration
	// (faultclock.SiteGRAPEIter): on cancellation the run stops and
	// Result.Err carries the context error; on deadline expiry it
	// stops with Result.Err = faultclock.ErrBudget. Either way the
	// returned Result is the best found so far.
	Gate *faultclock.Gate

	// BudgetIters, when > 0, is an externally imposed iteration budget
	// below MaxIter: the run stops after that many iterations with
	// Result.Err = faultclock.ErrBudget unless the target was reached
	// first. Unlike MaxIter (a tuning default), hitting BudgetIters
	// marks the result degraded. Being a plain per-run count, it is
	// deterministic at any worker count.
	BudgetIters int

	// Obs, when non-nil, records per-run convergence metrics: the
	// iteration count and final fidelity distributions, the early-stop
	// reason counters (qoc/grape/stop/*), and a bounded per-iteration
	// fidelity series under "qoc/grape/fidelity".
	Obs *obs.Recorder

	// Span, when non-nil, is the trace span of the pulse being
	// optimized; the duration search hangs one "qoc/duration_probe"
	// child span off it per probe, annotated with the probed slot
	// count, achieved fidelity and iterations.
	Span *trace.Span
}

func (c *GRAPEConfig) defaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 300
	}
	if c.Target == 0 {
		c.Target = 0.999
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is an optimized pulse schedule. A Result is always the best
// the optimizer found before it stopped — Err classifies why it
// stopped, so early exits still carry usable partial work.
type Result struct {
	Amps       [][]float64 // [slot][control], rad/ns
	Fidelity   float64     // |tr(U†·target)|/dim achieved
	Iterations int
	Slots      int
	Duration   float64 // ns

	// Err is nil when the run completed (target reached or MaxIter),
	// faultclock.ErrBudget when a time/iteration budget stopped it
	// early (the Result is the best-so-far and the caller should mark
	// the pipeline degraded), or a context error when it was canceled
	// (the caller should discard the Result and propagate).
	Err error
}

// Fidelity returns the phase-invariant gate fidelity |tr(A†B)|/dim.
func Fidelity(a, b *linalg.Matrix) float64 {
	return cmplx.Abs(linalg.HSInner(a, b)) / float64(a.Rows)
}

// GRAPE optimizes piecewise-constant control amplitudes over the given
// number of time slots to implement the target unitary up to global
// phase. Gradients are the standard first-order GRAPE gradients; the
// ascent uses Adam with projection onto the amplitude bounds.
func GRAPE(m *Model, target *linalg.Matrix, slots int, cfg GRAPEConfig) Result {
	cfg.defaults()
	nc := len(m.Controls)
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Initial guess: small random amplitudes.
	amps := make([][]float64, slots)
	for k := range amps {
		amps[k] = make([]float64, nc)
		for j := range amps[k] {
			amps[k][j] = (rng.Float64()*2 - 1) * m.MaxAmp[j] * 0.3
		}
	}
	return grapeFrom(m, target, amps, cfg)
}

// grapeFrom runs the GRAPE ascent from an explicit initial amplitude
// schedule (mutated in place as the working buffer). The ascent loop
// is the pipeline's hottest path: all per-iteration memory comes from
// the propagator cache and the per-run kernel workspace allocated up
// front, never from this loop body, and the propagator cache recomputes
// only the slices whose controls actually changed since the previous
// iteration (saturated or warm-started slices are reused).
//
//epoc:hot
func grapeFrom(m *Model, target *linalg.Matrix, amps [][]float64, cfg GRAPEConfig) Result {
	cfg.defaults()
	if target.Rows != m.Dim() {
		panic("qoc: target dimension does not match model")
	}
	nc := len(m.Controls)
	dim := m.Dim()
	slots := len(amps)

	lr := cfg.LearnRate
	//epoc:lint-ignore floatcmp zero-value sentinel: unset LearnRate defaults to 0.02
	if lr == 0 {
		lr = 0.02
	}
	mAdam := makeGrid(slots, nc)
	vAdam := makeGrid(slots, nc)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	ws := kernel.NewWorkspace()
	props := newPropCache(m, slots, ws)
	left := linalg.NewMatrix(dim, dim)
	rl := linalg.NewMatrix(dim, dim)
	bestAmps := makeGrid(slots, nc)
	haveBest := false

	best := Result{Fidelity: -1}
	fid := 0.0
	iter := 0
	var stop error
	for ; iter < cfg.MaxIter; iter++ {
		// Forward propagation through the cache: unchanged slices keep
		// their step unitaries, prefix/suffix products rebuild only
		// from the first/last changed slice inward.
		u := props.update(amps)
		z := linalg.HSInner(target, u) // tr(target†·U)
		fid = cmplx.Abs(z) / float64(dim)
		cfg.Obs.Sample("qoc/grape/fidelity", fid)
		if fid > best.Fidelity {
			best.Fidelity = fid
			copyAmps(bestAmps, amps)
			haveBest = true
			best.Iterations = iter
		}
		if fid >= cfg.Target {
			break
		}
		// Budget/cancellation checks sit after the forward propagation
		// so even a first-iteration stop returns a Result whose
		// fidelity was actually evaluated, never uninitialized amps.
		if err := cfg.Gate.Check(faultclock.SiteGRAPEIter); err != nil {
			stop = err
			break
		}
		if cfg.BudgetIters > 0 && iter+1 >= cfg.BudgetIters {
			stop = faultclock.ErrBudget
			break
		}

		// Gradients: dz/du_{k,j} = -i·Dt·tr(target†·suffix_{k+1}·H_j·step_k·prefix_k)
		//                       = -i·Dt·tr(M_k·H_j·Nk) with trace cycling.
		// dF/du = Re(conj(z)·dz/du)/(|z|·dim).
		zConj := cmplx.Conj(z)
		zAbs := cmplx.Abs(z)
		if zAbs < 1e-14 {
			zAbs = 1e-14
		}
		for k := 0; k < slots; k++ {
			// left = target†·suffix_{k+1} (adjoint fused, never
			// materialized); right = step_k·prefix_k = prefix_{k+1}.
			linalg.AdjointMulInto(left, target, props.suffix[k+1])
			right := props.prefix[k+1]
			// tr(left·H_j·right) = tr((right·left)·H_j)
			linalg.MulInto(ws, rl, right, left)
			for j := 0; j < nc; j++ {
				tr := traceProduct(rl, m.Controls[j])
				dz := complex(0, -m.Dt) * tr
				grad := real(zConj*dz) / (zAbs * float64(dim))
				// Adam ascent step (maximize fidelity).
				mAdam[k][j] = beta1*mAdam[k][j] + (1-beta1)*grad
				vAdam[k][j] = beta2*vAdam[k][j] + (1-beta2)*grad*grad
				mh := mAdam[k][j] / (1 - math.Pow(beta1, float64(iter+1)))
				vh := vAdam[k][j] / (1 - math.Pow(beta2, float64(iter+1)))
				amps[k][j] += lr * m.MaxAmp[j] * mh / (math.Sqrt(vh) + eps)
				// Project onto the hardware amplitude bound.
				if amps[k][j] > m.MaxAmp[j] {
					amps[k][j] = m.MaxAmp[j]
				} else if amps[k][j] < -m.MaxAmp[j] {
					amps[k][j] = -m.MaxAmp[j]
				}
			}
		}
	}
	best.Slots = slots
	best.Duration = float64(slots) * m.Dt
	if haveBest {
		best.Amps = bestAmps
	} else {
		best.Amps = cloneAmps(amps)
	}
	best.Iterations = iter
	best.Err = stop
	if r := cfg.Obs; r != nil {
		reason := "max_iter"
		switch {
		case fid >= cfg.Target:
			reason = "target"
		case faultclock.IsBudget(stop):
			reason = "budget"
		case stop != nil:
			reason = "canceled"
		}
		r.Add("qoc/grape/runs", 1)
		r.Add("qoc/grape/stop/"+reason, 1)
		r.Observe("qoc/grape/iterations", float64(iter))
		r.Observe("qoc/grape/final_fidelity", best.Fidelity)
		r.Eventf("qoc/grape", "slots=%d iters=%d fid=%.6f stop=%s", slots, iter, best.Fidelity, reason)
	}
	return best
}

// makeGrid allocates a zeroed slots×nc working grid (one row per time
// slot, one column per control).
func makeGrid(slots, nc int) [][]float64 {
	g := make([][]float64, slots)
	for k := range g {
		g[k] = make([]float64, nc)
	}
	return g
}

// traceProduct returns tr(a·b) without materializing the product.
//
//epoc:hot
func traceProduct(a, b *linalg.Matrix) complex128 {
	var s complex128
	n := a.Rows
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		for k, av := range arow {
			//epoc:lint-ignore floatcmp exact-zero sparsity fast path in the trace kernel
			if av == 0 {
				continue
			}
			s += av * b.Data[k*n+i]
		}
	}
	return s
}

func cloneAmps(a [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		out[i] = append([]float64(nil), a[i]...)
	}
	return out
}

// copyAmps copies src into the preallocated dst grid of the same shape.
func copyAmps(dst, src [][]float64) {
	for i := range src {
		copy(dst[i], src[i])
	}
}

// Runner produces an optimized pulse for a given slot count; used by
// the duration search to abstract over GRAPE and CRAB.
type Runner func(slots int) Result

// ObserveProbes wraps a Runner so every duration-search probe is
// recorded: a per-probe timer ("qoc/duration_probe"), the probed slot
// sequence ("qoc/probe_slots" series, in probe order), and a trace
// event per probe. With a nil recorder the Runner is returned as-is.
func ObserveProbes(r *obs.Recorder, run Runner) Runner {
	if r == nil {
		return run
	}
	return func(slots int) Result {
		sp := r.Span("qoc/duration_probe")
		res := run(slots)
		sp.End()
		r.Add("qoc/duration_probes", 1)
		r.Sample("qoc/probe_slots", float64(slots))
		r.Eventf("qoc/search", "probe slots=%d fid=%.6f iters=%d", slots, res.Fidelity, res.Iterations)
		return res
	}
}

// TraceProbes wraps a Runner so every duration-search probe records a
// "qoc/duration_probe" child span under the pulse's span, annotated
// with the probed slot count and the probe's achieved fidelity and
// iteration count. Slot counts are unique per search (SearchDuration
// memoizes probes), which keeps sibling probe spans canonically
// orderable and traced compiles byte-identical across worker counts.
// With a nil span the Runner is returned as-is.
func TraceProbes(sp *trace.Span, run Runner) Runner {
	if sp == nil {
		return run
	}
	return func(slots int) Result {
		psp := sp.Child("qoc/duration_probe").SetInt("slots", int64(slots))
		defer psp.End()
		res := run(slots)
		psp.SetFloat("fidelity", res.Fidelity).SetInt("iters", int64(res.Iterations))
		return res
	}
}

// SearchDuration finds the smallest slot count in [minSlots, maxSlots]
// whose fidelity reaches target, using binary search over the
// quantized slot grid (the AccQOC strategy). It returns the best pulse
// found; if even maxSlots cannot reach the target, the maxSlots result
// is returned with its achieved fidelity.
//
// The gate g (nil for unbudgeted searches) is checked before every
// probe (faultclock.SiteDurationProbe), and a probe that itself
// stopped early (Result.Err non-nil) stops the search. In both
// early-exit cases the search returns its best-so-far: the best
// Result across the probes that ran — target-reaching probes beat
// higher raw fidelity, and shorter target-reaching pulses beat longer
// ones — with Err set to the cause. A budget exit therefore still
// yields a usable (if longer-than-optimal) pulse; a cancellation exit
// tells the caller to discard it.
func SearchDuration(g *faultclock.Gate, minSlots, maxSlots, step int, target float64, run Runner) Result {
	if minSlots < 1 {
		minSlots = 1
	}
	if step < 1 {
		step = 1
	}
	// Quantized grid of candidate slot counts.
	var grid []int
	for s := minSlots; s < maxSlots; s += step {
		grid = append(grid, s)
	}
	grid = append(grid, maxSlots)

	best := Result{Fidelity: -1}
	haveBest := false
	// improves reports whether b beats the incumbent a.
	improves := func(a, b Result) bool {
		aHit, bHit := a.Fidelity >= target, b.Fidelity >= target
		if aHit != bHit {
			return bHit
		}
		if aHit && bHit {
			return b.Slots < a.Slots
		}
		return b.Fidelity > a.Fidelity
	}
	cache := map[int]Result{}
	memo := func(slots int) (Result, error) {
		if r, ok := cache[slots]; ok {
			return r, nil
		}
		if err := g.Check(faultclock.SiteDurationProbe); err != nil {
			return Result{}, err
		}
		r := run(slots)
		cache[slots] = r
		// Canceled probes are discarded; budget-degraded probes still
		// carry a best-so-far pulse and may stand as the search result.
		if r.Err == nil || faultclock.IsBudget(r.Err) {
			if !haveBest || improves(best, r) {
				best = r
				haveBest = true
			}
		}
		return r, r.Err
	}
	partial := func(err error) Result {
		out := best
		out.Err = err
		return out
	}

	lo, hi := 0, len(grid)-1
	r, err := memo(grid[hi])
	if err != nil {
		return partial(err)
	}
	if r.Fidelity < target {
		return r // even the longest pulse fails; report it
	}
	for lo < hi {
		mid := (lo + hi) / 2
		rm, err := memo(grid[mid])
		if err != nil {
			return partial(err)
		}
		if rm.Fidelity >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r, err = memo(grid[lo])
	if err != nil {
		return partial(err)
	}
	return r
}

// DurationSearch is SearchDuration specialized to GRAPE.
func DurationSearch(m *Model, target *linalg.Matrix, minSlots, maxSlots int, step int, cfg GRAPEConfig) Result {
	cfg.defaults()
	return SearchDuration(cfg.Gate, minSlots, maxSlots, step, cfg.Target, ObserveProbes(cfg.Obs, TraceProbes(cfg.Span, func(slots int) Result {
		return GRAPE(m, target, slots, cfg)
	})))
}

// DurationSearchCRAB is SearchDuration specialized to CRAB.
func DurationSearchCRAB(m *Model, target *linalg.Matrix, minSlots, maxSlots int, step int, cfg CRABConfig) Result {
	cfg.defaults()
	return SearchDuration(cfg.Gate, minSlots, maxSlots, step, cfg.Target, ObserveProbes(cfg.Obs, TraceProbes(cfg.Span, func(slots int) Result {
		return CRAB(m, target, slots, cfg)
	})))
}
