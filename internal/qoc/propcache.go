package qoc

import (
	"math"

	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
)

// propCache holds the propagator state of one GRAPE run: the per-slice
// step unitaries e^{-i·H_k·Dt}, the prefix products U_{k-1}···U_0 and
// the suffix products U_{S-1}···U_k, all in matrices allocated once at
// construction, plus the amplitude schedule each slice's step was last
// computed from.
//
// Reuse rule (DESIGN.md §14): a slice's step — and every prefix entry
// at or after the first changed slice and every suffix entry at or
// before the last changed slice — is invalidated exactly when its
// control amplitudes differ bitwise from the cached ones. Bitwise
// comparison (not tolerance) is what keeps reuse sound: a reused step
// is the very float sequence a recompute would produce, so cached and
// uncached runs are byte-identical at any worker count. In the Adam
// ascent this pays whenever slices saturate at the hardware amplitude
// bound or a warm-started schedule only locally differs; callers that
// change one slice at a time (gradient probes, CRAB restarts) pay
// O(slots) products instead of O(slots) eigendecompositions.
type propCache struct {
	m     *Model
	ws    *kernel.Workspace
	slots int

	steps  []*linalg.Matrix // steps[k] = e^{-i·H(amps[k])·Dt}
	prefix []*linalg.Matrix // prefix[k] = steps[k-1]···steps[0], prefix[0] = I
	suffix []*linalg.Matrix // suffix[k] = steps[slots-1]···steps[k], suffix[slots] = I

	ham  *linalg.Matrix // slot-Hamiltonian assembly scratch
	prev [][]float64    // amplitudes each cached step was built from
	seen []bool         // slice k has ever been computed

	// stepRecomputes counts slice propagator recomputations across the
	// cache's lifetime — the counting-harness hook asserting that only
	// changed slices recompute.
	stepRecomputes int
}

// newPropCache allocates the full propagator state for a slots-slice
// schedule. All per-iteration work after this call draws on ws or on
// the matrices allocated here.
func newPropCache(m *Model, slots int, ws *kernel.Workspace) *propCache {
	dim := m.Dim()
	p := &propCache{
		m:      m,
		ws:     ws,
		slots:  slots,
		steps:  make([]*linalg.Matrix, slots),
		prefix: make([]*linalg.Matrix, slots+1),
		suffix: make([]*linalg.Matrix, slots+1),
		ham:    linalg.NewMatrix(dim, dim),
		prev:   makeGrid(slots, len(m.Controls)),
		seen:   make([]bool, slots),
	}
	for k := 0; k < slots; k++ {
		p.steps[k] = linalg.NewMatrix(dim, dim)
	}
	for k := 0; k <= slots; k++ {
		p.prefix[k] = linalg.NewMatrix(dim, dim)
		p.suffix[k] = linalg.NewMatrix(dim, dim)
	}
	setIdentity(p.prefix[0])
	setIdentity(p.suffix[slots])
	return p
}

// update refreshes the propagator state for the given amplitude
// schedule, recomputing only the slices whose controls changed since
// the last call, and returns the total unitary U = prefix[slots].
//
//epoc:hot
func (p *propCache) update(amps [][]float64) *linalg.Matrix {
	first, last := p.slots, -1
	for k := 0; k < p.slots; k++ {
		if p.seen[k] && sameAmps(p.prev[k], amps[k]) {
			continue
		}
		p.m.slotHamiltonianInto(p.ham, amps[k])
		linalg.ExpIHermitianInto(p.ws, p.steps[k], p.ham, -p.m.Dt)
		copy(p.prev[k], amps[k])
		p.seen[k] = true
		p.stepRecomputes++
		if k < first {
			first = k
		}
		last = k
	}
	// Prefix entries before the first changed slice and suffix entries
	// after the last changed one are still valid; rebuild the rest.
	for k := first; k < p.slots; k++ {
		linalg.MulInto(p.ws, p.prefix[k+1], p.steps[k], p.prefix[k])
	}
	for k := last; k >= 0; k-- {
		linalg.MulInto(p.ws, p.suffix[k], p.suffix[k+1], p.steps[k])
	}
	return p.prefix[p.slots]
}

// sameAmps reports whether a slice's control amplitudes are bitwise
// unchanged. NaN compares unequal to itself, so a NaN amplitude can
// never be wrongly reused.
func sameAmps(a, b []float64) bool {
	for i := range a {
		//epoc:lint-ignore floatcmp bitwise cache-invalidation key: reuse must be exact, tolerance would fork cached and uncached trajectories
		if a[i] != b[i] || math.Signbit(a[i]) != math.Signbit(b[i]) {
			return false
		}
	}
	return true
}

// setIdentity clears m and writes the identity.
func setIdentity(m *linalg.Matrix) {
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Rows+i] = 1
	}
}
