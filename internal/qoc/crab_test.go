package qoc

import (
	"math"
	"testing"

	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func TestCRABXGate(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := CRAB(m, gate.New(gate.X).Matrix(), 16, CRABConfig{MaxIter: 3000})
	if res.Fidelity < 0.999 {
		t.Fatalf("CRAB X fidelity %v", res.Fidelity)
	}
	// Amplitudes respect bounds.
	for _, slot := range res.Amps {
		for j, a := range slot {
			if math.Abs(a) > m.MaxAmp[j]+1e-12 {
				t.Fatalf("CRAB amplitude %v exceeds bound %v", a, m.MaxAmp[j])
			}
		}
	}
	// Propagation reproduces the claimed fidelity.
	u := m.Propagate(res.Amps)
	if f := Fidelity(u, gate.New(gate.X).Matrix()); math.Abs(f-res.Fidelity) > 1e-9 {
		t.Fatalf("propagated %v vs claimed %v", f, res.Fidelity)
	}
}

func TestCRABHGate(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := CRAB(m, gate.New(gate.H).Matrix(), 16, CRABConfig{MaxIter: 3000, Seed: 3})
	if res.Fidelity < 0.995 {
		t.Fatalf("CRAB H fidelity %v", res.Fidelity)
	}
}

func TestCRABTooShortFails(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := CRAB(m, gate.New(gate.X).Matrix(), 1, CRABConfig{MaxIter: 500})
	if res.Fidelity > 0.99 {
		t.Fatalf("impossible CRAB pulse claims %v", res.Fidelity)
	}
}

func TestCRABDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CRAB(StandardModel(1, ModelOptions{}), linalg.Identity(4), 8, CRABConfig{})
}

func TestSimilarityMetric(t *testing.T) {
	x := gate.New(gate.X).Matrix()
	if Similarity(x, x) > 1e-12 {
		t.Fatal("self-similarity should be 0")
	}
	if Similarity(x, x.Scale(complex(0, 1))) > 1e-9 {
		t.Fatal("similarity should ignore global phase")
	}
	z := gate.New(gate.Z).Matrix()
	if Similarity(x, z) < 0.5 {
		t.Fatal("X and Z should be far apart")
	}
}

func TestMSTOrderStructure(t *testing.T) {
	rng := newRand(11)
	// A cluster of nearby unitaries plus one far outlier.
	base := linalg.RandomUnitary(4, rng)
	us := []*linalg.Matrix{
		base,
		base.Mul(linalg.Expm(linalg.RandomHermitian(4, rng).Scale(complex(0, 0.01)))),
		base.Mul(linalg.Expm(linalg.RandomHermitian(4, rng).Scale(complex(0, 0.02)))),
		linalg.RandomUnitary(4, rng),
	}
	order, parent := MSTOrder(us)
	if len(order) != 4 {
		t.Fatalf("order covers %d of 4", len(order))
	}
	if order[0] != 0 || parent[0] != -1 {
		t.Fatal("root should be index 0 with no parent")
	}
	// Every non-root parent must already be placed when its child is.
	seen := map[int]bool{}
	for _, v := range order {
		if v != 0 && !seen[parent[v]] {
			t.Fatalf("parent %d of %d not yet visited", parent[v], v)
		}
		seen[v] = true
	}
	// The nearby unitaries should attach to the cluster, not the outlier.
	if parent[1] == 3 || parent[2] == 3 {
		t.Fatal("cluster members attached to the outlier")
	}
}

func TestMSTOrderEmpty(t *testing.T) {
	order, parent := MSTOrder(nil)
	if len(order) != 0 || len(parent) != 0 {
		t.Fatal("empty MST should be empty")
	}
}

func TestWarmStartGRAPEConvergesFaster(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	target := gate.New(gate.CX).Matrix()
	cold := GRAPE(m, target, 60, GRAPEConfig{MaxIter: 600})
	if cold.Fidelity < 0.995 {
		t.Fatalf("cold GRAPE fidelity %v", cold.Fidelity)
	}
	// Perturb the target slightly and warm-start from the cold pulse.
	rng := newRand(5)
	perturbed := target.Mul(linalg.Expm(linalg.RandomHermitian(4, rng).Scale(complex(0, 0.02))))
	warm := WarmStartGRAPE(m, perturbed, 60, cold.Amps, GRAPEConfig{MaxIter: 600})
	if warm.Fidelity < 0.995 {
		t.Fatalf("warm GRAPE fidelity %v", warm.Fidelity)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start (%d iters) not faster than cold (%d iters)",
			warm.Iterations, cold.Iterations)
	}
}

func TestWarmStartEmptyFallsBack(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := WarmStartGRAPE(m, gate.New(gate.X).Matrix(), 12, nil, GRAPEConfig{MaxIter: 400})
	if res.Fidelity < 0.999 {
		t.Fatalf("fallback warm start fidelity %v", res.Fidelity)
	}
}

func TestSortBySize(t *testing.T) {
	rng := newRand(9)
	us := []*linalg.Matrix{
		linalg.RandomUnitary(4, rng),
		linalg.RandomUnitary(2, rng),
		linalg.RandomUnitary(8, rng),
		linalg.RandomUnitary(2, rng),
	}
	idx := SortBySize(us)
	sizes := []int{us[idx[0]].Rows, us[idx[1]].Rows, us[idx[2]].Rows, us[idx[3]].Rows}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("not sorted: %v", sizes)
		}
	}
}
