package qoc

import (
	"math"
	"math/rand"
	"testing"

	"epoc/internal/linalg"
	"epoc/internal/linalg/kernel"
)

func randSchedule(m *Model, slots int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	amps := makeGrid(slots, len(m.Controls))
	for k := range amps {
		for j := range amps[k] {
			amps[k][j] = (rng.Float64()*2 - 1) * m.MaxAmp[j] * 0.5
		}
	}
	return amps
}

// naivePropagate reproduces the pre-cache GRAPE forward pass: fresh
// Hamiltonians, fresh eigendecompositions, fresh products every call.
// It is both the equivalence oracle for propCache and the baseline in
// BenchmarkKernelGrapePropagatorNaive.
func naivePropagate(m *Model, amps [][]float64) *linalg.Matrix {
	slots := len(amps)
	steps := make([]*linalg.Matrix, slots)
	for k := 0; k < slots; k++ {
		steps[k] = linalg.ExpIHermitian(m.slotHamiltonian(amps[k]), -m.Dt)
	}
	u := linalg.Identity(m.Dim())
	for k := 0; k < slots; k++ {
		u = steps[k].Mul(u)
	}
	return u
}

// TestPropCacheRecomputesOnlyChangedSlices is the counting harness of
// the propagator-reuse contract: the stepRecomputes counter must grow
// by exactly the number of slices whose amplitudes changed bitwise.
func TestPropCacheRecomputesOnlyChangedSlices(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	const slots = 6
	amps := randSchedule(m, slots, 7)

	pc := newPropCache(m, slots, kernel.NewWorkspace())

	// Cold update: every slice computes once.
	pc.update(amps)
	if pc.stepRecomputes != slots {
		t.Fatalf("cold update recomputed %d slices, want %d", pc.stepRecomputes, slots)
	}

	// Identical schedule: nothing recomputes.
	pc.update(amps)
	if pc.stepRecomputes != slots {
		t.Fatalf("no-op update recomputed %d slices total, want %d", pc.stepRecomputes, slots)
	}

	// One changed slice: exactly one recompute.
	amps[3][0] += 1e-3
	pc.update(amps)
	if pc.stepRecomputes != slots+1 {
		t.Fatalf("single-slice update recomputed %d slices total, want %d", pc.stepRecomputes, slots+1)
	}

	// Two changed slices at the ends: exactly two recomputes, and the
	// full prefix/suffix chains rebuild without disturbing the count.
	amps[0][1] -= 2e-3
	amps[slots-1][2] += 3e-3
	pc.update(amps)
	if pc.stepRecomputes != slots+3 {
		t.Fatalf("two-slice update recomputed %d slices total, want %d", pc.stepRecomputes, slots+3)
	}
}

// TestPropCacheMatchesNaivePropagation pins the reuse soundness rule:
// after any mix of cold, partial, and no-op updates, the cached total
// unitary is byte-identical to a from-scratch recompute.
func TestPropCacheMatchesNaivePropagation(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	const slots = 5
	amps := randSchedule(m, slots, 11)

	pc := newPropCache(m, slots, kernel.NewWorkspace())
	pc.update(amps)

	// Mutate a few slices across several updates, as Adam would.
	for round := 0; round < 4; round++ {
		for _, k := range []int{round % slots, (round * 2) % slots} {
			amps[k][round%len(amps[k])] += 1e-4 * float64(round+1)
		}
		got := pc.update(amps)
		want := naivePropagate(m, amps)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("round %d: cached U differs from naive at flat index %d: %v vs %v",
					round, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestPropCacheNaNNeverReused guards the bitwise comparison rule: a NaN
// amplitude compares unequal to itself, so a poisoned slice recomputes
// on every update instead of being wrongly treated as unchanged.
func TestPropCacheNaNNeverReused(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	const slots = 2
	amps := randSchedule(m, slots, 3)
	amps[1][0] = math.NaN()

	pc := newPropCache(m, slots, kernel.NewWorkspace())
	pc.update(amps)
	pc.update(amps)
	if pc.stepRecomputes != slots+1 {
		t.Fatalf("NaN slice recomputed %d times total, want %d (once per update)", pc.stepRecomputes, slots+1)
	}
}

// BenchmarkKernelGrapePropagator measures the cached forward pass under
// the access pattern the Adam ascent produces near convergence: a
// handful of slices change per iteration, the rest are saturated at the
// amplitude bound. The Naive twin reproduces the pre-cache code path
// (fresh eigendecompositions and products for every slice, every call);
// the acceptance criterion is the cached loop at ≥2× the naive one.
func BenchmarkKernelGrapePropagator(b *testing.B) {
	m := StandardModel(2, ModelOptions{})
	const slots = 24
	amps := randSchedule(m, slots, 1)
	pc := newPropCache(m, slots, kernel.NewWorkspace())
	pc.update(amps)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Two changed slices per iteration, like a near-converged ascent.
		amps[i%slots][0] += 1e-6
		amps[(i+slots/2)%slots][1] -= 1e-6
		pc.update(amps)
	}
}

func BenchmarkKernelGrapePropagatorNaive(b *testing.B) {
	m := StandardModel(2, ModelOptions{})
	const slots = 24
	amps := randSchedule(m, slots, 1)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		amps[i%slots][0] += 1e-6
		amps[(i+slots/2)%slots][1] -= 1e-6
		naivePropagate(m, amps)
	}
}
