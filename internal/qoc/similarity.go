package qoc

import (
	"math"
	"sort"

	"epoc/internal/linalg"
)

// Similarity returns a distance in [0, √2] between two equal-size
// unitaries, invariant under global phase — the metric AccQOC's
// similarity graph uses to order pulse construction so each new
// optimization can warm-start from its nearest solved neighbour.
func Similarity(a, b *linalg.Matrix) float64 {
	return linalg.PhaseDistance(a, b)
}

// MSTOrder returns an ordering of the unitaries along a minimum
// spanning tree of their similarity graph (Prim's algorithm, starting
// from index 0), together with each element's tree parent (-1 for the
// root). Visiting unitaries in this order and warm-starting from the
// parent's pulse reproduces AccQOC's accelerated library construction.
func MSTOrder(us []*linalg.Matrix) (order []int, parent []int) {
	n := len(us)
	order = make([]int, 0, n)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	if n == 0 {
		return order, parent
	}
	inTree := make([]bool, n)
	dist := make([]float64, n)
	via := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		via[i] = -1
	}
	dist[0] = 0
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		parent[best] = via[best]
		order = append(order, best)
		for i := 0; i < n; i++ {
			if inTree[i] || us[i].Rows != us[best].Rows {
				continue
			}
			if d := Similarity(us[best], us[i]); d < dist[i] {
				dist[i] = d
				via[i] = best
			}
		}
	}
	return order, parent
}

// WarmStartGRAPE runs GRAPE initialized from a previous pulse's
// amplitudes (truncated or zero-padded to the requested slot count)
// instead of a random guess. With a close warm start the optimizer
// typically converges in a fraction of the iterations.
func WarmStartGRAPE(m *Model, target *linalg.Matrix, slots int, warm [][]float64, cfg GRAPEConfig) Result {
	cfg.defaults()
	if len(warm) == 0 {
		return GRAPE(m, target, slots, cfg)
	}
	nc := len(m.Controls)
	init := make([][]float64, slots)
	for s := 0; s < slots; s++ {
		init[s] = make([]float64, nc)
		if s < len(warm) {
			copy(init[s], warm[s])
		}
	}
	return grapeFrom(m, target, init, cfg)
}

// Nearest returns the index of the candidate closest to target under
// Similarity, considering only same-dimension candidates within
// maxDist, or -1 when none qualifies. Ties keep the lowest index, so
// given a fixed candidate order the choice is deterministic — the
// warm-start selector in core depends on that for byte-identical
// output at any worker count.
func Nearest(cands []*linalg.Matrix, target *linalg.Matrix, maxDist float64) (idx int, dist float64) {
	idx, dist = -1, math.Inf(1)
	for i, c := range cands {
		if c == nil || c.Rows != target.Rows {
			continue
		}
		if d := Similarity(c, target); d < dist && d <= maxDist {
			idx, dist = i, d
		}
	}
	return idx, dist
}

// SortBySize groups unitaries by dimension (ascending), a cheap
// preprocessing step before MST ordering so Similarity only compares
// same-size matrices.
func SortBySize(us []*linalg.Matrix) []int {
	idx := make([]int, len(us))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return us[idx[a]].Rows < us[idx[b]].Rows })
	return idx
}
