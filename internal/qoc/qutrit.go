package qoc

import (
	"math"
	"math/cmplx"

	"epoc/internal/linalg"
)

// QutritModel is a three-level transmon in the rotating frame of its
// 0↔1 transition: the |2⟩ level sits at the anharmonicity α (rad/ns,
// negative for transmons) and couples to the same drive, which is why
// fast Gaussian pulses leak and DRAG pulses exist. It complements the
// two-level Model for pulse-shape studies.
type QutritModel struct {
	Anharmonicity float64 // α, rad/ns (typically ≈ -2π·0.3 GHz ≈ -2.1)
	Dt            float64 // slot width, ns
	drift         *linalg.Matrix
	driveX        *linalg.Matrix
	driveY        *linalg.Matrix
}

// NewQutritModel builds the three-level model.
func NewQutritModel(anharmonicity, dt float64) *QutritModel {
	m := &QutritModel{Anharmonicity: anharmonicity, Dt: dt}
	// Rotating frame at ω01: H0 = α |2⟩⟨2|.
	m.drift = linalg.NewMatrix(3, 3)
	m.drift.Set(2, 2, complex(anharmonicity, 0))
	// Charge drive: (a + a†)/2 with bosonic matrix elements 1, √2.
	s2 := complex(math.Sqrt2, 0)
	m.driveX = linalg.FromRows([][]complex128{
		{0, 0.5, 0},
		{0.5, 0, s2 / 2},
		{0, s2 / 2, 0},
	})
	m.driveY = linalg.FromRows([][]complex128{
		{0, -0.5i, 0},
		{0.5i, 0, -1i * s2 / 2},
		{0, 1i * s2 / 2, 0},
	})
	return m
}

// Propagate evolves the identity under the sampled I/Q drive
// amplitudes ([slot][2]) and returns the 3×3 unitary.
func (m *QutritModel) Propagate(iq [][]float64) *linalg.Matrix {
	u := linalg.Identity(3)
	for _, slot := range iq {
		h := m.drift.Clone()
		h.AddInPlace(m.driveX.Scale(complex(slot[0], 0)))
		if len(slot) > 1 {
			h.AddInPlace(m.driveY.Scale(complex(slot[1], 0)))
		}
		u = linalg.ExpIHermitian(h, -m.Dt).Mul(u)
	}
	return u
}

// GateFidelity returns the average |tr|-fidelity of the evolution
// restricted to the computational subspace against a 2×2 target.
func (m *QutritModel) GateFidelity(u3 *linalg.Matrix, target2 *linalg.Matrix) float64 {
	sub := linalg.FromRows([][]complex128{
		{u3.At(0, 0), u3.At(0, 1)},
		{u3.At(1, 0), u3.At(1, 1)},
	})
	return cmplx.Abs(linalg.HSInner(target2, sub)) / 2
}

// Leakage returns the average population that escapes the
// computational subspace: mean over the |0⟩,|1⟩ inputs of the
// resulting |2⟩ population.
func (m *QutritModel) Leakage(u3 *linalg.Matrix) float64 {
	p := 0.0
	for in := 0; in < 2; in++ {
		amp := u3.At(2, in)
		p += real(amp)*real(amp) + imag(amp)*imag(amp)
	}
	return p / 2
}

// DRAGBeta returns the first-order optimal DRAG coefficient for the
// model in this frame convention, β = 1/α (α < 0 for transmons, so β
// is negative); validated empirically to suppress the 5 ns π-pulse
// leakage by two orders of magnitude.
func (m *QutritModel) DRAGBeta() float64 {
	//epoc:lint-ignore floatcmp guards 1/alpha when anharmonicity is unset
	if m.Anharmonicity == 0 {
		return 0
	}
	return 1 / m.Anharmonicity
}
